// Measures the sharded segment store's three cost claims (docs/SEGMENTS.md):
//
//   1. Bounded saves: with per-segment files, Save() into an existing store
//      rewrites only segments sealed since the last save plus the unsealed
//      tail and catalog, so incremental save time stays flat as the store
//      grows — while a from-scratch save of the same data scales linearly.
//      The `incr_save` trajectory vs the final `fresh_save` shows it.
//
//   2. Zone-map pruning: on a clustered attribute a selective predicate
//      prunes most segments without touching their indexes. The
//      `selective_query` entries carry scanned/pruned in their config so
//      the committed JSON documents the pruning fraction (>=50% of
//      segments skipped is the acceptance bar; the run prints it).
//
//   3. Compaction cost and payoff: CompactNow() after spread deletes is a
//      one-shot rewrite (`compact`), after which the same queries run over
//      fewer rows (`post_compact_query`) and the next save is again
//      incremental (`post_compact_save`).
//
// `selective_query_p99` is a deliberately tail-sensitive entry: it matches
// tools/bench_compare.py's noisy-metric pattern and is therefore warn-only
// in the CI bench-regression gate.
//
// Usage: bench_ingest_compaction [--json <path>]

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "common/timer.h"
#include "core/database.h"
#include "table/table.h"

namespace incdb {
namespace {

uint64_t g_sink = 0;

constexpr const char* kStoreDir = "bench_ingest_compaction_store.incdb";
constexpr uint64_t kSegmentRows = 4096;
constexpr uint32_t kClusteredCard = 32;

struct Lcg {
  uint64_t state;
  uint64_t Next() {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return state >> 33;
  }
};

// a0 is clustered by segment (each segment's zone covers one value of 32),
// a1 and a2 are uniform with some missing cells — prunable and unprunable
// attributes side by side, like the test fixtures.
std::vector<Value> MakeRow(uint64_t row, Lcg& rng) {
  const Value clustered =
      static_cast<Value>(1 + (row / kSegmentRows) % kClusteredCard);
  const Value uniform = rng.Next() % 10 == 0
                            ? kMissingValue
                            : static_cast<Value>(1 + rng.Next() % 50);
  const Value wide = static_cast<Value>(1 + rng.Next() % 100);
  return {clustered, uniform, wide};
}

Database MustMakeDatabase(uint64_t num_rows, Lcg& rng) {
  std::vector<AttributeSpec> specs = {
      {"a0", kClusteredCard}, {"a1", 50}, {"a2", 100}};
  auto table = Table::Create(Schema(specs));
  if (!table.ok()) {
    std::fprintf(stderr, "table: %s\n", table.status().ToString().c_str());
    std::exit(1);
  }
  for (uint64_t r = 0; r < num_rows; ++r) {
    const Status appended = table->AppendRow(MakeRow(r, rng));
    if (!appended.ok()) {
      std::fprintf(stderr, "append: %s\n", appended.ToString().c_str());
      std::exit(1);
    }
  }
  auto db = Database::FromTable(std::move(table).value());
  if (!db.ok()) {
    std::fprintf(stderr, "database: %s\n", db.status().ToString().c_str());
    std::exit(1);
  }
  SegmentOptions options;
  options.segment_rows = kSegmentRows;
  const Status enabled = db->EnableSegments(options);
  if (!enabled.ok()) {
    std::fprintf(stderr, "segments: %s\n", enabled.ToString().c_str());
    std::exit(1);
  }
  return std::move(db).value();
}

void MustSave(const Database& db, const char* dir) {
  const Status saved = db.Save(dir);
  if (!saved.ok()) {
    std::fprintf(stderr, "save: %s\n", saved.ToString().c_str());
    std::exit(1);
  }
}

std::vector<std::string> StoreFiles(const char* dir) {
  std::vector<std::string> names;
  DIR* handle = ::opendir(dir);
  if (handle == nullptr) return names;
  while (struct dirent* entry = ::readdir(handle)) {
    const std::string name = entry->d_name;
    if (name == "." || name == "..") continue;
    names.push_back(name);
  }
  ::closedir(handle);
  return names;
}

uint64_t StoreBytes(const char* dir) {
  uint64_t total = 0;
  for (const std::string& file : StoreFiles(dir)) {
    struct stat info;
    const std::string path = std::string(dir) + "/" + file;
    if (stat(path.c_str(), &info) == 0) {
      total += static_cast<uint64_t>(info.st_size);
    }
  }
  return total;
}

void RemoveStore(const char* dir) {
  for (const std::string& file : StoreFiles(dir)) {
    std::remove((std::string(dir) + "/" + file).c_str());
  }
  rmdir(dir);
}

double MustQueryMillis(const Database& db, const std::string& text,
                       QueryStats* stats) {
  Timer timer;
  const auto result = db.Run(QueryRequest::Text(text,
                                                MissingSemantics::kNoMatch));
  const double millis = timer.ElapsedMillis();
  if (!result.ok()) {
    std::fprintf(stderr, "query '%s': %s\n", text.c_str(),
                 result.status().ToString().c_str());
    std::exit(1);
  }
  g_sink += result->count;
  if (stats != nullptr) *stats = result->stats;
  return millis;
}

// Mean and p99 over kQueryRuns timings of the same query.
struct LatencyProfile {
  double mean_ms = 0.0;
  double p99_ms = 0.0;
};

LatencyProfile ProfileQuery(const Database& db, const std::string& text) {
  constexpr int kQueryRuns = 100;
  std::vector<double> timings;
  timings.reserve(kQueryRuns);
  for (int i = 0; i < kQueryRuns; ++i) {
    timings.push_back(MustQueryMillis(db, text, nullptr));
  }
  LatencyProfile profile;
  for (const double t : timings) profile.mean_ms += t;
  profile.mean_ms /= kQueryRuns;
  std::sort(timings.begin(), timings.end());
  profile.p99_ms = timings[kQueryRuns - kQueryRuns / 100 - 1];
  return profile;
}

}  // namespace

int BenchMain(int argc, char** argv) {
  bench::Init(argc, argv);
  // Growth plan: seed the store with 1/4 of the rows, then grow to full
  // size one segment per step, saving after each step into the same dir.
  const uint64_t total_rows = bench::BenchRows(200000);
  const uint64_t seed_rows = std::max<uint64_t>(kSegmentRows,
                                                total_rows / 4);
  Lcg rng{20060329};  // EDBT'06

  RemoveStore(kStoreDir);
  Database db = MustMakeDatabase(seed_rows, rng);
  MustSave(db, kStoreDir);

  bench::PrintHeader({"segments", "rows", "store_MB", "incr_save_ms"});
  uint64_t next_row = seed_rows;
  while (next_row < total_rows) {
    for (uint64_t i = 0; i < kSegmentRows && next_row < total_rows; ++i) {
      const Status inserted = db.Insert(MakeRow(next_row++, rng));
      if (!inserted.ok()) {
        std::fprintf(stderr, "insert: %s\n", inserted.ToString().c_str());
        return 1;
      }
    }
    Timer save_timer;
    MustSave(db, kStoreDir);
    const double save_ms = save_timer.ElapsedMillis();
    const uint64_t bytes = StoreBytes(kStoreDir);
    // The growth plan is deterministic at a given INCDB_BENCH_ROWS, so
    // this key is stable across runs (rows disambiguates the final
    // partial step, which seals no new segment).
    bench::RecordResult("incr_save",
                        "segments=" + std::to_string(db.num_segments()) +
                            ",rows=" + std::to_string(db.num_rows()),
                        save_ms, bytes);
    bench::PrintRow({std::to_string(db.num_segments()),
                     std::to_string(db.num_rows()),
                     bench::FormatBytesAsMB(bytes),
                     bench::FormatDouble(save_ms)});
  }

  // Contrast: saving the same final store from scratch rewrites every
  // segment file. This is the linear cost the incremental path avoids.
  constexpr const char* kFreshDir = "bench_ingest_compaction_fresh.incdb";
  RemoveStore(kFreshDir);
  Timer fresh_timer;
  MustSave(db, kFreshDir);
  const double fresh_ms = fresh_timer.ElapsedMillis();
  bench::RecordResult("fresh_save",
                      "segments=" + std::to_string(db.num_segments()),
                      fresh_ms, StoreBytes(kFreshDir));
  RemoveStore(kFreshDir);

  // Zone-map pruning on the clustered attribute: a point predicate hits
  // one a0 value, i.e. roughly 1-in-32 segments plus the tail.
  QueryStats stats;
  MustQueryMillis(db, "a0 = 7", &stats);
  const uint64_t num_segments = db.num_segments();
  const double pruned_pct =
      num_segments == 0
          ? 0.0
          : 100.0 * static_cast<double>(stats.segments_pruned) /
                static_cast<double>(num_segments);
  const std::string prune_config = "a0=7,pruned=" +
                                   std::to_string(stats.segments_pruned) +
                                   "/" + std::to_string(num_segments);
  const LatencyProfile selective = ProfileQuery(db, "a0 = 7");
  const LatencyProfile broad = ProfileQuery(db, "a1 IN [10,40]");
  bench::RecordResult("selective_query", prune_config, selective.mean_ms,
                      StoreBytes(kStoreDir));
  bench::RecordResult("selective_query_p99", prune_config, selective.p99_ms,
                      StoreBytes(kStoreDir));
  bench::RecordResult("broad_query", "a1=[10,40]", broad.mean_ms,
                      StoreBytes(kStoreDir));
  std::printf("\n# selective predicate a0=7: %llu of %llu segments pruned "
              "(%.0f%%), mean %.3f ms, p99 %.3f ms\n",
              static_cast<unsigned long long>(stats.segments_pruned),
              static_cast<unsigned long long>(num_segments), pruned_pct,
              selective.mean_ms, selective.p99_ms);
  if (pruned_pct < 50.0) {
    std::fprintf(stderr,
                 "# WARNING: pruning below the 50%% acceptance bar\n");
  }

  // Spread deletes (every 4th row) then one compaction: the rewrite cost,
  // the post-compaction query payoff, and the save that follows — which is
  // NOT incremental for rewritten ranges, but reclaims their bytes.
  for (uint32_t row = 0; row < db.num_rows(); row += 4) {
    const Status deleted = db.Delete(row);
    if (!deleted.ok()) {
      std::fprintf(stderr, "delete: %s\n", deleted.ToString().c_str());
      return 1;
    }
  }
  Timer compact_timer;
  const Status compacted = db.CompactNow();
  const double compact_ms = compact_timer.ElapsedMillis();
  if (!compacted.ok()) {
    std::fprintf(stderr, "compact: %s\n", compacted.ToString().c_str());
    return 1;
  }
  const CompactionStats reclaim = db.GetCompactionStats();
  bench::RecordResult("compact", "deleted=25pct", compact_ms,
                      reclaim.reclaimed_bytes);

  Timer post_save_timer;
  MustSave(db, kStoreDir);
  const double post_save_ms = post_save_timer.ElapsedMillis();
  bench::RecordResult("post_compact_save", "deleted=25pct", post_save_ms,
                      StoreBytes(kStoreDir));
  const LatencyProfile after = ProfileQuery(db, "a0 = 7");
  bench::RecordResult("post_compact_query", "a0=7", after.mean_ms,
                      StoreBytes(kStoreDir));
  std::printf("# compaction: %.3f ms, reclaimed %llu rows / %llu bytes; "
              "save after %.3f ms; a0=7 mean %.3f ms\n",
              compact_ms,
              static_cast<unsigned long long>(reclaim.reclaimed_rows),
              static_cast<unsigned long long>(reclaim.reclaimed_bytes),
              post_save_ms, after.mean_ms);

  RemoveStore(kStoreDir);
  if (g_sink == 0) std::fprintf(stderr, "# sink empty (unexpected)\n");
  bench::WriteJson();
  return 0;
}

}  // namespace incdb

int main(int argc, char** argv) { return incdb::BenchMain(argc, argv); }
