// Validates the cost-based index advisor (the executable form of the
// paper's "insights into the conditions for which to use each technique"):
// for several workload profiles, prints each index kind's predicted cost
// (abstract word touches) next to its measured time, plus whether the
// advisor's recommendation was the measured-fastest structure.

#include <algorithm>
#include <cstdio>
#include <map>

#include "bench/bench_common.h"
#include "core/advisor.h"
#include "table/generator.h"

namespace incdb {
namespace {

constexpr IndexKind kCandidates[] = {
    IndexKind::kSequentialScan, IndexKind::kBitmapEquality,
    IndexKind::kBitmapRange,    IndexKind::kBitmapInterval,
    IndexKind::kBitmapBitSliced, IndexKind::kVaFile,
    IndexKind::kMosaic};

int Main() {
  const uint64_t rows = bench::BenchRows(50000);
  const Table table =
      GenerateTable(UniformSpec(rows, 20, 0.20, 8, 42)).value();
  const IndexAdvisor advisor(table);

  struct Profile {
    const char* label;
    WorkloadProfile profile;
  };
  std::vector<Profile> profiles;
  {
    WorkloadProfile p;
    p.dims = 4;
    p.point_queries = true;
    profiles.push_back({"point_4d", p});
  }
  {
    WorkloadProfile p;
    p.dims = 4;
    p.attribute_selectivity = 0.10;
    profiles.push_back({"narrow_range_4d", p});
  }
  {
    WorkloadProfile p;
    p.dims = 4;
    p.attribute_selectivity = 0.50;
    profiles.push_back({"wide_range_4d", p});
  }
  {
    WorkloadProfile p;
    p.dims = 8;
    p.attribute_selectivity = 0.20;
    profiles.push_back({"range_8d", p});
  }

  std::printf("# Advisor validation (%llu rows, cardinality 20, 20%% "
              "missing, 8 attributes, %zu queries per profile)\n",
              static_cast<unsigned long long>(rows), bench::BenchQueries());
  for (const Profile& entry : profiles) {
    std::printf("\n## profile %s\n", entry.label);
    bench::PrintHeader({"index", "predicted_cost", "measured_ms",
                        "predicted_size_mb", "actual_size_mb"});
    WorkloadParams params;
    params.num_queries = bench::BenchQueries();
    params.dims = entry.profile.dims;
    params.point_queries = entry.profile.point_queries;
    params.attribute_selectivity = entry.profile.attribute_selectivity;
    params.semantics = entry.profile.semantics;
    params.seed = 7;
    const std::vector<RangeQuery> queries =
        bench::MustGenerateWorkload(table, params);

    double best_measured = 1e18;
    IndexKind best_kind = IndexKind::kSequentialScan;
    std::map<IndexKind, double> measured_by_kind;
    for (IndexKind kind : kCandidates) {
      const IndexCostEstimate estimate =
          advisor.Estimate(kind, entry.profile);
      const auto index = bench::MustCreateIndex(kind, table);
      const double measured =
          bench::MustRunWorkload(*index, queries, rows).total_millis;
      measured_by_kind[kind] = measured;
      if (measured < best_measured) {
        best_measured = measured;
        best_kind = kind;
      }
      bench::PrintRow(
          {std::string(IndexKindToString(kind)),
           bench::FormatDouble(estimate.query_cost, 0),
           bench::FormatDouble(measured, 2),
           bench::FormatBytesAsMB(
               static_cast<uint64_t>(estimate.size_bytes)),
           bench::FormatBytesAsMB(index->SizeInBytes())});
    }
    // The advisor ranks among candidates with modeled baselines excluded
    // from recommendation only by cost, so compare against its top pick
    // restricted to the candidate set.
    const auto ranked = advisor.Rank(entry.profile, 1e18);
    IndexKind recommended = IndexKind::kSequentialScan;
    for (const IndexCostEstimate& estimate : ranked) {
      if (std::find(std::begin(kCandidates), std::end(kCandidates),
                    estimate.kind) != std::end(kCandidates)) {
        recommended = estimate.kind;
        break;
      }
    }
    const double gap = measured_by_kind[recommended] / best_measured;
    std::printf("# advisor picks %s (%.2fms); measured fastest %s "
                "(%.2fms); gap %.2fx (%s)\n",
                std::string(IndexKindToString(recommended)).c_str(),
                measured_by_kind[recommended],
                std::string(IndexKindToString(best_kind)).c_str(),
                best_measured, gap,
                recommended == best_kind ? "AGREE"
                : gap <= 1.5             ? "NEAR"
                                         : "disagree");
  }
  return 0;
}

}  // namespace
}  // namespace incdb

int main() { return incdb::Main(); }
