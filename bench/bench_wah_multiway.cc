// Compares the fused k-way WAH kernels (OrMany/AndMany and their count
// variants) against the classic pairwise fold they replace in the query
// hot path, across operand counts, bit densities and code-word sizes.
//
// Expected shape: at 2 operands fused and pairwise are the same algorithm
// (one merge pass), so times match; as k grows the pairwise fold pays
// k-1 materializations of intermediate compressed vectors while the fused
// kernel re-compresses once and can skip whole absorbing fill runs, so the
// gap widens — on sparse clustered inputs (the regime bitmap indexes live
// in) the fused OR is well over the 1.5x acceptance bar by k = 16.
//
// Usage: bench_wah_multiway [--json <path>]
// With --json, per-configuration timings are also written as the
// machine-readable BENCH_wah_multiway.json trajectory file.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "bitvector/bitvector.h"
#include "common/rng.h"
#include "common/timer.h"
#include "compression/wah_bitvector.h"

namespace incdb {
namespace {

// Accumulated so the optimizer cannot discard the timed work.
uint64_t g_sink = 0;

struct DensityConfig {
  const char* name;
  double density;    // fraction of set bits
  uint64_t run_len;  // average length of a run of set bits (1 = uniform)
};

// The sparse clustered config is the regime bitmap-index operands live in
// (sorted/low-cardinality columns: few set bits, arriving in runs).
constexpr DensityConfig kDensities[] = {
    {"clustered1pct", 0.01, 64},
    {"uniform5pct", 0.05, 1},
    {"dense50pct", 0.50, 1},
};

constexpr size_t kOperandCounts[] = {2, 4, 8, 16, 32, 64};

// Set bits arrive in geometric runs of mean `run_len`, spaced so the
// overall density is `density` — the way bits look in a bitmap over a
// clustered attribute, which is what makes WAH fills worth skipping.
BitVector ClusteredBits(uint64_t n, double density, uint64_t run_len,
                        Rng& rng) {
  BitVector bits(n);
  if (density <= 0.0) return bits;
  if (run_len <= 1) {  // uniform: independent bits
    for (uint64_t i = 0; i < n; ++i) {
      if (rng.Bernoulli(density)) bits.Set(i);
    }
    return bits;
  }
  // P(start a run at a zero position) chosen so runs * run_len = density*n.
  const double start_p = density / (static_cast<double>(run_len) *
                                    std::max(1e-9, 1.0 - density));
  uint64_t i = 0;
  while (i < n) {
    if (rng.Bernoulli(start_p)) {
      uint64_t len = 1;
      while (len < 4 * run_len && rng.Bernoulli(1.0 - 1.0 / run_len)) ++len;
      for (uint64_t j = 0; j < len && i < n; ++j, ++i) bits.Set(i);
    } else {
      ++i;
    }
  }
  return bits;
}

template <typename Fn>
double BestMillis(int reps, Fn&& fn) {
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    Timer timer;
    fn();
    best = std::min(best, timer.ElapsedMillis());
  }
  return best;
}

template <typename Word>
void RunSuite(const char* word_name, uint64_t num_bits, int reps) {
  using Vec = BasicWahBitVector<Word>;

  for (const DensityConfig& dc : kDensities) {
    for (size_t k : kOperandCounts) {
      Rng rng(0x9e3779b9u ^ (k * 131) ^ static_cast<uint64_t>(dc.density * 1e6));
      std::vector<Vec> operands;
      operands.reserve(k);
      uint64_t bytes = 0;
      for (size_t i = 0; i < k; ++i) {
        operands.push_back(
            Vec::Compress(ClusteredBits(num_bits, dc.density, dc.run_len, rng)));
        bytes += operands.back().SizeInBytes();
      }
      std::vector<const Vec*> ptrs;
      for (const Vec& v : operands) ptrs.push_back(&v);
      const std::span<const Vec* const> span(ptrs.data(), ptrs.size());

      // Sanity: fused kernels must agree with the folds they replace.
      {
        Vec or_fold = operands[0];
        Vec and_fold = operands[0];
        for (size_t i = 1; i < k; ++i) {
          or_fold = or_fold.Or(operands[i]);
          and_fold = and_fold.And(operands[i]);
        }
        if (Vec::OrMany(span).Count() != or_fold.Count() ||
            Vec::AndMany(span).Count() != and_fold.Count() ||
            Vec::OrManyCount(span) != or_fold.Count() ||
            Vec::AndManyCount(span) != and_fold.Count()) {
          std::fprintf(stderr, "FUSED/PAIRWISE MISMATCH (%s %s k=%zu)\n",
                       word_name, dc.name, k);
          std::exit(1);
        }
      }

      const double or_fold_ms = BestMillis(reps, [&] {
        Vec acc = operands[0];
        for (size_t i = 1; i < k; ++i) acc = acc.Or(operands[i]);
        g_sink += acc.NumWords();
      });
      const double or_many_ms = BestMillis(reps, [&] {
        g_sink += Vec::OrMany(span).NumWords();
      });
      const double and_fold_ms = BestMillis(reps, [&] {
        Vec acc = operands[0];
        for (size_t i = 1; i < k; ++i) acc = acc.And(operands[i]);
        g_sink += acc.NumWords();
      });
      const double and_many_ms = BestMillis(reps, [&] {
        g_sink += Vec::AndMany(span).NumWords();
      });
      const double or_count_ms = BestMillis(reps, [&] {
        g_sink += Vec::OrManyCount(span);
      });
      const double and_count_ms = BestMillis(reps, [&] {
        g_sink += Vec::AndManyCount(span);
      });

      const std::string config = std::string(word_name) + "/" + dc.name +
                                 "/k" + std::to_string(k);
      bench::PrintRow({config, std::to_string(k),
                       bench::FormatDouble(or_fold_ms, 4),
                       bench::FormatDouble(or_many_ms, 4),
                       bench::FormatDouble(or_fold_ms / or_many_ms, 2),
                       bench::FormatDouble(and_fold_ms, 4),
                       bench::FormatDouble(and_many_ms, 4),
                       bench::FormatDouble(and_fold_ms / and_many_ms, 2),
                       bench::FormatDouble(or_count_ms, 4),
                       bench::FormatDouble(and_count_ms, 4)});
      bench::RecordResult("or_fold", config, or_fold_ms, bytes);
      bench::RecordResult("or_many", config, or_many_ms, bytes);
      bench::RecordResult("and_fold", config, and_fold_ms, bytes);
      bench::RecordResult("and_many", config, and_many_ms, bytes);
      bench::RecordResult("or_many_count", config, or_count_ms, bytes);
      bench::RecordResult("and_many_count", config, and_count_ms, bytes);
    }
  }
}

int Main(int argc, char** argv) {
  bench::Init(argc, argv);
  const uint64_t num_bits = bench::BenchRows(1000000);
  const int reps = 5;

  std::printf("# Fused k-way WAH kernels vs pairwise fold "
              "(%llu bits per operand, best of %d runs)\n",
              static_cast<unsigned long long>(num_bits), reps);
  bench::PrintHeader({"config", "k", "or_fold_ms", "or_many_ms", "or_speedup",
                      "and_fold_ms", "and_many_ms", "and_speedup",
                      "or_count_ms", "and_count_ms"});
  RunSuite<uint32_t>("w32", num_bits, reps);
  RunSuite<uint64_t>("w64", num_bits, reps);

  std::printf("# checksum %llu\n", static_cast<unsigned long long>(g_sink));
  bench::WriteJson();
  return 0;
}

}  // namespace
}  // namespace incdb

int main(int argc, char** argv) { return incdb::Main(argc, argv); }
