// Measures the plan executor's morsel-parallel mode against serial
// execution of the same physical plan: multi-attribute conjunctions lowered
// to per-dimension index probes (evaluated concurrently) and to
// morsel-partitioned sequential scans.
//
// The acceptance property is a >= 2x speedup on 8 worker threads for
// multi-attribute conjunctions at 1M rows. Both runs execute the identical
// plan shape (the parallel lowering), so the comparison isolates the worker
// pool itself — and the answers are bit-identical by construction.
//
// Usage: bench_plan_executor [--json <path>]
// With --json, timings are also written as the machine-readable
// BENCH_plan_executor.json trajectory file.

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "common/timer.h"
#include "core/database.h"
#include "plan/plan_executor.h"
#include "plan/planner.h"
#include "table/generator.h"

namespace incdb {
namespace {

uint64_t g_sink = 0;
constexpr size_t kThreads = 8;
constexpr int kReps = 5;

Database MustMakeDatabase(uint64_t num_rows, bool indexed) {
  DatasetSpec spec;
  spec.seed = 20060331;
  spec.num_rows = num_rows;
  for (int a = 0; a < 8; ++a) {
    spec.attributes.push_back(
        {"a" + std::to_string(a), 20, 0.10, 0.0});
  }
  auto table = GenerateTable(spec);
  if (!table.ok()) {
    std::fprintf(stderr, "generate: %s\n", table.status().ToString().c_str());
    std::exit(1);
  }
  auto db = Database::FromTable(std::move(table).value());
  if (!db.ok()) {
    std::fprintf(stderr, "database: %s\n", db.status().ToString().c_str());
    std::exit(1);
  }
  if (indexed) {
    const Status status = db->BuildIndex(IndexKind::kBitmapEquality);
    if (!status.ok()) {
      std::fprintf(stderr, "index: %s\n", status.ToString().c_str());
      std::exit(1);
    }
  }
  return std::move(db).value();
}

QueryRequest Conjunction(size_t dims) {
  std::vector<NamedTerm> terms;
  for (size_t a = 0; a < dims; ++a) {
    terms.push_back({"a" + std::to_string(a), static_cast<Value>(3),
                     static_cast<Value>(3 + 2 * (a % 3))});
  }
  return QueryRequest::Terms(std::move(terms), MissingSemantics::kNoMatch);
}

/// Plans the request fresh (a plan instance runs once) and executes it on
/// `threads` workers; returns the best-of-kReps wall time and accumulates
/// the count into the sink so the work cannot be optimized away.
double MustTimePlan(const Database& db, const QueryRequest& request,
                    size_t threads) {
  const Snapshot snapshot = db.GetSnapshot();
  double best = 0.0;
  for (int rep = 0; rep < kReps; ++rep) {
    // The parallel lowering (request.parallelism != 1) fixes the plan
    // shape; `threads` then sets only the worker pool size.
    QueryRequest shaped = request;
    shaped.Parallel(kThreads);
    auto plan = plan::PlanRequest(snapshot, shaped);
    if (!plan.ok()) {
      std::fprintf(stderr, "plan: %s\n", plan.status().ToString().c_str());
      std::exit(1);
    }
    plan::ExecOptions options;
    options.num_threads = threads;
    Timer timer;
    auto result = plan::ExecutePlan(&plan.value(), options);
    const double millis = timer.ElapsedMillis();
    if (!result.ok()) {
      std::fprintf(stderr, "execute: %s\n",
                   result.status().ToString().c_str());
      std::exit(1);
    }
    g_sink += result->count;
    if (rep == 0 || millis < best) best = millis;
  }
  return best;
}

}  // namespace

int BenchMain(int argc, char** argv) {
  bench::Init(argc, argv);
  const uint64_t rows = bench::BenchRows(1000000);

  bench::PrintHeader(
      {"case", "rows", "dims", "serial_ms", "parallel8_ms", "speedup"});

  struct Case {
    const char* name;
    bool indexed;
    size_t dims;
  };
  const Case cases[] = {
      {"probe_conjunction", true, 4},
      {"probe_conjunction", true, 8},
      {"scan_conjunction", false, 4},
      {"scan_conjunction", false, 8},
  };

  Database indexed = MustMakeDatabase(rows, /*indexed=*/true);
  Database scan_only = MustMakeDatabase(rows, /*indexed=*/false);

  for (const Case& c : cases) {
    const Database& db = c.indexed ? indexed : scan_only;
    const QueryRequest request = Conjunction(c.dims);
    const double serial_ms = MustTimePlan(db, request, 1);
    const double parallel_ms = MustTimePlan(db, request, kThreads);
    const double speedup = parallel_ms > 0.0 ? serial_ms / parallel_ms : 0.0;

    const std::string config = std::string(c.name) + "&rows=" +
                               std::to_string(rows) +
                               "&dims=" + std::to_string(c.dims);
    bench::RecordResult("serial", config, serial_ms, 0);
    bench::RecordResult("parallel8", config, parallel_ms, 0);

    bench::PrintRow({c.name, std::to_string(rows), std::to_string(c.dims),
                     bench::FormatDouble(serial_ms),
                     bench::FormatDouble(parallel_ms),
                     bench::FormatDouble(speedup, 2)});
  }

  if (g_sink == 0) std::fprintf(stderr, "# sink empty (unexpected)\n");
  bench::WriteJson();
  return 0;
}

}  // namespace incdb

int main(int argc, char** argv) { return incdb::BenchMain(argc, argv); }
