// Concurrent query serving through the snapshot facade: throughput of
// Database::RunBatch versus reader-thread count, with and without a
// concurrent writer publishing new epochs (Insert churn) for the whole
// measurement. Every configuration starts from a freshly indexed copy of
// the same table and runs the same query mix, so the sweep isolates
// (a) fan-out scaling and (b) the cost readers pay for writer churn —
// which under epoch snapshots should be near zero: a reader only ever
// contends on one shared_ptr copy.
//
// Interpreting the numbers requires the machine context: on a single-core
// container every configuration time-slices one CPU and the sweep measures
// isolation overhead, not parallel speedup. The JSON records wall time and
// total matches per configuration either way.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>

#include "bench/bench_common.h"
#include "core/database.h"
#include "table/generator.h"

namespace incdb {
namespace {

std::vector<QueryRequest> MakeRequests(const Table& table,
                                       const std::vector<RangeQuery>& queries) {
  std::vector<QueryRequest> requests;
  requests.reserve(queries.size());
  for (const RangeQuery& query : queries) {
    std::vector<NamedTerm> terms;
    terms.reserve(query.terms.size());
    for (const QueryTerm& term : query.terms) {
      terms.push_back({table.schema().attribute(term.attribute).name,
                       term.interval.lo, term.interval.hi});
    }
    requests.push_back(QueryRequest::Terms(std::move(terms), query.semantics));
  }
  return requests;
}

void RunConfig(const Table& base, const std::vector<QueryRequest>& requests,
               size_t readers, bool with_writer) {
  Database db = Database::FromTable(Table(base)).value();
  if (!db.BuildIndex(IndexKind::kBitmapEquality).ok() ||
      !db.BuildIndex(IndexKind::kBitmapRange).ok()) {
    std::fprintf(stderr, "FATAL: BuildIndex failed\n");
    std::exit(1);
  }

  std::atomic<bool> stop{false};
  std::thread writer;
  if (with_writer) {
    writer = std::thread([&db, &stop]() {
      const size_t dims = db.table().num_attributes();
      uint64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        std::vector<Value> row(dims);
        for (size_t a = 0; a < dims; ++a) {
          row[a] = static_cast<Value>(1 + (i * 7 + a * 3) % 10);
        }
        if (!db.Insert(row).ok()) break;
        ++i;
        // Throttled churn (~10k epochs/s): the point is continuous epoch
        // publication, not saturating the one writer core.
        std::this_thread::sleep_for(std::chrono::microseconds(100));
      }
    });
  }

  const BatchResult batch = db.RunBatch(requests, readers);
  stop.store(true);
  if (writer.joinable()) writer.join();

  uint64_t errors = 0;
  for (const auto& result : batch.results) {
    if (!result.ok()) ++errors;
  }
  const double qps = batch.wall_millis > 0.0
                         ? 1000.0 * static_cast<double>(requests.size()) /
                               batch.wall_millis
                         : 0.0;
  const std::string config = "readers=" + std::to_string(readers) +
                             ",writer=" + (with_writer ? "on" : "off");
  bench::PrintRow({std::to_string(readers), with_writer ? "on" : "off",
                   std::to_string(requests.size()),
                   bench::FormatDouble(batch.wall_millis, 2),
                   bench::FormatDouble(qps, 1), std::to_string(errors)});
  if (errors > 0) {
    std::fprintf(stderr, "FATAL: %llu failed requests in %s\n",
                 static_cast<unsigned long long>(errors), config.c_str());
    std::exit(1);
  }
  bench::RecordResult("concurrent_serving", config, batch.wall_millis,
                      batch.total_matches);
}

int Main(int argc, char** argv) {
  bench::Init(argc, argv);
  const uint64_t rows = bench::BenchRows(50000);

  // Fig. 5(b)-style data: cardinality 10, 4-dim keys, 10% missing.
  const Table base = GenerateTable(UniformSpec(rows, 10, 0.1, 4, 42)).value();

  WorkloadParams params;
  params.num_queries = bench::BenchQueries() * 8;  // enough work for 8 threads
  params.dims = 4;
  params.global_selectivity = 0.01;
  params.semantics = MissingSemantics::kMatch;
  params.seed = 7;
  const std::vector<QueryRequest> requests =
      MakeRequests(base, bench::MustGenerateWorkload(base, params));

  bench::PrintHeader(
      {"readers", "writer", "queries", "wall_ms", "qps", "errors"});
  for (const bool with_writer : {false, true}) {
    for (const size_t readers : {1, 2, 4, 8}) {
      RunConfig(base, requests, readers, with_writer);
    }
  }
  bench::WriteJson();
  return 0;
}

}  // namespace
}  // namespace incdb

int main(int argc, char** argv) { return incdb::Main(argc, argv); }
