// Reproduces paper Fig. 5: query execution time of BEE-WAH, BRE-WAH and
// the VA-file for 100 range queries at 1% global selectivity, versus
// (a) attribute cardinality (10% missing, 8-dim keys),
// (b) percent of missing data (cardinality 10, 8-dim keys), and
// (c) query dimensionality (cardinality 10, 30% missing).
//
// Expected shapes (paper §5.3): BEE grows linearly with cardinality while
// BRE and the VA-file stay ~flat with BRE fastest; BEE gets cheaper as
// missing grows (attribute selectivity shrinks); all grow linearly in query
// dimensionality with BRE the slowest-growing. SeqScan is included as the
// no-index baseline. Every configuration is verified against the oracle on
// a sample before timing.

#include <cstdio>

#include "bench/bench_common.h"
#include "table/generator.h"

namespace incdb {
namespace {

constexpr IndexKind kIndexKinds[] = {IndexKind::kBitmapEquality,
                                     IndexKind::kBitmapRange,
                                     IndexKind::kVaFile,
                                     IndexKind::kSequentialScan};

void RunConfig(const char* figure, const char* sweep_value, const Table& table,
               size_t dims, MissingSemantics semantics) {
  WorkloadParams params;
  params.num_queries = bench::BenchQueries();
  params.dims = dims;
  params.global_selectivity = 0.01;
  params.semantics = semantics;
  params.seed = 7;
  const std::vector<RangeQuery> queries =
      bench::MustGenerateWorkload(table, params);

  std::vector<std::string> row = {sweep_value};
  double realized = 0.0;
  for (IndexKind kind : kIndexKinds) {
    const auto index = bench::MustCreateIndex(kind, table);
    const WorkloadResult result =
        bench::MustRunWorkload(*index, queries, table.num_rows());
    row.push_back(bench::FormatDouble(result.total_millis, 2));
    realized = result.realized_selectivity;
    bench::RecordResult(figure,
                        std::string(IndexKindToString(kind)) + "/" +
                            sweep_value,
                        result.total_millis, index->SizeInBytes());
  }
  row.push_back(bench::FormatDouble(realized * 100.0, 2));
  bench::PrintRow(row);
}

int Main(int argc, char** argv) {
  bench::Init(argc, argv);
  const uint64_t rows = bench::BenchRows(100000);
  const std::vector<std::string> header = {
      "sweep", "bee_wah_ms", "bre_wah_ms", "va_file_ms", "seq_scan_ms",
      "realized_gs_pct"};

  std::printf("# Fig. 5(a): query time vs cardinality "
              "(%llu rows, 8-dim keys, 10%% missing, GS=1%%, %zu queries, "
              "missing-is-match)\n",
              static_cast<unsigned long long>(rows), bench::BenchQueries());
  bench::PrintHeader(header);
  for (uint32_t cardinality : {2u, 5u, 10u, 20u, 50u, 100u}) {
    const Table table =
        GenerateTable(UniformSpec(rows, cardinality, 0.10, 10, 42)).value();
    RunConfig("fig5a_cardinality", std::to_string(cardinality).c_str(),
              table, 8, MissingSemantics::kMatch);
  }

  std::printf("\n# Fig. 5(b): query time vs %% missing "
              "(%llu rows, 8-dim keys, cardinality 10, GS=1%%)\n",
              static_cast<unsigned long long>(rows));
  bench::PrintHeader(header);
  for (int missing_pct : {10, 20, 30, 40, 50}) {
    const Table table =
        GenerateTable(UniformSpec(rows, 10, missing_pct / 100.0, 10, 42))
            .value();
    RunConfig("fig5b_missing", std::to_string(missing_pct).c_str(), table, 8,
              MissingSemantics::kMatch);
  }

  std::printf("\n# Fig. 5(c): query time vs query dimensionality "
              "(%llu rows, cardinality 10, 30%% missing, GS=1%%)\n",
              static_cast<unsigned long long>(rows));
  bench::PrintHeader(header);
  {
    const Table table =
        GenerateTable(UniformSpec(rows, 10, 0.30, 12, 42)).value();
    for (size_t dims : {2u, 4u, 6u, 8u, 10u}) {
      RunConfig("fig5c_dims", std::to_string(dims).c_str(), table, dims,
                MissingSemantics::kMatch);
    }
  }

  std::printf("\n# Fig. 5 (companion): same sweep as 5(b) under "
              "missing-not-match semantics (paper: \"graphs look very "
              "similar in both scenarios\")\n");
  bench::PrintHeader(header);
  for (int missing_pct : {10, 30, 50}) {
    const Table table =
        GenerateTable(UniformSpec(rows, 10, missing_pct / 100.0, 10, 42))
            .value();
    RunConfig("fig5b_nomatch", std::to_string(missing_pct).c_str(), table, 8,
              MissingSemantics::kNoMatch);
  }
  bench::WriteJson();
  return 0;
}

}  // namespace
}  // namespace incdb

int main(int argc, char** argv) { return incdb::Main(argc, argv); }
