// Ablation for the paper's §4.2 design decision: encode missing data with a
// dedicated extra bitmap (the chosen design) versus the rejected
// alternatives that fold missingness into the value bitmaps (all-ones for
// match semantics, all-zeros for no-match semantics).
//
// The paper's arguments, quantified here:
//   * all-ones interrupts the zero runs → compression collapses;
//   * all-zeros disables the complement optimization for wide ranges →
//     more bitvector reads and slower queries;
//   * the extra bitmap costs almost nothing after WAH compression.

#include <cstdio>

#include "bench/bench_common.h"
#include "bitmap/bitmap_index.h"
#include "table/generator.h"

namespace incdb {
namespace {

int Main() {
  const uint64_t rows = bench::BenchRows(100000);
  const Table table =
      GenerateTable(UniformSpec(rows, 20, 0.20, 10, 42)).value();

  const BitmapIndex extra =
      BitmapIndex::Build(table, {BitmapEncoding::kEquality,
                                 MissingStrategy::kExtraBitmap})
          .value();
  const BitmapIndex all_ones =
      BitmapIndex::Build(table,
                         {BitmapEncoding::kEquality, MissingStrategy::kAllOnes})
          .value();
  const BitmapIndex all_zeros =
      BitmapIndex::Build(
          table, {BitmapEncoding::kEquality, MissingStrategy::kAllZeros})
          .value();

  std::printf("# Missing-encoding ablation (%llu rows, cardinality 20, "
              "20%% missing, 10 attributes, equality encoding)\n",
              static_cast<unsigned long long>(rows));
  bench::PrintHeader({"strategy", "size_mb", "compression_ratio"});
  for (const BitmapIndex* index : {&extra, &all_ones, &all_zeros}) {
    bench::PrintRow({index->Name(),
                     bench::FormatBytesAsMB(index->SizeInBytes()),
                     bench::FormatDouble(index->CompressionRatio(), 3)});
  }

  // Wide ranges are where the strategies differ: the complement path.
  WorkloadParams params;
  params.num_queries = bench::BenchQueries();
  params.dims = 4;
  params.attribute_selectivity = 0.8;  // wide intervals
  params.seed = 7;

  std::printf("\n# Wide-range query time (4-dim keys, AS=80%%)\n");
  bench::PrintHeader(
      {"strategy", "semantics", "time_ms", "bitvectors_accessed"});
  struct Config {
    const BitmapIndex* index;
    MissingSemantics semantics;
  };
  for (const Config& config :
       {Config{&extra, MissingSemantics::kMatch},
        Config{&all_ones, MissingSemantics::kMatch},
        Config{&extra, MissingSemantics::kNoMatch},
        Config{&all_zeros, MissingSemantics::kNoMatch}}) {
    params.semantics = config.semantics;
    const std::vector<RangeQuery> queries =
        bench::MustGenerateWorkload(table, params);
    const WorkloadResult result =
        bench::MustRunWorkload(*config.index, queries, rows);
    bench::PrintRow({config.index->Name(),
                     std::string(MissingSemanticsToString(config.semantics)),
                     bench::FormatDouble(result.total_millis, 2),
                     std::to_string(result.stats.bitvectors_accessed)});
  }
  return 0;
}

}  // namespace
}  // namespace incdb

int main() { return incdb::Main(); }
