// Reproduces the paper's real-data (census) results (§5.2/§5.3) on the
// census-like skewed dataset (DESIGN.md §3 substitution):
//   * compression: BEE overall ratio ≈ 0.17, BRE ≈ 0.70; attributes with
//     >90% missing compress to 0.01-0.09 (BEE) / 0.11-0.44 (BRE);
//   * query time: bitmaps 3-10x faster than the VA-file; BRE faster than
//     BEE for range queries over 20% of the attribute domain;
//   * degradation vs complete data stays within ~2x (vs orders of
//     magnitude for hierarchical indexes in Fig. 1).
//
// Paper row count: 463,733. Default here: 100,000 (set INCDB_BENCH_ROWS to
// 463733 for the full-scale run); shapes are row-count independent.

#include <algorithm>
#include <cstdio>

#include "bench/bench_common.h"
#include "bitmap/bitmap_index.h"
#include "table/generator.h"
#include "vafile/va_file.h"

namespace incdb {
namespace {

int Main() {
  const uint64_t rows = bench::BenchRows(100000);
  const Table table = GenerateTable(CensusLikeSpec(rows, 42)).value();
  std::printf("# Census-like dataset: %s\n", table.Summary().c_str());

  const BitmapIndex bee =
      BitmapIndex::Build(table, {BitmapEncoding::kEquality,
                                 MissingStrategy::kExtraBitmap})
          .value();
  const BitmapIndex bre =
      BitmapIndex::Build(table,
                         {BitmapEncoding::kRange, MissingStrategy::kExtraBitmap})
          .value();
  const VaFile va = VaFile::Build(table).value();

  // ---- §5.2: compression ratios ----
  std::printf("\n# Compression (paper: BEE ratio ~0.17 overall, BRE ~0.70)\n");
  bench::PrintHeader({"encoding", "size_mb", "overall_ratio",
                      "attrs_ratio_lt_0.1", "attrs_ratio_lt_0.5"});
  for (const BitmapIndex* index : {&bee, &bre}) {
    int lt_01 = 0;
    int lt_05 = 0;
    for (size_t a = 0; a < table.num_attributes(); ++a) {
      const double ratio = index->AttributeCompressionRatio(a);
      if (ratio < 0.1) ++lt_01;
      if (ratio < 0.5) ++lt_05;
    }
    bench::PrintRow({index->Name(),
                     bench::FormatBytesAsMB(index->SizeInBytes()),
                     bench::FormatDouble(index->CompressionRatio(), 3),
                     std::to_string(lt_01), std::to_string(lt_05)});
  }
  bench::PrintRow({va.Name(), bench::FormatBytesAsMB(va.SizeInBytes()), "-",
                   "-", "-"});

  // ---- §5.2: high-missing attributes ----
  std::printf("\n# Attributes with >90%% missing data "
              "(paper: BEE 0.01-0.09, BRE 0.11-0.44)\n");
  bench::PrintHeader({"attribute", "missing_pct", "bee_ratio", "bre_ratio"});
  for (size_t a = 0; a < table.num_attributes(); ++a) {
    const double missing_rate = table.column(a).MissingRate();
    if (missing_rate <= 0.9) continue;
    bench::PrintRow({table.schema().attribute(a).name,
                     bench::FormatDouble(missing_rate * 100.0, 1),
                     bench::FormatDouble(bee.AttributeCompressionRatio(a), 3),
                     bench::FormatDouble(bre.AttributeCompressionRatio(a), 3)});
  }

  // ---- §5.3: query time, range queries over 20% of the domain ----
  // Restrict the search-key pool to attributes that can express a 20%-wide
  // interval (cardinality >= 5).
  std::vector<size_t> pool;
  for (size_t a = 0; a < table.num_attributes(); ++a) {
    if (table.schema().attribute(a).cardinality >= 5) pool.push_back(a);
  }
  WorkloadParams params;
  params.num_queries = bench::BenchQueries();
  params.dims = 6;
  params.attribute_selectivity = 0.20;
  params.attribute_pool = pool;
  params.seed = 7;

  std::printf("\n# Query time, %zu 6-dim range queries, AS=20%% "
              "(paper: bitmaps 3-10x faster than VA-file; BRE < BEE)\n",
              params.num_queries);
  bench::PrintHeader({"semantics", "bee_wah_ms", "bre_wah_ms", "va_file_ms",
                      "va_over_bre", "va_over_bee"});
  for (MissingSemantics semantics :
       {MissingSemantics::kMatch, MissingSemantics::kNoMatch}) {
    params.semantics = semantics;
    const std::vector<RangeQuery> queries =
        bench::MustGenerateWorkload(table, params);
    const double bee_ms =
        bench::MustRunWorkload(bee, queries, rows).total_millis;
    const double bre_ms =
        bench::MustRunWorkload(bre, queries, rows).total_millis;
    const double va_ms = bench::MustRunWorkload(va, queries, rows).total_millis;
    bench::PrintRow({std::string(MissingSemanticsToString(semantics)),
                     bench::FormatDouble(bee_ms, 2),
                     bench::FormatDouble(bre_ms, 2),
                     bench::FormatDouble(va_ms, 2),
                     bench::FormatDouble(va_ms / bre_ms, 2),
                     bench::FormatDouble(va_ms / bee_ms, 2)});
  }

  // ---- §5.3: degradation vs a complete version of the same data ----
  // The paper: "performance can be as high as two times slower ... with our
  // techniques", versus orders of magnitude for hierarchical indexes.
  DatasetSpec complete_spec = CensusLikeSpec(rows, 42);
  for (auto& attr : complete_spec.attributes) attr.missing_rate = 0.0;
  const Table complete = GenerateTable(complete_spec).value();
  const BitmapIndex bee_complete =
      BitmapIndex::Build(complete, {BitmapEncoding::kEquality,
                                    MissingStrategy::kExtraBitmap})
          .value();
  const BitmapIndex bre_complete =
      BitmapIndex::Build(complete, {BitmapEncoding::kRange,
                                    MissingStrategy::kExtraBitmap})
          .value();
  const VaFile va_complete = VaFile::Build(complete).value();

  std::printf("\n# Degradation vs complete data (paper: at most ~2x)\n");
  bench::PrintHeader(
      {"index", "incomplete_ms", "complete_ms", "slowdown_factor"});
  params.semantics = MissingSemantics::kMatch;
  const std::vector<RangeQuery> queries =
      bench::MustGenerateWorkload(table, params);
  const std::vector<RangeQuery> complete_queries =
      bench::MustGenerateWorkload(complete, params);
  struct Pair {
    const IncompleteIndex* incomplete;
    const IncompleteIndex* complete;
  };
  for (const Pair& pair :
       {Pair{&bee, &bee_complete}, Pair{&bre, &bre_complete},
        Pair{&va, &va_complete}}) {
    const double inc_ms =
        bench::MustRunWorkload(*pair.incomplete, queries, rows).total_millis;
    const double com_ms =
        bench::MustRunWorkload(*pair.complete, complete_queries, rows)
            .total_millis;
    bench::PrintRow({pair.incomplete->Name(), bench::FormatDouble(inc_ms, 2),
                     bench::FormatDouble(com_ms, 2),
                     bench::FormatDouble(inc_ms / com_ms, 2)});
  }
  return 0;
}

}  // namespace
}  // namespace incdb

int main() { return incdb::Main(); }
