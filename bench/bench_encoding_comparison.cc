// Extension study beyond the paper: all four bitmap encodings (BEE/BRE
// from the paper, BIE/BSL from its related work [5]/[10], each extended
// with the paper's missing-data treatment) plus the VA-file, compared on
// index size and query time across cardinalities and query shapes.
//
// Expected trade-off ladder: storage BSL < VA < BIE < BEE < BRE (high C);
// range-query speed BRE fastest (1-3 bitmaps), BIE close (2 bitmaps),
// BSL pays ~4 lg C ops, BEE linear in interval width, VA scans n records.

#include <cstdio>

#include "bench/bench_common.h"
#include "bitmap/bitmap_index.h"
#include "table/generator.h"
#include "vafile/va_file.h"

namespace incdb {
namespace {

int Main() {
  const uint64_t rows = bench::BenchRows(100000);
  const size_t attrs = 8;

  std::printf("# Index size by encoding (%llu rows, %zu attributes, "
              "10%% missing)\n",
              static_cast<unsigned long long>(rows), attrs);
  bench::PrintHeader({"cardinality", "bee_mb", "bre_mb", "bie_mb", "bsl_mb",
                      "va_mb"});
  for (uint32_t cardinality : {5u, 20u, 100u}) {
    const Table table =
        GenerateTable(UniformSpec(rows, cardinality, 0.10, attrs, 42)).value();
    std::vector<std::string> row = {std::to_string(cardinality)};
    for (BitmapEncoding encoding :
         {BitmapEncoding::kEquality, BitmapEncoding::kRange,
          BitmapEncoding::kInterval, BitmapEncoding::kBitSliced}) {
      row.push_back(bench::FormatBytesAsMB(
          BitmapIndex::Build(table, {encoding, MissingStrategy::kExtraBitmap})
              .value()
              .SizeInBytes()));
    }
    row.push_back(
        bench::FormatBytesAsMB(VaFile::Build(table).value().SizeInBytes()));
    bench::PrintRow(row);
  }

  const Table table = GenerateTable(UniformSpec(rows, 100, 0.10, attrs, 42)).value();
  const BitmapIndex bee =
      BitmapIndex::Build(table, {BitmapEncoding::kEquality,
                                 MissingStrategy::kExtraBitmap})
          .value();
  const BitmapIndex bre =
      BitmapIndex::Build(table,
                         {BitmapEncoding::kRange, MissingStrategy::kExtraBitmap})
          .value();
  const BitmapIndex bie =
      BitmapIndex::Build(
          table, {BitmapEncoding::kInterval, MissingStrategy::kExtraBitmap})
          .value();
  const BitmapIndex bsl =
      BitmapIndex::Build(
          table, {BitmapEncoding::kBitSliced, MissingStrategy::kExtraBitmap})
          .value();
  const VaFile va = VaFile::Build(table).value();

  std::printf("\n# Query time by encoding and query shape "
              "(cardinality 100, 4-dim keys, %zu queries, missing-is-match)\n",
              bench::BenchQueries());
  bench::PrintHeader({"query_shape", "bee_ms", "bre_ms", "bie_ms", "bsl_ms",
                      "va_ms"});
  struct Shape {
    const char* label;
    bool point;
    double attribute_selectivity;
  };
  for (const Shape& shape :
       {Shape{"point", true, 0.0}, Shape{"narrow_range_5pct", false, 0.05},
        Shape{"range_20pct", false, 0.20}, Shape{"wide_range_70pct", false, 0.70}}) {
    WorkloadParams params;
    params.num_queries = bench::BenchQueries();
    params.dims = 4;
    params.point_queries = shape.point;
    params.attribute_selectivity = shape.attribute_selectivity;
    params.seed = 7;
    const std::vector<RangeQuery> queries =
        bench::MustGenerateWorkload(table, params);
    std::vector<std::string> row = {shape.label};
    const IncompleteIndex* indexes[] = {&bee, &bre, &bie, &bsl, &va};
    for (const IncompleteIndex* index : indexes) {
      row.push_back(bench::FormatDouble(
          bench::MustRunWorkload(*index, queries, rows).total_millis, 2));
    }
    bench::PrintRow(row);
  }
  return 0;
}

}  // namespace
}  // namespace incdb

int main() { return incdb::Main(); }
