#include "bench/bench_common.h"

#include <cstdio>
#include <cstdlib>

namespace incdb {
namespace bench {

uint64_t BenchRows(uint64_t fallback) {
  const char* env = std::getenv("INCDB_BENCH_ROWS");
  if (env != nullptr) {
    const long long parsed = std::atoll(env);
    if (parsed > 0) return static_cast<uint64_t>(parsed);
  }
  return fallback;
}

size_t BenchQueries() {
  const char* env = std::getenv("INCDB_BENCH_QUERIES");
  if (env != nullptr) {
    const long long parsed = std::atoll(env);
    if (parsed > 0) return static_cast<size_t>(parsed);
  }
  return 100;
}

void PrintHeader(const std::vector<std::string>& columns) {
  PrintRow(columns);
}

void PrintRow(const std::vector<std::string>& cells) {
  for (size_t i = 0; i < cells.size(); ++i) {
    std::fputs(cells[i].c_str(), stdout);
    std::fputc(i + 1 == cells.size() ? '\n' : ',', stdout);
  }
  std::fflush(stdout);
}

std::string FormatDouble(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

std::string FormatBytesAsMB(uint64_t bytes) {
  return FormatDouble(static_cast<double>(bytes) / (1024.0 * 1024.0), 3);
}

WorkloadResult MustRunWorkload(const IncompleteIndex& index,
                               const std::vector<RangeQuery>& queries,
                               uint64_t num_rows) {
  auto result = RunWorkload(index, queries, num_rows);
  if (!result.ok()) {
    std::fprintf(stderr, "workload failed: %s\n",
                 result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(result).value();
}

std::unique_ptr<IncompleteIndex> MustCreateIndex(IndexKind kind,
                                                 const Table& table) {
  auto index = CreateIndex(kind, table);
  if (!index.ok()) {
    std::fprintf(stderr, "index build failed (%s): %s\n",
                 std::string(IndexKindToString(kind)).c_str(),
                 index.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(index).value();
}

std::vector<RangeQuery> MustGenerateWorkload(const Table& table,
                                             const WorkloadParams& params) {
  auto queries = GenerateWorkload(table, params);
  if (!queries.ok()) {
    std::fprintf(stderr, "workload generation failed: %s\n",
                 queries.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(queries).value();
}

}  // namespace bench
}  // namespace incdb
