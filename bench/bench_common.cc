#include "bench/bench_common.h"

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>

namespace incdb {
namespace bench {

namespace {

struct JsonEntry {
  std::string bench;
  std::string config;
  double millis;
  uint64_t bytes;
};

std::string g_json_path;                 // NOLINT: bench-process lifetime
std::vector<JsonEntry>* g_json_entries;  // NOLINT

// Function-local static instead of a raw `new` so the storage is
// RAII-managed; the pointer above doubles as the "--json enabled" flag.
std::vector<JsonEntry>& JsonEntriesStorage() {
  static std::vector<JsonEntry> entries;  // NOLINT: bench-process lifetime
  return entries;
}

// Benchmark names/configs are plain identifiers, but escape defensively so
// the output is always valid JSON.
std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) < 0x20) {
      char buf[8];
      std::snprintf(buf, sizeof(buf), "\\u%04x", c);
      out += buf;
    } else {
      out += c;
    }
  }
  return out;
}

}  // namespace

void Init(int argc, char** argv) {
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--json") == 0 && i + 1 < argc) {
      g_json_path = argv[++i];
      if (g_json_entries == nullptr) g_json_entries = &JsonEntriesStorage();
    } else {
      std::fprintf(stderr, "usage: %s [--json <path>]\n", argv[0]);
      std::exit(2);
    }
  }
}

void RecordResult(const std::string& bench, const std::string& config,
                  double millis, uint64_t bytes) {
  if (g_json_entries == nullptr) return;
  g_json_entries->push_back({bench, config, millis, bytes});
}

void WriteJson() {
  if (g_json_path.empty()) return;
  std::ofstream out(g_json_path);
  if (!out) {
    std::fprintf(stderr, "cannot open '%s' for writing\n",
                 g_json_path.c_str());
    std::exit(1);
  }
  out << "{\n  \"results\": [";
  const std::vector<JsonEntry>& entries = *g_json_entries;
  for (size_t i = 0; i < entries.size(); ++i) {
    out << (i == 0 ? "\n" : ",\n");
    char millis[64];
    std::snprintf(millis, sizeof(millis), "%.4f", entries[i].millis);
    out << "    {\"bench\": \"" << JsonEscape(entries[i].bench)
        << "\", \"config\": \"" << JsonEscape(entries[i].config)
        << "\", \"millis\": " << millis
        << ", \"bytes\": " << entries[i].bytes << "}";
  }
  out << "\n  ]\n}\n";
}

uint64_t BenchRows(uint64_t fallback) {
  const char* env = std::getenv("INCDB_BENCH_ROWS");
  if (env != nullptr) {
    const long long parsed = std::atoll(env);
    if (parsed > 0) return static_cast<uint64_t>(parsed);
  }
  return fallback;
}

size_t BenchQueries() {
  const char* env = std::getenv("INCDB_BENCH_QUERIES");
  if (env != nullptr) {
    const long long parsed = std::atoll(env);
    if (parsed > 0) return static_cast<size_t>(parsed);
  }
  return 100;
}

void PrintHeader(const std::vector<std::string>& columns) {
  PrintRow(columns);
}

void PrintRow(const std::vector<std::string>& cells) {
  for (size_t i = 0; i < cells.size(); ++i) {
    std::fputs(cells[i].c_str(), stdout);
    std::fputc(i + 1 == cells.size() ? '\n' : ',', stdout);
  }
  std::fflush(stdout);
}

std::string FormatDouble(double value, int decimals) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "%.*f", decimals, value);
  return buf;
}

std::string FormatBytesAsMB(uint64_t bytes) {
  return FormatDouble(static_cast<double>(bytes) / (1024.0 * 1024.0), 3);
}

WorkloadResult MustRunWorkload(const IncompleteIndex& index,
                               const std::vector<RangeQuery>& queries,
                               uint64_t num_rows) {
  auto result = RunWorkload(index, queries, num_rows);
  if (!result.ok()) {
    std::fprintf(stderr, "workload failed: %s\n",
                 result.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(result).value();
}

std::unique_ptr<IncompleteIndex> MustCreateIndex(IndexKind kind,
                                                 const Table& table) {
  auto index = CreateIndex(kind, table);
  if (!index.ok()) {
    std::fprintf(stderr, "index build failed (%s): %s\n",
                 std::string(IndexKindToString(kind)).c_str(),
                 index.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(index).value();
}

std::vector<RangeQuery> MustGenerateWorkload(const Table& table,
                                             const WorkloadParams& params) {
  auto queries = GenerateWorkload(table, params);
  if (!queries.ok()) {
    std::fprintf(stderr, "workload generation failed: %s\n",
                 queries.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(queries).value();
}

}  // namespace bench
}  // namespace incdb
