// Space-vs-probes study for the slicer x encoder architecture: the direct
// equality index against the multi-component (Chan-Ioannidis O(sum of
// radices) bitmaps) and hierarchical (O(log C) probes per wide range)
// composite kinds, with bit-sliced as the compact-storage yardstick,
// across three cardinality decades.
//
// Expected shape: at C=100 equality is competitive everywhere; at C=10k
// the O(C) bitmap count starts to hurt storage; at C=1M equality pays for
// a million mostly-empty bitvectors while MC stores ~2 sqrt(C) = 2000 and
// hierarchical answers wide ranges in <= 2 log2(C) probes.

#include <cstdio>
#include <random>

#include "bench/bench_common.h"
#include "table/generator.h"

namespace incdb {
namespace {

std::vector<RangeQuery> MakeQueries(uint32_t cardinality, bool point,
                                    uint64_t seed) {
  std::mt19937_64 rng(seed);
  // Wide ranges cover 70% of the domain (the regime where equality probes
  // O(C) bitmaps and hierarchical probes O(log C)).
  const uint32_t width =
      point ? 1 : std::max<uint32_t>(1, (cardinality * 7) / 10);
  std::vector<RangeQuery> queries(bench::BenchQueries());
  for (RangeQuery& query : queries) {
    const uint32_t lo = 1 + static_cast<uint32_t>(
                                rng() % (cardinality - width + 1));
    query.terms = {{0, {static_cast<Value>(lo),
                        static_cast<Value>(lo + width - 1)}}};
    query.semantics = MissingSemantics::kNoMatch;
  }
  return queries;
}

int Main() {
  const uint64_t rows = bench::BenchRows(100000);
  const IndexKind kinds[] = {
      IndexKind::kBitmapEquality,
      IndexKind::kBitmapMultiComponent,
      IndexKind::kBitmapHierarchical,
      IndexKind::kBitmapBitSliced,
  };

  std::printf("# Encoding space-vs-probes crossover (%llu rows, 1 attribute, "
              "10%% missing, %zu queries per shape)\n",
              static_cast<unsigned long long>(rows), bench::BenchQueries());
  bench::PrintHeader(
      {"cardinality", "kind", "build_mb", "point_ms", "wide_range_ms"});

  for (uint32_t cardinality : {100u, 10'000u, 1'000'000u}) {
    const Table table =
        GenerateTable(UniformSpec(rows, cardinality, 0.10, 1, 42)).value();
    const std::vector<RangeQuery> point_queries =
        MakeQueries(cardinality, /*point=*/true, 7);
    const std::vector<RangeQuery> wide_queries =
        MakeQueries(cardinality, /*point=*/false, 11);
    const std::string config = "C=" + std::to_string(cardinality);
    for (IndexKind kind : kinds) {
      // One index alive at a time: C=1M equality alone holds a million
      // bitvectors and the fleet would otherwise dominate peak RSS.
      const std::unique_ptr<IncompleteIndex> index =
          bench::MustCreateIndex(kind, table);
      const uint64_t bytes = index->SizeInBytes();
      const double point_ms =
          bench::MustRunWorkload(*index, point_queries, rows).total_millis;
      const double wide_ms =
          bench::MustRunWorkload(*index, wide_queries, rows).total_millis;
      const std::string name(IndexKindToString(kind));
      bench::PrintRow({std::to_string(cardinality), name,
                       bench::FormatBytesAsMB(bytes),
                       bench::FormatDouble(point_ms, 2),
                       bench::FormatDouble(wide_ms, 2)});
      bench::RecordResult("build_size@" + name, config, 0.0, bytes);
      bench::RecordResult("point@" + name, config, point_ms, bytes);
      bench::RecordResult("wide_range@" + name, config, wide_ms, bytes);
    }
  }
  bench::WriteJson();
  return 0;
}

}  // namespace
}  // namespace incdb

int main(int argc, char** argv) {
  incdb::bench::Init(argc, argv);
  return incdb::Main();
}
