// Compares the paper's techniques against the prior missing-data indexing
// techniques from [12] (Ooi, Goh, Tan, VLDB'98) that §2 argues against:
// MOSAIC (per-attribute B+-trees + set operations, 2k subqueries) and the
// bitstring-augmented multi-dimensional index (2^k subqueries).
//
// Sweeps query dimensionality at fixed global selectivity; the expected
// shape is linear growth for BEE/BRE/VA versus the bitstring-augmented
// index's exponential subquery count and MOSAIC's set-operation overhead on
// low-selectivity single dimensions.

#include <cstdio>

#include "bench/bench_common.h"
#include "table/generator.h"

namespace incdb {
namespace {

int Main() {
  // Modest scale: the bitstring-augmented R-tree is the bottleneck (it is
  // the point of this bench).
  const uint64_t rows = bench::BenchRows(20000);
  const Table table =
      GenerateTable(UniformSpec(rows, 10, 0.20, 10, 42)).value();

  const auto bee = bench::MustCreateIndex(IndexKind::kBitmapEquality, table);
  const auto bre = bench::MustCreateIndex(IndexKind::kBitmapRange, table);
  const auto va = bench::MustCreateIndex(IndexKind::kVaFile, table);
  const auto mosaic = bench::MustCreateIndex(IndexKind::kMosaic, table);
  const auto bitstring =
      bench::MustCreateIndex(IndexKind::kBitstringAugmented, table);

  std::printf("# Ours vs [12] baselines: query time vs dimensionality "
              "(%llu rows, cardinality 10, 20%% missing, GS=1%%, "
              "missing-is-match, %zu queries)\n",
              static_cast<unsigned long long>(rows), bench::BenchQueries());
  bench::PrintHeader({"dims", "bee_wah_ms", "bre_wah_ms", "va_file_ms",
                      "mosaic_ms", "bitstring_ms", "bitstring_subqueries"});
  for (size_t dims : {1u, 2u, 4u, 6u, 8u, 10u}) {
    WorkloadParams params;
    params.num_queries = bench::BenchQueries();
    params.dims = dims;
    params.global_selectivity = 0.01;
    params.semantics = MissingSemantics::kMatch;
    params.seed = 7;
    const std::vector<RangeQuery> queries =
        bench::MustGenerateWorkload(table, params);

    const WorkloadResult bitstring_result =
        bench::MustRunWorkload(*bitstring, queries, rows);
    bench::PrintRow(
        {std::to_string(dims),
         bench::FormatDouble(
             bench::MustRunWorkload(*bee, queries, rows).total_millis, 2),
         bench::FormatDouble(
             bench::MustRunWorkload(*bre, queries, rows).total_millis, 2),
         bench::FormatDouble(
             bench::MustRunWorkload(*va, queries, rows).total_millis, 2),
         bench::FormatDouble(
             bench::MustRunWorkload(*mosaic, queries, rows).total_millis, 2),
         bench::FormatDouble(bitstring_result.total_millis, 2),
         std::to_string(bitstring_result.stats.subqueries)});
  }

  std::printf("\n# Index sizes for the same dataset\n");
  bench::PrintHeader({"index", "size_mb"});
  for (const IncompleteIndex* index :
       {bee.get(), bre.get(), va.get(), mosaic.get(), bitstring.get()}) {
    bench::PrintRow(
        {index->Name(), bench::FormatBytesAsMB(index->SizeInBytes())});
  }
  return 0;
}

}  // namespace
}  // namespace incdb

int main() { return incdb::Main(); }
