// End-to-end serving throughput through the real network stack: a live
// incdb_serverd-equivalent Server on loopback, N client threads each with
// their own TCP connection firing queries back-to-back, measured as QPS
// versus client count — with and without a concurrent writer publishing
// new epochs for the whole measurement. Unlike bench_concurrent_serving
// (which calls Database::RunBatch in-process), every request here pays
// the full tax: frame encode, syscalls, admission, the worker-pool queue,
// snapshot pinning, and the response frame back.
//
// The spread between the two benchmarks is the cost of the serving layer
// itself; the writer-on/off spread is the epoch-churn tax, which snapshot
// pinning should keep near zero.

#include <atomic>
#include <chrono>
#include <cstdio>
#include <thread>
#include <vector>

#include "bench/bench_common.h"
#include "core/database.h"
#include "server/client.h"
#include "server/server.h"
#include "table/generator.h"

namespace incdb {
namespace {

std::vector<QueryRequest> MakeRequests(const Table& table,
                                       const std::vector<RangeQuery>& queries) {
  std::vector<QueryRequest> requests;
  requests.reserve(queries.size());
  for (const RangeQuery& query : queries) {
    std::vector<NamedTerm> terms;
    terms.reserve(query.terms.size());
    for (const QueryTerm& term : query.terms) {
      terms.push_back({table.schema().attribute(term.attribute).name,
                       term.interval.lo, term.interval.hi});
    }
    requests.push_back(
        QueryRequest::Terms(std::move(terms), query.semantics).CountOnly(true));
  }
  return requests;
}

void RunConfig(const Database& db, const std::vector<QueryRequest>& requests,
               size_t clients, bool with_writer, Database* writable) {
  server::ServerOptions options;
  options.queue_capacity = 1024;  // measure throughput, not backpressure
  auto server = server::Server::Start(&db, std::move(options));
  if (!server.ok()) {
    std::fprintf(stderr, "FATAL: Server::Start: %s\n",
                 server.status().ToString().c_str());
    std::exit(1);
  }

  std::atomic<bool> stop{false};
  std::thread writer;
  if (with_writer) {
    writer = std::thread([writable, &stop]() {
      const size_t dims = writable->table().num_attributes();
      uint64_t i = 0;
      while (!stop.load(std::memory_order_relaxed)) {
        std::vector<Value> row(dims);
        for (size_t a = 0; a < dims; ++a) {
          row[a] = static_cast<Value>(1 + (i * 7 + a * 3) % 10);
        }
        if (!writable->Insert(row).ok()) break;
        ++i;
        std::this_thread::sleep_for(std::chrono::microseconds(100));
      }
    });
  }

  // Static sharding: client c owns every (clients)-th request.
  std::atomic<uint64_t> errors{0};
  std::atomic<uint64_t> matches{0};
  const auto start = std::chrono::steady_clock::now();
  std::vector<std::thread> pool;
  pool.reserve(clients);
  for (size_t c = 0; c < clients; ++c) {
    pool.emplace_back([&, c]() {
      auto client = server::Client::Connect("127.0.0.1", (*server)->port());
      if (!client.ok()) {
        errors.fetch_add(1, std::memory_order_relaxed);
        return;
      }
      for (size_t i = c; i < requests.size(); i += clients) {
        const auto result = client->Run(requests[i]);
        if (result.ok()) {
          matches.fetch_add(result->count, std::memory_order_relaxed);
        } else {
          errors.fetch_add(1, std::memory_order_relaxed);
        }
      }
    });
  }
  for (auto& thread : pool) thread.join();
  const double wall_millis =
      std::chrono::duration<double, std::milli>(std::chrono::steady_clock::now() -
                                                start)
          .count();

  stop.store(true);
  if (writer.joinable()) writer.join();
  const server::wire::ServerStats stats = (*server)->StatsSnapshot();
  (*server)->Shutdown();

  const double qps =
      wall_millis > 0.0
          ? 1000.0 * static_cast<double>(requests.size()) / wall_millis
          : 0.0;
  const std::string config = "clients=" + std::to_string(clients) +
                             ",writer=" + (with_writer ? "on" : "off");
  bench::PrintRow({std::to_string(clients), with_writer ? "on" : "off",
                   std::to_string(requests.size()),
                   bench::FormatDouble(wall_millis, 2),
                   bench::FormatDouble(qps, 1),
                   std::to_string(stats.p50_micros),
                   std::to_string(stats.p99_micros),
                   std::to_string(errors.load())});
  if (errors.load() > 0) {
    std::fprintf(stderr, "FATAL: %llu failed requests in %s\n",
                 static_cast<unsigned long long>(errors.load()),
                 config.c_str());
    std::exit(1);
  }
  bench::RecordResult("serving_qps", config, wall_millis, matches.load());
}

int Main(int argc, char** argv) {
  bench::Init(argc, argv);
  // Paper-scale default: a multi-million-row table. CI smoke runs shrink
  // it via INCDB_BENCH_ROWS.
  const uint64_t rows = bench::BenchRows(2000000);

  const Table base = GenerateTable(UniformSpec(rows, 10, 0.1, 4, 42)).value();
  Database db = Database::FromTable(Table(base)).value();
  if (!db.BuildIndex(IndexKind::kBitmapEquality).ok() ||
      !db.BuildIndex(IndexKind::kBitmapRange).ok()) {
    std::fprintf(stderr, "FATAL: BuildIndex failed\n");
    std::exit(1);
  }

  WorkloadParams params;
  params.num_queries = bench::BenchQueries() * 8;
  params.dims = 4;
  params.global_selectivity = 0.01;
  params.semantics = MissingSemantics::kMatch;
  params.seed = 7;
  const std::vector<QueryRequest> requests =
      MakeRequests(base, bench::MustGenerateWorkload(base, params));

  bench::PrintHeader({"clients", "writer", "queries", "wall_ms", "qps",
                      "p50_us", "p99_us", "errors"});
  for (const bool with_writer : {false, true}) {
    for (const size_t clients : {1, 2, 4, 8}) {
      RunConfig(db, requests, clients, with_writer, &db);
    }
  }
  bench::WriteJson();
  return 0;
}

}  // namespace
}  // namespace incdb

int main(int argc, char** argv) { return incdb::Main(argc, argv); }
