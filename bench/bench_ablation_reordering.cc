// Ablation for the paper's §6 future work: "we would like to explore
// techniques such as BBC compression and row reordering in order to
// achieve more compression of these [range-encoded] bitmaps."
//
// Reorders rows lexicographically (lowest-cardinality attributes first) and
// re-measures both bitmap encodings' compressed sizes, on uniform and on
// census-like skewed data. The range encoding — incompressible in place —
// is where reordering pays off most.

#include <cstdio>

#include "bench/bench_common.h"
#include "bitmap/bitmap_index.h"
#include "table/generator.h"
#include "table/reorder.h"

namespace incdb {
namespace {

void Report(const char* dataset, const Table& table) {
  const Table reordered =
      ReorderRows(table, LexicographicOrder(table)).value();
  for (BitmapEncoding encoding :
       {BitmapEncoding::kEquality, BitmapEncoding::kRange}) {
    const BitmapIndex before =
        BitmapIndex::Build(table, {encoding, MissingStrategy::kExtraBitmap})
            .value();
    const BitmapIndex after =
        BitmapIndex::Build(reordered,
                           {encoding, MissingStrategy::kExtraBitmap})
            .value();
    bench::PrintRow(
        {dataset, std::string(BitmapEncodingToString(encoding)),
         bench::FormatBytesAsMB(before.SizeInBytes()),
         bench::FormatBytesAsMB(after.SizeInBytes()),
         bench::FormatDouble(before.CompressionRatio(), 3),
         bench::FormatDouble(after.CompressionRatio(), 3),
         bench::FormatDouble(static_cast<double>(before.SizeInBytes()) /
                                 static_cast<double>(after.SizeInBytes()),
                             2)});
  }
}

int Main() {
  const uint64_t rows = bench::BenchRows(100000);
  std::printf("# Row-reordering ablation (%llu rows; lexicographic order, "
              "lowest-cardinality attributes first)\n",
              static_cast<unsigned long long>(rows));
  bench::PrintHeader({"dataset", "encoding", "before_mb", "after_mb",
                      "before_ratio", "after_ratio", "shrink_factor"});

  Report("uniform_c10_m20",
         GenerateTable(UniformSpec(rows, 10, 0.20, 8, 42)).value());
  Report("uniform_c50_m10",
         GenerateTable(UniformSpec(rows, 50, 0.10, 8, 42)).value());

  DatasetSpec census = CensusLikeSpec(rows, 42);
  census.attributes.resize(16);  // a representative slice for runtime
  Report("census_like_16attr", GenerateTable(census).value());
  return 0;
}

}  // namespace
}  // namespace incdb

int main() { return incdb::Main(); }
