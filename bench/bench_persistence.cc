// Measures the persistence path: Save() throughput, Open() latency with
// and without checksum verification, and the first-query / steady-state
// cost of serving straight off the mmap-borrowed store.
//
// The acceptance property is that the unverified open is O(1) in the data:
// it parses the manifest and catalog and maps the segment, but never
// touches the WAH code words or packed VA arrays, so its latency must stay
// flat as rows (and therefore segment bytes) grow. The verified open and
// Save are the ones allowed to scale. First-query time on a cold open is
// reported separately because it is where the page-ins actually land.
//
// Usage: bench_persistence [--json <path>]
// With --json, per-size timings are also written as the machine-readable
// BENCH_persistence.json trajectory file.

#include <dirent.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "common/timer.h"
#include "core/database.h"
#include "table/generator.h"

namespace incdb {
namespace {

uint64_t g_sink = 0;

constexpr const char* kStoreDir = "bench_persistence_store.incdb";

Database MustMakeDatabase(uint64_t num_rows) {
  DatasetSpec spec;
  spec.seed = 20060329;  // EDBT'06
  spec.num_rows = num_rows;
  spec.attributes.push_back({"a0", 25, 0.10, 0.0});
  spec.attributes.push_back({"a1", 50, 0.10, 0.8});
  spec.attributes.push_back({"a2", 100, 0.10, 0.0});
  spec.attributes.push_back({"a3", 12, 0.10, 0.0});
  auto table = GenerateTable(spec);
  if (!table.ok()) {
    std::fprintf(stderr, "generate: %s\n", table.status().ToString().c_str());
    std::exit(1);
  }
  auto db = Database::FromTable(std::move(table).value());
  if (!db.ok()) {
    std::fprintf(stderr, "database: %s\n", db.status().ToString().c_str());
    std::exit(1);
  }
  for (IndexKind kind : {IndexKind::kBitmapEquality, IndexKind::kVaFile}) {
    const Status status = db->BuildIndex(kind);
    if (!status.ok()) {
      std::fprintf(stderr, "index: %s\n", status.ToString().c_str());
      std::exit(1);
    }
  }
  return std::move(db).value();
}

uint64_t FileBytes(const std::string& path) {
  struct stat info;
  return stat(path.c_str(), &info) == 0
             ? static_cast<uint64_t>(info.st_size)
             : 0;
}

/// File names (manifest + whatever generation is present) in the store.
std::vector<std::string> StoreFiles() {
  std::vector<std::string> names;
  DIR* dir = ::opendir(kStoreDir);
  if (dir == nullptr) return names;
  while (struct dirent* entry = ::readdir(dir)) {
    const std::string name = entry->d_name;
    if (name == "." || name == "..") continue;
    names.push_back(name);
  }
  ::closedir(dir);
  return names;
}

uint64_t StoreBytes() {
  uint64_t total = 0;
  for (const std::string& file : StoreFiles()) {
    total += FileBytes(std::string(kStoreDir) + "/" + file);
  }
  return total;
}

void RemoveStore() {
  for (const std::string& file : StoreFiles()) {
    std::remove((std::string(kStoreDir) + "/" + file).c_str());
  }
  rmdir(kStoreDir);
}

Database MustOpen(bool verify) {
  auto db = Database::Open(kStoreDir, verify);
  if (!db.ok()) {
    std::fprintf(stderr, "open: %s\n", db.status().ToString().c_str());
    std::exit(1);
  }
  return std::move(db).value();
}

double MustQueryMillis(const Database& db) {
  Timer timer;
  const auto result = db.Run(QueryRequest::Text(
      "a0 IN [5,9] AND a2 IN [20,60]", MissingSemantics::kNoMatch));
  const double millis = timer.ElapsedMillis();
  if (!result.ok()) {
    std::fprintf(stderr, "query: %s\n", result.status().ToString().c_str());
    std::exit(1);
  }
  g_sink += result->count;
  return millis;
}

}  // namespace

int BenchMain(int argc, char** argv) {
  bench::Init(argc, argv);
  const uint64_t base_rows = bench::BenchRows(400000);
  const std::vector<uint64_t> sizes = {base_rows / 16, base_rows / 4,
                                       base_rows};

  bench::PrintHeader({"rows", "store_MB", "save_ms", "open_verified_ms",
                      "open_mmap_ms", "first_query_ms", "steady_query_ms"});

  for (const uint64_t rows : sizes) {
    Database db = MustMakeDatabase(rows);
    RemoveStore();

    Timer save_timer;
    const Status saved = db.Save(kStoreDir);
    const double save_ms = save_timer.ElapsedMillis();
    if (!saved.ok()) {
      std::fprintf(stderr, "save: %s\n", saved.ToString().c_str());
      return 1;
    }
    const uint64_t store_bytes = StoreBytes();

    Timer verified_timer;
    { Database opened = MustOpen(/*verify=*/true); }
    const double open_verified_ms = verified_timer.ElapsedMillis();

    // The headline number: pure mmap open, no byte of WAH or VA data read.
    Timer mmap_timer;
    Database served = MustOpen(/*verify=*/false);
    const double open_mmap_ms = mmap_timer.ElapsedMillis();

    const double first_query_ms = MustQueryMillis(served);
    double steady_ms = 0.0;
    constexpr int kSteadyRuns = 16;
    for (int i = 0; i < kSteadyRuns; ++i) steady_ms += MustQueryMillis(served);
    steady_ms /= kSteadyRuns;

    const std::string config = "rows=" + std::to_string(rows);
    bench::RecordResult("save", config, save_ms, store_bytes);
    bench::RecordResult("open_verified", config, open_verified_ms,
                        store_bytes);
    bench::RecordResult("open_mmap", config, open_mmap_ms, store_bytes);
    bench::RecordResult("first_query", config, first_query_ms, store_bytes);
    bench::RecordResult("steady_query", config, steady_ms, store_bytes);

    bench::PrintRow({std::to_string(rows), bench::FormatBytesAsMB(store_bytes),
                     bench::FormatDouble(save_ms),
                     bench::FormatDouble(open_verified_ms),
                     bench::FormatDouble(open_mmap_ms),
                     bench::FormatDouble(first_query_ms),
                     bench::FormatDouble(steady_ms)});
    RemoveStore();
  }

  if (g_sink == 0) std::fprintf(stderr, "# sink empty (unexpected)\n");
  bench::WriteJson();
  return 0;
}

}  // namespace incdb

int main(int argc, char** argv) { return incdb::BenchMain(argc, argv); }
