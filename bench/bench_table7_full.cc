// Builds the paper's FULL synthetic dataset (Table 7 left: 100,000 rows x
// 450 attributes, cardinalities {2,5,10,20,50,100} x missing {10..50}%)
// and indexes every attribute with each scalable family, reporting build
// time and total index size — the whole-dataset companion to Fig. 4's
// per-slice numbers, plus an 8-dim query-time spot check.

#include <cstdio>

#include "bench/bench_common.h"
#include "bitmap/bitmap_index.h"
#include "common/timer.h"
#include "table/generator.h"
#include "vafile/va_file.h"

namespace incdb {
namespace {

int Main() {
  const uint64_t rows = bench::BenchRows(100000);
  Timer generate_timer;
  const Table table = GenerateTable(PaperSyntheticSpec(rows, 42)).value();
  std::printf("# Full Table 7 synthetic dataset: %s (generated in %.1f s)\n",
              table.Summary().c_str(),
              generate_timer.ElapsedMillis() / 1000.0);
  std::printf("# raw data: %s MB\n",
              bench::FormatBytesAsMB(table.DataSizeInBytes()).c_str());

  bench::PrintHeader({"index", "build_s", "size_mb", "compression_ratio"});
  struct Entry {
    std::string name;
    const IncompleteIndex* index;
  };
  std::vector<std::unique_ptr<IncompleteIndex>> keep_alive;
  std::vector<Entry> entries;

  for (BitmapEncoding encoding :
       {BitmapEncoding::kEquality, BitmapEncoding::kRange,
        BitmapEncoding::kBitSliced}) {
    Timer timer;
    auto index = BitmapIndex::Build(
        table, {encoding, MissingStrategy::kExtraBitmap});
    const double seconds = timer.ElapsedMillis() / 1000.0;
    if (!index.ok()) {
      std::fprintf(stderr, "%s\n", index.status().ToString().c_str());
      return 1;
    }
    auto owned = std::make_unique<BitmapIndex>(std::move(index).value());
    bench::PrintRow({owned->Name(), bench::FormatDouble(seconds, 1),
                     bench::FormatBytesAsMB(owned->SizeInBytes()),
                     bench::FormatDouble(owned->CompressionRatio(), 3)});
    entries.push_back({owned->Name(), owned.get()});
    keep_alive.push_back(std::move(owned));
  }
  {
    Timer timer;
    auto va = VaFile::Build(table);
    const double seconds = timer.ElapsedMillis() / 1000.0;
    if (!va.ok()) {
      std::fprintf(stderr, "%s\n", va.status().ToString().c_str());
      return 1;
    }
    auto owned = std::make_unique<VaFile>(std::move(va).value());
    bench::PrintRow({owned->Name(), bench::FormatDouble(seconds, 1),
                     bench::FormatBytesAsMB(owned->SizeInBytes()), "-"});
    entries.push_back({owned->Name(), owned.get()});
    keep_alive.push_back(std::move(owned));
  }

  // Spot check: 8-dim 1%-GS queries across the full-width schema.
  WorkloadParams params;
  params.num_queries = bench::BenchQueries();
  params.dims = 8;
  params.global_selectivity = 0.01;
  params.seed = 7;
  const std::vector<RangeQuery> queries =
      bench::MustGenerateWorkload(table, params);
  std::printf("\n# 8-dim queries over the 450-attribute schema "
              "(%zu queries, GS=1%%)\n", params.num_queries);
  bench::PrintHeader({"index", "time_ms"});
  for (const Entry& entry : entries) {
    bench::PrintRow(
        {entry.name,
         bench::FormatDouble(
             bench::MustRunWorkload(*entry.index, queries, rows).total_millis,
             2)});
  }
  return 0;
}

}  // namespace
}  // namespace incdb

int main() { return incdb::Main(); }
