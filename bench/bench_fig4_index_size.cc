// Reproduces paper Fig. 4: index size of BEE-WAH, BRE-WAH and the VA-file
// (a) versus attribute cardinality at 10% missing data, and (b) versus the
// percentage of missing data at cardinality 50. Paper setting: 100,000
// uniformly distributed records; sizes reported per 10-attribute group in
// MB plus per-encoding compression ratios.
//
// Expected shapes (paper §5.2): BEE-WAH grows with cardinality but
// compresses increasingly well; BRE-WAH gets no benefit from WAH and grows
// linearly; the VA-file is far smaller and nearly flat. BEE shrinks as
// missing grows; BRE and VA are insensitive to missing data.

#include <cstdio>

#include "bench/bench_common.h"
#include "bitmap/bitmap_index.h"
#include "table/generator.h"
#include "vafile/va_file.h"

namespace incdb {
namespace {

constexpr size_t kAttributes = 10;

void PrintSizes(const char* sweep_value, const Table& table) {
  const BitmapIndex bee =
      BitmapIndex::Build(table, {BitmapEncoding::kEquality,
                                 MissingStrategy::kExtraBitmap})
          .value();
  const BitmapIndex bre =
      BitmapIndex::Build(table,
                         {BitmapEncoding::kRange, MissingStrategy::kExtraBitmap})
          .value();
  const VaFile va = VaFile::Build(table).value();
  bench::PrintRow({sweep_value, bench::FormatBytesAsMB(bee.SizeInBytes()),
                   bench::FormatBytesAsMB(bre.SizeInBytes()),
                   bench::FormatBytesAsMB(va.SizeInBytes()),
                   bench::FormatDouble(bee.CompressionRatio(), 3),
                   bench::FormatDouble(bre.CompressionRatio(), 3)});
}

int Main() {
  const uint64_t rows = bench::BenchRows(100000);

  std::printf("# Fig. 4(a): index size vs cardinality "
              "(%llu rows, %zu attributes, 10%% missing)\n",
              static_cast<unsigned long long>(rows), kAttributes);
  bench::PrintHeader({"cardinality", "bee_wah_mb", "bre_wah_mb", "va_file_mb",
                      "bee_ratio", "bre_ratio"});
  for (uint32_t cardinality : {2u, 5u, 10u, 20u, 50u, 100u}) {
    const Table table =
        GenerateTable(UniformSpec(rows, cardinality, 0.10, kAttributes, 42))
            .value();
    PrintSizes(std::to_string(cardinality).c_str(), table);
  }

  std::printf("\n# Fig. 4(b): index size vs %% missing data "
              "(%llu rows, %zu attributes, cardinality 50)\n",
              static_cast<unsigned long long>(rows), kAttributes);
  bench::PrintHeader({"missing_pct", "bee_wah_mb", "bre_wah_mb", "va_file_mb",
                      "bee_ratio", "bre_ratio"});
  for (int missing_pct : {10, 20, 30, 40, 50}) {
    const Table table =
        GenerateTable(
            UniformSpec(rows, 50, missing_pct / 100.0, kAttributes, 42))
            .value();
    PrintSizes(std::to_string(missing_pct).c_str(), table);
  }
  return 0;
}

}  // namespace
}  // namespace incdb

int main() { return incdb::Main(); }
