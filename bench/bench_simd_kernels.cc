// Measures the windowed hybrid fusion engine (dense-block SIMD fast path +
// runtime-dispatched kernels) against the pure compressed-form scalar
// engine it replaces, across bit density, operand count, code-word width
// and dispatch level.
//
// The baseline mode ("base") forces scalar kernels AND disables the dense
// path (threshold > 1), which is exactly the pre-SIMD multiway engine.
// Each dispatch-level mode re-enables the production threshold, so a row's
// speedup column reads as "what this CPU level buys end to end".
//
// Expected shape: on dense inputs (>= 50% literal groups) the decode +
// vector-combine path clears 2x over the baseline for every fused kernel
// at k >= 8; on sparse clustered inputs the density peek keeps every
// window on the compressed-form strategies, so times stay within noise of
// the baseline (the +-10% acceptance band).
//
// Usage: bench_simd_kernels [--json <path>]
// With --json, per-configuration timings are written as the
// machine-readable BENCH_simd_kernels.json trajectory file.

#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

#include "bench/bench_common.h"
#include "bitvector/bitvector.h"
#include "common/rng.h"
#include "common/timer.h"
#include "compression/wah_bitvector.h"
#include "simd/simd.h"

namespace incdb {
namespace {

// Accumulated so the optimizer cannot discard the timed work.
uint64_t g_sink = 0;

struct DensityConfig {
  const char* name;
  double density;    // fraction of set bits
  uint64_t run_len;  // average length of a run of set bits (1 = uniform)
};

// clustered1pct is the fill-heavy regime bitmap-index operands live in
// (must not regress); uniform5pct is literal-heavy despite its low bit
// density (1 - 0.95^31 of groups are literals); dense50pct is the
// acceptance regime for the SIMD fast path.
constexpr DensityConfig kDensities[] = {
    {"clustered1pct", 0.01, 64},
    {"uniform5pct", 0.05, 1},
    {"dense50pct", 0.50, 1},
};

constexpr size_t kOperandCounts[] = {2, 4, 8, 16, 32};

// Set bits arrive in geometric runs of mean `run_len`, spaced so the
// overall density is `density` (same generator as bench_wah_multiway).
BitVector ClusteredBits(uint64_t n, double density, uint64_t run_len,
                        Rng& rng) {
  BitVector bits(n);
  if (density <= 0.0) return bits;
  if (run_len <= 1) {
    for (uint64_t i = 0; i < n; ++i) {
      if (rng.Bernoulli(density)) bits.Set(i);
    }
    return bits;
  }
  const double start_p = density / (static_cast<double>(run_len) *
                                    std::max(1e-9, 1.0 - density));
  uint64_t i = 0;
  while (i < n) {
    if (rng.Bernoulli(start_p)) {
      uint64_t len = 1;
      while (len < 4 * run_len && rng.Bernoulli(1.0 - 1.0 / run_len)) ++len;
      for (uint64_t j = 0; j < len && i < n; ++j, ++i) bits.Set(i);
    } else {
      ++i;
    }
  }
  return bits;
}

// Best-of-reps with inner-loop calibration: sparse fused ops on 1M bits run
// in single-digit microseconds, far too small to time individually on a
// shared box, so tiny ops are looped until each timed sample covers at
// least ~100us of work.
template <typename Fn>
double BestMillis(int reps, Fn&& fn) {
  Timer calibrate;
  fn();
  const double once = calibrate.ElapsedMillis();
  const int iters =
      once >= 0.1 ? 1 : static_cast<int>(0.1 / std::max(once, 1e-6)) + 1;
  double best = 1e300;
  for (int r = 0; r < reps; ++r) {
    Timer timer;
    for (int i = 0; i < iters; ++i) fn();
    best = std::min(best, timer.ElapsedMillis() / iters);
  }
  return best;
}

struct KernelTimes {
  double or_many = 0;
  double and_many = 0;
  double or_count = 0;
  double and_count = 0;
};

std::vector<simd::Level> AvailableLevels() {
  std::vector<simd::Level> levels = {simd::Level::kScalar};
  if (simd::DetectedLevel() >= simd::Level::kSse2) {
    levels.push_back(simd::Level::kSse2);
  }
  if (simd::DetectedLevel() >= simd::Level::kAvx2) {
    levels.push_back(simd::Level::kAvx2);
  }
  return levels;
}

template <typename Word>
void RunSuite(const char* word_name, uint64_t num_bits, int reps,
              double dense_threshold) {
  using Vec = BasicWahBitVector<Word>;

  for (const DensityConfig& dc : kDensities) {
    for (size_t k : kOperandCounts) {
      Rng rng(0x9e3779b9u ^ (k * 131) ^
              static_cast<uint64_t>(dc.density * 1e6));
      std::vector<Vec> operands;
      operands.reserve(k);
      uint64_t bytes = 0;
      for (size_t i = 0; i < k; ++i) {
        operands.push_back(Vec::Compress(
            ClusteredBits(num_bits, dc.density, dc.run_len, rng)));
        bytes += operands.back().SizeInBytes();
      }
      std::vector<const Vec*> ptrs;
      for (const Vec& v : operands) ptrs.push_back(&v);
      const std::span<const Vec* const> span(ptrs.data(), ptrs.size());

      auto time_kernels = [&] {
        KernelTimes t;
        t.or_many = BestMillis(reps, [&] {
          g_sink += Vec::OrMany(span).NumWords();
        });
        t.and_many = BestMillis(reps, [&] {
          g_sink += Vec::AndMany(span).NumWords();
        });
        t.or_count = BestMillis(reps, [&] { g_sink += Vec::OrManyCount(span); });
        t.and_count = BestMillis(reps, [&] {
          g_sink += Vec::AndManyCount(span);
        });
        return t;
      };

      // Baseline: the pre-SIMD engine — scalar kernels, dense path off.
      simd::ForceLevelForTesting(simd::Level::kScalar);
      wah_internal::SetDenseBlockThresholdForTesting(2.0);
      const uint64_t or_expect = Vec::OrManyCount(span);
      const uint64_t and_expect = Vec::AndManyCount(span);
      const KernelTimes base = time_kernels();

      const std::string config = std::string(word_name) + "/" + dc.name +
                                 "/k" + std::to_string(k);
      bench::RecordResult("or_many@base", config, base.or_many, bytes);
      bench::RecordResult("and_many@base", config, base.and_many, bytes);
      bench::RecordResult("or_count@base", config, base.or_count, bytes);
      bench::RecordResult("and_count@base", config, base.and_count, bytes);

      for (simd::Level level : AvailableLevels()) {
        simd::ForceLevelForTesting(level);
        wah_internal::SetDenseBlockThresholdForTesting(dense_threshold);
        // Sanity: the hybrid engine must agree with the baseline.
        if (Vec::OrManyCount(span) != or_expect ||
            Vec::AndManyCount(span) != and_expect) {
          std::fprintf(stderr, "HYBRID/BASELINE MISMATCH (%s %s)\n",
                       config.c_str(), simd::LevelToString(level).data());
          std::exit(1);
        }
        const KernelTimes t = time_kernels();
        const std::string mode(simd::LevelToString(level));
        bench::PrintRow({config, mode, std::to_string(k),
                         bench::FormatDouble(t.or_many, 4),
                         bench::FormatDouble(base.or_many / t.or_many, 2),
                         bench::FormatDouble(t.and_many, 4),
                         bench::FormatDouble(base.and_many / t.and_many, 2),
                         bench::FormatDouble(t.or_count, 4),
                         bench::FormatDouble(base.or_count / t.or_count, 2),
                         bench::FormatDouble(t.and_count, 4),
                         bench::FormatDouble(base.and_count / t.and_count, 2)});
        bench::RecordResult("or_many@" + mode, config, t.or_many, bytes);
        bench::RecordResult("and_many@" + mode, config, t.and_many, bytes);
        bench::RecordResult("or_count@" + mode, config, t.or_count, bytes);
        bench::RecordResult("and_count@" + mode, config, t.and_count, bytes);
      }
    }
  }
}

int Main(int argc, char** argv) {
  bench::Init(argc, argv);
  const uint64_t num_bits = bench::BenchRows(1000000);
  const int reps = 9;  // identical-code cells showed +-15% at 5 on this box
  const double dense_threshold = wah_internal::DenseBlockThreshold();

  std::printf("# Hybrid SIMD fused WAH kernels vs the scalar "
              "compressed-form engine\n"
              "# (%llu bits per operand, best of %d runs; baseline = scalar "
              "kernels, dense path off;\n"
              "#  speedup columns are baseline/mode at dense threshold "
              "%.2f; detected level: %s)\n",
              static_cast<unsigned long long>(num_bits), reps,
              dense_threshold,
              simd::LevelToString(simd::DetectedLevel()).data());
  bench::PrintHeader({"config", "mode", "k", "or_ms", "or_x", "and_ms",
                      "and_x", "orcnt_ms", "orcnt_x", "andcnt_ms",
                      "andcnt_x"});
  RunSuite<uint32_t>("w32", num_bits, reps, dense_threshold);
  RunSuite<uint64_t>("w64", num_bits, reps, dense_threshold);

  std::printf("# checksum %llu\n", static_cast<unsigned long long>(g_sink));
  bench::WriteJson();
  return 0;
}

}  // namespace
}  // namespace incdb

int main(int argc, char** argv) { return incdb::Main(argc, argv); }
