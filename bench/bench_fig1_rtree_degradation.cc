// Reproduces paper Fig. 1: normalized query execution time on an R-tree
// over 2-D data where missing values are mapped to a sentinel inside the
// index, as the percentage of missing data grows. Queries have 25% global
// selectivity (50% attribute selectivity per dimension) and use
// missing-is-match semantics, which forces 2^k subqueries against the
// sentinel-mapped index. The paper reports ~23x degradation already at 10%
// missing; the growth trend (and its absence for the paper's techniques) is
// the reproduction target.
//
// Output columns: missing_pct, time_ms, normalized_time, node_accesses,
// normalized_accesses, matches.

#include <cstdio>
#include <vector>

#include "bench/bench_common.h"
#include "common/rng.h"
#include "common/timer.h"
#include "query/query.h"
#include "rtree/rtree.h"
#include "table/generator.h"

namespace incdb {
namespace {

constexpr uint32_t kCardinality = 1000;
constexpr int32_t kSentinel = 0;  // below the domain 1..1000

struct QueryBox {
  int32_t lo[2];
  int32_t hi[2];
};

RTree BuildSentinelRTree(const Table& table) {
  RTree tree(2, 16);
  std::vector<int32_t> point(2);
  for (uint64_t r = 0; r < table.num_rows(); ++r) {
    for (size_t a = 0; a < 2; ++a) {
      const Value v = table.Get(r, a);
      point[a] = IsMissing(v) ? kSentinel : v;
    }
    tree.Insert(point, static_cast<uint32_t>(r));
  }
  return tree;
}

int Main() {
  const uint64_t rows = bench::BenchRows(20000);
  const size_t num_queries = bench::BenchQueries();
  std::printf("# Fig. 1: R-tree query cost vs %% missing data "
              "(2-D, %llu rows, %zu queries, GS=25%%, missing-is-match)\n",
              static_cast<unsigned long long>(rows), num_queries);
  bench::PrintHeader({"missing_pct", "time_ms", "normalized_time",
                      "node_accesses", "normalized_accesses", "matches"});

  double base_time = 0.0;
  double base_accesses = 0.0;
  for (int missing_pct : {0, 10, 20, 30, 40, 50}) {
    const Table table =
        GenerateTable(
            UniformSpec(rows, kCardinality, missing_pct / 100.0, 2, 42))
            .value();
    const RTree tree = BuildSentinelRTree(table);

    // 25% global selectivity: each of the two dimensions takes a 50%-wide
    // interval (the sentinel subqueries add the missing rows the interval
    // semantics require).
    Rng rng(7);
    std::vector<QueryBox> boxes(num_queries);
    for (QueryBox& box : boxes) {
      for (int d = 0; d < 2; ++d) {
        const int32_t width = kCardinality / 2;
        const int32_t lo =
            static_cast<int32_t>(rng.UniformInt(1, kCardinality - width + 1));
        box.lo[d] = lo;
        box.hi[d] = lo + width - 1;
      }
    }

    uint64_t accesses = 0;
    uint64_t matches = 0;
    std::vector<uint32_t> out;
    Timer timer;
    for (const QueryBox& box : boxes) {
      // Missing-is-match on a sentinel-mapped index: 2^2 subqueries — each
      // dimension is either constrained to its interval or to the sentinel.
      out.clear();
      for (int subset = 0; subset < 4; ++subset) {
        Rect rect{{0, 0}, {0, 0}};
        bool applicable = true;
        for (int d = 0; d < 2; ++d) {
          if ((subset >> d) & 1) {
            if (missing_pct == 0) {
              applicable = false;  // no missing rows to pick up
              break;
            }
            rect.lo[d] = kSentinel;
            rect.hi[d] = kSentinel;
          } else {
            rect.lo[d] = box.lo[d];
            rect.hi[d] = box.hi[d];
          }
        }
        if (!applicable) continue;
        accesses += tree.RangeSearch(rect, &out);
      }
      matches += out.size();
    }
    const double time_ms = timer.ElapsedMillis();
    if (missing_pct == 0) {
      base_time = time_ms;
      base_accesses = static_cast<double>(accesses);
    }
    bench::PrintRow({std::to_string(missing_pct),
                     bench::FormatDouble(time_ms),
                     bench::FormatDouble(time_ms / base_time, 2),
                     std::to_string(accesses),
                     bench::FormatDouble(
                         static_cast<double>(accesses) / base_accesses, 2),
                     std::to_string(matches)});
  }
  return 0;
}

}  // namespace
}  // namespace incdb

int main() { return incdb::Main(); }
