#ifndef INCDB_BENCH_BENCH_COMMON_H_
#define INCDB_BENCH_BENCH_COMMON_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/executor.h"
#include "core/index_factory.h"
#include "query/workload.h"
#include "table/table.h"

namespace incdb {
namespace bench {

/// Parses benchmark command-line flags. Currently supported:
///   --json <path>   record machine-readable results; WriteJson() then
///                   writes them to <path> (the BENCH_*.json perf
///                   trajectory files CI archives).
/// Unknown flags abort with a usage message.
void Init(int argc, char** argv);

/// Records one benchmark measurement for the JSON trajectory file. No-op
/// unless --json was passed to Init.
void RecordResult(const std::string& bench, const std::string& config,
                  double millis, uint64_t bytes);

/// Writes every recorded measurement to the --json path as
/// {"results": [{"bench","config","millis","bytes"}, ...]}. No-op without
/// --json. Call once at the end of main.
void WriteJson();

/// Number of rows benchmarks use, honoring the INCDB_BENCH_ROWS environment
/// variable (default `fallback`, the paper-scale value unless noted).
uint64_t BenchRows(uint64_t fallback);

/// Number of queries per configuration (INCDB_BENCH_QUERIES, default 100 —
/// the paper's workload size).
size_t BenchQueries();

/// Prints a CSV header line.
void PrintHeader(const std::vector<std::string>& columns);

/// Prints one CSV row of already-formatted cells.
void PrintRow(const std::vector<std::string>& cells);

/// Formats helpers.
std::string FormatDouble(double value, int decimals = 3);
std::string FormatBytesAsMB(uint64_t bytes);

/// Builds an index, runs the workload, and returns the result; aborts with
/// a message on error (benchmarks are scripts, not libraries).
WorkloadResult MustRunWorkload(const IncompleteIndex& index,
                               const std::vector<RangeQuery>& queries,
                               uint64_t num_rows);

/// CreateIndex or die.
std::unique_ptr<IncompleteIndex> MustCreateIndex(IndexKind kind,
                                                 const Table& table);

/// GenerateWorkload or die.
std::vector<RangeQuery> MustGenerateWorkload(const Table& table,
                                             const WorkloadParams& params);

}  // namespace bench
}  // namespace incdb

#endif  // INCDB_BENCH_BENCH_COMMON_H_
