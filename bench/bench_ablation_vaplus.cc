// Ablation for the paper's future-work pointer (§6): applying the missing-
// data modification to the VA+-file [6], i.e. quantizing with equi-depth
// (data-driven) bins instead of equal-width bins. On skewed data with a
// constrained bit budget, equi-depth bins cut the false-positive rate of
// the filter step for data-located queries, shrinking the refinement work.

#include <algorithm>
#include <cstdio>

#include "bench/bench_common.h"
#include "common/rng.h"
#include "table/generator.h"
#include "vafile/va_file.h"

namespace incdb {
namespace {

// Queries whose endpoints are sampled from the data distribution (the
// workload VA+ targets: queries land where records are).
std::vector<RangeQuery> DataLocatedQueries(const Table& table, size_t count,
                                           size_t dims, Value width,
                                           uint64_t seed) {
  Rng rng(seed);
  std::vector<RangeQuery> queries;
  for (size_t i = 0; i < count; ++i) {
    RangeQuery q;
    q.semantics = MissingSemantics::kMatch;
    for (size_t a = 0; a < dims; ++a) {
      Value v = kMissingValue;
      while (IsMissing(v)) {
        v = table.Get(
            static_cast<uint64_t>(
                rng.UniformInt(0, static_cast<int64_t>(table.num_rows()) - 1)),
            a);
      }
      const Value cardinality =
          static_cast<Value>(table.schema().attribute(a).cardinality);
      const Value hi = std::min<Value>(v + width - 1, cardinality);
      q.terms.push_back({a, {v, hi}});
    }
    queries.push_back(std::move(q));
  }
  return queries;
}

int Main() {
  const uint64_t rows = bench::BenchRows(100000);
  DatasetSpec spec = UniformSpec(rows, 100, 0.10, 4, 42);
  for (auto& attr : spec.attributes) attr.zipf_theta = 1.3;
  const Table table = GenerateTable(spec).value();

  std::printf("# VA vs VA+ ablation (%llu rows, cardinality 100, Zipf(1.3), "
              "10%% missing, data-located 2-dim queries of width 10)\n",
              static_cast<unsigned long long>(rows));
  bench::PrintHeader({"bits_per_attr", "quantization", "time_ms",
                      "candidates", "false_positives", "fp_rate_pct"});
  const std::vector<RangeQuery> queries =
      DataLocatedQueries(table, bench::BenchQueries(), 2, 10, 7);
  for (int bits : {3, 4, 5, 0 /* paper default: exact */}) {
    for (VaQuantization quantization :
         {VaQuantization::kUniform, VaQuantization::kEquiDepth}) {
      const VaFile va = VaFile::Build(table, {quantization, bits}).value();
      const WorkloadResult result =
          bench::MustRunWorkload(va, queries, rows);
      const double fp_rate =
          result.stats.candidates == 0
              ? 0.0
              : 100.0 * static_cast<double>(result.stats.false_positives) /
                    static_cast<double>(result.stats.candidates);
      bench::PrintRow(
          {bits == 0 ? "default" : std::to_string(bits), va.Name(),
           bench::FormatDouble(result.total_millis, 2),
           std::to_string(result.stats.candidates),
           std::to_string(result.stats.false_positives),
           bench::FormatDouble(fp_rate, 1)});
    }
  }
  return 0;
}

}  // namespace
}  // namespace incdb

int main() { return incdb::Main(); }
