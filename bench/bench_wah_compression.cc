// Reproduces the paper's §4.2 compression claims and the WAH-vs-BBC
// trade-off that motivated choosing WAH (§4.4):
//   * a 1,000,000-bit missing bitmap at ~1% density compresses to ≈ 0.47
//     of its verbatim size under WAH;
//   * BBC compresses better than WAH, but WAH logical operations are much
//     faster (the paper cites 2-20x from [16]).
//
// Output: compression ratios across bit densities for WAH and BBC, then
// AND-operation timings over the compressed forms.

#include <cstdio>

#include "bench/bench_common.h"
#include "bitvector/bitvector.h"
#include "common/rng.h"
#include "common/timer.h"
#include "compression/bbc_bitvector.h"
#include "compression/wah_bitvector.h"

namespace incdb {
namespace {

BitVector RandomBits(Rng& rng, uint64_t n, double density) {
  BitVector bits(n);
  for (uint64_t i = 0; i < n; ++i) {
    if (rng.Bernoulli(density)) bits.Set(i);
  }
  return bits;
}

int Main() {
  const uint64_t bits = bench::BenchRows(1000000);
  Rng rng(42);

  std::printf("# WAH vs BBC compression ratio by bit density "
              "(%llu-bit bitmaps; paper §4.2: ~0.47 for WAH at 1%%)\n",
              static_cast<unsigned long long>(bits));
  bench::PrintHeader({"density_pct", "wah_ratio", "bbc_ratio",
                      "wah_bytes", "bbc_bytes"});
  for (double density : {0.0001, 0.001, 0.01, 0.05, 0.1, 0.3, 0.5}) {
    const BitVector dense = RandomBits(rng, bits, density);
    const WahBitVector wah = WahBitVector::Compress(dense);
    const BbcBitVector bbc = BbcBitVector::Compress(dense);
    bench::PrintRow({bench::FormatDouble(density * 100.0, 2),
                     bench::FormatDouble(wah.CompressionRatio(), 3),
                     bench::FormatDouble(bbc.CompressionRatio(), 3),
                     std::to_string(wah.SizeInBytes()),
                     std::to_string(bbc.SizeInBytes())});
  }

  std::printf("\n# Logical AND over the compressed form, 100 ops "
              "(paper §4.4: WAH ops 2-20x faster than BBC)\n");
  bench::PrintHeader({"density_pct", "wah_ms", "bbc_ms", "bbc_over_wah"});
  for (double density : {0.001, 0.01, 0.1}) {
    const BitVector a = RandomBits(rng, bits, density);
    const BitVector b = RandomBits(rng, bits, density);
    const WahBitVector wah_a = WahBitVector::Compress(a);
    const WahBitVector wah_b = WahBitVector::Compress(b);
    const BbcBitVector bbc_a = BbcBitVector::Compress(a);
    const BbcBitVector bbc_b = BbcBitVector::Compress(b);

    Timer wah_timer;
    uint64_t checksum = 0;
    for (int i = 0; i < 100; ++i) checksum += wah_a.And(wah_b).Count();
    const double wah_ms = wah_timer.ElapsedMillis();

    Timer bbc_timer;
    for (int i = 0; i < 100; ++i) checksum += bbc_a.And(bbc_b).SizeInBytes();
    const double bbc_ms = bbc_timer.ElapsedMillis();

    bench::PrintRow({bench::FormatDouble(density * 100.0, 2),
                     bench::FormatDouble(wah_ms, 2),
                     bench::FormatDouble(bbc_ms, 2),
                     bench::FormatDouble(bbc_ms / wah_ms, 1)});
    if (checksum == 0xDEAD) std::printf("#\n");  // defeat dead-code elim
  }
  return 0;
}

}  // namespace
}  // namespace incdb

int main() { return incdb::Main(); }
