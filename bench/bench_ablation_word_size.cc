// Word-size ablation for the WAH substrate: the paper (following [16])
// fixes "words"; this bench quantifies 32-bit vs 64-bit WAH words across
// bit densities — size (31-bit groups compress sparse runs finer; 63-bit
// groups have a lower incompressible ceiling) and logical-op throughput
// (wider words touch fewer words per op).

#include <cstdio>

#include "bench/bench_common.h"
#include "bitvector/bitvector.h"
#include "common/rng.h"
#include "common/timer.h"
#include "compression/wah_bitvector.h"

namespace incdb {
namespace {

BitVector RandomBits(Rng& rng, uint64_t n, double density) {
  BitVector bits(n);
  for (uint64_t i = 0; i < n; ++i) {
    if (rng.Bernoulli(density)) bits.Set(i);
  }
  return bits;
}

int Main() {
  const uint64_t bits = bench::BenchRows(1000000);
  Rng rng(42);

  std::printf("# WAH word-size ablation (%llu-bit bitmaps)\n",
              static_cast<unsigned long long>(bits));
  bench::PrintHeader({"density_pct", "wah32_bytes", "wah64_bytes",
                      "wah32_ratio", "wah64_ratio", "and32_ms", "and64_ms"});
  for (double density : {0.0001, 0.001, 0.01, 0.05, 0.2, 0.5}) {
    const BitVector a = RandomBits(rng, bits, density);
    const BitVector b = RandomBits(rng, bits, density);
    const WahBitVector a32 = WahBitVector::Compress(a);
    const WahBitVector b32 = WahBitVector::Compress(b);
    const Wah64BitVector a64 = Wah64BitVector::Compress(a);
    const Wah64BitVector b64 = Wah64BitVector::Compress(b);

    Timer timer32;
    uint64_t checksum = 0;
    for (int i = 0; i < 100; ++i) checksum += a32.And(b32).Count();
    const double and32_ms = timer32.ElapsedMillis();
    Timer timer64;
    for (int i = 0; i < 100; ++i) checksum += a64.And(b64).Count();
    const double and64_ms = timer64.ElapsedMillis();

    bench::PrintRow({bench::FormatDouble(density * 100.0, 2),
                     std::to_string(a32.SizeInBytes()),
                     std::to_string(a64.SizeInBytes()),
                     bench::FormatDouble(a32.CompressionRatio(), 3),
                     bench::FormatDouble(a64.CompressionRatio(), 3),
                     bench::FormatDouble(and32_ms, 2),
                     bench::FormatDouble(and64_ms, 2)});
    if (checksum == 0xDEAD) std::printf("#\n");  // defeat dead-code elim
  }
  return 0;
}

}  // namespace
}  // namespace incdb

int main() { return incdb::Main(); }
