// Micro-benchmarks (google-benchmark) for the logical-operation substrate:
// WAH ops over the compressed form versus verbatim word-parallel ops, and
// compression itself, across bit densities. These are the primitive costs
// underlying every Fig. 5 number.

#include <benchmark/benchmark.h>

#include "bitvector/bitvector.h"
#include "common/rng.h"
#include "compression/bbc_bitvector.h"
#include "compression/wah_bitvector.h"

namespace incdb {
namespace {

constexpr uint64_t kBits = 1000000;

BitVector MakeBits(double density, uint64_t seed) {
  Rng rng(seed);
  BitVector bits(kBits);
  for (uint64_t i = 0; i < kBits; ++i) {
    if (rng.Bernoulli(density)) bits.Set(i);
  }
  return bits;
}

double DensityArg(const benchmark::State& state) {
  return static_cast<double>(state.range(0)) / 10000.0;
}

void BM_WahAnd(benchmark::State& state) {
  const double density = DensityArg(state);
  const WahBitVector a = WahBitVector::Compress(MakeBits(density, 1));
  const WahBitVector b = WahBitVector::Compress(MakeBits(density, 2));
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.And(b));
  }
}
BENCHMARK(BM_WahAnd)->Arg(10)->Arg(100)->Arg(1000)->Arg(5000);

void BM_WahOr(benchmark::State& state) {
  const double density = DensityArg(state);
  const WahBitVector a = WahBitVector::Compress(MakeBits(density, 1));
  const WahBitVector b = WahBitVector::Compress(MakeBits(density, 2));
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.Or(b));
  }
}
BENCHMARK(BM_WahOr)->Arg(10)->Arg(100)->Arg(1000);

void BM_WahNot(benchmark::State& state) {
  const double density = DensityArg(state);
  const WahBitVector a = WahBitVector::Compress(MakeBits(density, 1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.Not());
  }
}
BENCHMARK(BM_WahNot)->Arg(100)->Arg(1000);

void BM_VerbatimAnd(benchmark::State& state) {
  const double density = DensityArg(state);
  const BitVector a = MakeBits(density, 1);
  const BitVector b = MakeBits(density, 2);
  for (auto _ : state) {
    benchmark::DoNotOptimize(And(a, b));
  }
}
BENCHMARK(BM_VerbatimAnd)->Arg(10)->Arg(100)->Arg(1000)->Arg(5000);

void BM_BbcAnd(benchmark::State& state) {
  const double density = DensityArg(state);
  const BbcBitVector a = BbcBitVector::Compress(MakeBits(density, 1));
  const BbcBitVector b = BbcBitVector::Compress(MakeBits(density, 2));
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.And(b));
  }
}
BENCHMARK(BM_BbcAnd)->Arg(10)->Arg(100)->Arg(1000);

void BM_WahCompress(benchmark::State& state) {
  const double density = DensityArg(state);
  const BitVector bits = MakeBits(density, 1);
  for (auto _ : state) {
    benchmark::DoNotOptimize(WahBitVector::Compress(bits));
  }
}
BENCHMARK(BM_WahCompress)->Arg(100)->Arg(1000);

void BM_WahCount(benchmark::State& state) {
  const double density = DensityArg(state);
  const WahBitVector a = WahBitVector::Compress(MakeBits(density, 1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.Count());
  }
}
BENCHMARK(BM_WahCount)->Arg(100)->Arg(1000);

}  // namespace
}  // namespace incdb

BENCHMARK_MAIN();
