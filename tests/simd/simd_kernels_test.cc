// Bit-identity tests for the runtime-dispatched SIMD kernel layer: every
// level the running CPU supports must produce byte-for-byte the output of
// an independent reference implementation, for every kernel, at byte counts
// that exercise full vector blocks, partial blocks, whole-word tails and
// sub-word tails (odd uint32 WAH group counts land on 4-byte tails).

#include <gtest/gtest.h>

#include <cstdint>
#include <cstring>
#include <type_traits>
#include <vector>

#include "common/rng.h"
#include "simd/simd.h"

namespace incdb {
namespace simd {
namespace {

// Levels the running CPU can actually execute.
std::vector<Level> AvailableLevels() {
  std::vector<Level> levels = {Level::kScalar};
  if (DetectedLevel() >= Level::kSse2) levels.push_back(Level::kSse2);
  if (DetectedLevel() >= Level::kAvx2) levels.push_back(Level::kAvx2);
  return levels;
}

// Byte counts spanning every tail shape: empty, sub-word, word-exact,
// vector-exact (16/32/64), one-past, Harley-Seal block (512) and beyond.
const size_t kByteCounts[] = {0,  1,  3,   4,   7,   8,   9,   12,  16,
                              17, 31, 32,  33,  60,  63,  64,  65,  100,
                              255, 256, 257, 511, 512, 513, 1000, 4096, 4100};

std::vector<uint8_t> RandomBytes(Rng& rng, size_t n) {
  std::vector<uint8_t> bytes(n);
  for (auto& b : bytes) b = static_cast<uint8_t>(rng.UniformInt(0, 255));
  return bytes;
}

// Reference ops, one byte at a time — deliberately nothing like the word- or
// vector-blocked kernels under test.
uint8_t RefAnd(uint8_t a, uint8_t b) { return a & b; }
uint8_t RefOr(uint8_t a, uint8_t b) { return a | b; }
uint8_t RefXor(uint8_t a, uint8_t b) { return a ^ b; }
uint8_t RefAndNot(uint8_t a, uint8_t b) { return a & ~b; }

using ByteOp = uint8_t (*)(uint8_t, uint8_t);

// Expected value of the and_into/andnot_into all-zero probe: the OR of the
// result interpreted as zero-padded little-endian 64-bit words.
uint64_t RefAnyFold(const std::vector<uint8_t>& result, size_t bytes) {
  uint64_t any = 0;
  for (size_t i = 0; i < bytes; ++i) {
    any |= uint64_t{result[i]} << (8 * (i % 8));
  }
  return any;
}

template <typename KernelFn>
void CheckBinary(const Kernels& kernels, KernelFn kernel, ByteOp ref,
                 bool returns_any, const char* name) {
  Rng rng(20260808);
  for (size_t bytes : kByteCounts) {
    std::vector<uint8_t> dst = RandomBytes(rng, bytes + 16);  // +guard tail
    const std::vector<uint8_t> src = RandomBytes(rng, bytes + 16);
    std::vector<uint8_t> expected = dst;
    for (size_t i = 0; i < bytes; ++i) {
      expected[i] = ref(dst[i], src[i]);
    }
    if constexpr (std::is_same_v<decltype(kernel(nullptr, nullptr, 0)),
                                 uint64_t>) {
      const uint64_t any = kernel(dst.data(), src.data(), bytes);
      if (returns_any) {
        EXPECT_EQ(any, RefAnyFold(expected, bytes))
            << name << " level=" << LevelToString(kernels.level)
            << " bytes=" << bytes;
      }
    } else {
      kernel(dst.data(), src.data(), bytes);
    }
    EXPECT_EQ(dst, expected)
        << name << " level=" << LevelToString(kernels.level)
        << " bytes=" << bytes;
  }
}

TEST(SimdKernels, BinaryOpsMatchReferenceAtEveryLevel) {
  for (Level level : AvailableLevels()) {
    const Kernels& k = KernelsFor(level);
    EXPECT_EQ(k.level, level);
    CheckBinary(k, k.and_into, RefAnd, /*returns_any=*/true, "and_into");
    CheckBinary(k, k.or_into, RefOr, /*returns_any=*/false, "or_into");
    CheckBinary(k, k.xor_into, RefXor, /*returns_any=*/false, "xor_into");
    CheckBinary(k, k.andnot_into, RefAndNot, /*returns_any=*/true,
                "andnot_into");
  }
}

TEST(SimdKernels, AndIntoZeroProbeIsZeroOnEmptyResult) {
  for (Level level : AvailableLevels()) {
    const Kernels& k = KernelsFor(level);
    for (size_t bytes : kByteCounts) {
      Rng rng(3 + bytes);
      std::vector<uint8_t> dst = RandomBytes(rng, bytes);
      const std::vector<uint8_t> zeros(bytes, 0x00);
      EXPECT_EQ(k.and_into(dst.data(), zeros.data(), bytes), 0u)
          << "level=" << LevelToString(level) << " bytes=" << bytes;
      std::vector<uint8_t> dst2 = RandomBytes(rng, bytes);
      const std::vector<uint8_t> copy = dst2;
      EXPECT_EQ(k.andnot_into(dst2.data(), copy.data(), bytes), 0u)
          << "level=" << LevelToString(level) << " bytes=" << bytes;
    }
  }
}

TEST(SimdKernels, OrNotMaskMatchesReferenceAtEveryLevel) {
  // Both WAH mask shapes: the 63-bit and the replicated 31-bit literal mask.
  const uint64_t masks[] = {0x7FFFFFFFFFFFFFFFull, 0x7FFFFFFF7FFFFFFFull,
                            0xFFFFFFFFFFFFFFFFull, 0x0123456789ABCDEFull};
  for (Level level : AvailableLevels()) {
    const Kernels& k = KernelsFor(level);
    Rng rng(42);
    for (uint64_t mask : masks) {
      for (size_t bytes : kByteCounts) {
        std::vector<uint8_t> dst = RandomBytes(rng, bytes);
        const std::vector<uint8_t> src = RandomBytes(rng, bytes);
        std::vector<uint8_t> expected = dst;
        for (size_t i = 0; i < bytes; ++i) {
          const uint8_t mask_byte =
              static_cast<uint8_t>(mask >> (8 * (i % 8)));
          expected[i] =
              static_cast<uint8_t>(dst[i] | (~src[i] & mask_byte));
        }
        k.ornot_mask_into(dst.data(), src.data(), mask, bytes);
        EXPECT_EQ(dst, expected)
            << "level=" << LevelToString(level) << " mask=" << mask
            << " bytes=" << bytes;
      }
    }
  }
}

TEST(SimdKernels, PopcountMatchesReferenceAtEveryLevel) {
  for (Level level : AvailableLevels()) {
    const Kernels& k = KernelsFor(level);
    Rng rng(7);
    for (size_t bytes : kByteCounts) {
      const std::vector<uint8_t> buf = RandomBytes(rng, bytes);
      uint64_t expected = 0;
      for (uint8_t b : buf) {
        for (int i = 0; i < 8; ++i) expected += (b >> i) & 1;
      }
      EXPECT_EQ(k.popcount(buf.data(), bytes), expected)
          << "level=" << LevelToString(level) << " bytes=" << bytes;
    }
    // All-ones and all-zeros stress the Harley-Seal carry tree.
    const std::vector<uint8_t> ones(4096, 0xFF);
    EXPECT_EQ(k.popcount(ones.data(), ones.size()), uint64_t{4096} * 8);
    const std::vector<uint8_t> zeros(4096, 0x00);
    EXPECT_EQ(k.popcount(zeros.data(), zeros.size()), uint64_t{0});
  }
}

TEST(SimdKernels, ExtractSetBitsMatchesReferenceAtEveryLevel) {
  for (Level level : AvailableLevels()) {
    const Kernels& k = KernelsFor(level);
    Rng rng(99);
    for (size_t n : {size_t{0}, size_t{1}, size_t{3}, size_t{4}, size_t{5},
                     size_t{64}, size_t{100}}) {
      std::vector<uint64_t> words(n);
      for (auto& w : words) {
        switch (rng.UniformInt(0, 3)) {
          case 0: w = 0; break;                       // zero-skip path
          case 1: w = ~uint64_t{0}; break;            // dense word
          default: w = rng.Next() & rng.Next(); break;  // sparse word
        }
      }
      std::vector<uint32_t> expected;
      for (size_t wi = 0; wi < n; ++wi) {
        for (int b = 0; b < 64; ++b) {
          if ((words[wi] >> b) & 1) {
            expected.push_back(static_cast<uint32_t>(1000 + 64 * wi + b));
          }
        }
      }
      std::vector<uint32_t> out(expected.size() + 1, 0xDEAD);
      const size_t written =
          k.extract_set_bits(words.data(), n, /*base=*/1000, out.data());
      ASSERT_EQ(written, expected.size())
          << "level=" << LevelToString(level) << " n=" << n;
      out.resize(written);
      EXPECT_EQ(out, expected) << "level=" << LevelToString(level);
    }
  }
}

TEST(SimdKernels, ForEachSetBitInWordCoversAllShapes) {
  auto collect = [](uint64_t word, uint64_t base) {
    std::vector<uint64_t> got;
    ForEachSetBitInWord(word, base, [&](uint64_t i) { got.push_back(i); });
    return got;
  };
  EXPECT_TRUE(collect(0, 5).empty());
  EXPECT_EQ(collect(0b1011, 10), (std::vector<uint64_t>{10, 11, 13}));
  const std::vector<uint64_t> all = collect(~uint64_t{0}, 100);
  ASSERT_EQ(all.size(), 64u);
  EXPECT_EQ(all.front(), 100u);
  EXPECT_EQ(all.back(), 163u);
}

TEST(SimdDispatch, ActiveNeverExceedsDetectedAndForceClamps) {
  EXPECT_LE(static_cast<int>(ActiveLevel()),
            static_cast<int>(DetectedLevel()));
  // Force every level (requests above the CPU's ceiling clamp down) and
  // verify table and level agree; then restore.
  const Level original = ActiveLevel();
  for (Level request : {Level::kScalar, Level::kSse2, Level::kAvx2}) {
    ForceLevelForTesting(request);
    const Level expect =
        static_cast<int>(request) <= static_cast<int>(DetectedLevel())
            ? request
            : DetectedLevel();
    EXPECT_EQ(ActiveLevel(), expect);
    EXPECT_EQ(ActiveKernels().level, expect);
  }
  ForceLevelForTesting(original);
  EXPECT_EQ(ActiveLevel(), original);
}

TEST(SimdDispatch, LevelNames) {
  EXPECT_EQ(LevelToString(Level::kScalar), "scalar");
  EXPECT_EQ(LevelToString(Level::kSse2), "sse2");
  EXPECT_EQ(LevelToString(Level::kAvx2), "avx2");
}

}  // namespace
}  // namespace simd
}  // namespace incdb
