#include "baselines/bitstring_augmented.h"

#include <gtest/gtest.h>

#include "core/executor.h"
#include "query/workload.h"
#include "table/generator.h"

namespace incdb {
namespace {

TEST(BitstringAugmentedTest, RejectsEmptyTable) {
  auto table = Table::Create(Schema({{"x", 5}})).value();
  EXPECT_FALSE(BitstringAugmentedIndex::Build(table).ok());
}

TEST(BitstringAugmentedTest, SmallExample) {
  auto table = Table::Create(Schema({{"a", 10}, {"b", 5}})).value();
  ASSERT_TRUE(table.AppendRow({3, 2}).ok());
  ASSERT_TRUE(table.AppendRow({kMissingValue, 2}).ok());
  ASSERT_TRUE(table.AppendRow({7, kMissingValue}).ok());
  ASSERT_TRUE(table.AppendRow({kMissingValue, kMissingValue}).ok());
  const auto index = BitstringAugmentedIndex::Build(table).value();
  RangeQuery q;
  q.terms = {{0, {2, 4}}, {1, {1, 2}}};
  q.semantics = MissingSemantics::kMatch;
  EXPECT_EQ(index.Execute(q).value().ToIndices(),
            (std::vector<uint32_t>{0, 1, 3}));
  q.semantics = MissingSemantics::kNoMatch;
  EXPECT_EQ(index.Execute(q).value().ToIndices(),
            (std::vector<uint32_t>{0}));
}

TEST(BitstringAugmentedTest, AgreesWithOracleBothSemantics) {
  // Low-dimensional table: the R-tree substrate is only viable there.
  const Table table = GenerateTable(UniformSpec(1500, 15, 0.25, 4, 71)).value();
  const auto index = BitstringAugmentedIndex::Build(table).value();
  for (MissingSemantics semantics :
       {MissingSemantics::kMatch, MissingSemantics::kNoMatch}) {
    WorkloadParams params;
    params.num_queries = 25;
    params.dims = 3;
    params.global_selectivity = 0.05;
    params.semantics = semantics;
    const auto queries = GenerateWorkload(table, params);
    ASSERT_TRUE(queries.ok());
    EXPECT_TRUE(VerifyAgainstOracle(index, table, queries.value()).ok());
  }
}

TEST(BitstringAugmentedTest, SubqueryCountIsExponentialInK) {
  const Table table = GenerateTable(UniformSpec(300, 10, 0.2, 6, 73)).value();
  const auto index = BitstringAugmentedIndex::Build(table).value();
  for (size_t k = 1; k <= 5; ++k) {
    RangeQuery q;
    q.semantics = MissingSemantics::kMatch;
    for (size_t a = 0; a < k; ++a) q.terms.push_back({a, {2, 5}});
    QueryStats stats;
    ASSERT_TRUE(index.Execute(q, &stats).ok());
    EXPECT_EQ(stats.subqueries, uint64_t{1} << k);
  }
}

TEST(BitstringAugmentedTest, SingleSubqueryUnderNoMatch) {
  const Table table = GenerateTable(UniformSpec(300, 10, 0.2, 4, 75)).value();
  const auto index = BitstringAugmentedIndex::Build(table).value();
  RangeQuery q;
  q.semantics = MissingSemantics::kNoMatch;
  q.terms = {{0, {2, 5}}, {1, {1, 3}}, {2, {4, 8}}};
  QueryStats stats;
  ASSERT_TRUE(index.Execute(q, &stats).ok());
  EXPECT_EQ(stats.subqueries, 1u);
}

TEST(BitstringAugmentedTest, RefusesHugeQueryDimensionality) {
  const Table table = GenerateTable(UniformSpec(50, 3, 0.1, 21, 77)).value();
  const auto index = BitstringAugmentedIndex::Build(table).value();
  RangeQuery q;
  q.semantics = MissingSemantics::kMatch;
  for (size_t a = 0; a < 21; ++a) q.terms.push_back({a, {1, 2}});
  EXPECT_EQ(index.Execute(q).status().code(), StatusCode::kNotSupported);
}

TEST(BitstringAugmentedTest, RejectsEmptyQueryAndBadAttribute) {
  const Table table = GenerateTable(UniformSpec(50, 5, 0.1, 2, 79)).value();
  const auto index = BitstringAugmentedIndex::Build(table).value();
  EXPECT_FALSE(index.Execute(RangeQuery{}).ok());
  RangeQuery q;
  q.terms = {{7, {1, 1}}};
  EXPECT_EQ(index.Execute(q).status().code(), StatusCode::kOutOfRange);
}

TEST(BitstringAugmentedTest, AllMissingAttributeStillWorks) {
  auto table = Table::Create(Schema({{"a", 5}, {"b", 5}})).value();
  ASSERT_TRUE(table.AppendRow({kMissingValue, 1}).ok());
  ASSERT_TRUE(table.AppendRow({kMissingValue, 3}).ok());
  const auto index = BitstringAugmentedIndex::Build(table).value();
  RangeQuery q;
  q.semantics = MissingSemantics::kMatch;
  q.terms = {{0, {1, 2}}};
  EXPECT_EQ(index.Execute(q).value().Count(), 2u);
  q.semantics = MissingSemantics::kNoMatch;
  EXPECT_EQ(index.Execute(q).value().Count(), 0u);
}

}  // namespace
}  // namespace incdb
