#include "baselines/mosaic.h"

#include <gtest/gtest.h>

#include "core/executor.h"
#include "query/workload.h"
#include "table/generator.h"

namespace incdb {
namespace {

TEST(MosaicTest, RejectsEmptyTable) {
  auto table = Table::Create(Schema({{"x", 5}})).value();
  EXPECT_FALSE(MosaicIndex::Build(table).ok());
}

TEST(MosaicTest, SmallExample) {
  auto table = Table::Create(Schema({{"a", 10}, {"b", 5}})).value();
  ASSERT_TRUE(table.AppendRow({3, 2}).ok());
  ASSERT_TRUE(table.AppendRow({kMissingValue, 2}).ok());
  ASSERT_TRUE(table.AppendRow({7, kMissingValue}).ok());
  ASSERT_TRUE(table.AppendRow({kMissingValue, kMissingValue}).ok());
  const MosaicIndex index = MosaicIndex::Build(table).value();
  RangeQuery q;
  q.terms = {{0, {2, 4}}, {1, {1, 2}}};
  q.semantics = MissingSemantics::kMatch;
  EXPECT_EQ(index.Execute(q).value().ToIndices(),
            (std::vector<uint32_t>{0, 1, 3}));
  q.semantics = MissingSemantics::kNoMatch;
  EXPECT_EQ(index.Execute(q).value().ToIndices(),
            (std::vector<uint32_t>{0}));
}

TEST(MosaicTest, AgreesWithOracleBothSemantics) {
  const Table table = GenerateTable(UniformSpec(2000, 12, 0.25, 6, 61)).value();
  const MosaicIndex index = MosaicIndex::Build(table).value();
  for (MissingSemantics semantics :
       {MissingSemantics::kMatch, MissingSemantics::kNoMatch}) {
    WorkloadParams params;
    params.num_queries = 30;
    params.dims = 4;
    params.global_selectivity = 0.03;
    params.semantics = semantics;
    const auto queries = GenerateWorkload(table, params);
    ASSERT_TRUE(queries.ok());
    EXPECT_TRUE(VerifyAgainstOracle(index, table, queries.value()).ok());
  }
}

TEST(MosaicTest, SubqueryCountIs2kUnderMatchSemantics) {
  // The related-work claim: a k-attribute query becomes 2k subqueries
  // (range + missing lookup per attribute).
  const Table table = GenerateTable(UniformSpec(200, 10, 0.2, 8, 63)).value();
  const MosaicIndex index = MosaicIndex::Build(table).value();
  RangeQuery q;
  q.semantics = MissingSemantics::kMatch;
  for (size_t a = 0; a < 5; ++a) q.terms.push_back({a, {2, 4}});
  QueryStats stats;
  ASSERT_TRUE(index.Execute(q, &stats).ok());
  EXPECT_EQ(stats.subqueries, 10u);
  EXPECT_GT(stats.nodes_accessed, 0u);

  q.semantics = MissingSemantics::kNoMatch;
  stats.Reset();
  ASSERT_TRUE(index.Execute(q, &stats).ok());
  EXPECT_EQ(stats.subqueries, 5u);  // no missing lookups needed
}

TEST(MosaicTest, RejectsEmptyQueryAndBadAttribute) {
  const Table table = GenerateTable(UniformSpec(50, 5, 0.1, 2, 65)).value();
  const MosaicIndex index = MosaicIndex::Build(table).value();
  EXPECT_FALSE(index.Execute(RangeQuery{}).ok());
  RangeQuery q;
  q.terms = {{7, {1, 1}}};
  EXPECT_EQ(index.Execute(q).status().code(), StatusCode::kOutOfRange);
}

TEST(MosaicTest, SizeReflectsAllTrees) {
  const Table narrow = GenerateTable(UniformSpec(1000, 10, 0.1, 2, 67)).value();
  const Table wide = GenerateTable(UniformSpec(1000, 10, 0.1, 8, 67)).value();
  EXPECT_GT(MosaicIndex::Build(wide).value().SizeInBytes(),
            MosaicIndex::Build(narrow).value().SizeInBytes());
}

}  // namespace
}  // namespace incdb
