#include "rtree/rtree.h"

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"

namespace incdb {
namespace {

TEST(RectTest, IntersectsAndContains) {
  const Rect a{{0, 0}, {10, 10}};
  const Rect b{{5, 5}, {15, 15}};
  const Rect c{{11, 0}, {20, 10}};
  EXPECT_TRUE(a.Intersects(b));
  EXPECT_FALSE(a.Intersects(c));
  EXPECT_TRUE(a.Contains(Rect{{1, 1}, {9, 9}}));
  EXPECT_FALSE(a.Contains(b));
}

TEST(RectTest, EnlargeAndVolume) {
  Rect a{{0, 0}, {1, 1}};
  EXPECT_DOUBLE_EQ(a.Volume(), 4.0);  // extents counted inclusively
  a.Enlarge(Rect{{3, 3}, {3, 3}});
  EXPECT_EQ(a.hi[0], 3);
  EXPECT_DOUBLE_EQ(a.Volume(), 16.0);
  EXPECT_DOUBLE_EQ(a.Enlargement(Rect{{0, 0}, {3, 3}}), 0.0);
}

TEST(RTreeTest, EmptyTree) {
  RTree tree(2);
  std::vector<uint32_t> out;
  EXPECT_EQ(tree.RangeSearch(Rect{{0, 0}, {10, 10}}, &out), 1u);
  EXPECT_TRUE(out.empty());
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

TEST(RTreeTest, InsertAndExactSearch) {
  RTree tree(2);
  tree.Insert({5, 5}, 1);
  tree.Insert({7, 3}, 2);
  std::vector<uint32_t> out;
  tree.RangeSearch(Rect{{5, 5}, {5, 5}}, &out);
  EXPECT_EQ(out, (std::vector<uint32_t>{1}));
}

TEST(RTreeTest, RandomizedAgainstLinearScan) {
  Rng rng(11);
  for (size_t dims : {2u, 3u, 5u}) {
    RTree tree(dims, 8);
    std::vector<std::vector<int32_t>> points;
    for (uint32_t r = 0; r < 2000; ++r) {
      std::vector<int32_t> p(dims);
      for (auto& x : p) x = static_cast<int32_t>(rng.UniformInt(0, 100));
      tree.Insert(p, r);
      points.push_back(p);
    }
    ASSERT_TRUE(tree.CheckInvariants().ok()) << "dims " << dims;
    EXPECT_EQ(tree.size(), 2000u);
    for (int trial = 0; trial < 25; ++trial) {
      Rect box;
      box.lo.resize(dims);
      box.hi.resize(dims);
      for (size_t d = 0; d < dims; ++d) {
        box.lo[d] = static_cast<int32_t>(rng.UniformInt(0, 80));
        box.hi[d] = box.lo[d] + static_cast<int32_t>(rng.UniformInt(0, 40));
      }
      std::vector<uint32_t> got;
      tree.RangeSearch(box, &got);
      std::vector<uint32_t> expected;
      for (uint32_t r = 0; r < points.size(); ++r) {
        bool inside = true;
        for (size_t d = 0; d < dims; ++d) {
          if (points[r][d] < box.lo[d] || points[r][d] > box.hi[d]) {
            inside = false;
            break;
          }
        }
        if (inside) expected.push_back(r);
      }
      std::sort(got.begin(), got.end());
      EXPECT_EQ(got, expected);
    }
  }
}

TEST(RTreeTest, DuplicatePointsSupported) {
  // The missing-data sentinel mapping creates many identical points; the
  // tree must absorb them (this is what degrades it in Fig. 1).
  RTree tree(2, 8);
  for (uint32_t r = 0; r < 500; ++r) tree.Insert({-1, -1}, r);
  ASSERT_TRUE(tree.CheckInvariants().ok());
  std::vector<uint32_t> out;
  tree.RangeSearch(Rect{{-1, -1}, {-1, -1}}, &out);
  EXPECT_EQ(out.size(), 500u);
}

TEST(RTreeTest, HeightGrowsAndStaysBalanced) {
  Rng rng(13);
  RTree tree(2, 8);
  for (uint32_t r = 0; r < 5000; ++r) {
    tree.Insert({static_cast<int32_t>(rng.UniformInt(0, 1000)),
                 static_cast<int32_t>(rng.UniformInt(0, 1000))},
                r);
  }
  EXPECT_GT(tree.height(), 2);
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

TEST(RTreeTest, MissingDataSentinelInflatesQueryCost) {
  // The motivating effect behind Fig. 1: with missing values mapped to a
  // sentinel coordinate, answering a missing-is-match query correctly needs
  // an extra subquery per missing-capable dimension (the sentinel strip),
  // and the sentinel strip is dense — so the same logical query costs more
  // node accesses than on a complete dataset.
  Rng rng(17);
  RTree clean(2, 8);
  RTree polluted(2, 8);
  for (uint32_t r = 0; r < 4000; ++r) {
    const int32_t x = static_cast<int32_t>(rng.UniformInt(100, 1000));
    const int32_t y = static_cast<int32_t>(rng.UniformInt(100, 1000));
    clean.Insert({x, y}, r);
    // 30% of records have a "missing" first coordinate → sentinel -1.
    polluted.Insert({rng.Bernoulli(0.3) ? -1 : x, y}, r);
  }
  uint64_t clean_accesses = 0;
  uint64_t polluted_accesses = 0;
  std::vector<uint32_t> out;
  for (int trial = 0; trial < 50; ++trial) {
    const int32_t x = static_cast<int32_t>(rng.UniformInt(100, 800));
    const int32_t y = static_cast<int32_t>(rng.UniformInt(100, 800));
    const Rect box{{x, y}, {x + 200, y + 200}};
    out.clear();
    clean_accesses += clean.RangeSearch(box, &out);
    // Missing-is-match on the polluted tree: the value box plus the
    // sentinel-strip subquery (records whose x is missing, any y in range).
    out.clear();
    polluted_accesses += polluted.RangeSearch(box, &out);
    out.clear();
    polluted_accesses +=
        polluted.RangeSearch(Rect{{-1, y}, {-1, y + 200}}, &out);
  }
  EXPECT_GT(polluted_accesses, clean_accesses);
}

TEST(RTreeTest, SizeInBytesGrows) {
  RTree small(2);
  small.Insert({1, 1}, 0);
  Rng rng(19);
  RTree large(2);
  for (uint32_t r = 0; r < 3000; ++r) {
    large.Insert({static_cast<int32_t>(rng.UniformInt(0, 100)),
                  static_cast<int32_t>(rng.UniformInt(0, 100))},
                 r);
  }
  EXPECT_GT(large.SizeInBytes(), small.SizeInBytes());
}

TEST(RTreeTest, MoveConstructible) {
  RTree tree(2);
  tree.Insert({1, 2}, 7);
  RTree moved = std::move(tree);
  std::vector<uint32_t> out;
  moved.RangeSearch(Rect{{1, 2}, {1, 2}}, &out);
  EXPECT_EQ(out, (std::vector<uint32_t>{7}));
}

}  // namespace
}  // namespace incdb
