#include "btree/bplus_tree.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "common/rng.h"

namespace incdb {
namespace {

TEST(BPlusTreeTest, EmptyTree) {
  BPlusTree tree;
  std::vector<uint32_t> out;
  EXPECT_GT(tree.RangeScan(0, 100, &out), 0u);
  EXPECT_TRUE(out.empty());
  EXPECT_EQ(tree.size(), 0u);
  EXPECT_EQ(tree.height(), 1);
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

TEST(BPlusTreeTest, InsertAndLookup) {
  BPlusTree tree(8);
  tree.Insert(5, 100);
  tree.Insert(3, 200);
  tree.Insert(7, 300);
  std::vector<uint32_t> out;
  tree.Lookup(3, &out);
  EXPECT_EQ(out, (std::vector<uint32_t>{200}));
  out.clear();
  tree.Lookup(99, &out);
  EXPECT_TRUE(out.empty());
}

TEST(BPlusTreeTest, DuplicateKeys) {
  BPlusTree tree(8);
  for (uint32_t r = 0; r < 50; ++r) tree.Insert(42, r);
  std::vector<uint32_t> out;
  tree.Lookup(42, &out);
  EXPECT_EQ(out.size(), 50u);
  EXPECT_TRUE(tree.CheckInvariants().ok());
}

TEST(BPlusTreeTest, RangeScanReturnsKeyOrderedResults) {
  BPlusTree tree(6);
  Rng rng(3);
  std::multimap<int32_t, uint32_t> reference;
  for (uint32_t r = 0; r < 1000; ++r) {
    const int32_t key = static_cast<int32_t>(rng.UniformInt(0, 200));
    tree.Insert(key, r);
    reference.emplace(key, r);
  }
  ASSERT_TRUE(tree.CheckInvariants().ok());
  for (auto [lo, hi] : std::vector<std::pair<int32_t, int32_t>>{
           {0, 200}, {50, 60}, {0, 0}, {199, 200}, {201, 500}, {60, 50}}) {
    std::vector<uint32_t> got;
    tree.RangeScan(lo, hi, &got);
    std::vector<uint32_t> expected;
    for (auto it = reference.lower_bound(lo);
         it != reference.end() && it->first <= hi; ++it) {
      expected.push_back(it->second);
    }
    std::sort(got.begin(), got.end());
    std::sort(expected.begin(), expected.end());
    EXPECT_EQ(got, expected) << "range [" << lo << "," << hi << "]";
  }
}

TEST(BPlusTreeTest, GrowsInHeightAndStaysBalanced) {
  BPlusTree tree(4);  // tiny fanout forces splits
  for (int i = 0; i < 10000; ++i) tree.Insert(i, static_cast<uint32_t>(i));
  EXPECT_GT(tree.height(), 3);
  EXPECT_EQ(tree.size(), 10000u);
  EXPECT_TRUE(tree.CheckInvariants().ok());
  std::vector<uint32_t> out;
  tree.RangeScan(0, 9999, &out);
  EXPECT_EQ(out.size(), 10000u);
}

TEST(BPlusTreeTest, DescendingInsertions) {
  BPlusTree tree(5);
  for (int i = 9999; i >= 0; --i) tree.Insert(i, static_cast<uint32_t>(i));
  EXPECT_TRUE(tree.CheckInvariants().ok());
  std::vector<uint32_t> out;
  tree.RangeScan(100, 102, &out);
  std::sort(out.begin(), out.end());
  EXPECT_EQ(out, (std::vector<uint32_t>{100, 101, 102}));
}

TEST(BPlusTreeTest, RandomizedAgainstMultimap) {
  Rng rng(7);
  for (int fanout : {4, 16, 64}) {
    BPlusTree tree(fanout);
    std::multimap<int32_t, uint32_t> reference;
    for (uint32_t r = 0; r < 3000; ++r) {
      const int32_t key = static_cast<int32_t>(rng.UniformInt(-50, 50));
      tree.Insert(key, r);
      reference.emplace(key, r);
    }
    ASSERT_TRUE(tree.CheckInvariants().ok()) << "fanout " << fanout;
    for (int trial = 0; trial < 50; ++trial) {
      const int32_t lo = static_cast<int32_t>(rng.UniformInt(-60, 60));
      const int32_t hi = lo + static_cast<int32_t>(rng.UniformInt(0, 30));
      std::vector<uint32_t> got;
      tree.RangeScan(lo, hi, &got);
      size_t expected = 0;
      for (auto it = reference.lower_bound(lo);
           it != reference.end() && it->first <= hi; ++it) {
        ++expected;
      }
      EXPECT_EQ(got.size(), expected);
    }
  }
}

TEST(BPlusTreeTest, NodeAccessCountGrowsWithRange) {
  BPlusTree tree(8);
  for (int i = 0; i < 20000; ++i) tree.Insert(i, static_cast<uint32_t>(i));
  std::vector<uint32_t> out;
  const uint64_t narrow = tree.RangeScan(500, 510, &out);
  out.clear();
  const uint64_t wide = tree.RangeScan(0, 19999, &out);
  EXPECT_LT(narrow, wide);
}

TEST(BPlusTreeTest, SizeInBytesPositiveAndGrows) {
  BPlusTree small(16);
  small.Insert(1, 1);
  BPlusTree large(16);
  for (int i = 0; i < 10000; ++i) large.Insert(i, static_cast<uint32_t>(i));
  EXPECT_GT(large.SizeInBytes(), small.SizeInBytes());
}

TEST(BPlusTreeTest, MoveConstructible) {
  BPlusTree tree(8);
  tree.Insert(1, 10);
  BPlusTree moved = std::move(tree);
  std::vector<uint32_t> out;
  moved.Lookup(1, &out);
  EXPECT_EQ(out, (std::vector<uint32_t>{10}));
}

TEST(BPlusTreeTest, NegativeAndZeroKeys) {
  // MOSAIC maps missing to key 0; make sure 0 and negatives behave.
  BPlusTree tree(8);
  tree.Insert(0, 1);
  tree.Insert(-5, 2);
  tree.Insert(3, 3);
  std::vector<uint32_t> out;
  tree.Lookup(0, &out);
  EXPECT_EQ(out, (std::vector<uint32_t>{1}));
  out.clear();
  tree.RangeScan(-10, 0, &out);
  std::sort(out.begin(), out.end());
  EXPECT_EQ(out, (std::vector<uint32_t>{1, 2}));
}

}  // namespace
}  // namespace incdb
