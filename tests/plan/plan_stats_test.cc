// QueryStats attribution through the plan layer. The delta scan used to be
// invisible in the counters (tail rows contributed nothing to words_touched
// or any probe counter); now every scan operator charges one rows_scanned
// unit per row and one words_touched unit per cell read, attributed to
// exactly the operator that did the work.

#include <gtest/gtest.h>

#include <cstdint>

#include "core/database.h"
#include "plan/plan.h"
#include "plan/plan_executor.h"
#include "plan/planner.h"
#include "table/generator.h"

namespace incdb {
namespace plan {
namespace {

Database MakeIndexedDb() {
  Database db =
      Database::FromTable(GenerateTable(UniformSpec(500, 6, 0.2, 3, 907))
                              .value())
          .value();
  EXPECT_TRUE(db.BuildIndex(IndexKind::kBitmapEquality).ok());
  return db;
}

TEST(PlanStatsTest, FullyCoveredQueryScansNoRows) {
  Database db = MakeIndexedDb();
  const auto result = db.Run(QueryRequest::Terms({{"a0", 2, 4}}));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->chosen_index, "BEE-WAH");
  EXPECT_EQ(result->stats.rows_scanned, 0u);
}

TEST(PlanStatsTest, DeltaRowsAreChargedToTheDeltaScanOperator) {
  Database db = MakeIndexedDb();
  constexpr uint64_t kTail = 40;
  for (uint64_t i = 0; i < kTail; ++i) {
    ASSERT_TRUE(db.Insert({static_cast<Value>(1 + i % 6), kMissingValue,
                           static_cast<Value>(1 + i % 3)})
                    .ok());
  }
  const QueryRequest request =
      QueryRequest::Terms({{"a0", 2, 4}, {"a2", 1, 2}});

  // Top-level accounting: the tail shows up in the query's merged stats.
  const auto result = db.Run(request);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->chosen_index, "BEE-WAH");
  EXPECT_EQ(result->stats.rows_scanned, kTail);
  // One cell read per row per term, on top of the probe's word traffic.
  EXPECT_GE(result->stats.words_touched, kTail * 2);

  // Per-operator attribution: the charge sits on the DeltaScan node itself,
  // not smeared over the probe.
  const Snapshot snapshot = db.GetSnapshot();
  auto plan = PlanRequest(snapshot, request);
  ASSERT_TRUE(plan.ok());
  ASSERT_TRUE(ExecutePlan(&plan.value(), ExecOptions()).ok());
  const PlanNode& sink = *plan->root;
  ASSERT_EQ(sink.children.size(), 2u);
  const PlanNode& probe = *sink.children[0];
  const PlanNode& delta = *sink.children[1];
  EXPECT_EQ(probe.kind, OpKind::kIndexProbe);
  EXPECT_EQ(delta.kind, OpKind::kDeltaScan);
  EXPECT_TRUE(delta.realized.executed);
  EXPECT_EQ(delta.begin_row, 500u);
  EXPECT_EQ(delta.end_row, 500u + kTail);
  EXPECT_EQ(delta.realized.stats.rows_scanned, kTail);
  EXPECT_EQ(delta.realized.stats.words_touched, kTail * 2);
  EXPECT_EQ(delta.realized.rows_scanned, kTail);
  EXPECT_GE(delta.realized.morsels, 1u);
  EXPECT_EQ(probe.realized.stats.rows_scanned, 0u);
}

TEST(PlanStatsTest, ExpressionDeltaChargesOneUnitPerLeafCell) {
  Database db = MakeIndexedDb();
  constexpr uint64_t kTail = 12;
  for (uint64_t i = 0; i < kTail; ++i) {
    ASSERT_TRUE(db.Insert({static_cast<Value>(1 + i % 6),
                           static_cast<Value>(1 + i % 4), kMissingValue})
                    .ok());
  }
  // Three leaves: the tail costs 3 cells per row in words_touched.
  const QueryExpr expr = QueryExpr::MakeOr(
      {QueryExpr::MakeAnd({QueryExpr::MakeTerm(0, {2, 4}),
                           QueryExpr::MakeTerm(1, {1, 2})}),
       QueryExpr::MakeNot(QueryExpr::MakeTerm(2, {3, 6}))});
  const Snapshot snapshot = db.GetSnapshot();
  auto plan = PlanRequest(snapshot, QueryRequest::Expression(expr));
  ASSERT_TRUE(plan.ok());
  ASSERT_TRUE(ExecutePlan(&plan.value(), ExecOptions()).ok());
  const PlanNode& delta = *plan->root->children.at(1);
  EXPECT_EQ(delta.kind, OpKind::kDeltaScan);
  EXPECT_EQ(delta.realized.stats.rows_scanned, kTail);
  EXPECT_EQ(delta.realized.stats.words_touched, kTail * 3);
}

TEST(PlanStatsTest, SeqScanFallbackChargesEveryVisibleRow) {
  Database db =
      Database::FromTable(GenerateTable(UniformSpec(200, 5, 0.1, 2, 911))
                              .value())
          .value();  // no index
  const auto result = db.Run(QueryRequest::Terms({{"a0", 1, 3}}));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->chosen_index, "SeqScan");
  EXPECT_EQ(result->stats.rows_scanned, 200u);
  EXPECT_EQ(result->stats.words_touched, 200u);  // one term = one cell/row
}

TEST(PlanStatsTest, CountDirectSkipsMaterializationButKeepsTheCount) {
  Database db = MakeIndexedDb();
  const QueryRequest request = QueryRequest::Terms({{"a0", 3, 3}});
  const auto full = db.Run(request);
  const auto counted = db.Run(QueryRequest(request).CountOnly());
  ASSERT_TRUE(full.ok());
  ASSERT_TRUE(counted.ok());
  EXPECT_EQ(counted->count, full->count);
  EXPECT_TRUE(counted->row_ids.empty());
  // Full coverage and no deletes: the planner marks the probe count_direct.
  const Snapshot snapshot = db.GetSnapshot();
  auto plan = PlanRequest(snapshot, QueryRequest(request).CountOnly());
  ASSERT_TRUE(plan.ok());
  EXPECT_EQ(plan->root->kind, OpKind::kCountSink);
  EXPECT_TRUE(plan->root->children.front()->count_direct);
}

}  // namespace
}  // namespace plan
}  // namespace incdb
