// Plan-vs-oracle property suite: every query shape lowered by the planner
// must agree exactly with the row-level oracle (RowMatches / ExprMatches)
// across all ten buildable index kinds and both missing-data semantics —
// bare-index plans first, then full snapshot plans with appended tails,
// deletions, count-only and parallel execution layered on.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/database.h"
#include "core/index_factory.h"
#include "plan/plan_executor.h"
#include "plan/planner.h"
#include "query/expr.h"
#include "table/generator.h"

namespace incdb {
namespace plan {
namespace {

constexpr IndexKind kBuildableKinds[] = {
    IndexKind::kBitmapEquality,       IndexKind::kBitmapRange,
    IndexKind::kBitmapInterval,       IndexKind::kBitmapBitSliced,
    IndexKind::kBitmapMultiComponent, IndexKind::kBitmapHierarchical,
    IndexKind::kVaFile,               IndexKind::kVaPlusFile,
    IndexKind::kMosaic,               IndexKind::kBitstringAugmented,
};

// Conjunctive fixtures over three attributes with cardinality 6: point,
// one-dimensional range, multi-dimensional, full-domain, three-dimensional.
std::vector<std::vector<QueryTerm>> TermFixtures() {
  return {
      {{0, {3, 3}}},
      {{1, {2, 5}}},
      {{0, {2, 4}}, {2, {1, 3}}},
      {{0, {1, 6}}},
      {{0, {4, 4}}, {1, {1, 2}}, {2, {5, 6}}},
  };
}

// Boolean fixtures exercising every operator plus nesting (NOT under OR,
// NOT over AND, repeated attributes).
std::vector<QueryExpr> ExprFixtures() {
  const QueryExpr t0 = QueryExpr::MakeTerm(0, {2, 4});
  const QueryExpr t1 = QueryExpr::MakeTerm(1, {3, 6});
  const QueryExpr t2 = QueryExpr::MakeTerm(2, {1, 2});
  return {
      t0,
      QueryExpr::MakeAnd({t0, t1}),
      QueryExpr::MakeOr({t0, t2}),
      QueryExpr::MakeNot(t0),
      QueryExpr::MakeAnd({t0, QueryExpr::MakeNot(t1)}),
      QueryExpr::MakeNot(QueryExpr::MakeOr({t0, QueryExpr::MakeAnd({t1, t2})})),
      QueryExpr::MakeOr({QueryExpr::MakeAnd({t0, t1}),
                         QueryExpr::MakeNot(QueryExpr::MakeAnd({t1, t2}))}),
  };
}

std::vector<uint32_t> OracleTerms(const Table& table, const RangeQuery& query) {
  std::vector<uint32_t> rows;
  for (uint64_t r = 0; r < table.num_rows(); ++r) {
    if (RowMatches(table, r, query)) rows.push_back(static_cast<uint32_t>(r));
  }
  return rows;
}

std::vector<uint32_t> OracleExpr(const Table& table, const QueryExpr& expr,
                                 MissingSemantics semantics) {
  std::vector<uint32_t> rows;
  for (uint64_t r = 0; r < table.num_rows(); ++r) {
    if (ExprMatches(table, r, expr, semantics)) {
      rows.push_back(static_cast<uint32_t>(r));
    }
  }
  return rows;
}

class PlanPropertyTest : public ::testing::TestWithParam<IndexKind> {};

TEST_P(PlanPropertyTest, BareRangePlansAgreeWithOracle) {
  const Table table = GenerateTable(UniformSpec(400, 6, 0.25, 3, 611)).value();
  const auto index = CreateIndex(GetParam(), table).value();
  for (MissingSemantics semantics :
       {MissingSemantics::kMatch, MissingSemantics::kNoMatch}) {
    for (const std::vector<QueryTerm>& terms : TermFixtures()) {
      RangeQuery query;
      query.terms = terms;
      query.semantics = semantics;
      auto plan = PlanRangeOverIndex(*index, query);
      ASSERT_TRUE(plan.ok()) << plan.status().ToString();
      QueryStats stats;
      auto answer = ExecutePlanToBitVector(&plan.value(), &stats);
      ASSERT_TRUE(answer.ok()) << answer.status().ToString();
      EXPECT_EQ(answer->ToIndices(), OracleTerms(table, query))
          << index->Name() << " on " << query.ToString();
    }
  }
}

TEST_P(PlanPropertyTest, BareExpressionPlansAgreeWithOracle) {
  const Table table = GenerateTable(UniformSpec(400, 6, 0.25, 3, 613)).value();
  const auto index = CreateIndex(GetParam(), table).value();
  for (MissingSemantics semantics :
       {MissingSemantics::kMatch, MissingSemantics::kNoMatch}) {
    for (const QueryExpr& expr : ExprFixtures()) {
      auto plan = PlanExprOverIndex(*index, expr, semantics);
      ASSERT_TRUE(plan.ok()) << plan.status().ToString();
      auto answer = ExecutePlanToBitVector(&plan.value());
      ASSERT_TRUE(answer.ok()) << answer.status().ToString();
      EXPECT_EQ(answer->ToIndices(), OracleExpr(table, expr, semantics))
          << index->Name() << " [" << MissingSemanticsToString(semantics)
          << "] on " << expr.ToString();
    }
  }
}

// End-to-end through Database::Run: index + appended tail (delta scan) +
// deletions, under serial, parallel, and count-only execution.
TEST_P(PlanPropertyTest, SnapshotPlansAgreeWithOracleUnderDeltaAndDeletes) {
  Database db =
      Database::FromTable(GenerateTable(UniformSpec(300, 6, 0.25, 3, 617))
                              .value())
          .value();
  ASSERT_TRUE(db.BuildIndex(GetParam()).ok());
  // Appended tail the index does not cover, with missing cells in it.
  for (int i = 0; i < 25; ++i) {
    const std::vector<Value> row = {
        static_cast<Value>(1 + i % 6),
        i % 3 == 0 ? kMissingValue : static_cast<Value>(1 + (i * 5) % 6),
        static_cast<Value>(1 + i % 2)};
    ASSERT_TRUE(db.Insert(row).ok());
  }
  // Deletions on both sides of the coverage boundary.
  ASSERT_TRUE(db.Delete(3).ok());
  ASSERT_TRUE(db.Delete(108).ok());
  ASSERT_TRUE(db.Delete(310).ok());

  const auto oracle = [&db](auto matches) {
    std::vector<uint32_t> rows;
    for (uint64_t r = 0; r < db.num_rows(); ++r) {
      if (!db.IsDeleted(static_cast<uint32_t>(r)) && matches(r)) {
        rows.push_back(static_cast<uint32_t>(r));
      }
    }
    return rows;
  };

  for (MissingSemantics semantics :
       {MissingSemantics::kMatch, MissingSemantics::kNoMatch}) {
    for (const std::vector<QueryTerm>& terms : TermFixtures()) {
      RangeQuery query;
      query.terms = terms;
      query.semantics = semantics;
      std::vector<NamedTerm> named;
      for (const QueryTerm& term : terms) {
        named.push_back({"a" + std::to_string(term.attribute),
                         term.interval.lo, term.interval.hi});
      }
      const auto expected = oracle(
          [&](uint64_t r) { return RowMatches(db.table(), r, query); });

      const auto serial = db.Run(QueryRequest::Terms(named, semantics));
      ASSERT_TRUE(serial.ok()) << serial.status().ToString();
      EXPECT_EQ(serial->row_ids, expected) << query.ToString();

      const auto parallel =
          db.Run(QueryRequest::Terms(named, semantics).Parallel(4));
      ASSERT_TRUE(parallel.ok());
      EXPECT_EQ(parallel->row_ids, expected) << query.ToString();

      const auto counted =
          db.Run(QueryRequest::Terms(named, semantics).CountOnly());
      ASSERT_TRUE(counted.ok());
      EXPECT_EQ(counted->count, expected.size()) << query.ToString();
      EXPECT_TRUE(counted->row_ids.empty());
    }

    for (const QueryExpr& expr : ExprFixtures()) {
      const auto expected = oracle([&](uint64_t r) {
        return ExprMatches(db.table(), r, expr, semantics);
      });
      const auto serial = db.Run(QueryRequest::Expression(expr, semantics));
      ASSERT_TRUE(serial.ok()) << serial.status().ToString();
      EXPECT_EQ(serial->row_ids, expected) << expr.ToString();
      const auto parallel =
          db.Run(QueryRequest::Expression(expr, semantics).Parallel(4));
      ASSERT_TRUE(parallel.ok());
      EXPECT_EQ(parallel->row_ids, expected) << expr.ToString();
    }

    // Text lowers through the same expression path.
    const QueryExpr text_equivalent = QueryExpr::MakeAnd(
        {QueryExpr::MakeTerm(0, {2, 4}),
         QueryExpr::MakeNot(QueryExpr::MakeTerm(1, {3, 3}))});
    const auto expected = oracle([&](uint64_t r) {
      return ExprMatches(db.table(), r, text_equivalent, semantics);
    });
    const auto text =
        db.Run(QueryRequest::Text("a0 IN [2,4] AND NOT a1 = 3", semantics));
    ASSERT_TRUE(text.ok()) << text.status().ToString();
    EXPECT_EQ(text->row_ids, expected);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, PlanPropertyTest, ::testing::ValuesIn(kBuildableKinds),
    [](const ::testing::TestParamInfo<IndexKind>& info) {
      std::string name(IndexKindToString(info.param));
      for (char& c : name) {
        if (c == '-' || c == '+' || c == ' ') c = '_';
      }
      return name;
    });

}  // namespace
}  // namespace plan
}  // namespace incdb
