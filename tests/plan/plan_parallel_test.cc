// Morsel-parallel execution must be bit-identical to serial execution —
// same row ids, same count, and (because the morsel grid is anchored at row
// zero and stats merge in task order) the same merged QueryStats. Run under
// TSan (cmake --preset tsan / tools/check.sh tsan) to prove the
// word-aligned morsel partitioning is data-race-free.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "core/database.h"
#include "plan/plan_executor.h"
#include "plan/planner.h"
#include "table/generator.h"

namespace incdb {
namespace plan {
namespace {

Database MakeBigDb(uint64_t rows, uint64_t seed) {
  return Database::FromTable(
             GenerateTable(UniformSpec(rows, 8, 0.2, 4, seed)).value())
      .value();
}

TEST(PlanParallelTest, ConjunctionIsBitIdenticalAcrossThreadCounts) {
  Database db = MakeBigDb(20000, 811);
  ASSERT_TRUE(db.BuildIndex(IndexKind::kBitmapEquality).ok());
  const std::vector<NamedTerm> terms = {
      {"a0", 2, 5}, {"a1", 1, 4}, {"a2", 3, 6}, {"a3", 2, 7}};
  for (MissingSemantics semantics :
       {MissingSemantics::kMatch, MissingSemantics::kNoMatch}) {
    const auto serial = db.Run(QueryRequest::Terms(terms, semantics));
    ASSERT_TRUE(serial.ok()) << serial.status().ToString();
    for (size_t threads : {size_t{2}, size_t{8}, size_t{0}}) {
      const auto parallel =
          db.Run(QueryRequest::Terms(terms, semantics).Parallel(threads));
      ASSERT_TRUE(parallel.ok()) << parallel.status().ToString();
      EXPECT_EQ(parallel->row_ids, serial->row_ids) << threads;
      EXPECT_EQ(parallel->count, serial->count) << threads;
      EXPECT_EQ(parallel->chosen_index, serial->chosen_index);
    }
  }
}

TEST(PlanParallelTest, DeltaTailAndDeletesStayBitIdentical) {
  Database db = MakeBigDb(8000, 821);
  ASSERT_TRUE(db.BuildIndex(IndexKind::kBitmapRange).ok());
  for (int i = 0; i < 700; ++i) {
    ASSERT_TRUE(db.Insert({static_cast<Value>(1 + i % 8), kMissingValue,
                           static_cast<Value>(1 + i % 4),
                           static_cast<Value>(1 + i % 7)})
                    .ok());
  }
  for (uint32_t r = 100; r < 8500; r += 1000) ASSERT_TRUE(db.Delete(r).ok());
  const QueryRequest request =
      QueryRequest::Terms({{"a0", 2, 6}, {"a2", 1, 2}});
  const auto serial = db.Run(request);
  ASSERT_TRUE(serial.ok());
  const auto parallel = db.Run(QueryRequest(request).Parallel(8));
  ASSERT_TRUE(parallel.ok());
  EXPECT_EQ(parallel->row_ids, serial->row_ids);
  EXPECT_EQ(parallel->count, serial->count);
}

TEST(PlanParallelTest, ExpressionPlansAgreeSerialVsParallel) {
  Database db = MakeBigDb(12000, 823);
  ASSERT_TRUE(db.BuildIndex(IndexKind::kBitmapEquality).ok());
  const QueryExpr expr = QueryExpr::MakeOr(
      {QueryExpr::MakeAnd({QueryExpr::MakeTerm(0, {2, 4}),
                           QueryExpr::MakeTerm(1, {1, 3})}),
       QueryExpr::MakeNot(QueryExpr::MakeTerm(2, {5, 8}))});
  for (MissingSemantics semantics :
       {MissingSemantics::kMatch, MissingSemantics::kNoMatch}) {
    const auto serial = db.Run(QueryRequest::Expression(expr, semantics));
    ASSERT_TRUE(serial.ok());
    const auto parallel =
        db.Run(QueryRequest::Expression(expr, semantics).Parallel(8));
    ASSERT_TRUE(parallel.ok());
    EXPECT_EQ(parallel->row_ids, serial->row_ids);
  }
}

// Same plan shape, one vs many workers, a morsel grid much finer than the
// scan range: answers AND merged per-operator stats must be identical,
// because the grid is anchored at row 0 (partitioning does not depend on
// the thread count) and task stats merge in task order.
TEST(PlanParallelTest, ScanMorselStatsAreDeterministic) {
  Database db = MakeBigDb(10000, 827);  // no index: seq-scan fallback plan
  const QueryRequest request =
      QueryRequest::Terms({{"a0", 2, 6}, {"a1", 1, 5}});
  const Snapshot snapshot = db.GetSnapshot();

  auto run = [&](size_t threads) {
    auto plan = PlanRequest(snapshot, request);
    EXPECT_TRUE(plan.ok());
    ExecOptions options;
    options.num_threads = threads;
    options.morsel_rows = 512;
    auto result = ExecutePlan(&plan.value(), options);
    EXPECT_TRUE(result.ok()) << result.status().ToString();
    // The fallback scan must actually have been split.
    EXPECT_GT(plan->root->children.front()->realized.morsels, 1u);
    return std::move(result).value();
  };

  const QueryResult serial = run(1);
  const QueryResult parallel = run(8);
  EXPECT_EQ(parallel.row_ids, serial.row_ids);
  EXPECT_EQ(parallel.count, serial.count);
  EXPECT_EQ(parallel.stats.rows_scanned, serial.stats.rows_scanned);
  EXPECT_EQ(parallel.stats.words_touched, serial.stats.words_touched);
  EXPECT_EQ(parallel.stats.bitvector_ops, serial.stats.bitvector_ops);
}

}  // namespace
}  // namespace plan
}  // namespace incdb
