// Cooperative deadlines: ExecOptions::deadline is checked before work
// starts and again at every morsel boundary (before each leaf-task claim),
// so an expired budget surfaces as StatusCode::kDeadlineExceeded quickly
// instead of running the plan to completion — the mechanism the serving
// daemon relies on to fail slow requests fast.

#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>

#include "core/database.h"
#include "plan/plan_executor.h"
#include "plan/planner.h"
#include "table/generator.h"

namespace incdb {
namespace plan {
namespace {

Database MakeDb(uint64_t rows, uint64_t seed) {
  return Database::FromTable(
             GenerateTable(UniformSpec(rows, 8, 0.2, 4, seed)).value())
      .value();
}

TEST(PlanDeadlineTest, ExpiredDeadlineFailsBeforeExecution) {
  Database db = MakeDb(20000, 4101);
  const Snapshot snapshot = db.GetSnapshot();
  QueryRequest request = QueryRequest::Terms({{"a0", 2, 5}, {"a1", 1, 4}});
  auto plan = PlanRequest(snapshot, request);
  ASSERT_TRUE(plan.ok()) << plan.status().ToString();
  ExecOptions options;
  options.deadline =
      std::chrono::steady_clock::now() - std::chrono::milliseconds(1);
  const auto result = ExecutePlan(&*plan, options);
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
}

TEST(PlanDeadlineTest, ExpiredDeadlineFailsInSerialAndParallelModes) {
  Database db = MakeDb(30000, 4111);
  for (const size_t threads : {size_t{1}, size_t{4}}) {
    const auto result = db.Run(QueryRequest::Terms({{"a0", 1, 7}})
                                   .Parallel(threads)
                                   .DeadlineMillis(0));
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    // Now the same query with a pre-expired absolute deadline, driven
    // through the executor directly (DeadlineMillis is relative and
    // cannot be negative).
    const Snapshot snapshot = db.GetSnapshot();
    auto plan = PlanRequest(snapshot, QueryRequest::Terms({{"a0", 1, 7}}));
    ASSERT_TRUE(plan.ok());
    ExecOptions options;
    options.num_threads = threads;
    options.deadline = std::chrono::steady_clock::now();
    const auto expired = ExecutePlan(&*plan, options);
    ASSERT_FALSE(expired.ok()) << "threads=" << threads;
    EXPECT_EQ(expired.status().code(), StatusCode::kDeadlineExceeded);
  }
}

TEST(PlanDeadlineTest, GenerousDeadlineDoesNotPerturbTheAnswer) {
  Database db = MakeDb(20000, 4121);
  ASSERT_TRUE(db.BuildIndex(IndexKind::kBitmapEquality).ok());
  const QueryRequest plain = QueryRequest::Terms({{"a0", 2, 5}, {"a2", 1, 3}});
  const auto baseline = db.Run(plain);
  ASSERT_TRUE(baseline.ok());
  const auto bounded =
      db.Run(QueryRequest(plain).DeadlineMillis(60000).Parallel(4));
  ASSERT_TRUE(bounded.ok()) << bounded.status().ToString();
  EXPECT_EQ(bounded->row_ids, baseline->row_ids);
  EXPECT_EQ(bounded->count, baseline->count);
}

TEST(PlanDeadlineTest, DeadlineMillisFlowsThroughTheRequestApi) {
  Database db = MakeDb(5000, 4131);
  // A 1 ms budget may or may not expire on a tiny table — both outcomes
  // are legal; what matters is that failure, when it happens, carries the
  // right code and success carries the right answer.
  const auto result =
      db.Run(QueryRequest::Terms({{"a0", 1, 8}}).DeadlineMillis(1));
  if (!result.ok()) {
    EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  } else {
    const auto baseline = db.Run(QueryRequest::Terms({{"a0", 1, 8}}));
    ASSERT_TRUE(baseline.ok());
    EXPECT_EQ(result->count, baseline->count);
  }
}

}  // namespace
}  // namespace plan
}  // namespace incdb
