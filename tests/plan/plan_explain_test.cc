// EXPLAIN rendering: the string in QueryResult::explain must describe the
// plan that actually ran — the chosen index, the operator tree, estimated
// vs realized selectivity, and the delta scan when a tail exists.

#include <gtest/gtest.h>

#include <string>

#include "core/database.h"
#include "table/generator.h"

namespace incdb {
namespace {

Database MakeDb() {
  Database db =
      Database::FromTable(GenerateTable(UniformSpec(400, 6, 0.2, 3, 1009))
                              .value())
          .value();
  EXPECT_TRUE(db.BuildIndex(IndexKind::kBitmapEquality).ok());
  return db;
}

bool Contains(const std::string& haystack, const std::string& needle) {
  return haystack.find(needle) != std::string::npos;
}

TEST(PlanExplainTest, EmptyUnlessRequested) {
  Database db = MakeDb();
  const auto plain = db.Run(QueryRequest::Terms({{"a0", 2, 4}}));
  ASSERT_TRUE(plain.ok());
  EXPECT_TRUE(plain->explain.empty());
  const auto explained = db.Run(QueryRequest::Terms({{"a0", 2, 4}}).Explain());
  ASSERT_TRUE(explained.ok());
  EXPECT_FALSE(explained->explain.empty());
}

TEST(PlanExplainTest, ShowsTheExecutedProbeWithEstimatedAndRealizedFigures) {
  Database db = MakeDb();
  const auto result = db.Run(QueryRequest::Terms({{"a0", 2, 4}}).Explain());
  ASSERT_TRUE(result.ok());
  const std::string& explain = result->explain;
  EXPECT_TRUE(Contains(explain, "MaterializeSink")) << explain;
  // The explained probe names the index the router actually chose.
  EXPECT_TRUE(Contains(explain, "IndexProbe " + result->chosen_index))
      << explain;
  EXPECT_TRUE(Contains(explain, "est_sel=")) << explain;
  EXPECT_TRUE(Contains(explain, " sel=")) << explain;
  EXPECT_TRUE(Contains(explain, " rows=" + std::to_string(result->count)))
      << explain;
  EXPECT_FALSE(Contains(explain, "(not executed)")) << explain;
}

TEST(PlanExplainTest, DeltaScanAppearsExactlyWhenATailExists) {
  Database db = MakeDb();
  const auto covered = db.Run(QueryRequest::Terms({{"a0", 2, 4}}).Explain());
  ASSERT_TRUE(covered.ok());
  EXPECT_FALSE(Contains(covered->explain, "DeltaScan")) << covered->explain;

  ASSERT_TRUE(db.Insert({1, 2, 3}).ok());
  ASSERT_TRUE(db.Insert({kMissingValue, 5, 1}).ok());
  const auto tailed = db.Run(QueryRequest::Terms({{"a0", 2, 4}}).Explain());
  ASSERT_TRUE(tailed.ok());
  EXPECT_TRUE(Contains(tailed->explain, "DeltaScan rows [400,402)"))
      << tailed->explain;
  EXPECT_TRUE(Contains(tailed->explain, "scanned=2")) << tailed->explain;
}

TEST(PlanExplainTest, ScanFallbackAndCountSinkRender) {
  Database db =
      Database::FromTable(GenerateTable(UniformSpec(100, 5, 0.1, 2, 1013))
                              .value())
          .value();  // no index
  const auto result =
      db.Run(QueryRequest::Terms({{"a0", 1, 3}}).CountOnly().Explain());
  ASSERT_TRUE(result.ok());
  EXPECT_TRUE(Contains(result->explain, "CountSink")) << result->explain;
  EXPECT_TRUE(Contains(result->explain, "SeqScan rows [0,100)"))
      << result->explain;
}

TEST(PlanExplainTest, ExpressionTreeRendersOperatorsAndFlippedSemantics) {
  Database db = MakeDb();
  const QueryExpr expr = QueryExpr::MakeAnd(
      {QueryExpr::MakeTerm(0, {2, 4}),
       QueryExpr::MakeNot(QueryExpr::MakeTerm(1, {3, 3}))});
  const auto result = db.Run(
      QueryRequest::Expression(expr, MissingSemantics::kMatch).Explain());
  ASSERT_TRUE(result.ok());
  const std::string& explain = result->explain;
  EXPECT_TRUE(Contains(explain, "And")) << explain;
  EXPECT_TRUE(Contains(explain, "Not")) << explain;
  // The probe under NOT computes the flipped Kleene component: a kMatch
  // request evaluates certain(child) there, rendered as [no-match].
  EXPECT_TRUE(Contains(explain, "[no-match] A1 in [3,3]")) << explain;
  EXPECT_TRUE(Contains(explain, "[match] A0 in [2,4]")) << explain;
}

TEST(PlanExplainTest, ParallelConjunctionShowsPerDimensionProbes) {
  Database db = MakeDb();
  const auto result = db.Run(
      QueryRequest::Terms({{"a0", 2, 4}, {"a1", 1, 3}}).Parallel(4).Explain());
  ASSERT_TRUE(result.ok());
  const std::string& explain = result->explain;
  // Split into an And of single-term probes so dimensions run concurrently.
  EXPECT_TRUE(Contains(explain, "And")) << explain;
  EXPECT_TRUE(Contains(explain, "A0 in [2,4]")) << explain;
  EXPECT_TRUE(Contains(explain, "A1 in [1,3]")) << explain;
}

}  // namespace
}  // namespace incdb
