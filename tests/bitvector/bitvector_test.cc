#include "bitvector/bitvector.h"

#include <gtest/gtest.h>

#include "common/rng.h"

namespace incdb {
namespace {

TEST(BitVectorTest, EmptyByDefault) {
  BitVector bv;
  EXPECT_EQ(bv.size(), 0u);
  EXPECT_TRUE(bv.empty());
  EXPECT_EQ(bv.Count(), 0u);
}

TEST(BitVectorTest, SizedConstructorAllZero) {
  BitVector bv(100);
  EXPECT_EQ(bv.size(), 100u);
  EXPECT_EQ(bv.Count(), 0u);
  for (uint64_t i = 0; i < 100; ++i) EXPECT_FALSE(bv.Get(i));
}

TEST(BitVectorTest, FilledConstructor) {
  BitVector bv(70, true);
  EXPECT_EQ(bv.Count(), 70u);
  // The trailing bits of the last word must stay zero (invariant).
  EXPECT_EQ(bv.words().back() >> (70 % 64), 0u);
}

TEST(BitVectorTest, SetAndGet) {
  BitVector bv(130);
  bv.Set(0);
  bv.Set(63);
  bv.Set(64);
  bv.Set(129);
  EXPECT_TRUE(bv.Get(0));
  EXPECT_TRUE(bv.Get(63));
  EXPECT_TRUE(bv.Get(64));
  EXPECT_TRUE(bv.Get(129));
  EXPECT_FALSE(bv.Get(1));
  EXPECT_EQ(bv.Count(), 4u);
  bv.Set(63, false);
  EXPECT_FALSE(bv.Get(63));
  EXPECT_EQ(bv.Count(), 3u);
}

TEST(BitVectorTest, PushBack) {
  BitVector bv;
  for (int i = 0; i < 100; ++i) bv.PushBack(i % 3 == 0);
  EXPECT_EQ(bv.size(), 100u);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(bv.Get(i), i % 3 == 0);
}

TEST(BitVectorTest, ResizeGrowsWithZeros) {
  BitVector bv(10, true);
  bv.Resize(100);
  EXPECT_EQ(bv.size(), 100u);
  EXPECT_EQ(bv.Count(), 10u);
}

TEST(BitVectorTest, ResizeShrinkClearsTail) {
  BitVector bv(100, true);
  bv.Resize(10);
  EXPECT_EQ(bv.Count(), 10u);
  bv.Resize(100);
  EXPECT_EQ(bv.Count(), 10u);  // regrown bits are zero
}

TEST(BitVectorTest, FromBoolsAndToString) {
  const BitVector bv = BitVector::FromBools({false, true, true, false, true});
  EXPECT_EQ(bv.ToString(), "01101");
}

TEST(BitVectorTest, FromStringRoundTrip) {
  const auto result = BitVector::FromString("0001000010");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value().ToString(), "0001000010");
  EXPECT_EQ(result.value().Count(), 2u);
}

TEST(BitVectorTest, FromStringRejectsJunk) {
  EXPECT_FALSE(BitVector::FromString("0102").ok());
}

TEST(BitVectorTest, LogicalOps) {
  const BitVector a = BitVector::FromString("1100").value();
  const BitVector b = BitVector::FromString("1010").value();
  EXPECT_EQ(And(a, b).ToString(), "1000");
  EXPECT_EQ(Or(a, b).ToString(), "1110");
  EXPECT_EQ(Xor(a, b).ToString(), "0110");
  EXPECT_EQ(Not(a).ToString(), "0011");
}

TEST(BitVectorTest, NotPreservesTrailingZeroInvariant) {
  BitVector bv(70);
  bv.Flip();
  EXPECT_EQ(bv.Count(), 70u);
  EXPECT_EQ(bv.words().back() >> (70 % 64), 0u);
}

TEST(BitVectorTest, SetAllThenClearAll) {
  BitVector bv(100);
  bv.SetAll();
  EXPECT_EQ(bv.Count(), 100u);
  bv.ClearAll();
  EXPECT_EQ(bv.Count(), 0u);
}

TEST(BitVectorTest, Density) {
  BitVector bv(100);
  for (int i = 0; i < 25; ++i) bv.Set(i);
  EXPECT_DOUBLE_EQ(bv.Density(), 0.25);
  EXPECT_DOUBLE_EQ(BitVector().Density(), 0.0);
}

TEST(BitVectorTest, ForEachSetBitInOrder) {
  BitVector bv(200);
  bv.Set(3);
  bv.Set(64);
  bv.Set(199);
  std::vector<uint64_t> seen;
  bv.ForEachSetBit([&](uint64_t i) { seen.push_back(i); });
  EXPECT_EQ(seen, (std::vector<uint64_t>{3, 64, 199}));
}

TEST(BitVectorTest, ToIndices) {
  BitVector bv(10);
  bv.Set(1);
  bv.Set(9);
  EXPECT_EQ(bv.ToIndices(), (std::vector<uint32_t>{1, 9}));
}

TEST(BitVectorTest, Equality) {
  BitVector a(10);
  BitVector b(10);
  EXPECT_TRUE(a == b);
  a.Set(5);
  EXPECT_FALSE(a == b);
  b.Set(5);
  EXPECT_TRUE(a == b);
}

TEST(BitVectorTest, DeMorganRandomized) {
  Rng rng(99);
  for (int trial = 0; trial < 20; ++trial) {
    const uint64_t n = 1 + rng.UniformInt(0, 300);
    BitVector a(n);
    BitVector b(n);
    for (uint64_t i = 0; i < n; ++i) {
      if (rng.Bernoulli(0.4)) a.Set(i);
      if (rng.Bernoulli(0.4)) b.Set(i);
    }
    EXPECT_TRUE(Not(And(a, b)) == Or(Not(a), Not(b)));
    EXPECT_TRUE(Not(Or(a, b)) == And(Not(a), Not(b)));
    EXPECT_TRUE(Xor(a, b) == Or(And(a, Not(b)), And(Not(a), b)));
  }
}

TEST(BitVectorTest, SizeInBytes) {
  EXPECT_EQ(BitVector(0).SizeInBytes(), 0u);
  EXPECT_EQ(BitVector(1).SizeInBytes(), 8u);
  EXPECT_EQ(BitVector(64).SizeInBytes(), 8u);
  EXPECT_EQ(BitVector(65).SizeInBytes(), 16u);
}

}  // namespace
}  // namespace incdb
