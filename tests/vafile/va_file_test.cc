#include "vafile/va_file.h"

#include <gtest/gtest.h>

#include "common/bitutil.h"
#include "table/generator.h"

namespace incdb {
namespace {

Table MakeUniform(uint64_t rows, uint32_t cardinality, double missing,
                  size_t attrs, uint64_t seed = 42) {
  return GenerateTable(UniformSpec(rows, cardinality, missing, attrs, seed))
      .value();
}

TEST(VaFileTest, RejectsEmptyTable) {
  auto table = Table::Create(Schema({{"x", 5}})).value();
  EXPECT_FALSE(VaFile::Build(table).ok());
}

TEST(VaFileTest, RejectsBadBitsOverride) {
  const Table table = MakeUniform(10, 5, 0.0, 1);
  EXPECT_FALSE(VaFile::Build(table, {VaQuantization::kUniform, -1}).ok());
  EXPECT_FALSE(VaFile::Build(table, {VaQuantization::kUniform, 31}).ok());
}

TEST(VaFileTest, DefaultBitAllocationFollowsPaper) {
  // b_i = ceil(lg(C_i + 1)) (paper §4.5).
  auto table = Table::Create(
                   Schema({{"a", 1}, {"b", 2}, {"c", 7}, {"d", 100}}))
                   .value();
  ASSERT_TRUE(table.AppendRow({1, 1, 1, 1}).ok());
  const VaFile va = VaFile::Build(table).value();
  EXPECT_EQ(va.BitsFor(0), 1);
  EXPECT_EQ(va.BitsFor(1), 2);
  EXPECT_EQ(va.BitsFor(2), 3);
  EXPECT_EQ(va.BitsFor(3), 7);
  EXPECT_EQ(va.RowStrideBits(), 13u);
}

// Paper Tables 5 and 6: cardinality-6 attribute packed into 2 bits; codes
// 00=missing, 01=1-2, 10=3-4, 11=5-6; records 6,1,3,missing → 11,01,10,00.
TEST(VaFileTest, PaperTables5And6Example) {
  auto table = Table::Create(Schema({{"v", 6}})).value();
  for (Value v : {6, 1, 3, kMissingValue}) {
    ASSERT_TRUE(table.AppendRow({v}).ok());
  }
  const VaFile va = VaFile::Build(table, {VaQuantization::kUniform, 2}).value();
  EXPECT_EQ(va.BitsFor(0), 2);
  EXPECT_EQ(va.StoredCode(0, 0), 3u);  // 11
  EXPECT_EQ(va.StoredCode(1, 0), 1u);  // 01
  EXPECT_EQ(va.StoredCode(2, 0), 2u);  // 10
  EXPECT_EQ(va.StoredCode(3, 0), 0u);  // 00 = missing
  EXPECT_EQ(va.BinRange(0, 1).lo, 1);
  EXPECT_EQ(va.BinRange(0, 1).hi, 2);
  EXPECT_EQ(va.BinRange(0, 2).lo, 3);
  EXPECT_EQ(va.BinRange(0, 2).hi, 4);
  EXPECT_EQ(va.BinRange(0, 3).lo, 5);
  EXPECT_EQ(va.BinRange(0, 3).hi, 6);
}

// Paper §4.5 example query "value is 4 or 5" over Tables 5/6 data.
TEST(VaFileTest, PaperExampleQuery) {
  auto table = Table::Create(Schema({{"v", 6}})).value();
  for (Value v : {6, 1, 3, kMissingValue}) {
    ASSERT_TRUE(table.AppendRow({v}).ok());
  }
  const VaFile va = VaFile::Build(table, {VaQuantization::kUniform, 2}).value();
  RangeQuery q;
  q.terms = {{0, {4, 5}}};
  q.semantics = MissingSemantics::kMatch;
  QueryStats stats;
  const BitVector result = va.Execute(q, &stats).value();
  // Candidates are bins 10, 11 plus 00 (records 1, 3, 4 in paper numbering);
  // refinement removes record 1 (value 6). Final: record 4 (missing) only...
  // and record 3 has value 3 (bin 10 covers 3-4) — refined out too.
  EXPECT_EQ(result.ToIndices(), (std::vector<uint32_t>{3}));
  EXPECT_EQ(stats.candidates, 3u);        // rows 0, 2, 3
  EXPECT_EQ(stats.false_positives, 2u);   // rows 0 and 2 refined away
}

TEST(VaFileTest, CodeOfIsMonotoneAndCoversDomain) {
  const Table table = MakeUniform(50, 100, 0.1, 1);
  const VaFile va = VaFile::Build(table, {VaQuantization::kUniform, 4}).value();
  uint32_t prev = 0;
  for (Value v = 1; v <= 100; ++v) {
    const uint32_t code = va.CodeOf(0, v);
    EXPECT_GE(code, 1u);
    EXPECT_LE(code, 15u);
    EXPECT_GE(code, prev);
    prev = code;
  }
  EXPECT_EQ(va.CodeOf(0, kMissingValue), 0u);
}

TEST(VaFileTest, StoredCodesMatchCodeOf) {
  const Table table = MakeUniform(500, 20, 0.2, 3, 7);
  const VaFile va = VaFile::Build(table).value();
  for (uint64_t r = 0; r < table.num_rows(); ++r) {
    for (size_t a = 0; a < 3; ++a) {
      EXPECT_EQ(va.StoredCode(r, a), va.CodeOf(a, table.Get(r, a)));
    }
  }
}

TEST(VaFileTest, SizeIsIndependentOfMissingRate) {
  // Fig. 4(b): the VA-file's size does not depend on missing data.
  const uint64_t size_low =
      VaFile::Build(MakeUniform(5000, 50, 0.1, 2, 3)).value().SizeInBytes();
  const uint64_t size_high =
      VaFile::Build(MakeUniform(5000, 50, 0.5, 2, 3)).value().SizeInBytes();
  EXPECT_EQ(size_low, size_high);
}

TEST(VaFileTest, SizeGrowsLogarithmicallyWithCardinality) {
  // Fig. 4(a): VA-file size grows with ceil(lg(C+1)), much slower than the
  // bitmaps' linear growth.
  const uint64_t size_c2 =
      VaFile::Build(MakeUniform(5000, 2, 0.1, 1, 3)).value().SizeInBytes();
  const uint64_t size_c100 =
      VaFile::Build(MakeUniform(5000, 100, 0.1, 1, 3)).value().SizeInBytes();
  // 2 bits vs 7 bits per record: ratio ~3.5 (plus small lookup tables),
  // nowhere near the bitmaps' 50x.
  EXPECT_LT(size_c100, 5 * size_c2);
}

TEST(VaFileTest, NameReflectsOptions) {
  const Table table = MakeUniform(10, 5, 0.0, 1);
  EXPECT_EQ(VaFile::Build(table).value().Name(), "VA-File");
  EXPECT_EQ(
      VaFile::Build(table, {VaQuantization::kEquiDepth, 0}).value().Name(),
      "VA+-File");
  EXPECT_EQ(
      VaFile::Build(table, {VaQuantization::kUniform, 2}).value().Name(),
      "VA-File(b=2)");
}

TEST(VaFileTest, ValidatesQueries) {
  const Table table = MakeUniform(10, 5, 0.0, 1);
  const VaFile va = VaFile::Build(table).value();
  RangeQuery q;
  q.terms = {{0, {1, 9}}};
  EXPECT_FALSE(va.Execute(q).ok());
  q.terms = {{4, {1, 2}}};
  EXPECT_FALSE(va.Execute(q).ok());
}

TEST(VaFileTest, EquiDepthBinsBalanceSkewedData) {
  // On Zipf data, equi-depth bins put the hot values in narrow bins.
  DatasetSpec spec = UniformSpec(20000, 64, 0.0, 1, 5);
  spec.attributes[0].zipf_theta = 1.2;
  const Table table = GenerateTable(spec).value();
  const VaFile uniform =
      VaFile::Build(table, {VaQuantization::kUniform, 3}).value();
  const VaFile equi_depth =
      VaFile::Build(table, {VaQuantization::kEquiDepth, 3}).value();
  // Under uniform binning value 1 shares bin 1 with values 2..10 (64
  // values over 7 bins); under equi-depth the dominant value 1 should get
  // (nearly) its own bin.
  EXPECT_EQ(uniform.BinRange(0, 1).Width(), 10u);
  EXPECT_LT(equi_depth.BinRange(0, 1).Width(), 4u);
}

TEST(VaFileTest, EquiDepthCoversWholeDomainContiguously) {
  DatasetSpec spec = UniformSpec(5000, 37, 0.1, 1, 9);
  spec.attributes[0].zipf_theta = 1.0;
  const Table table = GenerateTable(spec).value();
  const VaFile va =
      VaFile::Build(table, {VaQuantization::kEquiDepth, 3}).value();
  Value next = 1;
  for (uint32_t code = 1; code <= 7; ++code) {
    const Interval range = va.BinRange(0, code);
    if (range.hi < range.lo) continue;  // unused bin
    EXPECT_EQ(range.lo, next);
    next = range.hi + 1;
  }
  EXPECT_EQ(next, 38);
}

}  // namespace
}  // namespace incdb
