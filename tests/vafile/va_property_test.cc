// Oracle-equivalence and containment properties for the VA-file
// (DESIGN.md invariants 1 and 5), swept over quantization, bit budget,
// cardinality, missing rate and semantics.

#include <gtest/gtest.h>

#include <algorithm>

#include "common/rng.h"
#include "core/executor.h"
#include "query/workload.h"
#include "table/generator.h"
#include "vafile/va_file.h"

namespace incdb {
namespace {

struct VaSweepCase {
  VaQuantization quantization;
  int bits_override;  // 0 = paper default (exact bins)
  uint32_t cardinality;
  double missing_rate;
  MissingSemantics semantics;
};

class VaOracleTest : public ::testing::TestWithParam<VaSweepCase> {};

TEST_P(VaOracleTest, AgreesWithSequentialScan) {
  const VaSweepCase& c = GetParam();
  const Table table =
      GenerateTable(UniformSpec(1500, c.cardinality, c.missing_rate, 5,
                                /*seed=*/c.cardinality + 100))
          .value();
  const VaFile va =
      VaFile::Build(table, {c.quantization, c.bits_override}).value();

  WorkloadParams params;
  params.num_queries = 25;
  params.dims = 3;
  params.global_selectivity = 0.03;
  params.semantics = c.semantics;
  params.seed = 17;
  const auto queries = GenerateWorkload(table, params);
  ASSERT_TRUE(queries.ok());
  EXPECT_TRUE(VerifyAgainstOracle(va, table, queries.value()).ok());

  params.point_queries = true;
  const auto point_queries = GenerateWorkload(table, params);
  ASSERT_TRUE(point_queries.ok());
  EXPECT_TRUE(VerifyAgainstOracle(va, table, point_queries.value()).ok());
}

std::vector<VaSweepCase> MakeSweep() {
  std::vector<VaSweepCase> cases;
  for (VaQuantization quantization :
       {VaQuantization::kUniform, VaQuantization::kEquiDepth}) {
    for (int bits : {0, 2, 3}) {
      for (uint32_t cardinality : {2u, 10u, 50u}) {
        for (double missing : {0.0, 0.3}) {
          for (MissingSemantics semantics :
               {MissingSemantics::kMatch, MissingSemantics::kNoMatch}) {
            cases.push_back({quantization, bits, cardinality, missing,
                             semantics});
          }
        }
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, VaOracleTest, ::testing::ValuesIn(MakeSweep()));

// With the paper's default bit allocation every value has its own bin, so
// the filter step alone is exact: zero false positives.
TEST(VaFilterQualityTest, DefaultAllocationHasNoFalsePositives) {
  const Table table = GenerateTable(UniformSpec(2000, 20, 0.2, 4, 55)).value();
  const VaFile va = VaFile::Build(table).value();
  WorkloadParams params;
  params.num_queries = 20;
  params.dims = 3;
  params.global_selectivity = 0.05;
  const auto queries = GenerateWorkload(table, params);
  ASSERT_TRUE(queries.ok());
  for (const RangeQuery& q : queries.value()) {
    QueryStats stats;
    ASSERT_TRUE(va.Execute(q, &stats).ok());
    EXPECT_EQ(stats.false_positives, 0u);
  }
}

// With a squeezed bit budget the filter over-selects but refinement must
// restore exactness; candidates must always be a superset of the answer.
TEST(VaFilterQualityTest, LossyBinsRefineToExactResult) {
  const Table table = GenerateTable(UniformSpec(2000, 100, 0.2, 4, 57)).value();
  const VaFile va = VaFile::Build(table, {VaQuantization::kUniform, 3}).value();
  WorkloadParams params;
  params.num_queries = 20;
  params.dims = 2;
  params.global_selectivity = 0.05;
  const auto queries = GenerateWorkload(table, params);
  ASSERT_TRUE(queries.ok());
  uint64_t total_false_positives = 0;
  for (const RangeQuery& q : queries.value()) {
    QueryStats stats;
    const BitVector result = va.Execute(q, &stats).value();
    EXPECT_EQ(stats.candidates - stats.false_positives, result.Count());
    EXPECT_GE(stats.candidates, result.Count());
    total_false_positives += stats.false_positives;
  }
  EXPECT_GT(total_false_positives, 0u);  // 3 bits over C=100 must be lossy
  EXPECT_TRUE(VerifyAgainstOracle(va, table, queries.value()).ok());
}

// VA+ claim (paper future work, ref [6]): on skewed data equi-depth bins
// produce fewer false positives than uniform bins at the same bit budget —
// for workloads whose query endpoints follow the data distribution (the
// setting VA+ targets: queries land where the records are).
TEST(VaFilterQualityTest, EquiDepthBeatsUniformOnSkewedData) {
  DatasetSpec spec = UniformSpec(10000, 100, 0.1, 3, 59);
  for (auto& attr : spec.attributes) attr.zipf_theta = 1.3;
  const Table table = GenerateTable(spec).value();
  const VaFile uniform =
      VaFile::Build(table, {VaQuantization::kUniform, 3}).value();
  const VaFile equi_depth =
      VaFile::Build(table, {VaQuantization::kEquiDepth, 3}).value();
  // Data-located workload: each interval starts at the value of a randomly
  // sampled record, so hot values anchor most queries.
  Rng rng(59);
  std::vector<RangeQuery> data_located;
  for (int i = 0; i < 30; ++i) {
    RangeQuery q;
    q.semantics = MissingSemantics::kMatch;
    for (size_t a = 0; a < 2; ++a) {
      Value v = kMissingValue;
      while (IsMissing(v)) {
        v = table.Get(rng.UniformInt(0, table.num_rows() - 1), a);
      }
      const Value hi = std::min<Value>(v + 9, 100);
      q.terms.push_back({a, {v, hi}});
    }
    data_located.push_back(q);
  }
  const Result<std::vector<RangeQuery>> queries = data_located;
  ASSERT_TRUE(queries.ok());
  uint64_t fp_uniform = 0;
  uint64_t fp_equi_depth = 0;
  for (const RangeQuery& q : queries.value()) {
    QueryStats stats;
    ASSERT_TRUE(uniform.Execute(q, &stats).ok());
    fp_uniform += stats.false_positives;
    stats.Reset();
    ASSERT_TRUE(equi_depth.Execute(q, &stats).ok());
    fp_equi_depth += stats.false_positives;
  }
  EXPECT_LT(fp_equi_depth, fp_uniform);
}

}  // namespace
}  // namespace incdb
