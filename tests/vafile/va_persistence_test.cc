// Save/Load and incremental AppendRow for the VA-file.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "core/executor.h"
#include "query/workload.h"
#include "table/generator.h"
#include "vafile/va_file.h"

namespace incdb {
namespace {

class VaPersistenceTest : public ::testing::Test {
 protected:
  void TearDown() override {
    if (!path_.empty()) std::remove(path_.c_str());
  }
  std::string TempPath(const std::string& name) {
    path_ = ::testing::TempDir() + "/" + name;
    return path_;
  }
  std::string path_;
};

TEST_F(VaPersistenceTest, SaveLoadRoundTrip) {
  const Table table = GenerateTable(UniformSpec(1200, 20, 0.2, 4, 301)).value();
  for (VaQuantization quantization :
       {VaQuantization::kUniform, VaQuantization::kEquiDepth}) {
    for (int bits : {0, 3}) {
      const VaFile original =
          VaFile::Build(table, {quantization, bits}).value();
      const std::string path = TempPath("va.idx");
      ASSERT_TRUE(original.Save(path).ok());
      const auto loaded = VaFile::Load(path, table);
      ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
      EXPECT_EQ(loaded->Name(), original.Name());
      EXPECT_EQ(loaded->SizeInBytes(), original.SizeInBytes());
      for (uint64_t r = 0; r < 50; ++r) {
        for (size_t a = 0; a < 4; ++a) {
          EXPECT_EQ(loaded->StoredCode(r, a), original.StoredCode(r, a));
        }
      }
      WorkloadParams params;
      params.num_queries = 15;
      params.dims = 2;
      params.global_selectivity = 0.05;
      const auto queries = GenerateWorkload(table, params);
      ASSERT_TRUE(queries.ok());
      EXPECT_TRUE(
          VerifyAgainstOracle(loaded.value(), table, queries.value()).ok());
    }
  }
}

TEST_F(VaPersistenceTest, LoadRejectsMismatchedTable) {
  const Table table = GenerateTable(UniformSpec(500, 20, 0.2, 4, 303)).value();
  const VaFile original = VaFile::Build(table).value();
  const std::string path = TempPath("va_mismatch.idx");
  ASSERT_TRUE(original.Save(path).ok());

  // Wrong attribute count.
  const Table narrow = GenerateTable(UniformSpec(500, 20, 0.2, 3, 303)).value();
  EXPECT_FALSE(VaFile::Load(path, narrow).ok());
  // Wrong cardinality.
  const Table different =
      GenerateTable(UniformSpec(500, 21, 0.2, 4, 303)).value();
  EXPECT_FALSE(VaFile::Load(path, different).ok());
  // Fewer rows than the approximation covers.
  const Table short_table =
      GenerateTable(UniformSpec(100, 20, 0.2, 4, 303)).value();
  EXPECT_FALSE(VaFile::Load(path, short_table).ok());
}

TEST_F(VaPersistenceTest, LoadRejectsGarbage) {
  const Table table = GenerateTable(UniformSpec(10, 5, 0.0, 1, 305)).value();
  const std::string path = TempPath("va_garbage.idx");
  std::ofstream(path, std::ios::binary) << "nonsense";
  EXPECT_FALSE(VaFile::Load(path, table).ok());
}

TEST(VaAppendTest, IncrementalEqualsBatchForUniformBins) {
  const Table table = GenerateTable(UniformSpec(600, 15, 0.3, 3, 307)).value();
  auto half = Table::Create(table.schema()).value();
  std::vector<Value> row(3);
  for (uint64_t r = 0; r < 300; ++r) {
    for (size_t a = 0; a < 3; ++a) row[a] = table.Get(r, a);
    ASSERT_TRUE(half.AppendRow(row).ok());
  }
  // Note: the incremental VA-file refines against `table` (which already
  // holds all rows), so building over `half`'s prefix then appending must
  // match the batch build bit for bit.
  VaFile incremental = VaFile::Build(table, {}).value();  // bins from full
  VaFile batch = VaFile::Build(table, {}).value();
  // Rebuild incremental's payload from scratch via appends.
  VaFile empty_built = VaFile::Build(half, {}).value();
  for (uint64_t r = 300; r < table.num_rows(); ++r) {
    for (size_t a = 0; a < 3; ++a) row[a] = table.Get(r, a);
    ASSERT_TRUE(empty_built.AppendRow(row).ok());
  }
  ASSERT_EQ(empty_built.num_rows(), table.num_rows());
  for (uint64_t r = 0; r < table.num_rows(); ++r) {
    for (size_t a = 0; a < 3; ++a) {
      EXPECT_EQ(empty_built.StoredCode(r, a), batch.StoredCode(r, a))
          << "row " << r << " attr " << a;
    }
  }
}

TEST(VaAppendTest, RejectsBadRows) {
  const Table table = GenerateTable(UniformSpec(100, 5, 0.1, 2, 309)).value();
  VaFile va = VaFile::Build(table).value();
  EXPECT_FALSE(va.AppendRow({1}).ok());
  EXPECT_FALSE(va.AppendRow({1, 9}).ok());
  EXPECT_EQ(va.num_rows(), 100u);
}

TEST(VaAppendTest, ExecuteRequiresTableToKeepUp) {
  // Appending to the index beyond the table must be caught at query time
  // (refinement would read rows the table does not have).
  const Table table = GenerateTable(UniformSpec(50, 5, 0.1, 2, 311)).value();
  VaFile va = VaFile::Build(table).value();
  ASSERT_TRUE(va.AppendRow({2, 3}).ok());
  RangeQuery q;
  q.terms = {{0, {1, 5}}};
  EXPECT_EQ(va.Execute(q).status().code(), StatusCode::kInternal);
}

TEST(VaAppendTest, AppendedRowsAreQueryable) {
  auto table = Table::Create(Schema({{"x", 8}})).value();
  for (Value v : {1, 5, kMissingValue}) {
    ASSERT_TRUE(table.AppendRow({v}).ok());
  }
  VaFile va = VaFile::Build(table).value();
  ASSERT_TRUE(table.AppendRow({7}).ok());
  ASSERT_TRUE(va.AppendRow({7}).ok());
  RangeQuery q;
  q.terms = {{0, {6, 8}}};
  q.semantics = MissingSemantics::kNoMatch;
  EXPECT_EQ(va.Execute(q).value().ToIndices(), (std::vector<uint32_t>{3}));
}

}  // namespace
}  // namespace incdb
