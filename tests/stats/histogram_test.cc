#include "stats/histogram.h"

#include <gtest/gtest.h>

#include "query/seq_scan.h"
#include "table/generator.h"

namespace incdb {
namespace {

Column MakeColumn(const std::vector<Value>& values, uint32_t cardinality) {
  Column col(cardinality);
  for (Value v : values) EXPECT_TRUE(col.Append(v).ok());
  return col;
}

TEST(AttributeHistogramTest, CountsAndMissing) {
  const Column col = MakeColumn({1, 1, 3, kMissingValue, 3, 3}, 4);
  const AttributeHistogram hist = AttributeHistogram::FromColumn(col);
  EXPECT_EQ(hist.total_rows(), 6u);
  EXPECT_EQ(hist.missing_count(), 1u);
  EXPECT_EQ(hist.count(1), 2u);
  EXPECT_EQ(hist.count(2), 0u);
  EXPECT_EQ(hist.count(3), 3u);
  EXPECT_NEAR(hist.MissingRate(), 1.0 / 6.0, 1e-12);
}

TEST(AttributeHistogramTest, TermSelectivityIsExact) {
  const Table table = GenerateTable(UniformSpec(5000, 10, 0.25, 1, 911)).value();
  const AttributeHistogram hist =
      AttributeHistogram::FromColumn(table.column(0));
  SequentialScan scan(table);
  for (Value lo : {1, 3, 7}) {
    for (Value hi : {lo, std::min(lo + 4, 10)}) {
      for (MissingSemantics semantics :
           {MissingSemantics::kMatch, MissingSemantics::kNoMatch}) {
        RangeQuery q;
        q.terms = {{0, {lo, hi}}};
        q.semantics = semantics;
        const double actual =
            static_cast<double>(scan.Execute(q).value().size()) / 5000.0;
        EXPECT_NEAR(hist.EstimateTermSelectivity({lo, hi}, semantics), actual,
                    1e-12);
      }
    }
  }
}

TEST(AttributeHistogramTest, SkewOfUniformIsNearOne) {
  const Table table = GenerateTable(UniformSpec(20000, 10, 0.1, 1, 913)).value();
  const AttributeHistogram hist =
      AttributeHistogram::FromColumn(table.column(0));
  EXPECT_LT(hist.Skew(), 1.2);
}

TEST(AttributeHistogramTest, SkewOfZipfIsLarge) {
  DatasetSpec spec = UniformSpec(20000, 50, 0.1, 1, 915);
  spec.attributes[0].zipf_theta = 1.3;
  const Table table = GenerateTable(spec).value();
  const AttributeHistogram hist =
      AttributeHistogram::FromColumn(table.column(0));
  EXPECT_GT(hist.Skew(), 5.0);
}

TEST(AttributeHistogramTest, BitDensity) {
  const Column col = MakeColumn({2, 2, 2, 1, kMissingValue}, 3);
  const AttributeHistogram hist = AttributeHistogram::FromColumn(col);
  EXPECT_DOUBLE_EQ(hist.BitDensity(2), 0.6);
  EXPECT_DOUBLE_EQ(hist.BitDensity(3), 0.0);
}

TEST(AttributeHistogramTest, EmptyColumn) {
  const Column col = MakeColumn({}, 5);
  const AttributeHistogram hist = AttributeHistogram::FromColumn(col);
  EXPECT_DOUBLE_EQ(hist.MissingRate(), 0.0);
  EXPECT_DOUBLE_EQ(
      hist.EstimateTermSelectivity({1, 5}, MissingSemantics::kMatch), 0.0);
  EXPECT_DOUBLE_EQ(hist.Skew(), 1.0);
}

}  // namespace
}  // namespace incdb
