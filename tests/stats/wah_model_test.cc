#include "stats/wah_model.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "compression/wah_bitvector.h"

namespace incdb {
namespace {

TEST(WahModelTest, ZeroBits) {
  EXPECT_DOUBLE_EQ(ExpectedWahWords(0, 0.5), 0.0);
  EXPECT_DOUBLE_EQ(ExpectedWahBytes(0, 0.5), 0.0);
}

TEST(WahModelTest, ExtremeDensitiesCompressToAlmostNothing) {
  EXPECT_LT(ExpectedWahBytes(1000000, 0.0), 8.0);
  EXPECT_LT(ExpectedWahBytes(1000000, 1.0), 8.0);
}

TEST(WahModelTest, HalfDensityIsIncompressible) {
  const double words = ExpectedWahWords(31000, 0.5);
  EXPECT_NEAR(words, 1000.0, 10.0);  // every group a literal
}

TEST(WahModelTest, MonotoneInDensityBelowHalf) {
  double prev = 0.0;
  for (double d : {0.0001, 0.001, 0.01, 0.1, 0.5}) {
    const double words = ExpectedWahWords(1000000, d);
    EXPECT_GE(words, prev);
    prev = words;
  }
}

// The model must track measured WAH sizes for independent bits.
TEST(WahModelTest, MatchesMeasuredSizesWithin25Percent) {
  Rng rng(917);
  const uint64_t n = 500000;
  for (double density : {0.001, 0.005, 0.02, 0.1, 0.3, 0.5}) {
    BitVector bits(n);
    for (uint64_t i = 0; i < n; ++i) {
      if (rng.Bernoulli(density)) bits.Set(i);
    }
    const double measured =
        static_cast<double>(WahBitVector::Compress(bits).SizeInBytes());
    const double predicted = ExpectedWahBytes(n, density);
    EXPECT_NEAR(predicted / measured, 1.0, 0.25)
        << "density " << density << ": predicted " << predicted
        << " measured " << measured;
  }
}

}  // namespace
}  // namespace incdb
