#include "compression/bbc_bitvector.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "compression/wah_bitvector.h"

namespace incdb {
namespace {

BitVector RandomRuns(Rng& rng, uint64_t n, double density) {
  BitVector bits(n);
  uint64_t i = 0;
  while (i < n) {
    const bool bit = rng.Bernoulli(density);
    const uint64_t run = 1 + static_cast<uint64_t>(rng.UniformInt(0, 120));
    for (uint64_t j = 0; j < run && i < n; ++j, ++i) {
      if (bit) bits.Set(i);
    }
  }
  return bits;
}

TEST(BbcBitVectorTest, EmptyRoundTrip) {
  const BbcBitVector bbc = BbcBitVector::Compress(BitVector());
  EXPECT_EQ(bbc.size(), 0u);
  EXPECT_TRUE(bbc.Decompress() == BitVector());
}

TEST(BbcBitVectorTest, SmallRoundTrip) {
  const BitVector dense = BitVector::FromString("0001000010").value();
  const BbcBitVector bbc = BbcBitVector::Compress(dense);
  EXPECT_TRUE(bbc.Decompress() == dense);
}

TEST(BbcBitVectorTest, AllZerosCompressesToAlmostNothing) {
  BitVector dense(1000000);
  const BbcBitVector bbc = BbcBitVector::Compress(dense);
  EXPECT_TRUE(bbc.Decompress() == dense);
  EXPECT_LT(bbc.SizeInBytes(), 16u);
}

TEST(BbcBitVectorTest, AllOnesCompressesToAlmostNothing) {
  BitVector dense(1000000, true);
  const BbcBitVector bbc = BbcBitVector::Compress(dense);
  EXPECT_TRUE(bbc.Decompress() == dense);
  EXPECT_LT(bbc.SizeInBytes(), 16u);
}

TEST(BbcBitVectorTest, RoundTripRandomSizes) {
  Rng rng(5);
  for (uint64_t n : {1u, 7u, 8u, 9u, 63u, 64u, 65u, 1000u, 10001u}) {
    for (double density : {0.01, 0.5, 0.99}) {
      BitVector dense(n);
      for (uint64_t i = 0; i < n; ++i) {
        if (rng.Bernoulli(density)) dense.Set(i);
      }
      const BbcBitVector bbc = BbcBitVector::Compress(dense);
      EXPECT_TRUE(bbc.Decompress() == dense) << "n=" << n << " d=" << density;
      EXPECT_EQ(bbc.size(), n);
    }
  }
}

TEST(BbcBitVectorTest, LogicalOpsMatchVerbatim) {
  Rng rng(17);
  for (uint64_t n : {1u, 7u, 8u, 9u, 100u, 5000u}) {
    for (auto [da, db] : {std::pair{0.2, 0.8}, std::pair{0.01, 0.99},
                          std::pair{0.5, 0.5}}) {
      const BitVector a = RandomRuns(rng, n, da);
      const BitVector b = RandomRuns(rng, n, db);
      const BbcBitVector ba = BbcBitVector::Compress(a);
      const BbcBitVector bb = BbcBitVector::Compress(b);
      EXPECT_TRUE(ba.And(bb).Decompress() == And(a, b)) << n;
      EXPECT_TRUE(ba.Or(bb).Decompress() == Or(a, b)) << n;
      EXPECT_TRUE(ba.Xor(bb).Decompress() == Xor(a, b)) << n;
    }
  }
}

TEST(BbcBitVectorTest, OpResultsAreCanonicallyCompressed) {
  // The run-merging ops must produce output no larger than re-compressing
  // their decompressed result from scratch.
  Rng rng(19);
  const uint64_t n = 20000;
  const BitVector a = RandomRuns(rng, n, 0.1);
  const BitVector b = RandomRuns(rng, n, 0.9);
  const BbcBitVector result =
      BbcBitVector::Compress(a).Or(BbcBitVector::Compress(b));
  const BbcBitVector recompressed = BbcBitVector::Compress(result.Decompress());
  EXPECT_LE(result.SizeInBytes(), recompressed.SizeInBytes() + 8);
}

TEST(BbcBitVectorTest, CompressesSparseRunsBetterThanWah) {
  // The paper picked WAH over BBC *despite* BBC's better compression; byte
  // granularity beats 31-bit granularity on short scattered runs.
  Rng rng(23);
  BitVector dense(31 * 10000);
  for (uint64_t i = 0; i < dense.size(); i += 97) dense.Set(i);
  const BbcBitVector bbc = BbcBitVector::Compress(dense);
  const WahBitVector wah = WahBitVector::Compress(dense);
  EXPECT_LT(bbc.SizeInBytes(), wah.SizeInBytes());
}

TEST(BbcBitVectorTest, LongLiteralStretchSplitsBlocks) {
  // More than 7 consecutive literal bytes forces multiple blocks.
  BitVector dense(8 * 20);
  for (uint64_t i = 0; i < dense.size(); i += 2) dense.Set(i);
  const BbcBitVector bbc = BbcBitVector::Compress(dense);
  EXPECT_TRUE(bbc.Decompress() == dense);
}

TEST(BbcBitVectorTest, ExtendedFillLength) {
  // A fill longer than 14 bytes uses the varint extension path.
  BitVector dense(8 * 1000);
  dense.Set(dense.size() - 1);
  const BbcBitVector bbc = BbcBitVector::Compress(dense);
  EXPECT_TRUE(bbc.Decompress() == dense);
}

}  // namespace
}  // namespace incdb
