// Property tests for the fused multi-operand WAH kernels: OrMany / AndMany
// and the count-only variants must be bit-identical to the pairwise fold
// they replace and to the verbatim BitVector oracle, for every operand
// count, density mix and code-word width (DESIGN.md invariant 2 extended
// to the k-way kernels).

#include <gtest/gtest.h>

#include <vector>

#include "bitvector/bitvector.h"
#include "common/rng.h"
#include "compression/wah_bitvector.h"

namespace incdb {
namespace {

template <typename WordT>
class WahMultiwayTest : public ::testing::Test {};

using WordTypes = ::testing::Types<uint32_t, uint64_t>;
TYPED_TEST_SUITE(WahMultiwayTest, WordTypes);

BitVector RandomBits(Rng& rng, uint64_t n, double density) {
  BitVector bits(n);
  for (uint64_t i = 0; i < n; ++i) {
    if (rng.Bernoulli(density)) bits.Set(i);
  }
  return bits;
}

// Clustered bitmaps exercise the fill fast paths.
BitVector RandomRuns(Rng& rng, uint64_t n, double density) {
  BitVector bits(n);
  uint64_t i = 0;
  bool bit = rng.Bernoulli(density);
  while (i < n) {
    const uint64_t run = 1 + static_cast<uint64_t>(rng.UniformInt(0, 80));
    for (uint64_t j = 0; j < run && i < n; ++j, ++i) {
      if (bit) bits.Set(i);
    }
    bit = rng.Bernoulli(density);
  }
  return bits;
}

// One mixed-density operand set: alternating uniform/clustered, with a few
// extreme densities thrown in so some operands are pure fills.
std::vector<BitVector> MakeOperands(Rng& rng, size_t k, uint64_t n) {
  const double densities[] = {0.001, 0.5, 0.02, 0.999, 0.1, 0.0, 1.0, 0.25};
  std::vector<BitVector> plain;
  plain.reserve(k);
  for (size_t i = 0; i < k; ++i) {
    const double d = densities[i % (sizeof(densities) / sizeof(double))];
    plain.push_back(i % 2 == 0 ? RandomRuns(rng, n, d)
                               : RandomBits(rng, n, d));
  }
  return plain;
}

TYPED_TEST(WahMultiwayTest, MatchesPairwiseFoldAndOracle) {
  using Vec = BasicWahBitVector<TypeParam>;
  for (uint64_t n : {1u, 31u, 63u, 64u, 100u, 977u, 10000u}) {
    for (size_t k : {1u, 2u, 3u, 5u, 8u, 16u}) {
      Rng rng(n * 131 + k);
      const std::vector<BitVector> plain = MakeOperands(rng, k, n);
      std::vector<Vec> compressed;
      std::vector<const Vec*> ptrs;
      for (const BitVector& b : plain) compressed.push_back(Vec::Compress(b));
      for (const Vec& v : compressed) ptrs.push_back(&v);
      const std::span<const Vec* const> ops(ptrs.data(), ptrs.size());

      BitVector or_oracle = plain[0];
      BitVector and_oracle = plain[0];
      Vec or_fold = compressed[0];
      Vec and_fold = compressed[0];
      for (size_t i = 1; i < k; ++i) {
        or_oracle.OrWith(plain[i]);
        and_oracle.AndWith(plain[i]);
        or_fold = or_fold.Or(compressed[i]);
        and_fold = and_fold.And(compressed[i]);
      }

      const Vec or_many = Vec::OrMany(ops);
      const Vec and_many = Vec::AndMany(ops);
      EXPECT_TRUE(or_many.Decompress() == or_oracle) << "n=" << n << " k=" << k;
      EXPECT_TRUE(and_many.Decompress() == and_oracle)
          << "n=" << n << " k=" << k;
      // Identical canonical compressed form, not just identical bits.
      EXPECT_EQ(or_many.SizeInBytes(), or_fold.SizeInBytes());
      EXPECT_EQ(and_many.SizeInBytes(), and_fold.SizeInBytes());

      EXPECT_EQ(Vec::OrManyCount(ops), or_oracle.Count());
      EXPECT_EQ(Vec::AndManyCount(ops), and_oracle.Count());
      EXPECT_EQ(Vec::AndCount(compressed[0], compressed[k - 1]),
                And(plain[0], plain[k - 1]).Count());
    }
  }
}

TYPED_TEST(WahMultiwayTest, NegatedOperandsMatchExplicitNot) {
  using Vec = BasicWahBitVector<TypeParam>;
  for (uint64_t n : {31u, 100u, 4096u}) {
    Rng rng(n + 7);
    const std::vector<BitVector> plain = MakeOperands(rng, 5, n);
    std::vector<Vec> compressed;
    for (const BitVector& b : plain) compressed.push_back(Vec::Compress(b));

    std::vector<typename Vec::Operand> ops;
    BitVector oracle(n, true);
    for (size_t i = 0; i < plain.size(); ++i) {
      const bool negate = i % 2 == 1;
      ops.push_back({&compressed[i], negate});
      oracle.AndWith(negate ? Not(plain[i]) : plain[i]);
    }
    const std::span<const typename Vec::Operand> span(ops.data(), ops.size());
    EXPECT_TRUE(Vec::AndMany(span).Decompress() == oracle) << "n=" << n;
    EXPECT_EQ(Vec::AndManyCount(span), oracle.Count());
  }
}

TYPED_TEST(WahMultiwayTest, PureFillOperands) {
  using Vec = BasicWahBitVector<TypeParam>;
  const uint64_t n = 1000;
  const Vec zeros = Vec::Fill(n, false);
  const Vec ones = Vec::Fill(n, true);
  const std::vector<const Vec*> mixed = {&zeros, &ones, &zeros};
  const std::span<const Vec* const> ops(mixed.data(), mixed.size());
  EXPECT_EQ(Vec::OrMany(ops).Count(), n);
  EXPECT_EQ(Vec::AndMany(ops).Count(), 0u);
  EXPECT_EQ(Vec::OrManyCount(ops), n);
  EXPECT_EQ(Vec::AndManyCount(ops), 0u);

  const std::vector<const Vec*> all_zero = {&zeros, &zeros};
  EXPECT_EQ(Vec::OrMany(std::span<const Vec* const>(all_zero.data(),
                                                    all_zero.size()))
                .Count(),
            0u);
}

TYPED_TEST(WahMultiwayTest, SingleOperandIsACopy) {
  using Vec = BasicWahBitVector<TypeParam>;
  Rng rng(99);
  const BitVector bits = RandomRuns(rng, 500, 0.1);
  const Vec v = Vec::Compress(bits);
  const std::vector<const Vec*> one = {&v};
  const std::span<const Vec* const> ops(one.data(), one.size());
  EXPECT_TRUE(Vec::OrMany(ops).Decompress() == bits);
  EXPECT_TRUE(Vec::AndMany(ops).Decompress() == bits);
  EXPECT_EQ(Vec::OrManyCount(ops), bits.Count());
}

using WahMultiwayDeathTest = ::testing::Test;

TEST(WahMultiwayDeathTest, EmptyOperandListAborts) {
  const std::vector<const WahBitVector*> none;
  const std::span<const WahBitVector* const> ops(none.data(), none.size());
  EXPECT_DEATH(WahBitVector::OrMany(ops), "INCDB_CHECK failed");
  EXPECT_DEATH(WahBitVector::AndManyCount(ops), "INCDB_CHECK failed");
}

TEST(WahMultiwayDeathTest, SizeMismatchAborts) {
  const WahBitVector a = WahBitVector::Fill(100, false);
  const WahBitVector b = WahBitVector::Fill(101, false);
  const std::vector<const WahBitVector*> mismatched = {&a, &b, &a};
  const std::span<const WahBitVector* const> ops(mismatched.data(),
                                                 mismatched.size());
  EXPECT_DEATH(WahBitVector::OrMany(ops), "INCDB_CHECK failed");
  EXPECT_DEATH(WahBitVector::AndMany(ops), "INCDB_CHECK failed");
  EXPECT_DEATH(WahBitVector::OrManyCount(ops), "INCDB_CHECK failed");
  EXPECT_DEATH(WahBitVector::AndCount(a, b), "INCDB_CHECK failed");
}

TYPED_TEST(WahMultiwayTest, ForEachSetBitVisitsEverySetBitInOrder) {
  using Vec = BasicWahBitVector<TypeParam>;
  for (uint64_t n : {0u, 1u, 63u, 977u, 20000u}) {
    Rng rng(n + 3);
    const BitVector bits = RandomRuns(rng, n, 0.05);
    const Vec v = Vec::Compress(bits);
    std::vector<uint32_t> visited;
    v.ForEachSetBit(
        [&](uint64_t i) { visited.push_back(static_cast<uint32_t>(i)); });
    EXPECT_EQ(visited, bits.ToIndices()) << "n=" << n;
  }
}

}  // namespace
}  // namespace incdb
