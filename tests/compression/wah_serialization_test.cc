#include <gtest/gtest.h>

#include <sstream>

#include "common/rng.h"
#include "compression/wah_bitvector.h"

namespace incdb {
namespace {

WahBitVector RandomWah(Rng& rng, uint64_t n, double density) {
  WahBitVector wah;
  uint64_t i = 0;
  while (i < n) {
    const bool bit = rng.Bernoulli(density);
    const uint64_t run =
        std::min<uint64_t>(n - i, 1 + rng.UniformInt(0, 100));
    wah.AppendRun(bit, run);
    i += run;
  }
  return wah;
}

TEST(WahSerializationTest, RoundTripVariousShapes) {
  Rng rng(3);
  for (uint64_t n : {0u, 1u, 31u, 62u, 100u, 10000u}) {
    for (double density : {0.0, 0.01, 0.5, 1.0}) {
      const WahBitVector original = RandomWah(rng, n, density);
      std::stringstream stream;
      BinaryWriter writer(stream);
      original.SaveTo(writer);
      ASSERT_TRUE(writer.status().ok());
      BinaryReader reader(stream);
      const auto loaded = WahBitVector::LoadFrom(reader);
      ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
      EXPECT_TRUE(loaded.value() == original) << "n=" << n << " d=" << density;
    }
  }
}

TEST(WahSerializationTest, RejectsBadActiveBits) {
  std::stringstream stream;
  BinaryWriter writer(stream);
  writer.WriteU64(10);   // size
  writer.WriteU32(31);   // active_bits out of range
  writer.WriteU32(0);
  writer.WriteU32Vector({});
  BinaryReader reader(stream);
  EXPECT_EQ(WahBitVector::LoadFrom(reader).status().code(),
            StatusCode::kIOError);
}

TEST(WahSerializationTest, RejectsStrayActiveWordBits) {
  std::stringstream stream;
  BinaryWriter writer(stream);
  writer.WriteU64(2);      // size: 2 bits
  writer.WriteU32(2);      // active_bits = 2
  writer.WriteU32(0xF);    // bits beyond the low 2 set
  writer.WriteU32Vector({});
  BinaryReader reader(stream);
  EXPECT_EQ(WahBitVector::LoadFrom(reader).status().code(),
            StatusCode::kIOError);
}

TEST(WahSerializationTest, RejectsSizeMismatch) {
  WahBitVector wah;
  wah.AppendRun(true, 62);
  std::stringstream stream;
  BinaryWriter writer(stream);
  writer.WriteU64(93);  // wrong size for the payload below
  writer.WriteU32(0);
  writer.WriteU32(0);
  writer.WriteU32Vector({0xC0000002u});  // 1-fill of 2 groups = 62 bits
  BinaryReader reader(stream);
  EXPECT_EQ(WahBitVector::LoadFrom(reader).status().code(),
            StatusCode::kIOError);
}

TEST(WahSerializationTest, ValidateStructureRejectsOverflowingFillCounts) {
  // Adversarial borrowed payload: five fill words whose group counts sum
  // to 2^64 + 1, so an unguarded uint64 accumulator wraps to 1 group —
  // exactly matching the declared size of 63 bits — while the vector
  // would actually decode ~2^64 groups past it. ValidateStructure must
  // bound the running total against the declared size instead of trusting
  // the wrapped sum.
  using Traits = wah_internal::WahTraits<uint64_t>;
  const uint64_t kMax = Traits::kMaxFillGroups;  // 2^62 - 1
  const uint64_t words[] = {
      Traits::MakeFill(false, kMax), Traits::MakeFill(false, kMax),
      Traits::MakeFill(false, kMax), Traits::MakeFill(false, kMax),
      Traits::MakeFill(false, 5),  // 4 * (2^62 - 1) + 5 == 2^64 + 1
  };
  auto vec = Wah64BitVector::FromBorrowed(
      std::span<const uint64_t>(words), /*active_word=*/0, /*active_bits=*/0,
      /*size=*/63);
  ASSERT_TRUE(vec.ok()) << vec.status().ToString();
  EXPECT_EQ(vec->ValidateStructure().code(), StatusCode::kIOError);
}

TEST(WahSerializationTest, TruncatedPayloadFails) {
  WahBitVector wah;
  wah.AppendRun(true, 1000);
  std::stringstream stream;
  BinaryWriter writer(stream);
  wah.SaveTo(writer);
  std::string bytes = stream.str();
  bytes.resize(bytes.size() / 2);
  std::stringstream truncated(bytes);
  BinaryReader reader(truncated);
  EXPECT_FALSE(WahBitVector::LoadFrom(reader).ok());
}

}  // namespace
}  // namespace incdb
