// SIMD-vs-scalar bit-identity for the windowed hybrid fusion engine: the
// fused WAH kernels must produce identical bits AND the identical canonical
// compressed form under every dispatch level the CPU supports and every
// dense-block threshold — always-dense (0.0), the production default, and
// never-dense (>1, the pure compressed-form engine) — across word widths,
// negated operands and density mixes. Also pins down WahOpStats accounting.

#include <gtest/gtest.h>

#include <vector>

#include "bitvector/bitvector.h"
#include "common/rng.h"
#include "compression/wah_bitvector.h"
#include "simd/simd.h"

namespace incdb {
namespace {

template <typename WordT>
class WahSimdTest : public ::testing::Test {};

using WordTypes = ::testing::Types<uint32_t, uint64_t>;
TYPED_TEST_SUITE(WahSimdTest, WordTypes);

// Restores dispatch level and dense threshold on scope exit so test order
// cannot leak configuration.
class ConfigGuard {
 public:
  ConfigGuard()
      : level_(simd::ActiveLevel()),
        threshold_(wah_internal::DenseBlockThreshold()) {}
  ~ConfigGuard() {
    simd::ForceLevelForTesting(level_);
    wah_internal::SetDenseBlockThresholdForTesting(threshold_);
  }

 private:
  simd::Level level_;
  double threshold_;
};

std::vector<simd::Level> AvailableLevels() {
  std::vector<simd::Level> levels = {simd::Level::kScalar};
  if (simd::DetectedLevel() >= simd::Level::kSse2) {
    levels.push_back(simd::Level::kSse2);
  }
  if (simd::DetectedLevel() >= simd::Level::kAvx2) {
    levels.push_back(simd::Level::kAvx2);
  }
  return levels;
}

BitVector RandomBits(Rng& rng, uint64_t n, double density) {
  BitVector bits(n);
  for (uint64_t i = 0; i < n; ++i) {
    if (rng.Bernoulli(density)) bits.Set(i);
  }
  return bits;
}

BitVector RandomRuns(Rng& rng, uint64_t n, double density) {
  BitVector bits(n);
  uint64_t i = 0;
  bool bit = rng.Bernoulli(density);
  while (i < n) {
    const uint64_t run = 1 + static_cast<uint64_t>(rng.UniformInt(0, 300));
    for (uint64_t j = 0; j < run && i < n; ++j, ++i) {
      if (bit) bits.Set(i);
    }
    bit = rng.Bernoulli(density);
  }
  return bits;
}

// Mixed operand set: dense uniform words (literal-heavy), clustered runs
// (fill-heavy) and extremes, so a single fusion crosses dense and sparse
// windows in one walk.
std::vector<BitVector> MakeOperands(Rng& rng, size_t k, uint64_t n) {
  const double densities[] = {0.5, 0.001, 0.35, 0.999, 0.02, 0.0, 1.0, 0.6};
  std::vector<BitVector> plain;
  plain.reserve(k);
  for (size_t i = 0; i < k; ++i) {
    const double d = densities[i % (sizeof(densities) / sizeof(double))];
    plain.push_back(i % 2 == 0 ? RandomBits(rng, n, d)
                               : RandomRuns(rng, n, d));
  }
  return plain;
}

// The engine configurations under test: never-dense is the pure
// compressed-form engine, always-dense pushes every window through the
// SIMD decode path, and the default exercises the mixed regime.
const double kThresholds[] = {2.0, 0.0, -1.0};  // -1 sentinel: default

TYPED_TEST(WahSimdTest, HybridEngineIsBitIdenticalAcrossLevelsAndThresholds) {
  using Vec = BasicWahBitVector<TypeParam>;
  ConfigGuard guard;
  const double default_threshold = wah_internal::DenseBlockThreshold();
  for (uint64_t n : {63u, 977u, 70000u, 200001u}) {
    for (size_t k : {3u, 5u, 9u}) {
      Rng rng(n * 17 + k);
      const std::vector<BitVector> plain = MakeOperands(rng, k, n);
      std::vector<Vec> compressed;
      std::vector<const Vec*> ptrs;
      for (const BitVector& b : plain) compressed.push_back(Vec::Compress(b));
      for (const Vec& v : compressed) ptrs.push_back(&v);
      const std::span<const Vec* const> ops(ptrs.data(), ptrs.size());

      BitVector or_oracle = plain[0];
      BitVector and_oracle = plain[0];
      for (size_t i = 1; i < k; ++i) {
        or_oracle.OrWith(plain[i]);
        and_oracle.AndWith(plain[i]);
      }

      // Reference run: pure compressed-form engine, scalar kernels.
      simd::ForceLevelForTesting(simd::Level::kScalar);
      wah_internal::SetDenseBlockThresholdForTesting(2.0);
      const Vec or_ref = Vec::OrMany(ops);
      const Vec and_ref = Vec::AndMany(ops);
      ASSERT_TRUE(or_ref.Decompress() == or_oracle) << "n=" << n << " k=" << k;
      ASSERT_TRUE(and_ref.Decompress() == and_oracle)
          << "n=" << n << " k=" << k;

      for (simd::Level level : AvailableLevels()) {
        for (double threshold : kThresholds) {
          simd::ForceLevelForTesting(level);
          wah_internal::SetDenseBlockThresholdForTesting(
              threshold < 0 ? default_threshold : threshold);
          const Vec or_many = Vec::OrMany(ops);
          const Vec and_many = Vec::AndMany(ops);
          // Identical bits AND identical canonical compressed form.
          EXPECT_TRUE(or_many.Decompress() == or_oracle)
              << "n=" << n << " k=" << k << " t=" << threshold
              << " level=" << simd::LevelToString(level);
          EXPECT_TRUE(and_many.Decompress() == and_oracle)
              << "n=" << n << " k=" << k << " t=" << threshold
              << " level=" << simd::LevelToString(level);
          EXPECT_EQ(or_many.SizeInBytes(), or_ref.SizeInBytes());
          EXPECT_EQ(and_many.SizeInBytes(), and_ref.SizeInBytes());
          EXPECT_EQ(Vec::OrManyCount(ops), or_oracle.Count());
          EXPECT_EQ(Vec::AndManyCount(ops), and_oracle.Count());
        }
      }
    }
  }
}

TYPED_TEST(WahSimdTest, NegatedOperandsAcrossLevelsAndThresholds) {
  using Vec = BasicWahBitVector<TypeParam>;
  ConfigGuard guard;
  for (uint64_t n : {977u, 70000u}) {
    Rng rng(n + 3);
    const std::vector<BitVector> plain = MakeOperands(rng, 6, n);
    std::vector<Vec> compressed;
    for (const BitVector& b : plain) compressed.push_back(Vec::Compress(b));

    std::vector<typename Vec::Operand> ops;
    BitVector and_oracle(n, true);
    for (size_t i = 0; i < plain.size(); ++i) {
      const bool negate = i % 2 == 1;
      ops.push_back({&compressed[i], negate});
      and_oracle.AndWith(negate ? Not(plain[i]) : plain[i]);
    }
    const std::span<const typename Vec::Operand> span(ops.data(), ops.size());

    for (simd::Level level : AvailableLevels()) {
      for (double threshold : {2.0, 0.0}) {
        simd::ForceLevelForTesting(level);
        wah_internal::SetDenseBlockThresholdForTesting(threshold);
        EXPECT_TRUE(Vec::AndMany(span).Decompress() == and_oracle)
            << "n=" << n << " t=" << threshold
            << " level=" << simd::LevelToString(level);
        EXPECT_EQ(Vec::AndManyCount(span), and_oracle.Count());
      }
    }
  }
}

TYPED_TEST(WahSimdTest, AllNegatedOperands) {
  // No non-negated lead operand: the dense path must seed the accumulator
  // with the op identity and fold every operand through the NOT kernels.
  using Vec = BasicWahBitVector<TypeParam>;
  ConfigGuard guard;
  const uint64_t n = 70000;
  Rng rng(11);
  const std::vector<BitVector> plain = MakeOperands(rng, 4, n);
  std::vector<Vec> compressed;
  for (const BitVector& b : plain) compressed.push_back(Vec::Compress(b));
  std::vector<typename Vec::Operand> ops;
  BitVector oracle(n, true);
  for (size_t i = 0; i < plain.size(); ++i) {
    ops.push_back({&compressed[i], true});
    oracle.AndWith(Not(plain[i]));
  }
  const std::span<const typename Vec::Operand> span(ops.data(), ops.size());
  for (double threshold : {2.0, 0.0}) {
    wah_internal::SetDenseBlockThresholdForTesting(threshold);
    EXPECT_TRUE(Vec::AndMany(span).Decompress() == oracle) << threshold;
    EXPECT_EQ(Vec::AndManyCount(span), oracle.Count()) << threshold;
  }
}

TYPED_TEST(WahSimdTest, OpStatsCountDenseWindows) {
  using Vec = BasicWahBitVector<TypeParam>;
  ConfigGuard guard;
  const double default_threshold = wah_internal::DenseBlockThreshold();
  const uint64_t n = 200000;
  const size_t k = 4;
  Rng rng(5);
  std::vector<Vec> compressed;
  std::vector<const Vec*> ptrs;
  for (size_t i = 0; i < k; ++i) {
    compressed.push_back(Vec::Compress(RandomBits(rng, n, 0.5)));
  }
  for (const Vec& v : compressed) ptrs.push_back(&v);
  const std::span<const Vec* const> ops(ptrs.data(), ptrs.size());

  // Never-dense: zero dense windows, nothing decoded.
  wah_internal::SetDenseBlockThresholdForTesting(2.0);
  WahOpStats sparse_stats;
  Vec::OrManyCount(ops, &sparse_stats);
  EXPECT_EQ(sparse_stats.dense_windows, 0u);
  EXPECT_EQ(sparse_stats.words_decoded, 0u);

  // 50%-density uniform operands are literal-saturated: under the default
  // threshold every window of every fused kernel goes dense, and decode
  // traffic is exactly k words per group.
  ASSERT_GT(default_threshold, 0.0);
  ASSERT_LT(default_threshold, 1.0);  // the production default enables it
  wah_internal::SetDenseBlockThresholdForTesting(default_threshold);
  WahOpStats dense_stats;
  const uint64_t count = Vec::OrManyCount(ops, &dense_stats);
  EXPECT_GT(dense_stats.dense_windows, 0u);
  const uint64_t group_bits = Vec::kGroupBits;
  EXPECT_EQ(dense_stats.words_decoded, (n / group_bits) * k);

  // Stats merge and aggregate across kernels.
  WahOpStats merged = sparse_stats;
  merged.MergeFrom(dense_stats);
  EXPECT_EQ(merged.dense_windows, dense_stats.dense_windows);
  Vec::AndMany(ops, &merged);
  EXPECT_GT(merged.dense_windows, dense_stats.dense_windows);

  // And the counters never change results.
  EXPECT_EQ(count, Vec::OrManyCount(ops));
}

}  // namespace
}  // namespace incdb
