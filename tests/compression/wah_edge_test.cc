// Adversarial WAH structures: fill-count saturation, pathological
// alternation, run boundaries straddling the active word, and ops between
// maximally different layouts.

#include <gtest/gtest.h>

#include "compression/wah_bitvector.h"

namespace incdb {
namespace {

TEST(WahEdgeTest, AlternatingGroupsNeverCompress) {
  // 31 ones, 31 zeros, repeated: every group is a one-fill or zero-fill of
  // length exactly 1 — adjacent fills of different bits must NOT merge.
  WahBitVector wah;
  for (int i = 0; i < 100; ++i) {
    wah.AppendRun(i % 2 == 0, 31);
  }
  EXPECT_EQ(wah.size(), 3100u);
  EXPECT_EQ(wah.NumWords(), 100u);
  EXPECT_EQ(wah.Count(), 50u * 31u);
  // Round trip to be sure the structure decodes.
  EXPECT_EQ(WahBitVector::Compress(wah.Decompress()).NumWords(), 100u);
}

TEST(WahEdgeTest, AlternatingBitsWithinGroups) {
  // 0101... within each group: all literals.
  WahBitVector wah;
  for (int i = 0; i < 31 * 10; ++i) wah.AppendBit(i % 2 == 1);
  EXPECT_EQ(wah.NumWords(), 10u);
  EXPECT_EQ(wah.Count(), 31u * 5);
}

TEST(WahEdgeTest, RunStraddlingActiveWord) {
  // Start mid-group, append a run that crosses several group boundaries.
  WahBitVector wah;
  for (int i = 0; i < 17; ++i) wah.AppendBit(false);
  wah.AppendRun(true, 31 * 3 + 5);
  EXPECT_EQ(wah.size(), 17u + 31u * 3 + 5u);
  EXPECT_EQ(wah.Count(), 31u * 3 + 5u);
  const BitVector dense = wah.Decompress();
  for (uint64_t i = 0; i < wah.size(); ++i) {
    EXPECT_EQ(dense.Get(i), i >= 17) << i;
  }
}

TEST(WahEdgeTest, OpsBetweenFillHeavyAndLiteralHeavy) {
  // a: one giant fill; b: all literals. Exercises the fill-vs-literal
  // decoder path for the whole length.
  const uint64_t n = 31 * 5000;
  WahBitVector a = WahBitVector::Fill(n, true);
  WahBitVector b;
  for (uint64_t i = 0; i < n; ++i) b.AppendBit(i % 3 == 0);
  const WahBitVector c = a.And(b);
  EXPECT_EQ(c.Count(), b.Count());
  EXPECT_TRUE(c.Decompress() == b.Decompress());
  const WahBitVector d = a.Xor(b);
  EXPECT_EQ(d.Count(), n - b.Count());
}

TEST(WahEdgeTest, MisalignedFillRunsInterleave) {
  // Runs offset by a prime length force every op step to split fills.
  WahBitVector a;
  WahBitVector b;
  const uint64_t n = 31 * 1000;
  uint64_t i = 0;
  bool bit = false;
  while (i < n) {
    const uint64_t run = std::min<uint64_t>(97, n - i);
    a.AppendRun(bit, run);
    i += run;
    bit = !bit;
  }
  i = 0;
  bit = true;
  while (i < n) {
    const uint64_t run = std::min<uint64_t>(131, n - i);
    b.AppendRun(bit, run);
    i += run;
    bit = !bit;
  }
  EXPECT_TRUE(a.Or(b).Decompress() == Or(a.Decompress(), b.Decompress()));
  EXPECT_TRUE(a.Xor(b).Decompress() == Xor(a.Decompress(), b.Decompress()));
}

TEST(WahEdgeTest, SingleBitVectors) {
  WahBitVector a;
  a.AppendBit(true);
  WahBitVector b;
  b.AppendBit(false);
  EXPECT_EQ(a.And(b).Count(), 0u);
  EXPECT_EQ(a.Or(b).Count(), 1u);
  EXPECT_EQ(a.Not().Count(), 0u);
  EXPECT_EQ(b.Not().Count(), 1u);
  EXPECT_EQ(a.size(), 1u);
}

TEST(WahEdgeTest, EmptyOperands) {
  WahBitVector a;
  WahBitVector b;
  EXPECT_EQ(a.And(b).size(), 0u);
  EXPECT_EQ(a.Or(b).size(), 0u);
  EXPECT_EQ(a.Not().size(), 0u);
  EXPECT_TRUE(a.Decompress() == BitVector());
}

TEST(WahEdgeTest, CountOnSaturatedFillChain) {
  // Multiple maximal fill words chained (each fill word holds at most
  // 2^30 - 1 groups).
  const uint64_t giant = (uint64_t{1} << 30) * 31 + 31 * 7;
  WahBitVector wah;
  wah.AppendRun(true, giant);
  EXPECT_EQ(wah.size(), giant);
  EXPECT_EQ(wah.Count(), giant);
  EXPECT_GE(wah.NumWords(), 2u);  // saturation forces a second fill word
  const WahBitVector inverted = wah.Not();
  EXPECT_EQ(inverted.Count(), 0u);
  EXPECT_EQ(inverted.size(), giant);
}

TEST(WahEdgeTest, GetAcrossStructures) {
  WahBitVector wah;
  wah.AppendRun(false, 40);
  wah.AppendRun(true, 100);
  for (int i = 0; i < 20; ++i) wah.AppendBit(i % 2 == 0);
  for (uint64_t i = 0; i < wah.size(); ++i) {
    bool expected;
    if (i < 40) {
      expected = false;
    } else if (i < 140) {
      expected = true;
    } else {
      expected = (i - 140) % 2 == 0;
    }
    EXPECT_EQ(wah.Get(i), expected) << i;
  }
}

}  // namespace
}  // namespace incdb
