#include "compression/wah_bitvector.h"

#include <gtest/gtest.h>

namespace incdb {
namespace {

TEST(WahBitVectorTest, EmptyByDefault) {
  WahBitVector wah;
  EXPECT_EQ(wah.size(), 0u);
  EXPECT_TRUE(wah.empty());
  EXPECT_EQ(wah.Count(), 0u);
  EXPECT_EQ(wah.SizeInBytes(), 0u);
}

TEST(WahBitVectorTest, AppendBitRoundTrip) {
  WahBitVector wah;
  for (int i = 0; i < 100; ++i) wah.AppendBit(i % 7 == 0);
  EXPECT_EQ(wah.size(), 100u);
  const BitVector dense = wah.Decompress();
  for (int i = 0; i < 100; ++i) EXPECT_EQ(dense.Get(i), i % 7 == 0) << i;
}

TEST(WahBitVectorTest, FillFactory) {
  const WahBitVector zeros = WahBitVector::Fill(1000, false);
  EXPECT_EQ(zeros.size(), 1000u);
  EXPECT_EQ(zeros.Count(), 0u);
  const WahBitVector ones = WahBitVector::Fill(1000, true);
  EXPECT_EQ(ones.Count(), 1000u);
  // A long fill should compress to very few words.
  EXPECT_LE(ones.SizeInBytes(), 8u);
}

TEST(WahBitVectorTest, AppendRunMergesFills) {
  WahBitVector wah;
  wah.AppendRun(false, 31 * 10);
  wah.AppendRun(false, 31 * 5);
  EXPECT_EQ(wah.size(), 31u * 15);
  EXPECT_EQ(wah.NumWords(), 1u);  // one merged fill word
}

TEST(WahBitVectorTest, CompressDecompressIdentitySmall) {
  const BitVector dense = BitVector::FromString("0001000010").value();
  const WahBitVector wah = WahBitVector::Compress(dense);
  EXPECT_TRUE(wah.Decompress() == dense);
  EXPECT_EQ(wah.Count(), 2u);
}

TEST(WahBitVectorTest, CompressExactly31Bits) {
  BitVector dense(31);
  dense.Set(0);
  dense.Set(30);
  const WahBitVector wah = WahBitVector::Compress(dense);
  EXPECT_EQ(wah.size(), 31u);
  EXPECT_TRUE(wah.Decompress() == dense);
}

TEST(WahBitVectorTest, CompressAllZerosIsTiny) {
  BitVector dense(31 * 1000);
  const WahBitVector wah = WahBitVector::Compress(dense);
  EXPECT_EQ(wah.SizeInBytes(), 4u);  // a single fill word
  EXPECT_EQ(wah.Count(), 0u);
}

TEST(WahBitVectorTest, CompressAllOnesIsTiny) {
  BitVector dense(31 * 1000, true);
  const WahBitVector wah = WahBitVector::Compress(dense);
  EXPECT_EQ(wah.SizeInBytes(), 4u);
  EXPECT_EQ(wah.Count(), 31u * 1000);
}

TEST(WahBitVectorTest, GetMatchesDecompress) {
  WahBitVector wah;
  wah.AppendRun(false, 100);
  wah.AppendRun(true, 50);
  wah.AppendBit(false);
  wah.AppendBit(true);
  const BitVector dense = wah.Decompress();
  for (uint64_t i = 0; i < wah.size(); ++i) {
    EXPECT_EQ(wah.Get(i), dense.Get(i)) << i;
  }
}

TEST(WahBitVectorTest, CountOverMixedContent) {
  WahBitVector wah;
  wah.AppendRun(true, 62);    // two 1-fill groups
  wah.AppendBit(true);
  wah.AppendBit(false);
  wah.AppendRun(false, 93);   // fills + partial
  EXPECT_EQ(wah.Count(), 63u);
}

TEST(WahBitVectorTest, AndBasic) {
  WahBitVector a;
  WahBitVector b;
  for (int i = 0; i < 200; ++i) {
    a.AppendBit(i % 2 == 0);
    b.AppendBit(i % 3 == 0);
  }
  const WahBitVector c = a.And(b);
  EXPECT_EQ(c.size(), 200u);
  const BitVector dense = c.Decompress();
  for (int i = 0; i < 200; ++i) {
    EXPECT_EQ(dense.Get(i), i % 6 == 0) << i;
  }
}

TEST(WahBitVectorTest, OrOfComplementaryFills) {
  WahBitVector a;
  a.AppendRun(true, 310);
  a.AppendRun(false, 310);
  WahBitVector b;
  b.AppendRun(false, 310);
  b.AppendRun(true, 310);
  const WahBitVector c = a.Or(b);
  EXPECT_EQ(c.Count(), 620u);
  EXPECT_LE(c.SizeInBytes(), 8u);  // merges back into one fill
}

TEST(WahBitVectorTest, XorSelfIsZero) {
  WahBitVector a;
  for (int i = 0; i < 500; ++i) a.AppendBit(i % 5 == 0);
  const WahBitVector z = a.Xor(a);
  EXPECT_EQ(z.Count(), 0u);
  EXPECT_EQ(z.size(), 500u);
}

TEST(WahBitVectorTest, AndNot) {
  WahBitVector a = WahBitVector::Fill(100, true);
  WahBitVector b;
  for (int i = 0; i < 100; ++i) b.AppendBit(i < 40);
  const WahBitVector c = a.AndNot(b);
  EXPECT_EQ(c.Count(), 60u);
  EXPECT_FALSE(c.Get(0));
  EXPECT_TRUE(c.Get(99));
}

TEST(WahBitVectorTest, NotInvolution) {
  WahBitVector a;
  for (int i = 0; i < 137; ++i) a.AppendBit(i % 11 == 0);
  EXPECT_TRUE(a.Not().Not() == a);
  EXPECT_EQ(a.Not().Count(), 137u - a.Count());
}

TEST(WahBitVectorTest, NotOnFills) {
  const WahBitVector zeros = WahBitVector::Fill(310, false);
  const WahBitVector inverted = zeros.Not();
  EXPECT_EQ(inverted.Count(), 310u);
  EXPECT_LE(inverted.SizeInBytes(), 4u);
}

TEST(WahBitVectorTest, CompressionRatioOfSparseVector) {
  // Paper §4.2: a 1,000,000-bit column with ~1% density compresses to
  // roughly 0.47 of its verbatim size under WAH.
  BitVector dense(1000000);
  for (uint64_t i = 0; i < 1000000; i += 100) dense.Set(i);
  const WahBitVector wah = WahBitVector::Compress(dense);
  EXPECT_TRUE(wah.Decompress() == dense);
  EXPECT_GT(wah.CompressionRatio(), 0.3);
  EXPECT_LT(wah.CompressionRatio(), 0.7);
}

TEST(WahBitVectorTest, CompressionRatioOfRandomVectorNearOne) {
  // Incompressible content costs 32/31 of verbatim (~1.03), matching the
  // paper's observation that BRE bitmaps "do not compress at all".
  BitVector dense(31 * 1000);
  for (uint64_t i = 0; i < dense.size(); i += 2) dense.Set(i);
  const WahBitVector wah = WahBitVector::Compress(dense);
  EXPECT_NEAR(wah.CompressionRatio(), 32.0 / 31.0, 0.01);
}

TEST(WahBitVectorTest, EqualityOperator) {
  WahBitVector a;
  WahBitVector b;
  for (int i = 0; i < 100; ++i) {
    a.AppendBit(i % 2 == 0);
    b.AppendBit(i % 2 == 0);
  }
  EXPECT_TRUE(a == b);
  b.AppendBit(true);
  EXPECT_FALSE(a == b);
}

TEST(WahBitVectorTest, OpsOnNonAlignedSizes) {
  // Sizes that are not multiples of 31 exercise the active-word path.
  for (uint64_t n : {1u, 30u, 32u, 62u, 63u, 100u}) {
    WahBitVector a;
    WahBitVector b;
    for (uint64_t i = 0; i < n; ++i) {
      a.AppendBit(i % 2 == 0);
      b.AppendBit(i % 3 == 0);
    }
    const BitVector expected = And(a.Decompress(), b.Decompress());
    EXPECT_TRUE(a.And(b).Decompress() == expected) << "n=" << n;
  }
}

TEST(WahBitVectorTest, VeryLongFillRuns) {
  // Exceeds one fill word's 2^30-group capacity handling path in EmitFill.
  WahBitVector wah;
  const uint64_t big = (uint64_t{1} << 31) * 31 / 16;  // ~4.1e9 bits
  wah.AppendRun(false, big);
  EXPECT_EQ(wah.size(), big);
  EXPECT_EQ(wah.Count(), 0u);
}

TEST(WahBitVectorTest, DebugStringShapes) {
  WahBitVector wah;
  wah.AppendRun(false, 62);
  wah.AppendBit(true);
  const std::string debug = wah.DebugString();
  EXPECT_NE(debug.find("F0x2"), std::string::npos);
  EXPECT_NE(debug.find("A:"), std::string::npos);
}

}  // namespace
}  // namespace incdb
