// Typed tests running the WAH contract over both word widths, plus the
// 32-vs-64 trade-off assertions behind the word-size ablation bench.

#include <gtest/gtest.h>

#include <sstream>

#include "common/rng.h"
#include "compression/wah_bitvector.h"

namespace incdb {
namespace {

template <typename WordT>
class WahWordSizeTest : public ::testing::Test {
 public:
  using Wah = BasicWahBitVector<WordT>;
};

using WordTypes = ::testing::Types<uint32_t, uint64_t>;
TYPED_TEST_SUITE(WahWordSizeTest, WordTypes);

BitVector RandomRuns(Rng& rng, uint64_t n, double density) {
  BitVector bits(n);
  uint64_t i = 0;
  while (i < n) {
    const bool bit = rng.Bernoulli(density);
    const uint64_t run = 1 + static_cast<uint64_t>(rng.UniformInt(0, 90));
    for (uint64_t j = 0; j < run && i < n; ++j, ++i) {
      if (bit) bits.Set(i);
    }
  }
  return bits;
}

TYPED_TEST(WahWordSizeTest, GroupBitsMatchWordWidth) {
  EXPECT_EQ(TestFixture::Wah::kGroupBits,
            static_cast<int>(sizeof(TypeParam) * 8) - 1);
}

TYPED_TEST(WahWordSizeTest, CompressDecompressIdentity) {
  Rng rng(42);
  for (uint64_t n : {0u, 1u, 31u, 63u, 64u, 127u, 1000u, 50000u}) {
    for (double density : {0.0, 0.005, 0.5, 1.0}) {
      const BitVector dense = RandomRuns(rng, n, density);
      const auto wah = TestFixture::Wah::Compress(dense);
      EXPECT_TRUE(wah.Decompress() == dense) << "n=" << n << " d=" << density;
      EXPECT_EQ(wah.Count(), dense.Count());
    }
  }
}

TYPED_TEST(WahWordSizeTest, OpsMatchVerbatim) {
  Rng rng(43);
  for (uint64_t n : {62u, 63u, 126u, 5000u}) {
    const BitVector a = RandomRuns(rng, n, 0.2);
    const BitVector b = RandomRuns(rng, n, 0.8);
    const auto wa = TestFixture::Wah::Compress(a);
    const auto wb = TestFixture::Wah::Compress(b);
    EXPECT_TRUE(wa.And(wb).Decompress() == And(a, b));
    EXPECT_TRUE(wa.Or(wb).Decompress() == Or(a, b));
    EXPECT_TRUE(wa.Xor(wb).Decompress() == Xor(a, b));
    EXPECT_TRUE(wa.AndNot(wb).Decompress() == And(a, Not(b)));
    EXPECT_TRUE(wa.Not().Decompress() == Not(a));
  }
}

TYPED_TEST(WahWordSizeTest, SerializationRoundTrip) {
  Rng rng(44);
  const BitVector dense = RandomRuns(rng, 10000, 0.05);
  const auto original = TestFixture::Wah::Compress(dense);
  std::stringstream stream;
  BinaryWriter writer(stream);
  original.SaveTo(writer);
  BinaryReader reader(stream);
  const auto loaded = TestFixture::Wah::LoadFrom(reader);
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(loaded.value() == original);
}

TYPED_TEST(WahWordSizeTest, IncompressibleRatioIsWordOverGroup) {
  BitVector dense(64 * 31 * 100);
  for (uint64_t i = 0; i < dense.size(); i += 2) dense.Set(i);
  const auto wah = TestFixture::Wah::Compress(dense);
  const double expected = static_cast<double>(sizeof(TypeParam) * 8) /
                          static_cast<double>(sizeof(TypeParam) * 8 - 1);
  EXPECT_NEAR(wah.CompressionRatio(), expected, 0.02);
}

// The ablation trade-off: on very sparse bitmaps the 32-bit variant
// compresses better (finer 31-bit run granularity), never worse than half
// as well; the 64-bit variant's incompressible ceiling is lower
// (64/63 < 32/31).
TEST(WahWordSizeTradeoffTest, SparseFavorsNarrowWords) {
  BitVector dense(1000000);
  for (uint64_t i = 0; i < dense.size(); i += 617) dense.Set(i);
  const auto wah32 = WahBitVector::Compress(dense);
  const auto wah64 = Wah64BitVector::Compress(dense);
  EXPECT_LT(wah32.SizeInBytes(), wah64.SizeInBytes());
  EXPECT_TRUE(wah32.Decompress() == wah64.Decompress());
}

TEST(WahWordSizeTradeoffTest, DenseRandomFavorsWideWordsSlightly) {
  Rng rng(45);
  BitVector dense(1000000);
  for (uint64_t i = 0; i < dense.size(); ++i) {
    if (rng.Bernoulli(0.5)) dense.Set(i);
  }
  const auto wah32 = WahBitVector::Compress(dense);
  const auto wah64 = Wah64BitVector::Compress(dense);
  // 32/31 vs 64/63 overhead: the wide variant wins on incompressible data.
  EXPECT_LT(wah64.SizeInBytes(), wah32.SizeInBytes());
}

}  // namespace
}  // namespace incdb
