// Property tests: the WAH-compressed operations must agree exactly with the
// verbatim BitVector operations for every density/size combination
// (DESIGN.md invariant 2).

#include <gtest/gtest.h>

#include "bitvector/bitvector.h"
#include "common/rng.h"
#include "compression/wah_bitvector.h"

namespace incdb {
namespace {

struct WahPropertyCase {
  uint64_t size;
  double density_a;
  double density_b;
};

class WahPropertyTest : public ::testing::TestWithParam<WahPropertyCase> {};

BitVector RandomBits(Rng& rng, uint64_t n, double density) {
  BitVector bits(n);
  for (uint64_t i = 0; i < n; ++i) {
    if (rng.Bernoulli(density)) bits.Set(i);
  }
  return bits;
}

// Clustered bitmaps exercise long fills interleaved with literals.
BitVector RandomRuns(Rng& rng, uint64_t n, double density) {
  BitVector bits(n);
  uint64_t i = 0;
  bool bit = rng.Bernoulli(density);
  while (i < n) {
    const uint64_t run = 1 + static_cast<uint64_t>(rng.UniformInt(0, 80));
    for (uint64_t j = 0; j < run && i < n; ++j, ++i) {
      if (bit) bits.Set(i);
    }
    bit = rng.Bernoulli(density);
  }
  return bits;
}

TEST_P(WahPropertyTest, RoundTripIdentity) {
  const WahPropertyCase& param = GetParam();
  Rng rng(param.size * 31 + 1);
  for (int trial = 0; trial < 3; ++trial) {
    const BitVector dense = RandomBits(rng, param.size, param.density_a);
    EXPECT_TRUE(WahBitVector::Compress(dense).Decompress() == dense);
    const BitVector runs = RandomRuns(rng, param.size, param.density_a);
    EXPECT_TRUE(WahBitVector::Compress(runs).Decompress() == runs);
  }
}

TEST_P(WahPropertyTest, OpsMatchVerbatim) {
  const WahPropertyCase& param = GetParam();
  Rng rng(param.size * 7 + 13);
  for (int trial = 0; trial < 3; ++trial) {
    const BitVector a = trial % 2 == 0
                            ? RandomBits(rng, param.size, param.density_a)
                            : RandomRuns(rng, param.size, param.density_a);
    const BitVector b = trial % 2 == 0
                            ? RandomRuns(rng, param.size, param.density_b)
                            : RandomBits(rng, param.size, param.density_b);
    const WahBitVector wa = WahBitVector::Compress(a);
    const WahBitVector wb = WahBitVector::Compress(b);
    EXPECT_TRUE(wa.And(wb).Decompress() == And(a, b));
    EXPECT_TRUE(wa.Or(wb).Decompress() == Or(a, b));
    EXPECT_TRUE(wa.Xor(wb).Decompress() == Xor(a, b));
    EXPECT_TRUE(wa.AndNot(wb).Decompress() == And(a, Not(b)));
    EXPECT_TRUE(wa.Not().Decompress() == Not(a));
  }
}

TEST_P(WahPropertyTest, CountMatchesVerbatim) {
  const WahPropertyCase& param = GetParam();
  Rng rng(param.size + 1000003);
  const BitVector a = RandomRuns(rng, param.size, param.density_a);
  EXPECT_EQ(WahBitVector::Compress(a).Count(), a.Count());
}

TEST_P(WahPropertyTest, OpsPreserveCompression) {
  // The result of a compressed op must itself be canonically compressed:
  // re-compressing its decompressed form may not be smaller.
  const WahPropertyCase& param = GetParam();
  Rng rng(param.size + 77);
  const BitVector a = RandomRuns(rng, param.size, param.density_a);
  const BitVector b = RandomRuns(rng, param.size, param.density_b);
  const WahBitVector result =
      WahBitVector::Compress(a).Or(WahBitVector::Compress(b));
  const WahBitVector recompressed = WahBitVector::Compress(result.Decompress());
  EXPECT_EQ(result.SizeInBytes(), recompressed.SizeInBytes());
}

INSTANTIATE_TEST_SUITE_P(
    Sweep, WahPropertyTest,
    ::testing::Values(
        WahPropertyCase{1, 0.5, 0.5}, WahPropertyCase{30, 0.1, 0.9},
        WahPropertyCase{31, 0.5, 0.5}, WahPropertyCase{32, 0.0, 1.0},
        WahPropertyCase{62, 0.01, 0.99}, WahPropertyCase{63, 0.3, 0.7},
        WahPropertyCase{100, 0.05, 0.5}, WahPropertyCase{961, 0.001, 0.999},
        WahPropertyCase{1000, 0.02, 0.02}, WahPropertyCase{4096, 0.5, 0.5},
        WahPropertyCase{10000, 0.001, 0.01},
        WahPropertyCase{100000, 0.1, 0.0}));

}  // namespace
}  // namespace incdb
