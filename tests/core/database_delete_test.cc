// Logical deletions through the Database facade: deleted rows vanish from
// every query path while the (append-only) indexes stay untouched.

#include <gtest/gtest.h>

#include "core/database.h"
#include "table/generator.h"

namespace incdb {
namespace {

Database MakeDb() {
  Database db =
      Database::FromTable(GenerateTable(UniformSpec(500, 8, 0.2, 3, 951)).value())
          .value();
  EXPECT_TRUE(db.BuildIndex(IndexKind::kBitmapRange).ok());
  return db;
}

std::vector<uint32_t> RunTerms(const Database& db,
                               std::vector<NamedTerm> terms,
                               MissingSemantics semantics) {
  return db.Run(QueryRequest::Terms(std::move(terms), semantics))
      .value()
      .row_ids;
}

TEST(DatabaseDeleteTest, DeletedRowsDisappearFromQueries) {
  Database db = MakeDb();
  const std::vector<NamedTerm> terms = {{"a0", 1, 8}};
  const auto before = RunTerms(db, terms, MissingSemantics::kMatch);
  ASSERT_FALSE(before.empty());
  const uint32_t victim = before.front();
  ASSERT_TRUE(db.Delete(victim).ok());
  EXPECT_TRUE(db.IsDeleted(victim));
  const auto after = RunTerms(db, terms, MissingSemantics::kMatch);
  EXPECT_EQ(after.size(), before.size() - 1);
  for (uint32_t r : after) EXPECT_NE(r, victim);
}

TEST(DatabaseDeleteTest, CountsTrackDeletes) {
  Database db = MakeDb();
  EXPECT_EQ(db.num_live_rows(), 500u);
  ASSERT_TRUE(db.Delete(0).ok());
  ASSERT_TRUE(db.Delete(499).ok());
  EXPECT_EQ(db.num_live_rows(), 498u);
  EXPECT_EQ(db.num_deleted_rows(), 2u);
}

TEST(DatabaseDeleteTest, DoubleDeleteAndOutOfRangeRejected) {
  Database db = MakeDb();
  ASSERT_TRUE(db.Delete(5).ok());
  EXPECT_EQ(db.Delete(5).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(db.Delete(9999).code(), StatusCode::kOutOfRange);
}

TEST(DatabaseDeleteTest, DeleteThenInsertKeepsMaskAligned) {
  Database db = MakeDb();
  ASSERT_TRUE(db.Delete(10).ok());
  ASSERT_TRUE(db.Insert({1, 1, 1}).ok());
  const uint32_t new_row = static_cast<uint32_t>(db.num_rows() - 1);
  EXPECT_FALSE(db.IsDeleted(new_row));
  const std::vector<NamedTerm> terms = {
      {"a0", 1, 1}, {"a1", 1, 1}, {"a2", 1, 1}};
  const auto rows = RunTerms(db, terms, MissingSemantics::kNoMatch);
  EXPECT_NE(std::find(rows.begin(), rows.end(), new_row), rows.end());
  ASSERT_TRUE(db.Delete(new_row).ok());
  const auto rows_after = RunTerms(db, terms, MissingSemantics::kNoMatch);
  EXPECT_EQ(std::find(rows_after.begin(), rows_after.end(), new_row),
            rows_after.end());
}

TEST(DatabaseDeleteTest, ExpressionQueriesRespectDeletes) {
  Database db = MakeDb();
  const QueryExpr expr =
      QueryExpr::MakeNot(QueryExpr::MakeTerm(0, {1, 4}));
  const auto before =
      db.Run(QueryRequest::Expression(expr, MissingSemantics::kMatch))
          .value()
          .row_ids;
  ASSERT_FALSE(before.empty());
  ASSERT_TRUE(db.Delete(before.front()).ok());
  const auto after =
      db.Run(QueryRequest::Expression(expr, MissingSemantics::kMatch))
          .value()
          .row_ids;
  EXPECT_EQ(after.size(), before.size() - 1);
}

TEST(DatabaseDeleteTest, ScanPathAlsoMasksDeletes) {
  Database db =
      Database::FromTable(GenerateTable(UniformSpec(100, 5, 0.1, 2, 953)).value())
          .value();  // no indexes: scan route
  const auto before = RunTerms(db, {{"a0", 1, 5}}, MissingSemantics::kMatch);
  ASSERT_TRUE(db.Delete(before.front()).ok());
  const auto after = RunTerms(db, {{"a0", 1, 5}}, MissingSemantics::kMatch);
  EXPECT_EQ(after.size(), before.size() - 1);
}

}  // namespace
}  // namespace incdb
