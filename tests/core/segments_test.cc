// Functional tests for the sharded segment store: enabling, sealing on
// insert, zone-map pruning visible in QueryStats and EXPLAIN, CompactNow
// reclamation accounting, and the background compactor loop.

#include <gtest/gtest.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "core/database.h"
#include "core/segments.h"
#include "table/generator.h"

namespace incdb {
namespace {

// A deterministic table whose first attribute is CLUSTERED by construction
// (row r has a0 = 1 + r / rows_per_value), so zone maps genuinely separate
// the segments; the generator's uniform tables cannot be pruned.
Table ClusteredTable(uint64_t num_rows, uint32_t cardinality,
                     uint64_t rows_per_value) {
  std::vector<AttributeSpec> specs = {{"a0", cardinality}, {"a1", 7}};
  Table table = Table::Create(Schema(specs)).value();
  for (uint64_t r = 0; r < num_rows; ++r) {
    const Value clustered = static_cast<Value>(
        1 + std::min<uint64_t>(r / rows_per_value, cardinality - 1));
    const Value noisy =
        r % 11 == 0 ? kMissingValue : static_cast<Value>(1 + (r * 13) % 7);
    EXPECT_TRUE(table.AppendRow({clustered, noisy}).ok());
  }
  return table;
}

SegmentOptions SmallSegments(uint64_t rows = 64) {
  SegmentOptions options;
  options.segment_rows = rows;
  return options;
}

TEST(SegmentsTest, EnableSealsExistingRows) {
  Database db = Database::FromTable(ClusteredTable(300, 8, 40)).value();
  ASSERT_FALSE(db.segments_enabled());
  ASSERT_TRUE(db.EnableSegments(SmallSegments(64)).ok());
  EXPECT_TRUE(db.segments_enabled());
  // 300 rows at 64 rows/segment: 4 sealed segments + 44-row tail.
  EXPECT_EQ(db.num_segments(), 4u);
  EXPECT_EQ(db.sealed_rows(), 256u);
}

TEST(SegmentsTest, EnablingTwiceIsAnError) {
  Database db = Database::FromTable(ClusteredTable(100, 4, 30)).value();
  ASSERT_TRUE(db.EnableSegments(SmallSegments(32)).ok());
  EXPECT_FALSE(db.EnableSegments(SmallSegments(32)).ok());
}

TEST(SegmentsTest, NonSelfContainedIndexKindsAreRejected) {
  Database db = Database::FromTable(ClusteredTable(100, 4, 30)).value();
  for (IndexKind kind : {IndexKind::kSequentialScan, IndexKind::kVaFile,
                         IndexKind::kVaPlusFile, IndexKind::kMosaic,
                         IndexKind::kBitstringAugmented}) {
    SegmentOptions options = SmallSegments(32);
    options.index_kind = kind;
    EXPECT_FALSE(db.EnableSegments(options).ok())
        << IndexKindToString(kind);
  }
  EXPECT_FALSE(db.segments_enabled());
}

TEST(SegmentsTest, InsertSealsAtTheBoundary) {
  Database db = Database::FromTable(ClusteredTable(60, 4, 20)).value();
  ASSERT_TRUE(db.EnableSegments(SmallSegments(64)).ok());
  ASSERT_EQ(db.num_segments(), 0u);
  for (int i = 0; i < 70; ++i) {
    ASSERT_TRUE(db.Insert({1, static_cast<Value>(1 + i % 7)}).ok());
  }
  // 130 rows total: one sealed segment at row 64, tail of 66... the second
  // seal happens when row 128 accumulates.
  EXPECT_EQ(db.num_segments(), 2u);
  EXPECT_EQ(db.sealed_rows(), 128u);
  EXPECT_EQ(db.num_rows(), 130u);
}

TEST(SegmentsTest, RoutingAndStatsExposePruning) {
  // Clustered a0 in [1,8], 80 rows per value, segment_rows=80: each sealed
  // segment holds exactly one a0 value, so a point query on a0 must prune
  // all other segments.
  Database db = Database::FromTable(ClusteredTable(640, 8, 80)).value();
  ASSERT_TRUE(db.EnableSegments(SmallSegments(80)).ok());
  ASSERT_EQ(db.num_segments(), 8u);

  const auto result =
      db.Run(QueryRequest::Text("a0 = 3", MissingSemantics::kNoMatch));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->count, 80u);
  EXPECT_NE(result->chosen_index.find("SEG["), std::string::npos)
      << result->chosen_index;
  EXPECT_EQ(result->stats.segments_scanned, 1u);
  EXPECT_EQ(result->stats.segments_pruned, 7u);

  // EXPLAIN surfaces the same counters on the probe operator.
  const auto explained = db.Run(
      QueryRequest::Text("a0 = 3", MissingSemantics::kNoMatch).Explain());
  ASSERT_TRUE(explained.ok());
  EXPECT_NE(explained->explain.find("segs"), std::string::npos)
      << explained->explain;
  EXPECT_NE(explained->explain.find("pruned"), std::string::npos)
      << explained->explain;
}

TEST(SegmentsTest, MissingCellsBlockPruningUnderMatchSemantics) {
  // a1 has missing cells in every segment, so under kMatch a query on a1
  // may never be zone-pruned (a missing cell can match), while under
  // kNoMatch out-of-range segments still prune on a0.
  Database db = Database::FromTable(ClusteredTable(320, 4, 80)).value();
  ASSERT_TRUE(db.EnableSegments(SmallSegments(80)).ok());
  const auto match =
      db.Run(QueryRequest::Text("a1 = 2", MissingSemantics::kMatch));
  ASSERT_TRUE(match.ok());
  EXPECT_EQ(match->stats.segments_pruned, 0u);
}

TEST(SegmentsTest, CompactNowReclaimsAndAccounts) {
  Database db = Database::FromTable(ClusteredTable(320, 4, 80)).value();
  ASSERT_TRUE(db.EnableSegments(SmallSegments(80)).ok());
  ASSERT_EQ(db.num_segments(), 4u);

  // Nothing deleted: a cheap no-op that must not bump the counters.
  ASSERT_TRUE(db.CompactNow().ok());
  EXPECT_EQ(db.GetCompactionStats().compactions, 0u);

  // Concentrate the deletes in segment 1 (rows 80..159).
  for (uint32_t r = 80; r < 120; ++r) {
    ASSERT_TRUE(db.Delete(r).ok());
  }
  ASSERT_EQ(db.num_deleted_rows(), 40u);
  ASSERT_TRUE(db.CompactNow().ok());

  const CompactionStats stats = db.GetCompactionStats();
  EXPECT_EQ(stats.compactions, 1u);
  EXPECT_EQ(stats.reclaimed_rows, 40u);
  EXPECT_EQ(stats.reclaimed_bytes,
            40u * db.table().num_attributes() * sizeof(Value));
  // Untouched segments ride along by reference; only the deleted-in
  // segment (and whatever tail-merge it triggers) is rebuilt.
  EXPECT_GE(stats.segments_reused, 2u);
  EXPECT_GE(stats.segments_rebuilt, 1u);

  EXPECT_EQ(db.num_rows(), 280u);
  EXPECT_EQ(db.num_deleted_rows(), 0u);
  const auto result =
      db.Run(QueryRequest::Text("a0 = 2", MissingSemantics::kNoMatch));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->count, 40u);  // was 80, half the segment deleted
}

TEST(SegmentsTest, CompactionPreservesAnswersExactly) {
  Database db = Database::FromTable(ClusteredTable(300, 8, 40)).value();
  ASSERT_TRUE(db.EnableSegments(SmallSegments(64)).ok());
  for (uint32_t r = 30; r < 90; r += 3) {
    ASSERT_TRUE(db.Delete(r).ok());
  }
  // Oracle over live rows before compaction.
  std::vector<Value> survivors;
  for (uint64_t r = 0; r < db.num_rows(); ++r) {
    if (!db.IsDeleted(static_cast<uint32_t>(r))) {
      survivors.push_back(db.table().column(0).Get(r));
    }
  }
  ASSERT_TRUE(db.CompactNow().ok());
  ASSERT_EQ(db.num_rows(), survivors.size());
  for (uint64_t r = 0; r < db.num_rows(); ++r) {
    EXPECT_EQ(db.table().column(0).Get(r), survivors[r]) << "row " << r;
  }
}

TEST(SegmentsTest, BackgroundCompactorTriggersOnDeletes) {
  Database db = Database::FromTable(ClusteredTable(256, 4, 64)).value();
  ASSERT_TRUE(db.EnableSegments(SmallSegments(64)).ok());
  BackgroundCompactor::Options options;
  options.interval_millis = 5;
  options.min_deleted_rows = 10;
  BackgroundCompactor compactor(&db, options);
  for (uint32_t r = 0; r < 16; ++r) {
    ASSERT_TRUE(db.Delete(r).ok());
  }
  const auto deadline =
      std::chrono::steady_clock::now() + std::chrono::seconds(10);
  while (db.GetCompactionStats().compactions == 0 &&
         std::chrono::steady_clock::now() < deadline) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  compactor.Stop();
  EXPECT_GE(db.GetCompactionStats().compactions, 1u);
  EXPECT_EQ(db.num_deleted_rows(), 0u);
  EXPECT_EQ(db.num_rows(), 240u);
  EXPECT_GE(compactor.runs(), 1u);
}

}  // namespace
}  // namespace incdb
