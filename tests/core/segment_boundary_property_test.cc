// Segment-boundary property suite: plan-vs-oracle equivalence for the
// sharded segment store, concentrated on the places segmentation can get
// row accounting wrong — queries whose matches straddle seal seams,
// predicates that zone-prune most segments, deletes concentrated inside a
// single segment, and the same checks again after compaction shifts
// begin_rows. Serial, parallel, and count-only execution must all agree
// bit-for-bit with the row-level oracle.

#include <gtest/gtest.h>

#include <cstdint>
#include <string>
#include <vector>

#include "core/database.h"
#include "core/segments.h"
#include "query/expr.h"
#include "table/generator.h"

namespace incdb {
namespace {

constexpr uint64_t kSegmentRows = 48;

// Mixed-structure fixture: a0 clustered (zone maps can prune), a1 and a2
// uniform-ish with missing cells (zone maps cannot), so one query set
// exercises both pruned and unprunable probes.
Database MakeSegmentedDb(uint64_t num_rows, bool enable,
                         IndexKind index_kind = IndexKind::kBitmapEquality) {
  std::vector<AttributeSpec> specs = {{"a0", 10}, {"a1", 6}, {"a2", 4}};
  Table table = Table::Create(Schema(specs)).value();
  for (uint64_t r = 0; r < num_rows; ++r) {
    const Value clustered = static_cast<Value>(1 + (r / kSegmentRows) % 10);
    const Value uniform =
        r % 7 == 0 ? kMissingValue : static_cast<Value>(1 + (r * 17) % 6);
    const Value coarse =
        r % 13 == 0 ? kMissingValue : static_cast<Value>(1 + (r * 5) % 4);
    EXPECT_TRUE(table.AppendRow({clustered, uniform, coarse}).ok());
  }
  Database db = Database::FromTable(std::move(table)).value();
  if (enable) {
    SegmentOptions options;
    options.segment_rows = kSegmentRows;
    options.index_kind = index_kind;
    EXPECT_TRUE(db.EnableSegments(options).ok());
  }
  return db;
}

// Term fixtures chosen against the fixture's layout: point and range
// queries on the clustered attribute (seam-straddling by construction,
// since a0 changes value exactly at seal boundaries), cross-attribute
// conjunctions, and full-domain spans.
std::vector<std::vector<NamedTerm>> TermFixtures() {
  return {
      {{"a0", 3, 3}},                     // exactly one segment per cycle
      {{"a0", 3, 4}},                     // straddles one seam
      {{"a0", 1, 10}},                    // full domain: nothing prunable
      {{"a1", 2, 5}},                     // unprunable attribute
      {{"a0", 5, 6}, {"a1", 1, 3}},       // pruned conjunct + unpruned
      {{"a0", 2, 2}, {"a1", 2, 2}, {"a2", 1, 2}},
      {{"a2", 4, 4}},
  };
}

std::vector<QueryExpr> ExprFixtures() {
  const QueryExpr c = QueryExpr::MakeTerm(0, {3, 4});
  const QueryExpr u = QueryExpr::MakeTerm(1, {2, 5});
  const QueryExpr v = QueryExpr::MakeTerm(2, {1, 2});
  return {
      c,
      QueryExpr::MakeAnd({c, u}),
      QueryExpr::MakeOr({c, v}),
      QueryExpr::MakeNot(c),  // NOT over a pruned leaf: zeros must be exact
      QueryExpr::MakeAnd({u, QueryExpr::MakeNot(c)}),
      QueryExpr::MakeNot(QueryExpr::MakeOr({c, QueryExpr::MakeAnd({u, v})})),
  };
}

std::vector<uint32_t> Oracle(const Database& db,
                             const std::vector<QueryTerm>& terms,
                             MissingSemantics semantics) {
  RangeQuery query;
  query.terms = terms;
  query.semantics = semantics;
  std::vector<uint32_t> rows;
  for (uint64_t r = 0; r < db.num_rows(); ++r) {
    if (!db.IsDeleted(static_cast<uint32_t>(r)) &&
        RowMatches(db.table(), r, query)) {
      rows.push_back(static_cast<uint32_t>(r));
    }
  }
  return rows;
}

std::vector<uint32_t> OracleExpr(const Database& db, const QueryExpr& expr,
                                 MissingSemantics semantics) {
  std::vector<uint32_t> rows;
  for (uint64_t r = 0; r < db.num_rows(); ++r) {
    if (!db.IsDeleted(static_cast<uint32_t>(r)) &&
        ExprMatches(db.table(), r, expr, semantics)) {
      rows.push_back(static_cast<uint32_t>(r));
    }
  }
  return rows;
}

// Runs every fixture through serial, parallel, and count-only execution
// and insists on oracle agreement. Shared by all scenarios below.
void CheckAllShapes(const Database& db, const std::string& scenario) {
  for (MissingSemantics semantics :
       {MissingSemantics::kMatch, MissingSemantics::kNoMatch}) {
    for (const std::vector<NamedTerm>& named : TermFixtures()) {
      std::vector<QueryTerm> terms;
      for (const NamedTerm& term : named) {
        terms.push_back(db.ResolveTerm(term).value());
      }
      const auto expected = Oracle(db, terms, semantics);
      std::string label = scenario + " [" +
                          std::string(MissingSemanticsToString(semantics)) +
                          "]";
      for (const NamedTerm& t : named) {
        label += " " + t.attribute + "=[" + std::to_string(t.lo) + "," +
                 std::to_string(t.hi) + "]";
      }

      const auto serial = db.Run(QueryRequest::Terms(named, semantics));
      ASSERT_TRUE(serial.ok()) << label << ": "
                               << serial.status().ToString();
      EXPECT_EQ(serial->row_ids, expected) << label;

      const auto parallel =
          db.Run(QueryRequest::Terms(named, semantics).Parallel(4));
      ASSERT_TRUE(parallel.ok()) << label;
      EXPECT_EQ(parallel->row_ids, expected) << label << " (parallel)";

      const auto counted =
          db.Run(QueryRequest::Terms(named, semantics).CountOnly());
      ASSERT_TRUE(counted.ok()) << label;
      EXPECT_EQ(counted->count, expected.size()) << label << " (count)";
    }

    for (const QueryExpr& expr : ExprFixtures()) {
      const auto expected = OracleExpr(db, expr, semantics);
      const std::string label = scenario + " on " + expr.ToString();
      const auto serial = db.Run(QueryRequest::Expression(expr, semantics));
      ASSERT_TRUE(serial.ok()) << label << ": "
                               << serial.status().ToString();
      EXPECT_EQ(serial->row_ids, expected) << label;
      const auto parallel =
          db.Run(QueryRequest::Expression(expr, semantics).Parallel(4));
      ASSERT_TRUE(parallel.ok()) << label;
      EXPECT_EQ(parallel->row_ids, expected) << label << " (parallel)";
    }
  }
}

TEST(SegmentBoundaryPropertyTest, SegmentedAgreesWithUnsegmented) {
  // Same rows, segments on vs off: every query shape must return identical
  // ids. 10 sealed segments plus a 21-row unsealed tail.
  const Database segmented = MakeSegmentedDb(501, true);
  const Database plain = MakeSegmentedDb(501, false);
  ASSERT_EQ(segmented.num_segments(), 10u);
  for (MissingSemantics semantics :
       {MissingSemantics::kMatch, MissingSemantics::kNoMatch}) {
    for (const std::vector<NamedTerm>& named : TermFixtures()) {
      const auto a = segmented.Run(QueryRequest::Terms(named, semantics));
      const auto b = plain.Run(QueryRequest::Terms(named, semantics));
      ASSERT_TRUE(a.ok() && b.ok());
      EXPECT_EQ(a->row_ids, b->row_ids);
    }
  }
  CheckAllShapes(segmented, "segmented-with-tail");
}

TEST(SegmentBoundaryPropertyTest, SealAlignedStore) {
  // No unsealed tail at all: every row lives in a segment, so the delta
  // scan contributes nothing and the merge path is fully responsible.
  const Database db = MakeSegmentedDb(10 * kSegmentRows, true);
  ASSERT_EQ(db.sealed_rows(), db.num_rows());
  CheckAllShapes(db, "seal-aligned");
}

TEST(SegmentBoundaryPropertyTest, ZonePrunedSegmentsStayExact) {
  const Database db = MakeSegmentedDb(10 * kSegmentRows, true);
  // Sanity that pruning actually engages for the clustered point query —
  // the suite would vacuously pass if zone maps never pruned.
  const auto probe = db.Run(
      QueryRequest::Text("a0 = 3", MissingSemantics::kNoMatch));
  ASSERT_TRUE(probe.ok());
  EXPECT_GT(probe->stats.segments_pruned, 0u);
  EXPECT_EQ(probe->stats.segments_scanned + probe->stats.segments_pruned,
            db.num_segments());
  CheckAllShapes(db, "zone-pruned");
}

TEST(SegmentBoundaryPropertyTest, DeletesConcentratedInOneSegment) {
  Database db = MakeSegmentedDb(501, true);
  // Hollow out segment 3 (rows 144..191): interior, boundary rows of the
  // segment, and its first/last row specifically.
  for (uint32_t r = 3 * kSegmentRows; r < 4 * kSegmentRows; r += 2) {
    ASSERT_TRUE(db.Delete(r).ok());
  }
  ASSERT_TRUE(db.Delete(4 * kSegmentRows - 1).ok());
  CheckAllShapes(db, "deletes-one-segment");

  // Also a deleted row at each side of a seam elsewhere.
  ASSERT_TRUE(db.Delete(6 * kSegmentRows - 1).ok());
  ASSERT_TRUE(db.Delete(6 * kSegmentRows).ok());
  CheckAllShapes(db, "deletes-at-seams");
}

TEST(SegmentBoundaryPropertyTest, CompactionShiftsThenAgrees) {
  Database db = MakeSegmentedDb(501, true);
  for (uint32_t r = 3 * kSegmentRows; r < 4 * kSegmentRows; r += 2) {
    ASSERT_TRUE(db.Delete(r).ok());
  }
  ASSERT_TRUE(db.CompactNow().ok());
  ASSERT_EQ(db.num_deleted_rows(), 0u);
  // Carried segments now sit at shifted begin_rows; their local indexes
  // must still splice to the right global positions.
  CheckAllShapes(db, "post-compaction");

  // Delete again across the shifted layout and compact a second time.
  for (uint32_t r = 10; r < 100; r += 7) {
    ASSERT_TRUE(db.Delete(r).ok());
  }
  CheckAllShapes(db, "deletes-after-compaction");
  ASSERT_TRUE(db.CompactNow().ok());
  CheckAllShapes(db, "twice-compacted");
}

TEST(SegmentBoundaryPropertyTest, CompositeSegmentIndexKindsAgree) {
  // The composite kinds as per-segment indexes: same seam-straddling,
  // zone-pruning, delete, and compaction scenarios, every shape against
  // the oracle.
  for (IndexKind kind : {IndexKind::kBitmapMultiComponent,
                         IndexKind::kBitmapHierarchical}) {
    const std::string tag(IndexKindToString(kind));
    Database db = MakeSegmentedDb(501, true, kind);
    ASSERT_EQ(db.num_segments(), 10u);
    CheckAllShapes(db, tag + "-with-tail");

    for (uint32_t r = 3 * kSegmentRows; r < 4 * kSegmentRows; r += 2) {
      ASSERT_TRUE(db.Delete(r).ok());
    }
    CheckAllShapes(db, tag + "-deletes");
    ASSERT_TRUE(db.CompactNow().ok());
    CheckAllShapes(db, tag + "-post-compaction");

    // Grow the tail through a seal boundary so fresh segments are built
    // with the composite kind too.
    for (uint64_t i = 0; i < kSegmentRows; ++i) {
      const Value v = static_cast<Value>(1 + i % 10);
      ASSERT_TRUE(db.Insert({v, v % 6 + 1, kMissingValue}).ok());
    }
    CheckAllShapes(db, tag + "-grown");
  }
}

TEST(SegmentBoundaryPropertyTest, InsertsAcrossSeamsAgree) {
  Database db = MakeSegmentedDb(2 * kSegmentRows + 5, true);
  // Grow the tail through two more seal boundaries, checking at every
  // watermark relation to the seam: just before, at, and just after.
  for (uint64_t i = 0; i < 2 * kSegmentRows; ++i) {
    const Value v = static_cast<Value>(1 + i % 10);
    ASSERT_TRUE(db.Insert({v, v % 6 + 1, kMissingValue}).ok());
    const uint64_t pos = db.num_rows() % kSegmentRows;
    if (pos <= 1 || pos == kSegmentRows - 1) {
      CheckAllShapes(db, "growing@" + std::to_string(db.num_rows()));
    }
  }
  EXPECT_GE(db.num_segments(), 4u);
}

}  // namespace
}  // namespace incdb
