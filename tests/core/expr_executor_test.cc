// Boolean-expression execution against every index family, verified on
// randomly generated AND/OR/NOT trees against the row-level Kleene oracle.

#include "core/expr_executor.h"

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/index_factory.h"
#include "table/generator.h"

namespace incdb {
namespace {

QueryExpr RandomExpr(Rng& rng, const Table& table, int depth) {
  const size_t attr = static_cast<size_t>(
      rng.UniformInt(0, static_cast<int64_t>(table.num_attributes()) - 1));
  const Value cardinality =
      static_cast<Value>(table.schema().attribute(attr).cardinality);
  if (depth == 0 || rng.Bernoulli(0.35)) {
    const Value lo = static_cast<Value>(rng.UniformInt(1, cardinality));
    const Value hi = static_cast<Value>(rng.UniformInt(lo, cardinality));
    return QueryExpr::MakeTerm(attr, {lo, hi});
  }
  const int pick = static_cast<int>(rng.UniformInt(0, 2));
  if (pick == 2) return QueryExpr::MakeNot(RandomExpr(rng, table, depth - 1));
  std::vector<QueryExpr> children;
  const int64_t arity = rng.UniformInt(2, 3);
  for (int64_t i = 0; i < arity; ++i) {
    children.push_back(RandomExpr(rng, table, depth - 1));
  }
  return pick == 0 ? QueryExpr::MakeAnd(std::move(children))
                   : QueryExpr::MakeOr(std::move(children));
}

class ExprExecutorTest : public ::testing::TestWithParam<IndexKind> {};

TEST_P(ExprExecutorTest, RandomTreesAgreeWithKleeneOracle) {
  const IndexKind kind = GetParam();
  const Table table = GenerateTable(UniformSpec(800, 8, 0.3, 5, 601)).value();
  const auto index = CreateIndex(kind, table).value();
  Rng rng(601);
  for (int trial = 0; trial < 30; ++trial) {
    const QueryExpr expr = RandomExpr(rng, table, 3);
    ASSERT_TRUE(expr.Validate(table).ok());
    for (MissingSemantics semantics :
         {MissingSemantics::kMatch, MissingSemantics::kNoMatch}) {
      const auto via_index = ExecuteExpr(*index, expr, semantics);
      const auto via_scan = ExecuteExprScan(table, expr, semantics);
      ASSERT_TRUE(via_index.ok()) << via_index.status().ToString();
      ASSERT_TRUE(via_scan.ok());
      EXPECT_TRUE(via_index.value() == via_scan.value())
          << IndexKindToString(kind) << " on " << expr.ToString() << " ["
          << MissingSemanticsToString(semantics) << "]";
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, ExprExecutorTest,
    ::testing::Values(IndexKind::kSequentialScan, IndexKind::kBitmapEquality,
                      IndexKind::kBitmapRange, IndexKind::kBitmapInterval,
                      IndexKind::kVaFile, IndexKind::kMosaic));

TEST(ExprExecutorBasicsTest, PossibleIsSupersetOfCertain) {
  const Table table = GenerateTable(UniformSpec(500, 6, 0.4, 4, 603)).value();
  const auto index = CreateIndex(IndexKind::kBitmapRange, table).value();
  Rng rng(603);
  for (int trial = 0; trial < 20; ++trial) {
    const QueryExpr expr = RandomExpr(rng, table, 3);
    const BitVector possible =
        ExecuteExpr(*index, expr, MissingSemantics::kMatch).value();
    const BitVector certain =
        ExecuteExpr(*index, expr, MissingSemantics::kNoMatch).value();
    EXPECT_TRUE(Or(possible, certain) == possible);  // certain ⊆ possible
  }
}

TEST(ExprExecutorBasicsTest, NegationSwapsPossibleAndCertain) {
  // possible(NOT e) = NOT certain(e); certain(NOT e) = NOT possible(e).
  const Table table = GenerateTable(UniformSpec(400, 7, 0.3, 3, 605)).value();
  const auto index = CreateIndex(IndexKind::kBitmapEquality, table).value();
  const QueryExpr expr = QueryExpr::MakeAnd(
      {QueryExpr::MakeTerm(0, {2, 5}), QueryExpr::MakeTerm(1, {1, 3})});
  const QueryExpr negated = QueryExpr::MakeNot(expr);
  const BitVector certain =
      ExecuteExpr(*index, expr, MissingSemantics::kNoMatch).value();
  const BitVector possible_of_not =
      ExecuteExpr(*index, negated, MissingSemantics::kMatch).value();
  EXPECT_TRUE(possible_of_not == Not(certain));
}

TEST(ExprExecutorBasicsTest, ConjunctionMatchesNativeRangeQuery) {
  const Table table = GenerateTable(UniformSpec(600, 10, 0.2, 4, 607)).value();
  const auto index = CreateIndex(IndexKind::kBitmapRange, table).value();
  RangeQuery query;
  query.terms = {{0, {2, 7}}, {2, {1, 5}}, {3, {4, 9}}};
  const QueryExpr expr = QueryExpr::FromRangeQuery(query);
  for (MissingSemantics semantics :
       {MissingSemantics::kMatch, MissingSemantics::kNoMatch}) {
    query.semantics = semantics;
    EXPECT_TRUE(ExecuteExpr(*index, expr, semantics).value() ==
                index->Execute(query).value());
  }
}

TEST(ExprExecutorBasicsTest, SurvivesDeepNesting) {
  const Table table = GenerateTable(UniformSpec(200, 5, 0.2, 2, 609)).value();
  const auto index = CreateIndex(IndexKind::kBitmapEquality, table).value();
  QueryExpr expr = QueryExpr::MakeTerm(0, {1, 3});
  for (int i = 0; i < 50; ++i) expr = QueryExpr::MakeNot(expr);
  const auto via_index = ExecuteExpr(*index, expr, MissingSemantics::kMatch);
  const auto via_scan =
      ExecuteExprScan(table, expr, MissingSemantics::kMatch);
  ASSERT_TRUE(via_index.ok());
  EXPECT_TRUE(via_index.value() == via_scan.value());
}

}  // namespace
}  // namespace incdb
