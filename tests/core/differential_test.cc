// Randomized differential sweep: random schemas (odd cardinalities, empty
// and saturated missing rates, skew), random mutation sequences (appends),
// random range and boolean queries — every index kind must agree with the
// row-level oracle at every step. One seeded deterministic run per case.

#include <gtest/gtest.h>

#include "common/rng.h"
#include "core/executor.h"
#include "core/expr_executor.h"
#include "core/index_factory.h"
#include "query/workload.h"
#include "table/generator.h"

namespace incdb {
namespace {

DatasetSpec RandomSpec(Rng& rng, uint64_t seed) {
  DatasetSpec spec;
  spec.seed = seed;
  spec.num_rows = 200 + static_cast<uint64_t>(rng.UniformInt(0, 800));
  const int num_attrs = static_cast<int>(rng.UniformInt(2, 6));
  for (int a = 0; a < num_attrs; ++a) {
    GeneratedAttribute attr;
    attr.name = "f" + std::to_string(a);
    // Deliberately awkward cardinalities: 1, 2, primes, powers of two ± 1.
    constexpr uint32_t kCardinalities[] = {1, 2, 3, 7, 8, 9, 15, 16, 17, 31,
                                           37, 64, 101};
    attr.cardinality = kCardinalities[rng.UniformInt(0, 12)];
    constexpr double kMissing[] = {0.0, 0.01, 0.2, 0.5, 0.95};
    attr.missing_rate = kMissing[rng.UniformInt(0, 4)];
    attr.zipf_theta = rng.Bernoulli(0.3) ? 1.0 + rng.UniformDouble() : 0.0;
    spec.attributes.push_back(attr);
  }
  return spec;
}

std::vector<Value> RandomRow(Rng& rng, const Table& table) {
  std::vector<Value> row(table.num_attributes());
  for (size_t a = 0; a < row.size(); ++a) {
    if (rng.Bernoulli(0.25)) {
      row[a] = kMissingValue;
    } else {
      row[a] = static_cast<Value>(
          rng.UniformInt(1, table.schema().attribute(a).cardinality));
    }
  }
  return row;
}

QueryExpr RandomExpr(Rng& rng, const Table& table, int depth) {
  const size_t attr = static_cast<size_t>(
      rng.UniformInt(0, static_cast<int64_t>(table.num_attributes()) - 1));
  const Value cardinality =
      static_cast<Value>(table.schema().attribute(attr).cardinality);
  if (depth == 0 || rng.Bernoulli(0.4)) {
    const Value lo = static_cast<Value>(rng.UniformInt(1, cardinality));
    const Value hi = static_cast<Value>(rng.UniformInt(lo, cardinality));
    return QueryExpr::MakeTerm(attr, {lo, hi});
  }
  switch (rng.UniformInt(0, 2)) {
    case 0:
      return QueryExpr::MakeAnd(
          {RandomExpr(rng, table, depth - 1), RandomExpr(rng, table, depth - 1)});
    case 1:
      return QueryExpr::MakeOr(
          {RandomExpr(rng, table, depth - 1), RandomExpr(rng, table, depth - 1)});
    default:
      return QueryExpr::MakeNot(RandomExpr(rng, table, depth - 1));
  }
}

class DifferentialTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(DifferentialTest, EverythingAgreesWithOracle) {
  const uint64_t seed = GetParam();
  Rng rng(seed);
  Table table = GenerateTable(RandomSpec(rng, seed)).value();

  // Appendable index set built up-front, mutated alongside the table.
  std::vector<std::unique_ptr<IncompleteIndex>> indexes;
  for (IndexKind kind :
       {IndexKind::kBitmapEquality, IndexKind::kBitmapRange,
        IndexKind::kBitmapInterval, IndexKind::kBitmapBitSliced,
        IndexKind::kVaFile, IndexKind::kMosaic}) {
    auto index = CreateIndex(kind, table);
    ASSERT_TRUE(index.ok()) << IndexKindToString(kind);
    indexes.push_back(std::move(index).value());
  }

  for (int round = 0; round < 3; ++round) {
    // Mutate: a burst of appends through both table and indexes.
    const int appends = static_cast<int>(rng.UniformInt(0, 40));
    for (int i = 0; i < appends; ++i) {
      const std::vector<Value> row = RandomRow(rng, table);
      ASSERT_TRUE(table.AppendRow(row).ok());
      for (auto& index : indexes) {
        ASSERT_TRUE(index->AppendRow(row).ok()) << index->Name();
      }
    }

    // Conjunctive queries against the oracle.
    WorkloadParams params;
    params.num_queries = 10;
    params.dims = std::min<size_t>(3, table.num_attributes());
    params.global_selectivity = 0.05;
    params.seed = seed * 31 + static_cast<uint64_t>(round);
    for (MissingSemantics semantics :
         {MissingSemantics::kMatch, MissingSemantics::kNoMatch}) {
      params.semantics = semantics;
      const auto queries = GenerateWorkload(table, params);
      ASSERT_TRUE(queries.ok());
      for (const auto& index : indexes) {
        ASSERT_TRUE(VerifyAgainstOracle(*index, table, queries.value()).ok())
            << index->Name() << " seed " << seed << " round " << round;
      }
    }

    // Boolean expression queries against the Kleene oracle.
    for (int i = 0; i < 5; ++i) {
      const QueryExpr expr = RandomExpr(rng, table, 3);
      for (MissingSemantics semantics :
           {MissingSemantics::kMatch, MissingSemantics::kNoMatch}) {
        const auto expected = ExecuteExprScan(table, expr, semantics);
        ASSERT_TRUE(expected.ok());
        for (const auto& index : indexes) {
          const auto actual = ExecuteExpr(*index, expr, semantics);
          ASSERT_TRUE(actual.ok()) << index->Name();
          ASSERT_TRUE(actual.value() == expected.value())
              << index->Name() << " on " << expr.ToString() << " seed "
              << seed;
        }
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, DifferentialTest,
                         ::testing::Range<uint64_t>(1, 13));

}  // namespace
}  // namespace incdb
