#include "core/snapshot.h"

#include <gtest/gtest.h>

#include "core/database.h"
#include "plan/planner.h"
#include "table/generator.h"

namespace incdb {
namespace {

Database MakeSmallDb() {
  auto db = Database::Create(Schema({{"rating", 5}, {"price", 10}})).value();
  EXPECT_TRUE(db.Insert({5, 7}).ok());
  EXPECT_TRUE(db.Insert({3, kMissingValue}).ok());
  EXPECT_TRUE(db.Insert({kMissingValue, 2}).ok());
  EXPECT_TRUE(db.Insert({4, 9}).ok());
  return db;
}

TEST(SnapshotTest, EpochsAreMonotoneAndEveryMutationPublishes) {
  auto db = Database::Create(Schema({{"x", 3}})).value();
  EXPECT_EQ(db.GetSnapshot().epoch(), 0u);
  ASSERT_TRUE(db.Insert({1}).ok());
  EXPECT_EQ(db.GetSnapshot().epoch(), 1u);
  ASSERT_TRUE(db.BuildIndex(IndexKind::kBitmapEquality).ok());
  EXPECT_EQ(db.GetSnapshot().epoch(), 2u);
  ASSERT_TRUE(db.Delete(0).ok());
  EXPECT_EQ(db.GetSnapshot().epoch(), 3u);
  ASSERT_TRUE(db.DropIndex(IndexKind::kBitmapEquality).ok());
  EXPECT_EQ(db.GetSnapshot().epoch(), 4u);
  // Failed mutations publish nothing.
  EXPECT_FALSE(db.Insert({7}).ok());
  EXPECT_FALSE(db.Delete(0).ok());
  EXPECT_EQ(db.GetSnapshot().epoch(), 4u);
}

TEST(SnapshotTest, PinnedSnapshotIsImmuneToLaterInserts) {
  Database db = MakeSmallDb();
  const Snapshot before = db.GetSnapshot();
  ASSERT_TRUE(db.Insert({3, 3}).ok());
  EXPECT_EQ(before.num_rows(), 4u);
  EXPECT_EQ(db.GetSnapshot().num_rows(), 5u);

  const QueryRequest request = QueryRequest::Terms({{"rating", 3, 3}});
  const auto old_view = RunOnSnapshot(before, request);
  ASSERT_TRUE(old_view.ok());
  EXPECT_EQ(old_view->row_ids, (std::vector<uint32_t>{1, 2}));
  const auto new_view = db.Run(request);
  ASSERT_TRUE(new_view.ok());
  EXPECT_EQ(new_view->row_ids, (std::vector<uint32_t>{1, 2, 4}));
}

TEST(SnapshotTest, PinnedSnapshotIsImmuneToLaterDeletes) {
  Database db = MakeSmallDb();
  const Snapshot before = db.GetSnapshot();
  ASSERT_TRUE(db.Delete(1).ok());
  EXPECT_FALSE(before.IsDeleted(1));
  EXPECT_EQ(before.num_live_rows(), 4u);
  EXPECT_TRUE(db.GetSnapshot().IsDeleted(1));
  EXPECT_EQ(db.GetSnapshot().num_live_rows(), 3u);

  const QueryRequest request = QueryRequest::Terms({{"rating", 3, 3}});
  const auto old_view = RunOnSnapshot(before, request);
  ASSERT_TRUE(old_view.ok());
  EXPECT_EQ(old_view->row_ids, (std::vector<uint32_t>{1, 2}));
  const auto new_view = db.Run(request);
  ASSERT_TRUE(new_view.ok());
  EXPECT_EQ(new_view->row_ids, (std::vector<uint32_t>{2}));
}

TEST(SnapshotTest, DroppedIndexStaysAliveForPinnedReaders) {
  Database db = MakeSmallDb();
  ASSERT_TRUE(db.BuildIndex(IndexKind::kBitmapEquality).ok());
  const Snapshot with_index = db.GetSnapshot();
  ASSERT_TRUE(db.DropIndex(IndexKind::kBitmapEquality).ok());
  EXPECT_FALSE(db.HasIndex(IndexKind::kBitmapEquality));
  EXPECT_TRUE(with_index.HasIndex(IndexKind::kBitmapEquality));

  const QueryRequest request = QueryRequest::Terms({{"rating", 3, 3}});
  const auto pinned = RunOnSnapshot(with_index, request);
  ASSERT_TRUE(pinned.ok());
  EXPECT_EQ(pinned->chosen_index, "BEE-WAH");
  const auto current = db.Run(request);
  ASSERT_TRUE(current.ok());
  EXPECT_EQ(current->chosen_index, "SeqScan");
  EXPECT_EQ(pinned->row_ids, current->row_ids);
}

TEST(SnapshotTest, DeltaScanCoversRowsAppendedAfterBuildIndex) {
  Database db = MakeSmallDb();
  ASSERT_TRUE(db.BuildIndex(IndexKind::kBitmapEquality).ok());
  // The index is immutable: it covers rows [0,4). These land in the delta.
  ASSERT_TRUE(db.Insert({3, 2}).ok());
  ASSERT_TRUE(db.Insert({kMissingValue, 5}).ok());
  ASSERT_TRUE(db.Insert({1, 1}).ok());

  const auto match = db.Run(QueryRequest::Terms({{"rating", 3, 3}}));
  ASSERT_TRUE(match.ok());
  EXPECT_EQ(match->chosen_index, "BEE-WAH");
  EXPECT_EQ(match->row_ids, (std::vector<uint32_t>{1, 2, 4, 5}));
  const auto no_match = db.Run(
      QueryRequest::Terms({{"rating", 3, 3}}, MissingSemantics::kNoMatch));
  ASSERT_TRUE(no_match.ok());
  EXPECT_EQ(no_match->row_ids, (std::vector<uint32_t>{1, 4}));

  // A rebuild re-covers the delta; answers must not change.
  ASSERT_TRUE(db.BuildIndex(IndexKind::kBitmapEquality).ok());
  const auto recovered = db.Run(QueryRequest::Terms({{"rating", 3, 3}}));
  ASSERT_TRUE(recovered.ok());
  EXPECT_EQ(recovered->row_ids, match->row_ids);
}

TEST(SnapshotTest, DeltaScanAgreesWithOracleOnRandomizedChurn) {
  Database db =
      Database::FromTable(GenerateTable(UniformSpec(500, 8, 0.25, 3, 811))
                              .value())
          .value();
  ASSERT_TRUE(db.BuildIndex(IndexKind::kBitmapRange).ok());
  ASSERT_TRUE(db.BuildIndex(IndexKind::kVaFile).ok());
  for (int i = 0; i < 120; ++i) {
    if (i % 3 == 0) {
      ASSERT_TRUE(db.Insert({static_cast<Value>(1 + i % 8), kMissingValue,
                             static_cast<Value>(1 + (i * 7) % 8)})
                      .ok());
    }
    if (i % 5 == 0) {
      ASSERT_TRUE(db.Delete(static_cast<uint32_t>(i * 4 + 1)).ok());
    }
  }
  const Snapshot snapshot = db.GetSnapshot();
  for (MissingSemantics semantics :
       {MissingSemantics::kMatch, MissingSemantics::kNoMatch}) {
    const QueryRequest request =
        QueryRequest::Terms({{"a0", 2, 5}, {"a2", 1, 6}}, semantics);
    const auto result = RunOnSnapshot(snapshot, request);
    ASSERT_TRUE(result.ok());
    EXPECT_NE(result->chosen_index, "SeqScan");
    // Oracle: RowMatches over every visible, live row of the snapshot.
    RangeQuery query;
    query.semantics = semantics;
    query.terms = {{0, {2, 5}}, {2, {1, 6}}};
    std::vector<uint32_t> expected;
    for (uint64_t r = 0; r < snapshot.num_rows(); ++r) {
      if (snapshot.IsDeleted(static_cast<uint32_t>(r))) continue;
      if (RowMatches(snapshot.table(), r, query)) {
        expected.push_back(static_cast<uint32_t>(r));
      }
    }
    EXPECT_EQ(result->row_ids, expected);
  }
}

TEST(SnapshotTest, MissingRateTracksInserts) {
  auto db = Database::Create(Schema({{"x", 4}, {"y", 4}})).value();
  ASSERT_TRUE(db.Insert({1, kMissingValue}).ok());
  ASSERT_TRUE(db.Insert({kMissingValue, kMissingValue}).ok());
  ASSERT_TRUE(db.Insert({2, kMissingValue}).ok());
  ASSERT_TRUE(db.Insert({3, 1}).ok());
  const Snapshot snapshot = db.GetSnapshot();
  EXPECT_DOUBLE_EQ(snapshot.MissingRate(0), 0.25);
  EXPECT_DOUBLE_EQ(snapshot.MissingRate(1), 0.75);
}

TEST(SnapshotTest, RunOnInvalidSnapshotIsRejected) {
  const Snapshot invalid;
  EXPECT_FALSE(invalid.valid());
  const auto result = RunOnSnapshot(invalid, QueryRequest::Terms({}));
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(SnapshotTest, RoutingConsultsSelectivityForTheVaFile) {
  // One low-cardinality attribute, VA-file vs scan: with a wide (unselective)
  // interval the refinement step makes the VA-file pointless and the router
  // must keep the scan; with a narrow interval the VA-file wins.
  Database db =
      Database::FromTable(GenerateTable(UniformSpec(2000, 64, 0.1, 1, 909))
                              .value())
          .value();
  ASSERT_TRUE(db.BuildIndex(IndexKind::kVaFile).ok());
  const auto narrow = db.Run(QueryRequest::Terms({{"a0", 7, 8}}));
  ASSERT_TRUE(narrow.ok());
  EXPECT_EQ(narrow->routing.index_kind, IndexKind::kVaFile);
  const auto wide = db.Run(QueryRequest::Terms({{"a0", 1, 64}}));
  ASSERT_TRUE(wide.ok());
  EXPECT_EQ(wide->routing.index_kind, IndexKind::kSequentialScan);
  EXPECT_GT(wide->routing.estimated_selectivity,
            narrow->routing.estimated_selectivity);
}

}  // namespace
}  // namespace incdb
