#include "core/executor.h"

#include <gtest/gtest.h>

#include "core/index_factory.h"
#include "query/workload.h"
#include "table/generator.h"

namespace incdb {
namespace {

TEST(ExecutorTest, RunWorkloadAggregates) {
  const Table table = GenerateTable(UniformSpec(1000, 10, 0.2, 5, 91)).value();
  const auto index = CreateIndex(IndexKind::kBitmapEquality, table).value();
  WorkloadParams params;
  params.num_queries = 10;
  params.dims = 3;
  params.global_selectivity = 0.05;
  const auto queries = GenerateWorkload(table, params);
  ASSERT_TRUE(queries.ok());
  const auto result = RunWorkload(*index, queries.value(), table.num_rows());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->index_name, "BEE-WAH");
  EXPECT_EQ(result->num_queries, 10u);
  EXPECT_GE(result->total_millis, 0.0);
  EXPECT_GT(result->total_matches, 0u);
  EXPECT_GT(result->stats.bitvectors_accessed, 0u);
  EXPECT_NEAR(result->realized_selectivity,
              static_cast<double>(result->total_matches) / (10.0 * 1000.0),
              1e-12);
}

TEST(ExecutorTest, RunWorkloadPropagatesQueryErrors) {
  const Table table = GenerateTable(UniformSpec(100, 10, 0.2, 2, 93)).value();
  const auto index = CreateIndex(IndexKind::kBitmapEquality, table).value();
  RangeQuery bad;
  bad.terms = {{5, {1, 1}}};
  EXPECT_FALSE(RunWorkload(*index, {bad}, table.num_rows()).ok());
}

TEST(ExecutorTest, VerifyPassesForCorrectIndex) {
  const Table table = GenerateTable(UniformSpec(500, 8, 0.3, 4, 95)).value();
  const auto index = CreateIndex(IndexKind::kBitmapRange, table).value();
  WorkloadParams params;
  params.num_queries = 10;
  params.dims = 2;
  params.global_selectivity = 0.05;
  const auto queries = GenerateWorkload(table, params);
  ASSERT_TRUE(queries.ok());
  EXPECT_TRUE(VerifyAgainstOracle(*index, table, queries.value()).ok());
}

// A deliberately wrong index to prove the verifier catches disagreements.
class LyingIndex : public IncompleteIndex {
 public:
  explicit LyingIndex(uint64_t rows) : rows_(rows) {}
  std::string Name() const override { return "Liar"; }
  Result<BitVector> Execute(const RangeQuery&, QueryStats*) const override {
    return BitVector(rows_);  // always claims "no matches"
  }
  uint64_t SizeInBytes() const override { return 0; }

 private:
  uint64_t rows_;
};

TEST(ExecutorTest, VerifyCatchesWrongResults) {
  const Table table = GenerateTable(UniformSpec(200, 4, 0.2, 2, 97)).value();
  LyingIndex liar(table.num_rows());
  RangeQuery q;
  q.terms = {{0, {1, 4}}};
  q.semantics = MissingSemantics::kMatch;  // everything matches
  const Status status = VerifyAgainstOracle(liar, table, {q});
  EXPECT_EQ(status.code(), StatusCode::kInternal);
  EXPECT_NE(status.message().find("Liar"), std::string::npos);
}

TEST(ExecutorTest, ParallelMatchesSerial) {
  const Table table = GenerateTable(UniformSpec(2000, 10, 0.2, 6, 967)).value();
  const auto index = CreateIndex(IndexKind::kBitmapRange, table).value();
  WorkloadParams params;
  params.num_queries = 40;
  params.dims = 3;
  params.global_selectivity = 0.05;
  const auto queries = GenerateWorkload(table, params);
  ASSERT_TRUE(queries.ok());
  const auto serial = RunWorkload(*index, queries.value(), table.num_rows());
  ASSERT_TRUE(serial.ok());
  for (size_t threads : {1u, 2u, 4u, 0u}) {
    const auto parallel = RunWorkloadParallel(*index, queries.value(),
                                              table.num_rows(), threads);
    ASSERT_TRUE(parallel.ok());
    EXPECT_EQ(parallel->total_matches, serial->total_matches);
    EXPECT_EQ(parallel->num_queries, serial->num_queries);
    EXPECT_EQ(parallel->stats.bitvectors_accessed,
              serial->stats.bitvectors_accessed);
    EXPECT_NEAR(parallel->realized_selectivity, serial->realized_selectivity,
                1e-12);
  }
}

TEST(ExecutorTest, ParallelPropagatesErrors) {
  const Table table = GenerateTable(UniformSpec(100, 10, 0.2, 2, 969)).value();
  const auto index = CreateIndex(IndexKind::kBitmapEquality, table).value();
  RangeQuery bad;
  bad.terms = {{5, {1, 1}}};
  std::vector<RangeQuery> queries(8, bad);
  EXPECT_FALSE(
      RunWorkloadParallel(*index, queries, table.num_rows(), 3).ok());
}

TEST(ExecutorTest, ParallelEmptyWorkload) {
  const Table table = GenerateTable(UniformSpec(100, 10, 0.2, 2, 971)).value();
  const auto index = CreateIndex(IndexKind::kVaFile, table).value();
  const auto result = RunWorkloadParallel(*index, {}, table.num_rows(), 4);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->total_matches, 0u);
}

TEST(ExecutorTest, EmptyWorkload) {
  const Table table = GenerateTable(UniformSpec(100, 4, 0.2, 2, 99)).value();
  const auto index = CreateIndex(IndexKind::kVaFile, table).value();
  const auto result = RunWorkload(*index, {}, table.num_rows());
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->total_matches, 0u);
  EXPECT_DOUBLE_EQ(result->realized_selectivity, 0.0);
}

}  // namespace
}  // namespace incdb
