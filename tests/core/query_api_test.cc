#include <gtest/gtest.h>

#include "core/database.h"
#include "core/query_api.h"
#include "table/generator.h"

namespace incdb {
namespace {

Database MakeSmallDb() {
  auto db = Database::Create(Schema({{"rating", 5}, {"price", 10}})).value();
  EXPECT_TRUE(db.Insert({5, 7}).ok());
  EXPECT_TRUE(db.Insert({3, kMissingValue}).ok());
  EXPECT_TRUE(db.Insert({kMissingValue, 2}).ok());
  EXPECT_TRUE(db.Insert({4, 9}).ok());
  return db;
}

TEST(QueryApiTest, RunAnswersTermsWithRoutingAndSnapshotIdentity) {
  const Database db = MakeSmallDb();
  const auto result = db.Run(QueryRequest::Terms(
      {{"rating", 3, 5}, {"price", 1, 8}}, MissingSemantics::kMatch));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->row_ids, (std::vector<uint32_t>{0, 1, 2}));
  EXPECT_EQ(result->count, 3u);
  EXPECT_EQ(result->chosen_index, "SeqScan");
  EXPECT_EQ(result->routing.index_kind, IndexKind::kSequentialScan);
  EXPECT_FALSE(result->routing.is_point_query);
  EXPECT_GT(result->routing.estimated_cost, 0.0);
  EXPECT_GT(result->routing.estimated_selectivity, 0.0);
  EXPECT_LE(result->routing.estimated_selectivity, 1.0);
  // Four inserts after epoch 0.
  EXPECT_EQ(result->epoch, 4u);
  EXPECT_EQ(result->visible_rows, 4u);
}

TEST(QueryApiTest, RunRecordsRoutingDecisionPerQueryShape) {
  Database db = MakeSmallDb();
  ASSERT_TRUE(db.BuildIndex(IndexKind::kBitmapEquality).ok());
  ASSERT_TRUE(db.BuildIndex(IndexKind::kBitmapRange).ok());

  const auto point = db.Run(QueryRequest::Terms({{"rating", 3, 3}}));
  ASSERT_TRUE(point.ok());
  EXPECT_EQ(point->routing.index_kind, IndexKind::kBitmapEquality);
  EXPECT_TRUE(point->routing.is_point_query);

  const auto range = db.Run(QueryRequest::Terms({{"rating", 2, 4}}));
  ASSERT_TRUE(range.ok());
  EXPECT_EQ(range->routing.index_kind, IndexKind::kBitmapRange);
  EXPECT_FALSE(range->routing.is_point_query);
  // BRE reads fewer bitvectors than BEE would for this range: its predicted
  // cost must undercut the point plan's per-width cost model.
  EXPECT_GT(range->routing.estimated_cost, 0.0);
}

TEST(QueryApiTest, RunSurfacesQueryStatsFromTheServingIndex) {
  // Big enough that the WAH bitvectors hold finalized code words (below 31
  // rows everything sits in the tail word and words_touched is genuinely 0).
  Database db =
      Database::FromTable(GenerateTable(UniformSpec(200, 5, 0.2, 2, 311))
                              .value())
          .value();
  ASSERT_TRUE(db.BuildIndex(IndexKind::kBitmapEquality).ok());
  // A range over BEE runs the fused multi-operand kernel path, which fills
  // all three bitmap counters.
  const auto result = db.Run(QueryRequest::Terms({{"a0", 2, 4}}));
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->chosen_index, "BEE-WAH");
  // The legacy API dropped these on the floor; Run must surface them.
  EXPECT_GE(result->stats.bitvectors_accessed, 2u);
  EXPECT_GT(result->stats.bitvector_ops, 0u);
  EXPECT_GT(result->stats.words_touched, 0u);
}

TEST(QueryApiTest, CountOnlySkipsRowIdMaterialization) {
  Database db = MakeSmallDb();
  ASSERT_TRUE(db.BuildIndex(IndexKind::kBitmapEquality).ok());
  const auto counted =
      db.Run(QueryRequest::Terms({{"rating", 3, 3}}).CountOnly());
  ASSERT_TRUE(counted.ok());
  EXPECT_EQ(counted->count, 2u);  // rows 1 (=3) and 2 (missing).
  EXPECT_TRUE(counted->row_ids.empty());
  const auto full = db.Run(QueryRequest::Terms({{"rating", 3, 3}}));
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(full->count, counted->count);
  EXPECT_EQ(full->row_ids.size(), full->count);
}

TEST(QueryApiTest, CountOnlyAgreesWithMaterializedCountUnderDeltaAndDeletes) {
  Database db = MakeSmallDb();
  ASSERT_TRUE(db.BuildIndex(IndexKind::kBitmapEquality).ok());
  ASSERT_TRUE(db.Insert({3, 1}).ok());    // beyond index coverage
  ASSERT_TRUE(db.Delete(1).ok());         // rating=3 row
  const QueryRequest request = QueryRequest::Terms({{"rating", 3, 3}});
  const auto counted = db.Run(QueryRequest(request).CountOnly());
  const auto full = db.Run(request);
  ASSERT_TRUE(counted.ok());
  ASSERT_TRUE(full.ok());
  EXPECT_EQ(counted->count, full->count);
  EXPECT_EQ(full->count, 2u);  // rows 2 (missing) and 4 (delta insert).
}

TEST(QueryApiTest, ValidateAcceptsEveryWellFormedShape) {
  EXPECT_TRUE(QueryRequest::Terms({{"rating", 2, 4}}).Validate().ok());
  EXPECT_TRUE(QueryRequest::Expression(QueryExpr::MakeTerm(0, {1, 3}))
                  .Validate()
                  .ok());
  EXPECT_TRUE(QueryRequest::Text("rating >= 3").Validate().ok());
  EXPECT_TRUE(QueryRequest::Terms({{"rating", 2, 4}})
                  .CountOnly()
                  .DeadlineMillis(50)
                  .Validate()
                  .ok());
  EXPECT_TRUE(QueryRequest::Terms({{"rating", 2, 4}}).Limit(3).Validate().ok());
}

TEST(QueryApiTest, ValidateRejectsMalformedRequests) {
  // Empty predicate per shape.
  EXPECT_EQ(QueryRequest::Terms({}).Validate().code(),
            StatusCode::kInvalidArgument);
  QueryRequest no_expr;
  no_expr.shape = QueryRequest::Shape::kExpression;
  EXPECT_EQ(no_expr.Validate().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(QueryRequest::Text("").Validate().code(),
            StatusCode::kInvalidArgument);
  // Structural term defects.
  EXPECT_EQ(QueryRequest::Terms({{"", 1, 1}}).Validate().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(QueryRequest::Terms({{"rating", 4, 2}}).Validate().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(QueryRequest::Expression(QueryExpr::MakeTerm(0, {5, 2}))
                .Validate()
                .code(),
            StatusCode::kInvalidArgument);
  // Conflicting count/materialize flags.
  EXPECT_EQ(QueryRequest::Terms({{"rating", 1, 2}})
                .CountOnly()
                .Limit(10)
                .Validate()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(QueryApiTest, RunRejectsWhatValidateRejects) {
  // The planner calls Validate() itself, so a malformed request fails
  // before resolution no matter which entry point it came through.
  const Database db = MakeSmallDb();
  EXPECT_EQ(db.Run(QueryRequest::Terms({})).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(db.Run(QueryRequest::Terms({{"rating", 1, 1}})
                       .CountOnly()
                       .Limit(1))
                .status()
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(QueryApiTest, LimitTruncatesRowIdsButNotTheCount) {
  Database db = MakeSmallDb();
  const auto all = db.Run(QueryRequest::Terms({{"rating", 1, 5}}));
  ASSERT_TRUE(all.ok());
  ASSERT_GE(all->count, 3u);
  const auto limited = db.Run(QueryRequest::Terms({{"rating", 1, 5}}).Limit(2));
  ASSERT_TRUE(limited.ok());
  EXPECT_EQ(limited->count, all->count);
  ASSERT_EQ(limited->row_ids.size(), 2u);
  EXPECT_EQ(limited->row_ids[0], all->row_ids[0]);
  EXPECT_EQ(limited->row_ids[1], all->row_ids[1]);
}

TEST(QueryApiTest, RunRejectsBadRequests) {
  const Database db = MakeSmallDb();
  EXPECT_EQ(db.Run(QueryRequest::Terms({{"nope", 1, 1}})).status().code(),
            StatusCode::kNotFound);
  EXPECT_EQ(db.Run(QueryRequest::Terms({{"rating", 4, 2}})).status().code(),
            StatusCode::kInvalidArgument);
  EXPECT_EQ(db.Run(QueryRequest::Text("rating ><>< 3")).status().code(),
            StatusCode::kInvalidArgument);
  QueryRequest no_expr;
  no_expr.shape = QueryRequest::Shape::kExpression;
  EXPECT_FALSE(db.Run(no_expr).ok());
}

TEST(QueryApiTest, RunBatchPreservesRequestOrderAndAggregatesStats) {
  Database db = MakeSmallDb();
  ASSERT_TRUE(db.BuildIndex(IndexKind::kBitmapEquality).ok());

  std::vector<QueryRequest> requests;
  requests.push_back(QueryRequest::Terms({{"rating", 3, 3}}));
  requests.push_back(QueryRequest::Terms({{"nope", 1, 1}}));  // fails
  requests.push_back(QueryRequest::Text("price <= 7"));
  requests.push_back(
      QueryRequest::Terms({{"rating", 5, 5}}, MissingSemantics::kNoMatch)
          .CountOnly());

  const BatchResult batch = db.RunBatch(requests, 3);
  ASSERT_EQ(batch.results.size(), requests.size());
  EXPECT_EQ(batch.num_threads, 3u);

  ASSERT_TRUE(batch.results[0].ok());
  EXPECT_EQ(batch.results[0].value().row_ids, (std::vector<uint32_t>{1, 2}));
  EXPECT_EQ(batch.results[1].status().code(), StatusCode::kNotFound);
  ASSERT_TRUE(batch.results[2].ok());
  ASSERT_TRUE(batch.results[3].ok());
  EXPECT_EQ(batch.results[3].value().count, 1u);

  uint64_t expected_matches = 0;
  QueryStats expected_stats;
  for (const auto& result : batch.results) {
    if (!result.ok()) continue;
    expected_matches += result.value().count;
    expected_stats.MergeFrom(result.value().stats);
  }
  EXPECT_EQ(batch.total_matches, expected_matches);
  EXPECT_EQ(batch.stats.bitvectors_accessed,
            expected_stats.bitvectors_accessed);
  EXPECT_EQ(batch.stats.words_touched, expected_stats.words_touched);
  // All four requests were served by the same pinned epoch.
  for (const auto& result : batch.results) {
    if (!result.ok()) continue;
    EXPECT_EQ(result.value().epoch, batch.results[0].value().epoch);
  }
}

TEST(QueryApiTest, RunBatchMatchesSequentialRunOnALargerWorkload) {
  Database db =
      Database::FromTable(GenerateTable(UniformSpec(800, 7, 0.2, 4, 907))
                              .value())
          .value();
  ASSERT_TRUE(db.BuildIndex(IndexKind::kBitmapRange).ok());
  std::vector<QueryRequest> requests;
  for (int i = 0; i < 40; ++i) {
    const Value lo = static_cast<Value>(1 + i % 5);
    const Value hi = static_cast<Value>(lo + 2);
    requests.push_back(QueryRequest::Terms(
        {{"a" + std::to_string(i % 4), lo, hi}},
        i % 2 == 0 ? MissingSemantics::kMatch : MissingSemantics::kNoMatch));
  }
  const BatchResult batch = db.RunBatch(requests, 4);
  ASSERT_EQ(batch.results.size(), requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    const auto sequential = db.Run(requests[i]);
    ASSERT_TRUE(sequential.ok());
    ASSERT_TRUE(batch.results[i].ok());
    EXPECT_EQ(batch.results[i].value().row_ids, sequential->row_ids) << i;
  }
}

TEST(QueryApiTest, RunBatchOnEmptyRequestListIsANoOp) {
  const Database db = MakeSmallDb();
  const BatchResult batch = db.RunBatch({}, 8);
  EXPECT_TRUE(batch.results.empty());
  EXPECT_EQ(batch.total_matches, 0u);
}

}  // namespace
}  // namespace incdb
