#include "core/index_factory.h"

#include <gtest/gtest.h>

#include "table/generator.h"

namespace incdb {
namespace {

const IndexKind kAllKinds[] = {
    IndexKind::kSequentialScan,     IndexKind::kBitmapEquality,
    IndexKind::kBitmapRange,        IndexKind::kBitmapInterval,
    IndexKind::kBitmapBitSliced,    IndexKind::kVaFile,
    IndexKind::kVaPlusFile,         IndexKind::kMosaic,
    IndexKind::kBitstringAugmented,
};

TEST(IndexFactoryTest, CreatesEveryKind) {
  const Table table = GenerateTable(UniformSpec(200, 8, 0.2, 4, 81)).value();
  for (IndexKind kind : kAllKinds) {
    const auto index = CreateIndex(kind, table);
    ASSERT_TRUE(index.ok()) << IndexKindToString(kind);
    EXPECT_EQ(index.value()->Name(), IndexKindToString(kind));
  }
}

TEST(IndexFactoryTest, IndexesAnswerAQuery) {
  const Table table = GenerateTable(UniformSpec(200, 8, 0.2, 4, 83)).value();
  RangeQuery q;
  q.terms = {{0, {2, 5}}, {1, {1, 4}}};
  q.semantics = MissingSemantics::kMatch;
  uint64_t expected = 0;
  bool first = true;
  for (IndexKind kind : kAllKinds) {
    const auto index = CreateIndex(kind, table).value();
    const auto result = index->Execute(q);
    ASSERT_TRUE(result.ok()) << index->Name();
    if (first) {
      expected = result.value().Count();
      first = false;
    } else {
      EXPECT_EQ(result.value().Count(), expected) << index->Name();
    }
  }
}

TEST(IndexFactoryTest, ScanHasZeroSizeOthersPositive) {
  const Table table = GenerateTable(UniformSpec(200, 8, 0.2, 4, 85)).value();
  EXPECT_EQ(
      CreateIndex(IndexKind::kSequentialScan, table).value()->SizeInBytes(),
      0u);
  for (IndexKind kind : {IndexKind::kBitmapEquality, IndexKind::kBitmapRange,
                         IndexKind::kBitmapInterval,
                         IndexKind::kBitmapBitSliced,
                         IndexKind::kVaFile, IndexKind::kMosaic,
                         IndexKind::kBitstringAugmented}) {
    EXPECT_GT(CreateIndex(kind, table).value()->SizeInBytes(), 0u)
        << IndexKindToString(kind);
  }
}

TEST(IndexFactoryTest, PropagatesBuildFailures) {
  auto empty = Table::Create(Schema({{"x", 5}})).value();
  EXPECT_FALSE(CreateIndex(IndexKind::kBitmapEquality, empty).ok());
  EXPECT_FALSE(CreateIndex(IndexKind::kVaFile, empty).ok());
  EXPECT_FALSE(CreateIndex(IndexKind::kMosaic, empty).ok());
}

TEST(IndexKindTest, Names) {
  EXPECT_EQ(IndexKindToString(IndexKind::kBitmapEquality), "BEE-WAH");
  EXPECT_EQ(IndexKindToString(IndexKind::kVaPlusFile), "VA+-File");
}

}  // namespace
}  // namespace incdb
