// Text-query path through the Database facade: parse → route → execute →
// deletion mask, against hand-checked fixtures.

#include <gtest/gtest.h>

#include "core/database.h"

namespace incdb {
namespace {

Database MakeDb() {
  Database db =
      Database::Create(Schema({{"rating", 5}, {"price", 10}})).value();
  EXPECT_TRUE(db.Insert({5, 7}).ok());                        // row 0
  EXPECT_TRUE(db.Insert({3, kMissingValue}).ok());            // row 1
  EXPECT_TRUE(db.Insert({kMissingValue, 2}).ok());            // row 2
  EXPECT_TRUE(db.Insert({4, 9}).ok());                        // row 3
  EXPECT_TRUE(db.Insert({2, 2}).ok());                        // row 4
  return db;
}

TEST(DatabaseTextTest, SimpleConjunction) {
  const Database db = MakeDb();
  const auto certain = db.Run(QueryRequest::Text(
      "rating >= 3 AND price <= 7", MissingSemantics::kNoMatch));
  ASSERT_TRUE(certain.ok()) << certain.status().ToString();
  EXPECT_EQ(certain->row_ids, (std::vector<uint32_t>{0}));
  const auto possible = db.Run(QueryRequest::Text(
      "rating >= 3 AND price <= 7", MissingSemantics::kMatch));
  ASSERT_TRUE(possible.ok());
  EXPECT_EQ(possible->row_ids, (std::vector<uint32_t>{0, 1, 2}));
}

TEST(DatabaseTextTest, NegationAndDisjunction) {
  const Database db = MakeDb();
  const auto rows = db.Run(QueryRequest::Text(
      "NOT rating >= 3 OR price = 9", MissingSemantics::kNoMatch));
  ASSERT_TRUE(rows.ok());
  // row 3 (price 9), row 4 (rating 2). Row 2's rating is missing → unknown.
  EXPECT_EQ(rows->row_ids, (std::vector<uint32_t>{3, 4}));
}

TEST(DatabaseTextTest, RoutesThroughIndexWhenPresent) {
  Database db = MakeDb();
  ASSERT_TRUE(db.BuildIndex(IndexKind::kBitmapEquality).ok());
  const auto rows = db.Run(
      QueryRequest::Text("rating IN [2,4]", MissingSemantics::kMatch));
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows->chosen_index, "BEE-WAH");
  EXPECT_EQ(rows->row_ids, (std::vector<uint32_t>{1, 2, 3, 4}));
}

TEST(DatabaseTextTest, RespectsDeletes) {
  Database db = MakeDb();
  ASSERT_TRUE(db.Delete(4).ok());
  const auto rows = db.Run(
      QueryRequest::Text("rating <= 2", MissingSemantics::kNoMatch));
  ASSERT_TRUE(rows.ok());
  EXPECT_TRUE(rows->row_ids.empty());
}

TEST(DatabaseTextTest, ParseErrorsSurface) {
  const Database db = MakeDb();
  const auto bad = db.Run(
      QueryRequest::Text("rating <=> 2", MissingSemantics::kMatch));
  EXPECT_EQ(bad.status().code(), StatusCode::kInvalidArgument);
  const auto unknown = db.Run(
      QueryRequest::Text("ratings = 2", MissingSemantics::kMatch));
  EXPECT_FALSE(unknown.ok());
}

}  // namespace
}  // namespace incdb
