#include "core/database.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "table/csv.h"
#include "table/generator.h"

namespace incdb {
namespace {

Database MakeSmallDb() {
  auto db = Database::Create(Schema({{"rating", 5}, {"price", 10}})).value();
  EXPECT_TRUE(db.Insert({5, 7}).ok());
  EXPECT_TRUE(db.Insert({3, kMissingValue}).ok());
  EXPECT_TRUE(db.Insert({kMissingValue, 2}).ok());
  EXPECT_TRUE(db.Insert({4, 9}).ok());
  return db;
}

TEST(DatabaseTest, QueryWithoutIndexesFallsBackToScan) {
  const Database db = MakeSmallDb();
  const auto result = db.Run(QueryRequest::Terms(
      {{"rating", 3, 5}, {"price", 1, 8}}, MissingSemantics::kMatch));
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(result->row_ids, (std::vector<uint32_t>{0, 1, 2}));
  EXPECT_EQ(result->chosen_index, "SeqScan");
}

TEST(DatabaseTest, QueryRejectsUnknownAttributeAndBadInterval) {
  const Database db = MakeSmallDb();
  const auto run = [&db](const char* attribute, Value lo, Value hi) {
    return db
        .Run(QueryRequest::Terms({{attribute, lo, hi}},
                                 MissingSemantics::kMatch))
        .status()
        .code();
  };
  EXPECT_EQ(run("nope", 1, 1), StatusCode::kNotFound);
  EXPECT_EQ(run("rating", 1, 9), StatusCode::kInvalidArgument);
  EXPECT_EQ(run("rating", 4, 2), StatusCode::kInvalidArgument);
}

TEST(DatabaseTest, RoutingPrefersBeeForPointsAndBreForRanges) {
  Database db = MakeSmallDb();
  ASSERT_TRUE(db.BuildIndex(IndexKind::kBitmapEquality).ok());
  ASSERT_TRUE(db.BuildIndex(IndexKind::kBitmapRange).ok());
  const auto point = db.Run(QueryRequest::Terms({{"rating", 3, 3}}));
  ASSERT_TRUE(point.ok());
  EXPECT_EQ(point->chosen_index, "BEE-WAH");  // point query → equality
  const auto range = db.Run(QueryRequest::Terms({{"rating", 2, 4}}));
  ASSERT_TRUE(range.ok());
  EXPECT_EQ(range->chosen_index, "BRE-WAH");  // range query → range encoding
}

TEST(DatabaseTest, RoutingFallsDownThePreferenceList) {
  Database db = MakeSmallDb();
  ASSERT_TRUE(db.BuildIndex(IndexKind::kVaFile).ok());
  const auto via_va = db.Run(QueryRequest::Terms({{"rating", 2, 4}}));
  ASSERT_TRUE(via_va.ok());
  EXPECT_EQ(via_va->chosen_index, "VA-File");
  ASSERT_TRUE(db.BuildIndex(IndexKind::kBitmapInterval).ok());
  const auto via_bie = db.Run(QueryRequest::Terms({{"rating", 2, 4}}));
  ASSERT_TRUE(via_bie.ok());
  EXPECT_EQ(via_bie->chosen_index, "BIE-WAH");
}

TEST(DatabaseTest, InsertKeepsIndexesInSync) {
  Database db = MakeSmallDb();
  ASSERT_TRUE(db.BuildIndex(IndexKind::kBitmapEquality).ok());
  ASSERT_TRUE(db.BuildIndex(IndexKind::kVaFile).ok());
  ASSERT_TRUE(db.BuildIndex(IndexKind::kMosaic).ok());
  ASSERT_TRUE(db.Insert({2, 2}).ok());
  ASSERT_TRUE(db.Insert({kMissingValue, kMissingValue}).ok());
  EXPECT_EQ(db.num_rows(), 6u);
  // All routes agree with the scan after inserts: verify the routed answer
  // against a scan-only twin.
  const QueryRequest request = QueryRequest::Terms(
      {{"rating", 2, 3}, {"price", 1, 5}}, MissingSemantics::kMatch);
  const auto expected = db.Run(request);
  ASSERT_TRUE(expected.ok());
  Database scan_only = MakeSmallDb();
  ASSERT_TRUE(scan_only.Insert({2, 2}).ok());
  ASSERT_TRUE(scan_only.Insert({kMissingValue, kMissingValue}).ok());
  const auto via_scan = scan_only.Run(request);
  ASSERT_TRUE(via_scan.ok());
  EXPECT_EQ(expected->row_ids, via_scan->row_ids);
}

TEST(DatabaseTest, BuildIndexValidation) {
  auto empty = Database::Create(Schema({{"x", 3}})).value();
  EXPECT_FALSE(empty.BuildIndex(IndexKind::kBitmapEquality).ok());
  EXPECT_FALSE(empty.BuildIndex(IndexKind::kSequentialScan).ok());

  Database db = MakeSmallDb();
  EXPECT_FALSE(db.HasIndex(IndexKind::kBitmapRange));
  ASSERT_TRUE(db.BuildIndex(IndexKind::kBitmapRange).ok());
  EXPECT_TRUE(db.HasIndex(IndexKind::kBitmapRange));
  EXPECT_GT(db.IndexSizeInBytes(), 0u);
  EXPECT_TRUE(db.DropIndex(IndexKind::kBitmapRange).ok());
  EXPECT_EQ(db.DropIndex(IndexKind::kBitmapRange).code(),
            StatusCode::kNotFound);
}

TEST(DatabaseTest, QueryExpressionRoutesAndAnswers) {
  Database db = MakeSmallDb();
  ASSERT_TRUE(db.BuildIndex(IndexKind::kBitmapRange).ok());
  // rating in [3,5] AND NOT price in [8,10]
  const QueryExpr expr = QueryExpr::MakeAnd(
      {QueryExpr::MakeTerm(0, {3, 5}),
       QueryExpr::MakeNot(QueryExpr::MakeTerm(1, {8, 10}))});
  const auto possible =
      db.Run(QueryRequest::Expression(expr, MissingSemantics::kMatch));
  ASSERT_TRUE(possible.ok());
  EXPECT_EQ(possible->chosen_index, "BRE-WAH");
  // rows: 0 (5,7 → T∧T), 1 (3,? → T∧U=U → possible), 2 (?,2 → U∧T=U).
  EXPECT_EQ(possible->row_ids, (std::vector<uint32_t>{0, 1, 2}));
  const auto certain =
      db.Run(QueryRequest::Expression(expr, MissingSemantics::kNoMatch));
  ASSERT_TRUE(certain.ok());
  EXPECT_EQ(certain->row_ids, (std::vector<uint32_t>{0}));
}

TEST(DatabaseTest, FromCsvRoundTrip) {
  const Table table = GenerateTable(UniformSpec(100, 6, 0.2, 3, 701)).value();
  const std::string path = ::testing::TempDir() + "/db_roundtrip.csv";
  ASSERT_TRUE(WriteCsv(table, path).ok());
  auto db = Database::FromCsv(path);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->num_rows(), 100u);
  ASSERT_TRUE(db->BuildIndex(IndexKind::kBitmapEquality).ok());
  const auto rows = db->Run(
      QueryRequest::Terms({{"a0", 1, 3}}, MissingSemantics::kNoMatch));
  EXPECT_TRUE(rows.ok());
  std::remove(path.c_str());
}

TEST(DatabaseTest, LargeRandomizedConsistencyAcrossRouting) {
  const Table table = GenerateTable(UniformSpec(2000, 9, 0.25, 4, 703)).value();
  Database db = Database::FromTable(std::move(table)).value();
  for (IndexKind kind :
       {IndexKind::kBitmapEquality, IndexKind::kBitmapRange,
        IndexKind::kBitmapInterval, IndexKind::kVaFile}) {
    ASSERT_TRUE(db.BuildIndex(kind).ok());
  }
  // Insert extra rows through the facade, then compare routed answers with
  // a scan-only twin.
  Database twin = Database::FromTable(
                      GenerateTable(UniformSpec(2000, 9, 0.25, 4, 703)).value())
                      .value();
  for (int i = 0; i < 50; ++i) {
    const std::vector<Value> row = {
        static_cast<Value>(1 + i % 9), kMissingValue,
        static_cast<Value>(1 + (i * 5) % 9), static_cast<Value>(1 + i % 3)};
    ASSERT_TRUE(db.Insert(row).ok());
    ASSERT_TRUE(twin.Insert(row).ok());
  }
  for (MissingSemantics semantics :
       {MissingSemantics::kMatch, MissingSemantics::kNoMatch}) {
    const QueryRequest request =
        QueryRequest::Terms({{"a0", 2, 6}, {"a2", 1, 4}}, semantics);
    const auto routed = db.Run(request);
    const auto scanned = twin.Run(request);
    ASSERT_TRUE(routed.ok());
    ASSERT_TRUE(scanned.ok());
    EXPECT_EQ(routed->row_ids, scanned->row_ids);
  }
}

}  // namespace
}  // namespace incdb
