#include "core/database.h"

#include <gtest/gtest.h>

#include <cstdio>

#include "table/csv.h"
#include "table/generator.h"

namespace incdb {
namespace {

Database MakeSmallDb() {
  auto db = Database::Create(Schema({{"rating", 5}, {"price", 10}})).value();
  EXPECT_TRUE(db.Insert({5, 7}).ok());
  EXPECT_TRUE(db.Insert({3, kMissingValue}).ok());
  EXPECT_TRUE(db.Insert({kMissingValue, 2}).ok());
  EXPECT_TRUE(db.Insert({4, 9}).ok());
  return db;
}

TEST(DatabaseTest, QueryWithoutIndexesFallsBackToScan) {
  const Database db = MakeSmallDb();
  std::string chosen;
  const auto rows = db.Query({{"rating", 3, 5}, {"price", 1, 8}},
                             MissingSemantics::kMatch, &chosen);
  ASSERT_TRUE(rows.ok()) << rows.status().ToString();
  EXPECT_EQ(rows.value(), (std::vector<uint32_t>{0, 1, 2}));
  EXPECT_EQ(chosen, "SeqScan");
}

TEST(DatabaseTest, QueryRejectsUnknownAttributeAndBadInterval) {
  const Database db = MakeSmallDb();
  EXPECT_EQ(
      db.Query({{"nope", 1, 1}}, MissingSemantics::kMatch).status().code(),
      StatusCode::kNotFound);
  EXPECT_EQ(
      db.Query({{"rating", 1, 9}}, MissingSemantics::kMatch).status().code(),
      StatusCode::kInvalidArgument);
  EXPECT_EQ(
      db.Query({{"rating", 4, 2}}, MissingSemantics::kMatch).status().code(),
      StatusCode::kInvalidArgument);
}

TEST(DatabaseTest, RoutingPrefersBeeForPointsAndBreForRanges) {
  Database db = MakeSmallDb();
  ASSERT_TRUE(db.BuildIndex(IndexKind::kBitmapEquality).ok());
  ASSERT_TRUE(db.BuildIndex(IndexKind::kBitmapRange).ok());
  std::string chosen;
  ASSERT_TRUE(
      db.Query({{"rating", 3, 3}}, MissingSemantics::kMatch, &chosen).ok());
  EXPECT_EQ(chosen, "BEE-WAH");  // point query → equality encoding
  ASSERT_TRUE(
      db.Query({{"rating", 2, 4}}, MissingSemantics::kMatch, &chosen).ok());
  EXPECT_EQ(chosen, "BRE-WAH");  // range query → range encoding
}

TEST(DatabaseTest, RoutingFallsDownThePreferenceList) {
  Database db = MakeSmallDb();
  ASSERT_TRUE(db.BuildIndex(IndexKind::kVaFile).ok());
  std::string chosen;
  ASSERT_TRUE(
      db.Query({{"rating", 2, 4}}, MissingSemantics::kMatch, &chosen).ok());
  EXPECT_EQ(chosen, "VA-File");
  ASSERT_TRUE(db.BuildIndex(IndexKind::kBitmapInterval).ok());
  ASSERT_TRUE(
      db.Query({{"rating", 2, 4}}, MissingSemantics::kMatch, &chosen).ok());
  EXPECT_EQ(chosen, "BIE-WAH");
}

TEST(DatabaseTest, InsertKeepsIndexesInSync) {
  Database db = MakeSmallDb();
  ASSERT_TRUE(db.BuildIndex(IndexKind::kBitmapEquality).ok());
  ASSERT_TRUE(db.BuildIndex(IndexKind::kVaFile).ok());
  ASSERT_TRUE(db.BuildIndex(IndexKind::kMosaic).ok());
  ASSERT_TRUE(db.Insert({2, 2}).ok());
  ASSERT_TRUE(db.Insert({kMissingValue, kMissingValue}).ok());
  EXPECT_EQ(db.num_rows(), 6u);
  // All routes agree with the scan after inserts.
  const auto expected =
      db.Query({{"rating", 2, 3}, {"price", 1, 5}}, MissingSemantics::kMatch);
  ASSERT_TRUE(expected.ok());
  for (IndexKind kind : db.Indexes()) {
    // Force each index by dropping the better-preferred ones one at a time
    // is fiddly; instead verify the scan agrees with the routed answer.
    (void)kind;
  }
  Database scan_only = MakeSmallDb();
  ASSERT_TRUE(scan_only.Insert({2, 2}).ok());
  ASSERT_TRUE(scan_only.Insert({kMissingValue, kMissingValue}).ok());
  const auto via_scan = scan_only.Query({{"rating", 2, 3}, {"price", 1, 5}},
                                        MissingSemantics::kMatch);
  ASSERT_TRUE(via_scan.ok());
  EXPECT_EQ(expected.value(), via_scan.value());
}

TEST(DatabaseTest, BuildIndexValidation) {
  auto empty = Database::Create(Schema({{"x", 3}})).value();
  EXPECT_FALSE(empty.BuildIndex(IndexKind::kBitmapEquality).ok());
  EXPECT_FALSE(empty.BuildIndex(IndexKind::kSequentialScan).ok());

  Database db = MakeSmallDb();
  EXPECT_FALSE(db.HasIndex(IndexKind::kBitmapRange));
  ASSERT_TRUE(db.BuildIndex(IndexKind::kBitmapRange).ok());
  EXPECT_TRUE(db.HasIndex(IndexKind::kBitmapRange));
  EXPECT_GT(db.IndexSizeInBytes(), 0u);
  EXPECT_TRUE(db.DropIndex(IndexKind::kBitmapRange).ok());
  EXPECT_EQ(db.DropIndex(IndexKind::kBitmapRange).code(),
            StatusCode::kNotFound);
}

TEST(DatabaseTest, QueryExpressionRoutesAndAnswers) {
  Database db = MakeSmallDb();
  ASSERT_TRUE(db.BuildIndex(IndexKind::kBitmapRange).ok());
  // rating in [3,5] AND NOT price in [8,10]
  const QueryExpr expr = QueryExpr::MakeAnd(
      {QueryExpr::MakeTerm(0, {3, 5}),
       QueryExpr::MakeNot(QueryExpr::MakeTerm(1, {8, 10}))});
  std::string chosen;
  const auto possible =
      db.QueryExpression(expr, MissingSemantics::kMatch, &chosen);
  ASSERT_TRUE(possible.ok());
  EXPECT_EQ(chosen, "BRE-WAH");
  // rows: 0 (5,7 → T∧T), 1 (3,? → T∧U=U → possible), 2 (?,2 → U∧T=U).
  EXPECT_EQ(possible.value(), (std::vector<uint32_t>{0, 1, 2}));
  const auto certain = db.QueryExpression(expr, MissingSemantics::kNoMatch);
  ASSERT_TRUE(certain.ok());
  EXPECT_EQ(certain.value(), (std::vector<uint32_t>{0}));
}

TEST(DatabaseTest, FromCsvRoundTrip) {
  const Table table = GenerateTable(UniformSpec(100, 6, 0.2, 3, 701)).value();
  const std::string path = ::testing::TempDir() + "/db_roundtrip.csv";
  ASSERT_TRUE(WriteCsv(table, path).ok());
  auto db = Database::FromCsv(path);
  ASSERT_TRUE(db.ok());
  EXPECT_EQ(db->num_rows(), 100u);
  ASSERT_TRUE(db->BuildIndex(IndexKind::kBitmapEquality).ok());
  const auto rows = db->Query({{"a0", 1, 3}}, MissingSemantics::kNoMatch);
  EXPECT_TRUE(rows.ok());
  std::remove(path.c_str());
}

TEST(DatabaseTest, LargeRandomizedConsistencyAcrossRouting) {
  const Table table = GenerateTable(UniformSpec(2000, 9, 0.25, 4, 703)).value();
  Database db = Database::FromTable(std::move(table)).value();
  for (IndexKind kind :
       {IndexKind::kBitmapEquality, IndexKind::kBitmapRange,
        IndexKind::kBitmapInterval, IndexKind::kVaFile}) {
    ASSERT_TRUE(db.BuildIndex(kind).ok());
  }
  // Insert extra rows through the facade, then compare routed answers with
  // a scan-only twin.
  Database twin = Database::FromTable(
                      GenerateTable(UniformSpec(2000, 9, 0.25, 4, 703)).value())
                      .value();
  for (int i = 0; i < 50; ++i) {
    const std::vector<Value> row = {
        static_cast<Value>(1 + i % 9), kMissingValue,
        static_cast<Value>(1 + (i * 5) % 9), static_cast<Value>(1 + i % 3)};
    ASSERT_TRUE(db.Insert(row).ok());
    ASSERT_TRUE(twin.Insert(row).ok());
  }
  for (MissingSemantics semantics :
       {MissingSemantics::kMatch, MissingSemantics::kNoMatch}) {
    const std::vector<NamedTerm> terms = {{"a0", 2, 6}, {"a2", 1, 4}};
    const auto routed = db.Query(terms, semantics);
    const auto scanned = twin.Query(terms, semantics);
    ASSERT_TRUE(routed.ok());
    ASSERT_TRUE(scanned.ok());
    EXPECT_EQ(routed.value(), scanned.value());
  }
}

}  // namespace
}  // namespace incdb
