// Index advisor: predicted sizes must track the real indexes, and the
// recommendations must reproduce the paper's guidance (BEE for points,
// BRE for ranges, small indexes under tight memory budgets).

#include "core/advisor.h"

#include <gtest/gtest.h>

#include "core/executor.h"
#include "query/workload.h"
#include "table/generator.h"

namespace incdb {
namespace {

TEST(AdvisorTest, SizePredictionsTrackRealSizesOnUniformData) {
  const Table table = GenerateTable(UniformSpec(20000, 20, 0.2, 6, 921)).value();
  const IndexAdvisor advisor(table);
  WorkloadProfile profile;
  for (IndexKind kind :
       {IndexKind::kBitmapEquality, IndexKind::kBitmapRange,
        IndexKind::kBitmapInterval, IndexKind::kBitmapBitSliced,
        IndexKind::kVaFile}) {
    const double predicted = advisor.Estimate(kind, profile).size_bytes;
    const double actual = static_cast<double>(
        CreateIndex(kind, table).value()->SizeInBytes());
    EXPECT_NEAR(predicted / actual, 1.0, 0.45) << IndexKindToString(kind);
  }
}

TEST(AdvisorTest, SizePredictionsTrackRealSizesOnSkewedData) {
  DatasetSpec spec = UniformSpec(20000, 50, 0.3, 4, 923);
  for (auto& attr : spec.attributes) attr.zipf_theta = 1.2;
  const Table table = GenerateTable(spec).value();
  const IndexAdvisor advisor(table);
  WorkloadProfile profile;
  // The histogram-driven model must see the skew: equality bitmaps of rare
  // values compress, so predicted BEE size must drop well below verbatim.
  const double predicted_bee =
      advisor.Estimate(IndexKind::kBitmapEquality, profile).size_bytes;
  const double actual_bee = static_cast<double>(
      CreateIndex(IndexKind::kBitmapEquality, table).value()->SizeInBytes());
  EXPECT_NEAR(predicted_bee / actual_bee, 1.0, 0.5);
}

TEST(AdvisorTest, ScanAlwaysQualifiesAndHasZeroSize) {
  const Table table = GenerateTable(UniformSpec(500, 10, 0.1, 3, 925)).value();
  const IndexAdvisor advisor(table);
  WorkloadProfile profile;
  const auto ranked = advisor.Rank(profile, /*memory_budget_bytes=*/0.0);
  ASSERT_EQ(ranked.size(), 1u);
  EXPECT_EQ(ranked.front().kind, IndexKind::kSequentialScan);
  EXPECT_DOUBLE_EQ(ranked.front().size_bytes, 0.0);
}

TEST(AdvisorTest, RecommendsBitmapOverScanAtScale) {
  const Table table = GenerateTable(UniformSpec(50000, 10, 0.2, 8, 927)).value();
  const IndexAdvisor advisor(table);
  WorkloadProfile profile;
  profile.dims = 4;
  profile.attribute_selectivity = 0.2;
  const IndexKind pick = advisor.Recommend(profile);
  EXPECT_TRUE(pick == IndexKind::kBitmapRange ||
              pick == IndexKind::kBitmapInterval ||
              pick == IndexKind::kBitmapEquality)
      << IndexKindToString(pick);
}

TEST(AdvisorTest, RangeQueriesPreferRangeFamilyOverEquality) {
  // Paper §5.3/§6: BRE (and BIE) beat BEE for wide ranges on
  // mid-cardinality attributes.
  const Table table = GenerateTable(UniformSpec(50000, 50, 0.1, 6, 929)).value();
  const IndexAdvisor advisor(table);
  WorkloadProfile range_profile;
  range_profile.attribute_selectivity = 0.4;
  range_profile.dims = 4;
  const double bee =
      advisor.Estimate(IndexKind::kBitmapEquality, range_profile).query_cost;
  const double bre =
      advisor.Estimate(IndexKind::kBitmapRange, range_profile).query_cost;
  const double bie =
      advisor.Estimate(IndexKind::kBitmapInterval, range_profile).query_cost;
  EXPECT_LT(bre, bee);
  EXPECT_LT(bie, bee);
}

TEST(AdvisorTest, PointQueriesRateEqualityWell) {
  const Table table = GenerateTable(UniformSpec(50000, 50, 0.1, 6, 931)).value();
  const IndexAdvisor advisor(table);
  WorkloadProfile point_profile;
  point_profile.point_queries = true;
  point_profile.dims = 4;
  const double bee =
      advisor.Estimate(IndexKind::kBitmapEquality, point_profile).query_cost;
  const double bsl =
      advisor.Estimate(IndexKind::kBitmapBitSliced, point_profile).query_cost;
  const double va =
      advisor.Estimate(IndexKind::kVaFile, point_profile).query_cost;
  EXPECT_LT(bee, bsl);
  EXPECT_LT(bee, va);
}

TEST(AdvisorTest, TightMemoryBudgetFallsBackToSmallIndexes) {
  const Table table =
      GenerateTable(UniformSpec(50000, 100, 0.1, 6, 933)).value();
  const IndexAdvisor advisor(table);
  WorkloadProfile profile;
  profile.attribute_selectivity = 0.2;
  // Budget below the bitmap sizes but above BSL/VA.
  const double bsl_size =
      advisor.Estimate(IndexKind::kBitmapBitSliced, profile).size_bytes;
  const double va_size =
      advisor.Estimate(IndexKind::kVaFile, profile).size_bytes;
  const double budget = std::max(bsl_size, va_size) * 1.1;
  const IndexKind pick = advisor.Recommend(profile, budget);
  EXPECT_TRUE(pick == IndexKind::kBitmapBitSliced ||
              pick == IndexKind::kVaFile)
      << IndexKindToString(pick);
  for (const IndexCostEstimate& estimate : advisor.Rank(profile, budget)) {
    EXPECT_LE(estimate.size_bytes, budget);
  }
}

TEST(AdvisorTest, BitstringAugmentedCostExplodesWithDims) {
  const Table table = GenerateTable(UniformSpec(5000, 10, 0.2, 12, 935)).value();
  const IndexAdvisor advisor(table);
  WorkloadProfile low;
  low.dims = 2;
  WorkloadProfile high;
  high.dims = 10;
  const double cost_low =
      advisor.Estimate(IndexKind::kBitstringAugmented, low).query_cost;
  const double cost_high =
      advisor.Estimate(IndexKind::kBitstringAugmented, high).query_cost;
  EXPECT_GT(cost_high, 50.0 * cost_low);  // ~2^8 growth expected
}

// End-to-end sanity: for a range-heavy workload the advisor's top bitmap
// pick must actually beat the scan, measured.
TEST(AdvisorTest, RecommendationBeatsScanInPractice) {
  const Table table = GenerateTable(UniformSpec(30000, 20, 0.2, 6, 937)).value();
  const IndexAdvisor advisor(table);
  WorkloadProfile profile;
  profile.dims = 4;
  profile.attribute_selectivity = 0.15;
  const IndexKind pick = advisor.Recommend(profile);
  ASSERT_NE(pick, IndexKind::kSequentialScan);

  WorkloadParams params;
  params.num_queries = 30;
  params.dims = 4;
  params.attribute_selectivity = 0.15;
  const auto queries = GenerateWorkload(table, params);
  ASSERT_TRUE(queries.ok());
  const auto picked = CreateIndex(pick, table).value();
  const auto scan = CreateIndex(IndexKind::kSequentialScan, table).value();
  const double picked_ms =
      RunWorkload(*picked, queries.value(), table.num_rows())->total_millis;
  const double scan_ms =
      RunWorkload(*scan, queries.value(), table.num_rows())->total_millis;
  EXPECT_LT(picked_ms, scan_ms);
}

}  // namespace
}  // namespace incdb
