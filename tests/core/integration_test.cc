// Cross-module integration: every index kind, over datasets spanning the
// paper's parameter space (including a census-like skewed slice), must
// produce byte-identical results to the sequential-scan oracle under both
// query semantics — the system-level statement of DESIGN.md invariant 1.

#include <gtest/gtest.h>

#include "core/executor.h"
#include "core/index_factory.h"
#include "query/workload.h"
#include "table/generator.h"

namespace incdb {
namespace {

struct IntegrationCase {
  IndexKind kind;
  MissingSemantics semantics;
};

class AllIndexesOracleTest : public ::testing::TestWithParam<IntegrationCase> {
};

TEST_P(AllIndexesOracleTest, UniformDataset) {
  const auto& [kind, semantics] = GetParam();
  const Table table = GenerateTable(UniformSpec(1200, 12, 0.3, 5, 101)).value();
  const auto index = CreateIndex(kind, table).value();
  WorkloadParams params;
  params.num_queries = 20;
  params.dims = 3;
  params.global_selectivity = 0.03;
  params.semantics = semantics;
  const auto queries = GenerateWorkload(table, params);
  ASSERT_TRUE(queries.ok());
  EXPECT_TRUE(VerifyAgainstOracle(*index, table, queries.value()).ok());
}

TEST_P(AllIndexesOracleTest, MixedCardinalitiesAndMissingRates) {
  const auto& [kind, semantics] = GetParam();
  DatasetSpec spec;
  spec.num_rows = 800;
  spec.seed = 103;
  spec.attributes = {
      {"binary", 2, 0.0, 0.0},  {"tiny", 3, 0.5, 0.0},
      {"mid", 17, 0.2, 0.0},    {"skewed", 40, 0.3, 1.2},
      {"wide", 101, 0.1, 0.0},  {"mostly_missing", 9, 0.9, 0.0},
  };
  const Table table = GenerateTable(spec).value();
  const auto index = CreateIndex(kind, table).value();
  WorkloadParams params;
  params.num_queries = 25;
  params.dims = 4;
  params.global_selectivity = 0.05;
  params.semantics = semantics;
  params.seed = 11;
  const auto queries = GenerateWorkload(table, params);
  ASSERT_TRUE(queries.ok());
  EXPECT_TRUE(VerifyAgainstOracle(*index, table, queries.value()).ok());
}

std::vector<IntegrationCase> AllCases() {
  std::vector<IntegrationCase> cases;
  for (IndexKind kind :
       {IndexKind::kSequentialScan, IndexKind::kBitmapEquality,
        IndexKind::kBitmapRange, IndexKind::kBitmapInterval,
        IndexKind::kBitmapBitSliced, IndexKind::kVaFile,
        IndexKind::kVaPlusFile, IndexKind::kMosaic,
        IndexKind::kBitstringAugmented}) {
    for (MissingSemantics semantics :
         {MissingSemantics::kMatch, MissingSemantics::kNoMatch}) {
      cases.push_back({kind, semantics});
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(AllKinds, AllIndexesOracleTest,
                         ::testing::ValuesIn(AllCases()));

// The scalable index families (no R-tree substrate) on a census-like slice:
// heavier rows, skew, extreme missing rates.
TEST(CensusLikeIntegrationTest, ScalableIndexesAgreeWithOracle) {
  const Table table = GenerateTable(CensusLikeSpec(3000, 107)).value();
  for (IndexKind kind :
       {IndexKind::kBitmapEquality, IndexKind::kBitmapRange,
        IndexKind::kBitmapInterval, IndexKind::kBitmapBitSliced,
        IndexKind::kVaFile, IndexKind::kVaPlusFile}) {
    const auto index = CreateIndex(kind, table).value();
    for (MissingSemantics semantics :
         {MissingSemantics::kMatch, MissingSemantics::kNoMatch}) {
      WorkloadParams params;
      params.num_queries = 15;
      params.dims = 6;
      params.attribute_selectivity = 0.2;  // the paper's census workload
      params.semantics = semantics;
      params.seed = 13;
      const auto queries = GenerateWorkload(table, params);
      ASSERT_TRUE(queries.ok());
      EXPECT_TRUE(VerifyAgainstOracle(*index, table, queries.value()).ok())
          << IndexKindToString(kind);
    }
  }
}

// High-dimensional search keys: the paper's scalability claim. 20-dim
// queries must stay exact for bitmaps and VA-files.
TEST(HighDimensionalIntegrationTest, TwentyDimensionalQueries) {
  const Table table = GenerateTable(UniformSpec(600, 6, 0.25, 24, 109)).value();
  for (IndexKind kind :
       {IndexKind::kBitmapEquality, IndexKind::kBitmapRange,
        IndexKind::kBitmapInterval, IndexKind::kBitmapBitSliced,
        IndexKind::kVaFile}) {
    const auto index = CreateIndex(kind, table).value();
    WorkloadParams params;
    params.num_queries = 10;
    params.dims = 20;
    params.global_selectivity = 0.10;
    const auto queries = GenerateWorkload(table, params);
    ASSERT_TRUE(queries.ok());
    EXPECT_TRUE(VerifyAgainstOracle(*index, table, queries.value()).ok())
        << IndexKindToString(kind);
  }
}

// End-to-end agreement on the paper's worked example between ALL families.
TEST(WorkedExampleIntegrationTest, AllFamiliesAgree) {
  auto table = Table::Create(Schema({{"A1", 5}, {"A2", 3}})).value();
  const Value rows[][2] = {{5, 1}, {2, kMissingValue}, {3, 2},
                           {kMissingValue, 3}, {4, 1}, {5, kMissingValue},
                           {1, 2}, {3, 3}, {kMissingValue, 1}, {2, 2}};
  for (const auto& row : rows) {
    ASSERT_TRUE(table.AppendRow({row[0], row[1]}).ok());
  }
  RangeQuery q;
  q.terms = {{0, {2, 4}}, {1, {1, 2}}};
  for (MissingSemantics semantics :
       {MissingSemantics::kMatch, MissingSemantics::kNoMatch}) {
    q.semantics = semantics;
    std::vector<uint32_t> reference;
    bool first = true;
    for (IndexKind kind :
         {IndexKind::kSequentialScan, IndexKind::kBitmapEquality,
          IndexKind::kBitmapRange, IndexKind::kBitmapInterval,
        IndexKind::kVaFile, IndexKind::kVaPlusFile,
          IndexKind::kMosaic, IndexKind::kBitstringAugmented}) {
      const auto index = CreateIndex(kind, table).value();
      const auto result = index->Execute(q);
      ASSERT_TRUE(result.ok()) << index->Name();
      if (first) {
        reference = result.value().ToIndices();
        first = false;
      } else {
        EXPECT_EQ(result.value().ToIndices(), reference) << index->Name();
      }
    }
  }
}

}  // namespace
}  // namespace incdb
