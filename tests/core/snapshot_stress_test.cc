// Concurrency stress: many readers race one mutating writer through the
// snapshot API. Run under TSan (cmake --preset tsan) to prove the epoch
// publication protocol is race-free; under any build each reader also
// verifies every answer against the RowMatches oracle evaluated at its
// pinned snapshot, so a torn read surfaces as a wrong answer even without
// the sanitizer.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/database.h"
#include "core/snapshot.h"
#include "plan/planner.h"
#include "table/generator.h"

namespace incdb {
namespace {

constexpr size_t kNumReaders = 8;
constexpr int kWriterOps = 240;
constexpr int kReaderQueries = 120;
constexpr uint32_t kCardinality = 8;
constexpr size_t kDims = 3;

// Minimal deterministic per-thread generator (no shared rand state).
struct Lcg {
  uint64_t state;
  uint64_t Next() {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return state >> 33;
  }
};

std::vector<uint32_t> OracleTerms(const Snapshot& snapshot,
                                  const RangeQuery& query) {
  std::vector<uint32_t> expected;
  for (uint64_t r = 0; r < snapshot.num_rows(); ++r) {
    if (snapshot.IsDeleted(static_cast<uint32_t>(r))) continue;
    if (RowMatches(snapshot.table(), r, query)) {
      expected.push_back(static_cast<uint32_t>(r));
    }
  }
  return expected;
}

std::vector<uint32_t> OracleExpr(const Snapshot& snapshot,
                                 const QueryExpr& expr,
                                 MissingSemantics semantics) {
  std::vector<uint32_t> expected;
  for (uint64_t r = 0; r < snapshot.num_rows(); ++r) {
    if (snapshot.IsDeleted(static_cast<uint32_t>(r))) continue;
    if (ExprMatches(snapshot.table(), r, expr, semantics)) {
      expected.push_back(static_cast<uint32_t>(r));
    }
  }
  return expected;
}

TEST(SnapshotStressTest, ReadersRaceWriterAndEveryAnswerMatchesItsSnapshot) {
  Database db = Database::FromTable(
                    GenerateTable(UniformSpec(400, kCardinality, 0.2,
                                              kDims, 1201))
                        .value())
                    .value();
  ASSERT_TRUE(db.BuildIndex(IndexKind::kBitmapEquality).ok());

  std::atomic<bool> writer_done{false};
  std::atomic<uint64_t> verified_queries{0};
  std::atomic<int> failures{0};

  auto reader = [&](size_t id) {
    Lcg rng{0x9e3779b97f4a7c15ull ^ (id * 0x2545f4914f6cdd1dull)};
    for (int q = 0; q < kReaderQueries || !writer_done.load(); ++q) {
      if (q >= 4 * kReaderQueries) break;  // bound runtime if writer lags
      const size_t attr = rng.Next() % kDims;
      const Value lo = static_cast<Value>(1 + rng.Next() % kCardinality);
      const Value hi = static_cast<Value>(
          lo + rng.Next() % (kCardinality - static_cast<uint64_t>(lo) + 1));
      const MissingSemantics semantics = rng.Next() % 2 == 0
                                             ? MissingSemantics::kMatch
                                             : MissingSemantics::kNoMatch;
      const Snapshot snapshot = db.GetSnapshot();
      if (rng.Next() % 4 == 0) {
        // Boolean shape through the same snapshot.
        const QueryExpr expr = QueryExpr::MakeAnd(
            {QueryExpr::MakeTerm(attr, {lo, hi}),
             QueryExpr::MakeNot(
                 QueryExpr::MakeTerm((attr + 1) % kDims, {1, 2}))});
        const auto result =
            RunOnSnapshot(snapshot, QueryRequest::Expression(expr, semantics));
        if (!result.ok() ||
            result->row_ids != OracleExpr(snapshot, expr, semantics) ||
            result->epoch != snapshot.epoch()) {
          failures.fetch_add(1);
          return;
        }
      } else {
        RangeQuery query;
        query.semantics = semantics;
        query.terms = {{attr, {lo, hi}}};
        const auto result = RunOnSnapshot(
            snapshot,
            QueryRequest::Terms({{"a" + std::to_string(attr), lo, hi}},
                                semantics));
        if (!result.ok() ||
            result->row_ids != OracleTerms(snapshot, query) ||
            result->visible_rows != snapshot.num_rows()) {
          failures.fetch_add(1);
          return;
        }
      }
      verified_queries.fetch_add(1);
    }
  };

  auto writer = [&]() {
    Lcg rng{42};
    uint32_t next_delete = 1;
    for (int op = 0; op < kWriterOps; ++op) {
      const uint64_t dice = rng.Next() % 10;
      if (dice < 6) {
        std::vector<Value> row(kDims);
        for (size_t a = 0; a < kDims; ++a) {
          row[a] = rng.Next() % 5 == 0
                       ? kMissingValue
                       : static_cast<Value>(1 + rng.Next() % kCardinality);
        }
        ASSERT_TRUE(db.Insert(row).ok());
      } else if (dice < 8) {
        ASSERT_TRUE(db.Delete(next_delete).ok());
        next_delete += 3;  // distinct rows, always < initial 400
      } else if (dice < 9) {
        // Rotate across families so the race also covers the VA-file's
        // query-time table reads, not just bitmap Execute.
        static constexpr IndexKind kRotation[] = {IndexKind::kBitmapRange,
                                                  IndexKind::kBitmapEquality,
                                                  IndexKind::kVaFile};
        ASSERT_TRUE(db.BuildIndex(kRotation[rng.Next() % 3]).ok());
      } else {
        // Drop-if-present keeps readers flipping between index and scan.
        (void)db.DropIndex(IndexKind::kBitmapRange);
      }
    }
    writer_done.store(true);
  };

  {
    std::vector<std::thread> threads;
    threads.reserve(kNumReaders + 1);
    for (size_t r = 0; r < kNumReaders; ++r) {
      threads.emplace_back(reader, r);
    }
    threads.emplace_back(writer);
    for (std::thread& thread : threads) thread.join();
  }

  EXPECT_EQ(failures.load(), 0);
  EXPECT_TRUE(writer_done.load());
  EXPECT_GE(verified_queries.load(), kNumReaders * kReaderQueries);
  // The writer really churned: watermark grew and rows died.
  EXPECT_GT(db.num_rows(), 400u);
  EXPECT_GT(db.num_deleted_rows(), 0u);
}

TEST(SnapshotStressTest, RunBatchRacesWriterOnOneConsistentEpoch) {
  Database db = Database::FromTable(
                    GenerateTable(UniformSpec(300, kCardinality, 0.25,
                                              kDims, 1301))
                        .value())
                    .value();
  ASSERT_TRUE(db.BuildIndex(IndexKind::kBitmapRange).ok());

  std::vector<QueryRequest> requests;
  for (int i = 0; i < 24; ++i) {
    requests.push_back(QueryRequest::Terms(
        {{"a" + std::to_string(i % kDims),
          static_cast<Value>(1 + i % 4),
          static_cast<Value>(3 + i % 4)}},
        i % 2 == 0 ? MissingSemantics::kMatch : MissingSemantics::kNoMatch));
  }

  std::atomic<bool> stop{false};
  std::thread writer([&]() {
    Lcg rng{7};
    // Bounded: an unthrottled insert loop would starve the batch workers on
    // small machines and grow the table (and thus each delta scan) without
    // limit.
    for (int i = 0; i < 2000 && !stop.load(); ++i) {
      std::vector<Value> row(kDims);
      for (size_t a = 0; a < kDims; ++a) {
        row[a] = static_cast<Value>(1 + rng.Next() % kCardinality);
      }
      ASSERT_TRUE(db.Insert(row).ok());
    }
  });

  for (int round = 0; round < 10; ++round) {
    const BatchResult batch = db.RunBatch(requests, 4);
    ASSERT_EQ(batch.results.size(), requests.size());
    uint64_t epoch = 0;
    uint64_t visible = 0;
    for (size_t i = 0; i < batch.results.size(); ++i) {
      ASSERT_TRUE(batch.results[i].ok())
          << batch.results[i].status().ToString();
      const QueryResult& result = batch.results[i].value();
      if (i == 0) {
        epoch = result.epoch;
        visible = result.visible_rows;
      } else {
        // Whole batch pinned one snapshot despite the concurrent writer.
        EXPECT_EQ(result.epoch, epoch);
        EXPECT_EQ(result.visible_rows, visible);
      }
      EXPECT_EQ(result.count, result.row_ids.size());
    }
  }
  stop.store(true);
  writer.join();
  EXPECT_GT(db.num_rows(), 300u);
}

}  // namespace
}  // namespace incdb
