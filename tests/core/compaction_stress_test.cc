// Compaction stress: readers race a writer that inserts, deletes, and
// physically compacts a segmented store (plus the background compactor in
// the second case). Run under TSan in the nightly long-variant job
// (--gtest_repeat) to prove the epoch swap keeps compaction invisible to
// readers; under any build every answer is checked against the row-level
// oracle evaluated at its own pinned snapshot, so a reader observing a
// half-compacted store surfaces as a wrong answer, not just a race report.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdint>
#include <thread>
#include <vector>

#include "core/database.h"
#include "core/snapshot.h"
#include "plan/planner.h"
#include "table/generator.h"

namespace incdb {
namespace {

constexpr size_t kNumReaders = 6;
constexpr int kWriterOps = 160;
constexpr int kReaderQueries = 80;
constexpr uint32_t kCardinality = 6;
constexpr size_t kDims = 3;
constexpr uint64_t kSegmentRows = 32;

struct Lcg {
  uint64_t state;
  uint64_t Next() {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    return state >> 33;
  }
};

std::vector<uint32_t> OracleTerms(const Snapshot& snapshot,
                                  const RangeQuery& query) {
  std::vector<uint32_t> expected;
  for (uint64_t r = 0; r < snapshot.num_rows(); ++r) {
    if (snapshot.IsDeleted(static_cast<uint32_t>(r))) continue;
    if (RowMatches(snapshot.table(), r, query)) {
      expected.push_back(static_cast<uint32_t>(r));
    }
  }
  return expected;
}

Database MakeDb(uint64_t seed) {
  Database db =
      Database::FromTable(
          GenerateTable(UniformSpec(6 * kSegmentRows, kCardinality, 0.2,
                                    kDims, seed))
              .value())
          .value();
  SegmentOptions options;
  options.segment_rows = kSegmentRows;
  EXPECT_TRUE(db.EnableSegments(options).ok());
  return db;
}

void ReaderLoop(const Database& db, size_t id,
                const std::atomic<bool>& writer_done,
                std::atomic<uint64_t>& verified, std::atomic<int>& failures) {
  Lcg rng{0x9e3779b97f4a7c15ull ^ (id * 0x2545f4914f6cdd1dull)};
  for (int q = 0; q < kReaderQueries || !writer_done.load(); ++q) {
    if (q >= 4 * kReaderQueries) break;  // bound runtime if writer lags
    const size_t attr = rng.Next() % kDims;
    const Value lo = static_cast<Value>(1 + rng.Next() % kCardinality);
    const Value hi = static_cast<Value>(
        lo + rng.Next() % (kCardinality - static_cast<uint64_t>(lo) + 1));
    const MissingSemantics semantics = rng.Next() % 2 == 0
                                           ? MissingSemantics::kMatch
                                           : MissingSemantics::kNoMatch;
    // Pin one snapshot for query AND oracle: compaction may swap the base
    // table under us at any moment, but this epoch's view must not move.
    const Snapshot snapshot = db.GetSnapshot();
    RangeQuery query;
    query.semantics = semantics;
    query.terms = {{attr, {lo, hi}}};
    auto request = QueryRequest::Terms(
        {{"a" + std::to_string(attr), lo, hi}}, semantics);
    if (rng.Next() % 3 == 0) request = request.Parallel(3);
    const auto result = RunOnSnapshot(snapshot, request);
    if (!result.ok() ||
        result->row_ids != OracleTerms(snapshot, query) ||
        result->epoch != snapshot.epoch() ||
        result->visible_rows != snapshot.num_rows()) {
      failures.fetch_add(1);
      return;
    }
    verified.fetch_add(1);
  }
}

TEST(CompactionStressTest, ReadersRaceExplicitCompaction) {
  Database db = MakeDb(2401);

  std::atomic<bool> writer_done{false};
  std::atomic<uint64_t> verified{0};
  std::atomic<int> failures{0};

  auto writer = [&]() {
    Lcg rng{97};
    uint64_t compactions = 0;
    for (int op = 0; op < kWriterOps; ++op) {
      const uint64_t dice = rng.Next() % 10;
      if (dice < 5) {
        std::vector<Value> row(kDims);
        for (size_t a = 0; a < kDims; ++a) {
          row[a] = rng.Next() % 5 == 0
                       ? kMissingValue
                       : static_cast<Value>(1 + rng.Next() % kCardinality);
        }
        ASSERT_TRUE(db.Insert(row).ok());
      } else if (dice < 8) {
        // Any live row; duplicates are rejected, which is fine — the point
        // is concurrent mask churn, not a precise count.
        const uint32_t row =
            static_cast<uint32_t>(rng.Next() % db.num_rows());
        (void)db.Delete(row);
      } else {
        ASSERT_TRUE(db.CompactNow().ok());
        ++compactions;
      }
    }
    // End on a compaction so the final state also exercised a full rewrite.
    ASSERT_TRUE(db.CompactNow().ok());
    writer_done.store(true);
    EXPECT_GT(compactions, 0u);
  };

  {
    std::vector<std::thread> threads;
    threads.reserve(kNumReaders + 1);
    for (size_t r = 0; r < kNumReaders; ++r) {
      threads.emplace_back(ReaderLoop, std::cref(db), r,
                           std::cref(writer_done), std::ref(verified),
                           std::ref(failures));
    }
    threads.emplace_back(writer);
    for (std::thread& thread : threads) thread.join();
  }

  EXPECT_EQ(failures.load(), 0);
  EXPECT_GE(verified.load(), kNumReaders * kReaderQueries);
  EXPECT_EQ(db.num_deleted_rows(), 0u);  // final CompactNow reclaimed all
  EXPECT_GE(db.GetCompactionStats().compactions, 1u);
}

TEST(CompactionStressTest, ReadersRaceBackgroundCompactor) {
  Database db = MakeDb(2417);
  BackgroundCompactor::Options options;
  options.interval_millis = 2;
  options.min_deleted_rows = 4;
  BackgroundCompactor compactor(&db, options);

  std::atomic<bool> writer_done{false};
  std::atomic<uint64_t> verified{0};
  std::atomic<int> failures{0};

  // The writer only inserts and deletes; all compaction comes from the
  // background thread, so the race between its writer_mu critical section
  // and this writer is genuinely exercised.
  auto writer = [&]() {
    Lcg rng{131};
    for (int op = 0; op < kWriterOps; ++op) {
      if (rng.Next() % 2 == 0) {
        std::vector<Value> row(kDims);
        for (size_t a = 0; a < kDims; ++a) {
          row[a] = static_cast<Value>(1 + rng.Next() % kCardinality);
        }
        ASSERT_TRUE(db.Insert(row).ok());
      } else {
        const uint32_t row =
            static_cast<uint32_t>(rng.Next() % db.num_rows());
        (void)db.Delete(row);
      }
    }
    writer_done.store(true);
  };

  {
    std::vector<std::thread> threads;
    threads.reserve(kNumReaders + 1);
    for (size_t r = 0; r < kNumReaders; ++r) {
      threads.emplace_back(ReaderLoop, std::cref(db), r,
                           std::cref(writer_done), std::ref(verified),
                           std::ref(failures));
    }
    threads.emplace_back(writer);
    for (std::thread& thread : threads) thread.join();
  }
  compactor.Stop();

  EXPECT_EQ(failures.load(), 0);
  EXPECT_GE(verified.load(), kNumReaders * kReaderQueries);
}

}  // namespace
}  // namespace incdb
