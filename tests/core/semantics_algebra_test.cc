// DESIGN.md invariant 6, stated constructively and checked across every
// index family: the missing-is-match result equals the missing-not-match
// result plus exactly the rows that (a) are missing at least one search-key
// attribute and (b) satisfy every search-key attribute they do have.

#include <gtest/gtest.h>

#include "core/index_factory.h"
#include "query/workload.h"
#include "table/generator.h"

namespace incdb {
namespace {

BitVector ExpectedExtraRows(const Table& table, const RangeQuery& query) {
  BitVector extra(table.num_rows());
  for (uint64_t r = 0; r < table.num_rows(); ++r) {
    bool any_missing = false;
    bool present_all_match = true;
    for (const QueryTerm& term : query.terms) {
      const Value v = table.Get(r, term.attribute);
      if (IsMissing(v)) {
        any_missing = true;
      } else if (!term.interval.Contains(v)) {
        present_all_match = false;
        break;
      }
    }
    if (any_missing && present_all_match) extra.Set(r);
  }
  return extra;
}

class SemanticsAlgebraTest : public ::testing::TestWithParam<IndexKind> {};

TEST_P(SemanticsAlgebraTest, MatchEqualsNoMatchPlusMissingMatches) {
  const IndexKind kind = GetParam();
  const Table table = GenerateTable(UniformSpec(1000, 9, 0.35, 5, 977)).value();
  const auto index = CreateIndex(kind, table).value();
  WorkloadParams params;
  params.num_queries = 20;
  params.dims = 3;
  params.global_selectivity = 0.05;
  params.seed = 23;
  const auto queries = GenerateWorkload(table, params);
  ASSERT_TRUE(queries.ok());
  for (RangeQuery q : queries.value()) {
    q.semantics = MissingSemantics::kMatch;
    const BitVector with = index->Execute(q).value();
    q.semantics = MissingSemantics::kNoMatch;
    const BitVector without = index->Execute(q).value();
    const BitVector extra = ExpectedExtraRows(table, q);
    // Disjoint union: extra ∩ without = ∅ and with = without ∪ extra.
    EXPECT_EQ(And(extra, without).Count(), 0u) << index->Name();
    EXPECT_TRUE(Or(without, extra) == with) << index->Name();
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, SemanticsAlgebraTest,
    ::testing::Values(IndexKind::kSequentialScan, IndexKind::kBitmapEquality,
                      IndexKind::kBitmapRange, IndexKind::kBitmapInterval,
                      IndexKind::kBitmapBitSliced, IndexKind::kVaFile,
                      IndexKind::kVaPlusFile, IndexKind::kMosaic,
                      IndexKind::kBitstringAugmented));

}  // namespace
}  // namespace incdb
