// Golden test for the numeric StatusCode contract.
//
// The serving protocol (src/server/wire.h) returns StatusCode values
// verbatim in Error frames, so the numbers below are a frozen wire
// contract: clients built against any protocol revision must be able to
// interpret a code produced by any other. If this test fails, someone
// renumbered or reused a code — that is a protocol break, not a refactor.
// New codes append at the end with the next free number (and get a new
// EXPECT here); retired codes retire their number with them.

#include <gtest/gtest.h>

#include "common/status.h"

namespace incdb {
namespace {

TEST(StatusCodeGoldenTest, NumericValuesAreFrozen) {
  EXPECT_EQ(0u, static_cast<uint32_t>(StatusCode::kOk));
  EXPECT_EQ(1u, static_cast<uint32_t>(StatusCode::kInvalidArgument));
  EXPECT_EQ(2u, static_cast<uint32_t>(StatusCode::kNotFound));
  EXPECT_EQ(3u, static_cast<uint32_t>(StatusCode::kOutOfRange));
  EXPECT_EQ(4u, static_cast<uint32_t>(StatusCode::kAlreadyExists));
  EXPECT_EQ(5u, static_cast<uint32_t>(StatusCode::kNotSupported));
  EXPECT_EQ(6u, static_cast<uint32_t>(StatusCode::kIOError));
  EXPECT_EQ(7u, static_cast<uint32_t>(StatusCode::kInternal));
  EXPECT_EQ(8u, static_cast<uint32_t>(StatusCode::kDeadlineExceeded));
  EXPECT_EQ(9u, static_cast<uint32_t>(StatusCode::kOverloaded));
  EXPECT_EQ(10u, static_cast<uint32_t>(StatusCode::kUnavailable));
  EXPECT_EQ(10u, kMaxStatusCode);
}

TEST(StatusCodeGoldenTest, EveryCodeHasAStableName) {
  EXPECT_EQ("OK", StatusCodeToString(StatusCode::kOk));
  EXPECT_EQ("InvalidArgument",
            StatusCodeToString(StatusCode::kInvalidArgument));
  EXPECT_EQ("NotFound", StatusCodeToString(StatusCode::kNotFound));
  EXPECT_EQ("OutOfRange", StatusCodeToString(StatusCode::kOutOfRange));
  EXPECT_EQ("AlreadyExists", StatusCodeToString(StatusCode::kAlreadyExists));
  EXPECT_EQ("NotSupported", StatusCodeToString(StatusCode::kNotSupported));
  EXPECT_EQ("IOError", StatusCodeToString(StatusCode::kIOError));
  EXPECT_EQ("Internal", StatusCodeToString(StatusCode::kInternal));
  EXPECT_EQ("DeadlineExceeded",
            StatusCodeToString(StatusCode::kDeadlineExceeded));
  EXPECT_EQ("Overloaded", StatusCodeToString(StatusCode::kOverloaded));
  EXPECT_EQ("Unavailable", StatusCodeToString(StatusCode::kUnavailable));
}

TEST(StatusCodeGoldenTest, NamedFactoriesCarryTheirCode) {
  EXPECT_EQ(StatusCode::kDeadlineExceeded,
            Status::DeadlineExceeded("late").code());
  EXPECT_EQ(StatusCode::kOverloaded, Status::Overloaded("queue full").code());
  EXPECT_EQ(StatusCode::kUnavailable, Status::Unavailable("draining").code());
}

}  // namespace
}  // namespace incdb
