#include "common/status.h"

#include <gtest/gtest.h>

namespace incdb {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, OkFactory) {
  EXPECT_TRUE(Status::OK().ok());
}

TEST(StatusTest, ErrorFactoriesCarryCodeAndMessage) {
  const Status s = Status::InvalidArgument("bad input");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad input");
  EXPECT_EQ(s.ToString(), "InvalidArgument: bad input");
}

TEST(StatusTest, AllErrorFactories) {
  EXPECT_EQ(Status::NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::OutOfRange("x").code(), StatusCode::kOutOfRange);
  EXPECT_EQ(Status::AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::NotSupported("x").code(), StatusCode::kNotSupported);
  EXPECT_EQ(Status::IOError("x").code(), StatusCode::kIOError);
  EXPECT_EQ(Status::Internal("x").code(), StatusCode::kInternal);
}

TEST(StatusTest, Equality) {
  EXPECT_EQ(Status::OK(), Status::OK());
  EXPECT_EQ(Status::NotFound("a"), Status::NotFound("a"));
  EXPECT_FALSE(Status::NotFound("a") == Status::NotFound("b"));
  EXPECT_FALSE(Status::NotFound("a") == Status::Internal("a"));
}

TEST(StatusCodeTest, Names) {
  EXPECT_EQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeToString(StatusCode::kIOError), "IOError");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::NotFound("nope");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r = std::string("payload");
  ASSERT_TRUE(r.ok());
  const std::string moved = std::move(r).value();
  EXPECT_EQ(moved, "payload");
}

TEST(ResultTest, ArrowOperator) {
  Result<std::string> r = std::string("abc");
  EXPECT_EQ(r->size(), 3u);
}

namespace helpers {

Status FailIfNegative(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return Status::OK();
}

Status Propagates(int x) {
  INCDB_RETURN_IF_ERROR(FailIfNegative(x));
  return Status::OK();
}

Result<int> Doubled(int x) {
  if (x < 0) return Status::InvalidArgument("negative");
  return 2 * x;
}

Status UsesAssignOrReturn(int x, int* out) {
  INCDB_ASSIGN_OR_RETURN(*out, Doubled(x));
  return Status::OK();
}

}  // namespace helpers

TEST(StatusMacrosTest, ReturnIfError) {
  EXPECT_TRUE(helpers::Propagates(1).ok());
  EXPECT_EQ(helpers::Propagates(-1).code(), StatusCode::kInvalidArgument);
}

TEST(StatusMacrosTest, AssignOrReturn) {
  int out = 0;
  EXPECT_TRUE(helpers::UsesAssignOrReturn(21, &out).ok());
  EXPECT_EQ(out, 42);
  EXPECT_FALSE(helpers::UsesAssignOrReturn(-1, &out).ok());
}

}  // namespace
}  // namespace incdb
