#include <gtest/gtest.h>

#include "common/logging.h"
#include "common/status.h"

namespace incdb {
namespace {

TEST(CheckMacrosTest, PassingChecksAreSilent) {
  INCDB_CHECK(1 + 1 == 2);
  INCDB_CHECK_MSG(true, "never printed");
  INCDB_CHECK_OK(Status::OK());
  INCDB_DCHECK(true);
  INCDB_DCHECK_MSG(true, "never printed");
}

TEST(CheckMacrosDeathTest, CheckAbortsWithConditionText) {
  EXPECT_DEATH(INCDB_CHECK(2 + 2 == 5), "INCDB_CHECK failed.*2 \\+ 2 == 5");
}

TEST(CheckMacrosDeathTest, CheckMsgAbortsWithContext) {
  EXPECT_DEATH(INCDB_CHECK_MSG(false, "run boundary violated"),
               "run boundary violated");
}

TEST(CheckMacrosDeathTest, CheckOkAbortsWithStatusText) {
  EXPECT_DEATH(INCDB_CHECK_OK(Status::IOError("disk gone")),
               "INCDB_CHECK_OK failed.*IOError.*disk gone");
}

TEST(CheckMacrosDeathTest, CheckOkEvaluatesExpressionOnce) {
  int calls = 0;
  const auto count_and_succeed = [&]() {
    ++calls;
    return Status::OK();
  };
  INCDB_CHECK_OK(count_and_succeed());
  EXPECT_EQ(calls, 1);
}

#ifdef NDEBUG
TEST(CheckMacrosDeathTest, DcheckCompiledOutInReleaseBuilds) {
  // Must not abort, and must not even evaluate the condition.
  int evaluations = 0;
  INCDB_DCHECK([&] {
    ++evaluations;
    return false;
  }());
  INCDB_DCHECK_MSG(false, "ignored");
  EXPECT_EQ(evaluations, 0);
}
#else
TEST(CheckMacrosDeathTest, DcheckAbortsInDebugBuilds) {
  EXPECT_DEATH(INCDB_DCHECK(false), "INCDB_CHECK failed");
  EXPECT_DEATH(INCDB_DCHECK_MSG(false, "debug-only context"),
               "debug-only context");
}
#endif

}  // namespace
}  // namespace incdb
