#include "common/rng.h"

#include <gtest/gtest.h>

#include <cmath>
#include <set>
#include <vector>

namespace incdb {
namespace {

TEST(RngTest, DeterministicForEqualSeeds) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    if (a.Next() == b.Next()) ++equal;
  }
  EXPECT_LT(equal, 5);
}

TEST(RngTest, UniformIntStaysInRange) {
  Rng rng(7);
  for (int i = 0; i < 10000; ++i) {
    const int64_t v = rng.UniformInt(-3, 9);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 9);
  }
}

TEST(RngTest, UniformIntDegenerateRange) {
  Rng rng(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.UniformInt(5, 5), 5);
}

TEST(RngTest, UniformIntCoversAllValues) {
  Rng rng(11);
  std::set<int64_t> seen;
  for (int i = 0; i < 1000; ++i) seen.insert(rng.UniformInt(1, 10));
  EXPECT_EQ(seen.size(), 10u);
}

TEST(RngTest, UniformIntIsApproximatelyUniform) {
  Rng rng(13);
  std::vector<int> counts(10, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.UniformInt(0, 9)];
  for (int c : counts) {
    EXPECT_NEAR(c, n / 10, 4 * std::sqrt(n / 10.0));
  }
}

TEST(RngTest, UniformDoubleInUnitInterval) {
  Rng rng(17);
  double sum = 0.0;
  for (int i = 0; i < 10000; ++i) {
    const double v = rng.UniformDouble();
    EXPECT_GE(v, 0.0);
    EXPECT_LT(v, 1.0);
    sum += v;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, BernoulliExtremes) {
  Rng rng(19);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Bernoulli(0.0));
    EXPECT_TRUE(rng.Bernoulli(1.0));
  }
}

TEST(RngTest, BernoulliRate) {
  Rng rng(23);
  int hits = 0;
  const int n = 100000;
  for (int i = 0; i < n; ++i) {
    if (rng.Bernoulli(0.3)) ++hits;
  }
  EXPECT_NEAR(static_cast<double>(hits) / n, 0.3, 0.01);
}

TEST(RngTest, PermutationIsAPermutation) {
  Rng rng(29);
  const std::vector<uint32_t> perm = rng.Permutation(100);
  std::set<uint32_t> seen(perm.begin(), perm.end());
  EXPECT_EQ(perm.size(), 100u);
  EXPECT_EQ(seen.size(), 100u);
  EXPECT_EQ(*seen.begin(), 0u);
  EXPECT_EQ(*seen.rbegin(), 99u);
}

TEST(ZipfSamplerTest, UniformWhenThetaZero) {
  Rng rng(31);
  ZipfSampler sampler(10, 0.0);
  std::vector<int> counts(11, 0);
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[sampler.Sample(rng)];
  for (int v = 1; v <= 10; ++v) {
    EXPECT_NEAR(counts[v], n / 10, 5 * std::sqrt(n / 10.0));
  }
}

TEST(ZipfSamplerTest, SkewsTowardSmallValues) {
  Rng rng(37);
  ZipfSampler sampler(100, 1.2);
  int low = 0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    if (sampler.Sample(rng) <= 5) ++low;
  }
  // With theta = 1.2 the first five ranks carry well over half the mass.
  EXPECT_GT(static_cast<double>(low) / n, 0.5);
}

TEST(ZipfSamplerTest, StaysInDomain) {
  Rng rng(41);
  ZipfSampler sampler(7, 1.0);
  for (int i = 0; i < 10000; ++i) {
    const uint32_t v = sampler.Sample(rng);
    EXPECT_GE(v, 1u);
    EXPECT_LE(v, 7u);
  }
}

TEST(ZipfSamplerTest, CardinalityOne) {
  Rng rng(43);
  ZipfSampler sampler(1, 1.5);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(sampler.Sample(rng), 1u);
}

}  // namespace
}  // namespace incdb
