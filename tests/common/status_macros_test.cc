#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>

#include "common/status.h"

namespace incdb {
namespace {

Status FailWith(StatusCode code) { return Status(code, "boom"); }

// --- INCDB_RETURN_IF_ERROR --------------------------------------------------

Status PropagateAfterCounting(const Status& input, int* evaluations) {
  ++*evaluations;
  INCDB_RETURN_IF_ERROR(input);
  ++*evaluations;
  return Status::OK();
}

TEST(ReturnIfErrorTest, OkFallsThrough) {
  int evaluations = 0;
  const Status s = PropagateAfterCounting(Status::OK(), &evaluations);
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(evaluations, 2);
}

TEST(ReturnIfErrorTest, ErrorReturnsEarlyWithSameStatus) {
  int evaluations = 0;
  const Status s =
      PropagateAfterCounting(FailWith(StatusCode::kIOError), &evaluations);
  EXPECT_EQ(s.code(), StatusCode::kIOError);
  EXPECT_EQ(s.message(), "boom");
  EXPECT_EQ(evaluations, 1) << "statements after the macro must not run";
}

Status EvaluateOnce(int* calls) {
  ++*calls;
  return Status::OK();
}

TEST(ReturnIfErrorTest, EvaluatesExpressionExactlyOnce) {
  int calls = 0;
  const Status s = [&]() -> Status {
    INCDB_RETURN_IF_ERROR(EvaluateOnce(&calls));
    return Status::OK();
  }();
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(calls, 1);
}

// --- INCDB_ASSIGN_OR_RETURN -------------------------------------------------

Result<int> MakeInt(bool ok) {
  if (!ok) return Status::NotFound("no int");
  return 42;
}

Status SumTwo(bool first_ok, bool second_ok, int* out) {
  INCDB_ASSIGN_OR_RETURN(const int a, MakeInt(first_ok));
  INCDB_ASSIGN_OR_RETURN(const int b, MakeInt(second_ok));
  *out = a + b;
  return Status::OK();
}

TEST(AssignOrReturnTest, BindsValueOnOk) {
  int out = 0;
  EXPECT_TRUE(SumTwo(true, true, &out).ok());
  EXPECT_EQ(out, 84);
}

TEST(AssignOrReturnTest, PropagatesFirstError) {
  int out = 0;
  const Status s = SumTwo(false, true, &out);
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(out, 0) << "the body after a failing macro must not run";
}

TEST(AssignOrReturnTest, PropagatesSecondError) {
  int out = 0;
  EXPECT_EQ(SumTwo(true, false, &out).code(), StatusCode::kNotFound);
  EXPECT_EQ(out, 0);
}

// The macro must move the value out of the Result, so move-only payloads
// (unique_ptr-owned indexes are the common case in src/core) work without
// a copy.
Result<std::unique_ptr<int>> MakeOwned(bool ok) {
  if (!ok) return Status::Internal("no box");
  return std::make_unique<int>(7);
}

Status UnwrapOwned(bool ok, int* out) {
  INCDB_ASSIGN_OR_RETURN(const std::unique_ptr<int> box, MakeOwned(ok));
  *out = *box;
  return Status::OK();
}

TEST(AssignOrReturnTest, SupportsMoveOnlyValues) {
  int out = 0;
  EXPECT_TRUE(UnwrapOwned(true, &out).ok());
  EXPECT_EQ(out, 7);
  EXPECT_EQ(UnwrapOwned(false, &out).code(), StatusCode::kInternal);
}

// Assigning into a pre-declared variable (no declaration in the lhs) must
// also work; two uses in one scope exercise the __LINE__-based temp names.
Status AssignTwiceIntoExisting(int* out) {
  int value = 0;
  INCDB_ASSIGN_OR_RETURN(value, MakeInt(true));
  const int first = value;
  INCDB_ASSIGN_OR_RETURN(value, MakeInt(true));
  *out = first + value;
  return Status::OK();
}

TEST(AssignOrReturnTest, AssignsIntoExistingVariableTwicePerScope) {
  int out = 0;
  EXPECT_TRUE(AssignTwiceIntoExisting(&out).ok());
  EXPECT_EQ(out, 84);
}

}  // namespace
}  // namespace incdb
