#include "common/bitutil.h"

#include <gtest/gtest.h>

namespace incdb {
namespace {

TEST(BitUtilTest, PopCount) {
  EXPECT_EQ(bitutil::PopCount(0), 0);
  EXPECT_EQ(bitutil::PopCount(1), 1);
  EXPECT_EQ(bitutil::PopCount(~uint64_t{0}), 64);
  EXPECT_EQ(bitutil::PopCount(0xF0F0F0F0F0F0F0F0ULL), 32);
}

TEST(BitUtilTest, PopCount32) {
  EXPECT_EQ(bitutil::PopCount32(0), 0);
  EXPECT_EQ(bitutil::PopCount32(0xFFFFFFFFu), 32);
  EXPECT_EQ(bitutil::PopCount32(0x7FFFFFFFu), 31);
}

TEST(BitUtilTest, CountTrailingZeros) {
  EXPECT_EQ(bitutil::CountTrailingZeros(1), 0);
  EXPECT_EQ(bitutil::CountTrailingZeros(2), 1);
  EXPECT_EQ(bitutil::CountTrailingZeros(uint64_t{1} << 63), 63);
}

TEST(BitUtilTest, CeilDiv) {
  EXPECT_EQ(bitutil::CeilDiv(0, 8), 0u);
  EXPECT_EQ(bitutil::CeilDiv(1, 8), 1u);
  EXPECT_EQ(bitutil::CeilDiv(8, 8), 1u);
  EXPECT_EQ(bitutil::CeilDiv(9, 8), 2u);
  EXPECT_EQ(bitutil::CeilDiv(64, 31), 3u);
}

TEST(BitUtilTest, Log2Ceil) {
  EXPECT_EQ(bitutil::Log2Ceil(1), 0);
  EXPECT_EQ(bitutil::Log2Ceil(2), 1);
  EXPECT_EQ(bitutil::Log2Ceil(3), 2);
  EXPECT_EQ(bitutil::Log2Ceil(4), 2);
  EXPECT_EQ(bitutil::Log2Ceil(5), 3);
  EXPECT_EQ(bitutil::Log2Ceil(1024), 10);
  EXPECT_EQ(bitutil::Log2Ceil(1025), 11);
}

// Paper §4.5: b_i = ceil(lg(C_i + 1)). Table 5/6 example uses C = 6 → 3
// bits would be the paper default; the worked example packs into 2 bits by
// overriding, which our VaFile Options support.
TEST(BitUtilTest, BitsForCardinality) {
  EXPECT_EQ(bitutil::BitsForCardinality(1), 1);   // value + missing
  EXPECT_EQ(bitutil::BitsForCardinality(2), 2);
  EXPECT_EQ(bitutil::BitsForCardinality(3), 2);
  EXPECT_EQ(bitutil::BitsForCardinality(6), 3);
  EXPECT_EQ(bitutil::BitsForCardinality(7), 3);
  EXPECT_EQ(bitutil::BitsForCardinality(100), 7);
}

TEST(BitUtilTest, LowBitsMask) {
  EXPECT_EQ(bitutil::LowBitsMask(0), 0u);
  EXPECT_EQ(bitutil::LowBitsMask(1), 1u);
  EXPECT_EQ(bitutil::LowBitsMask(31), 0x7FFFFFFFu);
  EXPECT_EQ(bitutil::LowBitsMask(64), ~uint64_t{0});
}

}  // namespace
}  // namespace incdb
