#include "common/io.h"

#include <gtest/gtest.h>

#include <sstream>

namespace incdb {
namespace {

TEST(BinaryIoTest, ScalarRoundTrip) {
  std::stringstream stream;
  BinaryWriter writer(stream);
  writer.WriteU8(0xAB);
  writer.WriteU32(0xDEADBEEF);
  writer.WriteU64(0x0123456789ABCDEFull);
  writer.WriteI32(-42);
  writer.WriteDouble(3.25);
  ASSERT_TRUE(writer.status().ok());

  BinaryReader reader(stream);
  EXPECT_EQ(reader.ReadU8().value(), 0xAB);
  EXPECT_EQ(reader.ReadU32().value(), 0xDEADBEEFu);
  EXPECT_EQ(reader.ReadU64().value(), 0x0123456789ABCDEFull);
  EXPECT_EQ(reader.ReadI32().value(), -42);
  EXPECT_DOUBLE_EQ(reader.ReadDouble().value(), 3.25);
}

TEST(BinaryIoTest, StringRoundTrip) {
  std::stringstream stream;
  BinaryWriter writer(stream);
  writer.WriteString("hello");
  writer.WriteString("");
  BinaryReader reader(stream);
  EXPECT_EQ(reader.ReadString().value(), "hello");
  EXPECT_EQ(reader.ReadString().value(), "");
}

TEST(BinaryIoTest, VectorRoundTrip) {
  std::stringstream stream;
  BinaryWriter writer(stream);
  writer.WriteU32Vector({1, 2, 0xFFFFFFFF});
  writer.WriteU32Vector({});
  BinaryReader reader(stream);
  EXPECT_EQ(reader.ReadU32Vector().value(),
            (std::vector<uint32_t>{1, 2, 0xFFFFFFFF}));
  EXPECT_TRUE(reader.ReadU32Vector().value().empty());
}

TEST(BinaryIoTest, TruncatedInputFails) {
  std::stringstream stream;
  BinaryWriter writer(stream);
  writer.WriteU32(7);
  BinaryReader reader(stream);
  ASSERT_TRUE(reader.ReadU32().ok());
  EXPECT_EQ(reader.ReadU32().status().code(), StatusCode::kIOError);
}

TEST(BinaryIoTest, CorruptedLengthPrefixRejected) {
  std::stringstream stream;
  BinaryWriter writer(stream);
  writer.WriteU64(uint64_t{1} << 60);  // absurd string length
  BinaryReader reader(stream);
  EXPECT_EQ(reader.ReadString().status().code(), StatusCode::kIOError);
}

TEST(BinaryIoTest, LittleEndianLayout) {
  std::stringstream stream;
  BinaryWriter writer(stream);
  writer.WriteU32(0x04030201);
  const std::string bytes = stream.str();
  ASSERT_EQ(bytes.size(), 4u);
  EXPECT_EQ(static_cast<unsigned char>(bytes[0]), 0x01);
  EXPECT_EQ(static_cast<unsigned char>(bytes[3]), 0x04);
}

}  // namespace
}  // namespace incdb
