#include "query/parser.h"

#include <gtest/gtest.h>

#include "core/expr_executor.h"

namespace incdb {
namespace {

Table MakeTable() {
  auto table =
      Table::Create(Schema({{"rating", 5}, {"price", 10}, {"region", 8}}))
          .value();
  EXPECT_TRUE(table.AppendRow({5, 7, 1}).ok());
  EXPECT_TRUE(table.AppendRow({3, kMissingValue, 2}).ok());
  EXPECT_TRUE(table.AppendRow({kMissingValue, 2, 3}).ok());
  EXPECT_TRUE(table.AppendRow({4, 9, kMissingValue}).ok());
  return table;
}

std::string ParseToString(const std::string& text, const Table& table) {
  const auto expr = ParseQuery(text, table);
  EXPECT_TRUE(expr.ok()) << text << ": " << expr.status().ToString();
  return expr.ok() ? expr.value().ToString() : "<error>";
}

TEST(ParserTest, ComparisonOperators) {
  const Table table = MakeTable();
  EXPECT_EQ(ParseToString("rating = 3", table), "A0 in [3,3]");
  EXPECT_EQ(ParseToString("rating <= 3", table), "A0 in [1,3]");
  EXPECT_EQ(ParseToString("rating < 3", table), "A0 in [1,2]");
  EXPECT_EQ(ParseToString("rating >= 3", table), "A0 in [3,5]");
  EXPECT_EQ(ParseToString("rating > 3", table), "A0 in [4,5]");
  EXPECT_EQ(ParseToString("price IN [2,7]", table), "A1 in [2,7]");
  EXPECT_EQ(ParseToString("rating != 3", table), "NOT A0 in [3,3]");
}

TEST(ParserTest, BooleanStructureAndPrecedence) {
  const Table table = MakeTable();
  // AND binds tighter than OR; NOT tighter than AND.
  EXPECT_EQ(ParseToString("rating = 1 OR rating = 2 AND price = 3", table),
            "(A0 in [1,1] OR (A0 in [2,2] AND A1 in [3,3]))");
  EXPECT_EQ(ParseToString("NOT rating = 1 AND price = 3", table),
            "(NOT A0 in [1,1] AND A1 in [3,3])");
  EXPECT_EQ(
      ParseToString("(rating = 1 OR rating = 2) AND price = 3", table),
      "((A0 in [1,1] OR A0 in [2,2]) AND A1 in [3,3])");
  EXPECT_EQ(ParseToString("NOT (rating = 1 OR price = 2)", table),
            "NOT (A0 in [1,1] OR A1 in [2,2])");
  EXPECT_EQ(ParseToString("NOT NOT rating = 1", table),
            "NOT NOT A0 in [1,1]");
}

TEST(ParserTest, KeywordsAreCaseInsensitive) {
  const Table table = MakeTable();
  EXPECT_EQ(ParseToString("rating = 1 and not price in [1,2]", table),
            "(A0 in [1,1] AND NOT A1 in [1,2])");
}

TEST(ParserTest, WhitespaceIsFlexible) {
  const Table table = MakeTable();
  EXPECT_EQ(ParseToString("  rating=1   AND price  IN[ 2 , 7 ]", table),
            "(A0 in [1,1] AND A1 in [2,7])");
}

TEST(ParserTest, ParsedQueryExecutesCorrectly) {
  const Table table = MakeTable();
  const auto expr =
      ParseQuery("rating >= 4 AND NOT region = 2", table);
  ASSERT_TRUE(expr.ok());
  // Row 0: (5,·,1) T∧T = T. Row 1: rating 3 → F. Row 2: rating ? → U∧(NOT F
  // = T) = U. Row 3: (4,·,?) T∧U = U.
  const auto certain =
      ExecuteExprScan(table, expr.value(), MissingSemantics::kNoMatch);
  ASSERT_TRUE(certain.ok());
  EXPECT_EQ(certain.value().ToIndices(), (std::vector<uint32_t>{0}));
  const auto possible =
      ExecuteExprScan(table, expr.value(), MissingSemantics::kMatch);
  ASSERT_TRUE(possible.ok());
  EXPECT_EQ(possible.value().ToIndices(), (std::vector<uint32_t>{0, 2, 3}));
}

TEST(ParserTest, RejectsUnknownAttribute) {
  const Table table = MakeTable();
  const auto result = ParseQuery("bogus = 1", table);
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(result.status().message().find("bogus"), std::string::npos);
}

TEST(ParserTest, RejectsOutOfDomainValues) {
  const Table table = MakeTable();
  EXPECT_FALSE(ParseQuery("rating = 9", table).ok());
  EXPECT_FALSE(ParseQuery("rating > 5", table).ok());   // empty interval
  EXPECT_FALSE(ParseQuery("rating < 1", table).ok());   // empty interval
  EXPECT_FALSE(ParseQuery("price IN [7,2]", table).ok());
}

TEST(ParserTest, RejectsMalformedInput) {
  const Table table = MakeTable();
  EXPECT_FALSE(ParseQuery("", table).ok());
  EXPECT_FALSE(ParseQuery("rating", table).ok());
  EXPECT_FALSE(ParseQuery("rating =", table).ok());
  EXPECT_FALSE(ParseQuery("rating = 1 AND", table).ok());
  EXPECT_FALSE(ParseQuery("(rating = 1", table).ok());
  EXPECT_FALSE(ParseQuery("rating = 1)", table).ok());
  EXPECT_FALSE(ParseQuery("rating IN [1 2]", table).ok());
  EXPECT_FALSE(ParseQuery("rating # 1", table).ok());
  EXPECT_FALSE(ParseQuery("rating ! 1", table).ok());
  EXPECT_FALSE(ParseQuery("AND rating = 1", table).ok());
}

TEST(ParserTest, ErrorsCarryPosition) {
  const Table table = MakeTable();
  const auto result = ParseQuery("rating = 1 AND #", table);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().message().find("position 15"), std::string::npos);
}

}  // namespace
}  // namespace incdb
