#include "query/query.h"

#include <gtest/gtest.h>

namespace incdb {
namespace {

Table MakeTable() {
  auto table = Table::Create(Schema({{"a", 10}, {"b", 5}})).value();
  // row 0: (3, 2)   row 1: (?, 2)   row 2: (7, ?)   row 3: (?, ?)
  EXPECT_TRUE(table.AppendRow({3, 2}).ok());
  EXPECT_TRUE(table.AppendRow({kMissingValue, 2}).ok());
  EXPECT_TRUE(table.AppendRow({7, kMissingValue}).ok());
  EXPECT_TRUE(table.AppendRow({kMissingValue, kMissingValue}).ok());
  return table;
}

TEST(IntervalTest, Basics) {
  const Interval iv{2, 5};
  EXPECT_FALSE(iv.IsPoint());
  EXPECT_EQ(iv.Width(), 4u);
  EXPECT_TRUE(iv.Contains(2));
  EXPECT_TRUE(iv.Contains(5));
  EXPECT_FALSE(iv.Contains(1));
  EXPECT_FALSE(iv.Contains(6));
  EXPECT_TRUE((Interval{3, 3}).IsPoint());
}

TEST(RangeQueryTest, PointQueryDetection) {
  RangeQuery q;
  q.terms = {{0, {2, 2}}, {1, {4, 4}}};
  EXPECT_TRUE(q.IsPointQuery());
  q.terms[1].interval.hi = 5;
  EXPECT_FALSE(q.IsPointQuery());
}

TEST(RangeQueryTest, ToStringMentionsSemanticsAndTerms) {
  RangeQuery q;
  q.semantics = MissingSemantics::kNoMatch;
  q.terms = {{0, {1, 3}}, {2, {5, 5}}};
  const std::string s = q.ToString();
  EXPECT_NE(s.find("no-match"), std::string::npos);
  EXPECT_NE(s.find("A0 in [1,3]"), std::string::npos);
  EXPECT_NE(s.find("A2 in [5,5]"), std::string::npos);
}

TEST(ValidateQueryTest, AcceptsValid) {
  const Table table = MakeTable();
  RangeQuery q;
  q.terms = {{0, {1, 10}}, {1, {2, 3}}};
  EXPECT_TRUE(ValidateQuery(q, table).ok());
}

TEST(ValidateQueryTest, RejectsEmpty) {
  const Table table = MakeTable();
  EXPECT_FALSE(ValidateQuery(RangeQuery{}, table).ok());
}

TEST(ValidateQueryTest, RejectsBadAttribute) {
  const Table table = MakeTable();
  RangeQuery q;
  q.terms = {{5, {1, 1}}};
  EXPECT_EQ(ValidateQuery(q, table).code(), StatusCode::kOutOfRange);
}

TEST(ValidateQueryTest, RejectsDuplicateAttribute) {
  const Table table = MakeTable();
  RangeQuery q;
  q.terms = {{0, {1, 1}}, {0, {2, 2}}};
  EXPECT_EQ(ValidateQuery(q, table).code(), StatusCode::kInvalidArgument);
}

TEST(ValidateQueryTest, RejectsIntervalOutsideDomain) {
  const Table table = MakeTable();
  RangeQuery q;
  q.terms = {{1, {1, 6}}};  // cardinality of b is 5
  EXPECT_EQ(ValidateQuery(q, table).code(), StatusCode::kInvalidArgument);
  q.terms = {{1, {0, 3}}};
  EXPECT_EQ(ValidateQuery(q, table).code(), StatusCode::kInvalidArgument);
  q.terms = {{1, {4, 2}}};  // lo > hi
  EXPECT_EQ(ValidateQuery(q, table).code(), StatusCode::kInvalidArgument);
}

// The paper's two semantics (§3), on the canonical 4-row example.
TEST(RowMatchesTest, MissingIsMatchSemantics) {
  const Table table = MakeTable();
  RangeQuery q;
  q.semantics = MissingSemantics::kMatch;
  q.terms = {{0, {2, 4}}, {1, {1, 2}}};
  EXPECT_TRUE(RowMatches(table, 0, q));   // 3 in [2,4], 2 in [1,2]
  EXPECT_TRUE(RowMatches(table, 1, q));   // missing a counts as match
  EXPECT_FALSE(RowMatches(table, 2, q));  // 7 not in [2,4]
  EXPECT_TRUE(RowMatches(table, 3, q));   // both missing
}

TEST(RowMatchesTest, MissingNotMatchSemantics) {
  const Table table = MakeTable();
  RangeQuery q;
  q.semantics = MissingSemantics::kNoMatch;
  q.terms = {{0, {2, 4}}, {1, {1, 2}}};
  EXPECT_TRUE(RowMatches(table, 0, q));
  EXPECT_FALSE(RowMatches(table, 1, q));  // missing disqualifies
  EXPECT_FALSE(RowMatches(table, 2, q));
  EXPECT_FALSE(RowMatches(table, 3, q));
}

TEST(RowMatchesTest, SingleAttributeQueries) {
  const Table table = MakeTable();
  RangeQuery q;
  q.semantics = MissingSemantics::kMatch;
  q.terms = {{1, {2, 2}}};
  EXPECT_TRUE(RowMatches(table, 0, q));
  EXPECT_TRUE(RowMatches(table, 1, q));
  EXPECT_TRUE(RowMatches(table, 2, q));  // missing b
  q.semantics = MissingSemantics::kNoMatch;
  EXPECT_FALSE(RowMatches(table, 2, q));
}

// DESIGN.md invariant 6: match-result = no-match-result plus the rows with
// a missing search-key attribute that match on their present attributes.
TEST(RowMatchesTest, SemanticsAlgebra) {
  const Table table = MakeTable();
  RangeQuery match_query;
  match_query.semantics = MissingSemantics::kMatch;
  match_query.terms = {{0, {2, 7}}, {1, {2, 5}}};
  RangeQuery nomatch_query = match_query;
  nomatch_query.semantics = MissingSemantics::kNoMatch;
  for (uint64_t r = 0; r < table.num_rows(); ++r) {
    if (RowMatches(table, r, nomatch_query)) {
      EXPECT_TRUE(RowMatches(table, r, match_query));
    }
  }
}

TEST(MissingSemanticsTest, Names) {
  EXPECT_EQ(MissingSemanticsToString(MissingSemantics::kMatch), "match");
  EXPECT_EQ(MissingSemanticsToString(MissingSemantics::kNoMatch), "no-match");
}

}  // namespace
}  // namespace incdb
