#include "query/workload.h"

#include <gtest/gtest.h>

#include <set>

#include "query/seq_scan.h"
#include "table/generator.h"

namespace incdb {
namespace {

Table MakeUniform(uint64_t rows, uint32_t cardinality, double missing,
                  size_t attrs, uint64_t seed = 42) {
  return GenerateTable(UniformSpec(rows, cardinality, missing, attrs, seed))
      .value();
}

TEST(WorkloadTest, GeneratesRequestedCountAndDims) {
  const Table table = MakeUniform(100, 10, 0.1, 12);
  WorkloadParams params;
  params.num_queries = 25;
  params.dims = 6;
  const auto queries = GenerateWorkload(table, params);
  ASSERT_TRUE(queries.ok());
  EXPECT_EQ(queries.value().size(), 25u);
  for (const RangeQuery& q : queries.value()) {
    EXPECT_EQ(q.dimensionality(), 6u);
  }
}

TEST(WorkloadTest, QueriesAreValidAndAttributesDistinct) {
  const Table table = MakeUniform(100, 7, 0.2, 10);
  WorkloadParams params;
  params.num_queries = 50;
  params.dims = 5;
  const auto queries = GenerateWorkload(table, params);
  ASSERT_TRUE(queries.ok());
  for (const RangeQuery& q : queries.value()) {
    EXPECT_TRUE(ValidateQuery(q, table).ok());
    std::set<size_t> attrs;
    for (const QueryTerm& term : q.terms) attrs.insert(term.attribute);
    EXPECT_EQ(attrs.size(), q.terms.size());
  }
}

TEST(WorkloadTest, DeterministicInSeed) {
  const Table table = MakeUniform(100, 10, 0.1, 8);
  WorkloadParams params;
  params.seed = 1234;
  const auto a = GenerateWorkload(table, params);
  const auto b = GenerateWorkload(table, params);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_EQ(a.value().size(), b.value().size());
  for (size_t i = 0; i < a.value().size(); ++i) {
    EXPECT_EQ(a.value()[i].ToString(), b.value()[i].ToString());
  }
}

TEST(WorkloadTest, RespectsAttributePool) {
  const Table table = MakeUniform(100, 10, 0.1, 10);
  WorkloadParams params;
  params.dims = 2;
  params.attribute_pool = {3, 5, 7};
  const auto queries = GenerateWorkload(table, params);
  ASSERT_TRUE(queries.ok());
  for (const RangeQuery& q : queries.value()) {
    for (const QueryTerm& term : q.terms) {
      EXPECT_TRUE(term.attribute == 3 || term.attribute == 5 ||
                  term.attribute == 7);
    }
  }
}

TEST(WorkloadTest, PointQueries) {
  const Table table = MakeUniform(100, 10, 0.1, 8);
  WorkloadParams params;
  params.point_queries = true;
  params.dims = 3;
  const auto queries = GenerateWorkload(table, params);
  ASSERT_TRUE(queries.ok());
  for (const RangeQuery& q : queries.value()) {
    EXPECT_TRUE(q.IsPointQuery());
  }
}

TEST(WorkloadTest, FixedAttributeSelectivityControlsWidth) {
  const Table table = MakeUniform(100, 50, 0.0, 4);
  WorkloadParams params;
  params.attribute_selectivity = 0.2;  // the census experiment's 20% ranges
  params.dims = 2;
  const auto queries = GenerateWorkload(table, params);
  ASSERT_TRUE(queries.ok());
  for (const RangeQuery& q : queries.value()) {
    for (const QueryTerm& term : q.terms) {
      EXPECT_EQ(term.interval.Width(), 10u);  // 0.2 * 50
    }
  }
}

TEST(WorkloadTest, RejectsBadDims) {
  const Table table = MakeUniform(10, 5, 0.0, 3);
  WorkloadParams params;
  params.dims = 0;
  EXPECT_FALSE(GenerateWorkload(table, params).ok());
  params.dims = 4;  // more than the 3 attributes
  EXPECT_FALSE(GenerateWorkload(table, params).ok());
}

TEST(WorkloadTest, RejectsBadPoolEntry) {
  const Table table = MakeUniform(10, 5, 0.0, 3);
  WorkloadParams params;
  params.dims = 1;
  params.attribute_pool = {9};
  EXPECT_EQ(GenerateWorkload(table, params).status().code(),
            StatusCode::kOutOfRange);
}

TEST(WorkloadTest, RejectsBadGlobalSelectivity) {
  const Table table = MakeUniform(10, 5, 0.0, 3);
  WorkloadParams params;
  params.dims = 1;
  params.global_selectivity = 0.0;
  EXPECT_FALSE(GenerateWorkload(table, params).ok());
  params.global_selectivity = 1.5;
  EXPECT_FALSE(GenerateWorkload(table, params).ok());
}

// DESIGN.md invariant 7: realized selectivity tracks the GS model. The
// paper targets 1% and observes up to ~3% realized; we allow the same slop.
TEST(WorkloadTest, RealizedSelectivityTracksTarget) {
  const Table table = MakeUniform(20000, 20, 0.2, 10, 77);
  WorkloadParams params;
  params.num_queries = 40;
  params.dims = 4;
  params.global_selectivity = 0.01;
  params.semantics = MissingSemantics::kMatch;
  const auto queries = GenerateWorkload(table, params);
  ASSERT_TRUE(queries.ok());
  SequentialScan scan(table);
  uint64_t matches = 0;
  for (const RangeQuery& q : queries.value()) {
    matches += scan.Execute(q).value().size();
  }
  const double realized = static_cast<double>(matches) /
                          (40.0 * static_cast<double>(table.num_rows()));
  EXPECT_GT(realized, 0.002);
  EXPECT_LT(realized, 0.04);
}

}  // namespace
}  // namespace incdb
