#include "query/seq_scan.h"

#include <gtest/gtest.h>

#include "table/generator.h"

namespace incdb {
namespace {

Table MakeTable() {
  auto table = Table::Create(Schema({{"a", 10}, {"b", 5}})).value();
  EXPECT_TRUE(table.AppendRow({3, 2}).ok());
  EXPECT_TRUE(table.AppendRow({kMissingValue, 2}).ok());
  EXPECT_TRUE(table.AppendRow({7, kMissingValue}).ok());
  EXPECT_TRUE(table.AppendRow({kMissingValue, kMissingValue}).ok());
  EXPECT_TRUE(table.AppendRow({2, 5}).ok());
  return table;
}

TEST(SequentialScanTest, MatchSemantics) {
  const Table table = MakeTable();
  SequentialScan scan(table);
  RangeQuery q;
  q.semantics = MissingSemantics::kMatch;
  q.terms = {{0, {2, 4}}, {1, {1, 2}}};
  const auto rows = scan.Execute(q);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows.value(), (std::vector<uint32_t>{0, 1, 3}));
}

TEST(SequentialScanTest, NoMatchSemantics) {
  const Table table = MakeTable();
  SequentialScan scan(table);
  RangeQuery q;
  q.semantics = MissingSemantics::kNoMatch;
  q.terms = {{0, {2, 4}}, {1, {1, 2}}};
  const auto rows = scan.Execute(q);
  ASSERT_TRUE(rows.ok());
  EXPECT_EQ(rows.value(), (std::vector<uint32_t>{0}));
}

TEST(SequentialScanTest, BitVectorAgreesWithRowList) {
  const Table table = GenerateTable(UniformSpec(1000, 8, 0.3, 4, 21)).value();
  SequentialScan scan(table);
  RangeQuery q;
  q.semantics = MissingSemantics::kMatch;
  q.terms = {{0, {2, 5}}, {2, {1, 4}}};
  const auto rows = scan.Execute(q);
  const auto bits = scan.ExecuteToBitVector(q);
  ASSERT_TRUE(rows.ok());
  ASSERT_TRUE(bits.ok());
  EXPECT_EQ(bits.value().ToIndices(), rows.value());
}

TEST(SequentialScanTest, ValidatesQuery) {
  const Table table = MakeTable();
  SequentialScan scan(table);
  RangeQuery q;
  q.terms = {{9, {1, 1}}};
  EXPECT_FALSE(scan.Execute(q).ok());
  EXPECT_FALSE(scan.ExecuteToBitVector(q).ok());
}

TEST(SequentialScanTest, WholeDomainQueryMatchesEverythingUnderMatch) {
  const Table table = MakeTable();
  SequentialScan scan(table);
  RangeQuery q;
  q.semantics = MissingSemantics::kMatch;
  q.terms = {{0, {1, 10}}};
  EXPECT_EQ(scan.Execute(q).value().size(), 5u);
}

TEST(SequentialScanTest, WholeDomainQueryExcludesMissingUnderNoMatch) {
  const Table table = MakeTable();
  SequentialScan scan(table);
  RangeQuery q;
  q.semantics = MissingSemantics::kNoMatch;
  q.terms = {{0, {1, 10}}};
  EXPECT_EQ(scan.Execute(q).value(), (std::vector<uint32_t>{0, 2, 4}));
}

}  // namespace
}  // namespace incdb
