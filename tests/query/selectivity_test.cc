#include "query/selectivity.h"

#include <gtest/gtest.h>

#include <cmath>

namespace incdb {
namespace {

TEST(SelectivityTest, TermProbabilityMatchSemantics) {
  // GS formula term (paper §5.3): (1 - Pm) * AS + Pm.
  EXPECT_DOUBLE_EQ(
      TermMatchProbability(0.5, 0.2, MissingSemantics::kMatch),
      0.8 * 0.5 + 0.2);
  EXPECT_DOUBLE_EQ(TermMatchProbability(1.0, 0.3, MissingSemantics::kMatch),
                   1.0);
  EXPECT_DOUBLE_EQ(TermMatchProbability(0.0, 0.3, MissingSemantics::kMatch),
                   0.3);
}

TEST(SelectivityTest, TermProbabilityNoMatchSemantics) {
  EXPECT_DOUBLE_EQ(
      TermMatchProbability(0.5, 0.2, MissingSemantics::kNoMatch), 0.4);
  EXPECT_DOUBLE_EQ(
      TermMatchProbability(1.0, 0.3, MissingSemantics::kNoMatch), 0.7);
}

TEST(SelectivityTest, GlobalSelectivityPower) {
  const double gs =
      PredictGlobalSelectivity(0.5, 0.2, 3, MissingSemantics::kMatch);
  EXPECT_NEAR(gs, std::pow(0.6, 3), 1e-12);
}

TEST(SelectivityTest, SolveInvertsPredictMatch) {
  for (double gs : {0.01, 0.1, 0.5}) {
    for (double pm : {0.0, 0.1, 0.3}) {
      for (size_t k : {size_t{1}, size_t{4}, size_t{8}}) {
        const double as =
            SolveAttributeSelectivity(gs, pm, k, MissingSemantics::kMatch);
        if (as > 0.0 && as < 1.0) {
          EXPECT_NEAR(
              PredictGlobalSelectivity(as, pm, k, MissingSemantics::kMatch),
              gs, 1e-12);
        }
      }
    }
  }
}

TEST(SelectivityTest, SolveInvertsPredictNoMatch) {
  const double as =
      SolveAttributeSelectivity(0.01, 0.2, 4, MissingSemantics::kNoMatch);
  EXPECT_NEAR(
      PredictGlobalSelectivity(as, 0.2, 4, MissingSemantics::kNoMatch), 0.01,
      1e-12);
}

TEST(SelectivityTest, SolveClampsWhenMissingRateExceedsTarget) {
  // With Pm = 0.5 and 8 dims, GS^(1/8) ≈ 0.56 for GS = 1%; AS is small but
  // positive. With Pm = 0.9, missing alone exceeds the target → clamp to 0.
  const double as =
      SolveAttributeSelectivity(0.01, 0.9, 8, MissingSemantics::kMatch);
  EXPECT_DOUBLE_EQ(as, 0.0);
}

TEST(SelectivityTest, SolveClampsToOne) {
  // A high GS target at high missing rates can demand AS > 1 → clamp.
  const double as =
      SolveAttributeSelectivity(0.99, 0.0, 1, MissingSemantics::kNoMatch);
  EXPECT_LE(as, 1.0);
  const double clamped =
      SolveAttributeSelectivity(0.9, 0.5, 1, MissingSemantics::kNoMatch);
  EXPECT_DOUBLE_EQ(clamped, 1.0);
}

TEST(SelectivityTest, FullyMissingAttribute) {
  EXPECT_DOUBLE_EQ(
      SolveAttributeSelectivity(0.01, 1.0, 2, MissingSemantics::kMatch), 0.0);
  EXPECT_DOUBLE_EQ(
      SolveAttributeSelectivity(0.01, 1.0, 2, MissingSemantics::kNoMatch),
      0.0);
}

// Paper §5.3 worked relationship: fixing GS and raising Pm lowers AS.
TEST(SelectivityTest, AttributeSelectivityDecreasesWithMissingRate) {
  double prev = 1.0;
  for (double pm : {0.1, 0.2, 0.3, 0.4, 0.5}) {
    const double as =
        SolveAttributeSelectivity(0.01, pm, 8, MissingSemantics::kMatch);
    EXPECT_LT(as, prev);
    prev = as;
  }
}

}  // namespace
}  // namespace incdb
