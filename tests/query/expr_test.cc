#include "query/expr.h"

#include <gtest/gtest.h>

namespace incdb {
namespace {

Table MakeTable() {
  auto table = Table::Create(Schema({{"a", 10}, {"b", 5}})).value();
  // row 0: (3, 2)   row 1: (?, 2)   row 2: (7, ?)   row 3: (?, ?)
  EXPECT_TRUE(table.AppendRow({3, 2}).ok());
  EXPECT_TRUE(table.AppendRow({kMissingValue, 2}).ok());
  EXPECT_TRUE(table.AppendRow({7, kMissingValue}).ok());
  EXPECT_TRUE(table.AppendRow({kMissingValue, kMissingValue}).ok());
  return table;
}

TEST(TruthTest, KleeneTables) {
  using enum Truth;
  EXPECT_EQ(TruthAnd(kTrue, kTrue), kTrue);
  EXPECT_EQ(TruthAnd(kTrue, kUnknown), kUnknown);
  EXPECT_EQ(TruthAnd(kFalse, kUnknown), kFalse);
  EXPECT_EQ(TruthOr(kFalse, kUnknown), kUnknown);
  EXPECT_EQ(TruthOr(kTrue, kUnknown), kTrue);
  EXPECT_EQ(TruthOr(kFalse, kFalse), kFalse);
  EXPECT_EQ(TruthNot(kTrue), kFalse);
  EXPECT_EQ(TruthNot(kFalse), kTrue);
  EXPECT_EQ(TruthNot(kUnknown), kUnknown);
}

TEST(TruthTest, Names) {
  EXPECT_EQ(TruthToString(Truth::kUnknown), "unknown");
}

TEST(QueryExprTest, TermEvaluation) {
  const Table table = MakeTable();
  const QueryExpr term = QueryExpr::MakeTerm(0, {2, 4});
  EXPECT_EQ(term.Evaluate(table, 0), Truth::kTrue);     // 3 in [2,4]
  EXPECT_EQ(term.Evaluate(table, 1), Truth::kUnknown);  // missing
  EXPECT_EQ(term.Evaluate(table, 2), Truth::kFalse);    // 7 not in [2,4]
}

TEST(QueryExprTest, NotOnMissingStaysUnknown) {
  const Table table = MakeTable();
  const QueryExpr negated = QueryExpr::MakeNot(QueryExpr::MakeTerm(0, {2, 4}));
  EXPECT_EQ(negated.Evaluate(table, 0), Truth::kFalse);
  EXPECT_EQ(negated.Evaluate(table, 1), Truth::kUnknown);
  EXPECT_EQ(negated.Evaluate(table, 2), Truth::kTrue);
}

TEST(QueryExprTest, AndOrCombineKleene) {
  const Table table = MakeTable();
  const QueryExpr both = QueryExpr::MakeAnd(
      {QueryExpr::MakeTerm(0, {2, 4}), QueryExpr::MakeTerm(1, {1, 2})});
  EXPECT_EQ(both.Evaluate(table, 0), Truth::kTrue);
  EXPECT_EQ(both.Evaluate(table, 1), Truth::kUnknown);  // ? AND true
  EXPECT_EQ(both.Evaluate(table, 2), Truth::kFalse);    // false AND ?
  EXPECT_EQ(both.Evaluate(table, 3), Truth::kUnknown);

  const QueryExpr either = QueryExpr::MakeOr(
      {QueryExpr::MakeTerm(0, {2, 4}), QueryExpr::MakeTerm(1, {1, 2})});
  EXPECT_EQ(either.Evaluate(table, 0), Truth::kTrue);
  EXPECT_EQ(either.Evaluate(table, 1), Truth::kTrue);    // ? OR true
  EXPECT_EQ(either.Evaluate(table, 2), Truth::kUnknown);  // false OR ?
}

TEST(QueryExprTest, ExprMatchesImplementsPossibleAndCertain) {
  const Table table = MakeTable();
  const QueryExpr expr = QueryExpr::MakeAnd(
      {QueryExpr::MakeTerm(0, {2, 4}), QueryExpr::MakeTerm(1, {1, 2})});
  // Possible answers (missing-is-match): rows 0, 1, 3.
  EXPECT_TRUE(ExprMatches(table, 0, expr, MissingSemantics::kMatch));
  EXPECT_TRUE(ExprMatches(table, 1, expr, MissingSemantics::kMatch));
  EXPECT_FALSE(ExprMatches(table, 2, expr, MissingSemantics::kMatch));
  EXPECT_TRUE(ExprMatches(table, 3, expr, MissingSemantics::kMatch));
  // Certain answers: row 0 only.
  EXPECT_TRUE(ExprMatches(table, 0, expr, MissingSemantics::kNoMatch));
  EXPECT_FALSE(ExprMatches(table, 1, expr, MissingSemantics::kNoMatch));
}

TEST(QueryExprTest, ConjunctionReducesToRangeQuerySemantics) {
  const Table table = MakeTable();
  RangeQuery query;
  query.terms = {{0, {2, 4}}, {1, {1, 2}}};
  const QueryExpr expr = QueryExpr::FromRangeQuery(query);
  for (MissingSemantics semantics :
       {MissingSemantics::kMatch, MissingSemantics::kNoMatch}) {
    query.semantics = semantics;
    for (uint64_t r = 0; r < table.num_rows(); ++r) {
      EXPECT_EQ(ExprMatches(table, r, expr, semantics),
                RowMatches(table, r, query))
          << "row " << r;
    }
  }
}

TEST(QueryExprTest, ValidateCatchesBadTrees) {
  const Table table = MakeTable();
  EXPECT_TRUE(QueryExpr::MakeTerm(0, {1, 10}).Validate(table).ok());
  EXPECT_FALSE(QueryExpr::MakeTerm(9, {1, 1}).Validate(table).ok());
  EXPECT_FALSE(QueryExpr::MakeTerm(1, {1, 9}).Validate(table).ok());
  EXPECT_FALSE(QueryExpr::MakeAnd({}).Validate(table).ok());
  EXPECT_FALSE(QueryExpr::MakeOr({}).Validate(table).ok());
  // Errors propagate through nesting.
  EXPECT_FALSE(QueryExpr::MakeNot(QueryExpr::MakeTerm(9, {1, 1}))
                   .Validate(table)
                   .ok());
}

TEST(QueryExprTest, ToString) {
  const QueryExpr expr = QueryExpr::MakeOr(
      {QueryExpr::MakeNot(QueryExpr::MakeTerm(0, {2, 4})),
       QueryExpr::MakeAnd(
           {QueryExpr::MakeTerm(1, {1, 1}), QueryExpr::MakeTerm(2, {3, 5})})});
  EXPECT_EQ(expr.ToString(),
            "(NOT A0 in [2,4] OR (A1 in [1,1] AND A2 in [3,5]))");
}

TEST(QueryExprTest, DoubleNegationPreservesTruth) {
  const Table table = MakeTable();
  const QueryExpr term = QueryExpr::MakeTerm(0, {2, 4});
  const QueryExpr double_not = QueryExpr::MakeNot(QueryExpr::MakeNot(term));
  for (uint64_t r = 0; r < table.num_rows(); ++r) {
    EXPECT_EQ(double_not.Evaluate(table, r), term.Evaluate(table, r));
  }
}

TEST(QueryExprTest, DeMorganHoldsUnderKleene) {
  const Table table = MakeTable();
  const QueryExpr a = QueryExpr::MakeTerm(0, {2, 4});
  const QueryExpr b = QueryExpr::MakeTerm(1, {1, 2});
  const QueryExpr lhs = QueryExpr::MakeNot(QueryExpr::MakeAnd({a, b}));
  const QueryExpr rhs =
      QueryExpr::MakeOr({QueryExpr::MakeNot(a), QueryExpr::MakeNot(b)});
  for (uint64_t r = 0; r < table.num_rows(); ++r) {
    EXPECT_EQ(lhs.Evaluate(table, r), rhs.Evaluate(table, r)) << r;
  }
}

}  // namespace
}  // namespace incdb
