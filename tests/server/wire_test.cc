// The wire codec is a frozen contract (core/query_api.h, common/status.h):
// these tests pin round-trip fidelity, the compatibility rules (unknown
// fields skipped, absent fields defaulted), and the exact byte layout of a
// frame header, so an accidental renumbering or layout change fails loudly.

#include <gtest/gtest.h>

#include <cstdint>
#include <vector>

#include "server/wire.h"

namespace incdb {
namespace server {
namespace wire {
namespace {

QueryRequest FullRequest() {
  QueryRequest request = QueryRequest::Terms(
      {{"rating", 2, 5}, {"price", -3, 9}}, MissingSemantics::kNoMatch);
  request.CountOnly(false).Parallel(4).Explain(true).DeadlineMillis(250).Limit(
      17);
  return request;
}

TEST(WireTest, FrameHeaderLayoutIsFrozen) {
  uint8_t header[kFrameHeaderBytes];
  PutFrameHeader(MsgType::kQuery, 0x01020304u, header);
  // Little-endian length first, then the type byte — the five bytes every
  // peer ever built parses.
  EXPECT_EQ(header[0], 0x04);
  EXPECT_EQ(header[1], 0x03);
  EXPECT_EQ(header[2], 0x02);
  EXPECT_EQ(header[3], 0x01);
  EXPECT_EQ(header[4], 3);  // MsgType::kQuery

  MsgType type;
  uint32_t body_len = 0;
  ASSERT_TRUE(ParseFrameHeader(header, /*max_body=*/0x02000000u, &type,
                               &body_len)
                  .ok());
  EXPECT_EQ(type, MsgType::kQuery);
  EXPECT_EQ(body_len, 0x01020304u);
}

TEST(WireTest, FrameHeaderRejectsOversizedBody) {
  uint8_t header[kFrameHeaderBytes];
  PutFrameHeader(MsgType::kQuery, 1u << 20, header);
  MsgType type;
  uint32_t body_len = 0;
  const Status status =
      ParseFrameHeader(header, /*max_body=*/1u << 10, &type, &body_len);
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
}

TEST(WireTest, HelloRoundTripsAndCarriesMagic) {
  Hello hello;
  hello.peer_name = "wire_test";
  const auto decoded = DecodeHello(EncodeHello(hello));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->magic, kMagic);
  EXPECT_EQ(decoded->version, kProtocolVersion);
  EXPECT_EQ(decoded->peer_name, "wire_test");
}

TEST(WireTest, QueryRequestRoundTripsEveryField) {
  const QueryRequest request = FullRequest();
  const auto decoded = DecodeQueryRequest(EncodeQueryRequest(request));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->shape, QueryRequest::Shape::kTerms);
  EXPECT_EQ(decoded->semantics, MissingSemantics::kNoMatch);
  ASSERT_EQ(decoded->terms.size(), 2u);
  EXPECT_EQ(decoded->terms[0].attribute, "rating");
  EXPECT_EQ(decoded->terms[0].lo, 2);
  EXPECT_EQ(decoded->terms[0].hi, 5);
  EXPECT_EQ(decoded->terms[1].attribute, "price");
  EXPECT_EQ(decoded->terms[1].lo, -3);
  EXPECT_EQ(decoded->terms[1].hi, 9);
  EXPECT_FALSE(decoded->count_only);
  EXPECT_EQ(decoded->parallelism, 4u);
  EXPECT_TRUE(decoded->explain);
  EXPECT_EQ(decoded->deadline_millis, 250u);
  EXPECT_EQ(decoded->limit, 17u);
}

TEST(WireTest, ExpressionRequestRoundTripsTheTree) {
  const QueryExpr expr = QueryExpr::MakeAnd(
      {QueryExpr::MakeTerm(0, {2, 5}),
       QueryExpr::MakeNot(QueryExpr::MakeOr({QueryExpr::MakeTerm(1, {1, 1}),
                                             QueryExpr::MakeTerm(2, {3, 7})}))});
  const QueryRequest request = QueryRequest::Expression(expr);
  const auto decoded = DecodeQueryRequest(EncodeQueryRequest(request));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  ASSERT_TRUE(decoded->expression.has_value());
  // Structural identity via the canonical rendering.
  EXPECT_EQ(decoded->expression->ToString(), expr.ToString());
}

TEST(WireTest, TextRequestRoundTrips) {
  const QueryRequest request =
      QueryRequest::Text("rating >= 3 AND NOT price = 1");
  const auto decoded = DecodeQueryRequest(EncodeQueryRequest(request));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->shape, QueryRequest::Shape::kText);
  EXPECT_EQ(decoded->text, "rating >= 3 AND NOT price = 1");
}

TEST(WireTest, DecodeValidatesTheRequest) {
  // Structurally sound TLV, semantically malformed request (no terms):
  // decode must reject it so a daemon never plans it.
  QueryRequest empty;
  empty.shape = QueryRequest::Shape::kTerms;
  const auto decoded = DecodeQueryRequest(EncodeQueryRequest(empty));
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

TEST(WireTest, QueryResultRoundTripsStatsAndRouting) {
  QueryResult result;
  result.count = 12345;
  result.row_ids = {0, 7, 31, 4096, 0xFFFFFFFFu};
  result.chosen_index = "BEE-WAH";
  result.epoch = 42;
  result.visible_rows = 1u << 20;
  result.explain = "Sink\n  Probe a0\n";
  result.stats.bitvectors_accessed = 5;
  result.stats.bitvector_ops = 4;
  result.stats.words_touched = 777;
  result.stats.simd_path = 3;
  result.stats.words_decoded = 512;
  result.stats.segments_scanned = 6;
  result.stats.segments_pruned = 2;
  result.routing.index_name = "BEE-WAH";
  result.routing.is_point_query = true;
  result.routing.estimated_selectivity = 0.125;
  result.routing.estimated_cost = 98.5;

  const auto decoded = DecodeQueryResult(EncodeQueryResult(result));
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->count, 12345u);
  EXPECT_EQ(decoded->row_ids, result.row_ids);
  EXPECT_EQ(decoded->chosen_index, "BEE-WAH");
  EXPECT_EQ(decoded->epoch, 42u);
  EXPECT_EQ(decoded->visible_rows, 1u << 20);
  EXPECT_EQ(decoded->explain, result.explain);
  EXPECT_EQ(decoded->stats.bitvectors_accessed, 5u);
  EXPECT_EQ(decoded->stats.bitvector_ops, 4u);
  EXPECT_EQ(decoded->stats.words_touched, 777u);
  EXPECT_EQ(decoded->stats.simd_path, 3u);
  EXPECT_EQ(decoded->stats.words_decoded, 512u);
  EXPECT_EQ(decoded->stats.segments_scanned, 6u);
  EXPECT_EQ(decoded->stats.segments_pruned, 2u);
  EXPECT_EQ(decoded->routing.index_name, "BEE-WAH");
  EXPECT_TRUE(decoded->routing.is_point_query);
  EXPECT_DOUBLE_EQ(decoded->routing.estimated_selectivity, 0.125);
  EXPECT_DOUBLE_EQ(decoded->routing.estimated_cost, 98.5);
}

TEST(WireTest, StatusRoundTripsTheNumericCodeVerbatim) {
  for (const StatusCode code :
       {StatusCode::kInvalidArgument, StatusCode::kNotFound,
        StatusCode::kDeadlineExceeded, StatusCode::kOverloaded,
        StatusCode::kUnavailable, StatusCode::kInternal}) {
    const Status original(code, "remote message");
    const Status decoded = DecodeStatus(EncodeStatus(original));
    EXPECT_EQ(decoded.code(), code);
    EXPECT_EQ(decoded.message(), "remote message");
  }
}

TEST(WireTest, UnknownFutureStatusCodeDegradesToInternal) {
  // A newer server may answer with a code this build predates; the client
  // must preserve the information without fabricating an enum value.
  std::vector<uint8_t> body;
  // field 1 (u32 code), hand-rolled: id=1, len=4, value=9999.
  const uint8_t raw[] = {1, 0, 4, 0, 0, 0, 0x0F, 0x27, 0, 0};
  body.assign(raw, raw + sizeof(raw));
  const Status decoded = DecodeStatus(body);
  EXPECT_EQ(decoded.code(), StatusCode::kInternal);
  EXPECT_NE(decoded.message().find("9999"), std::string::npos);
}

TEST(WireTest, ServerStatsRoundTrips) {
  ServerStats stats;
  stats.accepted_connections = 10;
  stats.active_connections = 3;
  stats.admitted = 100;
  stats.rejected_overloaded = 7;
  stats.rejected_invalid = 2;
  stats.shed_expired = 1;
  stats.deadline_exceeded = 4;
  stats.completed = 88;
  stats.failed = 5;
  stats.queue_depth = 6;
  stats.queue_capacity = 64;
  stats.workers = 8;
  stats.p50_micros = 1500;
  stats.p99_micros = 90000;
  stats.uptime_millis = 123456;
  stats.draining = true;
  stats.segments = 17;
  stats.compactions = 3;
  stats.compaction_reclaimed_rows = 999;
  stats.compaction_reclaimed_bytes = 11988;
  const auto decoded = DecodeServerStats(EncodeServerStats(stats));
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->accepted_connections, 10u);
  EXPECT_EQ(decoded->active_connections, 3u);
  EXPECT_EQ(decoded->admitted, 100u);
  EXPECT_EQ(decoded->rejected_overloaded, 7u);
  EXPECT_EQ(decoded->rejected_invalid, 2u);
  EXPECT_EQ(decoded->shed_expired, 1u);
  EXPECT_EQ(decoded->deadline_exceeded, 4u);
  EXPECT_EQ(decoded->completed, 88u);
  EXPECT_EQ(decoded->failed, 5u);
  EXPECT_EQ(decoded->queue_depth, 6u);
  EXPECT_EQ(decoded->queue_capacity, 64u);
  EXPECT_EQ(decoded->workers, 8u);
  EXPECT_EQ(decoded->p50_micros, 1500u);
  EXPECT_EQ(decoded->p99_micros, 90000u);
  EXPECT_EQ(decoded->uptime_millis, 123456u);
  EXPECT_TRUE(decoded->draining);
  EXPECT_EQ(decoded->segments, 17u);
  EXPECT_EQ(decoded->compactions, 3u);
  EXPECT_EQ(decoded->compaction_reclaimed_rows, 999u);
  EXPECT_EQ(decoded->compaction_reclaimed_bytes, 11988u);
}

TEST(WireTest, DecoderSkipsUnknownFieldsForForwardCompatibility) {
  // A frame from a future peer: a known message with an extra field id
  // 999 prepended AND appended. Today's decoder must ignore both.
  const std::vector<uint8_t> known = EncodeQueryRequest(FullRequest());
  std::vector<uint8_t> extended;
  const uint8_t unknown_field[] = {0xE7, 0x03, 3, 0, 0, 0, 0xAA, 0xBB, 0xCC};
  extended.insert(extended.end(), unknown_field,
                  unknown_field + sizeof(unknown_field));
  extended.insert(extended.end(), known.begin(), known.end());
  extended.insert(extended.end(), unknown_field,
                  unknown_field + sizeof(unknown_field));
  const auto decoded = DecodeQueryRequest(extended);
  ASSERT_TRUE(decoded.ok()) << decoded.status().ToString();
  EXPECT_EQ(decoded->terms.size(), 2u);
  EXPECT_EQ(decoded->limit, 17u);
}

TEST(WireTest, AbsentFieldsDefaultForBackwardCompatibility) {
  // A minimal frame from an older peer: only shape + one term. Everything
  // else must take the in-process defaults.
  const std::vector<uint8_t> minimal =
      EncodeQueryRequest(QueryRequest::Terms({{"a0", 1, 2}}));
  const auto decoded = DecodeQueryRequest(minimal);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded->semantics, MissingSemantics::kMatch);
  EXPECT_FALSE(decoded->count_only);
  EXPECT_EQ(decoded->parallelism, 1u);
  EXPECT_EQ(decoded->deadline_millis, 0u);
  EXPECT_EQ(decoded->limit, 0u);
}

TEST(WireTest, TruncatedBodiesAreCleanErrors) {
  const std::vector<uint8_t> full = EncodeQueryRequest(FullRequest());
  // Chop the encoding at every prefix length: no prefix may crash, and
  // any that parses must still validate as a well-formed request.
  for (size_t len = 0; len < full.size(); ++len) {
    const std::vector<uint8_t> prefix(full.begin(), full.begin() + len);
    const auto decoded = DecodeQueryRequest(prefix);
    if (decoded.ok()) {
      EXPECT_TRUE(decoded->Validate().ok()) << "prefix " << len;
    } else {
      EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument)
          << "prefix " << len;
    }
  }
}

TEST(WireTest, GarbageBytesAreCleanErrors) {
  // Deterministic xorshift garbage at several lengths; decode must always
  // return (no crash, no hang, no UB — the asan job proves the "no UB").
  uint64_t state = 0x9E3779B97F4A7C15ull;
  for (const size_t len : {1u, 7u, 64u, 513u, 4096u}) {
    std::vector<uint8_t> garbage(len);
    for (auto& byte : garbage) {
      state ^= state << 13;
      state ^= state >> 7;
      state ^= state << 17;
      byte = static_cast<uint8_t>(state);
    }
    (void)DecodeQueryRequest(garbage);
    (void)DecodeQueryResult(garbage);
    (void)DecodeHello(garbage);
    (void)DecodeServerStats(garbage);
    (void)DecodeStatus(garbage);
  }
}

TEST(WireTest, HostileExpressionNestingIsBounded) {
  // 1000 nested NOTs would recurse the decoder 1000 deep; the cap must
  // reject it as invalid input, not overflow the stack.
  QueryExpr expr = QueryExpr::MakeTerm(0, {1, 2});
  for (int i = 0; i < 1000; ++i) expr = QueryExpr::MakeNot(expr);
  const std::vector<uint8_t> body =
      EncodeQueryRequest(QueryRequest::Expression(expr));
  const auto decoded = DecodeQueryRequest(body);
  ASSERT_FALSE(decoded.ok());
  EXPECT_EQ(decoded.status().code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace wire
}  // namespace server
}  // namespace incdb
