// Many-client stress against a live daemon while a writer mutates the
// database: the race-condition hunting ground for the whole serving path
// (admission, queue, worker pool, per-connection I/O, snapshot pinning).
// Run under TSan (tools/check.sh tsan) — the tier1-server label is part
// of the tsan second pass.
//
// The correctness oracle is snapshot pinning: every answer must be
// internally consistent with the epoch it was pinned to. Rows only ever
// get appended with a known value pattern, so for any epoch we can state
// exactly how many rows a value-based predicate must match.

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <cstdint>
#include <string>
#include <thread>
#include <vector>

#include "core/database.h"
#include "server/client.h"
#include "server/server.h"
#include "table/schema.h"
#include "table/table.h"

namespace incdb {
namespace server {
namespace {

constexpr uint64_t kBaseRows = 4000;

// Base table: 4 attributes, every value 1 (no NULLs). Appended rows are
// all {2, 2, 2, 2}. So on ANY snapshot: count(a0 in [1,1]) == kBaseRows
// and count(a0 in [2,2]) == visible_rows - kBaseRows. That invariant
// holding for every reply under concurrency is the pinning oracle.
Database MakeUniformDb() {
  Table table = Table::Create(Schema({{"a0", 4}, {"a1", 4}, {"a2", 4},
                                      {"a3", 4}}))
                    .value();
  for (uint64_t row = 0; row < kBaseRows; ++row) {
    EXPECT_TRUE(table.AppendRow({1, 1, 1, 1}).ok());
  }
  Database db = Database::FromTable(std::move(table)).value();
  EXPECT_TRUE(db.BuildIndex(IndexKind::kBitmapEquality).ok());
  return db;
}

TEST(ServerStressTest, ManyClientsAgainstAConcurrentWriter) {
  Database db = MakeUniformDb();
  ServerOptions options;
  options.queue_capacity = 256;
  auto server = Server::Start(&db, std::move(options));
  ASSERT_TRUE(server.ok()) << server.status().ToString();

  std::atomic<bool> stop{false};
  std::atomic<uint64_t> oracle_checks{0};

  // The writer appends {2,2,2,2} rows for the whole run.
  std::thread writer([&] {
    while (!stop.load(std::memory_order_acquire)) {
      ASSERT_TRUE(db.Insert({2, 2, 2, 2}).ok());
      std::this_thread::sleep_for(std::chrono::microseconds(200));
    }
  });

  constexpr int kClients = 8;
  constexpr int kRequestsPerClient = 40;
  std::vector<std::thread> clients;
  for (int c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      ClientOptions client_options;
      client_options.client_name = "stress-" + std::to_string(c);
      auto client =
          Client::Connect("127.0.0.1", (*server)->port(), client_options);
      ASSERT_TRUE(client.ok()) << client.status().ToString();
      for (int i = 0; i < kRequestsPerClient; ++i) {
        // Alternate between the two predicate families of the oracle.
        const Value value = (i % 2 == 0) ? 1 : 2;
        const auto result =
            client->Run(QueryRequest::Terms({{"a0", value, value}})
                            .CountOnly(true));
        // Transient overload is legal under stress; wrong answers are not.
        if (!result.ok()) {
          ASSERT_EQ(result.status().code(), StatusCode::kOverloaded)
              << result.status().ToString();
          continue;
        }
        ASSERT_GE(result->visible_rows, kBaseRows);
        const uint64_t expected = (value == 1)
                                      ? kBaseRows
                                      : result->visible_rows - kBaseRows;
        ASSERT_EQ(result->count, expected)
            << "client " << c << " request " << i << " epoch "
            << result->epoch << " visible_rows " << result->visible_rows;
        oracle_checks.fetch_add(1, std::memory_order_relaxed);
      }
    });
  }

  for (auto& client : clients) client.join();
  stop.store(true, std::memory_order_release);
  writer.join();

  // The run must have exercised the oracle meaningfully, and the server's
  // own books must balance.
  EXPECT_GT(oracle_checks.load(), 0u);
  const auto stats = (*server)->StatsSnapshot();
  EXPECT_EQ(stats.admitted,
            stats.completed + stats.failed + stats.deadline_exceeded +
                stats.shed_expired);
  (*server)->Shutdown();
}

TEST(ServerStressTest, StatsPollingRacesQueriesAndWrites) {
  // Hammer the stats endpoint (reads every counter and the latency ring)
  // while queries and writes are in flight: TSan fodder for the metrics.
  Database db = MakeUniformDb();
  auto server = Server::Start(&db, {});
  ASSERT_TRUE(server.ok());

  std::atomic<bool> stop{false};
  std::thread writer([&] {
    while (!stop.load(std::memory_order_acquire)) {
      ASSERT_TRUE(db.Insert({2, 2, 2, 2}).ok());
      std::this_thread::sleep_for(std::chrono::microseconds(500));
    }
  });
  std::thread poller([&] {
    auto client = Client::Connect("127.0.0.1", (*server)->port());
    ASSERT_TRUE(client.ok());
    while (!stop.load(std::memory_order_acquire)) {
      ASSERT_TRUE(client->Stats().ok());
    }
  });

  auto client = Client::Connect("127.0.0.1", (*server)->port());
  ASSERT_TRUE(client.ok());
  for (int i = 0; i < 60; ++i) {
    const auto result = client->Run(QueryRequest::Terms({{"a0", 1, 2}}));
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    ASSERT_EQ(result->count, result->visible_rows);
  }

  stop.store(true, std::memory_order_release);
  writer.join();
  poller.join();
  (*server)->Shutdown();
}

TEST(ServerStressTest, ShutdownRacesActiveClients) {
  // Drain while clients are mid-flight: every outstanding request gets
  // either its answer or a clean kUnavailable — never a hang.
  Database db = MakeUniformDb();
  auto server = Server::Start(&db, {});
  ASSERT_TRUE(server.ok());

  std::vector<std::thread> clients;
  std::atomic<uint64_t> answered{0};
  std::atomic<uint64_t> turned_away{0};
  for (int c = 0; c < 6; ++c) {
    clients.emplace_back([&] {
      auto client = Client::Connect("127.0.0.1", (*server)->port());
      if (!client.ok()) return;  // listener may already be gone
      for (int i = 0; i < 50; ++i) {
        const auto result = client->Run(QueryRequest::Terms({{"a0", 1, 2}}));
        if (result.ok()) {
          answered.fetch_add(1, std::memory_order_relaxed);
        } else {
          turned_away.fetch_add(1, std::memory_order_relaxed);
          return;  // server is draining; connection is done
        }
      }
    });
  }
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  (*server)->Shutdown();
  for (auto& client : clients) client.join();
  // Liveness is the assertion: joining at all means nobody hung. Some
  // requests usually complete before the drain lands.
  EXPECT_GT(answered.load() + turned_away.load(), 0u);
}

}  // namespace
}  // namespace server
}  // namespace incdb
