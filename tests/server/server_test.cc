// End-to-end daemon behavior over real sockets on an ephemeral loopback
// port: handshake, query round trips carrying the full result schema,
// admission control (OVERLOADED), queued-deadline shedding, graceful
// drain, and the observability counters.

#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <thread>
#include <vector>

#include "core/database.h"
#include "server/client.h"
#include "server/server.h"
#include "table/generator.h"

namespace incdb {
namespace server {
namespace {

Database MakeDb(uint64_t rows, uint64_t seed) {
  Database db = Database::FromTable(
                    GenerateTable(UniformSpec(rows, 8, 0.2, 4, seed)).value())
                    .value();
  EXPECT_TRUE(db.BuildIndex(IndexKind::kBitmapEquality).ok());
  return db;
}

std::unique_ptr<Server> StartServer(const Database* db,
                                    ServerOptions options = {}) {
  options.host = "127.0.0.1";
  options.port = 0;
  auto server = Server::Start(db, std::move(options));
  EXPECT_TRUE(server.ok()) << server.status().ToString();
  return std::move(*server);
}

TEST(ServerTest, QueryRoundTripMatchesLocalExecution) {
  const Database db = MakeDb(5000, 7001);
  const auto server = StartServer(&db);
  auto client = Client::Connect("127.0.0.1", server->port());
  ASSERT_TRUE(client.ok()) << client.status().ToString();
  EXPECT_EQ(client->server_hello().peer_name, "incdb_serverd");

  const QueryRequest request = QueryRequest::Terms({{"a0", 2, 5}, {"a1", 1, 4}});
  const auto local = db.Run(request);
  ASSERT_TRUE(local.ok());
  const auto remote = client->Run(request);
  ASSERT_TRUE(remote.ok()) << remote.status().ToString();
  EXPECT_EQ(remote->row_ids, local->row_ids);
  EXPECT_EQ(remote->count, local->count);
  EXPECT_EQ(remote->chosen_index, local->chosen_index);
  EXPECT_EQ(remote->epoch, local->epoch);
  EXPECT_EQ(remote->visible_rows, local->visible_rows);
  EXPECT_EQ(remote->stats.bitvectors_accessed,
            local->stats.bitvectors_accessed);
  EXPECT_EQ(remote->routing.index_name, local->routing.index_name);
}

TEST(ServerTest, ServerSideErrorsComeBackWithTheirOriginalCode) {
  const Database db = MakeDb(500, 7011);
  const auto server = StartServer(&db);
  auto client = Client::Connect("127.0.0.1", server->port());
  ASSERT_TRUE(client.ok());
  // Valid request shape, unknown attribute: fails at name resolution
  // server-side and the numeric code must survive the wire.
  const auto result = client->Run(QueryRequest::Terms({{"nope", 1, 1}}));
  ASSERT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  // The connection survives a request-level error.
  EXPECT_TRUE(client->Ping().ok());
}

TEST(ServerTest, MultipleSequentialRequestsPerConnection) {
  const Database db = MakeDb(2000, 7021);
  const auto server = StartServer(&db);
  auto client = Client::Connect("127.0.0.1", server->port());
  ASSERT_TRUE(client.ok());
  for (int i = 0; i < 20; ++i) {
    const Value lo = static_cast<Value>(1 + i % 5);
    const auto result = client->Run(QueryRequest::Terms(
        {{"a" + std::to_string(i % 4), lo, static_cast<Value>(lo + 2)}}));
    ASSERT_TRUE(result.ok()) << i << ": " << result.status().ToString();
  }
  const auto stats = client->Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->completed, 20u);
  EXPECT_EQ(stats->admitted, 20u);
}

TEST(ServerTest, OverloadedQueueRejectsWithBackpressure) {
  const Database db = MakeDb(2000, 7031);
  ServerOptions options;
  options.workers = 1;
  options.queue_capacity = 2;
  const auto server = StartServer(&db, options);
  // Freeze the worker pool so the queue fills deterministically.
  server->PauseWorkersForTesting();

  // Each held request needs its own connection (one outstanding request
  // per connection); issue them from threads since Run blocks.
  std::vector<std::thread> holders;
  std::vector<Result<QueryResult>> held;
  held.reserve(2);
  for (int i = 0; i < 2; ++i) held.emplace_back(Status::OK());
  for (int i = 0; i < 2; ++i) {
    holders.emplace_back([&, i] {
      auto client = Client::Connect("127.0.0.1", server->port());
      ASSERT_TRUE(client.ok());
      held[i] = client->Run(QueryRequest::Terms({{"a0", 1, 4}}));
    });
  }
  // Wait until both requests are actually queued.
  while (server->StatsSnapshot().queue_depth < 2) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // The queue is at its high-water mark: the next request must be
  // rejected immediately with kOverloaded, not block.
  auto rejected_client = Client::Connect("127.0.0.1", server->port());
  ASSERT_TRUE(rejected_client.ok());
  const auto start = std::chrono::steady_clock::now();
  const auto rejected =
      rejected_client->Run(QueryRequest::Terms({{"a0", 1, 4}}));
  const auto elapsed = std::chrono::steady_clock::now() - start;
  ASSERT_FALSE(rejected.ok());
  EXPECT_EQ(rejected.status().code(), StatusCode::kOverloaded);
  // "Fail fast": the rejection never waits on the frozen workers.
  EXPECT_LT(std::chrono::duration_cast<std::chrono::milliseconds>(elapsed)
                .count(),
            2000);

  server->ResumeWorkersForTesting();
  for (auto& holder : holders) holder.join();
  EXPECT_TRUE(held[0].ok()) << held[0].status().ToString();
  EXPECT_TRUE(held[1].ok()) << held[1].status().ToString();

  const auto stats = server->StatsSnapshot();
  EXPECT_EQ(stats.rejected_overloaded, 1u);
  EXPECT_EQ(stats.admitted, 2u);
  EXPECT_EQ(stats.completed, 2u);
}

TEST(ServerTest, QueuedDeadlineExpiryShedsWithoutExecuting) {
  const Database db = MakeDb(2000, 7041);
  ServerOptions options;
  options.workers = 1;
  const auto server = StartServer(&db, options);
  server->PauseWorkersForTesting();

  std::thread holder([&] {
    auto client = Client::Connect("127.0.0.1", server->port());
    ASSERT_TRUE(client.ok());
    const auto result = client->Run(
        QueryRequest::Terms({{"a0", 1, 4}}).DeadlineMillis(30));
    ASSERT_FALSE(result.ok());
    EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
  });
  while (server->StatsSnapshot().queue_depth < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  // Let the 30 ms budget expire while the request sits in the queue, then
  // let the worker at it: it must shed, not execute.
  std::this_thread::sleep_for(std::chrono::milliseconds(60));
  server->ResumeWorkersForTesting();
  holder.join();

  const auto stats = server->StatsSnapshot();
  EXPECT_EQ(stats.shed_expired, 1u);
  EXPECT_EQ(stats.completed, 0u);
}

TEST(ServerTest, SnapshotPinnedAtAdmissionIgnoresLaterWrites) {
  Database db = MakeDb(1000, 7051);
  ServerOptions options;
  options.workers = 1;
  const auto server = StartServer(&db, options);
  server->PauseWorkersForTesting();

  const uint64_t rows_at_admission = db.GetSnapshot().num_rows();
  std::thread holder([&] {
    auto client = Client::Connect("127.0.0.1", server->port());
    ASSERT_TRUE(client.ok());
    const auto result = client->Run(QueryRequest::Terms({{"a0", 1, 8}}));
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    // The answer reflects the database as of ADMISSION: the rows inserted
    // while the request waited in the queue are invisible to it.
    EXPECT_EQ(result->visible_rows, rows_at_admission);
  });
  while (server->StatsSnapshot().queue_depth < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }
  for (int i = 0; i < 50; ++i) {
    ASSERT_TRUE(db.Insert({1, 1, 1, 1}).ok());
  }
  server->ResumeWorkersForTesting();
  holder.join();
}

TEST(ServerTest, DrainingServerRejectsNewWorkButAnswersQueuedWork) {
  const Database db = MakeDb(2000, 7061);
  ServerOptions options;
  options.workers = 1;
  auto server = StartServer(&db, options);
  server->PauseWorkersForTesting();

  Result<QueryResult> held = Status::OK();
  std::thread holder([&] {
    auto client = Client::Connect("127.0.0.1", server->port());
    ASSERT_TRUE(client.ok());
    held = client->Run(QueryRequest::Terms({{"a0", 1, 4}}));
  });
  while (server->StatsSnapshot().queue_depth < 1) {
    std::this_thread::sleep_for(std::chrono::milliseconds(1));
  }

  // Shutdown drains: the queued request must complete with its answer.
  // (Shutdown clears the test pause so the drain makes progress.)
  std::thread shutdown([&] { server->Shutdown(); });
  holder.join();
  shutdown.join();
  EXPECT_TRUE(held.ok()) << held.status().ToString();

  // The listener is closed: new connections fail.
  const auto late = Client::Connect("127.0.0.1", server->port());
  EXPECT_FALSE(late.ok());
}

TEST(ServerTest, StatsEndpointTracksLatencyQuantiles) {
  const Database db = MakeDb(3000, 7071);
  const auto server = StartServer(&db);
  auto client = Client::Connect("127.0.0.1", server->port());
  ASSERT_TRUE(client.ok());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(client->Run(QueryRequest::Terms({{"a0", 1, 4}})).ok());
  }
  const auto stats = client->Stats();
  ASSERT_TRUE(stats.ok());
  EXPECT_EQ(stats->completed, 10u);
  EXPECT_GT(stats->p50_micros, 0u);
  EXPECT_GE(stats->p99_micros, stats->p50_micros);
  EXPECT_EQ(stats->workers, std::max(1u, std::thread::hardware_concurrency()));
  EXPECT_GT(stats->uptime_millis, 0u);
  EXPECT_FALSE(stats->draining);
}

TEST(ServerTest, MidQueryDeadlineComesBackAsDeadlineExceeded) {
  // Large unindexed table + tiny budget: the scan hits the deadline at a
  // morsel boundary mid-execution (not in the queue — workers are live).
  const Database db = Database::FromTable(
                          GenerateTable(UniformSpec(400000, 8, 0.2, 4, 7081))
                              .value())
                          .value();
  const auto server = StartServer(&db);
  auto client = Client::Connect("127.0.0.1", server->port());
  ASSERT_TRUE(client.ok());
  const auto result = client->Run(
      QueryRequest::Terms({{"a0", 1, 7}, {"a1", 1, 7}, {"a2", 1, 7}})
          .DeadlineMillis(1));
  // On a very fast machine 1 ms may suffice; accept either outcome but
  // pin the code on failure.
  if (!result.ok()) {
    EXPECT_EQ(result.status().code(), StatusCode::kDeadlineExceeded);
    const auto stats = server->StatsSnapshot();
    EXPECT_GE(stats.deadline_exceeded + stats.shed_expired, 1u);
  }
}

}  // namespace
}  // namespace server
}  // namespace incdb
