// Hostile-peer suite: truncated frames, oversized length prefixes, garbage
// bytes, wrong magic, unknown protocol versions, mid-request disconnects,
// and a slow-loris writer. The daemon must answer each with a clean
// per-connection error (or just close) and keep serving everyone else —
// no crash, no leak, no wedged thread. Run under ASan (tools/check.sh
// asan) to turn "no leak / no UB" into a checked property.
//
// This test speaks raw bytes on purpose, bypassing the Client library —
// it IS the malformed peer — which is why tests/server/ shares the
// net-isolation lint exemption with src/server/.

#include <gtest/gtest.h>

#include <chrono>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "core/database.h"
#include "server/client.h"
#include "server/frame.h"
#include "server/net.h"
#include "server/server.h"
#include "server/wire.h"
#include "table/generator.h"

namespace incdb {
namespace server {
namespace {

class RobustnessTest : public ::testing::Test {
 protected:
  void SetUp() override {
    db_ = std::make_unique<Database>(
        Database::FromTable(
            GenerateTable(UniformSpec(2000, 8, 0.2, 4, 9001)).value())
            .value());
    ServerOptions options;
    options.host = "127.0.0.1";
    options.port = 0;
    // Short stall bound so the slow-loris case resolves in test time.
    options.io_stall_timeout_millis = 300;
    auto server = Server::Start(db_.get(), options);
    ASSERT_TRUE(server.ok()) << server.status().ToString();
    server_ = std::move(*server);
  }

  /// The server must still serve a well-behaved client — the final check
  /// of every hostile scenario.
  void ExpectServerStillHealthy() {
    auto client = Client::Connect("127.0.0.1", server_->port());
    ASSERT_TRUE(client.ok()) << client.status().ToString();
    const auto result = client->Run(QueryRequest::Terms({{"a0", 1, 4}}));
    EXPECT_TRUE(result.ok()) << result.status().ToString();
  }

  Result<Fd> RawConnect() { return ConnectTcp("127.0.0.1", server_->port()); }

  /// Sends a valid Hello and consumes the ack, leaving the connection in
  /// request state.
  Status Handshake(const Fd& fd) {
    wire::Hello hello;
    hello.peer_name = "hostile";
    INCDB_RETURN_IF_ERROR(
        WriteFrame(fd, wire::MsgType::kHello, wire::EncodeHello(hello)));
    wire::MsgType type;
    std::vector<uint8_t> body;
    INCDB_RETURN_IF_ERROR(ReadFrame(fd, 2000, wire::kDefaultMaxFrameBytes,
                                    &type, &body, nullptr));
    if (type != wire::MsgType::kHelloAck) {
      return Status::Internal("expected HelloAck");
    }
    return Status::OK();
  }

  /// Reads one frame and expects a kError carrying `code`.
  void ExpectErrorFrame(const Fd& fd, StatusCode code) {
    wire::MsgType type;
    std::vector<uint8_t> body;
    ASSERT_TRUE(ReadFrame(fd, 2000, wire::kDefaultMaxFrameBytes, &type, &body,
                          nullptr)
                    .ok());
    ASSERT_EQ(type, wire::MsgType::kError);
    const Status status = wire::DecodeStatus(body);
    EXPECT_EQ(status.code(), code);
  }

  std::unique_ptr<Database> db_;
  std::unique_ptr<Server> server_;
};

TEST_F(RobustnessTest, WrongMagicIsRejectedCleanly) {
  auto fd = RawConnect();
  ASSERT_TRUE(fd.ok());
  wire::Hello hello;
  hello.magic = 0xDEADBEEF;
  ASSERT_TRUE(
      WriteFrame(*fd, wire::MsgType::kHello, wire::EncodeHello(hello)).ok());
  ExpectErrorFrame(*fd, StatusCode::kInvalidArgument);
  ExpectServerStillHealthy();
}

TEST_F(RobustnessTest, UnknownProtocolVersionIsRejectedCleanly) {
  auto fd = RawConnect();
  ASSERT_TRUE(fd.ok());
  wire::Hello hello;
  hello.version = 999;
  ASSERT_TRUE(
      WriteFrame(*fd, wire::MsgType::kHello, wire::EncodeHello(hello)).ok());
  ExpectErrorFrame(*fd, StatusCode::kInvalidArgument);
  ExpectServerStillHealthy();
}

TEST_F(RobustnessTest, FirstFrameNotAHelloIsRejected) {
  auto fd = RawConnect();
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(WriteFrame(*fd, wire::MsgType::kPing, {}).ok());
  ExpectErrorFrame(*fd, StatusCode::kInvalidArgument);
  ExpectServerStillHealthy();
}

TEST_F(RobustnessTest, OversizedFrameLengthIsRefusedBeforeAllocation) {
  auto fd = RawConnect();
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(Handshake(*fd).ok());
  // A length prefix far beyond the server's max_frame_bytes. The server
  // must refuse it from the header alone — it can never allocate 3 GiB.
  uint8_t header[wire::kFrameHeaderBytes];
  wire::PutFrameHeader(wire::MsgType::kQuery, 0xC0000000u, header);
  ASSERT_TRUE(WriteAll(*fd, header, sizeof(header)).ok());
  ExpectErrorFrame(*fd, StatusCode::kInvalidArgument);
  ExpectServerStillHealthy();
}

TEST_F(RobustnessTest, GarbageQueryBodyGetsErrorAndConnectionSurvives) {
  auto fd = RawConnect();
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(Handshake(*fd).ok());
  std::vector<uint8_t> garbage(257);
  uint64_t state = 0xABCDEF12345ull;
  for (auto& byte : garbage) {
    state = state * 6364136223846793005ull + 1442695040888963407ull;
    byte = static_cast<uint8_t>(state >> 33);
  }
  ASSERT_TRUE(WriteFrame(*fd, wire::MsgType::kQuery, garbage).ok());
  ExpectErrorFrame(*fd, StatusCode::kInvalidArgument);
  // Framing stayed synchronized: the same connection still answers a
  // well-formed query.
  ASSERT_TRUE(WriteFrame(*fd, wire::MsgType::kQuery,
                         wire::EncodeQueryRequest(
                             QueryRequest::Terms({{"a0", 1, 4}})))
                  .ok());
  wire::MsgType type;
  std::vector<uint8_t> body;
  ASSERT_TRUE(ReadFrame(*fd, 2000, wire::kDefaultMaxFrameBytes, &type, &body,
                        nullptr)
                  .ok());
  EXPECT_EQ(type, wire::MsgType::kQueryResult);
  ExpectServerStillHealthy();
}

TEST_F(RobustnessTest, UnknownMessageTypeGetsErrorNotDisconnect) {
  auto fd = RawConnect();
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(Handshake(*fd).ok());
  ASSERT_TRUE(
      WriteFrame(*fd, static_cast<wire::MsgType>(200), {0xAA, 0xBB}).ok());
  ExpectErrorFrame(*fd, StatusCode::kInvalidArgument);
  ExpectServerStillHealthy();
}

TEST_F(RobustnessTest, MidRequestDisconnectLeavesServerServing) {
  for (int i = 0; i < 8; ++i) {
    auto fd = RawConnect();
    ASSERT_TRUE(fd.ok());
    ASSERT_TRUE(Handshake(*fd).ok());
    // Promise a 100-byte body, send 10, vanish.
    uint8_t header[wire::kFrameHeaderBytes];
    wire::PutFrameHeader(wire::MsgType::kQuery, 100, header);
    ASSERT_TRUE(WriteAll(*fd, header, sizeof(header)).ok());
    const uint8_t partial[10] = {1, 2, 3, 4, 5, 6, 7, 8, 9, 10};
    ASSERT_TRUE(WriteAll(*fd, partial, sizeof(partial)).ok());
    fd->Close();
  }
  ExpectServerStillHealthy();
}

TEST_F(RobustnessTest, DisconnectDuringHandshakeLeavesServerServing) {
  for (int i = 0; i < 8; ++i) {
    auto fd = RawConnect();
    ASSERT_TRUE(fd.ok());
    fd->Close();  // connect, say nothing, vanish
  }
  ExpectServerStillHealthy();
}

TEST_F(RobustnessTest, SlowLorisIsCutOffByTheStallTimeout) {
  auto fd = RawConnect();
  ASSERT_TRUE(fd.ok());
  ASSERT_TRUE(Handshake(*fd).ok());
  // Promise a frame, then trickle nothing: the server's io-stall timeout
  // (300 ms here) must reclaim the thread instead of waiting forever.
  uint8_t header[wire::kFrameHeaderBytes];
  wire::PutFrameHeader(wire::MsgType::kQuery, 64, header);
  ASSERT_TRUE(WriteAll(*fd, header, sizeof(header)).ok());
  // The server answers with a deadline error (best effort) and closes.
  wire::MsgType type;
  std::vector<uint8_t> body;
  const Status read =
      ReadFrame(*fd, 5000, wire::kDefaultMaxFrameBytes, &type, &body, nullptr);
  if (read.ok()) {
    EXPECT_EQ(type, wire::MsgType::kError);
    EXPECT_EQ(wire::DecodeStatus(body).code(), StatusCode::kDeadlineExceeded);
  }
  // Either way the connection is dead and the server is not.
  ExpectServerStillHealthy();
}

TEST_F(RobustnessTest, ManyHostileConnectionsDoNotExhaustTheServer) {
  // A burst of misbehaving peers in parallel with a honest client.
  std::vector<std::thread> hostiles;
  for (int i = 0; i < 16; ++i) {
    hostiles.emplace_back([this, i] {
      auto fd = ConnectTcp("127.0.0.1", server_->port());
      if (!fd.ok()) return;
      switch (i % 4) {
        case 0:  // garbage hello
          (void)WriteAll(*fd, "garbagegarbage", 14);
          break;
        case 1:  // silent connect
          break;
        case 2: {  // bad magic
          wire::Hello hello;
          hello.magic = 1;
          (void)WriteFrame(*fd, wire::MsgType::kHello,
                           wire::EncodeHello(hello));
          break;
        }
        case 3: {  // handshake then truncated frame
          if (Handshake(*fd).ok()) {
            uint8_t header[wire::kFrameHeaderBytes];
            wire::PutFrameHeader(wire::MsgType::kQuery, 50, header);
            (void)WriteAll(*fd, header, sizeof(header));
          }
          break;
        }
      }
    });
  }
  ExpectServerStillHealthy();
  for (auto& hostile : hostiles) hostile.join();
  ExpectServerStillHealthy();
  // Shutdown with hostile connections possibly still half-open must not
  // hang or leak (the asan run checks the leak half).
  server_->Shutdown();
}

}  // namespace
}  // namespace server
}  // namespace incdb
