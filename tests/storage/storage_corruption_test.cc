// Corruption-injection tests: flipping any byte of any store file,
// truncating any file, deleting a file, or presenting a future format
// version must surface as a Status error from Database::Open — never a
// crash, never a silently wrong database.

#include <gtest/gtest.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/database.h"
#include "storage/checksum.h"
#include "storage/format.h"
#include "table/generator.h"

namespace incdb {
namespace {

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

/// A store with data and a couple of zero-copy indexes, small enough to
/// corrupt byte by byte.
class StorageCorruptionTest : public ::testing::Test {
 protected:
  void SetUp() override {
    DatasetSpec spec;
    spec.seed = 42;
    spec.num_rows = 120;
    spec.attributes.push_back({"a", 5, 0.2, 0.0});
    spec.attributes.push_back({"b", 9, 0.0, 0.0});
    Table table = GenerateTable(spec).value();
    Database db = std::move(Database::FromTable(std::move(table)).value());
    ASSERT_TRUE(db.BuildIndex(IndexKind::kBitmapEquality).ok());
    ASSERT_TRUE(db.BuildIndex(IndexKind::kVaFile).ok());
    // The v3 composite blob records (multi-component + hierarchical) must
    // be walked by the byte-flip loops too: every byte of their wire
    // metadata and WAH words lives inside some checksummed section.
    ASSERT_TRUE(db.BuildIndex(IndexKind::kBitmapMultiComponent).ok());
    ASSERT_TRUE(db.BuildIndex(IndexKind::kBitmapHierarchical).ok());
    // ctest runs each case as its own process in a shared working
    // directory; the pid keeps parallel cases off each other's files.
    dir_ = "storage_corrupt_" + std::to_string(getpid()) + ".incdb";
    ASSERT_TRUE(db.Save(dir_).ok());
    // A fresh directory always commits generation 1.
    files_ = {storage::kManifestFile, storage::CatalogFileName(1),
              storage::SegmentFileName(1)};
    for (const std::string& file : files_) {
      pristine_[file] = ReadFile(dir_ + "/" + file);
    }
    // Sanity: the pristine store opens.
    ASSERT_TRUE(Database::Open(dir_).ok());
  }

  void TearDown() override {
    for (const auto& [file, bytes] : pristine_) {
      WriteFile(dir_ + "/" + file, bytes);
    }
  }

  void Restore(const std::string& file) {
    WriteFile(dir_ + "/" + file, pristine_[file]);
  }

  std::string dir_;
  std::vector<std::string> files_;
  std::map<std::string, std::string> pristine_;
};

TEST_F(StorageCorruptionTest, EveryFlippedByteIsDetected) {
  // Every byte of every file participates in some integrity check: the
  // manifest in its trailing CRC, catalog.bin and data.seg in a section
  // CRC (or, for the segment magic, the magic comparison). Flip each in
  // turn and expect a clean Status failure.
  for (const std::string& file : files_) {
    const std::string& pristine = pristine_[file];
    for (size_t pos = 0; pos < pristine.size(); ++pos) {
      std::string corrupted = pristine;
      corrupted[pos] = static_cast<char>(corrupted[pos] ^ 0x2A);
      WriteFile(dir_ + "/" + file, corrupted);
      const auto result = Database::Open(dir_);
      EXPECT_FALSE(result.ok())
          << file << ": flipped byte " << pos << " went undetected";
    }
    Restore(file);
  }
}

TEST_F(StorageCorruptionTest, TruncationIsDetected) {
  for (const std::string& file : files_) {
    const std::string& pristine = pristine_[file];
    for (size_t keep :
         {size_t{0}, size_t{4}, pristine.size() / 2, pristine.size() - 1}) {
      WriteFile(dir_ + "/" + file, pristine.substr(0, keep));
      const auto result = Database::Open(dir_);
      EXPECT_FALSE(result.ok())
          << file << " truncated to " << keep << " bytes went undetected";
    }
    Restore(file);
  }
}

TEST_F(StorageCorruptionTest, MissingFileIsDetected) {
  for (const std::string& file : files_) {
    ASSERT_EQ(std::remove((dir_ + "/" + file).c_str()), 0);
    const auto result = Database::Open(dir_);
    EXPECT_FALSE(result.ok()) << "missing " << file << " went undetected";
    Restore(file);
  }
}

TEST_F(StorageCorruptionTest, FutureFormatVersionIsRefused) {
  // The version field is the u32 right after the length-prefixed magic
  // string; patch it and re-sign the manifest so only the version check
  // can object.
  std::string manifest = pristine_[storage::kManifestFile];
  const size_t version_offset =
      sizeof(uint64_t) + std::string(storage::kManifestMagic).size();
  ASSERT_LT(version_offset + 4, manifest.size());
  manifest[version_offset] =
      static_cast<char>(storage::kFormatVersion + 1);
  const size_t body = manifest.size() - 4;
  const uint32_t crc = storage::Crc32(manifest.data(), body);
  for (int b = 0; b < 4; ++b) {
    manifest[body + static_cast<size_t>(b)] =
        static_cast<char>((crc >> (8 * b)) & 0xFF);
  }
  WriteFile(dir_ + "/" + storage::kManifestFile, manifest);
  const auto result = Database::Open(dir_);
  ASSERT_FALSE(result.ok());
  EXPECT_NE(result.status().ToString().find("version"), std::string::npos)
      << result.status().ToString();
}

TEST_F(StorageCorruptionTest, WrongMagicIsRefused) {
  for (const std::string& file : files_) {
    std::string corrupted = pristine_[file];
    // Clobber the first 12 bytes (covers both length-prefixed string
    // magics and the raw segment magic).
    for (size_t i = 0; i < 12 && i < corrupted.size(); ++i) {
      corrupted[i] = 'X';
    }
    WriteFile(dir_ + "/" + file, corrupted);
    EXPECT_FALSE(Database::Open(dir_).ok()) << file;
    Restore(file);
  }
}

TEST_F(StorageCorruptionTest, SegmentCorruptionNeedsChecksumPass) {
  // With verification off, open itself is O(1) and must still succeed on a
  // pristine store; this documents (rather than guarantees) that the
  // fast path is the caller's trade-off, not a hidden verify.
  ASSERT_TRUE(Database::Open(dir_, /*verify_checksums=*/false).ok());
}

}  // namespace
}  // namespace incdb
