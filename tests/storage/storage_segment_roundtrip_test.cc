// Format-v2 segmented store tests: save/open round-trips (including a
// partially compacted store), the dirty-segment save contract (clean
// segment files are reused byte-for-byte, not rewritten), zone-map pruning
// surviving a reopen, and byte-flip corruption injection over every
// per-segment file.

#include <gtest/gtest.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdint>
#include <cstdio>
#include <dirent.h>
#include <fstream>
#include <map>
#include <sstream>
#include <string>
#include <vector>

#include "core/database.h"
#include "core/segments.h"
#include "storage/format.h"
#include "table/generator.h"

namespace incdb {
namespace {

constexpr uint64_t kSegmentRows = 32;

std::string ReadFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

void WriteFile(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
  ASSERT_TRUE(out.good()) << path;
}

std::vector<std::string> SegmentFilesIn(const std::string& dir) {
  std::vector<std::string> names;
  DIR* d = opendir(dir.c_str());
  EXPECT_NE(d, nullptr) << dir;
  if (d == nullptr) return names;
  while (dirent* entry = readdir(d)) {
    const std::string name = entry->d_name;
    if (storage::IsSegmentDataFileName(name)) names.push_back(name);
  }
  closedir(d);
  return names;
}

// Clustered first attribute (zone maps separate segments) + a noisy second
// with missing cells.
Database MakeSegmentedDb(uint64_t num_rows,
                         IndexKind index_kind = IndexKind::kBitmapEquality) {
  std::vector<AttributeSpec> specs = {{"a0", 8}, {"a1", 5}};
  Table table = Table::Create(Schema(specs)).value();
  for (uint64_t r = 0; r < num_rows; ++r) {
    const Value clustered = static_cast<Value>(1 + (r / kSegmentRows) % 8);
    const Value noisy =
        r % 9 == 0 ? kMissingValue : static_cast<Value>(1 + (r * 7) % 5);
    EXPECT_TRUE(table.AppendRow({clustered, noisy}).ok());
  }
  Database db = Database::FromTable(std::move(table)).value();
  SegmentOptions options;
  options.segment_rows = kSegmentRows;
  options.index_kind = index_kind;
  EXPECT_TRUE(db.EnableSegments(options).ok());
  return db;
}

std::string TempDir(const std::string& tag) {
  return "storage_seg_" + tag + "_" + std::to_string(getpid()) + ".incdb";
}

void ExpectSameAnswers(const Database& a, const Database& b) {
  for (MissingSemantics semantics :
       {MissingSemantics::kMatch, MissingSemantics::kNoMatch}) {
    for (const std::string& text :
         {std::string("a0 = 3"), std::string("a0 IN [2,5]"),
          std::string("a1 = 2"), std::string("a0 IN [6,8] AND a1 IN [1,3]"),
          std::string("NOT a0 = 4"), std::string("a0 = 1 OR a1 = 5")}) {
      const auto ra = a.Run(QueryRequest::Text(text, semantics));
      const auto rb = b.Run(QueryRequest::Text(text, semantics));
      ASSERT_TRUE(ra.ok()) << text << ": " << ra.status().ToString();
      ASSERT_TRUE(rb.ok()) << text << ": " << rb.status().ToString();
      EXPECT_EQ(ra->row_ids, rb->row_ids) << text;
    }
  }
}

TEST(StorageSegmentRoundtripTest, SegmentedStoreRoundTrips) {
  Database db = MakeSegmentedDb(5 * kSegmentRows + 11);  // 5 segments + tail
  const std::string dir = TempDir("basic");
  ASSERT_TRUE(db.Save(dir).ok());

  // One file per sealed segment landed next to the catalog/data pair.
  EXPECT_EQ(SegmentFilesIn(dir).size(), 5u);

  auto reopened = Database::Open(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened->num_rows(), db.num_rows());
  EXPECT_TRUE(reopened->segments_enabled());
  EXPECT_EQ(reopened->num_segments(), 5u);
  EXPECT_EQ(reopened->sealed_rows(), 5 * kSegmentRows);
  ExpectSameAnswers(db, *reopened);

  // Zone pruning must survive the round-trip: the reloaded zone maps are
  // parsed from the segment files, not recomputed.
  const auto pruned = reopened->Run(
      QueryRequest::Text("a0 = 2", MissingSemantics::kNoMatch));
  ASSERT_TRUE(pruned.ok());
  EXPECT_GT(pruned->stats.segments_pruned, 0u);

  // The reopened store keeps working as a live database: appends seal new
  // segments, deletes and compaction behave.
  for (uint64_t i = 0; i < kSegmentRows; ++i) {
    ASSERT_TRUE(reopened->Insert({4, 1}).ok());
  }
  EXPECT_EQ(reopened->num_segments(), 6u);
}

TEST(StorageSegmentRoundtripTest, UnsegmentedV2StoreStillRoundTrips) {
  // A database without segments writes v2 with an empty segment table;
  // the reader must treat it exactly like v1.
  Database db = Database::FromTable(
                    GenerateTable(UniformSpec(200, 6, 0.2, 3, 811)).value())
                    .value();
  ASSERT_TRUE(db.BuildIndex(IndexKind::kBitmapEquality).ok());
  const std::string dir = TempDir("plain");
  ASSERT_TRUE(db.Save(dir).ok());
  EXPECT_TRUE(SegmentFilesIn(dir).empty());
  auto reopened = Database::Open(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_FALSE(reopened->segments_enabled());
  EXPECT_EQ(reopened->num_rows(), 200u);
}

TEST(StorageSegmentRoundtripTest, DirtySaveRewritesOnlyNewSegments) {
  Database db = MakeSegmentedDb(4 * kSegmentRows);
  const std::string dir = TempDir("dirty");
  ASSERT_TRUE(db.Save(dir).ok());

  // Capture every segment file's bytes and mtime after the first save.
  std::map<std::string, std::string> bytes_before;
  std::map<std::string, timespec> mtime_before;
  for (const std::string& name : SegmentFilesIn(dir)) {
    bytes_before[name] = ReadFile(dir + "/" + name);
    struct stat st{};
    ASSERT_EQ(::stat((dir + "/" + name).c_str(), &st), 0);
    mtime_before[name] = st.st_mtim;
  }
  ASSERT_EQ(bytes_before.size(), 4u);

  // Grow by two more segments and save again into the same directory.
  for (uint64_t i = 0; i < 2 * kSegmentRows; ++i) {
    ASSERT_TRUE(
        db.Insert({static_cast<Value>(1 + i % 8),
                   static_cast<Value>(1 + i % 5)}).ok());
  }
  ASSERT_EQ(db.num_segments(), 6u);
  ASSERT_TRUE(db.Save(dir).ok());

  const std::vector<std::string> after = SegmentFilesIn(dir);
  EXPECT_EQ(after.size(), 6u);
  // The four clean segments were not rewritten: identical bytes AND an
  // untouched mtime (content-equality alone would pass a wasteful rewrite).
  for (const auto& [name, bytes] : bytes_before) {
    EXPECT_EQ(ReadFile(dir + "/" + name), bytes) << name;
    struct stat st{};
    ASSERT_EQ(::stat((dir + "/" + name).c_str(), &st), 0) << name;
    EXPECT_EQ(st.st_mtim.tv_sec, mtime_before[name].tv_sec) << name;
    EXPECT_EQ(st.st_mtim.tv_nsec, mtime_before[name].tv_nsec) << name;
  }

  auto reopened = Database::Open(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened->num_segments(), 6u);
  ExpectSameAnswers(db, *reopened);
}

TEST(StorageSegmentRoundtripTest, CompactionDropsStaleSegmentFilesOnSave) {
  Database db = MakeSegmentedDb(4 * kSegmentRows);
  const std::string dir = TempDir("compact");
  ASSERT_TRUE(db.Save(dir).ok());
  const size_t files_before = SegmentFilesIn(dir).size();
  ASSERT_EQ(files_before, 4u);

  // Hollow out segment 1, compact (its file identity dies with it), save.
  for (uint32_t r = kSegmentRows; r < 2 * kSegmentRows; r += 2) {
    ASSERT_TRUE(db.Delete(r).ok());
  }
  ASSERT_TRUE(db.CompactNow().ok());
  ASSERT_TRUE(db.Save(dir).ok());

  // The store reopens to the compacted row count; the dropped segment's
  // file was garbage-collected rather than left as debris.
  auto reopened = Database::Open(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(reopened->num_rows(), db.num_rows());
  EXPECT_EQ(reopened->num_segments(), db.num_segments());
  EXPECT_EQ(SegmentFilesIn(dir).size(), db.num_segments());
  ExpectSameAnswers(db, *reopened);

  // And the partially compacted store keeps compacting after reopen.
  for (uint32_t r = 0; r < 10; ++r) {
    ASSERT_TRUE(reopened->Delete(r).ok());
  }
  ASSERT_TRUE(reopened->CompactNow().ok());
  EXPECT_EQ(reopened->num_deleted_rows(), 0u);
}

TEST(StorageSegmentRoundtripTest, EverySegmentFileByteFlipIsDetected) {
  Database db = MakeSegmentedDb(3 * kSegmentRows);
  const std::string dir = TempDir("flip");
  ASSERT_TRUE(db.Save(dir).ok());
  const std::vector<std::string> files = SegmentFilesIn(dir);
  ASSERT_EQ(files.size(), 3u);
  ASSERT_TRUE(Database::Open(dir).ok());

  for (const std::string& name : files) {
    const std::string pristine = ReadFile(dir + "/" + name);
    ASSERT_FALSE(pristine.empty());
    for (size_t pos = 0; pos < pristine.size(); ++pos) {
      std::string corrupted = pristine;
      corrupted[pos] = static_cast<char>(corrupted[pos] ^ 0x2A);
      WriteFile(dir + "/" + name, corrupted);
      const auto result = Database::Open(dir);
      EXPECT_FALSE(result.ok())
          << name << ": flipped byte " << pos << " went undetected";
    }
    WriteFile(dir + "/" + name, pristine);
  }
  // Truncation and removal of a segment file are refused too.
  const std::string victim = dir + "/" + files[0];
  const std::string pristine = ReadFile(victim);
  WriteFile(victim, pristine.substr(0, pristine.size() / 2));
  EXPECT_FALSE(Database::Open(dir).ok());
  ASSERT_EQ(std::remove(victim.c_str()), 0);
  EXPECT_FALSE(Database::Open(dir).ok());
  WriteFile(victim, pristine);
  EXPECT_TRUE(Database::Open(dir).ok());
}

TEST(StorageSegmentRoundtripTest, CompositeSegmentKindsRoundTrip) {
  // Segments carrying the v3 composite index kinds: the per-segment files
  // must serialize, reopen through the mmap borrowed-view path, keep zone
  // pruning, and answer every shape identically — including byte-flip
  // detection over the composite blob records.
  for (IndexKind kind : {IndexKind::kBitmapMultiComponent,
                         IndexKind::kBitmapHierarchical}) {
    Database db = MakeSegmentedDb(3 * kSegmentRows + 7, kind);
    const std::string dir =
        TempDir(kind == IndexKind::kBitmapMultiComponent ? "mc" : "hier");
    ASSERT_TRUE(db.Save(dir).ok());
    ASSERT_EQ(SegmentFilesIn(dir).size(), 3u);

    auto reopened = Database::Open(dir);
    ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
    EXPECT_EQ(reopened->num_segments(), 3u);
    ExpectSameAnswers(db, *reopened);

    // New seals on the reopened side keep the composite kind.
    for (uint64_t i = 0; i < kSegmentRows; ++i) {
      ASSERT_TRUE(reopened->Insert({static_cast<Value>(1 + i % 8),
                                    static_cast<Value>(1 + i % 5)}).ok());
    }
    EXPECT_EQ(reopened->num_segments(), 4u);
    const std::string dir2 = TempDir(
        kind == IndexKind::kBitmapMultiComponent ? "mc2" : "hier2");
    ASSERT_TRUE(reopened->Save(dir2).ok());
    auto again = Database::Open(dir2);
    ASSERT_TRUE(again.ok()) << again.status().ToString();
    ExpectSameAnswers(*reopened, *again);

    // Single-byte corruption anywhere in a composite segment file is
    // caught by the whole-file CRC.
    const std::vector<std::string> files = SegmentFilesIn(dir);
    const std::string victim = dir + "/" + files[0];
    const std::string pristine = ReadFile(victim);
    for (size_t pos = 0; pos < pristine.size();
         pos += 1 + pos / 16) {  // sampled: full sweep lives in the
                                 // equality-kind test above
      std::string corrupted = pristine;
      corrupted[pos] = static_cast<char>(corrupted[pos] ^ 0x2A);
      WriteFile(victim, corrupted);
      EXPECT_FALSE(Database::Open(dir).ok())
          << files[0] << ": flipped byte " << pos << " went undetected";
    }
    WriteFile(victim, pristine);
    EXPECT_TRUE(Database::Open(dir).ok());
  }
}

TEST(StorageSegmentRoundtripTest, SaveAfterOpenReusesOpenedSegmentFiles) {
  // Open seeds the persist cache from the catalog, so a save back into the
  // same directory rewrites no segment file even without a prior Save in
  // this process.
  Database original = MakeSegmentedDb(3 * kSegmentRows + 5);
  const std::string dir = TempDir("reopen");
  ASSERT_TRUE(original.Save(dir).ok());

  auto db = Database::Open(dir);
  ASSERT_TRUE(db.ok());
  std::map<std::string, timespec> mtime_before;
  for (const std::string& name : SegmentFilesIn(dir)) {
    struct stat st{};
    ASSERT_EQ(::stat((dir + "/" + name).c_str(), &st), 0);
    mtime_before[name] = st.st_mtim;
  }
  ASSERT_TRUE(db->Insert({2, 2}).ok());  // dirty the tail, not the segments
  ASSERT_TRUE(db->Save(dir).ok());
  for (const auto& [name, before] : mtime_before) {
    struct stat st{};
    ASSERT_EQ(::stat((dir + "/" + name).c_str(), &st), 0) << name;
    EXPECT_EQ(st.st_mtim.tv_sec, before.tv_sec) << name;
    EXPECT_EQ(st.st_mtim.tv_nsec, before.tv_nsec) << name;
  }
  auto again = Database::Open(dir);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->num_rows(), db->num_rows());
}

}  // namespace
}  // namespace incdb
