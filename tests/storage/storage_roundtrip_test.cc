// Save → Open round-trip property tests: a persisted database must answer
// every query shape byte-identically to the database it was saved from —
// for every index kind, both missing semantics, with deletions, and after
// further appends on the opened side. Exercises the mmap zero-copy path
// end to end (tests run with verify_checksums both on and off).

#include <gtest/gtest.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cstdio>
#include <fstream>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/database.h"
#include "storage/format.h"
#include "table/generator.h"

namespace incdb {
namespace {

/// A unique store directory under the test's working directory. ctest runs
/// every test case as its own process in a shared working directory, so
/// the pid is part of the name — a static counter alone would collide.
std::string StoreDir(const std::string& tag) {
  static int counter = 0;
  std::string dir = "storage_rt_";
  dir += tag;
  dir += '_';
  dir += std::to_string(getpid());
  dir += '_';
  dir += std::to_string(counter++);
  dir += ".incdb";
  return dir;
}

DatasetSpec SmallSpec(uint64_t seed) {
  DatasetSpec spec;
  spec.seed = seed;
  spec.num_rows = 400;
  const char* names[] = {"alpha", "beta", "gamma", "delta"};
  const uint32_t cardinalities[] = {7, 16, 3, 101};
  const double missing[] = {0.0, 0.15, 0.5, 0.05};
  for (int a = 0; a < 4; ++a) {
    GeneratedAttribute attr;
    attr.name = names[a];
    attr.cardinality = cardinalities[a];
    attr.missing_rate = missing[a];
    attr.zipf_theta = a == 3 ? 1.2 : 0.0;
    spec.attributes.push_back(attr);
  }
  return spec;
}

Database MakeDatabase(uint64_t seed) {
  Table table = GenerateTable(SmallSpec(seed)).value();
  return std::move(Database::FromTable(std::move(table)).value());
}

/// The query shapes the acceptance criteria call out: equality, interval
/// (both semantics), boolean expression, count-only.
std::vector<QueryRequest> CanonicalRequests() {
  std::vector<QueryRequest> requests;
  for (MissingSemantics semantics :
       {MissingSemantics::kMatch, MissingSemantics::kNoMatch}) {
    requests.push_back(QueryRequest::Terms({{"alpha", 3, 3}}, semantics));
    requests.push_back(QueryRequest::Terms({{"beta", 4, 11}}, semantics));
    requests.push_back(
        QueryRequest::Terms({{"alpha", 2, 6}, {"delta", 10, 60}}, semantics));
    requests.push_back(QueryRequest::Text(
        "alpha IN [2,5] AND NOT beta = 7", semantics));
    requests.push_back(QueryRequest::Text(
        "gamma = 1 OR delta IN [90,101]", semantics));
    requests.push_back(
        QueryRequest::Terms({{"beta", 1, 16}}, semantics).CountOnly());
    requests.push_back(
        QueryRequest::Text("alpha IN [1,4] AND gamma IN [1,2]", semantics)
            .CountOnly());
  }
  return requests;
}

void ExpectSameAnswers(const Database& original, const Database& reopened) {
  for (const QueryRequest& request : CanonicalRequests()) {
    const auto expected = original.Run(request);
    const auto actual = reopened.Run(request);
    ASSERT_TRUE(expected.ok()) << expected.status().ToString();
    ASSERT_TRUE(actual.ok()) << actual.status().ToString();
    EXPECT_EQ(expected->count, actual->count);
    EXPECT_EQ(expected->row_ids, actual->row_ids);
  }
}

class StorageRoundTripTest : public ::testing::TestWithParam<IndexKind> {};

TEST_P(StorageRoundTripTest, EveryQueryShapeSurvivesSaveOpen) {
  Database db = MakeDatabase(/*seed=*/7);
  ASSERT_TRUE(db.BuildIndex(GetParam()).ok());
  const std::string dir = StoreDir("kind");
  ASSERT_TRUE(db.Save(dir).ok());

  for (bool verify : {true, false}) {
    auto reopened = Database::Open(dir, verify);
    ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
    EXPECT_EQ(db.num_rows(), reopened->num_rows());
    EXPECT_TRUE(reopened->HasIndex(GetParam()));
    ExpectSameAnswers(db, reopened.value());
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, StorageRoundTripTest,
    ::testing::Values(IndexKind::kBitmapEquality, IndexKind::kBitmapRange,
                      IndexKind::kBitmapInterval, IndexKind::kBitmapBitSliced,
                      IndexKind::kBitmapMultiComponent,
                      IndexKind::kBitmapHierarchical,
                      IndexKind::kVaFile, IndexKind::kVaPlusFile,
                      IndexKind::kMosaic, IndexKind::kBitstringAugmented));

TEST(StorageRoundTrip, AllIndexesAtOnce) {
  Database db = MakeDatabase(/*seed=*/11);
  for (IndexKind kind :
       {IndexKind::kBitmapEquality, IndexKind::kBitmapRange,
        IndexKind::kBitmapMultiComponent, IndexKind::kBitmapHierarchical,
        IndexKind::kVaFile, IndexKind::kMosaic,
        IndexKind::kBitstringAugmented}) {
    ASSERT_TRUE(db.BuildIndex(kind).ok());
  }
  const std::string dir = StoreDir("all");
  ASSERT_TRUE(db.Save(dir).ok());
  auto reopened = Database::Open(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(db.Indexes(), reopened->Indexes());
  ExpectSameAnswers(db, reopened.value());
}

TEST(StorageRoundTrip, NoIndexes) {
  Database db = MakeDatabase(/*seed=*/13);
  const std::string dir = StoreDir("plain");
  ASSERT_TRUE(db.Save(dir).ok());
  auto reopened = Database::Open(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_TRUE(reopened->Indexes().empty());
  ExpectSameAnswers(db, reopened.value());
}

TEST(StorageRoundTrip, DeletionsSurvive) {
  Database db = MakeDatabase(/*seed=*/17);
  ASSERT_TRUE(db.BuildIndex(IndexKind::kBitmapEquality).ok());
  for (uint32_t i = 0; i < 40; ++i) {
    ASSERT_TRUE(db.Delete(i * 7).ok());
  }
  const std::string dir = StoreDir("deleted");
  ASSERT_TRUE(db.Save(dir).ok());
  auto reopened = Database::Open(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(db.num_deleted_rows(), reopened->num_deleted_rows());
  EXPECT_EQ(db.num_live_rows(), reopened->num_live_rows());
  ExpectSameAnswers(db, reopened.value());
}

TEST(StorageRoundTrip, OpenedDatabaseAcceptsWrites) {
  Database db = MakeDatabase(/*seed=*/23);
  ASSERT_TRUE(db.BuildIndex(IndexKind::kBitmapRange).ok());
  ASSERT_TRUE(db.BuildIndex(IndexKind::kVaFile).ok());
  const std::string dir = StoreDir("writes");
  ASSERT_TRUE(db.Save(dir).ok());
  auto reopened = Database::Open(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();

  // Mirror a mutation sequence on both sides; answers must stay identical
  // (the opened side serves appended rows via the delta scan over its
  // borrowed-prefix columns).
  Rng rng(5);
  for (int i = 0; i < 150; ++i) {
    std::vector<Value> row;
    for (const AttributeSpec& attr : db.table().schema().attributes()) {
      row.push_back(rng.Bernoulli(0.2)
                        ? kMissingValue
                        : static_cast<Value>(rng.UniformInt(
                              1, static_cast<int64_t>(attr.cardinality))));
    }
    ASSERT_TRUE(db.Insert(row).ok());
    ASSERT_TRUE(reopened->Insert(row).ok());
  }
  ASSERT_TRUE(db.Delete(10).ok());
  ASSERT_TRUE(reopened->Delete(10).ok());
  ExpectSameAnswers(db, reopened.value());

  // A rebuild on the opened database re-covers the appended tail.
  ASSERT_TRUE(reopened->BuildIndex(IndexKind::kBitmapRange).ok());
  ExpectSameAnswers(db, reopened.value());
}

TEST(StorageRoundTrip, SecondGenerationSaveOpen) {
  Database db = MakeDatabase(/*seed=*/29);
  ASSERT_TRUE(db.BuildIndex(IndexKind::kBitmapInterval).ok());
  const std::string dir1 = StoreDir("gen1");
  ASSERT_TRUE(db.Save(dir1).ok());
  auto gen1 = Database::Open(dir1);
  ASSERT_TRUE(gen1.ok()) << gen1.status().ToString();

  // Mutate the opened database, save it again, and reopen: borrowed
  // (mmap-backed) columns and bitvectors must serialize correctly too.
  ASSERT_TRUE(gen1->Insert({1, 2, 3, 4}).ok());
  ASSERT_TRUE(gen1->Delete(3).ok());
  const std::string dir2 = StoreDir("gen2");
  ASSERT_TRUE(gen1->Save(dir2).ok());
  auto gen2 = Database::Open(dir2);
  ASSERT_TRUE(gen2.ok()) << gen2.status().ToString();
  EXPECT_EQ(gen1->num_rows(), gen2->num_rows());
  ExpectSameAnswers(gen1.value(), gen2.value());
}

bool FileExists(const std::string& path) {
  struct stat info;
  return ::stat(path.c_str(), &info) == 0;
}

TEST(StorageRoundTrip, SaveBackIntoOpenedDirectory) {
  // The scenario the generation scheme exists for: Save into the very
  // directory the database was opened from. The writer must never
  // truncate the payload files the snapshot is serving through its mmap
  // (that would fault mid-save and destroy the store); it writes a fresh
  // generation beside them and commits by swapping the manifest.
  Database db = MakeDatabase(/*seed=*/37);
  ASSERT_TRUE(db.BuildIndex(IndexKind::kBitmapEquality).ok());
  ASSERT_TRUE(db.BuildIndex(IndexKind::kVaFile).ok());
  const std::string dir = StoreDir("inplace");
  ASSERT_TRUE(db.Save(dir).ok());

  auto opened = Database::Open(dir);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  ASSERT_TRUE(opened->Insert({5, 6, 1, 40}).ok());
  ASSERT_TRUE(opened->Delete(2).ok());
  ASSERT_TRUE(db.Insert({5, 6, 1, 40}).ok());
  ASSERT_TRUE(db.Delete(2).ok());
  ASSERT_TRUE(opened->Save(dir).ok());

  // The opened database keeps serving from its (now unlinked)
  // generation-1 mapping after the save replaced the store.
  ExpectSameAnswers(db, opened.value());

  auto reopened = Database::Open(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  EXPECT_EQ(opened->num_rows(), reopened->num_rows());
  EXPECT_EQ(opened->num_deleted_rows(), reopened->num_deleted_rows());
  ExpectSameAnswers(opened.value(), reopened.value());
}

TEST(StorageRoundTrip, InPlaceSaveCommitsAtomicallyAndCollectsGarbage) {
  Database db = MakeDatabase(/*seed=*/41);
  const std::string dir = StoreDir("gc");
  ASSERT_TRUE(db.Save(dir).ok());
  ASSERT_TRUE(FileExists(dir + "/" + storage::SegmentFileName(1)));

  // Plant the debris a crashed save could leave behind: an abandoned
  // manifest temp file and a half-written future generation. Open must
  // ignore both — the committed MANIFEST is the only source of truth.
  { std::ofstream(dir + "/" + storage::kManifestTmpFile) << "garbage"; }
  { std::ofstream(dir + "/" + storage::SegmentFileName(9)) << "partial"; }
  auto opened = Database::Open(dir);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();

  // The next save steps past the debris generation (never reusing a file
  // name that might be mapped or half-written), commits, and collects
  // everything it superseded.
  ASSERT_TRUE(db.Save(dir).ok());
  EXPECT_TRUE(FileExists(dir + "/" + storage::kManifestFile));
  EXPECT_TRUE(FileExists(dir + "/" + storage::SegmentFileName(10)));
  EXPECT_TRUE(FileExists(dir + "/" + storage::CatalogFileName(10)));
  EXPECT_FALSE(FileExists(dir + "/" + storage::kManifestTmpFile));
  EXPECT_FALSE(FileExists(dir + "/" + storage::SegmentFileName(1)));
  EXPECT_FALSE(FileExists(dir + "/" + storage::CatalogFileName(1)));
  EXPECT_FALSE(FileExists(dir + "/" + storage::SegmentFileName(9)));
  auto reopened = Database::Open(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  ExpectSameAnswers(db, reopened.value());
}

TEST(StorageRoundTrip, MissingRatesComeFromCatalogNotRescan) {
  Database db = MakeDatabase(/*seed=*/31);
  const std::string dir = StoreDir("rates");
  ASSERT_TRUE(db.Save(dir).ok());
  auto reopened = Database::Open(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();
  const Snapshot before = db.GetSnapshot();
  const Snapshot after = reopened->GetSnapshot();
  for (size_t a = 0; a < db.table().num_attributes(); ++a) {
    EXPECT_DOUBLE_EQ(before.MissingRate(a), after.MissingRate(a)) << a;
  }
}

}  // namespace
}  // namespace incdb
