// Boolean expression execution against an mmap-opened store. The loaded
// bitmap payloads are zero-copy views borrowed from the mapped segment, so
// this suite proves the expression path — including NOT, which flips the
// Kleene component and complements borrowed WAH bitvectors — behaves
// identically over mmap'd indexes as over freshly built ones.

#include <gtest/gtest.h>
#include <unistd.h>

#include <string>
#include <vector>

#include "core/database.h"
#include "core/expr_executor.h"
#include "plan/plan_executor.h"
#include "plan/planner.h"
#include "query/expr.h"
#include "table/generator.h"

namespace incdb {
namespace {

std::string StoreDir(const std::string& tag) {
  static int counter = 0;
  return "storage_expr_" + tag + "_" + std::to_string(getpid()) + "_" +
         std::to_string(counter++) + ".incdb";
}

Database MakeDatabase() {
  Table table = GenerateTable(UniformSpec(450, 7, 0.25, 3, 1103)).value();
  return std::move(Database::FromTable(std::move(table)).value());
}

// Expression fixtures with NOT at every depth — the shapes that exercise
// complement over the loaded (borrowed) bitvector payloads.
std::vector<QueryExpr> Fixtures() {
  const QueryExpr t0 = QueryExpr::MakeTerm(0, {2, 5});
  const QueryExpr t1 = QueryExpr::MakeTerm(1, {3, 3});
  const QueryExpr t2 = QueryExpr::MakeTerm(2, {1, 4});
  return {
      t0,
      QueryExpr::MakeNot(t0),
      QueryExpr::MakeAnd({t0, QueryExpr::MakeNot(t1)}),
      QueryExpr::MakeOr({QueryExpr::MakeNot(t0), t2}),
      QueryExpr::MakeNot(QueryExpr::MakeAnd({t0, t1, t2})),
      QueryExpr::MakeNot(
          QueryExpr::MakeOr({t1, QueryExpr::MakeNot(QueryExpr::MakeAnd(
                                     {t0, QueryExpr::MakeNot(t2)}))})),
  };
}

std::vector<uint32_t> Oracle(const Table& table, const QueryExpr& expr,
                             MissingSemantics semantics) {
  std::vector<uint32_t> rows;
  for (uint64_t r = 0; r < table.num_rows(); ++r) {
    if (ExprMatches(table, r, expr, semantics)) {
      rows.push_back(static_cast<uint32_t>(r));
    }
  }
  return rows;
}

class StorageExprExecTest : public ::testing::TestWithParam<IndexKind> {};

TEST_P(StorageExprExecTest, ExpressionsOverOpenedStoreMatchOracle) {
  Database db = MakeDatabase();
  ASSERT_TRUE(db.BuildIndex(GetParam()).ok());
  const std::string dir = StoreDir("oracle");
  ASSERT_TRUE(db.Save(dir).ok());
  auto reopened = Database::Open(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();

  for (MissingSemantics semantics :
       {MissingSemantics::kMatch, MissingSemantics::kNoMatch}) {
    for (const QueryExpr& expr : Fixtures()) {
      const auto expected = Oracle(reopened->table(), expr, semantics);
      // End to end through the planner over the mmap-backed snapshot.
      const auto via_run =
          reopened->Run(QueryRequest::Expression(expr, semantics));
      ASSERT_TRUE(via_run.ok()) << via_run.status().ToString();
      EXPECT_EQ(via_run->row_ids, expected)
          << IndexKindToString(GetParam()) << " "
          << MissingSemanticsToString(semantics) << " " << expr.ToString();

      // Directly against the loaded index object: ExecuteExpr lowers onto
      // the borrowed payloads without the sink/delta machinery.
      const Snapshot snapshot = reopened->GetSnapshot();
      for (const auto& entry : *snapshot.state().indexes) {
        if (entry.kind != GetParam()) continue;
        auto direct = ExecuteExpr(*entry.index, expr, semantics);
        ASSERT_TRUE(direct.ok()) << direct.status().ToString();
        EXPECT_EQ(direct->ToIndices(), expected)
            << entry.index->Name() << " direct";
      }
    }
  }
}

TEST_P(StorageExprExecTest, NegationAfterAppendsAndDeletesOnTheOpenedSide) {
  Database db = MakeDatabase();
  ASSERT_TRUE(db.BuildIndex(GetParam()).ok());
  const std::string dir = StoreDir("mutate");
  ASSERT_TRUE(db.Save(dir).ok());
  auto reopened = Database::Open(dir);
  ASSERT_TRUE(reopened.ok()) << reopened.status().ToString();

  // Mutate the opened database: the loaded index now undercovers, so the
  // expression path must stitch a delta scan onto the mmap'd probes.
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(reopened
                    ->Insert({static_cast<Value>(1 + i % 7), kMissingValue,
                              static_cast<Value>(1 + i % 5)})
                    .ok());
  }
  ASSERT_TRUE(reopened->Delete(17).ok());
  ASSERT_TRUE(reopened->Delete(455).ok());

  const QueryExpr expr = QueryExpr::MakeAnd(
      {QueryExpr::MakeTerm(0, {2, 6}),
       QueryExpr::MakeNot(QueryExpr::MakeTerm(2, {2, 3}))});
  for (MissingSemantics semantics :
       {MissingSemantics::kMatch, MissingSemantics::kNoMatch}) {
    std::vector<uint32_t> expected;
    for (uint64_t r = 0; r < reopened->num_rows(); ++r) {
      if (!reopened->IsDeleted(static_cast<uint32_t>(r)) &&
          ExprMatches(reopened->table(), r, expr, semantics)) {
        expected.push_back(static_cast<uint32_t>(r));
      }
    }
    const auto result =
        reopened->Run(QueryRequest::Expression(expr, semantics));
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    EXPECT_EQ(result->row_ids, expected)
        << MissingSemanticsToString(semantics);
    const auto parallel =
        reopened->Run(QueryRequest::Expression(expr, semantics).Parallel(4));
    ASSERT_TRUE(parallel.ok());
    EXPECT_EQ(parallel->row_ids, expected);
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllKinds, StorageExprExecTest,
    ::testing::Values(IndexKind::kBitmapEquality, IndexKind::kBitmapRange,
                      IndexKind::kBitmapInterval, IndexKind::kBitmapBitSliced,
                      IndexKind::kVaFile, IndexKind::kVaPlusFile,
                      IndexKind::kMosaic, IndexKind::kBitstringAugmented));

}  // namespace
}  // namespace incdb
