#include "table/reorder.h"

#include <gtest/gtest.h>

#include <map>

#include "bitmap/bitmap_index.h"
#include "query/seq_scan.h"
#include "table/generator.h"

namespace incdb {
namespace {

TEST(ReorderTest, LexicographicOrderSortsByKey) {
  auto table = Table::Create(Schema({{"a", 5}, {"b", 5}})).value();
  ASSERT_TRUE(table.AppendRow({3, 1}).ok());
  ASSERT_TRUE(table.AppendRow({1, 2}).ok());
  ASSERT_TRUE(table.AppendRow({kMissingValue, 5}).ok());
  ASSERT_TRUE(table.AppendRow({1, 1}).ok());
  const std::vector<uint32_t> order = LexicographicOrder(table, {0, 1});
  // Missing (0) first, then (1,1), (1,2), (3,1).
  EXPECT_EQ(order, (std::vector<uint32_t>{2, 3, 1, 0}));
}

TEST(ReorderTest, StableOnTies) {
  auto table = Table::Create(Schema({{"a", 2}})).value();
  for (Value v : {1, 2, 1, 2, 1}) ASSERT_TRUE(table.AppendRow({v}).ok());
  const std::vector<uint32_t> order = LexicographicOrder(table, {0});
  EXPECT_EQ(order, (std::vector<uint32_t>{0, 2, 4, 1, 3}));
}

TEST(ReorderTest, CardinalityAscendingAttributeOrder) {
  auto table =
      Table::Create(Schema({{"wide", 100}, {"narrow", 2}, {"mid", 10}}))
          .value();
  EXPECT_EQ(CardinalityAscendingAttributeOrder(table),
            (std::vector<size_t>{1, 2, 0}));
}

TEST(ReorderTest, ReorderRowsPreservesMultiset) {
  const Table table = GenerateTable(UniformSpec(1000, 7, 0.2, 3, 401)).value();
  const auto reordered =
      ReorderRows(table, LexicographicOrder(table));
  ASSERT_TRUE(reordered.ok());
  ASSERT_EQ(reordered->num_rows(), table.num_rows());
  // Row multisets must match.
  std::map<std::vector<Value>, int> before;
  std::map<std::vector<Value>, int> after;
  std::vector<Value> row(3);
  for (uint64_t r = 0; r < table.num_rows(); ++r) {
    for (size_t a = 0; a < 3; ++a) row[a] = table.Get(r, a);
    ++before[row];
    for (size_t a = 0; a < 3; ++a) row[a] = reordered->Get(r, a);
    ++after[row];
  }
  EXPECT_EQ(before, after);
}

TEST(ReorderTest, ReorderRejectsNonPermutations) {
  const Table table = GenerateTable(UniformSpec(5, 3, 0.0, 1, 403)).value();
  EXPECT_FALSE(ReorderRows(table, {0, 1, 2}).ok());            // wrong size
  EXPECT_FALSE(ReorderRows(table, {0, 1, 2, 3, 3}).ok());      // duplicate
  EXPECT_FALSE(ReorderRows(table, {0, 1, 2, 3, 9}).ok());      // out of range
}

TEST(ReorderTest, QueryResultsArePermutedNotChanged) {
  const Table table = GenerateTable(UniformSpec(800, 10, 0.3, 4, 405)).value();
  const std::vector<uint32_t> order = LexicographicOrder(table);
  const Table reordered = ReorderRows(table, order).value();
  RangeQuery q;
  q.terms = {{0, {2, 6}}, {2, {1, 4}}};
  q.semantics = MissingSemantics::kMatch;
  const auto before = SequentialScan(table).Execute(q).value();
  const auto after = SequentialScan(reordered).Execute(q).value();
  EXPECT_EQ(before.size(), after.size());
  // Map the reordered hits back to original ids and compare sets.
  std::vector<uint32_t> mapped;
  for (uint32_t r : after) mapped.push_back(order[r]);
  std::sort(mapped.begin(), mapped.end());
  EXPECT_EQ(mapped, before);
}

// The paper's future-work claim: row reordering improves bitmap
// compression, especially for the range encoding that WAH otherwise
// barely compresses.
TEST(ReorderTest, ReorderingImprovesBitmapCompression) {
  const Table table = GenerateTable(UniformSpec(20000, 20, 0.2, 4, 407)).value();
  const Table reordered = ReorderRows(table, LexicographicOrder(table)).value();
  for (BitmapEncoding encoding :
       {BitmapEncoding::kEquality, BitmapEncoding::kRange}) {
    const uint64_t before =
        BitmapIndex::Build(table, {encoding, MissingStrategy::kExtraBitmap})
            .value()
            .SizeInBytes();
    const uint64_t after =
        BitmapIndex::Build(reordered,
                           {encoding, MissingStrategy::kExtraBitmap})
            .value()
            .SizeInBytes();
    EXPECT_LT(after, before) << BitmapEncodingToString(encoding);
  }
}

}  // namespace
}  // namespace incdb
