#include "table/schema.h"

#include <gtest/gtest.h>

namespace incdb {
namespace {

TEST(SchemaTest, EmptySchemaIsValid) {
  Schema schema;
  EXPECT_TRUE(schema.Validate().ok());
  EXPECT_EQ(schema.num_attributes(), 0u);
}

TEST(SchemaTest, ValidSchema) {
  Schema schema({{"age", 100}, {"sex", 2}});
  EXPECT_TRUE(schema.Validate().ok());
  EXPECT_EQ(schema.num_attributes(), 2u);
  EXPECT_EQ(schema.attribute(0).name, "age");
  EXPECT_EQ(schema.attribute(1).cardinality, 2u);
}

TEST(SchemaTest, RejectsEmptyName) {
  Schema schema({{"", 10}});
  EXPECT_EQ(schema.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(SchemaTest, RejectsZeroCardinality) {
  Schema schema({{"x", 0}});
  EXPECT_EQ(schema.Validate().code(), StatusCode::kInvalidArgument);
}

TEST(SchemaTest, RejectsDuplicateNames) {
  Schema schema({{"x", 5}, {"x", 7}});
  EXPECT_EQ(schema.Validate().code(), StatusCode::kAlreadyExists);
}

TEST(SchemaTest, IndexOf) {
  Schema schema({{"a", 1}, {"b", 2}, {"c", 3}});
  ASSERT_TRUE(schema.IndexOf("b").ok());
  EXPECT_EQ(schema.IndexOf("b").value(), 1u);
  EXPECT_EQ(schema.IndexOf("zz").status().code(), StatusCode::kNotFound);
}

TEST(SchemaTest, Equality) {
  Schema a({{"x", 5}});
  Schema b({{"x", 5}});
  Schema c({{"x", 6}});
  EXPECT_TRUE(a == b);
  EXPECT_FALSE(a == c);
}

}  // namespace
}  // namespace incdb
