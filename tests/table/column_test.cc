#include "table/column.h"

#include <gtest/gtest.h>

namespace incdb {
namespace {

TEST(ColumnTest, AppendAndGet) {
  Column col(5);
  EXPECT_TRUE(col.Append(1).ok());
  EXPECT_TRUE(col.Append(5).ok());
  EXPECT_TRUE(col.Append(kMissingValue).ok());
  EXPECT_EQ(col.num_rows(), 3u);
  EXPECT_EQ(col.Get(0), 1);
  EXPECT_EQ(col.Get(1), 5);
  EXPECT_TRUE(col.IsMissingAt(2));
  EXPECT_FALSE(col.IsMissingAt(0));
}

TEST(ColumnTest, RejectsOutOfDomain) {
  Column col(5);
  EXPECT_EQ(col.Append(6).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(col.Append(-1).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(col.num_rows(), 0u);  // failed appends do not mutate
}

TEST(ColumnTest, MissingStats) {
  Column col(3);
  ASSERT_TRUE(col.Append(1).ok());
  ASSERT_TRUE(col.Append(kMissingValue).ok());
  ASSERT_TRUE(col.Append(kMissingValue).ok());
  ASSERT_TRUE(col.Append(2).ok());
  EXPECT_EQ(col.MissingCount(), 2u);
  EXPECT_DOUBLE_EQ(col.MissingRate(), 0.5);
}

TEST(ColumnTest, MissingRateOfEmptyColumnIsZero) {
  Column col(3);
  EXPECT_DOUBLE_EQ(col.MissingRate(), 0.0);
}

TEST(ColumnTest, Histogram) {
  Column col(3);
  for (Value v : {1, 1, 2, kMissingValue, 3, 3, 3}) {
    ASSERT_TRUE(col.Append(v).ok());
  }
  const std::vector<uint64_t> hist = col.Histogram();
  ASSERT_EQ(hist.size(), 4u);
  EXPECT_EQ(hist[0], 1u);  // missing
  EXPECT_EQ(hist[1], 2u);
  EXPECT_EQ(hist[2], 1u);
  EXPECT_EQ(hist[3], 3u);
}

TEST(ColumnTest, DistinctCount) {
  Column col(10);
  for (Value v : {1, 1, 5, kMissingValue, 5}) {
    ASSERT_TRUE(col.Append(v).ok());
  }
  EXPECT_EQ(col.DistinctCount(), 2u);
}

TEST(ColumnTest, NonMissingMean) {
  Column col(10);
  for (Value v : {2, 4, kMissingValue, 6}) {
    ASSERT_TRUE(col.Append(v).ok());
  }
  EXPECT_DOUBLE_EQ(col.NonMissingMean(), 4.0);
}

TEST(ColumnTest, NonMissingMeanAllMissing) {
  Column col(10);
  ASSERT_TRUE(col.Append(kMissingValue).ok());
  EXPECT_DOUBLE_EQ(col.NonMissingMean(), 0.0);
}

}  // namespace
}  // namespace incdb
