#include "table/table.h"

#include <gtest/gtest.h>

namespace incdb {
namespace {

Table MakeSmallTable() {
  auto table = Table::Create(Schema({{"a", 5}, {"b", 3}}));
  EXPECT_TRUE(table.ok());
  return std::move(table).value();
}

TEST(TableTest, CreateValidatesSchema) {
  EXPECT_FALSE(Table::Create(Schema({{"", 5}})).ok());
  EXPECT_TRUE(Table::Create(Schema({{"x", 5}})).ok());
}

TEST(TableTest, AppendRowAndGet) {
  Table table = MakeSmallTable();
  ASSERT_TRUE(table.AppendRow({3, kMissingValue}).ok());
  ASSERT_TRUE(table.AppendRow({kMissingValue, 2}).ok());
  EXPECT_EQ(table.num_rows(), 2u);
  EXPECT_EQ(table.Get(0, 0), 3);
  EXPECT_TRUE(table.IsMissingAt(0, 1));
  EXPECT_TRUE(table.IsMissingAt(1, 0));
  EXPECT_EQ(table.Get(1, 1), 2);
}

TEST(TableTest, AppendRowRejectsWrongArity) {
  Table table = MakeSmallTable();
  EXPECT_EQ(table.AppendRow({1}).code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(table.AppendRow({1, 2, 3}).code(), StatusCode::kInvalidArgument);
}

TEST(TableTest, AppendRowRejectsOutOfDomainAtomically) {
  Table table = MakeSmallTable();
  // Second value is out of range; the whole row must be rejected and no
  // column may grow.
  EXPECT_EQ(table.AppendRow({1, 9}).code(), StatusCode::kOutOfRange);
  EXPECT_EQ(table.num_rows(), 0u);
  EXPECT_EQ(table.column(0).num_rows(), 0u);
  EXPECT_EQ(table.column(1).num_rows(), 0u);
}

TEST(TableTest, DataSizeInBytes) {
  Table table = MakeSmallTable();
  ASSERT_TRUE(table.AppendRow({1, 1}).ok());
  ASSERT_TRUE(table.AppendRow({2, 2}).ok());
  EXPECT_EQ(table.DataSizeInBytes(), 2u * 2u * sizeof(Value));
}

TEST(TableTest, SummaryMentionsShape) {
  Table table = MakeSmallTable();
  ASSERT_TRUE(table.AppendRow({1, kMissingValue}).ok());
  const std::string summary = table.Summary();
  EXPECT_NE(summary.find("rows=1"), std::string::npos);
  EXPECT_NE(summary.find("attrs=2"), std::string::npos);
  EXPECT_NE(summary.find("50.0%"), std::string::npos);
}

}  // namespace
}  // namespace incdb
