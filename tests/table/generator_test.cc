#include "table/generator.h"

#include <gtest/gtest.h>

namespace incdb {
namespace {

TEST(GeneratorTest, DeterministicInSeed) {
  const DatasetSpec spec = UniformSpec(500, 10, 0.2, 3, /*seed=*/99);
  const Table a = GenerateTable(spec).value();
  const Table b = GenerateTable(spec).value();
  ASSERT_EQ(a.num_rows(), b.num_rows());
  for (uint64_t r = 0; r < a.num_rows(); ++r) {
    for (size_t c = 0; c < a.num_attributes(); ++c) {
      EXPECT_EQ(a.Get(r, c), b.Get(r, c));
    }
  }
}

TEST(GeneratorTest, DifferentSeedsDiffer) {
  const Table a = GenerateTable(UniformSpec(500, 10, 0.2, 1, 1)).value();
  const Table b = GenerateTable(UniformSpec(500, 10, 0.2, 1, 2)).value();
  int differing = 0;
  for (uint64_t r = 0; r < 500; ++r) {
    if (a.Get(r, 0) != b.Get(r, 0)) ++differing;
  }
  EXPECT_GT(differing, 100);
}

TEST(GeneratorTest, MissingRateIsRespected) {
  const Table table = GenerateTable(UniformSpec(20000, 10, 0.3, 1, 5)).value();
  EXPECT_NEAR(table.column(0).MissingRate(), 0.3, 0.02);
}

TEST(GeneratorTest, ZeroMissingRate) {
  const Table table = GenerateTable(UniformSpec(1000, 10, 0.0, 1, 5)).value();
  EXPECT_EQ(table.column(0).MissingCount(), 0u);
}

TEST(GeneratorTest, ValuesStayInDomain) {
  const Table table = GenerateTable(UniformSpec(5000, 7, 0.1, 2, 3)).value();
  for (uint64_t r = 0; r < table.num_rows(); ++r) {
    for (size_t c = 0; c < 2; ++c) {
      const Value v = table.Get(r, c);
      EXPECT_GE(v, 0);
      EXPECT_LE(v, 7);
    }
  }
}

TEST(GeneratorTest, UniformValuesAreUniform) {
  const Table table = GenerateTable(UniformSpec(50000, 5, 0.0, 1, 11)).value();
  const std::vector<uint64_t> hist = table.column(0).Histogram();
  for (int v = 1; v <= 5; ++v) {
    EXPECT_NEAR(static_cast<double>(hist[v]), 10000.0, 500.0);
  }
}

TEST(GeneratorTest, RejectsBadMissingRate) {
  DatasetSpec spec = UniformSpec(10, 5, 0.0, 1);
  spec.attributes[0].missing_rate = 1.5;
  EXPECT_FALSE(GenerateTable(spec).ok());
}

TEST(GeneratorTest, ZipfSkewsDistribution) {
  DatasetSpec spec = UniformSpec(20000, 50, 0.0, 1, 13);
  spec.attributes[0].zipf_theta = 1.2;
  const Table table = GenerateTable(spec).value();
  const std::vector<uint64_t> hist = table.column(0).Histogram();
  // Rank 1 must dominate the tail under heavy skew.
  EXPECT_GT(hist[1], 10 * hist[50] + 1);
  EXPECT_GT(hist[1], 2000u);
}

// Paper Table 7 (left): 450 columns, 90 per missing-rate level, with the
// documented per-cardinality counts.
TEST(GeneratorTest, PaperSyntheticSpecShape) {
  const DatasetSpec spec = PaperSyntheticSpec(100, 1);
  EXPECT_EQ(spec.attributes.size(), 450u);
  int card2 = 0;
  int missing30 = 0;
  for (const GeneratedAttribute& attr : spec.attributes) {
    if (attr.cardinality == 2) ++card2;
    if (attr.missing_rate == 0.30) ++missing30;
    EXPECT_EQ(attr.zipf_theta, 0.0);  // synthetic data is uniform
  }
  EXPECT_EQ(card2, 50);
  EXPECT_EQ(missing30, 90);
}

// Paper Table 7 (right): 48 attributes; 20 complete, 8 above 90% missing;
// cardinalities within 2..165.
TEST(GeneratorTest, CensusLikeSpecShape) {
  const DatasetSpec spec = CensusLikeSpec(100, 1);
  EXPECT_EQ(spec.attributes.size(), 48u);
  int complete = 0;
  int heavy_missing = 0;
  for (const GeneratedAttribute& attr : spec.attributes) {
    EXPECT_GE(attr.cardinality, 2u);
    EXPECT_LE(attr.cardinality, 165u);
    EXPECT_GT(attr.zipf_theta, 0.0);  // census-like data is skewed
    if (attr.missing_rate == 0.0) ++complete;
    if (attr.missing_rate > 0.9) ++heavy_missing;
  }
  EXPECT_EQ(complete, 20);
  EXPECT_EQ(heavy_missing, 8);
}

TEST(GeneratorTest, CensusLikeGeneratesRequestedRows) {
  const Table table = GenerateTable(CensusLikeSpec(2000, 3)).value();
  EXPECT_EQ(table.num_rows(), 2000u);
  EXPECT_EQ(table.num_attributes(), 48u);
}

}  // namespace
}  // namespace incdb
