#include "table/csv.h"

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "table/generator.h"

namespace incdb {
namespace {

class CsvTest : public ::testing::Test {
 protected:
  void TearDown() override {
    if (!path_.empty()) std::remove(path_.c_str());
  }

  std::string TempPath(const std::string& name) {
    path_ = ::testing::TempDir() + "/" + name;
    return path_;
  }

  std::string path_;
};

TEST_F(CsvTest, RoundTrip) {
  const Table original = GenerateTable(UniformSpec(200, 9, 0.25, 3, 7)).value();
  const std::string path = TempPath("roundtrip.csv");
  ASSERT_TRUE(WriteCsv(original, path).ok());

  const auto loaded = ReadCsv(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  const Table& copy = loaded.value();
  ASSERT_EQ(copy.num_rows(), original.num_rows());
  ASSERT_EQ(copy.num_attributes(), original.num_attributes());
  EXPECT_TRUE(copy.schema() == original.schema());
  for (uint64_t r = 0; r < original.num_rows(); ++r) {
    for (size_t c = 0; c < original.num_attributes(); ++c) {
      EXPECT_EQ(copy.Get(r, c), original.Get(r, c));
    }
  }
}

TEST_F(CsvTest, MissingCellsAreQuestionMarks) {
  auto table = Table::Create(Schema({{"x", 3}})).value();
  ASSERT_TRUE(table.AppendRow({kMissingValue}).ok());
  const std::string path = TempPath("missing.csv");
  ASSERT_TRUE(WriteCsv(table, path).ok());
  std::ifstream in(path);
  std::string header, row;
  std::getline(in, header);
  std::getline(in, row);
  EXPECT_EQ(header, "x:3");
  EXPECT_EQ(row, "?");
}

TEST_F(CsvTest, ReadRejectsMissingFile) {
  EXPECT_EQ(ReadCsv("/nonexistent/nope.csv").status().code(),
            StatusCode::kIOError);
}

TEST_F(CsvTest, ReadRejectsHeaderWithoutCardinality) {
  const std::string path = TempPath("badheader.csv");
  std::ofstream(path) << "a,b\n1,2\n";
  EXPECT_EQ(ReadCsv(path).status().code(), StatusCode::kInvalidArgument);
}

TEST_F(CsvTest, ReadRejectsWrongFieldCount) {
  const std::string path = TempPath("badrow.csv");
  std::ofstream(path) << "a:3,b:3\n1\n";
  EXPECT_EQ(ReadCsv(path).status().code(), StatusCode::kInvalidArgument);
}

TEST_F(CsvTest, ReadRejectsOutOfDomainValue) {
  const std::string path = TempPath("outofdomain.csv");
  std::ofstream(path) << "a:3\n7\n";
  EXPECT_EQ(ReadCsv(path).status().code(), StatusCode::kOutOfRange);
}

TEST_F(CsvTest, ReadRejectsNonNumericValue) {
  const std::string path = TempPath("nonnumeric.csv");
  std::ofstream(path) << "a:3\nxyz\n";
  EXPECT_EQ(ReadCsv(path).status().code(), StatusCode::kInvalidArgument);
}

// Regression: the pre-Result parser used std::stol inside catch(...), which
// silently accepted any numeric *prefix* — "12abc" parsed as 12. The
// from_chars-based parser must consume the whole field or reject it.
TEST_F(CsvTest, ReadRejectsTrailingGarbageAfterNumber) {
  const std::string path = TempPath("trailinggarbage.csv");
  std::ofstream(path) << "a:30\n12abc\n";
  const auto loaded = ReadCsv(path);
  EXPECT_EQ(loaded.status().code(), StatusCode::kInvalidArgument);
  EXPECT_NE(loaded.status().message().find("12abc"), std::string::npos)
      << loaded.status().ToString();
}

// Regression: values past the int64 range used to throw std::out_of_range
// into catch(...); worse, values that fit int64 but not Value (int32) were
// silently truncated by the narrowing cast. Both must now reject the cell.
TEST_F(CsvTest, ReadRejectsValueOverflow) {
  const std::string path = TempPath("overflow.csv");
  std::ofstream(path) << "a:3\n99999999999999999999\n";
  EXPECT_EQ(ReadCsv(path).status().code(), StatusCode::kInvalidArgument);

  const std::string path2 = TempPath("overflow32.csv");
  std::ofstream(path2) << "a:3\n4294967296\n";
  EXPECT_EQ(ReadCsv(path2).status().code(), StatusCode::kInvalidArgument);
}

TEST_F(CsvTest, ReadRejectsHeaderCardinalityWithTrailingGarbage) {
  const std::string path = TempPath("badcard.csv");
  std::ofstream(path) << "a:3x\n1\n";
  EXPECT_EQ(ReadCsv(path).status().code(), StatusCode::kInvalidArgument);
}

TEST_F(CsvTest, ReadRejectsNegativeCardinality) {
  const std::string path = TempPath("negcard.csv");
  std::ofstream(path) << "a:-3\n1\n";
  EXPECT_EQ(ReadCsv(path).status().code(), StatusCode::kInvalidArgument);
}

TEST_F(CsvTest, SkipsBlankLines) {
  const std::string path = TempPath("blank.csv");
  std::ofstream(path) << "a:3\n1\n\n2\n";
  const auto loaded = ReadCsv(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded.value().num_rows(), 2u);
}

}  // namespace
}  // namespace incdb
