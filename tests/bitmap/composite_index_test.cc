// CompositeBitmapIndex tests: the multi-component and hierarchical slicers
// composed with the shared equality encoder must agree with the row-level
// oracle and the direct equality index on every interval under both
// semantics; the probe-count guarantees (O(sum of radices) storage for MC,
// <= 2 bitmaps per level for hierarchical) are asserted through QueryStats,
// not just claimed.

#include "bitmap/composite_index.h"

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <vector>

#include "bitmap/bitmap_index.h"
#include "bitmap/slicer.h"
#include "query/expr.h"
#include "table/generator.h"

namespace incdb {
namespace {

std::vector<uint32_t> Oracle(const Table& table, const RangeQuery& query) {
  std::vector<uint32_t> rows;
  for (uint64_t r = 0; r < table.num_rows(); ++r) {
    if (RowMatches(table, r, query)) rows.push_back(static_cast<uint32_t>(r));
  }
  return rows;
}

// Every interval shape over every scheme and a spread of cardinalities
// (prime, power of two, perfect square, tiny) against the oracle.
TEST(CompositeIndexTest, AllIntervalsAgreeWithOracle) {
  for (SlotScheme scheme :
       {SlotScheme::kMultiComponent, SlotScheme::kHierarchical}) {
    for (uint32_t cardinality : {1u, 2u, 5u, 16u, 36u, 37u, 101u}) {
      const Table table =
          GenerateTable(UniformSpec(300, cardinality, 0.2, 2, 1000 +
                                    cardinality))
              .value();
      const auto index = CompositeBitmapIndex::Build(table, {scheme});
      ASSERT_TRUE(index.ok()) << index.status().ToString();
      for (MissingSemantics semantics :
           {MissingSemantics::kMatch, MissingSemantics::kNoMatch}) {
        for (uint32_t lo = 1; lo <= cardinality; ++lo) {
          for (uint32_t hi = lo; hi <= cardinality; ++hi) {
            RangeQuery query;
            query.terms = {{0,
                            {static_cast<Value>(lo), static_cast<Value>(hi)}}};
            query.semantics = semantics;
            const auto answer = index->Execute(query);
            ASSERT_TRUE(answer.ok()) << answer.status().ToString();
            EXPECT_EQ(answer->ToIndices(), Oracle(table, query))
                << index->Name() << " C=" << cardinality << " ["
                << lo << "," << hi << "] "
                << MissingSemanticsToString(semantics);
          }
        }
      }
    }
  }
}

TEST(CompositeIndexTest, ConjunctionsAndCountsAgreeWithEqualityIndex) {
  const Table table = GenerateTable(UniformSpec(500, 12, 0.25, 3, 77)).value();
  const auto equality = BitmapIndex::Build(
      table, {BitmapEncoding::kEquality, MissingStrategy::kExtraBitmap});
  ASSERT_TRUE(equality.ok());
  for (SlotScheme scheme :
       {SlotScheme::kMultiComponent, SlotScheme::kHierarchical}) {
    const auto composite = CompositeBitmapIndex::Build(table, {scheme});
    ASSERT_TRUE(composite.ok()) << composite.status().ToString();
    for (MissingSemantics semantics :
         {MissingSemantics::kMatch, MissingSemantics::kNoMatch}) {
      const std::vector<std::vector<QueryTerm>> fixtures = {
          {{0, {3, 3}}, {1, {2, 9}}},
          {{0, {1, 12}}, {2, {5, 5}}},
          {{0, {2, 11}}, {1, {1, 6}}, {2, {4, 12}}},
      };
      for (const std::vector<QueryTerm>& terms : fixtures) {
        RangeQuery query;
        query.terms = terms;
        query.semantics = semantics;
        const auto a = equality->Execute(query);
        const auto b = composite->Execute(query);
        ASSERT_TRUE(a.ok() && b.ok());
        EXPECT_EQ(a->ToIndices(), b->ToIndices()) << query.ToString();
        const auto count = composite->ExecuteCount(query);
        ASSERT_TRUE(count.ok());
        EXPECT_EQ(count.value(), a->Count()) << query.ToString();
      }
    }
  }
}

TEST(CompositeIndexTest, MultiComponentStoresFarFewerBitmaps) {
  const uint32_t cardinality = 10'000;
  const Table table =
      GenerateTable(UniformSpec(2000, cardinality, 0.1, 1, 91)).value();
  const auto equality = BitmapIndex::Build(
      table, {BitmapEncoding::kEquality, MissingStrategy::kExtraBitmap});
  const auto mc = CompositeBitmapIndex::Build(
      table, {SlotScheme::kMultiComponent});
  ASSERT_TRUE(equality.ok() && mc.ok());
  // O(2 sqrt C) bitmaps instead of O(C): radices 100 x 100 plus B_0.
  EXPECT_LE(mc->NumBitmaps(0), 2u * 100u + 1u);
  EXPECT_LT(mc->SizeInBytes(), equality->SizeInBytes());
}

TEST(CompositeIndexTest, HierarchicalWideRangeProbesLogarithmically) {
  const uint32_t cardinality = 1024;
  const Table table =
      GenerateTable(UniformSpec(4000, cardinality, 0.1, 1, 93)).value();
  const auto hier = CompositeBitmapIndex::Build(
      table, {SlotScheme::kHierarchical});
  ASSERT_TRUE(hier.ok());
  const uint64_t levels = static_cast<uint64_t>(
      std::log2(static_cast<double>(cardinality))) + 1;
  for (const Interval interval :
       {Interval{2, 1023}, Interval{5, 900}, Interval{100, 700},
        Interval{1, 513}}) {
    QueryStats stats;
    const auto result = hier->EvaluateInterval(
        0, interval, MissingSemantics::kNoMatch, &stats);
    ASSERT_TRUE(result.ok()) << result.status().ToString();
    // The acceptance bound: a wide range touches <= 2 bitmaps per level.
    EXPECT_LE(stats.bitvectors_accessed, 2 * levels)
        << "[" << interval.lo << "," << interval.hi << "]";
    EXPECT_GT(stats.probe_levels, 0u);
  }
  // Equality encoding would touch ~min(w, C-w) bitmaps for the same range;
  // sanity-check the separation on one wide interval.
  const auto equality = BitmapIndex::Build(
      table, {BitmapEncoding::kEquality, MissingStrategy::kExtraBitmap});
  ASSERT_TRUE(equality.ok());
  QueryStats eq_stats;
  ASSERT_TRUE(equality
                  ->EvaluateInterval(0, {100, 700}, MissingSemantics::kNoMatch,
                                     &eq_stats)
                  .ok());
  QueryStats hier_stats;
  ASSERT_TRUE(hier->EvaluateInterval(0, {100, 700},
                                     MissingSemantics::kNoMatch, &hier_stats)
                  .ok());
  EXPECT_LT(hier_stats.bitvectors_accessed, eq_stats.bitvectors_accessed / 4);
}

TEST(CompositeIndexTest, MultiComponentReportsComponentProbes) {
  const Table table = GenerateTable(UniformSpec(300, 100, 0.15, 1, 95)).value();
  const auto mc = CompositeBitmapIndex::Build(
      table, {SlotScheme::kMultiComponent});
  ASSERT_TRUE(mc.ok());
  QueryStats stats;
  ASSERT_TRUE(
      mc->EvaluateInterval(0, {7, 83}, MissingSemantics::kMatch, &stats).ok());
  EXPECT_GT(stats.probe_components, 0u);
}

TEST(CompositeIndexTest, AppendRowKeepsAgreement) {
  const uint32_t cardinality = 30;
  Table table = GenerateTable(UniformSpec(200, cardinality, 0.2, 2, 97)).value();
  for (SlotScheme scheme :
       {SlotScheme::kMultiComponent, SlotScheme::kHierarchical}) {
    auto composite = CompositeBitmapIndex::Build(table, {scheme});
    ASSERT_TRUE(composite.ok());
    Table grown = GenerateTable(UniformSpec(200, cardinality, 0.2, 2, 97))
                      .value();
    for (int i = 0; i < 40; ++i) {
      const std::vector<Value> row = {
          i % 5 == 0 ? kMissingValue : static_cast<Value>(1 + i % cardinality),
          static_cast<Value>(1 + (i * 7) % cardinality)};
      ASSERT_TRUE(grown.AppendRow(row).ok());
      ASSERT_TRUE(composite->AppendRow(row).ok());
    }
    for (MissingSemantics semantics :
         {MissingSemantics::kMatch, MissingSemantics::kNoMatch}) {
      RangeQuery query;
      query.terms = {{0, {4, 21}}, {1, {1, 17}}};
      query.semantics = semantics;
      const auto answer = composite->Execute(query);
      ASSERT_TRUE(answer.ok());
      EXPECT_EQ(answer->ToIndices(), Oracle(grown, query))
          << composite->Name();
    }
  }
}

TEST(CompositeIndexTest, FromPartsRejectsMalformedShapes) {
  const Table table = GenerateTable(UniformSpec(100, 20, 0.2, 1, 99)).value();
  const auto built = CompositeBitmapIndex::Build(
      table, {SlotScheme::kMultiComponent});
  ASSERT_TRUE(built.ok());

  // Round-trips cleanly through its own parts.
  {
    auto parts = built->attributes();
    const auto again = CompositeBitmapIndex::FromParts(
        {SlotScheme::kMultiComponent}, built->num_rows(), std::move(parts));
    EXPECT_TRUE(again.ok()) << again.status().ToString();
  }
  // Wrong axis count for the scheme.
  {
    auto parts = built->attributes();
    parts[0].axes.pop_back();
    EXPECT_FALSE(CompositeBitmapIndex::FromParts(
                     {SlotScheme::kMultiComponent}, built->num_rows(),
                     std::move(parts))
                     .ok());
  }
  // Wrong bitmap count within an axis.
  {
    auto parts = built->attributes();
    parts[0].axes[0].pop_back();
    EXPECT_FALSE(CompositeBitmapIndex::FromParts(
                     {SlotScheme::kMultiComponent}, built->num_rows(),
                     std::move(parts))
                     .ok());
  }
  // Direct scheme is BitmapIndex's job.
  EXPECT_FALSE(
      CompositeBitmapIndex::Build(table, {SlotScheme::kDirect}).ok());
}

}  // namespace
}  // namespace incdb
