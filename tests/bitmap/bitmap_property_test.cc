// Oracle-equivalence property sweeps (DESIGN.md invariant 1): for every
// encoding, missing strategy, cardinality, missing rate and semantics, the
// bitmap index must return exactly the sequential-scan result.

#include <gtest/gtest.h>

#include "bitmap/bitmap_index.h"
#include "core/executor.h"
#include "query/workload.h"
#include "table/generator.h"

namespace incdb {
namespace {

struct SweepCase {
  BitmapEncoding encoding;
  uint32_t cardinality;
  double missing_rate;
  MissingSemantics semantics;
};

class BitmapOracleTest : public ::testing::TestWithParam<SweepCase> {};

TEST_P(BitmapOracleTest, AgreesWithSequentialScan) {
  const SweepCase& c = GetParam();
  const Table table =
      GenerateTable(
          UniformSpec(2000, c.cardinality, c.missing_rate, 6,
                      /*seed=*/c.cardinality * 1000 +
                          static_cast<uint64_t>(c.missing_rate * 100)))
          .value();
  const BitmapIndex index =
      BitmapIndex::Build(table, {c.encoding, MissingStrategy::kExtraBitmap})
          .value();

  WorkloadParams params;
  params.num_queries = 30;
  params.dims = 4;
  params.global_selectivity = 0.02;
  params.semantics = c.semantics;
  params.seed = 5 + c.cardinality;
  const auto range_queries = GenerateWorkload(table, params);
  ASSERT_TRUE(range_queries.ok());
  EXPECT_TRUE(
      VerifyAgainstOracle(index, table, range_queries.value()).ok());

  params.point_queries = true;
  params.seed += 1;
  const auto point_queries = GenerateWorkload(table, params);
  ASSERT_TRUE(point_queries.ok());
  EXPECT_TRUE(
      VerifyAgainstOracle(index, table, point_queries.value()).ok());
}

std::vector<SweepCase> MakeSweep() {
  std::vector<SweepCase> cases;
  for (BitmapEncoding encoding :
       {BitmapEncoding::kEquality, BitmapEncoding::kRange,
        BitmapEncoding::kInterval, BitmapEncoding::kBitSliced}) {
    for (uint32_t cardinality : {2u, 5u, 10u, 50u}) {
      for (double missing : {0.0, 0.1, 0.5}) {
        for (MissingSemantics semantics :
             {MissingSemantics::kMatch, MissingSemantics::kNoMatch}) {
          cases.push_back({encoding, cardinality, missing, semantics});
        }
      }
    }
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Sweep, BitmapOracleTest,
                         ::testing::ValuesIn(MakeSweep()));

// Exhaustive single-attribute check: every possible interval over a small
// domain, both encodings, both semantics, against the oracle.
TEST(BitmapExhaustiveTest, EveryIntervalOnSmallDomain) {
  const Table table = GenerateTable(UniformSpec(500, 7, 0.25, 1, 3)).value();
  for (BitmapEncoding encoding :
       {BitmapEncoding::kEquality, BitmapEncoding::kRange,
        BitmapEncoding::kInterval, BitmapEncoding::kBitSliced}) {
    const BitmapIndex index =
        BitmapIndex::Build(table, {encoding, MissingStrategy::kExtraBitmap})
            .value();
    std::vector<RangeQuery> queries;
    for (Value lo = 1; lo <= 7; ++lo) {
      for (Value hi = lo; hi <= 7; ++hi) {
        for (MissingSemantics semantics :
             {MissingSemantics::kMatch, MissingSemantics::kNoMatch}) {
          RangeQuery q;
          q.terms = {{0, {lo, hi}}};
          q.semantics = semantics;
          queries.push_back(q);
        }
      }
    }
    EXPECT_TRUE(VerifyAgainstOracle(index, table, queries).ok())
        << BitmapEncodingToString(encoding);
  }
}

// The §4.2 alternative missing encodings must also be exact within their
// supported semantics.
TEST(BitmapAlternativeStrategyTest, AllOnesAgreesWithOracleUnderMatch) {
  const Table table = GenerateTable(UniformSpec(1000, 8, 0.3, 4, 19)).value();
  const BitmapIndex index =
      BitmapIndex::Build(table,
                         {BitmapEncoding::kEquality, MissingStrategy::kAllOnes})
          .value();
  WorkloadParams params;
  params.num_queries = 40;
  params.dims = 3;
  params.global_selectivity = 0.05;
  params.semantics = MissingSemantics::kMatch;
  const auto queries = GenerateWorkload(table, params);
  ASSERT_TRUE(queries.ok());
  EXPECT_TRUE(VerifyAgainstOracle(index, table, queries.value()).ok());
}

TEST(BitmapAlternativeStrategyTest, AllZerosAgreesWithOracleUnderNoMatch) {
  const Table table = GenerateTable(UniformSpec(1000, 8, 0.3, 4, 23)).value();
  const BitmapIndex index =
      BitmapIndex::Build(
          table, {BitmapEncoding::kEquality, MissingStrategy::kAllZeros})
          .value();
  WorkloadParams params;
  params.num_queries = 40;
  params.dims = 3;
  params.global_selectivity = 0.05;
  params.semantics = MissingSemantics::kNoMatch;
  const auto queries = GenerateWorkload(table, params);
  ASSERT_TRUE(queries.ok());
  EXPECT_TRUE(VerifyAgainstOracle(index, table, queries.value()).ok());
}

// §4.2's compression argument: interrupting the zero runs with all-ones
// missing rows hurts compression versus the extra-bitmap design.
TEST(BitmapAlternativeStrategyTest, AllOnesCompressesWorse) {
  const Table table = GenerateTable(UniformSpec(20000, 20, 0.2, 1, 29)).value();
  const uint64_t extra =
      BitmapIndex::Build(table, {BitmapEncoding::kEquality,
                                 MissingStrategy::kExtraBitmap})
          .value()
          .SizeInBytes();
  const uint64_t all_ones =
      BitmapIndex::Build(
          table, {BitmapEncoding::kEquality, MissingStrategy::kAllOnes})
          .value()
          .SizeInBytes();
  EXPECT_GT(all_ones, extra);
}

// Semantics algebra at the index level (DESIGN.md invariant 6).
TEST(BitmapSemanticsTest, NoMatchResultIsSubsetOfMatchResult) {
  const Table table = GenerateTable(UniformSpec(2000, 10, 0.3, 5, 31)).value();
  for (BitmapEncoding encoding :
       {BitmapEncoding::kEquality, BitmapEncoding::kRange,
        BitmapEncoding::kInterval, BitmapEncoding::kBitSliced}) {
    const BitmapIndex index =
        BitmapIndex::Build(table, {encoding, MissingStrategy::kExtraBitmap})
            .value();
    WorkloadParams params;
    params.num_queries = 20;
    params.dims = 3;
    params.global_selectivity = 0.05;
    const auto queries = GenerateWorkload(table, params);
    ASSERT_TRUE(queries.ok());
    for (RangeQuery q : queries.value()) {
      q.semantics = MissingSemantics::kMatch;
      const BitVector with = index.Execute(q).value();
      q.semantics = MissingSemantics::kNoMatch;
      const BitVector without = index.Execute(q).value();
      EXPECT_TRUE(Or(with, without) == with);  // without ⊆ with
    }
  }
}

}  // namespace
}  // namespace incdb
