// Interval encoding (BIE) specifics: window-bitmap layout on the paper's
// worked example, the n = C - ceil(C/2) + 1 storage bound, and the
// two-bitmap query-access guarantee.

#include <gtest/gtest.h>

#include "bitmap/bitmap_index.h"
#include "core/executor.h"
#include "query/workload.h"
#include "table/generator.h"

namespace incdb {
namespace {

Table PaperExampleTable() {
  auto table = Table::Create(Schema({{"A1", 5}})).value();
  for (Value v : {5, 2, 3, kMissingValue, 4, 5, 1, 3, kMissingValue, 2}) {
    EXPECT_TRUE(table.AppendRow({v}).ok());
  }
  return table;
}

std::string Bits(const WahBitVector& wah) {
  return wah.Decompress().ToString();
}

// C = 5 → m = 3, n = 3: I_1 = [1,3], I_2 = [2,4], I_3 = [3,5]. Data:
// 5,2,3,?,4,5,1,3,?,2.
TEST(IntervalEncodingTest, WindowBitmapsOnPaperExample) {
  const Table table = PaperExampleTable();
  const BitmapIndex index =
      BitmapIndex::Build(
          table, {BitmapEncoding::kInterval, MissingStrategy::kExtraBitmap})
          .value();
  EXPECT_EQ(index.NumBitmaps(0), 4u);  // n = 3 windows + missing bitmap
  ASSERT_NE(index.missing_bitmap(0), nullptr);
  EXPECT_EQ(Bits(*index.missing_bitmap(0)), "0001000010");
  EXPECT_EQ(Bits(index.value_bitmap(0, 1)), "0110001101");  // values 1-3
  EXPECT_EQ(Bits(index.value_bitmap(0, 2)), "0110100101");  // values 2-4
  EXPECT_EQ(Bits(index.value_bitmap(0, 3)), "1010110100");  // values 3-5
}

TEST(IntervalEncodingTest, StoresRoughlyHalfTheBitmapsOfEquality) {
  for (uint32_t cardinality : {2u, 3u, 10u, 50u, 101u}) {
    const Table table =
        GenerateTable(UniformSpec(200, cardinality, 0.2, 1, 501)).value();
    const BitmapIndex bie =
        BitmapIndex::Build(
            table, {BitmapEncoding::kInterval, MissingStrategy::kExtraBitmap})
            .value();
    const BitmapIndex bee = BitmapIndex::Build(table, {}).value();
    const size_t expected_windows = cardinality - (cardinality + 1) / 2 + 1;
    EXPECT_EQ(bie.NumBitmaps(0), expected_windows + 1) << cardinality;
    EXPECT_LE(bie.NumBitmaps(0), bee.NumBitmaps(0) / 2 + 2) << cardinality;
  }
}

// The interval encoding's defining guarantee: any interval needs at most 2
// window bitmaps (+1 for the missing bitvector under match semantics).
TEST(IntervalEncodingTest, AtMostTwoWindowBitmapsPerInterval) {
  const Table table = GenerateTable(UniformSpec(300, 20, 0.25, 1, 503)).value();
  const BitmapIndex bie =
      BitmapIndex::Build(
          table, {BitmapEncoding::kInterval, MissingStrategy::kExtraBitmap})
          .value();
  for (Value lo = 1; lo <= 20; ++lo) {
    for (Value hi = lo; hi <= 20; ++hi) {
      QueryStats stats;
      ASSERT_TRUE(
          bie.EvaluateInterval(0, {lo, hi}, MissingSemantics::kMatch, &stats)
              .ok());
      EXPECT_LE(stats.bitvectors_accessed, 3u) << "[" << lo << "," << hi << "]";
      stats.Reset();
      ASSERT_TRUE(
          bie.EvaluateInterval(0, {lo, hi}, MissingSemantics::kNoMatch, &stats)
              .ok());
      EXPECT_LE(stats.bitvectors_accessed, 2u) << "[" << lo << "," << hi << "]";
    }
  }
}

// Exhaustive correctness for the odd/even cardinality corner geometry.
TEST(IntervalEncodingTest, ExhaustiveSmallDomains) {
  for (uint32_t cardinality : {1u, 2u, 3u, 4u, 5u, 6u, 7u}) {
    const Table table =
        GenerateTable(UniformSpec(400, cardinality, 0.3, 1, 505 + cardinality))
            .value();
    const BitmapIndex bie =
        BitmapIndex::Build(
            table, {BitmapEncoding::kInterval, MissingStrategy::kExtraBitmap})
            .value();
    std::vector<RangeQuery> queries;
    for (Value lo = 1; lo <= static_cast<Value>(cardinality); ++lo) {
      for (Value hi = lo; hi <= static_cast<Value>(cardinality); ++hi) {
        for (MissingSemantics semantics :
             {MissingSemantics::kMatch, MissingSemantics::kNoMatch}) {
          RangeQuery q;
          q.terms = {{0, {lo, hi}}};
          q.semantics = semantics;
          queries.push_back(q);
        }
      }
    }
    EXPECT_TRUE(VerifyAgainstOracle(bie, table, queries).ok())
        << "cardinality " << cardinality;
  }
}

TEST(IntervalEncodingTest, RejectsAlternativeMissingStrategies) {
  const Table table = GenerateTable(UniformSpec(50, 5, 0.2, 1, 521)).value();
  EXPECT_EQ(BitmapIndex::Build(
                table, {BitmapEncoding::kInterval, MissingStrategy::kAllOnes})
                .status()
                .code(),
            StatusCode::kNotSupported);
  EXPECT_EQ(BitmapIndex::Build(
                table, {BitmapEncoding::kInterval, MissingStrategy::kAllZeros})
                .status()
                .code(),
            StatusCode::kNotSupported);
}

TEST(IntervalEncodingTest, NameIsBie) {
  const Table table = GenerateTable(UniformSpec(10, 5, 0.0, 1, 523)).value();
  EXPECT_EQ(BitmapIndex::Build(
                table,
                {BitmapEncoding::kInterval, MissingStrategy::kExtraBitmap})
                .value()
                .Name(),
            "BIE-WAH");
}

}  // namespace
}  // namespace incdb
