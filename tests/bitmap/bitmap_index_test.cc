#include "bitmap/bitmap_index.h"

#include <gtest/gtest.h>

#include "table/generator.h"

namespace incdb {
namespace {

Table MakeUniform(uint64_t rows, uint32_t cardinality, double missing,
                  size_t attrs, uint64_t seed = 42) {
  return GenerateTable(UniformSpec(rows, cardinality, missing, attrs, seed))
      .value();
}

TEST(BitmapIndexTest, RejectsEmptyTable) {
  auto table = Table::Create(Schema({{"x", 5}})).value();
  EXPECT_FALSE(BitmapIndex::Build(table, {}).ok());
}

TEST(BitmapIndexTest, RejectsAlternativeStrategiesWithRangeEncoding) {
  const Table table = MakeUniform(10, 5, 0.2, 1);
  EXPECT_EQ(BitmapIndex::Build(
                table, {BitmapEncoding::kRange, MissingStrategy::kAllOnes})
                .status()
                .code(),
            StatusCode::kNotSupported);
  EXPECT_EQ(BitmapIndex::Build(
                table, {BitmapEncoding::kRange, MissingStrategy::kAllZeros})
                .status()
                .code(),
            StatusCode::kNotSupported);
}

TEST(BitmapIndexTest, RejectsAllOnesOnCardinalityOneWithMissing) {
  // Paper §4.2: with the all-ones alternative it is "impossible to
  // distinguish between missing values and a real value when the
  // cardinality of the attribute is 1".
  auto table = Table::Create(Schema({{"flag", 1}})).value();
  ASSERT_TRUE(table.AppendRow({1}).ok());
  ASSERT_TRUE(table.AppendRow({kMissingValue}).ok());
  EXPECT_EQ(BitmapIndex::Build(
                table, {BitmapEncoding::kEquality, MissingStrategy::kAllOnes})
                .status()
                .code(),
            StatusCode::kNotSupported);
}

TEST(BitmapIndexTest, NamesEncodeConfiguration) {
  const Table table = MakeUniform(10, 5, 0.2, 1);
  EXPECT_EQ(BitmapIndex::Build(table, {}).value().Name(), "BEE-WAH");
  EXPECT_EQ(BitmapIndex::Build(table, {BitmapEncoding::kRange,
                                       MissingStrategy::kExtraBitmap})
                .value()
                .Name(),
            "BRE-WAH");
  EXPECT_EQ(BitmapIndex::Build(table, {BitmapEncoding::kEquality,
                                       MissingStrategy::kAllOnes})
                .value()
                .Name(),
            "BEE-WAH(all-ones)");
}

TEST(BitmapIndexTest, BitmapCountsFollowPaper) {
  // C bitmaps without missing data; +1 with (equality). Range encoding
  // drops the all-ones top bitmap: C-1 without missing data, C with.
  const Table complete = MakeUniform(50, 8, 0.0, 1);
  const Table incomplete = MakeUniform(50, 8, 0.3, 1);
  EXPECT_EQ(BitmapIndex::Build(complete, {}).value().NumBitmaps(0), 8u);
  EXPECT_EQ(BitmapIndex::Build(incomplete, {}).value().NumBitmaps(0), 9u);
  const BitmapIndex::Options range_opts{BitmapEncoding::kRange,
                                        MissingStrategy::kExtraBitmap};
  EXPECT_EQ(BitmapIndex::Build(complete, range_opts).value().NumBitmaps(0),
            7u);
  EXPECT_EQ(BitmapIndex::Build(incomplete, range_opts).value().NumBitmaps(0),
            8u);
}

TEST(BitmapIndexTest, EvaluateIntervalValidatesArguments) {
  const Table table = MakeUniform(20, 5, 0.2, 2);
  const BitmapIndex index = BitmapIndex::Build(table, {}).value();
  EXPECT_EQ(index.EvaluateInterval(9, {1, 1}, MissingSemantics::kMatch)
                .status()
                .code(),
            StatusCode::kOutOfRange);
  EXPECT_FALSE(index.EvaluateInterval(0, {0, 3}, MissingSemantics::kMatch).ok());
  EXPECT_FALSE(index.EvaluateInterval(0, {1, 6}, MissingSemantics::kMatch).ok());
  EXPECT_FALSE(index.EvaluateInterval(0, {4, 2}, MissingSemantics::kMatch).ok());
}

TEST(BitmapIndexTest, AlternativeStrategiesRejectWrongSemantics) {
  const Table table = MakeUniform(20, 5, 0.2, 1);
  const BitmapIndex all_ones =
      BitmapIndex::Build(table,
                         {BitmapEncoding::kEquality, MissingStrategy::kAllOnes})
          .value();
  EXPECT_EQ(all_ones.EvaluateInterval(0, {1, 2}, MissingSemantics::kNoMatch)
                .status()
                .code(),
            StatusCode::kNotSupported);
  const BitmapIndex all_zeros =
      BitmapIndex::Build(
          table, {BitmapEncoding::kEquality, MissingStrategy::kAllZeros})
          .value();
  EXPECT_EQ(all_zeros.EvaluateInterval(0, {1, 2}, MissingSemantics::kMatch)
                .status()
                .code(),
            StatusCode::kNotSupported);
}

TEST(BitmapIndexTest, ExecuteRejectsEmptyQuery) {
  const Table table = MakeUniform(20, 5, 0.2, 1);
  const BitmapIndex index = BitmapIndex::Build(table, {}).value();
  EXPECT_FALSE(index.Execute(RangeQuery{}).ok());
}

TEST(BitmapIndexTest, StatsCountBitvectorAccesses) {
  const Table table = MakeUniform(100, 10, 0.2, 1);
  const BitmapIndex bee = BitmapIndex::Build(table, {}).value();
  QueryStats stats;
  // Narrow interval [2,4] under match semantics: 3 value bitmaps + B_0.
  ASSERT_TRUE(
      bee.EvaluateInterval(0, {2, 4}, MissingSemantics::kMatch, &stats).ok());
  EXPECT_EQ(stats.bitvectors_accessed, 4u);
  stats.Reset();
  // Wide interval [1,9]: complement path reads only the 1 outside bitmap.
  ASSERT_TRUE(
      bee.EvaluateInterval(0, {1, 9}, MissingSemantics::kMatch, &stats).ok());
  EXPECT_EQ(stats.bitvectors_accessed, 1u);
}

TEST(BitmapIndexTest, RangeEncodingUsesAtMostThreeBitvectors) {
  // Paper §4.3: 1-3 bitvector accesses per dimension under match semantics,
  // 1-2 under no-match.
  const Table table = MakeUniform(200, 20, 0.3, 1, 7);
  const BitmapIndex bre =
      BitmapIndex::Build(table,
                         {BitmapEncoding::kRange, MissingStrategy::kExtraBitmap})
          .value();
  for (Value lo = 1; lo <= 20; ++lo) {
    for (Value hi = lo; hi <= 20; ++hi) {
      QueryStats stats;
      ASSERT_TRUE(
          bre.EvaluateInterval(0, {lo, hi}, MissingSemantics::kMatch, &stats)
              .ok());
      EXPECT_LE(stats.bitvectors_accessed, 3u);
      stats.Reset();
      ASSERT_TRUE(
          bre.EvaluateInterval(0, {lo, hi}, MissingSemantics::kNoMatch, &stats)
              .ok());
      EXPECT_LE(stats.bitvectors_accessed, 2u);
    }
  }
}

TEST(BitmapIndexTest, EqualityWorstCaseAccessBound) {
  // Paper §4.2: at most min(AS, 1-AS) * C + 1 bitvectors per interval.
  const Table table = MakeUniform(200, 10, 0.2, 1, 9);
  const BitmapIndex bee = BitmapIndex::Build(table, {}).value();
  for (Value lo = 1; lo <= 10; ++lo) {
    for (Value hi = lo; hi <= 10; ++hi) {
      QueryStats stats;
      ASSERT_TRUE(
          bee.EvaluateInterval(0, {lo, hi}, MissingSemantics::kMatch, &stats)
              .ok());
      const uint64_t width = static_cast<uint64_t>(hi - lo + 1);
      const uint64_t bound = std::min(width, 10 - width) + 1;
      EXPECT_LE(stats.bitvectors_accessed, bound)
          << "[" << lo << "," << hi << "]";
    }
  }
}

TEST(BitmapIndexTest, SizeAccountingConsistent) {
  const Table table = MakeUniform(1000, 10, 0.2, 3, 11);
  const BitmapIndex index = BitmapIndex::Build(table, {}).value();
  uint64_t per_attr = 0;
  for (size_t a = 0; a < 3; ++a) per_attr += index.AttributeSizeInBytes(a);
  EXPECT_EQ(index.SizeInBytes(), per_attr);
  EXPECT_GT(index.VerbatimSizeInBytes(), 0u);
  EXPECT_NEAR(index.CompressionRatio(),
              static_cast<double>(index.SizeInBytes()) /
                  static_cast<double>(index.VerbatimSizeInBytes()),
              1e-12);
}

TEST(BitmapIndexTest, EqualityCompressesBetterThanRangeOnUniformData) {
  // Fig. 4's central size finding: BEE benefits from WAH, BRE does not.
  // (At C = 100 each value bitmap has ~0.9% density, where WAH pays off.)
  const Table table = MakeUniform(20000, 100, 0.1, 2, 13);
  const BitmapIndex bee = BitmapIndex::Build(table, {}).value();
  const BitmapIndex bre =
      BitmapIndex::Build(table,
                         {BitmapEncoding::kRange, MissingStrategy::kExtraBitmap})
          .value();
  EXPECT_LT(bee.CompressionRatio(), 0.5);
  EXPECT_GT(bre.CompressionRatio(), 0.9);
  EXPECT_LT(bee.SizeInBytes(), bre.SizeInBytes());
}

TEST(BitmapIndexTest, MoreMissingDataImprovesEqualityCompression) {
  // Fig. 4(b): raising the missing rate shrinks the equality index (value
  // bitmaps get sparser; the missing bitmap compresses well).
  const BitmapIndex low =
      BitmapIndex::Build(MakeUniform(20000, 50, 0.1, 1, 17), {}).value();
  const BitmapIndex high =
      BitmapIndex::Build(MakeUniform(20000, 50, 0.5, 1, 17), {}).value();
  EXPECT_LT(high.SizeInBytes(), low.SizeInBytes());
}

TEST(BitmapIndexTest, CompleteAttributeHasNoMissingBitmap) {
  const Table table = MakeUniform(100, 5, 0.0, 1);
  const BitmapIndex index = BitmapIndex::Build(table, {}).value();
  EXPECT_EQ(index.missing_bitmap(0), nullptr);
}

TEST(BitmapIndexTest, CardinalityOneRangeEncoding) {
  auto table = Table::Create(Schema({{"flag", 1}})).value();
  ASSERT_TRUE(table.AppendRow({1}).ok());
  ASSERT_TRUE(table.AppendRow({kMissingValue}).ok());
  ASSERT_TRUE(table.AppendRow({1}).ok());
  const BitmapIndex bre =
      BitmapIndex::Build(table,
                         {BitmapEncoding::kRange, MissingStrategy::kExtraBitmap})
          .value();
  RangeQuery q;
  q.terms = {{0, {1, 1}}};
  q.semantics = MissingSemantics::kMatch;
  EXPECT_EQ(bre.Execute(q).value().Count(), 3u);
  q.semantics = MissingSemantics::kNoMatch;
  EXPECT_EQ(bre.Execute(q).value().ToIndices(),
            (std::vector<uint32_t>{0, 2}));
}

}  // namespace
}  // namespace incdb
