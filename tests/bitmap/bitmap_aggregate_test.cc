// Aggregation over matching rows (SQL NULL semantics for the aggregated
// attribute), verified against a scan reference for every encoding — the
// bit-sliced fast path must agree with the generic per-value path.

#include <gtest/gtest.h>

#include "bitmap/bitmap_index.h"
#include "query/query.h"
#include "table/generator.h"

namespace incdb {
namespace {

struct Reference {
  uint64_t count = 0;
  uint64_t missing = 0;
  uint64_t sum = 0;
  Value min = 0;
  Value max = 0;
};

Reference ScanAggregate(const Table& table, const RangeQuery& query,
                        size_t agg_attr) {
  Reference ref;
  for (uint64_t r = 0; r < table.num_rows(); ++r) {
    if (!RowMatches(table, r, query)) continue;
    const Value v = table.Get(r, agg_attr);
    if (IsMissing(v)) {
      ++ref.missing;
      continue;
    }
    if (ref.count == 0 || v < ref.min) ref.min = v;
    if (ref.count == 0 || v > ref.max) ref.max = v;
    ++ref.count;
    ref.sum += static_cast<uint64_t>(v);
  }
  return ref;
}

TEST(AggregateTest, MatchesScanAcrossEncodings) {
  const Table table = GenerateTable(UniformSpec(2000, 9, 0.3, 4, 961)).value();
  for (BitmapEncoding encoding :
       {BitmapEncoding::kEquality, BitmapEncoding::kRange,
        BitmapEncoding::kInterval, BitmapEncoding::kBitSliced}) {
    const BitmapIndex index =
        BitmapIndex::Build(table, {encoding, MissingStrategy::kExtraBitmap})
            .value();
    for (MissingSemantics semantics :
         {MissingSemantics::kMatch, MissingSemantics::kNoMatch}) {
      RangeQuery q;
      q.semantics = semantics;
      q.terms = {{0, {2, 7}}, {2, {1, 5}}};
      const auto aggregate = index.ExecuteAggregate(q, /*agg_attr=*/1);
      ASSERT_TRUE(aggregate.ok()) << BitmapEncodingToString(encoding);
      const Reference ref = ScanAggregate(table, q, 1);
      EXPECT_EQ(aggregate->count, ref.count)
          << BitmapEncodingToString(encoding);
      EXPECT_EQ(aggregate->missing_count, ref.missing);
      EXPECT_EQ(aggregate->sum, ref.sum) << BitmapEncodingToString(encoding);
      EXPECT_EQ(aggregate->min, ref.min);
      EXPECT_EQ(aggregate->max, ref.max);
      if (ref.count > 0) {
        EXPECT_NEAR(aggregate->mean,
                    static_cast<double>(ref.sum) /
                        static_cast<double>(ref.count),
                    1e-12);
      }
    }
  }
}

TEST(AggregateTest, EmptyResultSet) {
  auto table = Table::Create(Schema({{"a", 5}, {"b", 5}})).value();
  ASSERT_TRUE(table.AppendRow({1, 2}).ok());
  ASSERT_TRUE(table.AppendRow({2, kMissingValue}).ok());
  const BitmapIndex index = BitmapIndex::Build(table, {}).value();
  RangeQuery q;
  q.semantics = MissingSemantics::kNoMatch;
  q.terms = {{0, {5, 5}}};  // matches nothing
  const auto aggregate = index.ExecuteAggregate(q, 1);
  ASSERT_TRUE(aggregate.ok());
  EXPECT_EQ(aggregate->count, 0u);
  EXPECT_EQ(aggregate->missing_count, 0u);
  EXPECT_EQ(aggregate->sum, 0u);
  EXPECT_EQ(aggregate->min, 0);
  EXPECT_EQ(aggregate->max, 0);
  EXPECT_DOUBLE_EQ(aggregate->mean, 0.0);
}

TEST(AggregateTest, AllMatchingValuesMissing) {
  auto table = Table::Create(Schema({{"a", 5}, {"b", 5}})).value();
  ASSERT_TRUE(table.AppendRow({1, kMissingValue}).ok());
  ASSERT_TRUE(table.AppendRow({1, kMissingValue}).ok());
  const BitmapIndex index = BitmapIndex::Build(table, {}).value();
  RangeQuery q;
  q.semantics = MissingSemantics::kNoMatch;
  q.terms = {{0, {1, 1}}};
  const auto aggregate = index.ExecuteAggregate(q, 1);
  ASSERT_TRUE(aggregate.ok());
  EXPECT_EQ(aggregate->count, 0u);
  EXPECT_EQ(aggregate->missing_count, 2u);
  EXPECT_EQ(aggregate->sum, 0u);
}

TEST(AggregateTest, HighCardinalitySlicedSum) {
  // Exercise the bit-sliced fast path on a wide domain where the slice
  // decomposition spans 7 bits.
  const Table table = GenerateTable(UniformSpec(3000, 100, 0.2, 2, 963)).value();
  const BitmapIndex bsl =
      BitmapIndex::Build(
          table, {BitmapEncoding::kBitSliced, MissingStrategy::kExtraBitmap})
          .value();
  RangeQuery q;
  q.semantics = MissingSemantics::kMatch;
  q.terms = {{0, {10, 90}}};
  const auto aggregate = bsl.ExecuteAggregate(q, 1);
  ASSERT_TRUE(aggregate.ok());
  const Reference ref = ScanAggregate(table, q, 1);
  EXPECT_EQ(aggregate->sum, ref.sum);
  EXPECT_EQ(aggregate->count, ref.count);
  EXPECT_EQ(aggregate->min, ref.min);
  EXPECT_EQ(aggregate->max, ref.max);
}

TEST(AggregateTest, RejectsBadAttribute) {
  const Table table = GenerateTable(UniformSpec(100, 5, 0.1, 2, 965)).value();
  const BitmapIndex index = BitmapIndex::Build(table, {}).value();
  RangeQuery q;
  q.terms = {{0, {1, 3}}};
  EXPECT_EQ(index.ExecuteAggregate(q, 9).status().code(),
            StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace incdb
