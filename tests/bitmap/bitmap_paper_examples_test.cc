// Reproduces the paper's worked encoding examples bit-for-bit:
// Tables 1/2 (equality encoding with missing data) and Tables 3/4 (range
// encoding), plus the interval-evaluation rules of Figs. 2 and 3 on that
// same 10-record attribute.

#include <gtest/gtest.h>

#include "bitmap/bitmap_index.h"
#include "table/table.h"

namespace incdb {
namespace {

// The example attribute from paper §4: cardinality 5, 10 records with
// values 5, 2, 3, missing, 4, 5, 1, 3, missing, 2.
Table PaperExampleTable() {
  auto table = Table::Create(Schema({{"A1", 5}})).value();
  for (Value v : {5, 2, 3, kMissingValue, 4, 5, 1, 3, kMissingValue, 2}) {
    EXPECT_TRUE(table.AppendRow({v}).ok());
  }
  return table;
}

BitmapIndex BuildIndex(const Table& table, BitmapEncoding encoding) {
  auto index =
      BitmapIndex::Build(table, {encoding, MissingStrategy::kExtraBitmap});
  EXPECT_TRUE(index.ok());
  return std::move(index).value();
}

std::string Bits(const WahBitVector& wah) {
  return wah.Decompress().ToString();
}

// Paper Table 2: the equality-encoded bitmap vectors.
TEST(PaperExamplesTest, Table2EqualityBitmaps) {
  const Table table = PaperExampleTable();
  const BitmapIndex index = BuildIndex(table, BitmapEncoding::kEquality);
  ASSERT_NE(index.missing_bitmap(0), nullptr);
  EXPECT_EQ(Bits(*index.missing_bitmap(0)), "0001000010");  // B_{1,0}
  EXPECT_EQ(Bits(index.value_bitmap(0, 1)), "0000001000");  // B_{1,1}
  EXPECT_EQ(Bits(index.value_bitmap(0, 2)), "0100000001");  // B_{1,2}
  EXPECT_EQ(Bits(index.value_bitmap(0, 3)), "0010000100");  // B_{1,3}
  EXPECT_EQ(Bits(index.value_bitmap(0, 4)), "0000100000");  // B_{1,4}
  EXPECT_EQ(Bits(index.value_bitmap(0, 5)), "1000010000");  // B_{1,5}
  EXPECT_EQ(index.NumBitmaps(0), 6u);  // C + 1 with missing data
}

// Paper Table 4: the range-encoded bitmap vectors (B_{1,5} dropped).
TEST(PaperExamplesTest, Table4RangeBitmaps) {
  const Table table = PaperExampleTable();
  const BitmapIndex index = BuildIndex(table, BitmapEncoding::kRange);
  ASSERT_NE(index.missing_bitmap(0), nullptr);
  EXPECT_EQ(Bits(*index.missing_bitmap(0)), "0001000010");  // B_{1,0}
  EXPECT_EQ(Bits(index.value_bitmap(0, 1)), "0001001010");  // B_{1,1}
  EXPECT_EQ(Bits(index.value_bitmap(0, 2)), "0101001011");  // B_{1,2}
  EXPECT_EQ(Bits(index.value_bitmap(0, 3)), "0111001111");  // B_{1,3}
  EXPECT_EQ(Bits(index.value_bitmap(0, 4)), "0111101111");  // B_{1,4}
  EXPECT_EQ(index.NumBitmaps(0), 5u);  // C with missing data (top dropped)
}

// BEE row-sum invariant (DESIGN.md #3): every record is 1 in exactly one
// bitmap of an equality-encoded attribute.
TEST(PaperExamplesTest, EqualityRowSumInvariant) {
  const Table table = PaperExampleTable();
  const BitmapIndex index = BuildIndex(table, BitmapEncoding::kEquality);
  for (uint64_t r = 0; r < table.num_rows(); ++r) {
    int ones = index.missing_bitmap(0)->Get(r) ? 1 : 0;
    for (size_t j = 1; j <= 5; ++j) {
      if (index.value_bitmap(0, j).Get(r)) ++ones;
    }
    EXPECT_EQ(ones, 1) << "record " << r;
  }
}

// BRE monotonicity invariant (DESIGN.md #4).
TEST(PaperExamplesTest, RangeMonotonicityInvariant) {
  const Table table = PaperExampleTable();
  const BitmapIndex index = BuildIndex(table, BitmapEncoding::kRange);
  for (size_t j = 1; j < 4; ++j) {
    const BitVector a = index.value_bitmap(0, j).Decompress();
    const BitVector b = index.value_bitmap(0, j + 1).Decompress();
    EXPECT_TRUE(Or(a, b) == b) << "B_" << j << " not a subset of B_" << j + 1;
  }
  // Missing rows are 1 in every range bitmap.
  for (size_t j = 1; j <= 4; ++j) {
    EXPECT_TRUE(index.value_bitmap(0, j).Get(3));
    EXPECT_TRUE(index.value_bitmap(0, j).Get(8));
  }
}

struct IntervalCase {
  Value lo;
  Value hi;
  MissingSemantics semantics;
  std::string expected;  // bit string over the 10 example records
};

class PaperIntervalTest
    : public ::testing::TestWithParam<std::tuple<BitmapEncoding, IntervalCase>> {
};

// Both encodings must produce identical (correct) answers for every
// interval shape the paper's Figs. 2/3 enumerate. Expected strings computed
// by hand from the example data 5,2,3,?,4,5,1,3,?,2.
TEST_P(PaperIntervalTest, EvaluatesPaperFormulaCorrectly) {
  const auto& [encoding, c] = GetParam();
  const Table table = PaperExampleTable();
  const BitmapIndex index = BuildIndex(table, encoding);
  const auto result =
      index.EvaluateInterval(0, {c.lo, c.hi}, c.semantics, nullptr);
  ASSERT_TRUE(result.ok()) << result.status().ToString();
  EXPECT_EQ(Bits(result.value()), c.expected)
      << "interval [" << c.lo << "," << c.hi << "] semantics "
      << MissingSemanticsToString(c.semantics);
}

constexpr MissingSemantics kMatch = MissingSemantics::kMatch;
constexpr MissingSemantics kNoMatch = MissingSemantics::kNoMatch;

INSTANTIATE_TEST_SUITE_P(
    BothEncodings, PaperIntervalTest,
    ::testing::Combine(
        ::testing::Values(BitmapEncoding::kEquality, BitmapEncoding::kRange,
                          BitmapEncoding::kInterval,
                          BitmapEncoding::kBitSliced),
        ::testing::Values(
            // Fig. 3 row 1: point query at the domain minimum.
            IntervalCase{1, 1, kMatch, "0001001010"},
            IntervalCase{1, 1, kNoMatch, "0000001000"},
            // Fig. 3 row 2: interior point query.
            IntervalCase{3, 3, kMatch, "0011000110"},
            IntervalCase{3, 3, kNoMatch, "0010000100"},
            // Fig. 3 row 3: point query at the domain maximum.
            IntervalCase{5, 5, kMatch, "1001010010"},
            IntervalCase{5, 5, kNoMatch, "1000010000"},
            // Fig. 3 row 4: range anchored at the minimum.
            IntervalCase{1, 3, kMatch, "0111001111"},
            IntervalCase{1, 3, kNoMatch, "0110001101"},
            // Fig. 3 row 5 (via v2 = C): range anchored at the maximum.
            IntervalCase{4, 5, kMatch, "1001110010"},
            IntervalCase{4, 5, kNoMatch, "1000110000"},
            // Fig. 3 row 6: interior range.
            IntervalCase{2, 4, kMatch, "0111100111"},
            IntervalCase{2, 4, kNoMatch, "0110100101"},
            // Whole domain.
            IntervalCase{1, 5, kMatch, "1111111111"},
            IntervalCase{1, 5, kNoMatch, "1110111101"},
            // The paper's example query "value is 4 or 5" (§4.5).
            IntervalCase{4, 5, kMatch, "1001110010"})));

// Query execution over the worked example: the paper's §4.5 example query
// "return all records where value is 4 or 5" under both semantics.
TEST(PaperExamplesTest, Section45ExampleQuery) {
  const Table table = PaperExampleTable();
  for (BitmapEncoding encoding :
       {BitmapEncoding::kEquality, BitmapEncoding::kRange,
        BitmapEncoding::kInterval, BitmapEncoding::kBitSliced}) {
    const BitmapIndex index = BuildIndex(table, encoding);
    RangeQuery q;
    q.terms = {{0, {4, 5}}};
    q.semantics = kMatch;
    // Records 1, 5, 6 (values 5, 4, 5) and the missing records 4, 9.
    EXPECT_EQ(index.Execute(q).value().ToIndices(),
              (std::vector<uint32_t>{0, 3, 4, 5, 8}));
    q.semantics = kNoMatch;
    EXPECT_EQ(index.Execute(q).value().ToIndices(),
              (std::vector<uint32_t>{0, 4, 5}));
  }
}

}  // namespace
}  // namespace incdb
