// The compressed COUNT fast path must agree with materialize-then-count
// for every encoding and semantics.

#include <gtest/gtest.h>

#include "bitmap/bitmap_index.h"
#include "core/index_factory.h"
#include "query/workload.h"
#include "table/generator.h"

namespace incdb {
namespace {

TEST(BitmapCountTest, MatchesMaterializedCountAcrossEncodings) {
  const Table table = GenerateTable(UniformSpec(1500, 11, 0.3, 5, 901)).value();
  for (BitmapEncoding encoding :
       {BitmapEncoding::kEquality, BitmapEncoding::kRange,
        BitmapEncoding::kInterval, BitmapEncoding::kBitSliced}) {
    const BitmapIndex index =
        BitmapIndex::Build(table, {encoding, MissingStrategy::kExtraBitmap})
            .value();
    WorkloadParams params;
    params.num_queries = 25;
    params.dims = 3;
    params.global_selectivity = 0.05;
    for (MissingSemantics semantics :
         {MissingSemantics::kMatch, MissingSemantics::kNoMatch}) {
      params.semantics = semantics;
      params.seed = 17;
      const auto queries = GenerateWorkload(table, params);
      ASSERT_TRUE(queries.ok());
      for (const RangeQuery& q : queries.value()) {
        const auto fast = index.ExecuteCount(q);
        const auto slow = index.Execute(q);
        ASSERT_TRUE(fast.ok());
        ASSERT_TRUE(slow.ok());
        EXPECT_EQ(fast.value(), slow.value().Count())
            << BitmapEncodingToString(encoding);
      }
    }
  }
}

TEST(BitmapCountTest, DefaultInterfacePathAlsoWorks) {
  const Table table = GenerateTable(UniformSpec(500, 7, 0.2, 3, 903)).value();
  // VA-file uses the IncompleteIndex default (execute + count).
  const auto va = CreateIndex(IndexKind::kVaFile, table).value();
  const auto scan = CreateIndex(IndexKind::kSequentialScan, table).value();
  RangeQuery q;
  q.terms = {{0, {2, 5}}, {1, {1, 4}}};
  q.semantics = MissingSemantics::kMatch;
  EXPECT_EQ(va->ExecuteCount(q).value(), scan->ExecuteCount(q).value());
}

TEST(BitmapCountTest, PropagatesErrors) {
  const Table table = GenerateTable(UniformSpec(100, 5, 0.1, 2, 905)).value();
  const BitmapIndex index = BitmapIndex::Build(table, {}).value();
  RangeQuery q;
  q.terms = {{9, {1, 1}}};
  EXPECT_FALSE(index.ExecuteCount(q).ok());
  EXPECT_FALSE(index.ExecuteCount(RangeQuery{}).ok());
}

}  // namespace
}  // namespace incdb
