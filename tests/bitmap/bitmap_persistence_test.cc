// Save/Load and incremental AppendRow for the bitmap index. The strongest
// property: an incrementally-built index is bit-identical to a batch-built
// one, and a loaded index answers every query exactly like the original.

#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "bitmap/bitmap_index.h"
#include "core/executor.h"
#include "query/workload.h"
#include "table/generator.h"

namespace incdb {
namespace {

class BitmapPersistenceTest : public ::testing::Test {
 protected:
  void TearDown() override {
    if (!path_.empty()) std::remove(path_.c_str());
  }
  std::string TempPath(const std::string& name) {
    path_ = ::testing::TempDir() + "/" + name;
    return path_;
  }
  std::string path_;
};

TEST_F(BitmapPersistenceTest, SaveLoadRoundTripBothEncodings) {
  const Table table = GenerateTable(UniformSpec(1500, 12, 0.25, 4, 201)).value();
  for (BitmapEncoding encoding :
       {BitmapEncoding::kEquality, BitmapEncoding::kRange,
        BitmapEncoding::kInterval, BitmapEncoding::kBitSliced}) {
    const BitmapIndex original =
        BitmapIndex::Build(table, {encoding, MissingStrategy::kExtraBitmap})
            .value();
    const std::string path = TempPath("bitmap.idx");
    ASSERT_TRUE(original.Save(path).ok());
    const auto loaded = BitmapIndex::Load(path);
    ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
    EXPECT_EQ(loaded->Name(), original.Name());
    EXPECT_EQ(loaded->SizeInBytes(), original.SizeInBytes());
    EXPECT_EQ(loaded->num_rows(), original.num_rows());

    WorkloadParams params;
    params.num_queries = 20;
    params.dims = 3;
    params.global_selectivity = 0.05;
    const auto queries = GenerateWorkload(table, params);
    ASSERT_TRUE(queries.ok());
    EXPECT_TRUE(VerifyAgainstOracle(loaded.value(), table, queries.value()).ok());
  }
}

TEST_F(BitmapPersistenceTest, OnDiskSizeTracksSizeInBytes) {
  const Table table = GenerateTable(UniformSpec(5000, 30, 0.2, 3, 203)).value();
  const BitmapIndex index = BitmapIndex::Build(table, {}).value();
  const std::string path = TempPath("size.idx");
  ASSERT_TRUE(index.Save(path).ok());
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  const uint64_t file_size = static_cast<uint64_t>(in.tellg());
  // File = payload + per-bitmap headers; the paper's metric is the file, so
  // overhead must stay small.
  EXPECT_GE(file_size, index.SizeInBytes());
  EXPECT_LT(file_size, index.SizeInBytes() + index.SizeInBytes() / 2 + 4096);
}

TEST_F(BitmapPersistenceTest, LoadRejectsGarbage) {
  const std::string path = TempPath("garbage.idx");
  std::ofstream(path, std::ios::binary) << "this is not an index";
  EXPECT_FALSE(BitmapIndex::Load(path).ok());
  EXPECT_FALSE(BitmapIndex::Load("/nonexistent/nope.idx").ok());
}

TEST_F(BitmapPersistenceTest, LoadRejectsTruncatedFile) {
  const Table table = GenerateTable(UniformSpec(1000, 10, 0.2, 2, 205)).value();
  const BitmapIndex index = BitmapIndex::Build(table, {}).value();
  const std::string path = TempPath("trunc.idx");
  ASSERT_TRUE(index.Save(path).ok());
  std::ifstream in(path, std::ios::binary);
  std::string bytes((std::istreambuf_iterator<char>(in)),
                    std::istreambuf_iterator<char>());
  bytes.resize(bytes.size() * 2 / 3);
  std::ofstream(path, std::ios::binary) << bytes;
  EXPECT_FALSE(BitmapIndex::Load(path).ok());
}

struct AppendCase {
  BitmapEncoding encoding;
  MissingStrategy strategy;
};

class BitmapAppendTest : public ::testing::TestWithParam<AppendCase> {};

TEST_P(BitmapAppendTest, IncrementalEqualsBatch) {
  const auto& [encoding, strategy] = GetParam();
  const Table table = GenerateTable(UniformSpec(800, 9, 0.3, 4, 207)).value();

  // Build on the first half, append the second half row by row.
  auto half = Table::Create(table.schema()).value();
  std::vector<Value> row(table.num_attributes());
  for (uint64_t r = 0; r < 400; ++r) {
    for (size_t a = 0; a < row.size(); ++a) row[a] = table.Get(r, a);
    ASSERT_TRUE(half.AppendRow(row).ok());
  }
  BitmapIndex incremental =
      BitmapIndex::Build(half, {encoding, strategy}).value();
  for (uint64_t r = 400; r < table.num_rows(); ++r) {
    for (size_t a = 0; a < row.size(); ++a) row[a] = table.Get(r, a);
    ASSERT_TRUE(incremental.AppendRow(row).ok());
  }

  const BitmapIndex batch =
      BitmapIndex::Build(table, {encoding, strategy}).value();
  ASSERT_EQ(incremental.num_rows(), batch.num_rows());
  for (size_t a = 0; a < table.num_attributes(); ++a) {
    ASSERT_EQ(incremental.NumBitmaps(a), batch.NumBitmaps(a));
    const size_t num_values = incremental.NumBitmaps(a) -
                              (incremental.missing_bitmap(a) != nullptr);
    for (size_t j = 1; j <= num_values; ++j) {
      EXPECT_TRUE(incremental.value_bitmap(a, j) == batch.value_bitmap(a, j))
          << "attr " << a << " bitmap " << j;
    }
    if (batch.missing_bitmap(a) != nullptr) {
      ASSERT_NE(incremental.missing_bitmap(a), nullptr);
      EXPECT_TRUE(*incremental.missing_bitmap(a) == *batch.missing_bitmap(a));
    }
  }
}

INSTANTIATE_TEST_SUITE_P(
    Strategies, BitmapAppendTest,
    ::testing::Values(
        AppendCase{BitmapEncoding::kEquality, MissingStrategy::kExtraBitmap},
        AppendCase{BitmapEncoding::kRange, MissingStrategy::kExtraBitmap},
        AppendCase{BitmapEncoding::kInterval, MissingStrategy::kExtraBitmap},
        AppendCase{BitmapEncoding::kBitSliced, MissingStrategy::kExtraBitmap},
        AppendCase{BitmapEncoding::kEquality, MissingStrategy::kAllOnes},
        AppendCase{BitmapEncoding::kEquality, MissingStrategy::kAllZeros}));

TEST(BitmapAppendValidationTest, RejectsBadRows) {
  const Table table = GenerateTable(UniformSpec(100, 5, 0.1, 2, 209)).value();
  BitmapIndex index = BitmapIndex::Build(table, {}).value();
  EXPECT_FALSE(index.AppendRow({1}).ok());           // wrong arity
  EXPECT_FALSE(index.AppendRow({1, 9}).ok());        // out of domain
  EXPECT_EQ(index.num_rows(), 100u);                 // unchanged
  EXPECT_TRUE(index.AppendRow({kMissingValue, 3}).ok());
  EXPECT_EQ(index.num_rows(), 101u);
}

TEST(BitmapAppendValidationTest, FirstMissingValueCreatesMissingBitmap) {
  const Table table = GenerateTable(UniformSpec(50, 5, 0.0, 1, 211)).value();
  BitmapIndex index = BitmapIndex::Build(table, {}).value();
  EXPECT_EQ(index.missing_bitmap(0), nullptr);
  ASSERT_TRUE(index.AppendRow({kMissingValue}).ok());
  ASSERT_NE(index.missing_bitmap(0), nullptr);
  EXPECT_EQ(index.missing_bitmap(0)->size(), 51u);
  EXPECT_EQ(index.missing_bitmap(0)->Count(), 1u);
  EXPECT_TRUE(index.missing_bitmap(0)->Get(50));
}

TEST(BitmapAppendValidationTest, AppendedIndexAnswersQueries) {
  const Table full = GenerateTable(UniformSpec(500, 8, 0.25, 3, 213)).value();
  auto growing = Table::Create(full.schema()).value();
  BitmapIndex index = BitmapIndex::Build(full, {}).value();
  // Rebuild "growing" to match full, then extend both with appends.
  std::vector<Value> row(3);
  for (uint64_t r = 0; r < full.num_rows(); ++r) {
    for (size_t a = 0; a < 3; ++a) row[a] = full.Get(r, a);
    ASSERT_TRUE(growing.AppendRow(row).ok());
  }
  for (int i = 0; i < 100; ++i) {
    row = {static_cast<Value>(1 + i % 8), kMissingValue,
           static_cast<Value>(1 + (i * 3) % 8)};
    ASSERT_TRUE(growing.AppendRow(row).ok());
    ASSERT_TRUE(index.AppendRow(row).ok());
  }
  WorkloadParams params;
  params.num_queries = 15;
  params.dims = 2;
  params.global_selectivity = 0.05;
  const auto queries = GenerateWorkload(growing, params);
  ASSERT_TRUE(queries.ok());
  EXPECT_TRUE(VerifyAgainstOracle(index, growing, queries.value()).ok());
}

}  // namespace
}  // namespace incdb
