// Bit-sliced encoding (BSL) specifics: slice layout on the paper's worked
// example, the ceil(lg(C+1)) storage bound, and the O(lg C) access bound.

#include <gtest/gtest.h>

#include "bitmap/bitmap_index.h"
#include "core/executor.h"
#include "table/generator.h"

namespace incdb {
namespace {

Table PaperExampleTable() {
  auto table = Table::Create(Schema({{"A1", 5}})).value();
  for (Value v : {5, 2, 3, kMissingValue, 4, 5, 1, 3, kMissingValue, 2}) {
    EXPECT_TRUE(table.AppendRow({v}).ok());
  }
  return table;
}

std::string Bits(const WahBitVector& wah) {
  return wah.Decompress().ToString();
}

BitmapIndex BuildBsl(const Table& table) {
  return BitmapIndex::Build(
             table, {BitmapEncoding::kBitSliced, MissingStrategy::kExtraBitmap})
      .value();
}

// C = 5 → b = 3 slices. Codes: 5,2,3,0,4,5,1,3,0,2.
TEST(BitSlicedTest, SliceLayoutOnPaperExample) {
  const Table table = PaperExampleTable();
  const BitmapIndex index = BuildBsl(table);
  EXPECT_EQ(index.NumBitmaps(0), 4u);  // 3 slices + missing bitmap
  ASSERT_NE(index.missing_bitmap(0), nullptr);
  EXPECT_EQ(Bits(*index.missing_bitmap(0)), "0001000010");
  EXPECT_EQ(Bits(index.value_bitmap(0, 1)), "1010011100");  // S_0 (bit 0)
  EXPECT_EQ(Bits(index.value_bitmap(0, 2)), "0110000101");  // S_1 (bit 1)
  EXPECT_EQ(Bits(index.value_bitmap(0, 3)), "1000110000");  // S_2 (bit 2)
}

TEST(BitSlicedTest, StoresLogarithmicallyManyBitmaps) {
  for (uint32_t cardinality : {1u, 2u, 3u, 7u, 8u, 100u, 165u}) {
    const Table table =
        GenerateTable(UniformSpec(100, cardinality, 0.2, 1, 801)).value();
    const BitmapIndex index = BuildBsl(table);
    int expected_slices = 0;
    while ((1u << expected_slices) < cardinality + 1) ++expected_slices;
    EXPECT_EQ(index.NumBitmaps(0),
              static_cast<size_t>(expected_slices) + 1)
        << "C=" << cardinality;
  }
}

TEST(BitSlicedTest, SmallestBitmapIndexAtHighCardinality) {
  const Table table = GenerateTable(UniformSpec(20000, 100, 0.1, 2, 803)).value();
  const uint64_t bsl = BuildBsl(table).SizeInBytes();
  const uint64_t bee = BitmapIndex::Build(table, {}).value().SizeInBytes();
  const uint64_t bie =
      BitmapIndex::Build(
          table, {BitmapEncoding::kInterval, MissingStrategy::kExtraBitmap})
          .value()
          .SizeInBytes();
  EXPECT_LT(bsl, bee);
  EXPECT_LT(bsl, bie);
}

TEST(BitSlicedTest, AccessBoundIsLogarithmic) {
  const Table table = GenerateTable(UniformSpec(300, 100, 0.25, 1, 805)).value();
  const BitmapIndex index = BuildBsl(table);
  const uint64_t slices = 7;  // ceil(lg 101)
  for (Value lo : {1, 2, 37, 50, 99, 100}) {
    for (Value hi : {std::min<Value>(lo + 9, 100), Value{100}}) {
      if (hi < lo) continue;
      QueryStats stats;
      ASSERT_TRUE(
          index.EvaluateInterval(0, {lo, hi}, MissingSemantics::kMatch, &stats)
              .ok());
      // At most two LE circuits (b slices each) plus the missing bitmap
      // twice (subtraction + re-OR).
      EXPECT_LE(stats.bitvectors_accessed, 2 * slices + 2)
          << "[" << lo << "," << hi << "]";
    }
  }
}

TEST(BitSlicedTest, ExhaustiveSmallDomains) {
  for (uint32_t cardinality : {1u, 2u, 3u, 4u, 7u, 8u, 9u}) {
    const Table table =
        GenerateTable(UniformSpec(400, cardinality, 0.3, 1, 807 + cardinality))
            .value();
    const BitmapIndex index = BuildBsl(table);
    std::vector<RangeQuery> queries;
    for (Value lo = 1; lo <= static_cast<Value>(cardinality); ++lo) {
      for (Value hi = lo; hi <= static_cast<Value>(cardinality); ++hi) {
        for (MissingSemantics semantics :
             {MissingSemantics::kMatch, MissingSemantics::kNoMatch}) {
          RangeQuery q;
          q.terms = {{0, {lo, hi}}};
          q.semantics = semantics;
          queries.push_back(q);
        }
      }
    }
    EXPECT_TRUE(VerifyAgainstOracle(index, table, queries).ok())
        << "cardinality " << cardinality;
  }
}

TEST(BitSlicedTest, RejectsAlternativeMissingStrategies) {
  const Table table = GenerateTable(UniformSpec(50, 5, 0.2, 1, 821)).value();
  EXPECT_EQ(BitmapIndex::Build(
                table, {BitmapEncoding::kBitSliced, MissingStrategy::kAllOnes})
                .status()
                .code(),
            StatusCode::kNotSupported);
}

TEST(BitSlicedTest, NameIsBsl) {
  const Table table = GenerateTable(UniformSpec(10, 5, 0.0, 1, 823)).value();
  EXPECT_EQ(BuildBsl(table).Name(), "BSL-WAH");
}

}  // namespace
}  // namespace incdb
