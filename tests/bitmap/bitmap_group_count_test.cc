// GROUP BY COUNT over the compressed index, verified against a scan-side
// reference for every encoding and semantics.

#include <gtest/gtest.h>

#include "bitmap/bitmap_index.h"
#include "query/seq_scan.h"
#include "table/generator.h"

namespace incdb {
namespace {

std::vector<uint64_t> ReferenceGroupCount(const Table& table,
                                          const RangeQuery& query,
                                          size_t group_attr) {
  std::vector<uint64_t> counts(
      table.schema().attribute(group_attr).cardinality + 1, 0);
  for (uint64_t r = 0; r < table.num_rows(); ++r) {
    if (!RowMatches(table, r, query)) continue;
    ++counts[static_cast<size_t>(table.Get(r, group_attr))];
  }
  return counts;
}

TEST(GroupCountTest, MatchesScanReferenceAcrossEncodings) {
  const Table table = GenerateTable(UniformSpec(2000, 8, 0.25, 4, 941)).value();
  for (BitmapEncoding encoding :
       {BitmapEncoding::kEquality, BitmapEncoding::kRange,
        BitmapEncoding::kInterval, BitmapEncoding::kBitSliced}) {
    const BitmapIndex index =
        BitmapIndex::Build(table, {encoding, MissingStrategy::kExtraBitmap})
            .value();
    for (MissingSemantics semantics :
         {MissingSemantics::kMatch, MissingSemantics::kNoMatch}) {
      RangeQuery q;
      q.semantics = semantics;
      q.terms = {{0, {2, 6}}, {2, {1, 4}}};
      const auto counts = index.ExecuteGroupCount(q, /*group_attr=*/1);
      ASSERT_TRUE(counts.ok()) << BitmapEncodingToString(encoding);
      EXPECT_EQ(counts.value(), ReferenceGroupCount(table, q, 1))
          << BitmapEncodingToString(encoding) << " "
          << MissingSemanticsToString(semantics);
    }
  }
}

TEST(GroupCountTest, GroupByAConstrainedAttribute) {
  // Grouping by an attribute that appears in the search key is legal; only
  // in-range groups can be non-zero.
  const Table table = GenerateTable(UniformSpec(1000, 6, 0.2, 2, 943)).value();
  const BitmapIndex index = BitmapIndex::Build(table, {}).value();
  RangeQuery q;
  q.semantics = MissingSemantics::kNoMatch;
  q.terms = {{0, {2, 4}}};
  const auto counts = index.ExecuteGroupCount(q, 0);
  ASSERT_TRUE(counts.ok());
  EXPECT_EQ(counts.value()[0], 0u);  // no missing under no-match
  EXPECT_EQ(counts.value()[1], 0u);
  EXPECT_EQ(counts.value()[5], 0u);
  EXPECT_GT(counts.value()[3], 0u);
  EXPECT_EQ(counts.value(), ReferenceGroupCount(table, q, 0));
}

TEST(GroupCountTest, MissingBucketUnderMatchSemantics) {
  auto table = Table::Create(Schema({{"a", 3}, {"g", 2}})).value();
  ASSERT_TRUE(table.AppendRow({1, 1}).ok());
  ASSERT_TRUE(table.AppendRow({1, kMissingValue}).ok());
  ASSERT_TRUE(table.AppendRow({kMissingValue, 2}).ok());
  ASSERT_TRUE(table.AppendRow({3, kMissingValue}).ok());
  const BitmapIndex index = BitmapIndex::Build(table, {}).value();
  RangeQuery q;
  q.semantics = MissingSemantics::kMatch;
  q.terms = {{0, {1, 1}}};  // matches rows 0, 1, 2 (row 2 via missing a)
  const auto counts = index.ExecuteGroupCount(q, 1);
  ASSERT_TRUE(counts.ok());
  EXPECT_EQ(counts.value(), (std::vector<uint64_t>{1, 1, 1}));
}

TEST(GroupCountTest, SumsToExecuteCount) {
  const Table table = GenerateTable(UniformSpec(3000, 10, 0.3, 3, 945)).value();
  const BitmapIndex index =
      BitmapIndex::Build(table,
                         {BitmapEncoding::kRange, MissingStrategy::kExtraBitmap})
          .value();
  RangeQuery q;
  q.semantics = MissingSemantics::kMatch;
  q.terms = {{0, {3, 8}}};
  const auto counts = index.ExecuteGroupCount(q, 2);
  const auto total = index.ExecuteCount(q);
  ASSERT_TRUE(counts.ok());
  ASSERT_TRUE(total.ok());
  uint64_t sum = 0;
  for (uint64_t c : counts.value()) sum += c;
  EXPECT_EQ(sum, total.value());
}

TEST(GroupCountTest, RejectsBadGroupAttribute) {
  const Table table = GenerateTable(UniformSpec(100, 5, 0.1, 2, 947)).value();
  const BitmapIndex index = BitmapIndex::Build(table, {}).value();
  RangeQuery q;
  q.terms = {{0, {1, 3}}};
  EXPECT_EQ(index.ExecuteGroupCount(q, 9).status().code(),
            StatusCode::kOutOfRange);
}

}  // namespace
}  // namespace incdb
