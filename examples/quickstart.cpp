// Quickstart: build an incomplete table, index it three ways, and run the
// same query under both missing-data semantics.
//
//   cmake --build build && ./build/examples/quickstart

#include <cstdio>

#include "core/executor.h"
#include "core/index_factory.h"
#include "table/table.h"

using incdb::CreateIndex;
using incdb::IndexKind;
using incdb::MissingSemantics;
using incdb::RangeQuery;
using incdb::Schema;
using incdb::Table;
using incdb::kMissingValue;

int main() {
  // A tiny product catalog: rating 1..5, price band 1..10. Some products
  // have not been rated yet, some have no price yet.
  auto table_result = Table::Create(Schema({{"rating", 5}, {"price", 10}}));
  if (!table_result.ok()) {
    std::fprintf(stderr, "%s\n", table_result.status().ToString().c_str());
    return 1;
  }
  Table table = std::move(table_result).value();

  struct Row {
    const char* name;
    incdb::Value rating;
    incdb::Value price;
  };
  const Row rows[] = {
      {"anvil", 5, 7},        {"binocular", 2, 3},
      {"compass", 3, kMissingValue}, {"dynamo", kMissingValue, 9},
      {"engine", 4, 10},      {"flask", 5, 1},
      {"gasket", kMissingValue, kMissingValue}, {"hammer", 3, 4},
  };
  for (const Row& row : rows) {
    const incdb::Status status = table.AppendRow({row.rating, row.price});
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
  }
  std::printf("table: %s\n\n", table.Summary().c_str());

  // The query: rating in [3,5] AND price in [1,7].
  RangeQuery query;
  query.terms = {{0, {3, 5}}, {1, {1, 7}}};

  for (IndexKind kind : {IndexKind::kBitmapEquality, IndexKind::kBitmapRange,
                         IndexKind::kVaFile}) {
    auto index_result = CreateIndex(kind, table);
    if (!index_result.ok()) {
      std::fprintf(stderr, "%s\n", index_result.status().ToString().c_str());
      return 1;
    }
    const auto& index = *index_result.value();
    std::printf("%s (index size: %llu bytes)\n", index.Name().c_str(),
                static_cast<unsigned long long>(index.SizeInBytes()));
    for (MissingSemantics semantics :
         {MissingSemantics::kMatch, MissingSemantics::kNoMatch}) {
      query.semantics = semantics;
      const auto result = index.Execute(query);
      if (!result.ok()) {
        std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
        return 1;
      }
      std::printf("  missing-%s-a-match:", semantics == MissingSemantics::kMatch
                                               ? "is"
                                               : "not");
      result.value().ForEachSetBit([&](uint64_t r) {
        std::printf(" %s", rows[r].name);
      });
      std::printf("\n");
    }
  }

  std::printf(
      "\nNote how 'compass' (no price) and 'gasket' (nothing recorded)\n"
      "appear only when missing data counts as a match.\n");
  return 0;
}
