// Quickstart: build an incomplete table, index it three ways, run the
// same query under both missing-data semantics — then do it the easy way
// through the Database facade's unified Run API.
//
//   cmake --build build && ./build/examples/quickstart

#include <cstdio>

#include "core/database.h"
#include "core/executor.h"
#include "core/index_factory.h"
#include "table/table.h"

using incdb::CreateIndex;
using incdb::Database;
using incdb::IndexKind;
using incdb::MissingSemantics;
using incdb::QueryRequest;
using incdb::RangeQuery;
using incdb::Schema;
using incdb::Table;
using incdb::kMissingValue;

int main() {
  // A tiny product catalog: rating 1..5, price band 1..10. Some products
  // have not been rated yet, some have no price yet.
  auto table_result = Table::Create(Schema({{"rating", 5}, {"price", 10}}));
  if (!table_result.ok()) {
    std::fprintf(stderr, "%s\n", table_result.status().ToString().c_str());
    return 1;
  }
  Table table = std::move(table_result).value();

  struct Row {
    const char* name;
    incdb::Value rating;
    incdb::Value price;
  };
  const Row rows[] = {
      {"anvil", 5, 7},        {"binocular", 2, 3},
      {"compass", 3, kMissingValue}, {"dynamo", kMissingValue, 9},
      {"engine", 4, 10},      {"flask", 5, 1},
      {"gasket", kMissingValue, kMissingValue}, {"hammer", 3, 4},
  };
  for (const Row& row : rows) {
    const incdb::Status status = table.AppendRow({row.rating, row.price});
    if (!status.ok()) {
      std::fprintf(stderr, "%s\n", status.ToString().c_str());
      return 1;
    }
  }
  std::printf("table: %s\n\n", table.Summary().c_str());

  // The query: rating in [3,5] AND price in [1,7].
  RangeQuery query;
  query.terms = {{0, {3, 5}}, {1, {1, 7}}};

  for (IndexKind kind : {IndexKind::kBitmapEquality, IndexKind::kBitmapRange,
                         IndexKind::kVaFile}) {
    auto index_result = CreateIndex(kind, table);
    if (!index_result.ok()) {
      std::fprintf(stderr, "%s\n", index_result.status().ToString().c_str());
      return 1;
    }
    const auto& index = *index_result.value();
    std::printf("%s (index size: %llu bytes)\n", index.Name().c_str(),
                static_cast<unsigned long long>(index.SizeInBytes()));
    for (MissingSemantics semantics :
         {MissingSemantics::kMatch, MissingSemantics::kNoMatch}) {
      query.semantics = semantics;
      const auto result = index.Execute(query);
      if (!result.ok()) {
        std::fprintf(stderr, "%s\n", result.status().ToString().c_str());
        return 1;
      }
      std::printf("  missing-%s-a-match:", semantics == MissingSemantics::kMatch
                                               ? "is"
                                               : "not");
      result.value().ForEachSetBit([&](uint64_t r) {
        std::printf(" %s", rows[r].name);
      });
      std::printf("\n");
    }
  }

  std::printf(
      "\nNote how 'compass' (no price) and 'gasket' (nothing recorded)\n"
      "appear only when missing data counts as a match.\n\n");

  // The same query through the Database facade: one Run call resolves the
  // named terms, routes to the cheapest registered index, and returns the
  // answer together with the routing decision and cost counters.
  Database db = Database::FromTable(Table(table)).value();
  if (!db.BuildIndex(IndexKind::kBitmapEquality).ok()) return 1;
  const auto run = db.Run(QueryRequest::Terms(
      {{"rating", 3, 5}, {"price", 1, 7}}, MissingSemantics::kMatch));
  if (!run.ok()) {
    std::fprintf(stderr, "%s\n", run.status().ToString().c_str());
    return 1;
  }
  std::printf("Database::Run routed to %s (estimated selectivity %.2f):",
              run->chosen_index.c_str(), run->routing.estimated_selectivity);
  for (const uint32_t r : run->row_ids) std::printf(" %s", rows[r].name);
  std::printf("\n");

  // Text predicates and COUNT(*)-only execution ride the same API.
  const auto count = db.Run(QueryRequest::Text("rating >= 3 AND price <= 7",
                                               MissingSemantics::kNoMatch)
                                .CountOnly());
  if (!count.ok()) return 1;
  std::printf("of these, %llu match even if every missing cell disagrees\n",
              static_cast<unsigned long long>(count->count));
  return 0;
}
