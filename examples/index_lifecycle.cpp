// Index lifecycle tour: build → persist to disk → reload → append new
// records incrementally → run boolean (AND/OR/NOT) queries under both
// missing-data semantics via the Database facade — including the snapshot
// model that lets readers keep serving while a writer mutates.
//
//   ./build/examples/index_lifecycle

#include <cstdio>
#include <cstdlib>

#include "bitmap/bitmap_index.h"
#include "core/database.h"
#include "plan/planner.h"
#include "table/generator.h"

using namespace incdb;

int main() {
  // A product-defect log: component (1..12), severity (1..5, often not yet
  // triaged → missing), region (1..8).
  DatasetSpec spec;
  spec.num_rows = 30000;
  spec.seed = 9;
  spec.attributes = {{"component", 12, 0.0, 0.0},
                     {"severity", 5, 0.35, 0.0},
                     {"region", 8, 0.05, 0.0}};
  Table table = GenerateTable(spec).value();

  // --- persist an index and reload it ---
  const BitmapIndex built =
      BitmapIndex::Build(table, {BitmapEncoding::kRange,
                                 MissingStrategy::kExtraBitmap})
          .value();
  const std::string path = "/tmp/incdb_defects.bre";
  if (!built.Save(path).ok()) return 1;
  auto loaded = BitmapIndex::Load(path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
    return 1;
  }
  std::printf("saved + reloaded %s: %llu bytes on disk, %llu rows\n",
              loaded->Name().c_str(),
              static_cast<unsigned long long>(loaded->SizeInBytes()),
              static_cast<unsigned long long>(loaded->num_rows()));

  // --- incremental maintenance ---
  BitmapIndex live = std::move(loaded).value();
  for (int i = 0; i < 1000; ++i) {
    const std::vector<Value> row = {static_cast<Value>(1 + i % 12),
                                    i % 3 == 0 ? kMissingValue
                                               : static_cast<Value>(1 + i % 5),
                                    static_cast<Value>(1 + i % 8)};
    if (!table.AppendRow(row).ok() || !live.AppendRow(row).ok()) return 1;
  }
  std::printf("appended 1000 records; index now covers %llu rows\n",
              static_cast<unsigned long long>(live.num_rows()));

  // --- counting without materializing (compressed COUNT path) ---
  RangeQuery severe;
  severe.terms = {{1, {4, 5}}};
  severe.semantics = MissingSemantics::kMatch;
  const uint64_t possible = live.ExecuteCount(severe).value();
  severe.semantics = MissingSemantics::kNoMatch;
  const uint64_t confirmed = live.ExecuteCount(severe).value();
  std::printf("severe defects: %llu confirmed, %llu possible "
              "(untriaged could still be severe)\n",
              static_cast<unsigned long long>(confirmed),
              static_cast<unsigned long long>(possible));

  // --- boolean queries through the Database facade ---
  Database db = Database::FromTable(std::move(table)).value();
  if (!db.BuildIndex(IndexKind::kBitmapRange).ok()) return 1;
  // "severe (4-5) in region 1-2, excluding component 7"
  const QueryExpr expr = QueryExpr::MakeAnd(
      {QueryExpr::MakeTerm(1, {4, 5}), QueryExpr::MakeTerm(2, {1, 2}),
       QueryExpr::MakeNot(QueryExpr::MakeTerm(0, {7, 7}))});
  const auto certain =
      db.Run(QueryRequest::Expression(expr, MissingSemantics::kNoMatch));
  const auto maybe =
      db.Run(QueryRequest::Expression(expr, MissingSemantics::kMatch));
  if (!certain.ok() || !maybe.ok()) return 1;
  std::printf("%s\n  served by %s: %llu certain answers, %llu possible\n",
              expr.ToString().c_str(), certain->chosen_index.c_str(),
              static_cast<unsigned long long>(certain->count),
              static_cast<unsigned long long>(maybe->count));

  // --- snapshot isolation: readers pin an epoch, writers publish new ones ---
  // A pinned snapshot is a consistent (watermark, index set, deletion mask)
  // triple: later Inserts/Deletes are invisible to it, and queries routed
  // through it keep using indexes even after they are dropped.
  const Snapshot pinned = db.GetSnapshot();
  if (!db.Insert({7, 5, 1}).ok() || !db.Delete(0).ok()) return 1;
  const QueryRequest severe_req =
      QueryRequest::Terms({{"severity", 4, 5}}, MissingSemantics::kNoMatch)
          .CountOnly();
  const auto then = RunOnSnapshot(pinned, severe_req);
  const auto now = db.Run(severe_req);
  if (!then.ok() || !now.ok()) return 1;
  std::printf(
      "snapshot isolation: epoch %llu saw %llu rows / %llu severe;\n"
      "  epoch %llu (after 1 insert + 1 delete) sees %llu rows / %llu\n",
      static_cast<unsigned long long>(then->epoch),
      static_cast<unsigned long long>(then->visible_rows),
      static_cast<unsigned long long>(then->count),
      static_cast<unsigned long long>(now->epoch),
      static_cast<unsigned long long>(now->visible_rows),
      static_cast<unsigned long long>(now->count));

  // --- batch serving: one snapshot, many requests, a thread pool ---
  std::vector<QueryRequest> batch_requests;
  for (Value region = 1; region <= 8; ++region) {
    batch_requests.push_back(QueryRequest::Terms(
        {{"severity", 4, 5}, {"region", region, region}}).CountOnly());
  }
  const BatchResult batch = db.RunBatch(batch_requests, 4);
  std::printf("batch of %zu regional counts on %zu threads in %.2f ms:",
              batch.results.size(), batch.num_threads, batch.wall_millis);
  for (const auto& result : batch.results) {
    if (!result.ok()) return 1;
    std::printf(" %llu", static_cast<unsigned long long>(result.value().count));
  }
  std::printf("\n");

  std::remove(path.c_str());
  return 0;
}
