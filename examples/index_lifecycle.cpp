// Index lifecycle tour: build → persist to disk → reload → append new
// records incrementally → run boolean (AND/OR/NOT) queries under both
// missing-data semantics via the Database facade.
//
//   ./build/examples/index_lifecycle

#include <cstdio>
#include <cstdlib>

#include "bitmap/bitmap_index.h"
#include "core/database.h"
#include "table/generator.h"

using namespace incdb;

int main() {
  // A product-defect log: component (1..12), severity (1..5, often not yet
  // triaged → missing), region (1..8).
  DatasetSpec spec;
  spec.num_rows = 30000;
  spec.seed = 9;
  spec.attributes = {{"component", 12, 0.0, 0.0},
                     {"severity", 5, 0.35, 0.0},
                     {"region", 8, 0.05, 0.0}};
  Table table = GenerateTable(spec).value();

  // --- persist an index and reload it ---
  const BitmapIndex built =
      BitmapIndex::Build(table, {BitmapEncoding::kRange,
                                 MissingStrategy::kExtraBitmap})
          .value();
  const std::string path = "/tmp/incdb_defects.bre";
  if (!built.Save(path).ok()) return 1;
  auto loaded = BitmapIndex::Load(path);
  if (!loaded.ok()) {
    std::fprintf(stderr, "%s\n", loaded.status().ToString().c_str());
    return 1;
  }
  std::printf("saved + reloaded %s: %llu bytes on disk, %llu rows\n",
              loaded->Name().c_str(),
              static_cast<unsigned long long>(loaded->SizeInBytes()),
              static_cast<unsigned long long>(loaded->num_rows()));

  // --- incremental maintenance ---
  BitmapIndex live = std::move(loaded).value();
  for (int i = 0; i < 1000; ++i) {
    const std::vector<Value> row = {static_cast<Value>(1 + i % 12),
                                    i % 3 == 0 ? kMissingValue
                                               : static_cast<Value>(1 + i % 5),
                                    static_cast<Value>(1 + i % 8)};
    if (!table.AppendRow(row).ok() || !live.AppendRow(row).ok()) return 1;
  }
  std::printf("appended 1000 records; index now covers %llu rows\n",
              static_cast<unsigned long long>(live.num_rows()));

  // --- counting without materializing (compressed COUNT path) ---
  RangeQuery severe;
  severe.terms = {{1, {4, 5}}};
  severe.semantics = MissingSemantics::kMatch;
  const uint64_t possible = live.ExecuteCount(severe).value();
  severe.semantics = MissingSemantics::kNoMatch;
  const uint64_t confirmed = live.ExecuteCount(severe).value();
  std::printf("severe defects: %llu confirmed, %llu possible "
              "(untriaged could still be severe)\n",
              static_cast<unsigned long long>(confirmed),
              static_cast<unsigned long long>(possible));

  // --- boolean queries through the Database facade ---
  Database db = Database::FromTable(std::move(table)).value();
  if (!db.BuildIndex(IndexKind::kBitmapRange).ok()) return 1;
  // "severe (4-5) in region 1-2, excluding component 7"
  const QueryExpr expr = QueryExpr::MakeAnd(
      {QueryExpr::MakeTerm(1, {4, 5}), QueryExpr::MakeTerm(2, {1, 2}),
       QueryExpr::MakeNot(QueryExpr::MakeTerm(0, {7, 7}))});
  std::string chosen;
  const auto certain =
      db.QueryExpression(expr, MissingSemantics::kNoMatch, &chosen);
  const auto maybe = db.QueryExpression(expr, MissingSemantics::kMatch);
  if (!certain.ok() || !maybe.ok()) return 1;
  std::printf("%s\n  served by %s: %zu certain answers, %zu possible\n",
              expr.ToString().c_str(), chosen.c_str(),
              certain.value().size(), maybe.value().size());

  std::remove(path.c_str());
  return 0;
}
