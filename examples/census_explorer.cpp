// Census-style exploration (§1 example 1): a census table where many
// attributes allow NULL. Builds every index family over a census-like
// dataset, compares their sizes and query times, and cross-checks results —
// a miniature of the paper's real-data experiment you can poke at.
//
//   ./build/examples/census_explorer [rows]     (default 20000)

#include <cstdio>
#include <cstdlib>

#include "core/executor.h"
#include "core/index_factory.h"
#include "query/workload.h"
#include "table/generator.h"

using namespace incdb;

int main(int argc, char** argv) {
  const uint64_t rows = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 20000;
  const Table table = GenerateTable(CensusLikeSpec(rows, 7)).value();
  std::printf("census-like dataset: %s\n", table.Summary().c_str());
  std::printf("raw data: %.2f MB\n\n",
              static_cast<double>(table.DataSizeInBytes()) / (1024.0 * 1024.0));

  // Search keys over attributes that can express a 20%-wide range.
  std::vector<size_t> pool;
  for (size_t a = 0; a < table.num_attributes(); ++a) {
    if (table.schema().attribute(a).cardinality >= 5) pool.push_back(a);
  }
  WorkloadParams params;
  params.num_queries = 50;
  params.dims = 5;
  params.attribute_selectivity = 0.2;
  params.attribute_pool = pool;
  params.semantics = MissingSemantics::kMatch;
  const auto queries_result = GenerateWorkload(table, params);
  if (!queries_result.ok()) {
    std::fprintf(stderr, "%s\n", queries_result.status().ToString().c_str());
    return 1;
  }
  const std::vector<RangeQuery>& queries = queries_result.value();

  std::printf("%-22s %12s %12s %14s %10s\n", "index", "size (MB)",
              "time (ms)", "matches", "exact?");
  uint64_t reference_matches = 0;
  bool first = true;
  for (IndexKind kind :
       {IndexKind::kSequentialScan, IndexKind::kBitmapEquality,
        IndexKind::kBitmapRange, IndexKind::kVaFile, IndexKind::kVaPlusFile,
        IndexKind::kMosaic}) {
    auto index_result = CreateIndex(kind, table);
    if (!index_result.ok()) {
      std::fprintf(stderr, "%s: %s\n",
                   std::string(IndexKindToString(kind)).c_str(),
                   index_result.status().ToString().c_str());
      return 1;
    }
    const auto& index = *index_result.value();
    auto run = RunWorkload(index, queries, table.num_rows());
    if (!run.ok()) {
      std::fprintf(stderr, "%s\n", run.status().ToString().c_str());
      return 1;
    }
    if (first) {
      reference_matches = run->total_matches;
      first = false;
    }
    std::printf("%-22s %12.3f %12.2f %14llu %10s\n", index.Name().c_str(),
                static_cast<double>(index.SizeInBytes()) / (1024.0 * 1024.0),
                run->total_millis,
                static_cast<unsigned long long>(run->total_matches),
                run->total_matches == reference_matches ? "yes" : "NO");
    if (run->total_matches != reference_matches) return 1;
  }

  std::printf(
      "\nEvery index returned exactly the sequential scan's matches; the\n"
      "bitmap indexes answer fastest on this skewed data (the paper's §5.3\n"
      "finding), while the VA-file is by far the smallest structure.\n");
  return 0;
}
