// The paper's motivating medical scenario (§1): an analyte-disease database
// where rows are diseases and columns are analyte (blood/urine measurement)
// ranges. A disease stores a value only for analytes relevant to its
// diagnosis; irrelevant analytes are NULL. Querying with a patient's
// readings must treat missing as a match — a disease is not ruled out by an
// analyte it never looks at.
//
//   ./build/examples/medical_diagnosis

#include <cstdio>
#include <string>
#include <vector>

#include "bitmap/bitmap_index.h"
#include "query/seq_scan.h"
#include "table/table.h"

using namespace incdb;

namespace {

// Analytes, each bucketed into 10 clinical ranges (1 = very low ... 10 =
// very high).
const char* kAnalytes[] = {"glucose", "creatinine", "sodium",
                           "potassium", "wbc", "crp"};
constexpr size_t kNumAnalytes = 6;

struct Disease {
  const char* name;
  // Expected bucket range {lo, hi} per analyte; {0, 0} = not relevant.
  int range[kNumAnalytes][2];
};

// A disease is stored as the midpoint bucket of its expected range (our
// table stores one value per cell; range matching is done by querying with
// the patient's bucket and letting missing-is-match keep irrelevant
// analytes neutral).
const Disease kDiseases[] = {
    //                   glucose   creat    sodium   potass   wbc      crp
    {"diabetes_t2",    {{8, 10},  {0, 0},  {0, 0},  {0, 0},  {0, 0},  {0, 0}}},
    {"hypoglycemia",   {{1, 2},   {0, 0},  {0, 0},  {0, 0},  {0, 0},  {0, 0}}},
    {"renal_failure",  {{0, 0},   {8, 10}, {0, 0},  {6, 10}, {0, 0},  {0, 0}}},
    {"hyponatremia",   {{0, 0},   {0, 0},  {1, 3},  {0, 0},  {0, 0},  {0, 0}}},
    {"sepsis",         {{0, 0},   {0, 0},  {0, 0},  {0, 0},  {8, 10}, {8, 10}}},
    {"viral_infection",{{0, 0},   {0, 0},  {0, 0},  {0, 0},  {4, 7},  {4, 7}}},
    {"dehydration",    {{0, 0},   {6, 8},  {7, 10}, {0, 0},  {0, 0},  {0, 0}}},
    {"healthy",        {{4, 6},   {3, 5},  {4, 6},  {4, 6},  {3, 6},  {1, 3}}},
};

}  // namespace

int main() {
  // Build the disease table: one row per (disease, bucket) combination so a
  // disease's whole expected range is searchable; irrelevant analytes stay
  // missing. (A production schema would use interval columns; bucketing
  // keeps the example aligned with the paper's integer-domain model.)
  std::vector<AttributeSpec> attrs;
  for (const char* analyte : kAnalytes) attrs.push_back({analyte, 10});
  Table table = Table::Create(Schema(attrs)).value();

  std::vector<std::string> row_names;
  for (const Disease& disease : kDiseases) {
    // Expand the per-analyte ranges row by row (cartesian expansion is
    // unnecessary: analytes are queried independently, so one row per
    // bucket offset suffices).
    int max_span = 1;
    for (size_t a = 0; a < kNumAnalytes; ++a) {
      if (disease.range[a][0] > 0) {
        max_span =
            std::max(max_span, disease.range[a][1] - disease.range[a][0] + 1);
      }
    }
    for (int offset = 0; offset < max_span; ++offset) {
      std::vector<Value> row(kNumAnalytes, kMissingValue);
      for (size_t a = 0; a < kNumAnalytes; ++a) {
        if (disease.range[a][0] > 0) {
          row[a] = std::min(disease.range[a][0] + offset, disease.range[a][1]);
        }
      }
      if (!table.AppendRow(row).ok()) return 1;
      row_names.push_back(disease.name);
    }
  }
  std::printf("disease knowledge base: %s\n\n", table.Summary().c_str());

  const BitmapIndex index =
      BitmapIndex::Build(table, {BitmapEncoding::kEquality,
                                 MissingStrategy::kExtraBitmap})
          .value();

  // A patient's panel: high glucose, normal everything else, CRP slightly
  // elevated. Allow +-1 bucket of measurement tolerance.
  const int patient[kNumAnalytes] = {9, 4, 5, 5, 5, 4};
  std::printf("patient readings:");
  for (size_t a = 0; a < kNumAnalytes; ++a) {
    std::printf(" %s=%d", kAnalytes[a], patient[a]);
  }
  std::printf("\n\n");

  RangeQuery query;
  query.semantics = MissingSemantics::kMatch;  // the paper's point
  for (size_t a = 0; a < kNumAnalytes; ++a) {
    const Value lo = std::max(1, patient[a] - 1);
    const Value hi = std::min(10, patient[a] + 1);
    query.terms.push_back({a, {lo, hi}});
  }

  const BitVector result = index.Execute(query).value();
  std::printf("possible diagnoses (missing analyte = not ruled out):\n");
  std::string last;
  result.ForEachSetBit([&](uint64_t r) {
    if (row_names[r] != last) {
      std::printf("  - %s\n", row_names[r].c_str());
      last = row_names[r];
    }
  });

  // Contrast with the wrong semantics: requiring every analyte to be
  // recorded would discard almost every disease.
  query.semantics = MissingSemantics::kNoMatch;
  const BitVector strict = index.Execute(query).value();
  std::printf(
      "\nwith missing-NOT-match semantics only %llu row(s) survive — every\n"
      "disease that simply doesn't track one of the measured analytes is\n"
      "(wrongly, for this use case) ruled out.\n",
      static_cast<unsigned long long>(strict.Count()));

  // Sanity: the index agrees with a full scan.
  query.semantics = MissingSemantics::kMatch;
  const BitVector oracle =
      SequentialScan(table).ExecuteToBitVector(query).value();
  std::printf("\nindex result verified against sequential scan: %s\n",
              oracle == result ? "OK" : "MISMATCH");
  return oracle == result ? 0 : 1;
}
