// The paper's survey scenario (§1): a questionnaire where answering one
// question a certain way causes later questions to be skipped, so the
// response table is full of structurally-missing answers. Counting queries
// like "respondents who answered Q5 = A and Q8 = C" must use
// missing-NOT-match semantics: a skipped question is a non-answer, never a
// wildcard.
//
//   ./build/examples/survey_analysis

#include <cstdio>
#include <vector>

#include "bitmap/bitmap_index.h"
#include "common/rng.h"
#include "query/seq_scan.h"
#include "table/table.h"

using namespace incdb;

int main() {
  // Questionnaire: 8 questions, 4 answer choices each (1=A ... 4=D).
  // Skip logic: answering Q1 with D skips Q2-Q3; answering Q4 with A or B
  // skips Q5; Q7 is optional (randomly skipped by ~25% of respondents).
  std::vector<AttributeSpec> attrs;
  for (int q = 1; q <= 8; ++q) {
    attrs.push_back({"q" + std::to_string(q), 4});
  }
  Table table = Table::Create(Schema(attrs)).value();

  Rng rng(2026);
  const uint64_t respondents = 50000;
  for (uint64_t r = 0; r < respondents; ++r) {
    std::vector<Value> row(8);
    for (int q = 0; q < 8; ++q) {
      row[q] = static_cast<Value>(rng.UniformInt(1, 4));
    }
    if (row[0] == 4) row[1] = row[2] = kMissingValue;      // Q1=D skips Q2-Q3
    if (row[3] <= 2) row[4] = kMissingValue;               // Q4 in {A,B} skips Q5
    if (rng.Bernoulli(0.25)) row[6] = kMissingValue;       // Q7 optional
    if (!table.AppendRow(row).ok()) return 1;
  }
  std::printf("survey responses: %s\n\n", table.Summary().c_str());

  // Range encoding: the analyst's queries are ranges ("answered B or
  // higher") and BRE is the paper's fastest option for those.
  const BitmapIndex index =
      BitmapIndex::Build(table,
                         {BitmapEncoding::kRange, MissingStrategy::kExtraBitmap})
          .value();
  const SequentialScan oracle(table);

  struct Report {
    const char* label;
    RangeQuery query;
  };
  std::vector<Report> reports;
  {
    RangeQuery q;  // "Q5 = A and Q8 = C" — the paper's example count
    q.semantics = MissingSemantics::kNoMatch;
    q.terms = {{4, {1, 1}}, {7, {3, 3}}};
    reports.push_back({"Q5=A AND Q8=C (definite answers only)", q});
  }
  {
    RangeQuery q;  // answered Q2 with C-or-higher and Q3 with A-or-B
    q.semantics = MissingSemantics::kNoMatch;
    q.terms = {{1, {3, 4}}, {2, {1, 2}}};
    reports.push_back({"Q2>=C AND Q3<=B (skipped Q1=D branch excluded)", q});
  }
  {
    RangeQuery q;  // same key, but count the COULD-match population
    q.semantics = MissingSemantics::kMatch;
    q.terms = {{1, {3, 4}}, {2, {1, 2}}};
    reports.push_back({"same key, could-match population (missing counts)", q});
  }
  {
    RangeQuery q;  // optional Q7 answered D among Q4 in {C,D}
    q.semantics = MissingSemantics::kNoMatch;
    q.terms = {{3, {3, 4}}, {6, {4, 4}}};
    reports.push_back({"Q4>=C AND Q7=D (optional question answered)", q});
  }

  std::printf("%-55s %10s %10s\n", "report", "count", "verified");
  for (const Report& report : reports) {
    QueryStats stats;
    const BitVector counted = index.Execute(report.query, &stats).value();
    const BitVector expected =
        oracle.ExecuteToBitVector(report.query).value();
    std::printf("%-55s %10llu %10s\n", report.label,
                static_cast<unsigned long long>(counted.Count()),
                counted == expected ? "OK" : "MISMATCH");
    if (!(counted == expected)) return 1;
  }

  std::printf(
      "\nindex: %s, %llu bytes compressed (%.2fx of the raw table)\n",
      index.Name().c_str(),
      static_cast<unsigned long long>(index.SizeInBytes()),
      static_cast<double>(index.SizeInBytes()) /
          static_cast<double>(table.DataSizeInBytes()));
  return 0;
}
