file(REMOVE_RECURSE
  "CMakeFiles/bitmap_test.dir/bitmap/bitmap_aggregate_test.cc.o"
  "CMakeFiles/bitmap_test.dir/bitmap/bitmap_aggregate_test.cc.o.d"
  "CMakeFiles/bitmap_test.dir/bitmap/bitmap_bitsliced_test.cc.o"
  "CMakeFiles/bitmap_test.dir/bitmap/bitmap_bitsliced_test.cc.o.d"
  "CMakeFiles/bitmap_test.dir/bitmap/bitmap_count_test.cc.o"
  "CMakeFiles/bitmap_test.dir/bitmap/bitmap_count_test.cc.o.d"
  "CMakeFiles/bitmap_test.dir/bitmap/bitmap_group_count_test.cc.o"
  "CMakeFiles/bitmap_test.dir/bitmap/bitmap_group_count_test.cc.o.d"
  "CMakeFiles/bitmap_test.dir/bitmap/bitmap_index_test.cc.o"
  "CMakeFiles/bitmap_test.dir/bitmap/bitmap_index_test.cc.o.d"
  "CMakeFiles/bitmap_test.dir/bitmap/bitmap_interval_encoding_test.cc.o"
  "CMakeFiles/bitmap_test.dir/bitmap/bitmap_interval_encoding_test.cc.o.d"
  "CMakeFiles/bitmap_test.dir/bitmap/bitmap_paper_examples_test.cc.o"
  "CMakeFiles/bitmap_test.dir/bitmap/bitmap_paper_examples_test.cc.o.d"
  "CMakeFiles/bitmap_test.dir/bitmap/bitmap_persistence_test.cc.o"
  "CMakeFiles/bitmap_test.dir/bitmap/bitmap_persistence_test.cc.o.d"
  "CMakeFiles/bitmap_test.dir/bitmap/bitmap_property_test.cc.o"
  "CMakeFiles/bitmap_test.dir/bitmap/bitmap_property_test.cc.o.d"
  "bitmap_test"
  "bitmap_test.pdb"
  "bitmap_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bitmap_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
