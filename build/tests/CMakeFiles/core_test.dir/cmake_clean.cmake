file(REMOVE_RECURSE
  "CMakeFiles/core_test.dir/core/advisor_test.cc.o"
  "CMakeFiles/core_test.dir/core/advisor_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/database_delete_test.cc.o"
  "CMakeFiles/core_test.dir/core/database_delete_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/database_test.cc.o"
  "CMakeFiles/core_test.dir/core/database_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/database_text_test.cc.o"
  "CMakeFiles/core_test.dir/core/database_text_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/differential_test.cc.o"
  "CMakeFiles/core_test.dir/core/differential_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/executor_test.cc.o"
  "CMakeFiles/core_test.dir/core/executor_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/expr_executor_test.cc.o"
  "CMakeFiles/core_test.dir/core/expr_executor_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/index_factory_test.cc.o"
  "CMakeFiles/core_test.dir/core/index_factory_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/integration_test.cc.o"
  "CMakeFiles/core_test.dir/core/integration_test.cc.o.d"
  "CMakeFiles/core_test.dir/core/semantics_algebra_test.cc.o"
  "CMakeFiles/core_test.dir/core/semantics_algebra_test.cc.o.d"
  "core_test"
  "core_test.pdb"
  "core_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/core_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
