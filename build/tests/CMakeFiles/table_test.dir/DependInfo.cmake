
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/table/column_test.cc" "tests/CMakeFiles/table_test.dir/table/column_test.cc.o" "gcc" "tests/CMakeFiles/table_test.dir/table/column_test.cc.o.d"
  "/root/repo/tests/table/csv_test.cc" "tests/CMakeFiles/table_test.dir/table/csv_test.cc.o" "gcc" "tests/CMakeFiles/table_test.dir/table/csv_test.cc.o.d"
  "/root/repo/tests/table/generator_test.cc" "tests/CMakeFiles/table_test.dir/table/generator_test.cc.o" "gcc" "tests/CMakeFiles/table_test.dir/table/generator_test.cc.o.d"
  "/root/repo/tests/table/reorder_test.cc" "tests/CMakeFiles/table_test.dir/table/reorder_test.cc.o" "gcc" "tests/CMakeFiles/table_test.dir/table/reorder_test.cc.o.d"
  "/root/repo/tests/table/schema_test.cc" "tests/CMakeFiles/table_test.dir/table/schema_test.cc.o" "gcc" "tests/CMakeFiles/table_test.dir/table/schema_test.cc.o.d"
  "/root/repo/tests/table/table_test.cc" "tests/CMakeFiles/table_test.dir/table/table_test.cc.o" "gcc" "tests/CMakeFiles/table_test.dir/table/table_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/table/CMakeFiles/incdb_table.dir/DependInfo.cmake"
  "/root/repo/build/src/bitmap/CMakeFiles/incdb_bitmap.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/incdb_query.dir/DependInfo.cmake"
  "/root/repo/build/src/compression/CMakeFiles/incdb_compression.dir/DependInfo.cmake"
  "/root/repo/build/src/bitvector/CMakeFiles/incdb_bitvector.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/incdb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
