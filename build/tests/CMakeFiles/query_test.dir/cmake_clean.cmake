file(REMOVE_RECURSE
  "CMakeFiles/query_test.dir/query/expr_test.cc.o"
  "CMakeFiles/query_test.dir/query/expr_test.cc.o.d"
  "CMakeFiles/query_test.dir/query/parser_test.cc.o"
  "CMakeFiles/query_test.dir/query/parser_test.cc.o.d"
  "CMakeFiles/query_test.dir/query/query_test.cc.o"
  "CMakeFiles/query_test.dir/query/query_test.cc.o.d"
  "CMakeFiles/query_test.dir/query/selectivity_test.cc.o"
  "CMakeFiles/query_test.dir/query/selectivity_test.cc.o.d"
  "CMakeFiles/query_test.dir/query/seq_scan_test.cc.o"
  "CMakeFiles/query_test.dir/query/seq_scan_test.cc.o.d"
  "CMakeFiles/query_test.dir/query/workload_test.cc.o"
  "CMakeFiles/query_test.dir/query/workload_test.cc.o.d"
  "query_test"
  "query_test.pdb"
  "query_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/query_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
