
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/compression/bbc_bitvector_test.cc" "tests/CMakeFiles/compression_test.dir/compression/bbc_bitvector_test.cc.o" "gcc" "tests/CMakeFiles/compression_test.dir/compression/bbc_bitvector_test.cc.o.d"
  "/root/repo/tests/compression/wah_bitvector_test.cc" "tests/CMakeFiles/compression_test.dir/compression/wah_bitvector_test.cc.o" "gcc" "tests/CMakeFiles/compression_test.dir/compression/wah_bitvector_test.cc.o.d"
  "/root/repo/tests/compression/wah_edge_test.cc" "tests/CMakeFiles/compression_test.dir/compression/wah_edge_test.cc.o" "gcc" "tests/CMakeFiles/compression_test.dir/compression/wah_edge_test.cc.o.d"
  "/root/repo/tests/compression/wah_property_test.cc" "tests/CMakeFiles/compression_test.dir/compression/wah_property_test.cc.o" "gcc" "tests/CMakeFiles/compression_test.dir/compression/wah_property_test.cc.o.d"
  "/root/repo/tests/compression/wah_serialization_test.cc" "tests/CMakeFiles/compression_test.dir/compression/wah_serialization_test.cc.o" "gcc" "tests/CMakeFiles/compression_test.dir/compression/wah_serialization_test.cc.o.d"
  "/root/repo/tests/compression/wah_word_size_test.cc" "tests/CMakeFiles/compression_test.dir/compression/wah_word_size_test.cc.o" "gcc" "tests/CMakeFiles/compression_test.dir/compression/wah_word_size_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/compression/CMakeFiles/incdb_compression.dir/DependInfo.cmake"
  "/root/repo/build/src/bitvector/CMakeFiles/incdb_bitvector.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/incdb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
