file(REMOVE_RECURSE
  "CMakeFiles/compression_test.dir/compression/bbc_bitvector_test.cc.o"
  "CMakeFiles/compression_test.dir/compression/bbc_bitvector_test.cc.o.d"
  "CMakeFiles/compression_test.dir/compression/wah_bitvector_test.cc.o"
  "CMakeFiles/compression_test.dir/compression/wah_bitvector_test.cc.o.d"
  "CMakeFiles/compression_test.dir/compression/wah_edge_test.cc.o"
  "CMakeFiles/compression_test.dir/compression/wah_edge_test.cc.o.d"
  "CMakeFiles/compression_test.dir/compression/wah_property_test.cc.o"
  "CMakeFiles/compression_test.dir/compression/wah_property_test.cc.o.d"
  "CMakeFiles/compression_test.dir/compression/wah_serialization_test.cc.o"
  "CMakeFiles/compression_test.dir/compression/wah_serialization_test.cc.o.d"
  "CMakeFiles/compression_test.dir/compression/wah_word_size_test.cc.o"
  "CMakeFiles/compression_test.dir/compression/wah_word_size_test.cc.o.d"
  "compression_test"
  "compression_test.pdb"
  "compression_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/compression_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
