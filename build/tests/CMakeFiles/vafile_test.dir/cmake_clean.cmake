file(REMOVE_RECURSE
  "CMakeFiles/vafile_test.dir/vafile/va_file_test.cc.o"
  "CMakeFiles/vafile_test.dir/vafile/va_file_test.cc.o.d"
  "CMakeFiles/vafile_test.dir/vafile/va_persistence_test.cc.o"
  "CMakeFiles/vafile_test.dir/vafile/va_persistence_test.cc.o.d"
  "CMakeFiles/vafile_test.dir/vafile/va_property_test.cc.o"
  "CMakeFiles/vafile_test.dir/vafile/va_property_test.cc.o.d"
  "vafile_test"
  "vafile_test.pdb"
  "vafile_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vafile_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
