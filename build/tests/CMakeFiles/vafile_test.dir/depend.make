# Empty dependencies file for vafile_test.
# This may be replaced when dependencies are built.
