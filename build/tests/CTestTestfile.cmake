# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/bitvector_test[1]_include.cmake")
include("/root/repo/build/tests/compression_test[1]_include.cmake")
include("/root/repo/build/tests/table_test[1]_include.cmake")
include("/root/repo/build/tests/query_test[1]_include.cmake")
include("/root/repo/build/tests/bitmap_test[1]_include.cmake")
include("/root/repo/build/tests/vafile_test[1]_include.cmake")
include("/root/repo/build/tests/btree_test[1]_include.cmake")
include("/root/repo/build/tests/rtree_test[1]_include.cmake")
include("/root/repo/build/tests/baselines_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/stats_test[1]_include.cmake")
