file(REMOVE_RECURSE
  "CMakeFiles/incdb_cli.dir/incdb_cli.cc.o"
  "CMakeFiles/incdb_cli.dir/incdb_cli.cc.o.d"
  "incdb_cli"
  "incdb_cli.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/incdb_cli.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
