# Empty dependencies file for incdb_cli.
# This may be replaced when dependencies are built.
