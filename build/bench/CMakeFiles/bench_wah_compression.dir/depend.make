# Empty dependencies file for bench_wah_compression.
# This may be replaced when dependencies are built.
