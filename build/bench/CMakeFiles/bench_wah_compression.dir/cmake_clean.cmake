file(REMOVE_RECURSE
  "CMakeFiles/bench_wah_compression.dir/bench_wah_compression.cc.o"
  "CMakeFiles/bench_wah_compression.dir/bench_wah_compression.cc.o.d"
  "bench_wah_compression"
  "bench_wah_compression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_wah_compression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
