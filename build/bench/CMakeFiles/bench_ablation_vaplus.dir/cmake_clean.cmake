file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_vaplus.dir/bench_ablation_vaplus.cc.o"
  "CMakeFiles/bench_ablation_vaplus.dir/bench_ablation_vaplus.cc.o.d"
  "bench_ablation_vaplus"
  "bench_ablation_vaplus.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_vaplus.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
