# Empty compiler generated dependencies file for bench_ablation_vaplus.
# This may be replaced when dependencies are built.
