# Empty compiler generated dependencies file for bench_ablation_reordering.
# This may be replaced when dependencies are built.
