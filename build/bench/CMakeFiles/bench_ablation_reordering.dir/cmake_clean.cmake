file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_reordering.dir/bench_ablation_reordering.cc.o"
  "CMakeFiles/bench_ablation_reordering.dir/bench_ablation_reordering.cc.o.d"
  "bench_ablation_reordering"
  "bench_ablation_reordering.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_reordering.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
