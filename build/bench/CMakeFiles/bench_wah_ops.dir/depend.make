# Empty dependencies file for bench_wah_ops.
# This may be replaced when dependencies are built.
