file(REMOVE_RECURSE
  "CMakeFiles/bench_wah_ops.dir/bench_wah_ops.cc.o"
  "CMakeFiles/bench_wah_ops.dir/bench_wah_ops.cc.o.d"
  "bench_wah_ops"
  "bench_wah_ops.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_wah_ops.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
