file(REMOVE_RECURSE
  "CMakeFiles/bench_encoding_comparison.dir/bench_encoding_comparison.cc.o"
  "CMakeFiles/bench_encoding_comparison.dir/bench_encoding_comparison.cc.o.d"
  "bench_encoding_comparison"
  "bench_encoding_comparison.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_encoding_comparison.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
