# Empty compiler generated dependencies file for bench_encoding_comparison.
# This may be replaced when dependencies are built.
