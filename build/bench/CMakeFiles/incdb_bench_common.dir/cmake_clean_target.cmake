file(REMOVE_RECURSE
  "libincdb_bench_common.a"
)
