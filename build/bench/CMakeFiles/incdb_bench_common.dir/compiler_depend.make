# Empty compiler generated dependencies file for incdb_bench_common.
# This may be replaced when dependencies are built.
