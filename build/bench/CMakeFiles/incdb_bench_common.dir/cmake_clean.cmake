file(REMOVE_RECURSE
  "CMakeFiles/incdb_bench_common.dir/bench_common.cc.o"
  "CMakeFiles/incdb_bench_common.dir/bench_common.cc.o.d"
  "libincdb_bench_common.a"
  "libincdb_bench_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/incdb_bench_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
