file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_missing_encoding.dir/bench_ablation_missing_encoding.cc.o"
  "CMakeFiles/bench_ablation_missing_encoding.dir/bench_ablation_missing_encoding.cc.o.d"
  "bench_ablation_missing_encoding"
  "bench_ablation_missing_encoding.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_missing_encoding.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
