file(REMOVE_RECURSE
  "CMakeFiles/bench_table7_full.dir/bench_table7_full.cc.o"
  "CMakeFiles/bench_table7_full.dir/bench_table7_full.cc.o.d"
  "bench_table7_full"
  "bench_table7_full.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_full.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
