# Empty dependencies file for bench_fig4_index_size.
# This may be replaced when dependencies are built.
