file(REMOVE_RECURSE
  "CMakeFiles/bench_census_real_data.dir/bench_census_real_data.cc.o"
  "CMakeFiles/bench_census_real_data.dir/bench_census_real_data.cc.o.d"
  "bench_census_real_data"
  "bench_census_real_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_census_real_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
