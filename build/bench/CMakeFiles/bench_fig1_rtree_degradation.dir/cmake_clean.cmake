file(REMOVE_RECURSE
  "CMakeFiles/bench_fig1_rtree_degradation.dir/bench_fig1_rtree_degradation.cc.o"
  "CMakeFiles/bench_fig1_rtree_degradation.dir/bench_fig1_rtree_degradation.cc.o.d"
  "bench_fig1_rtree_degradation"
  "bench_fig1_rtree_degradation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig1_rtree_degradation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
