# Empty compiler generated dependencies file for bench_fig1_rtree_degradation.
# This may be replaced when dependencies are built.
