# Empty compiler generated dependencies file for bench_ablation_word_size.
# This may be replaced when dependencies are built.
