# CMake generated Testfile for 
# Source directory: /root/repo/examples
# Build directory: /root/repo/build/examples
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(example_quickstart "/root/repo/build/examples/quickstart")
set_tests_properties(example_quickstart PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_medical_diagnosis "/root/repo/build/examples/medical_diagnosis")
set_tests_properties(example_medical_diagnosis PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_survey_analysis "/root/repo/build/examples/survey_analysis")
set_tests_properties(example_survey_analysis PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_index_lifecycle "/root/repo/build/examples/index_lifecycle")
set_tests_properties(example_index_lifecycle PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;16;add_test;/root/repo/examples/CMakeLists.txt;0;")
add_test(example_census_explorer "/root/repo/build/examples/census_explorer" "5000")
set_tests_properties(example_census_explorer PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/examples/CMakeLists.txt;18;add_test;/root/repo/examples/CMakeLists.txt;0;")
