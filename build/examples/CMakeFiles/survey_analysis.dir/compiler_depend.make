# Empty compiler generated dependencies file for survey_analysis.
# This may be replaced when dependencies are built.
