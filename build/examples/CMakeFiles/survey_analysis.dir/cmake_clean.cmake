file(REMOVE_RECURSE
  "CMakeFiles/survey_analysis.dir/survey_analysis.cpp.o"
  "CMakeFiles/survey_analysis.dir/survey_analysis.cpp.o.d"
  "survey_analysis"
  "survey_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/survey_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
