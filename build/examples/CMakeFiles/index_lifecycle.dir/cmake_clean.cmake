file(REMOVE_RECURSE
  "CMakeFiles/index_lifecycle.dir/index_lifecycle.cpp.o"
  "CMakeFiles/index_lifecycle.dir/index_lifecycle.cpp.o.d"
  "index_lifecycle"
  "index_lifecycle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/index_lifecycle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
