# Empty compiler generated dependencies file for index_lifecycle.
# This may be replaced when dependencies are built.
