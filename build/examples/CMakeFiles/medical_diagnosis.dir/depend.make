# Empty dependencies file for medical_diagnosis.
# This may be replaced when dependencies are built.
