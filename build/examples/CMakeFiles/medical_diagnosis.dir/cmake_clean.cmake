file(REMOVE_RECURSE
  "CMakeFiles/medical_diagnosis.dir/medical_diagnosis.cpp.o"
  "CMakeFiles/medical_diagnosis.dir/medical_diagnosis.cpp.o.d"
  "medical_diagnosis"
  "medical_diagnosis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/medical_diagnosis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
