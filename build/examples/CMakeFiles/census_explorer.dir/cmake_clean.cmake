file(REMOVE_RECURSE
  "CMakeFiles/census_explorer.dir/census_explorer.cpp.o"
  "CMakeFiles/census_explorer.dir/census_explorer.cpp.o.d"
  "census_explorer"
  "census_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/census_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
