
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/census_explorer.cpp" "examples/CMakeFiles/census_explorer.dir/census_explorer.cpp.o" "gcc" "examples/CMakeFiles/census_explorer.dir/census_explorer.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/incdb_core.dir/DependInfo.cmake"
  "/root/repo/build/src/bitmap/CMakeFiles/incdb_bitmap.dir/DependInfo.cmake"
  "/root/repo/build/src/vafile/CMakeFiles/incdb_vafile.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/incdb_query.dir/DependInfo.cmake"
  "/root/repo/build/src/table/CMakeFiles/incdb_table.dir/DependInfo.cmake"
  "/root/repo/build/src/compression/CMakeFiles/incdb_compression.dir/DependInfo.cmake"
  "/root/repo/build/src/baselines/CMakeFiles/incdb_baselines.dir/DependInfo.cmake"
  "/root/repo/build/src/btree/CMakeFiles/incdb_btree.dir/DependInfo.cmake"
  "/root/repo/build/src/rtree/CMakeFiles/incdb_rtree.dir/DependInfo.cmake"
  "/root/repo/build/src/stats/CMakeFiles/incdb_stats.dir/DependInfo.cmake"
  "/root/repo/build/src/bitvector/CMakeFiles/incdb_bitvector.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/incdb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
