# Empty dependencies file for census_explorer.
# This may be replaced when dependencies are built.
