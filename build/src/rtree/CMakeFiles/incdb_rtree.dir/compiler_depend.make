# Empty compiler generated dependencies file for incdb_rtree.
# This may be replaced when dependencies are built.
