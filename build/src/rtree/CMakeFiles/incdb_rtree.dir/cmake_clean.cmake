file(REMOVE_RECURSE
  "CMakeFiles/incdb_rtree.dir/rtree.cc.o"
  "CMakeFiles/incdb_rtree.dir/rtree.cc.o.d"
  "libincdb_rtree.a"
  "libincdb_rtree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/incdb_rtree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
