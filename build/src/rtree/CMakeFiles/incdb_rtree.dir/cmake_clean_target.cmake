file(REMOVE_RECURSE
  "libincdb_rtree.a"
)
