# Empty compiler generated dependencies file for incdb_baselines.
# This may be replaced when dependencies are built.
