file(REMOVE_RECURSE
  "CMakeFiles/incdb_baselines.dir/bitstring_augmented.cc.o"
  "CMakeFiles/incdb_baselines.dir/bitstring_augmented.cc.o.d"
  "CMakeFiles/incdb_baselines.dir/mosaic.cc.o"
  "CMakeFiles/incdb_baselines.dir/mosaic.cc.o.d"
  "libincdb_baselines.a"
  "libincdb_baselines.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/incdb_baselines.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
