file(REMOVE_RECURSE
  "libincdb_baselines.a"
)
