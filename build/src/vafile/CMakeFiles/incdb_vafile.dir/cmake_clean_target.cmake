file(REMOVE_RECURSE
  "libincdb_vafile.a"
)
