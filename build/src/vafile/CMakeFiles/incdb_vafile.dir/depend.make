# Empty dependencies file for incdb_vafile.
# This may be replaced when dependencies are built.
