file(REMOVE_RECURSE
  "CMakeFiles/incdb_vafile.dir/va_file.cc.o"
  "CMakeFiles/incdb_vafile.dir/va_file.cc.o.d"
  "libincdb_vafile.a"
  "libincdb_vafile.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/incdb_vafile.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
