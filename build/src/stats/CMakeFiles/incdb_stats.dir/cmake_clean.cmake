file(REMOVE_RECURSE
  "CMakeFiles/incdb_stats.dir/histogram.cc.o"
  "CMakeFiles/incdb_stats.dir/histogram.cc.o.d"
  "CMakeFiles/incdb_stats.dir/wah_model.cc.o"
  "CMakeFiles/incdb_stats.dir/wah_model.cc.o.d"
  "libincdb_stats.a"
  "libincdb_stats.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/incdb_stats.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
