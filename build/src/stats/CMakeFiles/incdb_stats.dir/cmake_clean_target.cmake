file(REMOVE_RECURSE
  "libincdb_stats.a"
)
