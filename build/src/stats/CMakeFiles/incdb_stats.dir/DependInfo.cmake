
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/stats/histogram.cc" "src/stats/CMakeFiles/incdb_stats.dir/histogram.cc.o" "gcc" "src/stats/CMakeFiles/incdb_stats.dir/histogram.cc.o.d"
  "/root/repo/src/stats/wah_model.cc" "src/stats/CMakeFiles/incdb_stats.dir/wah_model.cc.o" "gcc" "src/stats/CMakeFiles/incdb_stats.dir/wah_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/table/CMakeFiles/incdb_table.dir/DependInfo.cmake"
  "/root/repo/build/src/query/CMakeFiles/incdb_query.dir/DependInfo.cmake"
  "/root/repo/build/src/bitvector/CMakeFiles/incdb_bitvector.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/incdb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
