# Empty compiler generated dependencies file for incdb_stats.
# This may be replaced when dependencies are built.
