file(REMOVE_RECURSE
  "libincdb_table.a"
)
