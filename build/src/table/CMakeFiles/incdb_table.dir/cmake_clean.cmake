file(REMOVE_RECURSE
  "CMakeFiles/incdb_table.dir/column.cc.o"
  "CMakeFiles/incdb_table.dir/column.cc.o.d"
  "CMakeFiles/incdb_table.dir/csv.cc.o"
  "CMakeFiles/incdb_table.dir/csv.cc.o.d"
  "CMakeFiles/incdb_table.dir/generator.cc.o"
  "CMakeFiles/incdb_table.dir/generator.cc.o.d"
  "CMakeFiles/incdb_table.dir/reorder.cc.o"
  "CMakeFiles/incdb_table.dir/reorder.cc.o.d"
  "CMakeFiles/incdb_table.dir/schema.cc.o"
  "CMakeFiles/incdb_table.dir/schema.cc.o.d"
  "CMakeFiles/incdb_table.dir/table.cc.o"
  "CMakeFiles/incdb_table.dir/table.cc.o.d"
  "libincdb_table.a"
  "libincdb_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/incdb_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
