
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/table/column.cc" "src/table/CMakeFiles/incdb_table.dir/column.cc.o" "gcc" "src/table/CMakeFiles/incdb_table.dir/column.cc.o.d"
  "/root/repo/src/table/csv.cc" "src/table/CMakeFiles/incdb_table.dir/csv.cc.o" "gcc" "src/table/CMakeFiles/incdb_table.dir/csv.cc.o.d"
  "/root/repo/src/table/generator.cc" "src/table/CMakeFiles/incdb_table.dir/generator.cc.o" "gcc" "src/table/CMakeFiles/incdb_table.dir/generator.cc.o.d"
  "/root/repo/src/table/reorder.cc" "src/table/CMakeFiles/incdb_table.dir/reorder.cc.o" "gcc" "src/table/CMakeFiles/incdb_table.dir/reorder.cc.o.d"
  "/root/repo/src/table/schema.cc" "src/table/CMakeFiles/incdb_table.dir/schema.cc.o" "gcc" "src/table/CMakeFiles/incdb_table.dir/schema.cc.o.d"
  "/root/repo/src/table/table.cc" "src/table/CMakeFiles/incdb_table.dir/table.cc.o" "gcc" "src/table/CMakeFiles/incdb_table.dir/table.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/incdb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
