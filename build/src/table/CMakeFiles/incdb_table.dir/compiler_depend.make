# Empty compiler generated dependencies file for incdb_table.
# This may be replaced when dependencies are built.
