# Empty compiler generated dependencies file for incdb_core.
# This may be replaced when dependencies are built.
