file(REMOVE_RECURSE
  "libincdb_core.a"
)
