file(REMOVE_RECURSE
  "CMakeFiles/incdb_core.dir/advisor.cc.o"
  "CMakeFiles/incdb_core.dir/advisor.cc.o.d"
  "CMakeFiles/incdb_core.dir/database.cc.o"
  "CMakeFiles/incdb_core.dir/database.cc.o.d"
  "CMakeFiles/incdb_core.dir/executor.cc.o"
  "CMakeFiles/incdb_core.dir/executor.cc.o.d"
  "CMakeFiles/incdb_core.dir/expr_executor.cc.o"
  "CMakeFiles/incdb_core.dir/expr_executor.cc.o.d"
  "CMakeFiles/incdb_core.dir/index_factory.cc.o"
  "CMakeFiles/incdb_core.dir/index_factory.cc.o.d"
  "libincdb_core.a"
  "libincdb_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/incdb_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
