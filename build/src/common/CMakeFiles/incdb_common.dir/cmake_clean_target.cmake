file(REMOVE_RECURSE
  "libincdb_common.a"
)
