file(REMOVE_RECURSE
  "CMakeFiles/incdb_common.dir/io.cc.o"
  "CMakeFiles/incdb_common.dir/io.cc.o.d"
  "CMakeFiles/incdb_common.dir/rng.cc.o"
  "CMakeFiles/incdb_common.dir/rng.cc.o.d"
  "CMakeFiles/incdb_common.dir/status.cc.o"
  "CMakeFiles/incdb_common.dir/status.cc.o.d"
  "libincdb_common.a"
  "libincdb_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/incdb_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
