# Empty dependencies file for incdb_common.
# This may be replaced when dependencies are built.
