# Empty compiler generated dependencies file for incdb_compression.
# This may be replaced when dependencies are built.
