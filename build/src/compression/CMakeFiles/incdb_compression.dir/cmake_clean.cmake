file(REMOVE_RECURSE
  "CMakeFiles/incdb_compression.dir/bbc_bitvector.cc.o"
  "CMakeFiles/incdb_compression.dir/bbc_bitvector.cc.o.d"
  "CMakeFiles/incdb_compression.dir/wah_bitvector.cc.o"
  "CMakeFiles/incdb_compression.dir/wah_bitvector.cc.o.d"
  "libincdb_compression.a"
  "libincdb_compression.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/incdb_compression.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
