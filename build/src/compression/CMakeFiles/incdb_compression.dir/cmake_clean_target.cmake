file(REMOVE_RECURSE
  "libincdb_compression.a"
)
