# CMake generated Testfile for 
# Source directory: /root/repo/src
# Build directory: /root/repo/build/src
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
subdirs("common")
subdirs("bitvector")
subdirs("compression")
subdirs("table")
subdirs("query")
subdirs("stats")
subdirs("bitmap")
subdirs("vafile")
subdirs("btree")
subdirs("rtree")
subdirs("baselines")
subdirs("core")
