# Empty compiler generated dependencies file for incdb_btree.
# This may be replaced when dependencies are built.
