file(REMOVE_RECURSE
  "CMakeFiles/incdb_btree.dir/bplus_tree.cc.o"
  "CMakeFiles/incdb_btree.dir/bplus_tree.cc.o.d"
  "libincdb_btree.a"
  "libincdb_btree.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/incdb_btree.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
