file(REMOVE_RECURSE
  "libincdb_btree.a"
)
