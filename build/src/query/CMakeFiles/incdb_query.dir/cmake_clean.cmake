file(REMOVE_RECURSE
  "CMakeFiles/incdb_query.dir/expr.cc.o"
  "CMakeFiles/incdb_query.dir/expr.cc.o.d"
  "CMakeFiles/incdb_query.dir/parser.cc.o"
  "CMakeFiles/incdb_query.dir/parser.cc.o.d"
  "CMakeFiles/incdb_query.dir/query.cc.o"
  "CMakeFiles/incdb_query.dir/query.cc.o.d"
  "CMakeFiles/incdb_query.dir/selectivity.cc.o"
  "CMakeFiles/incdb_query.dir/selectivity.cc.o.d"
  "CMakeFiles/incdb_query.dir/seq_scan.cc.o"
  "CMakeFiles/incdb_query.dir/seq_scan.cc.o.d"
  "CMakeFiles/incdb_query.dir/workload.cc.o"
  "CMakeFiles/incdb_query.dir/workload.cc.o.d"
  "libincdb_query.a"
  "libincdb_query.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/incdb_query.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
