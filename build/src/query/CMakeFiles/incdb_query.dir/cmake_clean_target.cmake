file(REMOVE_RECURSE
  "libincdb_query.a"
)
