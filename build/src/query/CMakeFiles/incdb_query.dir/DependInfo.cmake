
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/query/expr.cc" "src/query/CMakeFiles/incdb_query.dir/expr.cc.o" "gcc" "src/query/CMakeFiles/incdb_query.dir/expr.cc.o.d"
  "/root/repo/src/query/parser.cc" "src/query/CMakeFiles/incdb_query.dir/parser.cc.o" "gcc" "src/query/CMakeFiles/incdb_query.dir/parser.cc.o.d"
  "/root/repo/src/query/query.cc" "src/query/CMakeFiles/incdb_query.dir/query.cc.o" "gcc" "src/query/CMakeFiles/incdb_query.dir/query.cc.o.d"
  "/root/repo/src/query/selectivity.cc" "src/query/CMakeFiles/incdb_query.dir/selectivity.cc.o" "gcc" "src/query/CMakeFiles/incdb_query.dir/selectivity.cc.o.d"
  "/root/repo/src/query/seq_scan.cc" "src/query/CMakeFiles/incdb_query.dir/seq_scan.cc.o" "gcc" "src/query/CMakeFiles/incdb_query.dir/seq_scan.cc.o.d"
  "/root/repo/src/query/workload.cc" "src/query/CMakeFiles/incdb_query.dir/workload.cc.o" "gcc" "src/query/CMakeFiles/incdb_query.dir/workload.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/table/CMakeFiles/incdb_table.dir/DependInfo.cmake"
  "/root/repo/build/src/bitvector/CMakeFiles/incdb_bitvector.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/incdb_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
