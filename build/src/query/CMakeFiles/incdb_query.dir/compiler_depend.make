# Empty compiler generated dependencies file for incdb_query.
# This may be replaced when dependencies are built.
