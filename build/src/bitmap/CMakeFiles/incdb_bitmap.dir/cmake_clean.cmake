file(REMOVE_RECURSE
  "CMakeFiles/incdb_bitmap.dir/bitmap_index.cc.o"
  "CMakeFiles/incdb_bitmap.dir/bitmap_index.cc.o.d"
  "libincdb_bitmap.a"
  "libincdb_bitmap.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/incdb_bitmap.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
