# Empty dependencies file for incdb_bitmap.
# This may be replaced when dependencies are built.
