file(REMOVE_RECURSE
  "libincdb_bitmap.a"
)
