file(REMOVE_RECURSE
  "CMakeFiles/incdb_bitvector.dir/bitvector.cc.o"
  "CMakeFiles/incdb_bitvector.dir/bitvector.cc.o.d"
  "libincdb_bitvector.a"
  "libincdb_bitvector.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/incdb_bitvector.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
