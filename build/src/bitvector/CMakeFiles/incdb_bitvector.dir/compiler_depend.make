# Empty compiler generated dependencies file for incdb_bitvector.
# This may be replaced when dependencies are built.
