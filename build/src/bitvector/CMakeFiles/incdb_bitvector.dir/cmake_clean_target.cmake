file(REMOVE_RECURSE
  "libincdb_bitvector.a"
)
