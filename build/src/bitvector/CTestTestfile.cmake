# CMake generated Testfile for 
# Source directory: /root/repo/src/bitvector
# Build directory: /root/repo/build/src/bitvector
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
