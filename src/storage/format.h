#ifndef INCDB_STORAGE_FORMAT_H_
#define INCDB_STORAGE_FORMAT_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace incdb {
namespace storage {

/// On-disk layout of a persisted database (see docs/STORAGE.md).
///
/// A store is a directory of three live files, plus — format v2, when the
/// database is segmented (docs/SEGMENTS.md) — one immutable file per
/// sealed segment:
///
///   MANIFEST           — format magic + version, the store generation, the
///                        section table (name, file, offset, length, CRC-32
///                        per section), and a trailing CRC-32 over the
///                        manifest itself.
///   catalog.<gen>.bin  — one BinaryWriter stream: schema, row/deletion
///                        state, per-attribute missing counts, and per-index
///                        metadata (everything small; bulk arrays live in
///                        the segment and are referenced by offset).
///   data.<gen>.seg     — 8-byte-aligned bulk arrays: column values, WAH
///                        code words, VA-file packed approximations. Opened
///                        with mmap and served zero-copy through borrowed
///                        views. In a segmented store the sealed rows live
///                        in their segment files, so this holds only the
///                        unsealed tail's columns (plus registry indexes).
///   seg-<id>[.g<gen>].dat — one sealed segment, addressed by its content
///                        id: the segment's column values, zone map, and
///                        its own index, with a trailing meta-block
///                        pointer. Content-immutable, so a Save reuses the
///                        files of every segment that did not change —
///                        save cost is bounded by the dirty set, not the
///                        store size — and each file is mmap'd
///                        independently at open. The catalog's segment
///                        table carries each file's size and whole-file
///                        CRC-32.
///
/// Payload files are immutable once written: every Save writes a fresh
/// generation (old payload files are never truncated or rewritten in
/// place), makes it durable with fsync, and then commits by atomically
/// renaming a new MANIFEST over the old one. A crash at any point leaves
/// either the previous complete store or the new one — never a mix — and
/// saving into the directory a snapshot was opened from is safe: the old
/// generation's mapping stays valid (the inode outlives the unlink) while
/// the new generation is written beside it.
///
/// Integrity: every section carries a CRC-32 in the manifest; the manifest
/// carries its own trailing CRC-32. A verified open rejects bad magic, a
/// future format version, a truncated file, or a checksum mismatch with a
/// Status error — never a crash.

/// First bytes of each file (BinaryWriter length-prefixed strings).
inline constexpr const char kManifestMagic[] = "INCDB-MANIFEST";
inline constexpr const char kCatalogMagic[] = "INCDB-CATALOG";
/// Raw 8-byte prefix of data.seg (keeps blob offsets 8-aligned from 0).
inline constexpr const char kSegmentMagic[8] = {'I', 'N', 'C', 'D',
                                               'B', 'S', 'E', 'G'};

/// Bumped on any incompatible layout change. A reader refuses versions it
/// does not know (forward compatibility is explicit, not accidental).
/// v1: monolithic catalog + data segment. v2: adds the optional segment
/// table (and per-segment files) to the catalog; v1 stores open unchanged.
/// v3: adds composite bitmap index blobs (multi-component / hierarchical —
/// per-attribute axis groups instead of one flat bitmap list); v1/v2
/// stores open unchanged.
inline constexpr uint32_t kFormatVersion = 3;

/// First bytes of a seg-<id>.dat segment file (raw 8-byte prefix, keeping
/// blob offsets 8-aligned from 0) and of its meta block.
inline constexpr char kSegmentFileMagic[8] = {'I', 'N', 'C', 'D',
                                              'B', 'S', 'G', 'F'};
inline constexpr const char kSegmentMetaMagic[] = "INCDB-SEGMETA";

/// File names inside the store directory. The manifest has a fixed name —
/// it is the commit pointer — while payload files carry the generation of
/// the Save that produced them.
inline constexpr const char kManifestFile[] = "MANIFEST";
inline constexpr const char kManifestTmpFile[] = "MANIFEST.tmp";

inline std::string CatalogFileName(uint64_t generation) {
  return "catalog." + std::to_string(generation) + ".bin";
}

inline std::string SegmentFileName(uint64_t generation) {
  return "data." + std::to_string(generation) + ".seg";
}

/// Canonical name of a sealed segment's file. When the canonical name is
/// already taken by a file this writer cannot vouch for (debris from a
/// different database saved into the same directory), the writer falls
/// back to a generation-qualified alternate.
inline std::string SegmentDataFileName(uint64_t content_id) {
  return "seg-" + std::to_string(content_id) + ".dat";
}

inline std::string SegmentDataFileAltName(uint64_t content_id,
                                          uint64_t generation) {
  return "seg-" + std::to_string(content_id) + ".g" +
         std::to_string(generation) + ".dat";
}

/// True for any segment-file name (canonical or alternate) — the GC sweep
/// uses this to find candidate files, then spares the referenced set.
inline bool IsSegmentDataFileName(const std::string& name) {
  const std::string_view v(name);
  return v.starts_with("seg-") && v.ends_with(".dat");
}

/// If `name` is a generation-suffixed payload file (either kind), extracts
/// its generation. Used by the writer to pick the next free generation and
/// to garbage-collect superseded ones.
inline bool ParsePayloadFileName(const std::string& name,
                                 uint64_t* generation) {
  std::string_view v(name);
  if (v.starts_with("data.") && v.ends_with(".seg")) {
    v.remove_prefix(5);
    v.remove_suffix(4);
  } else if (v.starts_with("catalog.") && v.ends_with(".bin")) {
    v.remove_prefix(8);
    v.remove_suffix(4);
  } else {
    return false;
  }
  if (v.empty() || v.size() > 19) return false;
  uint64_t gen = 0;
  for (char c : v) {
    if (c < '0' || c > '9') return false;
    gen = gen * 10 + static_cast<uint64_t>(c - '0');
  }
  *generation = gen;
  return true;
}

/// Which physical file a section lives in.
enum class SectionFile : uint8_t {
  kCatalog = 0,
  kSegment = 1,
};

/// Every blob in data.seg starts on an 8-byte boundary so mmap'd views of
/// uint64_t arrays are naturally aligned (mmap bases are page-aligned).
inline constexpr uint64_t kSegmentAlignment = 8;

/// One entry of the manifest's section table. Sections tile the meaningful
/// bytes of catalog.bin and data.seg; the corruption tests iterate them.
struct SectionEntry {
  std::string name;   ///< "catalog", "column/<attr>", "index/<n>/<kind>"
  SectionFile file = SectionFile::kSegment;
  uint64_t offset = 0;
  uint64_t length = 0;
  uint32_t crc32 = 0;
};

/// Parsed MANIFEST.
struct Manifest {
  uint32_t format_version = kFormatVersion;
  uint64_t generation = 0;    ///< which catalog.<gen>.bin / data.<gen>.seg
  uint64_t catalog_size = 0;  ///< exact byte size of the catalog file
  uint64_t segment_size = 0;  ///< exact byte size of the segment file
  std::vector<SectionEntry> sections;
};

}  // namespace storage
}  // namespace incdb

#endif  // INCDB_STORAGE_FORMAT_H_
