#ifndef INCDB_STORAGE_FORMAT_H_
#define INCDB_STORAGE_FORMAT_H_

#include <cstdint>
#include <string>
#include <vector>

namespace incdb {
namespace storage {

/// On-disk layout of a persisted database (see docs/STORAGE.md).
///
/// A store is a directory of three immutable files:
///
///   MANIFEST     — format magic + version, the section table (name, file,
///                  offset, length, CRC-32 per section), and a trailing
///                  CRC-32 over the manifest itself.
///   catalog.bin  — one BinaryWriter stream: schema, row/deletion state,
///                  per-attribute missing counts, and per-index metadata
///                  (everything small; bulk arrays live in data.seg and are
///                  referenced by offset).
///   data.seg     — 8-byte-aligned bulk arrays: column values, WAH code
///                  words, VA-file packed approximations. Opened with mmap
///                  and served zero-copy through borrowed views.
///
/// Integrity: every section carries a CRC-32 in the manifest; the manifest
/// carries its own trailing CRC-32. A reader rejects bad magic, a future
/// format version, a truncated file, or a checksum mismatch with a Status
/// error — never a crash.

/// First bytes of each file (BinaryWriter length-prefixed strings).
inline constexpr const char kManifestMagic[] = "INCDB-MANIFEST";
inline constexpr const char kCatalogMagic[] = "INCDB-CATALOG";
/// Raw 8-byte prefix of data.seg (keeps blob offsets 8-aligned from 0).
inline constexpr const char kSegmentMagic[8] = {'I', 'N', 'C', 'D',
                                               'B', 'S', 'E', 'G'};

/// Bumped on any incompatible layout change. A reader refuses versions it
/// does not know (forward compatibility is explicit, not accidental).
inline constexpr uint32_t kFormatVersion = 1;

/// File names inside the store directory.
inline constexpr const char kManifestFile[] = "MANIFEST";
inline constexpr const char kCatalogFile[] = "catalog.bin";
inline constexpr const char kSegmentFile[] = "data.seg";

/// Which physical file a section lives in.
enum class SectionFile : uint8_t {
  kCatalog = 0,
  kSegment = 1,
};

/// Every blob in data.seg starts on an 8-byte boundary so mmap'd views of
/// uint64_t arrays are naturally aligned (mmap bases are page-aligned).
inline constexpr uint64_t kSegmentAlignment = 8;

/// One entry of the manifest's section table. Sections tile the meaningful
/// bytes of catalog.bin and data.seg; the corruption tests iterate them.
struct SectionEntry {
  std::string name;   ///< "catalog", "column/<attr>", "index/<n>/<kind>"
  SectionFile file = SectionFile::kSegment;
  uint64_t offset = 0;
  uint64_t length = 0;
  uint32_t crc32 = 0;
};

/// Parsed MANIFEST.
struct Manifest {
  uint32_t format_version = kFormatVersion;
  uint64_t catalog_size = 0;  ///< exact byte size of catalog.bin
  uint64_t segment_size = 0;  ///< exact byte size of data.seg
  std::vector<SectionEntry> sections;
};

}  // namespace storage
}  // namespace incdb

#endif  // INCDB_STORAGE_FORMAT_H_
