#ifndef INCDB_STORAGE_CHECKSUM_H_
#define INCDB_STORAGE_CHECKSUM_H_

#include <cstddef>
#include <cstdint>

namespace incdb {
namespace storage {

/// Standard CRC-32 (IEEE 802.3, polynomial 0xEDB88320, the zlib/PNG CRC).
/// Guards every on-disk section against bit rot and truncation; see
/// docs/STORAGE.md. Incremental use: pass the previous return value as
/// `seed` to continue a running checksum over multiple buffers.
uint32_t Crc32(const void* data, size_t size, uint32_t seed = 0);

/// Accumulates a CRC-32 over a stream of buffers (the section writer's
/// running checksum).
class Crc32Accumulator {
 public:
  void Update(const void* data, size_t size) {
    crc_ = Crc32(data, size, crc_);
    bytes_ += size;
  }
  uint32_t crc() const { return crc_; }
  uint64_t bytes() const { return bytes_; }
  void Reset() {
    crc_ = 0;
    bytes_ = 0;
  }

 private:
  uint32_t crc_ = 0;
  uint64_t bytes_ = 0;
};

}  // namespace storage
}  // namespace incdb

#endif  // INCDB_STORAGE_CHECKSUM_H_
