#include "storage/mmap_file.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace incdb {
namespace storage {

Result<std::shared_ptr<MappedFile>> MappedFile::Open(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY);  // NOLINT(runtime/int)
  if (fd < 0) {
    return Status::IOError("cannot open '" + path +
                           "': " + std::strerror(errno));
  }
  struct stat st;
  if (::fstat(fd, &st) != 0) {
    const std::string err = std::strerror(errno);
    ::close(fd);
    return Status::IOError("cannot stat '" + path + "': " + err);
  }
  const size_t size = static_cast<size_t>(st.st_size);
  const uint8_t* data = nullptr;
  if (size > 0) {
    void* mapped = ::mmap(nullptr, size, PROT_READ, MAP_PRIVATE, fd, 0);
    if (mapped == MAP_FAILED) {
      const std::string err = std::strerror(errno);
      ::close(fd);
      return Status::IOError("cannot mmap '" + path + "': " + err);
    }
    data = static_cast<const uint8_t*>(mapped);
  }
  // The mapping survives the close; the fd is no longer needed.
  ::close(fd);
  // Private-ctor factory: make_shared cannot reach the constructor, so the
  // one raw allocation is immediately adopted by the shared_ptr.
  return std::shared_ptr<MappedFile>(
      new MappedFile(data, size));  // lint:allow(raw-new)
}

MappedFile::~MappedFile() {
  if (data_ != nullptr) {
    ::munmap(const_cast<uint8_t*>(data_), size_);
  }
}

}  // namespace storage
}  // namespace incdb
