#include "storage/checksum.h"

#include <array>

namespace incdb {
namespace storage {

namespace {

// Table-driven CRC-32 (reflected, polynomial 0xEDB88320), one byte per step.
// ~1 GB/s in practice — plenty for catalog/manifest sections; bulk sections
// are verified only when OpenOptions::verify_checksums is on, so the mmap
// fast path never pays this.
constexpr std::array<uint32_t, 256> MakeCrcTable() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t crc = i;
    for (int bit = 0; bit < 8; ++bit) {
      crc = (crc >> 1) ^ ((crc & 1) ? 0xEDB88320u : 0u);
    }
    table[i] = crc;
  }
  return table;
}

constexpr std::array<uint32_t, 256> kCrcTable = MakeCrcTable();

}  // namespace

uint32_t Crc32(const void* data, size_t size, uint32_t seed) {
  const unsigned char* bytes = static_cast<const unsigned char*>(data);
  uint32_t crc = seed ^ 0xFFFFFFFFu;
  for (size_t i = 0; i < size; ++i) {
    crc = (crc >> 8) ^ kCrcTable[(crc ^ bytes[i]) & 0xFFu];
  }
  return crc ^ 0xFFFFFFFFu;
}

}  // namespace storage
}  // namespace incdb
