#ifndef INCDB_STORAGE_MMAP_FILE_H_
#define INCDB_STORAGE_MMAP_FILE_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <string>

#include "common/status.h"

namespace incdb {
namespace storage {

/// A read-only memory-mapped file. The mapping is private (copy-on-write
/// semantics are irrelevant since nothing writes through it) and stays
/// valid for the lifetime of the object; every borrowed span the storage
/// reader hands out points into this mapping, so the Database keeps a
/// shared_ptr pin on it for as long as any mapped state is reachable.
///
/// Opening is O(1) in the file size — the kernel pages data in lazily on
/// first access, which is what makes Database::Open independent of the
/// number of WAH words on disk.
class MappedFile {
 public:
  /// Maps `path` read-only. Fails with IOError on a missing or unreadable
  /// file. An empty file maps to data() == nullptr, size() == 0.
  static Result<std::shared_ptr<MappedFile>> Open(const std::string& path);

  ~MappedFile();

  MappedFile(const MappedFile&) = delete;
  MappedFile& operator=(const MappedFile&) = delete;

  const uint8_t* data() const { return data_; }
  size_t size() const { return size_; }

  /// Span view [offset, offset + length); returns nullptr if out of bounds
  /// (the caller turns that into a truncation Status).
  const uint8_t* Slice(uint64_t offset, uint64_t length) const {
    if (offset > size_ || length > size_ - offset) return nullptr;
    return data_ + offset;
  }

 private:
  MappedFile(const uint8_t* data, size_t size) : data_(data), size_(size) {}

  const uint8_t* data_ = nullptr;
  size_t size_ = 0;
};

}  // namespace storage
}  // namespace incdb

#endif  // INCDB_STORAGE_MMAP_FILE_H_
