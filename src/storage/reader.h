#ifndef INCDB_STORAGE_READER_H_
#define INCDB_STORAGE_READER_H_

#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/snapshot.h"
#include "storage/mmap_file.h"

namespace incdb {
namespace storage {

struct OpenOptions {
  /// Verify every section's CRC-32 (and the deep structure of borrowed WAH
  /// payloads) at open time. Costs one pass over the mapped bytes; turn it
  /// off for the pure-mmap fast path where open time is O(1) in the data
  /// size and pages fault in lazily on first query.
  ///
  /// The no-crash corruption guarantee is tied to this flag: an unverified
  /// open still rejects all metadata corruption (manifest, catalog,
  /// structural invariants) with a Status, but corruption in the bulk
  /// payload bytes — WAH code words, packed VA codes, column values — goes
  /// undetected and can produce wrong answers or undefined behavior at
  /// query time. Use the fast path only on stores whose integrity is
  /// assured elsewhere (e.g. verified once after transfer, then served
  /// from local disk).
  bool verify_checksums = true;
};

/// Identity of one opened segment file — what a later Save needs to reuse
/// the file instead of rewriting it (the writer's SegmentPersistCache is
/// seeded from these).
struct OpenedSegmentFile {
  uint64_t content_id = 0;
  std::string file_name;
  uint64_t file_size = 0;
  uint32_t crc32 = 0;
};

/// Everything OpenStore reconstructs from a store directory. The table's
/// columns and the bitmap / VA-file payloads are borrowed views into
/// `mapping` and `segment_mappings` (format v2 maps every segment file
/// independently); keep all pins alive for as long as any of them is
/// reachable (the Database stows them next to the table).
struct OpenedStore {
  std::shared_ptr<MappedFile> mapping;
  std::vector<std::shared_ptr<MappedFile>> segment_mappings;
  /// Reconstructed segment list (null when the store is not segmented);
  /// `segment_files` runs parallel to segments->segments.
  std::shared_ptr<const internal::SegmentList> segments;
  std::vector<OpenedSegmentFile> segment_files;
  std::shared_ptr<Table> table;
  uint64_t num_rows = 0;
  std::shared_ptr<const BitVector> deleted;  ///< null when nothing deleted
  uint64_t num_deleted = 0;
  std::vector<uint64_t> missing_counts;
  /// Deserialized indexes (mmap-borrowed where the format allows).
  std::vector<internal::SnapshotIndexEntry> indexes;
  /// Index kinds persisted as rebuild-on-open markers (no stable wire
  /// form, e.g. the bitstring-augmented R-tree). The caller rebuilds them
  /// over `table` and appends to `indexes`.
  std::vector<IndexKind> rebuild_kinds;
};

/// Opens a store directory written by WriteSnapshot. With checksum
/// verification on (the default), all corruption — missing or truncated
/// files, bad magic, a future format version, section checksum mismatches,
/// implausible metadata — surfaces as a Status error, never a crash. With
/// verify_checksums off, open time is independent of the data size but the
/// no-crash guarantee narrows to metadata; see OpenOptions.
Result<OpenedStore> OpenStore(const std::string& dir,
                              const OpenOptions& options = {});

}  // namespace storage
}  // namespace incdb

#endif  // INCDB_STORAGE_READER_H_
