#include "storage/writer.h"

#include <dirent.h>
#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <sstream>
#include <unordered_set>
#include <vector>

#include "baselines/mosaic.h"
#include "bitmap/bitmap_index.h"
#include "bitmap/composite_index.h"
#include "common/io.h"
#include "storage/checksum.h"
#include "storage/format.h"
#include "vafile/va_file.h"

namespace incdb {
namespace storage {

namespace {

/// Appends 8-aligned blobs to a bulk file (data.seg or one seg-<id>.dat),
/// tracking one open section (a named, checksummed byte range of the file)
/// at a time.
class SegmentWriter {
 public:
  explicit SegmentWriter(std::ostream& out,
                         const char (&magic)[8] = kSegmentMagic)
      : out_(out) {
    out_.write(magic, sizeof(magic));
    offset_ = sizeof(magic);
  }

  void BeginSection(std::string name) {
    section_ = SectionEntry{};
    section_.name = std::move(name);
    section_.file = SectionFile::kSegment;
    section_.offset = offset_;
    crc_.Reset();
  }

  /// Writes `size` raw bytes padded up to the segment alignment; returns
  /// the blob's file offset.
  uint64_t AppendBlob(const void* data, size_t size) {
    const uint64_t blob_offset = offset_;
    out_.write(static_cast<const char*>(data),
               static_cast<std::streamsize>(size));
    crc_.Update(data, size);
    offset_ += size;
    const uint64_t rem = offset_ % kSegmentAlignment;
    if (rem != 0) {
      static constexpr char kZeros[kSegmentAlignment] = {};
      const uint64_t pad = kSegmentAlignment - rem;
      out_.write(kZeros, static_cast<std::streamsize>(pad));
      crc_.Update(kZeros, pad);
      offset_ += pad;
    }
    return blob_offset;
  }

  SectionEntry EndSection() {
    section_.length = offset_ - section_.offset;
    section_.crc32 = crc_.crc();
    return section_;
  }

  uint64_t offset() const { return offset_; }
  bool ok() const { return out_.good(); }

 private:
  std::ostream& out_;
  uint64_t offset_ = 0;
  SectionEntry section_;
  Crc32Accumulator crc_;
};

/// Writes one WAH bitvector: code words to the segment, wire metadata
/// (size, active word/bits, word count, segment offset) to the catalog.
void WriteWahBitvector(const WahBitVector& vec, SegmentWriter& seg,
                       BinaryWriter& catalog) {
  const std::span<const uint32_t> words = vec.code_words();
  const uint64_t offset =
      seg.AppendBlob(words.data(), words.size() * sizeof(uint32_t));
  catalog.WriteU64(vec.size());
  catalog.WriteU32(vec.active_word());
  catalog.WriteU32(static_cast<uint32_t>(vec.active_bits()));
  catalog.WriteU64(words.size());
  catalog.WriteU64(offset);
}

void WriteBitmapIndex(const BitmapIndex& index, SegmentWriter& seg,
                      BinaryWriter& catalog) {
  catalog.WriteU8(static_cast<uint8_t>(index.encoding()));
  catalog.WriteU8(static_cast<uint8_t>(index.missing_strategy()));
  catalog.WriteU64(index.num_rows());
  catalog.WriteU64(index.attributes().size());
  for (const BitmapIndex::AttributeBitmaps& ab : index.attributes()) {
    catalog.WriteU32(ab.cardinality);
    catalog.WriteU8(ab.has_missing ? 1 : 0);
    if (ab.has_missing) WriteWahBitvector(*ab.missing, seg, catalog);
    catalog.WriteU64(ab.values.size());
    for (const WahBitVector& vec : ab.values) {
      WriteWahBitvector(vec, seg, catalog);
    }
  }
}

/// v3 composite blob record: scheme byte, then per attribute the shared
/// missing bitvector (if any) and the per-axis bitmap groups. Bulk WAH
/// words go to the segment file; only wire metadata lands in the catalog,
/// so an open borrows every bitvector zero-copy from the mapping.
void WriteCompositeIndex(const CompositeBitmapIndex& index, SegmentWriter& seg,
                         BinaryWriter& catalog) {
  catalog.WriteU8(static_cast<uint8_t>(index.scheme()));
  catalog.WriteU64(index.num_rows());
  catalog.WriteU64(index.attributes().size());
  for (const CompositeBitmapIndex::AttributeAxes& aa : index.attributes()) {
    catalog.WriteU32(aa.cardinality);
    catalog.WriteU8(aa.has_missing ? 1 : 0);
    if (aa.has_missing) WriteWahBitvector(*aa.missing, seg, catalog);
    catalog.WriteU64(aa.axes.size());
    for (const std::vector<WahBitVector>& axis : aa.axes) {
      catalog.WriteU64(axis.size());
      for (const WahBitVector& vec : axis) {
        WriteWahBitvector(vec, seg, catalog);
      }
    }
  }
}

void WriteVaFile(const VaFile& index, SegmentWriter& seg,
                 BinaryWriter& catalog) {
  catalog.WriteU8(static_cast<uint8_t>(index.options().quantization));
  catalog.WriteU32(static_cast<uint32_t>(index.options().bits_override));
  catalog.WriteU64(index.num_rows());
  catalog.WriteU32(index.RowStrideBits());
  catalog.WriteU64(index.attributes().size());
  for (const VaFile::AttributeQuantizer& quantizer : index.attributes()) {
    catalog.WriteU32(static_cast<uint32_t>(quantizer.bits));
    catalog.WriteU32(quantizer.num_bins);
    catalog.WriteU32(quantizer.cardinality);
    catalog.WriteU32(quantizer.bit_offset);
    catalog.WriteU32Vector(quantizer.code_of_value);
    for (size_t i = 0; i < quantizer.bin_lo.size(); ++i) {
      catalog.WriteI32(quantizer.bin_lo[i]);
      catalog.WriteI32(quantizer.bin_hi[i]);
    }
  }
  const std::span<const uint64_t> packed = index.packed_view();
  const uint64_t offset =
      seg.AppendBlob(packed.data(), packed.size() * sizeof(uint64_t));
  catalog.WriteU64(packed.size());
  catalog.WriteU64(offset);
}

/// Serializes one sealed segment into its self-contained file image:
///
///   magic | column blobs (local rows, one per attribute) | WAH blobs |
///   meta block | u64 meta_offset | u64 meta_size
///
/// Everything 8-aligned; the meta block (a BinaryWriter stream) carries the
/// segment's identity, zone map, column offsets and its index's wire
/// metadata, and is found via the fixed-size tail. The image depends only
/// on the segment's content (never on begin_row, which compaction shifts),
/// so the file is reusable for as long as the content id lives.
Result<std::string> StageSegmentFile(const Table& table,
                                     const internal::Segment& segment) {
  std::ostringstream file_stream;
  SegmentWriter seg(file_stream, kSegmentFileMagic);

  const size_t num_attrs = table.num_attributes();
  std::vector<uint64_t> column_offsets;
  column_offsets.reserve(num_attrs);
  {
    std::vector<Value> staging(segment.num_rows);
    for (size_t a = 0; a < num_attrs; ++a) {
      const Column& column = table.column(a);
      for (uint64_t r = 0; r < segment.num_rows; ++r) {
        staging[r] = column.Get(segment.begin_row + r);
      }
      column_offsets.push_back(
          seg.AppendBlob(staging.data(), staging.size() * sizeof(Value)));
    }
  }

  std::ostringstream meta_stream;
  BinaryWriter meta(meta_stream);
  meta.WriteString(kSegmentMetaMagic);
  meta.WriteU64(segment.content_id);
  meta.WriteU64(segment.num_rows);
  meta.WriteU64(num_attrs);
  meta.WriteU8(static_cast<uint8_t>(segment.index_kind));
  for (const internal::ZoneEntry& zone : segment.zones) {
    meta.WriteI32(zone.min_value);
    meta.WriteI32(zone.max_value);
    meta.WriteU64(zone.missing);
  }
  for (const uint64_t offset : column_offsets) meta.WriteU64(offset);
  switch (segment.index_kind) {
    case IndexKind::kBitmapEquality:
    case IndexKind::kBitmapRange:
    case IndexKind::kBitmapInterval:
    case IndexKind::kBitmapBitSliced:
      WriteBitmapIndex(static_cast<const BitmapIndex&>(*segment.index), seg,
                       meta);
      break;
    case IndexKind::kBitmapMultiComponent:
    case IndexKind::kBitmapHierarchical:
      WriteCompositeIndex(
          static_cast<const CompositeBitmapIndex&>(*segment.index), seg, meta);
      break;
    default:
      return Status::Internal(
          "segment index kind has no per-segment wire form");
  }
  if (!meta.status().ok()) return meta.status();

  const std::string meta_bytes = meta_stream.str();
  const uint64_t tail[2] = {
      seg.AppendBlob(meta_bytes.data(), meta_bytes.size()),
      meta_bytes.size()};
  seg.AppendBlob(tail, sizeof(tail));
  if (!seg.ok()) return Status::Internal("segment file staging failed");
  return file_stream.str();
}

Status EnsureDirectory(const std::string& dir) {
  struct stat st;
  if (::stat(dir.c_str(), &st) == 0) {
    if (!S_ISDIR(st.st_mode)) {
      return Status::IOError("'" + dir + "' exists and is not a directory");
    }
    return Status::OK();
  }
  if (::mkdir(dir.c_str(), 0755) != 0) {
    return Status::IOError("cannot create directory '" + dir +
                           "': " + std::strerror(errno));
  }
  return Status::OK();
}

/// fsync of a file (or, with O_DIRECTORY, of a directory's entry table).
/// Durability is part of the Save contract: a store is only "saved" once
/// it survives power loss.
Status SyncPath(const std::string& path, bool is_directory) {
  const int flags = is_directory ? (O_RDONLY | O_DIRECTORY) : O_RDONLY;
  const int fd = ::open(path.c_str(), flags);
  if (fd < 0) {
    return Status::IOError("cannot open '" + path +
                           "' for fsync: " + std::strerror(errno));
  }
  const int rc = ::fsync(fd);
  const int saved_errno = errno;
  ::close(fd);
  if (rc != 0) {
    return Status::IOError("fsync of '" + path +
                           "' failed: " + std::strerror(saved_errno));
  }
  return Status::OK();
}

Status WriteFileDurably(const std::string& path, const std::string& data) {
  {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    if (!out) return Status::IOError("cannot open '" + path + "' for writing");
    out.write(data.data(), static_cast<std::streamsize>(data.size()));
    out.flush();
    if (!out.good()) return Status::IOError("write to '" + path + "' failed");
  }
  return SyncPath(path, /*is_directory=*/false);
}

/// Highest generation among payload files present in `dir` (0 when none).
/// Scanning the directory — rather than trusting an existing MANIFEST —
/// also steps past leftovers of a crashed save and files referenced by a
/// corrupt manifest, so a new generation never rewrites a file that some
/// open snapshot may have mmap'd.
uint64_t MaxExistingGeneration(const std::string& dir) {
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return 0;
  uint64_t max_gen = 0;
  while (struct dirent* entry = ::readdir(d)) {
    uint64_t gen = 0;
    if (ParsePayloadFileName(entry->d_name, &gen)) {
      max_gen = std::max(max_gen, gen);
    }
  }
  ::closedir(d);
  return max_gen;
}

/// Best-effort garbage collection after a successful commit: payload files
/// of any other generation (superseded stores, debris of crashed saves),
/// segment files the committed catalog does not reference (dropped by
/// compaction, or debris of a crashed save), and a stray manifest temp
/// file. Failures are ignored — the store is already durable, and stale
/// files are invisible to the reader. Unlinking the previous generation
/// does not disturb open snapshots: their mmap pins the inode.
void RemoveStaleFiles(const std::string& dir, uint64_t keep_generation,
                      const std::unordered_set<std::string>& keep_segments) {
  std::vector<std::string> stale;
  DIR* d = ::opendir(dir.c_str());
  if (d == nullptr) return;
  while (struct dirent* entry = ::readdir(d)) {
    uint64_t gen = 0;
    if (ParsePayloadFileName(entry->d_name, &gen) && gen != keep_generation) {
      stale.push_back(entry->d_name);
    } else if (IsSegmentDataFileName(entry->d_name) &&
               keep_segments.find(entry->d_name) == keep_segments.end()) {
      stale.push_back(entry->d_name);
    }
  }
  ::closedir(d);
  for (const std::string& name : stale) {
    std::remove((dir + "/" + name).c_str());
  }
  std::remove((dir + "/" + kManifestTmpFile).c_str());
}

}  // namespace

Status WriteSnapshot(const internal::SnapshotState& state,
                     const std::string& dir, SegmentPersistCache* cache) {
  if (state.table == nullptr) {
    return Status::InvalidArgument("cannot persist a null snapshot");
  }
  INCDB_RETURN_IF_ERROR(EnsureDirectory(dir));
  const Table& table = *state.table;
  const uint64_t num_rows = state.num_rows;

  // Every save writes a fresh generation next to whatever is already
  // there. Nothing an existing MANIFEST points at — and in particular
  // nothing this very snapshot may be serving through an mmap, when `dir`
  // is the directory it was opened from — is ever truncated or rewritten.
  const uint64_t generation = MaxExistingGeneration(dir) + 1;

  // -- seg-<id>.dat, one per sealed segment. Content-immutable, so a
  // cached file that is still on disk at its recorded size is reused
  // without a byte of I/O; only new or compaction-rewritten segments are
  // staged and written. Files land (durably) before the manifest commit —
  // a crash leaves at worst orphans for the next save's GC.
  const internal::SegmentList* segments = state.segments.get();
  std::vector<CachedSegmentFile> segment_files;
  std::unordered_set<std::string> referenced_segment_files;
  if (segments != nullptr) {
    segment_files.reserve(segments->segments.size());
    for (const std::shared_ptr<const internal::Segment>& segment :
         segments->segments) {
      CachedSegmentFile cached;
      bool reuse = false;
      if (cache != nullptr) {
        const MutexLock cache_lock(&cache->mu);
        if (cache->dir != dir) {
          cache->files.clear();
          cache->dir = dir;
        }
        const auto it = cache->files.find(segment->content_id);
        if (it != cache->files.end()) {
          struct stat st;
          if (::stat((dir + "/" + it->second.file_name).c_str(), &st) == 0 &&
              S_ISREG(st.st_mode) &&
              static_cast<uint64_t>(st.st_size) == it->second.file_size) {
            cached = it->second;
            reuse = true;
          } else {
            // The file went away or changed size behind our back; fall
            // through to a fresh write under this generation.
            cache->files.erase(it);
          }
        }
      }
      if (!reuse) {
        INCDB_ASSIGN_OR_RETURN(const std::string bytes,
                               StageSegmentFile(table, *segment));
        cached.file_name = SegmentDataFileName(segment->content_id);
        struct stat st;
        if (::stat((dir + "/" + cached.file_name).c_str(), &st) == 0) {
          // Canonical name taken by a file this writer cannot vouch for
          // (another database's debris): never overwrite, take the
          // generation-qualified alternate instead.
          cached.file_name =
              SegmentDataFileAltName(segment->content_id, generation);
        }
        cached.file_size = bytes.size();
        cached.crc32 = Crc32(bytes.data(), bytes.size());
        INCDB_RETURN_IF_ERROR(
            WriteFileDurably(dir + "/" + cached.file_name, bytes));
        if (cache != nullptr) {
          const MutexLock cache_lock(&cache->mu);
          cache->files[segment->content_id] = cached;
        }
      }
      referenced_segment_files.insert(cached.file_name);
      segment_files.push_back(std::move(cached));
    }
  }
  // Rows the segment files already carry; data.seg holds only the rest.
  const uint64_t first_tail_row =
      segments != nullptr ? segments->sealed_rows : 0;

  // -- data.<gen>.seg: bulk arrays, one checksummed section per column /
  // index.
  const std::string segment_path = dir + "/" + SegmentFileName(generation);
  std::ofstream seg_out(segment_path, std::ios::binary | std::ios::trunc);
  if (!seg_out) {
    return Status::IOError("cannot open '" + segment_path + "' for writing");
  }
  SegmentWriter seg(seg_out);
  std::vector<SectionEntry> sections;

  // Columns: the visible rows the segment files do not carry — everything
  // for an unsegmented store, only the unsealed tail for a segmented one —
  // materialized contiguously (the in-memory column is block-structured;
  // the wire form is a flat Value array the reader can borrow directly).
  const uint64_t tail_rows = num_rows - first_tail_row;
  std::vector<uint64_t> column_offsets;
  column_offsets.reserve(table.num_attributes());
  {
    std::vector<Value> staging;
    for (size_t a = 0; a < table.num_attributes(); ++a) {
      staging.resize(tail_rows);
      const Column& column = table.column(a);
      for (uint64_t r = 0; r < tail_rows; ++r) {
        staging[r] = column.Get(first_tail_row + r);
      }
      seg.BeginSection("column/" + table.schema().attribute(a).name);
      column_offsets.push_back(
          seg.AppendBlob(staging.data(), staging.size() * sizeof(Value)));
      sections.push_back(seg.EndSection());
    }
  }

  // Indexes: bulk arrays to the segment, everything else to the catalog.
  // The catalog body is staged in memory because it interleaves with
  // segment offsets that are only known as blobs are appended.
  std::ostringstream catalog_stream;
  BinaryWriter catalog(catalog_stream);
  catalog.WriteString(kCatalogMagic);
  catalog.WriteU64(num_rows);
  catalog.WriteU64(state.num_deleted);
  catalog.WriteU64(table.num_attributes());
  for (const AttributeSpec& attr : table.schema().attributes()) {
    catalog.WriteString(attr.name);
    catalog.WriteU32(attr.cardinality);
  }
  catalog.WriteU64Vector(state.missing_counts);
  if (state.deleted != nullptr) {
    catalog.WriteU8(1);
    catalog.WriteU64(state.deleted->size());
    catalog.WriteU64Vector(state.deleted->words());
  } else {
    catalog.WriteU8(0);
  }
  // v2 segment table: options (so reopening keeps segmentation enabled
  // even before the first seal), the sealed watermark, and one entry per
  // segment file. begin_row lives here, not in the segment file —
  // compaction shifts it without touching the file's content.
  if (segments != nullptr) {
    catalog.WriteU8(1);
    catalog.WriteU64(segments->options.segment_rows);
    catalog.WriteU8(static_cast<uint8_t>(segments->options.index_kind));
    catalog.WriteU64(segments->sealed_rows);
    catalog.WriteU64(segments->segments.size());
    for (size_t s = 0; s < segments->segments.size(); ++s) {
      const internal::Segment& segment = *segments->segments[s];
      const CachedSegmentFile& file = segment_files[s];
      catalog.WriteU64(segment.content_id);
      catalog.WriteU64(segment.begin_row);
      catalog.WriteU64(segment.num_rows);
      catalog.WriteU8(static_cast<uint8_t>(segment.index_kind));
      catalog.WriteString(file.file_name);
      catalog.WriteU64(file.file_size);
      catalog.WriteU32(file.crc32);
    }
  } else {
    catalog.WriteU8(0);
  }
  for (uint64_t offset : column_offsets) catalog.WriteU64(offset);

  static const std::vector<internal::SnapshotIndexEntry> kNoIndexes;
  const std::vector<internal::SnapshotIndexEntry>& indexes =
      state.indexes != nullptr ? *state.indexes : kNoIndexes;
  catalog.WriteU64(indexes.size());
  for (size_t i = 0; i < indexes.size(); ++i) {
    const internal::SnapshotIndexEntry& entry = indexes[i];
    catalog.WriteU8(static_cast<uint8_t>(entry.kind));
    catalog.WriteU64(entry.covered_rows);
    seg.BeginSection("index/" + std::to_string(i) + "/" +
                     std::to_string(static_cast<int>(entry.kind)));
    switch (entry.kind) {
      case IndexKind::kBitmapEquality:
      case IndexKind::kBitmapRange:
      case IndexKind::kBitmapInterval:
      case IndexKind::kBitmapBitSliced:
        WriteBitmapIndex(static_cast<const BitmapIndex&>(*entry.index), seg,
                         catalog);
        break;
      case IndexKind::kBitmapMultiComponent:
      case IndexKind::kBitmapHierarchical:
        WriteCompositeIndex(
            static_cast<const CompositeBitmapIndex&>(*entry.index), seg,
            catalog);
        break;
      case IndexKind::kVaFile:
      case IndexKind::kVaPlusFile:
        WriteVaFile(static_cast<const VaFile&>(*entry.index), seg, catalog);
        break;
      case IndexKind::kMosaic: {
        const Status status =
            static_cast<const MosaicIndex&>(*entry.index).SaveTo(catalog);
        if (!status.ok()) return status;
        break;
      }
      case IndexKind::kBitstringAugmented:
        // No stable wire form (R-tree node graph); rebuilt on open. The
        // kind + covered_rows record above is the whole payload.
        break;
      case IndexKind::kSequentialScan:
        return Status::Internal(
            "sequential scan must not appear in the index registry");
    }
    sections.push_back(seg.EndSection());
  }

  seg_out.flush();
  if (!seg.ok()) {
    return Status::IOError("write to '" + segment_path + "' failed");
  }
  seg_out.close();
  if (!seg_out.good()) {
    return Status::IOError("close of '" + segment_path + "' failed");
  }
  INCDB_RETURN_IF_ERROR(SyncPath(segment_path, /*is_directory=*/false));
  const uint64_t segment_size = seg.offset();

  // -- catalog.<gen>.bin (one section spanning the whole file).
  if (!catalog.status().ok()) return catalog.status();
  const std::string catalog_bytes = catalog_stream.str();
  SectionEntry catalog_section;
  catalog_section.name = "catalog";
  catalog_section.file = SectionFile::kCatalog;
  catalog_section.offset = 0;
  catalog_section.length = catalog_bytes.size();
  catalog_section.crc32 = Crc32(catalog_bytes.data(), catalog_bytes.size());
  sections.insert(sections.begin(), catalog_section);
  INCDB_RETURN_IF_ERROR(
      WriteFileDurably(dir + "/" + CatalogFileName(generation),
                       catalog_bytes));

  // -- MANIFEST: the commit point. Both payload files are durable by now,
  // so renaming the self-checksummed manifest over the old one atomically
  // switches the store from the previous generation to this one; a crash
  // on either side of the rename leaves a complete, openable store.
  std::ostringstream manifest_stream;
  BinaryWriter manifest(manifest_stream);
  manifest.WriteString(kManifestMagic);
  manifest.WriteU32(kFormatVersion);
  manifest.WriteU64(generation);
  manifest.WriteU64(catalog_bytes.size());
  manifest.WriteU64(segment_size);
  manifest.WriteU64(sections.size());
  for (const SectionEntry& section : sections) {
    manifest.WriteString(section.name);
    manifest.WriteU8(static_cast<uint8_t>(section.file));
    manifest.WriteU64(section.offset);
    manifest.WriteU64(section.length);
    manifest.WriteU32(section.crc32);
  }
  if (!manifest.status().ok()) return manifest.status();
  std::string manifest_bytes = manifest_stream.str();
  const uint32_t manifest_crc =
      Crc32(manifest_bytes.data(), manifest_bytes.size());
  for (int b = 0; b < 4; ++b) {
    manifest_bytes.push_back(
        static_cast<char>((manifest_crc >> (8 * b)) & 0xFF));
  }
  const std::string manifest_tmp = dir + "/" + kManifestTmpFile;
  const std::string manifest_path = dir + "/" + kManifestFile;
  INCDB_RETURN_IF_ERROR(WriteFileDurably(manifest_tmp, manifest_bytes));
  if (::rename(manifest_tmp.c_str(), manifest_path.c_str()) != 0) {
    return Status::IOError("cannot commit '" + manifest_path +
                           "': " + std::strerror(errno));
  }
  // Make the rename (and the new payload files' directory entries)
  // durable before declaring success or deleting the old generation.
  INCDB_RETURN_IF_ERROR(SyncPath(dir, /*is_directory=*/true));
  RemoveStaleFiles(dir, generation, referenced_segment_files);
  if (cache != nullptr) {
    // Shrink the cache to exactly the committed set so dropped segments
    // (compaction) do not pin stale entries forever.
    const MutexLock cache_lock(&cache->mu);
    if (cache->dir == dir) {
      std::erase_if(cache->files, [&](const auto& entry) {
        return referenced_segment_files.find(entry.second.file_name) ==
               referenced_segment_files.end();
      });
    }
  }
  return Status::OK();
}

}  // namespace storage
}  // namespace incdb
