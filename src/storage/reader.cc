#include "storage/reader.h"

#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

#include "baselines/mosaic.h"
#include "bitmap/bitmap_index.h"
#include "bitmap/composite_index.h"
#include "common/io.h"
#include "storage/checksum.h"
#include "storage/format.h"
#include "vafile/va_file.h"

namespace incdb {
namespace storage {

namespace {

Result<std::string> ReadWholeFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open '" + path + "' for reading");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return Status::IOError("read of '" + path + "' failed");
  return buffer.str();
}

Result<Manifest> ReadManifest(const std::string& path) {
  INCDB_ASSIGN_OR_RETURN(std::string bytes, ReadWholeFile(path));
  if (bytes.size() < sizeof(uint32_t)) {
    return Status::IOError("'" + path + "': truncated manifest");
  }
  // The trailing 4 bytes are a little-endian CRC-32 over everything before
  // them; verify before trusting any field.
  const size_t body_size = bytes.size() - sizeof(uint32_t);
  uint32_t stored_crc = 0;
  for (int b = 3; b >= 0; --b) {
    stored_crc = (stored_crc << 8) |
                 static_cast<uint8_t>(bytes[body_size + static_cast<size_t>(b)]);
  }
  if (stored_crc != Crc32(bytes.data(), body_size)) {
    return Status::IOError("'" + path + "': manifest checksum mismatch");
  }
  std::istringstream in(bytes);
  BinaryReader reader(in);
  INCDB_ASSIGN_OR_RETURN(std::string magic, reader.ReadString(64));
  if (magic != kManifestMagic) {
    return Status::IOError("'" + path + "' is not an incdb store manifest");
  }
  Manifest manifest;
  INCDB_ASSIGN_OR_RETURN(manifest.format_version, reader.ReadU32());
  if (manifest.format_version > kFormatVersion) {
    return Status::IOError(
        "'" + path + "': format version " +
        std::to_string(manifest.format_version) +
        " is newer than this build understands (max " +
        std::to_string(kFormatVersion) + ")");
  }
  INCDB_ASSIGN_OR_RETURN(manifest.generation, reader.ReadU64());
  if (manifest.generation == 0) {
    return Status::IOError("'" + path + "': corrupted store generation");
  }
  INCDB_ASSIGN_OR_RETURN(manifest.catalog_size, reader.ReadU64());
  INCDB_ASSIGN_OR_RETURN(manifest.segment_size, reader.ReadU64());
  INCDB_ASSIGN_OR_RETURN(uint64_t num_sections, reader.ReadU64());
  if (num_sections > (1u << 20)) {
    return Status::IOError("'" + path + "': implausible section count");
  }
  manifest.sections.reserve(num_sections);
  for (uint64_t s = 0; s < num_sections; ++s) {
    SectionEntry section;
    INCDB_ASSIGN_OR_RETURN(section.name, reader.ReadString(1 << 16));
    INCDB_ASSIGN_OR_RETURN(uint8_t file, reader.ReadU8());
    if (file > static_cast<uint8_t>(SectionFile::kSegment)) {
      return Status::IOError("'" + path + "': corrupted section table");
    }
    section.file = static_cast<SectionFile>(file);
    INCDB_ASSIGN_OR_RETURN(section.offset, reader.ReadU64());
    INCDB_ASSIGN_OR_RETURN(section.length, reader.ReadU64());
    INCDB_ASSIGN_OR_RETURN(section.crc32, reader.ReadU32());
    manifest.sections.push_back(std::move(section));
  }
  return manifest;
}

/// A bounds- and alignment-checked view of `count` elements of T at a byte
/// offset of the mapped segment.
template <typename T>
Result<const T*> SliceArray(const MappedFile& map, uint64_t offset,
                            uint64_t count) {
  if (offset % alignof(T) != 0) {
    return Status::IOError("store segment: misaligned array at offset " +
                           std::to_string(offset));
  }
  if (count > map.size() / sizeof(T)) {
    return Status::IOError("store segment: truncated array at offset " +
                           std::to_string(offset));
  }
  const uint8_t* bytes = map.Slice(offset, count * sizeof(T));
  if (bytes == nullptr) {
    return Status::IOError("store segment: truncated array at offset " +
                           std::to_string(offset));
  }
  return reinterpret_cast<const T*>(bytes);
}

Result<WahBitVector> ReadWahBitvector(BinaryReader& catalog,
                                      const MappedFile& map,
                                      bool verify) {
  INCDB_ASSIGN_OR_RETURN(uint64_t size, catalog.ReadU64());
  INCDB_ASSIGN_OR_RETURN(uint32_t active_word, catalog.ReadU32());
  INCDB_ASSIGN_OR_RETURN(uint32_t active_bits, catalog.ReadU32());
  INCDB_ASSIGN_OR_RETURN(uint64_t word_count, catalog.ReadU64());
  INCDB_ASSIGN_OR_RETURN(uint64_t offset, catalog.ReadU64());
  INCDB_ASSIGN_OR_RETURN(const uint32_t* words,
                         SliceArray<uint32_t>(map, offset, word_count));
  INCDB_ASSIGN_OR_RETURN(
      WahBitVector vec,
      WahBitVector::FromBorrowed(std::span<const uint32_t>(words, word_count),
                                 active_word, static_cast<int>(active_bits),
                                 size));
  if (verify) INCDB_RETURN_IF_ERROR(vec.ValidateStructure());
  return vec;
}

Result<std::shared_ptr<const IncompleteIndex>> ReadBitmapIndex(
    BinaryReader& catalog, const MappedFile& map, IndexKind kind,
    size_t num_attributes, bool verify) {
  BitmapIndex::Options options;
  INCDB_ASSIGN_OR_RETURN(uint8_t encoding, catalog.ReadU8());
  INCDB_ASSIGN_OR_RETURN(uint8_t strategy, catalog.ReadU8());
  if (encoding > static_cast<uint8_t>(BitmapEncoding::kBitSliced) ||
      strategy > static_cast<uint8_t>(MissingStrategy::kAllZeros)) {
    return Status::IOError("store catalog: corrupted bitmap options");
  }
  options.encoding = static_cast<BitmapEncoding>(encoding);
  options.missing_strategy = static_cast<MissingStrategy>(strategy);
  const BitmapEncoding expected =
      kind == IndexKind::kBitmapEquality     ? BitmapEncoding::kEquality
      : kind == IndexKind::kBitmapRange      ? BitmapEncoding::kRange
      : kind == IndexKind::kBitmapInterval   ? BitmapEncoding::kInterval
                                             : BitmapEncoding::kBitSliced;
  if (options.encoding != expected) {
    return Status::IOError(
        "store catalog: bitmap encoding does not match its registry kind");
  }
  INCDB_ASSIGN_OR_RETURN(uint64_t num_rows, catalog.ReadU64());
  INCDB_ASSIGN_OR_RETURN(uint64_t num_attrs, catalog.ReadU64());
  if (num_attrs != num_attributes) {
    return Status::IOError(
        "store catalog: bitmap attribute count does not match the table");
  }
  std::vector<BitmapIndex::AttributeBitmaps> attributes;
  attributes.reserve(num_attrs);
  for (uint64_t a = 0; a < num_attrs; ++a) {
    BitmapIndex::AttributeBitmaps ab;
    INCDB_ASSIGN_OR_RETURN(ab.cardinality, catalog.ReadU32());
    INCDB_ASSIGN_OR_RETURN(uint8_t has_missing, catalog.ReadU8());
    if (has_missing > 1) {
      return Status::IOError("store catalog: corrupted bitmap flags");
    }
    if (has_missing != 0) {
      INCDB_ASSIGN_OR_RETURN(WahBitVector missing,
                             ReadWahBitvector(catalog, map, verify));
      ab.missing = std::move(missing);
      ab.has_missing = true;
    }
    INCDB_ASSIGN_OR_RETURN(uint64_t num_values, catalog.ReadU64());
    if (num_values > (1u << 26)) {
      return Status::IOError("store catalog: implausible bitmap count");
    }
    ab.values.reserve(num_values);
    for (uint64_t j = 0; j < num_values; ++j) {
      INCDB_ASSIGN_OR_RETURN(WahBitVector vec,
                             ReadWahBitvector(catalog, map, verify));
      ab.values.push_back(std::move(vec));
    }
    attributes.push_back(std::move(ab));
  }
  INCDB_ASSIGN_OR_RETURN(
      BitmapIndex index,
      BitmapIndex::FromParts(options, num_rows, std::move(attributes)));
  return std::shared_ptr<const IncompleteIndex>(
      std::make_shared<BitmapIndex>(std::move(index)));
}

Result<std::shared_ptr<const IncompleteIndex>> ReadVaFile(
    BinaryReader& catalog, const MappedFile& map, IndexKind kind,
    const Table& table) {
  VaFile::Options options;
  INCDB_ASSIGN_OR_RETURN(uint8_t quantization, catalog.ReadU8());
  if (quantization > static_cast<uint8_t>(VaQuantization::kEquiDepth)) {
    return Status::IOError("store catalog: corrupted VA-file options");
  }
  options.quantization = static_cast<VaQuantization>(quantization);
  const VaQuantization expected = kind == IndexKind::kVaFile
                                      ? VaQuantization::kUniform
                                      : VaQuantization::kEquiDepth;
  if (options.quantization != expected) {
    return Status::IOError(
        "store catalog: VA-file quantization does not match its registry "
        "kind");
  }
  INCDB_ASSIGN_OR_RETURN(uint32_t bits_override, catalog.ReadU32());
  options.bits_override = static_cast<int>(bits_override);
  INCDB_ASSIGN_OR_RETURN(uint64_t num_rows, catalog.ReadU64());
  INCDB_ASSIGN_OR_RETURN(uint32_t stride, catalog.ReadU32());
  INCDB_ASSIGN_OR_RETURN(uint64_t num_attrs, catalog.ReadU64());
  if (num_attrs != table.num_attributes()) {
    return Status::IOError(
        "store catalog: VA-file attribute count does not match the table");
  }
  std::vector<VaFile::AttributeQuantizer> attributes;
  attributes.reserve(num_attrs);
  for (uint64_t a = 0; a < num_attrs; ++a) {
    VaFile::AttributeQuantizer quantizer;
    INCDB_ASSIGN_OR_RETURN(uint32_t bits, catalog.ReadU32());
    quantizer.bits = static_cast<int>(bits);
    INCDB_ASSIGN_OR_RETURN(quantizer.num_bins, catalog.ReadU32());
    INCDB_ASSIGN_OR_RETURN(quantizer.cardinality, catalog.ReadU32());
    INCDB_ASSIGN_OR_RETURN(quantizer.bit_offset, catalog.ReadU32());
    INCDB_ASSIGN_OR_RETURN(quantizer.code_of_value, catalog.ReadU32Vector());
    if (quantizer.num_bins > (1u << 30)) {
      return Status::IOError("store catalog: implausible VA-file bin count");
    }
    quantizer.bin_lo.resize(quantizer.num_bins);
    quantizer.bin_hi.resize(quantizer.num_bins);
    for (uint32_t i = 0; i < quantizer.num_bins; ++i) {
      INCDB_ASSIGN_OR_RETURN(quantizer.bin_lo[i], catalog.ReadI32());
      INCDB_ASSIGN_OR_RETURN(quantizer.bin_hi[i], catalog.ReadI32());
    }
    attributes.push_back(std::move(quantizer));
  }
  INCDB_ASSIGN_OR_RETURN(uint64_t word_count, catalog.ReadU64());
  INCDB_ASSIGN_OR_RETURN(uint64_t offset, catalog.ReadU64());
  INCDB_ASSIGN_OR_RETURN(const uint64_t* packed,
                         SliceArray<uint64_t>(map, offset, word_count));
  INCDB_ASSIGN_OR_RETURN(
      VaFile file,
      VaFile::FromParts(&table, options, std::move(attributes), stride,
                        num_rows,
                        std::span<const uint64_t>(packed, word_count)));
  return std::shared_ptr<const IncompleteIndex>(
      std::make_shared<VaFile>(std::move(file)));
}

/// Inverse of WriteCompositeIndex (v3 blob record): wire metadata from the
/// catalog stream, WAH code words borrowed zero-copy from the mapping.
/// FromParts re-derives the slicer geometry from (scheme, cardinality) and
/// validates every axis shape against it.
Result<std::shared_ptr<const IncompleteIndex>> ReadCompositeIndex(
    BinaryReader& catalog, const MappedFile& map, IndexKind kind,
    size_t num_attributes, bool verify) {
  CompositeBitmapIndex::Options options;
  INCDB_ASSIGN_OR_RETURN(uint8_t scheme, catalog.ReadU8());
  if (scheme > static_cast<uint8_t>(SlotScheme::kHierarchical)) {
    return Status::IOError("store catalog: corrupted composite scheme");
  }
  options.scheme = static_cast<SlotScheme>(scheme);
  const SlotScheme expected = kind == IndexKind::kBitmapMultiComponent
                                  ? SlotScheme::kMultiComponent
                                  : SlotScheme::kHierarchical;
  if (options.scheme != expected) {
    return Status::IOError(
        "store catalog: composite scheme does not match its registry kind");
  }
  INCDB_ASSIGN_OR_RETURN(uint64_t num_rows, catalog.ReadU64());
  INCDB_ASSIGN_OR_RETURN(uint64_t num_attrs, catalog.ReadU64());
  if (num_attrs != num_attributes) {
    return Status::IOError(
        "store catalog: composite attribute count does not match the table");
  }
  std::vector<CompositeBitmapIndex::AttributeAxes> attributes;
  attributes.reserve(num_attrs);
  for (uint64_t a = 0; a < num_attrs; ++a) {
    CompositeBitmapIndex::AttributeAxes aa;
    INCDB_ASSIGN_OR_RETURN(aa.cardinality, catalog.ReadU32());
    INCDB_ASSIGN_OR_RETURN(uint8_t has_missing, catalog.ReadU8());
    if (has_missing > 1) {
      return Status::IOError("store catalog: corrupted composite flags");
    }
    if (has_missing != 0) {
      INCDB_ASSIGN_OR_RETURN(WahBitVector missing,
                             ReadWahBitvector(catalog, map, verify));
      aa.missing = std::move(missing);
      aa.has_missing = true;
    }
    INCDB_ASSIGN_OR_RETURN(uint64_t num_axes, catalog.ReadU64());
    if (num_axes > 64) {
      return Status::IOError("store catalog: implausible axis count");
    }
    aa.axes.reserve(num_axes);
    for (uint64_t x = 0; x < num_axes; ++x) {
      INCDB_ASSIGN_OR_RETURN(uint64_t num_bitmaps, catalog.ReadU64());
      if (num_bitmaps > (1u << 26)) {
        return Status::IOError("store catalog: implausible bitmap count");
      }
      std::vector<WahBitVector> axis;
      axis.reserve(num_bitmaps);
      for (uint64_t j = 0; j < num_bitmaps; ++j) {
        INCDB_ASSIGN_OR_RETURN(WahBitVector vec,
                               ReadWahBitvector(catalog, map, verify));
        axis.push_back(std::move(vec));
      }
      aa.axes.push_back(std::move(axis));
    }
    attributes.push_back(std::move(aa));
  }
  INCDB_ASSIGN_OR_RETURN(
      CompositeBitmapIndex index,
      CompositeBitmapIndex::FromParts(options, num_rows,
                                      std::move(attributes)));
  return std::shared_ptr<const IncompleteIndex>(
      std::make_shared<CompositeBitmapIndex>(std::move(index)));
}

/// One row of the catalog's v2 segment table.
struct SegmentCatalogEntry {
  uint64_t content_id = 0;
  uint64_t begin_row = 0;
  uint64_t num_rows = 0;
  IndexKind kind = IndexKind::kBitmapEquality;
  std::string file_name;
  uint64_t file_size = 0;
  uint32_t crc32 = 0;
};

struct LoadedSegment {
  std::shared_ptr<MappedFile> mapping;
  std::shared_ptr<const internal::Segment> segment;
  /// Per-attribute borrowed value arrays (num_rows each) into `mapping`.
  std::vector<const Value*> columns;
};

/// Maps one seg-<id>.dat independently and reconstructs the segment from
/// its trailing meta block, cross-checking every identity field against
/// the catalog entry. All corruption surfaces as a Status.
Result<LoadedSegment> OpenSegmentFile(const std::string& dir,
                                      const SegmentCatalogEntry& entry,
                                      uint64_t num_attrs, bool verify) {
  const std::string path = dir + "/" + entry.file_name;
  LoadedSegment loaded;
  INCDB_ASSIGN_OR_RETURN(loaded.mapping, MappedFile::Open(path));
  const MappedFile& map = *loaded.mapping;
  if (map.size() != entry.file_size) {
    return Status::IOError("'" + path + "': truncated segment file (" +
                           std::to_string(map.size()) + " bytes, catalog " +
                           "says " + std::to_string(entry.file_size) + ")");
  }
  constexpr uint64_t kTailBytes = 2 * sizeof(uint64_t);
  if (map.size() < sizeof(kSegmentFileMagic) + kTailBytes ||
      std::memcmp(map.data(), kSegmentFileMagic,
                  sizeof(kSegmentFileMagic)) != 0) {
    return Status::IOError("'" + path + "' is not an incdb segment file");
  }
  if (verify && Crc32(map.data(), map.size()) != entry.crc32) {
    return Status::IOError("'" + path + "': segment file checksum mismatch");
  }
  uint64_t tail[2];
  std::memcpy(tail, map.data() + map.size() - kTailBytes, kTailBytes);
  const uint64_t meta_offset = tail[0];
  const uint64_t meta_size = tail[1];
  if (meta_offset < sizeof(kSegmentFileMagic) ||
      meta_offset > map.size() - kTailBytes ||
      meta_size > map.size() - kTailBytes - meta_offset) {
    return Status::IOError("'" + path + "': corrupted meta-block pointer");
  }
  std::istringstream meta_in(
      std::string(reinterpret_cast<const char*>(map.data()) + meta_offset,
                  meta_size));
  BinaryReader meta(meta_in);
  INCDB_ASSIGN_OR_RETURN(std::string magic, meta.ReadString(64));
  if (magic != kSegmentMetaMagic) {
    return Status::IOError("'" + path + "': corrupted segment meta block");
  }
  INCDB_ASSIGN_OR_RETURN(uint64_t content_id, meta.ReadU64());
  INCDB_ASSIGN_OR_RETURN(uint64_t num_rows, meta.ReadU64());
  INCDB_ASSIGN_OR_RETURN(uint64_t meta_attrs, meta.ReadU64());
  INCDB_ASSIGN_OR_RETURN(uint8_t kind_byte, meta.ReadU8());
  if (content_id != entry.content_id || num_rows != entry.num_rows ||
      meta_attrs != num_attrs ||
      kind_byte != static_cast<uint8_t>(entry.kind)) {
    return Status::IOError(
        "'" + path + "': segment identity does not match the catalog");
  }
  std::vector<internal::ZoneEntry> zones;
  zones.reserve(num_attrs);
  for (uint64_t a = 0; a < num_attrs; ++a) {
    internal::ZoneEntry zone;
    INCDB_ASSIGN_OR_RETURN(zone.min_value, meta.ReadI32());
    INCDB_ASSIGN_OR_RETURN(zone.max_value, meta.ReadI32());
    INCDB_ASSIGN_OR_RETURN(zone.missing, meta.ReadU64());
    if (zone.missing > num_rows) {
      return Status::IOError("'" + path + "': corrupted zone map");
    }
    zones.push_back(zone);
  }
  loaded.columns.reserve(num_attrs);
  for (uint64_t a = 0; a < num_attrs; ++a) {
    INCDB_ASSIGN_OR_RETURN(uint64_t offset, meta.ReadU64());
    INCDB_ASSIGN_OR_RETURN(const Value* values,
                           SliceArray<Value>(map, offset, num_rows));
    loaded.columns.push_back(values);
  }
  std::shared_ptr<const IncompleteIndex> index;
  if (entry.kind == IndexKind::kBitmapMultiComponent ||
      entry.kind == IndexKind::kBitmapHierarchical) {
    INCDB_ASSIGN_OR_RETURN(
        index, ReadCompositeIndex(meta, map, entry.kind, num_attrs, verify));
  } else {
    INCDB_ASSIGN_OR_RETURN(
        index, ReadBitmapIndex(meta, map, entry.kind, num_attrs, verify));
  }
  auto segment = std::make_shared<internal::Segment>();
  segment->content_id = entry.content_id;
  segment->begin_row = entry.begin_row;
  segment->num_rows = entry.num_rows;
  segment->index_kind = entry.kind;
  segment->index = std::move(index);
  segment->zones = std::move(zones);
  loaded.segment = std::move(segment);
  return loaded;
}

}  // namespace

Result<OpenedStore> OpenStore(const std::string& dir,
                              const OpenOptions& options) {
  INCDB_ASSIGN_OR_RETURN(Manifest manifest,
                         ReadManifest(dir + "/" + kManifestFile));

  // -- catalog.<gen>.bin: small, read eagerly; verified against its
  // section CRC.
  const std::string catalog_path =
      dir + "/" + CatalogFileName(manifest.generation);
  INCDB_ASSIGN_OR_RETURN(std::string catalog_bytes,
                         ReadWholeFile(catalog_path));
  if (catalog_bytes.size() != manifest.catalog_size) {
    return Status::IOError("'" + catalog_path + "': truncated catalog (" +
                           std::to_string(catalog_bytes.size()) + " bytes, " +
                           "manifest says " +
                           std::to_string(manifest.catalog_size) + ")");
  }

  // -- data.<gen>.seg: mmap'd; never copied.
  const std::string segment_path =
      dir + "/" + SegmentFileName(manifest.generation);
  INCDB_ASSIGN_OR_RETURN(std::shared_ptr<MappedFile> mapping,
                         MappedFile::Open(segment_path));
  if (mapping->size() != manifest.segment_size) {
    return Status::IOError("'" + segment_path + "': truncated segment (" +
                           std::to_string(mapping->size()) + " bytes, " +
                           "manifest says " +
                           std::to_string(manifest.segment_size) + ")");
  }
  if (mapping->size() < sizeof(kSegmentMagic) ||
      std::memcmp(mapping->data(), kSegmentMagic, sizeof(kSegmentMagic)) !=
          0) {
    return Status::IOError("'" + segment_path +
                           "' is not an incdb store segment");
  }

  if (options.verify_checksums) {
    for (const SectionEntry& section : manifest.sections) {
      if (section.file == SectionFile::kCatalog) {
        if (section.offset > catalog_bytes.size() ||
            section.length > catalog_bytes.size() - section.offset) {
          return Status::IOError("'" + catalog_path +
                                 "': section '" + section.name +
                                 "' extends past the file");
        }
        if (Crc32(catalog_bytes.data() + section.offset, section.length) !=
            section.crc32) {
          return Status::IOError("'" + catalog_path +
                                 "': checksum mismatch in section '" +
                                 section.name + "'");
        }
      } else {
        const uint8_t* bytes = mapping->Slice(section.offset, section.length);
        if (bytes == nullptr) {
          return Status::IOError("'" + segment_path +
                                 "': section '" + section.name +
                                 "' extends past the file");
        }
        if (Crc32(bytes, section.length) != section.crc32) {
          return Status::IOError("'" + segment_path +
                                 "': checksum mismatch in section '" +
                                 section.name + "'");
        }
      }
    }
  }

  // -- Parse the catalog into an OpenedStore.
  std::istringstream catalog_in(catalog_bytes);
  BinaryReader catalog(catalog_in);
  INCDB_ASSIGN_OR_RETURN(std::string magic, catalog.ReadString(64));
  if (magic != kCatalogMagic) {
    return Status::IOError("'" + catalog_path +
                           "' is not an incdb store catalog");
  }
  OpenedStore store;
  store.mapping = mapping;
  INCDB_ASSIGN_OR_RETURN(store.num_rows, catalog.ReadU64());
  INCDB_ASSIGN_OR_RETURN(store.num_deleted, catalog.ReadU64());
  INCDB_ASSIGN_OR_RETURN(uint64_t num_attrs, catalog.ReadU64());
  if (num_attrs > (1u << 20)) {
    return Status::IOError("'" + catalog_path +
                           "': implausible attribute count");
  }
  std::vector<AttributeSpec> specs;
  specs.reserve(num_attrs);
  for (uint64_t a = 0; a < num_attrs; ++a) {
    AttributeSpec spec;
    INCDB_ASSIGN_OR_RETURN(spec.name, catalog.ReadString(1 << 16));
    INCDB_ASSIGN_OR_RETURN(spec.cardinality, catalog.ReadU32());
    specs.push_back(std::move(spec));
  }
  Schema schema(std::move(specs));
  INCDB_RETURN_IF_ERROR(schema.Validate());
  INCDB_ASSIGN_OR_RETURN(store.missing_counts, catalog.ReadU64Vector());
  if (store.missing_counts.size() != num_attrs) {
    return Status::IOError("'" + catalog_path +
                           "': missing-count table size mismatch");
  }
  INCDB_ASSIGN_OR_RETURN(uint8_t has_deleted, catalog.ReadU8());
  if (has_deleted > 1) {
    return Status::IOError("'" + catalog_path + "': corrupted deletion mask");
  }
  if (has_deleted != 0) {
    INCDB_ASSIGN_OR_RETURN(uint64_t deleted_size, catalog.ReadU64());
    INCDB_ASSIGN_OR_RETURN(std::vector<uint64_t> words,
                           catalog.ReadU64Vector());
    if (deleted_size > store.num_rows) {
      return Status::IOError("'" + catalog_path +
                             "': deletion mask longer than the table");
    }
    INCDB_ASSIGN_OR_RETURN(BitVector deleted,
                           BitVector::FromWords(deleted_size,
                                                std::move(words)));
    if (deleted.Count() != store.num_deleted) {
      return Status::IOError("'" + catalog_path +
                             "': deletion mask population mismatch");
    }
    store.deleted = std::make_shared<const BitVector>(std::move(deleted));
  } else if (store.num_deleted != 0) {
    return Status::IOError("'" + catalog_path +
                           "': deleted rows recorded without a mask");
  }

  // v2 segment table: options + sealed watermark + per-file entries. A v1
  // store (or an unsegmented v2 one) skips straight to the columns.
  bool has_segments = false;
  SegmentOptions seg_options;
  uint64_t sealed_rows = 0;
  std::vector<SegmentCatalogEntry> segment_entries;
  if (manifest.format_version >= 2) {
    INCDB_ASSIGN_OR_RETURN(uint8_t seg_flag, catalog.ReadU8());
    if (seg_flag > 1) {
      return Status::IOError("'" + catalog_path +
                             "': corrupted segment table");
    }
    if (seg_flag != 0) {
      has_segments = true;
      INCDB_ASSIGN_OR_RETURN(seg_options.segment_rows, catalog.ReadU64());
      INCDB_ASSIGN_OR_RETURN(uint8_t options_kind, catalog.ReadU8());
      if (seg_options.segment_rows == 0 ||
          options_kind > static_cast<uint8_t>(IndexKind::kBitmapHierarchical)
          || !IsSegmentIndexKind(static_cast<IndexKind>(options_kind))) {
        return Status::IOError("'" + catalog_path +
                               "': corrupted segment options");
      }
      seg_options.index_kind = static_cast<IndexKind>(options_kind);
      INCDB_ASSIGN_OR_RETURN(sealed_rows, catalog.ReadU64());
      if (sealed_rows > store.num_rows) {
        return Status::IOError(
            "'" + catalog_path +
            "': sealed watermark exceeds the visible rows");
      }
      INCDB_ASSIGN_OR_RETURN(uint64_t num_segments, catalog.ReadU64());
      if (num_segments > (1u << 22)) {
        return Status::IOError("'" + catalog_path +
                               "': implausible segment count");
      }
      segment_entries.reserve(num_segments);
      uint64_t next_begin = 0;
      for (uint64_t s = 0; s < num_segments; ++s) {
        SegmentCatalogEntry entry;
        INCDB_ASSIGN_OR_RETURN(entry.content_id, catalog.ReadU64());
        INCDB_ASSIGN_OR_RETURN(entry.begin_row, catalog.ReadU64());
        INCDB_ASSIGN_OR_RETURN(entry.num_rows, catalog.ReadU64());
        INCDB_ASSIGN_OR_RETURN(uint8_t kind_byte, catalog.ReadU8());
        if (kind_byte >
                static_cast<uint8_t>(IndexKind::kBitmapHierarchical) ||
            !IsSegmentIndexKind(static_cast<IndexKind>(kind_byte))) {
          return Status::IOError("'" + catalog_path +
                                 "': corrupted segment index kind");
        }
        entry.kind = static_cast<IndexKind>(kind_byte);
        INCDB_ASSIGN_OR_RETURN(entry.file_name, catalog.ReadString(1 << 12));
        if (!IsSegmentDataFileName(entry.file_name) ||
            entry.file_name.find('/') != std::string::npos) {
          return Status::IOError("'" + catalog_path +
                                 "': implausible segment file name");
        }
        INCDB_ASSIGN_OR_RETURN(entry.file_size, catalog.ReadU64());
        INCDB_ASSIGN_OR_RETURN(entry.crc32, catalog.ReadU32());
        if (entry.begin_row != next_begin || entry.num_rows == 0) {
          return Status::IOError("'" + catalog_path +
                                 "': non-contiguous segment table");
        }
        next_begin += entry.num_rows;
        segment_entries.push_back(std::move(entry));
      }
      if (next_begin != sealed_rows) {
        return Status::IOError(
            "'" + catalog_path +
            "': segment rows do not sum to the sealed watermark");
      }
    }
  }

  // Columns in the data segment: everything for an unsegmented store, only
  // the unsealed tail for a segmented one (sealed rows live in the segment
  // files, opened below).
  const uint64_t tail_rows = store.num_rows - sealed_rows;
  std::vector<const Value*> tail_columns;
  tail_columns.reserve(num_attrs);
  for (uint64_t a = 0; a < num_attrs; ++a) {
    INCDB_ASSIGN_OR_RETURN(uint64_t offset, catalog.ReadU64());
    INCDB_ASSIGN_OR_RETURN(const Value* values,
                           SliceArray<Value>(*mapping, offset, tail_rows));
    tail_columns.push_back(values);
  }

  // Segment files: each mapped independently and verified on its own, so
  // open cost scales with the segment count, not the data bytes.
  std::vector<std::shared_ptr<const internal::Segment>> loaded_segments;
  std::vector<std::vector<const Value*>> segment_columns;
  loaded_segments.reserve(segment_entries.size());
  segment_columns.reserve(segment_entries.size());
  for (const SegmentCatalogEntry& entry : segment_entries) {
    INCDB_ASSIGN_OR_RETURN(
        LoadedSegment loaded,
        OpenSegmentFile(dir, entry, num_attrs, options.verify_checksums));
    store.segment_mappings.push_back(std::move(loaded.mapping));
    store.segment_files.push_back(OpenedSegmentFile{
        entry.content_id, entry.file_name, entry.file_size, entry.crc32});
    loaded_segments.push_back(std::move(loaded.segment));
    segment_columns.push_back(std::move(loaded.columns));
  }

  // Stitch each attribute's column from the segment extents plus the tail.
  std::vector<Column> columns;
  columns.reserve(num_attrs);
  for (uint64_t a = 0; a < num_attrs; ++a) {
    std::vector<Column::BorrowedExtent> extents;
    extents.reserve(loaded_segments.size() + 1);
    for (size_t s = 0; s < loaded_segments.size(); ++s) {
      extents.push_back(Column::BorrowedExtent{
          segment_columns[s][a], loaded_segments[s]->num_rows});
    }
    extents.push_back(Column::BorrowedExtent{tail_columns[a], tail_rows});
    columns.push_back(
        Column::BorrowedExtents(schema.attribute(a).cardinality,
                                std::move(extents)));
  }
  INCDB_ASSIGN_OR_RETURN(
      Table table,
      Table::FromColumns(std::move(schema), std::move(columns),
                         store.num_rows));
  store.table = std::make_shared<Table>(std::move(table));
  if (has_segments) {
    auto list = std::make_shared<internal::SegmentList>();
    list->options = seg_options;
    list->sealed_rows = sealed_rows;
    list->segments = std::move(loaded_segments);
    store.segments = std::move(list);
  }

  // Indexes.
  INCDB_ASSIGN_OR_RETURN(uint64_t num_indexes, catalog.ReadU64());
  if (num_indexes > 4096) {
    return Status::IOError("'" + catalog_path + "': implausible index count");
  }
  for (uint64_t i = 0; i < num_indexes; ++i) {
    INCDB_ASSIGN_OR_RETURN(uint8_t kind_byte, catalog.ReadU8());
    if (kind_byte > static_cast<uint8_t>(IndexKind::kBitmapHierarchical) ||
        kind_byte == static_cast<uint8_t>(IndexKind::kSequentialScan)) {
      return Status::IOError("'" + catalog_path +
                             "': corrupted index kind tag");
    }
    const IndexKind kind = static_cast<IndexKind>(kind_byte);
    internal::SnapshotIndexEntry entry;
    entry.kind = kind;
    INCDB_ASSIGN_OR_RETURN(entry.covered_rows, catalog.ReadU64());
    if (entry.covered_rows > store.num_rows) {
      return Status::IOError("'" + catalog_path +
                             "': index covers more rows than the table");
    }
    switch (kind) {
      case IndexKind::kBitmapEquality:
      case IndexKind::kBitmapRange:
      case IndexKind::kBitmapInterval:
      case IndexKind::kBitmapBitSliced: {
        INCDB_ASSIGN_OR_RETURN(
            entry.index,
            ReadBitmapIndex(catalog, *mapping, kind, num_attrs,
                            options.verify_checksums));
        break;
      }
      case IndexKind::kBitmapMultiComponent:
      case IndexKind::kBitmapHierarchical: {
        INCDB_ASSIGN_OR_RETURN(
            entry.index,
            ReadCompositeIndex(catalog, *mapping, kind, num_attrs,
                               options.verify_checksums));
        break;
      }
      case IndexKind::kVaFile:
      case IndexKind::kVaPlusFile: {
        INCDB_ASSIGN_OR_RETURN(
            entry.index, ReadVaFile(catalog, *mapping, kind, *store.table));
        break;
      }
      case IndexKind::kMosaic: {
        INCDB_ASSIGN_OR_RETURN(MosaicIndex mosaic,
                               MosaicIndex::LoadFrom(catalog, num_attrs));
        entry.index = std::make_shared<MosaicIndex>(std::move(mosaic));
        break;
      }
      case IndexKind::kBitstringAugmented:
        // Persisted as a marker only; the caller rebuilds it over the
        // mapped table.
        store.rebuild_kinds.push_back(kind);
        continue;
      case IndexKind::kSequentialScan:
        return Status::Internal("unreachable: scan kind rejected above");
    }
    store.indexes.push_back(std::move(entry));
  }
  return store;
}

}  // namespace storage
}  // namespace incdb
