#include "storage/reader.h"

#include <cstring>
#include <fstream>
#include <sstream>
#include <utility>

#include "baselines/mosaic.h"
#include "bitmap/bitmap_index.h"
#include "common/io.h"
#include "storage/checksum.h"
#include "storage/format.h"
#include "vafile/va_file.h"

namespace incdb {
namespace storage {

namespace {

Result<std::string> ReadWholeFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::IOError("cannot open '" + path + "' for reading");
  std::ostringstream buffer;
  buffer << in.rdbuf();
  if (in.bad()) return Status::IOError("read of '" + path + "' failed");
  return buffer.str();
}

Result<Manifest> ReadManifest(const std::string& path) {
  INCDB_ASSIGN_OR_RETURN(std::string bytes, ReadWholeFile(path));
  if (bytes.size() < sizeof(uint32_t)) {
    return Status::IOError("'" + path + "': truncated manifest");
  }
  // The trailing 4 bytes are a little-endian CRC-32 over everything before
  // them; verify before trusting any field.
  const size_t body_size = bytes.size() - sizeof(uint32_t);
  uint32_t stored_crc = 0;
  for (int b = 3; b >= 0; --b) {
    stored_crc = (stored_crc << 8) |
                 static_cast<uint8_t>(bytes[body_size + static_cast<size_t>(b)]);
  }
  if (stored_crc != Crc32(bytes.data(), body_size)) {
    return Status::IOError("'" + path + "': manifest checksum mismatch");
  }
  std::istringstream in(bytes);
  BinaryReader reader(in);
  INCDB_ASSIGN_OR_RETURN(std::string magic, reader.ReadString(64));
  if (magic != kManifestMagic) {
    return Status::IOError("'" + path + "' is not an incdb store manifest");
  }
  Manifest manifest;
  INCDB_ASSIGN_OR_RETURN(manifest.format_version, reader.ReadU32());
  if (manifest.format_version > kFormatVersion) {
    return Status::IOError(
        "'" + path + "': format version " +
        std::to_string(manifest.format_version) +
        " is newer than this build understands (max " +
        std::to_string(kFormatVersion) + ")");
  }
  INCDB_ASSIGN_OR_RETURN(manifest.generation, reader.ReadU64());
  if (manifest.generation == 0) {
    return Status::IOError("'" + path + "': corrupted store generation");
  }
  INCDB_ASSIGN_OR_RETURN(manifest.catalog_size, reader.ReadU64());
  INCDB_ASSIGN_OR_RETURN(manifest.segment_size, reader.ReadU64());
  INCDB_ASSIGN_OR_RETURN(uint64_t num_sections, reader.ReadU64());
  if (num_sections > (1u << 20)) {
    return Status::IOError("'" + path + "': implausible section count");
  }
  manifest.sections.reserve(num_sections);
  for (uint64_t s = 0; s < num_sections; ++s) {
    SectionEntry section;
    INCDB_ASSIGN_OR_RETURN(section.name, reader.ReadString(1 << 16));
    INCDB_ASSIGN_OR_RETURN(uint8_t file, reader.ReadU8());
    if (file > static_cast<uint8_t>(SectionFile::kSegment)) {
      return Status::IOError("'" + path + "': corrupted section table");
    }
    section.file = static_cast<SectionFile>(file);
    INCDB_ASSIGN_OR_RETURN(section.offset, reader.ReadU64());
    INCDB_ASSIGN_OR_RETURN(section.length, reader.ReadU64());
    INCDB_ASSIGN_OR_RETURN(section.crc32, reader.ReadU32());
    manifest.sections.push_back(std::move(section));
  }
  return manifest;
}

/// A bounds- and alignment-checked view of `count` elements of T at a byte
/// offset of the mapped segment.
template <typename T>
Result<const T*> SliceArray(const MappedFile& map, uint64_t offset,
                            uint64_t count) {
  if (offset % alignof(T) != 0) {
    return Status::IOError("store segment: misaligned array at offset " +
                           std::to_string(offset));
  }
  if (count > map.size() / sizeof(T)) {
    return Status::IOError("store segment: truncated array at offset " +
                           std::to_string(offset));
  }
  const uint8_t* bytes = map.Slice(offset, count * sizeof(T));
  if (bytes == nullptr) {
    return Status::IOError("store segment: truncated array at offset " +
                           std::to_string(offset));
  }
  return reinterpret_cast<const T*>(bytes);
}

Result<WahBitVector> ReadWahBitvector(BinaryReader& catalog,
                                      const MappedFile& map,
                                      bool verify) {
  INCDB_ASSIGN_OR_RETURN(uint64_t size, catalog.ReadU64());
  INCDB_ASSIGN_OR_RETURN(uint32_t active_word, catalog.ReadU32());
  INCDB_ASSIGN_OR_RETURN(uint32_t active_bits, catalog.ReadU32());
  INCDB_ASSIGN_OR_RETURN(uint64_t word_count, catalog.ReadU64());
  INCDB_ASSIGN_OR_RETURN(uint64_t offset, catalog.ReadU64());
  INCDB_ASSIGN_OR_RETURN(const uint32_t* words,
                         SliceArray<uint32_t>(map, offset, word_count));
  INCDB_ASSIGN_OR_RETURN(
      WahBitVector vec,
      WahBitVector::FromBorrowed(std::span<const uint32_t>(words, word_count),
                                 active_word, static_cast<int>(active_bits),
                                 size));
  if (verify) INCDB_RETURN_IF_ERROR(vec.ValidateStructure());
  return vec;
}

Result<std::shared_ptr<const IncompleteIndex>> ReadBitmapIndex(
    BinaryReader& catalog, const MappedFile& map, IndexKind kind,
    size_t num_attributes, bool verify) {
  BitmapIndex::Options options;
  INCDB_ASSIGN_OR_RETURN(uint8_t encoding, catalog.ReadU8());
  INCDB_ASSIGN_OR_RETURN(uint8_t strategy, catalog.ReadU8());
  if (encoding > static_cast<uint8_t>(BitmapEncoding::kBitSliced) ||
      strategy > static_cast<uint8_t>(MissingStrategy::kAllZeros)) {
    return Status::IOError("store catalog: corrupted bitmap options");
  }
  options.encoding = static_cast<BitmapEncoding>(encoding);
  options.missing_strategy = static_cast<MissingStrategy>(strategy);
  const BitmapEncoding expected =
      kind == IndexKind::kBitmapEquality     ? BitmapEncoding::kEquality
      : kind == IndexKind::kBitmapRange      ? BitmapEncoding::kRange
      : kind == IndexKind::kBitmapInterval   ? BitmapEncoding::kInterval
                                             : BitmapEncoding::kBitSliced;
  if (options.encoding != expected) {
    return Status::IOError(
        "store catalog: bitmap encoding does not match its registry kind");
  }
  INCDB_ASSIGN_OR_RETURN(uint64_t num_rows, catalog.ReadU64());
  INCDB_ASSIGN_OR_RETURN(uint64_t num_attrs, catalog.ReadU64());
  if (num_attrs != num_attributes) {
    return Status::IOError(
        "store catalog: bitmap attribute count does not match the table");
  }
  std::vector<BitmapIndex::AttributeBitmaps> attributes;
  attributes.reserve(num_attrs);
  for (uint64_t a = 0; a < num_attrs; ++a) {
    BitmapIndex::AttributeBitmaps ab;
    INCDB_ASSIGN_OR_RETURN(ab.cardinality, catalog.ReadU32());
    INCDB_ASSIGN_OR_RETURN(uint8_t has_missing, catalog.ReadU8());
    if (has_missing > 1) {
      return Status::IOError("store catalog: corrupted bitmap flags");
    }
    if (has_missing != 0) {
      INCDB_ASSIGN_OR_RETURN(WahBitVector missing,
                             ReadWahBitvector(catalog, map, verify));
      ab.missing = std::move(missing);
      ab.has_missing = true;
    }
    INCDB_ASSIGN_OR_RETURN(uint64_t num_values, catalog.ReadU64());
    if (num_values > (1u << 26)) {
      return Status::IOError("store catalog: implausible bitmap count");
    }
    ab.values.reserve(num_values);
    for (uint64_t j = 0; j < num_values; ++j) {
      INCDB_ASSIGN_OR_RETURN(WahBitVector vec,
                             ReadWahBitvector(catalog, map, verify));
      ab.values.push_back(std::move(vec));
    }
    attributes.push_back(std::move(ab));
  }
  INCDB_ASSIGN_OR_RETURN(
      BitmapIndex index,
      BitmapIndex::FromParts(options, num_rows, std::move(attributes)));
  return std::shared_ptr<const IncompleteIndex>(
      std::make_shared<BitmapIndex>(std::move(index)));
}

Result<std::shared_ptr<const IncompleteIndex>> ReadVaFile(
    BinaryReader& catalog, const MappedFile& map, IndexKind kind,
    const Table& table) {
  VaFile::Options options;
  INCDB_ASSIGN_OR_RETURN(uint8_t quantization, catalog.ReadU8());
  if (quantization > static_cast<uint8_t>(VaQuantization::kEquiDepth)) {
    return Status::IOError("store catalog: corrupted VA-file options");
  }
  options.quantization = static_cast<VaQuantization>(quantization);
  const VaQuantization expected = kind == IndexKind::kVaFile
                                      ? VaQuantization::kUniform
                                      : VaQuantization::kEquiDepth;
  if (options.quantization != expected) {
    return Status::IOError(
        "store catalog: VA-file quantization does not match its registry "
        "kind");
  }
  INCDB_ASSIGN_OR_RETURN(uint32_t bits_override, catalog.ReadU32());
  options.bits_override = static_cast<int>(bits_override);
  INCDB_ASSIGN_OR_RETURN(uint64_t num_rows, catalog.ReadU64());
  INCDB_ASSIGN_OR_RETURN(uint32_t stride, catalog.ReadU32());
  INCDB_ASSIGN_OR_RETURN(uint64_t num_attrs, catalog.ReadU64());
  if (num_attrs != table.num_attributes()) {
    return Status::IOError(
        "store catalog: VA-file attribute count does not match the table");
  }
  std::vector<VaFile::AttributeQuantizer> attributes;
  attributes.reserve(num_attrs);
  for (uint64_t a = 0; a < num_attrs; ++a) {
    VaFile::AttributeQuantizer quantizer;
    INCDB_ASSIGN_OR_RETURN(uint32_t bits, catalog.ReadU32());
    quantizer.bits = static_cast<int>(bits);
    INCDB_ASSIGN_OR_RETURN(quantizer.num_bins, catalog.ReadU32());
    INCDB_ASSIGN_OR_RETURN(quantizer.cardinality, catalog.ReadU32());
    INCDB_ASSIGN_OR_RETURN(quantizer.bit_offset, catalog.ReadU32());
    INCDB_ASSIGN_OR_RETURN(quantizer.code_of_value, catalog.ReadU32Vector());
    if (quantizer.num_bins > (1u << 30)) {
      return Status::IOError("store catalog: implausible VA-file bin count");
    }
    quantizer.bin_lo.resize(quantizer.num_bins);
    quantizer.bin_hi.resize(quantizer.num_bins);
    for (uint32_t i = 0; i < quantizer.num_bins; ++i) {
      INCDB_ASSIGN_OR_RETURN(quantizer.bin_lo[i], catalog.ReadI32());
      INCDB_ASSIGN_OR_RETURN(quantizer.bin_hi[i], catalog.ReadI32());
    }
    attributes.push_back(std::move(quantizer));
  }
  INCDB_ASSIGN_OR_RETURN(uint64_t word_count, catalog.ReadU64());
  INCDB_ASSIGN_OR_RETURN(uint64_t offset, catalog.ReadU64());
  INCDB_ASSIGN_OR_RETURN(const uint64_t* packed,
                         SliceArray<uint64_t>(map, offset, word_count));
  INCDB_ASSIGN_OR_RETURN(
      VaFile file,
      VaFile::FromParts(&table, options, std::move(attributes), stride,
                        num_rows,
                        std::span<const uint64_t>(packed, word_count)));
  return std::shared_ptr<const IncompleteIndex>(
      std::make_shared<VaFile>(std::move(file)));
}

}  // namespace

Result<OpenedStore> OpenStore(const std::string& dir,
                              const OpenOptions& options) {
  INCDB_ASSIGN_OR_RETURN(Manifest manifest,
                         ReadManifest(dir + "/" + kManifestFile));

  // -- catalog.<gen>.bin: small, read eagerly; verified against its
  // section CRC.
  const std::string catalog_path =
      dir + "/" + CatalogFileName(manifest.generation);
  INCDB_ASSIGN_OR_RETURN(std::string catalog_bytes,
                         ReadWholeFile(catalog_path));
  if (catalog_bytes.size() != manifest.catalog_size) {
    return Status::IOError("'" + catalog_path + "': truncated catalog (" +
                           std::to_string(catalog_bytes.size()) + " bytes, " +
                           "manifest says " +
                           std::to_string(manifest.catalog_size) + ")");
  }

  // -- data.<gen>.seg: mmap'd; never copied.
  const std::string segment_path =
      dir + "/" + SegmentFileName(manifest.generation);
  INCDB_ASSIGN_OR_RETURN(std::shared_ptr<MappedFile> mapping,
                         MappedFile::Open(segment_path));
  if (mapping->size() != manifest.segment_size) {
    return Status::IOError("'" + segment_path + "': truncated segment (" +
                           std::to_string(mapping->size()) + " bytes, " +
                           "manifest says " +
                           std::to_string(manifest.segment_size) + ")");
  }
  if (mapping->size() < sizeof(kSegmentMagic) ||
      std::memcmp(mapping->data(), kSegmentMagic, sizeof(kSegmentMagic)) !=
          0) {
    return Status::IOError("'" + segment_path +
                           "' is not an incdb store segment");
  }

  if (options.verify_checksums) {
    for (const SectionEntry& section : manifest.sections) {
      if (section.file == SectionFile::kCatalog) {
        if (section.offset > catalog_bytes.size() ||
            section.length > catalog_bytes.size() - section.offset) {
          return Status::IOError("'" + catalog_path +
                                 "': section '" + section.name +
                                 "' extends past the file");
        }
        if (Crc32(catalog_bytes.data() + section.offset, section.length) !=
            section.crc32) {
          return Status::IOError("'" + catalog_path +
                                 "': checksum mismatch in section '" +
                                 section.name + "'");
        }
      } else {
        const uint8_t* bytes = mapping->Slice(section.offset, section.length);
        if (bytes == nullptr) {
          return Status::IOError("'" + segment_path +
                                 "': section '" + section.name +
                                 "' extends past the file");
        }
        if (Crc32(bytes, section.length) != section.crc32) {
          return Status::IOError("'" + segment_path +
                                 "': checksum mismatch in section '" +
                                 section.name + "'");
        }
      }
    }
  }

  // -- Parse the catalog into an OpenedStore.
  std::istringstream catalog_in(catalog_bytes);
  BinaryReader catalog(catalog_in);
  INCDB_ASSIGN_OR_RETURN(std::string magic, catalog.ReadString(64));
  if (magic != kCatalogMagic) {
    return Status::IOError("'" + catalog_path +
                           "' is not an incdb store catalog");
  }
  OpenedStore store;
  store.mapping = mapping;
  INCDB_ASSIGN_OR_RETURN(store.num_rows, catalog.ReadU64());
  INCDB_ASSIGN_OR_RETURN(store.num_deleted, catalog.ReadU64());
  INCDB_ASSIGN_OR_RETURN(uint64_t num_attrs, catalog.ReadU64());
  if (num_attrs > (1u << 20)) {
    return Status::IOError("'" + catalog_path +
                           "': implausible attribute count");
  }
  std::vector<AttributeSpec> specs;
  specs.reserve(num_attrs);
  for (uint64_t a = 0; a < num_attrs; ++a) {
    AttributeSpec spec;
    INCDB_ASSIGN_OR_RETURN(spec.name, catalog.ReadString(1 << 16));
    INCDB_ASSIGN_OR_RETURN(spec.cardinality, catalog.ReadU32());
    specs.push_back(std::move(spec));
  }
  Schema schema(std::move(specs));
  INCDB_RETURN_IF_ERROR(schema.Validate());
  INCDB_ASSIGN_OR_RETURN(store.missing_counts, catalog.ReadU64Vector());
  if (store.missing_counts.size() != num_attrs) {
    return Status::IOError("'" + catalog_path +
                           "': missing-count table size mismatch");
  }
  INCDB_ASSIGN_OR_RETURN(uint8_t has_deleted, catalog.ReadU8());
  if (has_deleted > 1) {
    return Status::IOError("'" + catalog_path + "': corrupted deletion mask");
  }
  if (has_deleted != 0) {
    INCDB_ASSIGN_OR_RETURN(uint64_t deleted_size, catalog.ReadU64());
    INCDB_ASSIGN_OR_RETURN(std::vector<uint64_t> words,
                           catalog.ReadU64Vector());
    if (deleted_size > store.num_rows) {
      return Status::IOError("'" + catalog_path +
                             "': deletion mask longer than the table");
    }
    INCDB_ASSIGN_OR_RETURN(BitVector deleted,
                           BitVector::FromWords(deleted_size,
                                                std::move(words)));
    if (deleted.Count() != store.num_deleted) {
      return Status::IOError("'" + catalog_path +
                             "': deletion mask population mismatch");
    }
    store.deleted = std::make_shared<const BitVector>(std::move(deleted));
  } else if (store.num_deleted != 0) {
    return Status::IOError("'" + catalog_path +
                           "': deleted rows recorded without a mask");
  }

  // Columns: zero-copy borrowed views over the mapped segment.
  std::vector<Column> columns;
  columns.reserve(num_attrs);
  for (uint64_t a = 0; a < num_attrs; ++a) {
    INCDB_ASSIGN_OR_RETURN(uint64_t offset, catalog.ReadU64());
    INCDB_ASSIGN_OR_RETURN(
        const Value* values,
        SliceArray<Value>(*mapping, offset, store.num_rows));
    columns.push_back(Column::Borrowed(schema.attribute(a).cardinality,
                                       values, store.num_rows));
  }
  INCDB_ASSIGN_OR_RETURN(
      Table table,
      Table::FromColumns(std::move(schema), std::move(columns),
                         store.num_rows));
  store.table = std::make_shared<Table>(std::move(table));

  // Indexes.
  INCDB_ASSIGN_OR_RETURN(uint64_t num_indexes, catalog.ReadU64());
  if (num_indexes > 4096) {
    return Status::IOError("'" + catalog_path + "': implausible index count");
  }
  for (uint64_t i = 0; i < num_indexes; ++i) {
    INCDB_ASSIGN_OR_RETURN(uint8_t kind_byte, catalog.ReadU8());
    if (kind_byte > static_cast<uint8_t>(IndexKind::kBitstringAugmented) ||
        kind_byte == static_cast<uint8_t>(IndexKind::kSequentialScan)) {
      return Status::IOError("'" + catalog_path +
                             "': corrupted index kind tag");
    }
    const IndexKind kind = static_cast<IndexKind>(kind_byte);
    internal::SnapshotIndexEntry entry;
    entry.kind = kind;
    INCDB_ASSIGN_OR_RETURN(entry.covered_rows, catalog.ReadU64());
    if (entry.covered_rows > store.num_rows) {
      return Status::IOError("'" + catalog_path +
                             "': index covers more rows than the table");
    }
    switch (kind) {
      case IndexKind::kBitmapEquality:
      case IndexKind::kBitmapRange:
      case IndexKind::kBitmapInterval:
      case IndexKind::kBitmapBitSliced: {
        INCDB_ASSIGN_OR_RETURN(
            entry.index,
            ReadBitmapIndex(catalog, *mapping, kind, num_attrs,
                            options.verify_checksums));
        break;
      }
      case IndexKind::kVaFile:
      case IndexKind::kVaPlusFile: {
        INCDB_ASSIGN_OR_RETURN(
            entry.index, ReadVaFile(catalog, *mapping, kind, *store.table));
        break;
      }
      case IndexKind::kMosaic: {
        INCDB_ASSIGN_OR_RETURN(MosaicIndex mosaic,
                               MosaicIndex::LoadFrom(catalog, num_attrs));
        entry.index = std::make_shared<MosaicIndex>(std::move(mosaic));
        break;
      }
      case IndexKind::kBitstringAugmented:
        // Persisted as a marker only; the caller rebuilds it over the
        // mapped table.
        store.rebuild_kinds.push_back(kind);
        continue;
      case IndexKind::kSequentialScan:
        return Status::Internal("unreachable: scan kind rejected above");
    }
    store.indexes.push_back(std::move(entry));
  }
  return store;
}

}  // namespace storage
}  // namespace incdb
