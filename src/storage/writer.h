#ifndef INCDB_STORAGE_WRITER_H_
#define INCDB_STORAGE_WRITER_H_

#include <string>

#include "common/status.h"
#include "core/snapshot.h"

namespace incdb {
namespace storage {

/// Serializes a pinned snapshot into the store directory `dir` (created if
/// absent; existing store files are overwritten as a unit). Persists the
/// table's visible rows, the deletion mask, per-attribute missing counts,
/// and every registered index: the bitmap family and the VA-file family in
/// zero-copy wire form (their bulk arrays land in data.seg and are served
/// back by mmap), MOSAIC as sorted entry lists, and the bitstring-augmented
/// baseline as a rebuild-on-open marker (its R-tree has no stable wire
/// form). Layout in format.h; invariants in docs/STORAGE.md.
///
/// The snapshot is immutable, so this runs safely while concurrent readers
/// serve queries and the single writer keeps appending to newer epochs.
Status WriteSnapshot(const internal::SnapshotState& state,
                     const std::string& dir);

}  // namespace storage
}  // namespace incdb

#endif  // INCDB_STORAGE_WRITER_H_
