#ifndef INCDB_STORAGE_WRITER_H_
#define INCDB_STORAGE_WRITER_H_

#include <string>

#include "common/status.h"
#include "core/snapshot.h"

namespace incdb {
namespace storage {

/// Serializes a pinned snapshot into the store directory `dir` (created if
/// absent). Persists the table's visible rows, the deletion mask,
/// per-attribute missing counts, and every registered index: the bitmap
/// family and the VA-file family in zero-copy wire form (their bulk arrays
/// land in the data segment and are served back by mmap), MOSAIC as sorted
/// entry lists, and the bitstring-augmented baseline as a rebuild-on-open
/// marker (its R-tree has no stable wire form). Layout in format.h;
/// invariants in docs/STORAGE.md.
///
/// Saving over an existing store is crash-safe and atomic: payload files
/// are written under a fresh generation (never truncating what an existing
/// MANIFEST — or an open snapshot's mmap — points at), fsync'd, and then
/// committed by atomically renaming a new MANIFEST into place; superseded
/// generations are garbage-collected afterwards. A crash at any point
/// leaves either the old complete store or the new one. In particular,
/// saving a database back into the directory it was opened from is safe:
/// borrowed views keep reading the old generation's mapping throughout.
///
/// The snapshot is immutable, so this runs safely while concurrent readers
/// serve queries and the single writer keeps appending to newer epochs.
Status WriteSnapshot(const internal::SnapshotState& state,
                     const std::string& dir);

}  // namespace storage
}  // namespace incdb

#endif  // INCDB_STORAGE_WRITER_H_
