#ifndef INCDB_STORAGE_WRITER_H_
#define INCDB_STORAGE_WRITER_H_

#include <cstdint>
#include <string>
#include <unordered_map>

#include "common/status.h"
#include "common/thread_annotations.h"
#include "core/snapshot.h"

namespace incdb {
namespace storage {

/// What the writer remembers about a segment file it has written (or an
/// open has loaded): enough to reuse the file on the next save and to fill
/// the catalog's segment table without re-reading it.
struct CachedSegmentFile {
  std::string file_name;
  uint64_t file_size = 0;
  uint32_t crc32 = 0;
};

/// Dirty-segment bookkeeping across saves into one directory. Sealed
/// segment files are content-addressed and immutable, so a segment whose
/// content id is cached — and whose file is still present with the
/// recorded size — is skipped entirely by the next WriteSnapshot; only
/// new or rewritten (compacted) segments cost I/O. The cache is advisory:
/// losing it (or switching directories, which resets it) degrades a save
/// to writing every segment file, never to corruption, because reuse is
/// re-validated against the filesystem each time.
struct SegmentPersistCache {
  Mutex mu;
  /// Directory the entries are valid for; a save into a different
  /// directory clears and re-keys the cache.
  std::string dir INCDB_GUARDED_BY(mu);
  std::unordered_map<uint64_t, CachedSegmentFile> files INCDB_GUARDED_BY(mu);
};

/// Serializes a pinned snapshot into the store directory `dir` (created if
/// absent). Persists the table's visible rows, the deletion mask,
/// per-attribute missing counts, and every registered index: the bitmap
/// family and the VA-file family in zero-copy wire form (their bulk arrays
/// land in the data segment and are served back by mmap), MOSAIC as sorted
/// entry lists, and the bitstring-augmented baseline as a rebuild-on-open
/// marker (its R-tree has no stable wire form). Layout in format.h;
/// invariants in docs/STORAGE.md.
///
/// Saving over an existing store is crash-safe and atomic: payload files
/// are written under a fresh generation (never truncating what an existing
/// MANIFEST — or an open snapshot's mmap — points at), fsync'd, and then
/// committed by atomically renaming a new MANIFEST into place; superseded
/// generations are garbage-collected afterwards. A crash at any point
/// leaves either the old complete store or the new one. In particular,
/// saving a database back into the directory it was opened from is safe:
/// borrowed views keep reading the old generation's mapping throughout.
///
/// The snapshot is immutable, so this runs safely while concurrent readers
/// serve queries and the single writer keeps appending to newer epochs.
///
/// A segmented snapshot (state.segments != null) is written in format v2:
/// each sealed segment goes to its own immutable seg-<id>.dat file and the
/// main data segment holds only the unsealed tail's columns. With `cache`
/// non-null, segment files recorded there are reused instead of rewritten
/// (and the cache is updated to exactly the surviving set), bounding save
/// cost by the dirty segments; pass null for a cold full save.
Status WriteSnapshot(const internal::SnapshotState& state,
                     const std::string& dir,
                     SegmentPersistCache* cache = nullptr);

}  // namespace storage
}  // namespace incdb

#endif  // INCDB_STORAGE_WRITER_H_
