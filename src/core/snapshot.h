#ifndef INCDB_CORE_SNAPSHOT_H_
#define INCDB_CORE_SNAPSHOT_H_

#include <memory>
#include <string>
#include <vector>

#include "bitvector/bitvector.h"
#include "core/incomplete_index.h"
#include "core/index_factory.h"
#include "core/query_api.h"
#include "core/segments.h"
#include "query/query.h"
#include "table/table.h"

namespace incdb {

namespace internal {

/// One registered index inside a snapshot. Indexes are immutable once
/// published: they cover exactly rows [0, covered_rows) of the table (their
/// coverage at BuildIndex time); rows appended later are served by the
/// snapshot executor's delta scan until the next BuildIndex re-covers them.
struct SnapshotIndexEntry {
  IndexKind kind = IndexKind::kSequentialScan;
  std::shared_ptr<const IncompleteIndex> index;
  uint64_t covered_rows = 0;
};

/// The immutable state one epoch publishes. Readers pin it through a
/// shared_ptr; writers never mutate a published state — Insert / Delete /
/// BuildIndex / DropIndex build a fresh one (copy-on-write for the index
/// registry and the deletion mask, append-only watermarking for the table)
/// and swap the Database head pointer.
///
/// Immutability is enforced by construction and by the compile-time gate
/// (docs/STATIC_ANALYSIS.md): a state is only reachable through
/// shared_ptr<const SnapshotState>, so post-publish mutation does not
/// type-check; the one mutable handle exists inside Database::Publish,
/// which clang's thread-safety analysis only admits under writer_mu, and
/// the head-pointer swap it ends with only under head_mu (both
/// INCDB_GUARDED_BY-annotated in core/database.h). The writer-side working
/// copies these states are built from carry the same GUARDED_BY
/// annotations, so an unlocked write anywhere on the publish path is a
/// compile error on the clang CI cells.
struct SnapshotState {
  /// The shared append-only base table. Cells of rows < num_rows are
  /// immutable and safe to read concurrently with the single writer. Held
  /// by shared_ptr because compaction (docs/SEGMENTS.md) replaces the base
  /// table wholesale: snapshots pinned before a compaction keep the old
  /// table alive for as long as they live.
  std::shared_ptr<const Table> table;
  /// Monotone publication counter.
  uint64_t epoch = 0;
  /// Append watermark: this snapshot sees exactly rows [0, num_rows).
  uint64_t num_rows = 0;
  /// Set bits among [0, deleted->size()) are logically deleted. Null when
  /// nothing was ever deleted; may be shorter than num_rows (rows appended
  /// after the last Delete are live).
  std::shared_ptr<const BitVector> deleted;
  uint64_t num_deleted = 0;
  /// Registered indexes, ascending by kind. Shared (copy-on-write) across
  /// epochs that did not change the registry.
  std::shared_ptr<const std::vector<SnapshotIndexEntry>> indexes;
  /// Per-attribute missing-cell counts among rows [0, num_rows) — feeds the
  /// router's selectivity model without rescanning columns.
  std::vector<uint64_t> missing_counts;
  /// Sharded segment layer (null when segments are disabled): immutable
  /// sealed segments covering rows [0, segments->sealed_rows), each with a
  /// local-row-space index and a zone map. Shared copy-on-write across
  /// epochs like the index registry.
  std::shared_ptr<const SegmentList> segments;
};

}  // namespace internal

/// An immutable, consistent view of a Database: a row watermark, an index
/// registry, and a deletion-mask version, pinned via shared_ptr. Cheap to
/// copy; safe to query from any thread while writers keep publishing new
/// epochs. Obtain one with Database::GetSnapshot() (every Database::Run
/// pins one internally per request).
class Snapshot {
 public:
  /// An invalid snapshot; RunOnSnapshot rejects it.
  Snapshot() = default;
  explicit Snapshot(std::shared_ptr<const internal::SnapshotState> state)
      : state_(std::move(state)) {}

  bool valid() const { return state_ != nullptr; }
  uint64_t epoch() const { return state_->epoch; }
  /// Rows visible to this snapshot (append watermark).
  uint64_t num_rows() const { return state_->num_rows; }
  uint64_t num_deleted_rows() const { return state_->num_deleted; }
  uint64_t num_live_rows() const {
    return state_->num_rows - state_->num_deleted;
  }
  /// True if `row` is logically deleted in this snapshot.
  bool IsDeleted(uint32_t row) const {
    return state_->deleted != nullptr && row < state_->deleted->size() &&
           state_->deleted->Get(row);
  }
  /// The shared base table. Only rows [0, num_rows()) may be accessed.
  const Table& table() const { return *state_->table; }
  /// Registered index kinds, ascending.
  std::vector<IndexKind> Indexes() const;
  bool HasIndex(IndexKind kind) const;
  /// Total bytes across registered indexes.
  uint64_t IndexSizeInBytes() const;
  /// Fraction of missing cells for `attr` among visible rows (paper's P_m).
  double MissingRate(size_t attr) const;
  /// Sealed segments visible to this snapshot (0 / 0 when disabled).
  size_t num_segments() const {
    return state_->segments == nullptr ? 0 : state_->segments->segments.size();
  }
  uint64_t sealed_rows() const {
    return state_->segments == nullptr ? 0 : state_->segments->sealed_rows;
  }

  /// The underlying state (executor/Database plumbing; not part of the
  /// stable API).
  const internal::SnapshotState& state() const { return *state_; }

 private:
  std::shared_ptr<const internal::SnapshotState> state_;
};

/// Resolves a named term against a table's schema into an attribute index
/// plus a validated interval.
///
/// Cost-based routing and execution against a snapshot live in the plan
/// layer: plan/planner.h (RouteRangeQuery, RouteExpression, RunOnSnapshot).
Result<QueryTerm> ResolveNamedTerm(const Table& table, const NamedTerm& term);

}  // namespace incdb

#endif  // INCDB_CORE_SNAPSHOT_H_
