#ifndef INCDB_CORE_SEGMENTS_H_
#define INCDB_CORE_SEGMENTS_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "common/status.h"
#include "core/incomplete_index.h"
#include "core/index_factory.h"
#include "query/query.h"
#include "table/table.h"

namespace incdb {

/// Configuration for the sharded segment layer (docs/SEGMENTS.md). Off by
/// default: a database without segments behaves exactly as before (one
/// monolithic snapshot, registry indexes, delta scan). With segments
/// enabled, every `segment_rows` appended rows are sealed into an immutable
/// segment carrying its own index over a local row space plus a zone map,
/// and the planner serves range/expression queries from the segment list.
struct SegmentOptions {
  /// Rows per sealed segment. Appended rows past the last seal boundary
  /// form the unsealed tail and are served by the delta scan.
  uint64_t segment_rows = 64 * 1024;
  /// Index kind built per segment at seal time. Must be one of the
  /// self-contained bitmap kinds (kBitmapEquality/Range/Interval/BitSliced,
  /// or the composite kBitmapMultiComponent/Hierarchical): those never
  /// consult the table after Build, so a segment's index can be built from
  /// a transient row copy and outlive it.
  IndexKind index_kind = IndexKind::kBitmapEquality;
};

/// True for index kinds a segment may carry (self-contained after Build).
bool IsSegmentIndexKind(IndexKind kind);

namespace internal {

/// Per-attribute pruning metadata for one segment. min/max are only
/// meaningful when at least one cell is present (missing < segment rows).
struct ZoneEntry {
  Value min_value = 0;
  Value max_value = 0;
  /// Missing cells for this attribute within the segment.
  uint64_t missing = 0;
};

/// One immutable sealed segment. The segment's index is built over the
/// *local* row space [0, num_rows): local row r corresponds to global row
/// begin_row + r of the base table. Local row spaces are what make
/// compaction cheap — dropping rows elsewhere renumbers global ids, but an
/// untouched segment only needs its begin_row updated, never an index
/// rebuild.
struct Segment {
  /// Stable content identity: assigned once at seal (or re-seal during
  /// compaction) time, never reused within a database lineage. Names the
  /// on-disk per-segment file (storage/format.h) so saves can skip segments
  /// already persisted.
  uint64_t content_id = 0;
  /// Global row offset of local row 0. Updated (via segment copy) when
  /// compaction shifts the segment; everything else is immutable.
  uint64_t begin_row = 0;
  uint64_t num_rows = 0;
  IndexKind index_kind = IndexKind::kBitmapEquality;
  /// Index over local rows [0, num_rows). Shared with older snapshots.
  std::shared_ptr<const IncompleteIndex> index;
  /// One entry per attribute.
  std::vector<ZoneEntry> zones;

  uint64_t end_row() const { return begin_row + num_rows; }
};

/// The segment portion of a snapshot. Segments are contiguous from row 0:
/// segments[0].begin_row == 0 and each begin_row equals the previous
/// end_row(); sealed_rows is the end of the last segment. Rows in
/// [sealed_rows, num_rows) are the unsealed tail.
struct SegmentList {
  SegmentOptions options;
  std::vector<std::shared_ptr<const Segment>> segments;
  uint64_t sealed_rows = 0;
};

/// Builds one sealed segment over global rows [begin, begin + rows) of
/// `table`: computes the zone map, copies the rows into a transient local
/// table, builds the per-segment index in the local row space, and discards
/// the copy. Safe to call from multiple threads over disjoint ranges.
Result<Segment> BuildSealedSegment(const Table& table, uint64_t begin,
                                   uint64_t rows, IndexKind kind,
                                   uint64_t content_id);

/// Seals every full segment in [first_unsealed, sealed_limit) in parallel
/// (`parallelism` worker threads, min 1). Content ids are assigned
/// sequentially from *next_content_id, which is advanced past the ids used.
/// Returns the new segments in row order.
Result<std::vector<std::shared_ptr<const Segment>>> BuildSegmentsParallel(
    const Table& table, uint64_t first_unsealed, uint64_t sealed_limit,
    const SegmentOptions& options, uint64_t* next_content_id,
    unsigned parallelism);

/// True when the zone map proves no row of `seg` can satisfy `query` —
/// skipping the probe is then sound because the segment contributes only
/// zero bits. Under kMatch semantics a term is satisfiable within the
/// segment if its interval overlaps [min,max] or any cell is missing; under
/// kNoMatch, only if the interval overlaps (missing never certainly
/// matches). One unsatisfiable term prunes the conjunction.
bool SegmentPrunedByZones(const Segment& seg, const RangeQuery& query);

/// Recomputes the zone map of rows [begin, begin+rows) (save-path reuse and
/// tests; BuildSealedSegment calls it internally).
std::vector<ZoneEntry> ComputeZones(const Table& table, uint64_t begin,
                                    uint64_t rows);

}  // namespace internal
}  // namespace incdb

#endif  // INCDB_CORE_SEGMENTS_H_
