#include "core/executor.h"

#include <thread>

#include "common/timer.h"
#include "plan/plan_executor.h"
#include "plan/planner.h"
#include "query/seq_scan.h"

namespace incdb {

namespace {

/// One workload query through the plan layer: lower the conjunctive query
/// into a bare-index probe tree, execute, count.
Result<uint64_t> RunOneQuery(const IncompleteIndex& index,
                             const RangeQuery& query, QueryStats* stats) {
  INCDB_ASSIGN_OR_RETURN(plan::PhysicalPlan plan,
                         plan::PlanRangeOverIndex(index, query));
  INCDB_ASSIGN_OR_RETURN(BitVector answer,
                         plan::ExecutePlanToBitVector(&plan, stats));
  return answer.Count();
}

}  // namespace

Result<WorkloadResult> RunWorkload(const IncompleteIndex& index,
                                   const std::vector<RangeQuery>& queries,
                                   uint64_t num_rows) {
  WorkloadResult result;
  result.index_name = index.Name();
  result.num_queries = queries.size();
  Timer timer;
  for (const RangeQuery& query : queries) {
    INCDB_ASSIGN_OR_RETURN(uint64_t matches,
                           RunOneQuery(index, query, &result.stats));
    result.total_matches += matches;
  }
  result.total_millis = timer.ElapsedMillis();
  if (!queries.empty() && num_rows > 0) {
    result.realized_selectivity =
        static_cast<double>(result.total_matches) /
        (static_cast<double>(queries.size()) * static_cast<double>(num_rows));
  }
  return result;
}

Result<WorkloadResult> RunWorkloadParallel(
    const IncompleteIndex& index, const std::vector<RangeQuery>& queries,
    uint64_t num_rows, size_t num_threads) {
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  num_threads = std::min(num_threads, std::max<size_t>(1, queries.size()));

  struct WorkerState {
    uint64_t matches = 0;
    QueryStats stats;
    Status status;
  };
  std::vector<WorkerState> workers(num_threads);

  Timer timer;
  {
    std::vector<std::thread> threads;
    threads.reserve(num_threads);
    for (size_t t = 0; t < num_threads; ++t) {
      threads.emplace_back([&, t]() {
        WorkerState& state = workers[t];
        // Strided partition: worker t takes queries t, t+T, t+2T, ...
        for (size_t q = t; q < queries.size(); q += num_threads) {
          auto result = RunOneQuery(index, queries[q], &state.stats);
          if (!result.ok()) {
            state.status = result.status();
            return;
          }
          state.matches += result.value();
        }
      });
    }
    for (std::thread& thread : threads) thread.join();
  }

  WorkloadResult result;
  result.index_name = index.Name();
  result.num_queries = queries.size();
  result.total_millis = timer.ElapsedMillis();
  for (const WorkerState& state : workers) {
    INCDB_RETURN_IF_ERROR(state.status);
    result.total_matches += state.matches;
    result.stats.MergeFrom(state.stats);
  }
  if (!queries.empty() && num_rows > 0) {
    result.realized_selectivity =
        static_cast<double>(result.total_matches) /
        (static_cast<double>(queries.size()) * static_cast<double>(num_rows));
  }
  return result;
}

Status VerifyAgainstOracle(const IncompleteIndex& index, const Table& table,
                           const std::vector<RangeQuery>& queries) {
  SequentialScan oracle(table);
  for (const RangeQuery& query : queries) {
    INCDB_ASSIGN_OR_RETURN(BitVector expected,
                           oracle.ExecuteToBitVector(query));
    INCDB_ASSIGN_OR_RETURN(BitVector actual, index.Execute(query, nullptr));
    if (!(expected == actual)) {
      // Locate the first differing row for the diagnostic.
      uint64_t bad_row = 0;
      for (uint64_t r = 0; r < table.num_rows(); ++r) {
        if (expected.Get(r) != actual.Get(r)) {
          bad_row = r;
          break;
        }
      }
      return Status::Internal(
          index.Name() + " disagrees with oracle on query '" +
          query.ToString() + "' at row " + std::to_string(bad_row) +
          " (oracle=" + (expected.Get(bad_row) ? "match" : "no-match") + ")");
    }
  }
  return Status::OK();
}

}  // namespace incdb
