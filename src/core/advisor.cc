#include "core/advisor.h"

#include <algorithm>
#include <cmath>

#include "bitmap/slicer.h"
#include "common/bitutil.h"
#include "stats/wah_model.h"

namespace incdb {

namespace {

// Average over attributes of a per-attribute quantity.
template <typename Fn>
double AttrAverage(const std::vector<AttributeHistogram>& histograms, Fn fn) {
  if (histograms.empty()) return 0.0;
  double sum = 0.0;
  for (size_t a = 0; a < histograms.size(); ++a) sum += fn(a);
  return sum / static_cast<double>(histograms.size());
}

}  // namespace

IndexAdvisor::IndexAdvisor(const Table& table) : num_rows_(table.num_rows()) {
  histograms_.reserve(table.num_attributes());
  for (size_t a = 0; a < table.num_attributes(); ++a) {
    histograms_.push_back(AttributeHistogram::FromColumn(table.column(a)));
  }
}

double IndexAdvisor::AvgTermWidth(const WorkloadProfile& profile,
                                  size_t attr) const {
  if (profile.point_queries) return 1.0;
  const double cardinality =
      static_cast<double>(histograms_[attr].cardinality());
  return std::clamp(std::round(profile.attribute_selectivity * cardinality),
                    1.0, cardinality);
}

IndexCostEstimate IndexAdvisor::Estimate(IndexKind kind,
                                         const WorkloadProfile& profile) const {
  IndexCostEstimate estimate;
  estimate.kind = kind;
  const double n = static_cast<double>(num_rows_);
  const size_t dims = std::min(profile.dims, histograms_.size());
  // Result-fold cost shared by the bitmap kinds: one AND per extra dim over
  // a (usually sparse) intermediate — approximate by one bitmap's words at
  // the query's global density; keep it simple with n/31 * 0.25.
  const double fold_cost = dims > 1 ? (n / 31.0) * 0.25 * (dims - 1) : 0.0;

  switch (kind) {
    case IndexKind::kSequentialScan: {
      estimate.size_bytes = 0.0;
      // Reads every cell of every search-key attribute: 16 values/64B line.
      estimate.query_cost = n * static_cast<double>(dims) / 2.0;
      return estimate;
    }

    case IndexKind::kBitmapEquality: {
      double size = 0.0;
      double per_dim_cost = 0.0;
      for (size_t a = 0; a < histograms_.size(); ++a) {
        const AttributeHistogram& hist = histograms_[a];
        double attr_bytes = 0.0;
        double avg_value_words = 0.0;
        for (uint32_t v = 1; v <= hist.cardinality(); ++v) {
          const double bytes =
              ExpectedWahBytes(num_rows_, hist.BitDensity(v));
          attr_bytes += bytes;
          avg_value_words += bytes / 4.0;
        }
        avg_value_words /= std::max<double>(1.0, hist.cardinality());
        const double missing_words =
            hist.missing_count() > 0
                ? ExpectedWahWords(num_rows_, hist.MissingRate())
                : 0.0;
        if (hist.missing_count() > 0) {
          attr_bytes += ExpectedWahBytes(num_rows_, hist.MissingRate());
        }
        size += attr_bytes;
        // Fig. 2 access count: min(w, C-w) + 1 bitmaps.
        const double width = AvgTermWidth(profile, a);
        const double accessed = std::min(
            width, static_cast<double>(hist.cardinality()) - width) + 1.0;
        per_dim_cost +=
            std::max(1.0, accessed) * avg_value_words + missing_words;
      }
      estimate.size_bytes = size;
      estimate.query_cost =
          per_dim_cost / std::max<size_t>(1, histograms_.size()) *
              static_cast<double>(dims) + fold_cost;
      return estimate;
    }

    case IndexKind::kBitmapRange: {
      double size = 0.0;
      double per_dim_cost = 0.0;
      for (size_t a = 0; a < histograms_.size(); ++a) {
        const AttributeHistogram& hist = histograms_[a];
        // B_j density = cumulative frequency through j plus missing.
        double cumulative = static_cast<double>(hist.missing_count());
        double attr_bytes = 0.0;
        double worst_words = 1.0;
        for (uint32_t j = 1; j + 1 <= hist.cardinality(); ++j) {
          cumulative += static_cast<double>(hist.count(j));
          const double density = cumulative / std::max(1.0, n);
          attr_bytes += ExpectedWahBytes(num_rows_, density);
          worst_words =
              std::max(worst_words, ExpectedWahWords(num_rows_, density));
        }
        if (hist.missing_count() > 0) {
          attr_bytes += ExpectedWahBytes(num_rows_, hist.MissingRate());
        }
        size += attr_bytes;
        // Fig. 3: between 1 and 3 bitvectors per dimension.
        per_dim_cost += 2.5 * worst_words;
      }
      estimate.size_bytes = size;
      estimate.query_cost =
          per_dim_cost / std::max<size_t>(1, histograms_.size()) *
              static_cast<double>(dims) + fold_cost;
      return estimate;
    }

    case IndexKind::kBitmapInterval: {
      double size = 0.0;
      double per_dim_cost = 0.0;
      for (size_t a = 0; a < histograms_.size(); ++a) {
        const AttributeHistogram& hist = histograms_[a];
        const uint32_t cardinality = hist.cardinality();
        const uint32_t m = (cardinality + 1) / 2;
        const uint32_t windows = cardinality - m + 1;
        double window_words = 0.0;
        for (uint32_t j = 1; j <= windows; ++j) {
          double mass = 0.0;
          for (uint32_t v = j; v <= std::min(cardinality, j + m - 1); ++v) {
            mass += static_cast<double>(hist.count(v));
          }
          const double density = mass / std::max(1.0, n);
          size += ExpectedWahBytes(num_rows_, density);
          window_words += ExpectedWahWords(num_rows_, density);
        }
        if (hist.missing_count() > 0) {
          size += ExpectedWahBytes(num_rows_, hist.MissingRate());
        }
        // Two window bitmaps (+ missing) per dimension.
        per_dim_cost += 2.0 * window_words / std::max<double>(1.0, windows) +
                        (hist.missing_count() > 0
                             ? ExpectedWahWords(num_rows_, hist.MissingRate())
                             : 0.0);
      }
      estimate.size_bytes = size;
      estimate.query_cost =
          per_dim_cost / std::max<size_t>(1, histograms_.size()) *
              static_cast<double>(dims) + fold_cost;
      return estimate;
    }

    case IndexKind::kBitmapBitSliced: {
      double size = 0.0;
      double per_dim_cost = 0.0;
      for (size_t a = 0; a < histograms_.size(); ++a) {
        const AttributeHistogram& hist = histograms_[a];
        const int slices = bitutil::BitsForCardinality(hist.cardinality());
        for (int k = 0; k < slices; ++k) {
          double mass = 0.0;
          for (uint32_t v = 1; v <= hist.cardinality(); ++v) {
            if ((v >> k) & 1) mass += static_cast<double>(hist.count(v));
          }
          const double density = mass / std::max(1.0, n);
          size += ExpectedWahBytes(num_rows_, density);
          // LE circuit touches each slice once or twice with ~3 ops; two
          // LE circuits per range term.
          per_dim_cost += 2.0 * 3.0 * ExpectedWahWords(num_rows_, density);
        }
        if (hist.missing_count() > 0) {
          size += ExpectedWahBytes(num_rows_, hist.MissingRate());
        }
      }
      estimate.size_bytes = size;
      estimate.query_cost =
          per_dim_cost / std::max<size_t>(1, histograms_.size()) *
              static_cast<double>(dims) + fold_cost;
      return estimate;
    }

    case IndexKind::kBitmapMultiComponent:
    case IndexKind::kBitmapHierarchical: {
      // Composite kinds: size and probe counts follow from the slicer
      // geometry (axes/levels), not from the raw cardinality.
      const SlotScheme scheme = kind == IndexKind::kBitmapMultiComponent
                                    ? SlotScheme::kMultiComponent
                                    : SlotScheme::kHierarchical;
      double size = 0.0;
      double per_dim_cost = 0.0;
      for (size_t a = 0; a < histograms_.size(); ++a) {
        const AttributeHistogram& hist = histograms_[a];
        const Result<Slicer> sliced = Slicer::Create(scheme,
                                                     hist.cardinality());
        if (!sliced.ok()) continue;
        const Slicer& slicer = sliced.value();
        double avg_words = 0.0;
        double bitmap_count = 0.0;
        for (size_t axis = 0; axis < slicer.axes().size(); ++axis) {
          const uint32_t slots = slicer.axes()[axis].num_slots;
          std::vector<double> mass(slots, 0.0);
          for (uint32_t v = 1; v <= hist.cardinality(); ++v) {
            mass[slicer.SlotOf(v, axis)] += static_cast<double>(hist.count(v));
          }
          for (uint32_t s = 0; s < slots; ++s) {
            const double density = mass[s] / std::max(1.0, n);
            size += ExpectedWahBytes(num_rows_, density);
            avg_words += ExpectedWahWords(num_rows_, density);
            bitmap_count += 1.0;
          }
        }
        avg_words /= std::max(1.0, bitmap_count);
        const double missing_words =
            hist.missing_count() > 0
                ? ExpectedWahWords(num_rows_, hist.MissingRate())
                : 0.0;
        if (hist.missing_count() > 0) {
          size += ExpectedWahBytes(num_rows_, hist.MissingRate());
        }
        const double width = AvgTermWidth(profile, a);
        double probes = 0.0;
        if (scheme == SlotScheme::kMultiComponent) {
          // Two edge digit-ranges on the low axis (the equality min-side
          // trick bounds each at r0/2 + 1) plus one aligned digit-range on
          // the high axis.
          const double r0 =
              static_cast<double>(slicer.axes().front().num_slots);
          const double r1 =
              static_cast<double>(slicer.axes().back().num_slots);
          const double mid = std::clamp(width / std::max(1.0, r0), 0.0, r1);
          probes = 2.0 * std::min(width, r0 / 2.0 + 1.0) +
                   std::min(mid, r1 - mid) + 1.0;
        } else {
          // Segment-tree cover: <= 2 aligned bins per level, ~2 log2(w)
          // bins total for a width-w range.
          const double levels = static_cast<double>(slicer.axes().size());
          probes = std::min(2.0 * levels,
                            2.0 * std::log2(std::max(2.0, width)) + 1.0);
        }
        per_dim_cost += probes * avg_words + missing_words;
      }
      estimate.size_bytes = size;
      estimate.query_cost =
          per_dim_cost / std::max<size_t>(1, histograms_.size()) *
              static_cast<double>(dims) + fold_cost;
      return estimate;
    }

    case IndexKind::kVaFile:
    case IndexKind::kVaPlusFile: {
      double stride_bits = 0.0;
      for (const AttributeHistogram& hist : histograms_) {
        stride_bits += bitutil::BitsForCardinality(hist.cardinality());
      }
      estimate.size_bytes = n * stride_bits / 8.0;
      // The filter visits every record; per record it extracts and checks
      // up to `dims` codes with early exit (~sublinear in dims in
      // practice). Calibrated against the Fig. 5 measurements, where the
      // VA-file lands just below the sequential scan.
      estimate.query_cost = n * (0.3 + 0.3 * static_cast<double>(dims));
      return estimate;
    }

    case IndexKind::kMosaic: {
      // B+-tree storage ~ 12 bytes/entry incl. structural overhead.
      estimate.size_bytes = n * 12.0 * static_cast<double>(histograms_.size());
      // Per dim: descent, then every matching entry is copied out of the
      // leaves and set into a row bitvector (~2 touches per match — this
      // per-record set-operation overhead is the paper's §2 argument
      // against MOSAIC), plus the n-bit AND fold.
      const double avg_selectivity = AttrAverage(
          histograms_,
          [&](size_t a) {
            const double width = AvgTermWidth(profile, a);
            return width /
                   std::max<double>(1.0, histograms_[a].cardinality());
          });
      estimate.query_cost =
          static_cast<double>(dims) *
          (std::log2(std::max(2.0, n)) + avg_selectivity * n * 2.0 + n / 64.0);
      return estimate;
    }

    case IndexKind::kBitstringAugmented: {
      const double d = static_cast<double>(histograms_.size());
      estimate.size_bytes = n * (4.0 * d + d / 8.0) * 1.3;
      // 2^k subqueries under match semantics; each is an R-tree range
      // search whose node accesses we approximate as a descent plus a
      // boundary/overlap term — R-trees over sentinel-polluted data touch
      // a nontrivial fraction of the leaves (the Fig. 1 effect).
      const double subqueries =
          profile.semantics == MissingSemantics::kMatch
              ? std::pow(2.0, static_cast<double>(dims))
              : 1.0;
      estimate.query_cost =
          subqueries * (std::log2(std::max(2.0, n)) * 16.0 + 0.05 * n);
      return estimate;
    }
  }
  return estimate;
}

std::vector<IndexCostEstimate> IndexAdvisor::Rank(
    const WorkloadProfile& profile, double memory_budget_bytes) const {
  std::vector<IndexCostEstimate> ranked;
  for (IndexKind kind :
       {IndexKind::kSequentialScan, IndexKind::kBitmapEquality,
        IndexKind::kBitmapRange, IndexKind::kBitmapInterval,
        IndexKind::kBitmapBitSliced, IndexKind::kBitmapMultiComponent,
        IndexKind::kBitmapHierarchical, IndexKind::kVaFile,
        IndexKind::kMosaic, IndexKind::kBitstringAugmented}) {
    const IndexCostEstimate estimate = Estimate(kind, profile);
    if (estimate.size_bytes <= memory_budget_bytes) ranked.push_back(estimate);
  }
  std::stable_sort(ranked.begin(), ranked.end(),
                   [](const IndexCostEstimate& a, const IndexCostEstimate& b) {
                     return a.query_cost < b.query_cost;
                   });
  return ranked;
}

IndexKind IndexAdvisor::Recommend(const WorkloadProfile& profile,
                                  double memory_budget_bytes) const {
  const std::vector<IndexCostEstimate> ranked =
      Rank(profile, memory_budget_bytes);
  // The scan has size 0 and always qualifies, so ranked is never empty.
  return ranked.front().kind;
}

}  // namespace incdb
