#include "core/segments.h"

#include <atomic>
#include <thread>
#include <utility>

#include "common/logging.h"
#include "common/thread_annotations.h"

namespace incdb {

bool IsSegmentIndexKind(IndexKind kind) {
  switch (kind) {
    case IndexKind::kBitmapEquality:
    case IndexKind::kBitmapRange:
    case IndexKind::kBitmapInterval:
    case IndexKind::kBitmapBitSliced:
    case IndexKind::kBitmapMultiComponent:
    case IndexKind::kBitmapHierarchical:
      return true;
    default:
      // Scan has no payload; VA/Mosaic/Bitstring consult the table at query
      // time, so they cannot outlive the transient local copy a segment is
      // built from.
      return false;
  }
}

namespace internal {

std::vector<ZoneEntry> ComputeZones(const Table& table, uint64_t begin,
                                    uint64_t rows) {
  const size_t num_attrs = table.num_attributes();
  std::vector<ZoneEntry> zones(num_attrs);
  std::vector<bool> seen(num_attrs, false);
  for (uint64_t r = 0; r < rows; ++r) {
    for (size_t a = 0; a < num_attrs; ++a) {
      const Value v = table.Get(begin + r, a);
      if (IsMissing(v)) {
        ++zones[a].missing;
        continue;
      }
      if (!seen[a]) {
        zones[a].min_value = v;
        zones[a].max_value = v;
        seen[a] = true;
      } else {
        if (v < zones[a].min_value) zones[a].min_value = v;
        if (v > zones[a].max_value) zones[a].max_value = v;
      }
    }
  }
  return zones;
}

Result<Segment> BuildSealedSegment(const Table& table, uint64_t begin,
                                   uint64_t rows, IndexKind kind,
                                   uint64_t content_id) {
  if (rows == 0) {
    return Status::InvalidArgument("segment must cover at least one row");
  }
  if (begin + rows > table.num_rows()) {
    return Status::InvalidArgument("segment range past end of table");
  }
  if (!IsSegmentIndexKind(kind)) {
    return Status::NotSupported(
        "segment index kind must be a self-contained bitmap kind");
  }
  // Transient local copy in the segment's own row space; discarded after
  // Build because bitmap kinds never read the table again.
  INCDB_ASSIGN_OR_RETURN(Table local, Table::Create(table.schema()));
  const size_t num_attrs = table.num_attributes();
  std::vector<Value> row(num_attrs);
  for (uint64_t r = 0; r < rows; ++r) {
    for (size_t a = 0; a < num_attrs; ++a) {
      row[a] = table.Get(begin + r, a);
    }
    local.AppendRowUnchecked(row);
  }
  INCDB_ASSIGN_OR_RETURN(std::unique_ptr<IncompleteIndex> index,
                         CreateIndex(kind, local));
  Segment seg;
  seg.content_id = content_id;
  seg.begin_row = begin;
  seg.num_rows = rows;
  seg.index_kind = kind;
  seg.index = std::shared_ptr<const IncompleteIndex>(std::move(index));
  seg.zones = ComputeZones(table, begin, rows);
  return seg;
}

Result<std::vector<std::shared_ptr<const Segment>>> BuildSegmentsParallel(
    const Table& table, uint64_t first_unsealed, uint64_t sealed_limit,
    const SegmentOptions& options, uint64_t* next_content_id,
    unsigned parallelism) {
  INCDB_CHECK(options.segment_rows > 0);
  INCDB_CHECK(first_unsealed <= sealed_limit);
  const uint64_t pending = sealed_limit - first_unsealed;
  const uint64_t count = pending / options.segment_rows;
  std::vector<std::shared_ptr<const Segment>> out(count);
  if (count == 0) return out;
  const uint64_t first_id = *next_content_id;
  *next_content_id += count;

  std::atomic<uint64_t> next{0};
  std::vector<Status> errors;
  Mutex errors_mu;
  auto worker = [&]() {
    for (;;) {
      const uint64_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      const uint64_t begin = first_unsealed + i * options.segment_rows;
      Result<Segment> seg =
          BuildSealedSegment(table, begin, options.segment_rows,
                             options.index_kind, first_id + i);
      if (!seg.ok()) {
        const MutexLock lock(&errors_mu);
        errors.push_back(seg.status());
        return;
      }
      out[i] = std::make_shared<const Segment>(std::move(seg).value());
    }
  };

  unsigned workers = parallelism == 0 ? 1u : parallelism;
  if (workers > count) workers = static_cast<unsigned>(count);
  if (workers <= 1) {
    worker();
  } else {
    std::vector<std::thread> threads;
    threads.reserve(workers);
    for (unsigned t = 0; t < workers; ++t) threads.emplace_back(worker);
    for (std::thread& t : threads) t.join();
  }
  if (!errors.empty()) return errors.front();
  return out;
}

bool SegmentPrunedByZones(const Segment& seg, const RangeQuery& query) {
  for (const QueryTerm& term : query.terms) {
    if (term.attribute >= seg.zones.size()) return false;
    const ZoneEntry& zone = seg.zones[term.attribute];
    const bool any_present = zone.missing < seg.num_rows;
    const bool overlaps = any_present &&
                          term.interval.lo <= zone.max_value &&
                          term.interval.hi >= zone.min_value;
    const bool satisfiable = query.semantics == MissingSemantics::kMatch
                                 ? (overlaps || zone.missing > 0)
                                 : overlaps;
    if (!satisfiable) return true;
  }
  return false;
}

}  // namespace internal
}  // namespace incdb
