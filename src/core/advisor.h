#ifndef INCDB_CORE_ADVISOR_H_
#define INCDB_CORE_ADVISOR_H_

#include <vector>

#include "core/index_factory.h"
#include "stats/histogram.h"
#include "table/table.h"

namespace incdb {

/// The query mix an index is being chosen for.
struct WorkloadProfile {
  /// Search-key dimensionality k.
  size_t dims = 4;
  /// Per-term attribute selectivity (interval width / cardinality).
  /// Ignored when point_queries is true.
  double attribute_selectivity = 0.1;
  bool point_queries = false;
  MissingSemantics semantics = MissingSemantics::kMatch;
};

/// Predicted cost of one index kind for a profile. Costs are in abstract
/// "word touches" per query — comparable across kinds, not wall-clock.
struct IndexCostEstimate {
  IndexKind kind = IndexKind::kSequentialScan;
  /// Predicted index size in bytes (0 for the scan).
  double size_bytes = 0.0;
  /// Predicted words touched per query.
  double query_cost = 0.0;
};

/// Cost-based index advisor — the paper's §6 "insights into the conditions
/// for which to use each technique", made executable.
///
/// From exact per-attribute histograms it predicts, for every index kind,
/// the index size (via the analytic WAH compression model, so skew and
/// missing rates matter exactly as in the paper's §5.2 analysis) and a
/// per-query cost in word touches (bitvector accesses × expected
/// compressed words for the bitmap family; packed-scan words for the
/// VA-file; cell reads for the scan; subquery counts for the baselines).
/// Recommend() returns the cheapest kind whose predicted size fits the
/// memory budget — reproducing the paper's guidance: BEE for point
/// queries, BRE for range queries, VA-file under tight memory, scan for
/// tiny tables.
class IndexAdvisor {
 public:
  /// Gathers histograms for every attribute (one pass over the table).
  explicit IndexAdvisor(const Table& table);

  /// Predicted size/cost for one kind.
  IndexCostEstimate Estimate(IndexKind kind,
                             const WorkloadProfile& profile) const;

  /// All kinds whose predicted size fits `memory_budget_bytes`, sorted by
  /// ascending predicted query cost. The scan always qualifies.
  std::vector<IndexCostEstimate> Rank(const WorkloadProfile& profile,
                                      double memory_budget_bytes) const;

  /// The cheapest qualifying kind.
  IndexKind Recommend(const WorkloadProfile& profile,
                      double memory_budget_bytes = 1e18) const;

  const AttributeHistogram& histogram(size_t attr) const {
    return histograms_[attr];
  }

 private:
  double AvgTermWidth(const WorkloadProfile& profile, size_t attr) const;

  uint64_t num_rows_;
  std::vector<AttributeHistogram> histograms_;
};

}  // namespace incdb

#endif  // INCDB_CORE_ADVISOR_H_
