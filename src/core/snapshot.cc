#include "core/snapshot.h"

#include <algorithm>
#include <cmath>
#include <optional>

#include "core/expr_executor.h"
#include "query/parser.h"
#include "query/selectivity.h"

namespace incdb {

std::vector<IndexKind> Snapshot::Indexes() const {
  std::vector<IndexKind> kinds;
  kinds.reserve(state_->indexes->size());
  for (const internal::SnapshotIndexEntry& entry : *state_->indexes) {
    kinds.push_back(entry.kind);
  }
  return kinds;
}

bool Snapshot::HasIndex(IndexKind kind) const {
  for (const internal::SnapshotIndexEntry& entry : *state_->indexes) {
    if (entry.kind == kind) return true;
  }
  return false;
}

uint64_t Snapshot::IndexSizeInBytes() const {
  uint64_t total = 0;
  for (const internal::SnapshotIndexEntry& entry : *state_->indexes) {
    total += entry.index->SizeInBytes();
  }
  return total;
}

double Snapshot::MissingRate(size_t attr) const {
  if (state_->num_rows == 0) return 0.0;
  return static_cast<double>(state_->missing_counts[attr]) /
         static_cast<double>(state_->num_rows);
}

Result<QueryTerm> ResolveNamedTerm(const Table& table, const NamedTerm& term) {
  INCDB_ASSIGN_OR_RETURN(size_t attr, table.schema().IndexOf(term.attribute));
  const uint32_t cardinality = table.schema().attribute(attr).cardinality;
  if (term.lo < 1 || term.hi > static_cast<Value>(cardinality) ||
      term.lo > term.hi) {
    return Status::InvalidArgument(
        "interval [" + std::to_string(term.lo) + "," +
        std::to_string(term.hi) + "] invalid for attribute '" +
        term.attribute + "' (cardinality " + std::to_string(cardinality) +
        ")");
  }
  return QueryTerm{attr, {term.lo, term.hi}};
}

namespace {

// Tie-break order per query shape (paper §6: BEE optimal for point
// queries; BRE typically best for range queries; BIE next — two bitmaps
// per dimension at half BEE's storage; VA-file the fallback index). The
// cost model below reproduces this ordering on its own for the common
// cases; the preference list only decides exact cost ties (e.g. BRE vs
// BIE, both a constant two bitvectors per dimension).
const IndexKind kPointPreference[] = {
    IndexKind::kBitmapEquality,  IndexKind::kBitmapRange,
    IndexKind::kBitmapInterval,  IndexKind::kBitmapBitSliced,
    IndexKind::kVaFile,          IndexKind::kVaPlusFile,
    IndexKind::kMosaic,          IndexKind::kBitstringAugmented,
    IndexKind::kSequentialScan};
const IndexKind kRangePreference[] = {
    IndexKind::kBitmapRange,     IndexKind::kBitmapInterval,
    IndexKind::kBitmapEquality,  IndexKind::kBitmapBitSliced,
    IndexKind::kVaFile,          IndexKind::kVaPlusFile,
    IndexKind::kMosaic,          IndexKind::kBitstringAugmented,
    IndexKind::kSequentialScan};

int PreferenceRank(IndexKind kind, bool is_point) {
  const auto& preference = is_point ? kPointPreference : kRangePreference;
  int rank = 0;
  for (IndexKind candidate : preference) {
    if (candidate == kind) return rank;
    ++rank;
  }
  return rank;
}

double Log2Ceil(uint32_t cardinality) {
  return std::ceil(std::log2(static_cast<double>(std::max(2u, cardinality))));
}

/// Predicted words touched when `kind` serves one conjunctive term list.
/// Bitmap kinds pay (bitvector accesses) x (words per full bitvector); the
/// VA-file pays the packed approximation scan plus selectivity-scaled exact
/// refinement; the scan pays one cell read per row per dimension. The
/// tree-based baselines are modeled as constant fractions of the scan: good
/// enough to rank them between the VA-file and no index at all, which is
/// where the paper's measurements put them.
double KindCost(const internal::SnapshotState& state, IndexKind kind,
                const std::vector<QueryTerm>& terms,
                MissingSemantics semantics, double estimated_selectivity) {
  const Schema& schema = state.table->schema();
  const double n = static_cast<double>(state.num_rows);
  const double bitvector_words = n / 31.0;
  // Under missing-is-match every dimension also reads the missing bitmap.
  const double missing_extra =
      semantics == MissingSemantics::kMatch ? 1.0 : 0.0;
  const double dims = static_cast<double>(std::max<size_t>(1, terms.size()));
  const double scan_cost = 0.5 * n * dims;
  switch (kind) {
    case IndexKind::kBitmapEquality: {
      double accesses = 0.0;
      for (const QueryTerm& term : terms) {
        accesses += static_cast<double>(term.interval.Width()) + missing_extra;
      }
      return accesses * bitvector_words;
    }
    case IndexKind::kBitmapRange: {
      double accesses = 0.0;
      for (const QueryTerm& term : terms) {
        const uint32_t cardinality =
            schema.attribute(term.attribute).cardinality;
        const bool one_sided =
            term.interval.lo == 1 ||
            term.interval.hi == static_cast<Value>(cardinality);
        accesses += (one_sided ? 1.0 : 2.0) + missing_extra;
      }
      return accesses * bitvector_words;
    }
    case IndexKind::kBitmapInterval:
      return (2.0 + missing_extra) * dims * bitvector_words;
    case IndexKind::kBitmapBitSliced: {
      double accesses = 0.0;
      for (const QueryTerm& term : terms) {
        accesses +=
            Log2Ceil(schema.attribute(term.attribute).cardinality) + 1.0;
      }
      return accesses * bitvector_words;
    }
    case IndexKind::kVaFile:
    case IndexKind::kVaPlusFile: {
      double bits = 0.0;
      for (const QueryTerm& term : terms) {
        bits += Log2Ceil(schema.attribute(term.attribute).cardinality) + 1.0;
      }
      return n * bits / 64.0 + estimated_selectivity * scan_cost;
    }
    case IndexKind::kMosaic:
      return 0.40 * scan_cost;
    case IndexKind::kBitstringAugmented:
      return 0.45 * scan_cost;
    case IndexKind::kSequentialScan:
      return scan_cost;
  }
  return scan_cost;
}

bool TermsArePoint(const std::vector<QueryTerm>& terms) {
  for (const QueryTerm& term : terms) {
    if (!term.interval.IsPoint()) return false;
  }
  return true;
}

/// Predicted global selectivity of a conjunctive term list (paper §5.3),
/// using the snapshot's actual per-attribute missing rates.
double TermsSelectivity(const internal::SnapshotState& state,
                        const std::vector<QueryTerm>& terms,
                        MissingSemantics semantics) {
  const Schema& schema = state.table->schema();
  double selectivity = 1.0;
  for (const QueryTerm& term : terms) {
    const uint32_t cardinality = schema.attribute(term.attribute).cardinality;
    const double attribute_selectivity =
        static_cast<double>(term.interval.Width()) /
        static_cast<double>(cardinality);
    const double missing_rate =
        state.num_rows == 0
            ? 0.0
            : static_cast<double>(state.missing_counts[term.attribute]) /
                  static_cast<double>(state.num_rows);
    selectivity *=
        TermMatchProbability(attribute_selectivity, missing_rate, semantics);
  }
  return selectivity;
}

/// Kleene-structure estimate for a boolean expression: terms via the §5.3
/// model, AND multiplies, OR complements-and-multiplies, NOT approximated
/// as the complement (exact only for two-valued rows).
double ExprSelectivity(const internal::SnapshotState& state,
                       const QueryExpr& expr, MissingSemantics semantics) {
  switch (expr.kind()) {
    case QueryExpr::Kind::kTerm: {
      const std::vector<QueryTerm> term = {{expr.attribute(), expr.interval()}};
      return TermsSelectivity(state, term, semantics);
    }
    case QueryExpr::Kind::kAnd: {
      double p = 1.0;
      for (const QueryExpr& child : expr.children()) {
        p *= ExprSelectivity(state, child, semantics);
      }
      return p;
    }
    case QueryExpr::Kind::kOr: {
      double q = 1.0;
      for (const QueryExpr& child : expr.children()) {
        q *= 1.0 - ExprSelectivity(state, child, semantics);
      }
      return 1.0 - q;
    }
    case QueryExpr::Kind::kNot:
      return 1.0 - ExprSelectivity(state, expr.children().front(), semantics);
  }
  return 1.0;
}

void CollectLeafTerms(const QueryExpr& expr, std::vector<QueryTerm>* out) {
  if (expr.kind() == QueryExpr::Kind::kTerm) {
    out->push_back({expr.attribute(), expr.interval()});
    return;
  }
  for (const QueryExpr& child : expr.children()) {
    CollectLeafTerms(child, out);
  }
}

struct Plan {
  const internal::SnapshotIndexEntry* entry = nullptr;  // null = scan
  RoutingDecision decision;
};

/// Ranks every registered index plus the scan by (predicted cost,
/// preference rank) and returns the winner. `cost_multiplier` scales
/// index/scan costs uniformly (the Kleene expression executor evaluates
/// every leaf under both semantics, i.e. twice).
Plan PickPlan(const internal::SnapshotState& state,
              const std::vector<QueryTerm>& terms, MissingSemantics semantics,
              double estimated_selectivity, double cost_multiplier) {
  const bool is_point = TermsArePoint(terms);
  Plan best;
  best.decision.index_kind = IndexKind::kSequentialScan;
  best.decision.index_name = "SeqScan";
  best.decision.is_point_query = is_point;
  best.decision.estimated_selectivity = estimated_selectivity;
  best.decision.estimated_cost =
      cost_multiplier * KindCost(state, IndexKind::kSequentialScan, terms,
                                 semantics, estimated_selectivity);
  int best_rank = PreferenceRank(IndexKind::kSequentialScan, is_point);
  for (const internal::SnapshotIndexEntry& entry : *state.indexes) {
    const double cost =
        cost_multiplier *
        KindCost(state, entry.kind, terms, semantics, estimated_selectivity);
    const int rank = PreferenceRank(entry.kind, is_point);
    if (cost < best.decision.estimated_cost ||
        (cost == best.decision.estimated_cost && rank < best_rank)) {
      best.entry = &entry;
      best.decision.index_kind = entry.kind;
      best.decision.index_name = entry.index->Name();
      best.decision.estimated_cost = cost;
      best_rank = rank;
    }
  }
  return best;
}

Plan PickForRangeQuery(const internal::SnapshotState& state,
                       const RangeQuery& query) {
  return PickPlan(state, query.terms, query.semantics,
                  TermsSelectivity(state, query.terms, query.semantics),
                  /*cost_multiplier=*/1.0);
}

Plan PickForExpression(const internal::SnapshotState& state,
                       const QueryExpr& expr, MissingSemantics semantics) {
  std::vector<QueryTerm> leaves;
  CollectLeafTerms(expr, &leaves);
  return PickPlan(state, leaves, semantics,
                  ExprSelectivity(state, expr, semantics),
                  /*cost_multiplier=*/2.0);
}

/// Strips logically deleted rows from a result sized to the watermark.
void StripDeleted(const internal::SnapshotState& state, BitVector* result) {
  if (state.num_deleted == 0 || state.deleted == nullptr) return;
  BitVector live = *state.deleted;
  live.Resize(result->size());
  live.Flip();
  result->AndWith(live);
}

/// Masks deletions, then fills count / row_ids per the request.
void FinishResult(const internal::SnapshotState& state,
                  const QueryRequest& request, BitVector result,
                  QueryResult* out) {
  StripDeleted(state, &result);
  out->count = result.Count();
  if (!request.count_only) out->row_ids = result.ToIndices();
}

}  // namespace

RoutingDecision RouteRangeQuery(const Snapshot& snapshot,
                                const RangeQuery& query) {
  return PickForRangeQuery(snapshot.state(), query).decision;
}

RoutingDecision RouteExpression(const Snapshot& snapshot,
                                const QueryExpr& expr,
                                MissingSemantics semantics) {
  return PickForExpression(snapshot.state(), expr, semantics).decision;
}

Result<QueryResult> RunOnSnapshot(const Snapshot& snapshot,
                                  const QueryRequest& request) {
  if (!snapshot.valid()) {
    return Status::InvalidArgument("invalid (default-constructed) snapshot");
  }
  const internal::SnapshotState& state = snapshot.state();
  const Table& table = *state.table;

  QueryResult out;
  out.epoch = state.epoch;
  out.visible_rows = state.num_rows;

  if (request.shape == QueryRequest::Shape::kTerms) {
    RangeQuery query;
    query.semantics = request.semantics;
    for (const NamedTerm& term : request.terms) {
      INCDB_ASSIGN_OR_RETURN(QueryTerm resolved,
                             ResolveNamedTerm(table, term));
      query.terms.push_back(resolved);
    }
    INCDB_RETURN_IF_ERROR(ValidateQuery(query, table));
    const Plan plan = PickForRangeQuery(state, query);
    out.routing = plan.decision;
    out.chosen_index = plan.decision.index_name;
    if (plan.entry == nullptr) {
      BitVector result(state.num_rows);
      for (uint64_t r = 0; r < state.num_rows; ++r) {
        if (RowMatches(table, r, query)) result.Set(r);
      }
      FinishResult(state, request, std::move(result), &out);
      return out;
    }
    const IncompleteIndex& index = *plan.entry->index;
    const uint64_t covered = plan.entry->covered_rows;
    if (request.count_only && covered == state.num_rows &&
        state.num_deleted == 0) {
      // Count straight off compressed index storage — no result bitvector.
      INCDB_ASSIGN_OR_RETURN(out.count, index.ExecuteCount(query, &out.stats));
      return out;
    }
    INCDB_ASSIGN_OR_RETURN(BitVector result, index.Execute(query, &out.stats));
    if (result.size() != covered) {
      return Status::Internal(index.Name() + " returned " +
                              std::to_string(result.size()) +
                              " rows, expected its build coverage " +
                              std::to_string(covered));
    }
    result.Resize(state.num_rows);
    // Delta scan: rows appended after the index was built.
    for (uint64_t r = covered; r < state.num_rows; ++r) {
      if (RowMatches(table, r, query)) result.Set(r);
    }
    FinishResult(state, request, std::move(result), &out);
    return out;
  }

  // Expression and text requests share the Kleene evaluation path.
  std::optional<QueryExpr> parsed;
  if (request.shape == QueryRequest::Shape::kText) {
    auto parse_result = ParseQuery(request.text, table);
    if (!parse_result.ok()) return parse_result.status();
    parsed = std::move(parse_result).value();
  } else {
    if (!request.expression.has_value()) {
      return Status::InvalidArgument(
          "expression request carries no expression");
    }
    parsed = *request.expression;
  }
  const QueryExpr& expr = *parsed;
  INCDB_RETURN_IF_ERROR(expr.Validate(table));
  const Plan plan = PickForExpression(state, expr, request.semantics);
  out.routing = plan.decision;
  out.chosen_index = plan.decision.index_name;
  BitVector result(0);
  if (plan.entry == nullptr) {
    result.Resize(state.num_rows);
    for (uint64_t r = 0; r < state.num_rows; ++r) {
      if (ExprMatches(table, r, expr, request.semantics)) result.Set(r);
    }
  } else {
    const IncompleteIndex& index = *plan.entry->index;
    const uint64_t covered = plan.entry->covered_rows;
    INCDB_ASSIGN_OR_RETURN(
        result, ExecuteExpr(index, expr, request.semantics, &out.stats));
    if (result.size() != covered) {
      return Status::Internal(index.Name() + " returned " +
                              std::to_string(result.size()) +
                              " rows, expected its build coverage " +
                              std::to_string(covered));
    }
    result.Resize(state.num_rows);
    for (uint64_t r = covered; r < state.num_rows; ++r) {
      if (ExprMatches(table, r, expr, request.semantics)) result.Set(r);
    }
  }
  FinishResult(state, request, std::move(result), &out);
  return out;
}

}  // namespace incdb
