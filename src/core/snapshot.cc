#include "core/snapshot.h"

namespace incdb {

std::vector<IndexKind> Snapshot::Indexes() const {
  std::vector<IndexKind> kinds;
  kinds.reserve(state_->indexes->size());
  for (const internal::SnapshotIndexEntry& entry : *state_->indexes) {
    kinds.push_back(entry.kind);
  }
  return kinds;
}

bool Snapshot::HasIndex(IndexKind kind) const {
  for (const internal::SnapshotIndexEntry& entry : *state_->indexes) {
    if (entry.kind == kind) return true;
  }
  return false;
}

uint64_t Snapshot::IndexSizeInBytes() const {
  uint64_t total = 0;
  for (const internal::SnapshotIndexEntry& entry : *state_->indexes) {
    total += entry.index->SizeInBytes();
  }
  return total;
}

double Snapshot::MissingRate(size_t attr) const {
  if (state_->num_rows == 0) return 0.0;
  return static_cast<double>(state_->missing_counts[attr]) /
         static_cast<double>(state_->num_rows);
}

Result<QueryTerm> ResolveNamedTerm(const Table& table, const NamedTerm& term) {
  INCDB_ASSIGN_OR_RETURN(size_t attr, table.schema().IndexOf(term.attribute));
  const uint32_t cardinality = table.schema().attribute(attr).cardinality;
  if (term.lo < 1 || term.hi > static_cast<Value>(cardinality) ||
      term.lo > term.hi) {
    return Status::InvalidArgument(
        "interval [" + std::to_string(term.lo) + "," +
        std::to_string(term.hi) + "] invalid for attribute '" +
        term.attribute + "' (cardinality " + std::to_string(cardinality) +
        ")");
  }
  return QueryTerm{attr, {term.lo, term.hi}};
}

}  // namespace incdb
