#include "core/query_api.h"

#include <string>

namespace incdb {

namespace {

/// Walks an expression for request-level problems (interval order). Schema
/// checks (attribute range, domain bounds) stay in QueryExpr::Validate.
Status ValidateExpr(const QueryExpr& expr) {
  if (expr.kind() == QueryExpr::Kind::kTerm) {
    const Interval interval = expr.interval();
    if (interval.lo > interval.hi) {
      return Status::InvalidArgument(
          "expression term interval inverted: [" +
          std::to_string(interval.lo) + "," + std::to_string(interval.hi) +
          "]");
    }
    return Status::OK();
  }
  if (expr.children().empty()) {
    return Status::InvalidArgument("AND/OR expression without children");
  }
  for (const QueryExpr& child : expr.children()) {
    INCDB_RETURN_IF_ERROR(ValidateExpr(child));
  }
  return Status::OK();
}

}  // namespace

Status QueryRequest::Validate() const {
  switch (shape) {
    case Shape::kTerms: {
      if (terms.empty()) {
        return Status::InvalidArgument(
            "terms request carries no terms; a query needs at least one "
            "predicate");
      }
      for (const NamedTerm& term : terms) {
        if (term.attribute.empty()) {
          return Status::InvalidArgument("term with empty attribute name");
        }
        if (term.lo > term.hi) {
          return Status::InvalidArgument(
              "term '" + term.attribute + "' interval inverted: [" +
              std::to_string(term.lo) + "," + std::to_string(term.hi) + "]");
        }
      }
      break;
    }
    case Shape::kExpression: {
      if (!expression.has_value()) {
        return Status::InvalidArgument(
            "expression request carries no expression");
      }
      INCDB_RETURN_IF_ERROR(ValidateExpr(*expression));
      break;
    }
    case Shape::kText: {
      if (text.empty()) {
        return Status::InvalidArgument("text request carries empty text");
      }
      break;
    }
  }
  if (count_only && limit != 0) {
    return Status::InvalidArgument(
        "conflicting count/materialize flags: count_only computes no row "
        "ids, so a row limit of " + std::to_string(limit) +
        " cannot apply; drop one of the two");
  }
  return Status::OK();
}

}  // namespace incdb
