#ifndef INCDB_CORE_INDEX_FACTORY_H_
#define INCDB_CORE_INDEX_FACTORY_H_

#include <memory>
#include <string>

#include "core/incomplete_index.h"
#include "table/table.h"

namespace incdb {

/// The index families incdb provides.
enum class IndexKind {
  /// No index: full sequential scan (baseline and oracle).
  kSequentialScan,
  /// WAH-compressed equality-encoded bitmap index (paper §4.2).
  kBitmapEquality,
  /// WAH-compressed range-encoded bitmap index (paper §4.3).
  kBitmapRange,
  /// WAH-compressed interval-encoded bitmap index (related work [5],
  /// extended with the missing bitvector; ~half BEE's storage, <= 2
  /// bitmaps per query dimension).
  kBitmapInterval,
  /// WAH-compressed bit-sliced (binary-encoded) bitmap index (related work
  /// [10], extended with the all-zeros missing code; ~lg C bitmaps).
  kBitmapBitSliced,
  /// Vector-approximation file, uniform bins (paper §4.5).
  kVaFile,
  /// VA+-style equi-depth VA-file (paper future work).
  kVaPlusFile,
  /// MOSAIC baseline: one B+-tree per attribute (related work [12]).
  kMosaic,
  /// Bitstring-augmented R-tree baseline (related work [12]).
  kBitstringAugmented,
  /// WAH bitmap over the Chan-Ioannidis mixed-radix slicer: ~2*sqrt(C)
  /// bitmaps per attribute instead of C, per-digit probe trees
  /// (docs/ENCODINGS.md).
  kBitmapMultiComponent,
  /// WAH bitmap over fanout-2 bin levels: ~2C bitmaps, but a wide range
  /// touches <= 2 bins per level — O(log C) probes (docs/ENCODINGS.md).
  kBitmapHierarchical,
};

std::string_view IndexKindToString(IndexKind kind);

/// Case-insensitive inverse of IndexKindToString, also accepting the CLI
/// short aliases (scan, bee, bre, bie, bsl, va, va+, mosaic, bitstring,
/// mc, hier). Unknown names fail with the valid list in the error.
Result<IndexKind> IndexKindFromString(std::string_view name);

/// Builds an index of the requested kind over `table`. The table must
/// outlive the returned index (the sequential scan and VA-file read it at
/// query time; the others only need it during Build).
Result<std::unique_ptr<IncompleteIndex>> CreateIndex(IndexKind kind,
                                                     const Table& table);

}  // namespace incdb

#endif  // INCDB_CORE_INDEX_FACTORY_H_
