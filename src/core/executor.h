#ifndef INCDB_CORE_EXECUTOR_H_
#define INCDB_CORE_EXECUTOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "core/incomplete_index.h"
#include "query/query.h"
#include "table/table.h"

namespace incdb {

/// Aggregate outcome of running a query workload against one index —
/// the per-configuration data point the paper's Fig. 5 style experiments
/// report.
struct WorkloadResult {
  std::string index_name;
  size_t num_queries = 0;
  /// Wall-clock time to execute all queries, milliseconds (the paper's
  /// query-execution-time metric: indexes already in memory, result is the
  /// set of matching record pointers).
  double total_millis = 0.0;
  /// Sum of result-set sizes over all queries.
  uint64_t total_matches = 0;
  /// Realized mean global selectivity (total_matches / (queries * rows)).
  double realized_selectivity = 0.0;
  /// Summed per-query cost counters.
  QueryStats stats;
};

/// Executes every query in `queries` against `index`, timing the batch.
/// `num_rows` is the table row count (for realized selectivity).
Result<WorkloadResult> RunWorkload(const IncompleteIndex& index,
                                   const std::vector<RangeQuery>& queries,
                                   uint64_t num_rows);

/// Like RunWorkload, but fans the batch out over `num_threads` worker
/// threads (index query execution is read-only and thread-safe).
/// total_millis is the wall-clock time of the parallel batch; per-query
/// stats are summed across workers. num_threads == 0 uses the hardware
/// concurrency.
Result<WorkloadResult> RunWorkloadParallel(
    const IncompleteIndex& index, const std::vector<RangeQuery>& queries,
    uint64_t num_rows, size_t num_threads);

/// Runs every query against both `index` and the RowMatches oracle and
/// fails on the first mismatch (reporting the query and the differing row).
/// The test suite's main correctness tool.
Status VerifyAgainstOracle(const IncompleteIndex& index, const Table& table,
                           const std::vector<RangeQuery>& queries);

}  // namespace incdb

#endif  // INCDB_CORE_EXECUTOR_H_
