#ifndef INCDB_CORE_QUERY_API_H_
#define INCDB_CORE_QUERY_API_H_

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/incomplete_index.h"
#include "core/index_factory.h"
#include "query/expr.h"
#include "query/query.h"

namespace incdb {

/// A query term addressed by attribute name (the Database-level API).
struct NamedTerm {
  std::string attribute;
  Value lo = 1;
  Value hi = 1;
};

/// One query through the unified Database facade. Carries exactly one
/// predicate form — named conjunctive terms, a boolean expression, or a
/// textual predicate (query/parser.h grammar) — plus the missing-data
/// semantics and execution options. Build via the named factories:
///
///   Database::Run(QueryRequest::Terms({{"rating", 4, 5}}));
///   Database::Run(QueryRequest::Text("rating >= 4 AND NOT region = 3",
///                                    MissingSemantics::kNoMatch)
///                     .CountOnly());
struct QueryRequest {
  enum class Shape { kTerms, kExpression, kText };

  static QueryRequest Terms(
      std::vector<NamedTerm> terms,
      MissingSemantics semantics = MissingSemantics::kMatch) {
    QueryRequest request;
    request.shape = Shape::kTerms;
    request.terms = std::move(terms);
    request.semantics = semantics;
    return request;
  }

  static QueryRequest Expression(
      QueryExpr expr, MissingSemantics semantics = MissingSemantics::kMatch) {
    QueryRequest request;
    request.shape = Shape::kExpression;
    request.expression = std::move(expr);
    request.semantics = semantics;
    return request;
  }

  static QueryRequest Text(
      std::string text, MissingSemantics semantics = MissingSemantics::kMatch) {
    QueryRequest request;
    request.shape = Shape::kText;
    request.text = std::move(text);
    request.semantics = semantics;
    return request;
  }

  /// Requests COUNT(*) only: QueryResult::count is filled, row_ids stays
  /// empty, and eligible plans route to the index's compressed ExecuteCount
  /// path without materializing a result bitvector. Chainable.
  QueryRequest& CountOnly(bool on = true) {
    count_only = on;
    return *this;
  }

  /// Evaluates plan leaves (index probes, scan morsels) on `num_threads`
  /// workers (0 = hardware concurrency). The parallel run is bit-identical
  /// to the serial one; the planner additionally keeps conjunctions split
  /// into per-dimension probes so they can proceed concurrently. Chainable.
  QueryRequest& Parallel(size_t num_threads = 0) {
    parallelism = num_threads;
    return *this;
  }

  /// Asks for QueryResult::explain — the EXPLAIN rendering of the executed
  /// operator tree with estimated vs. realized selectivity per node.
  /// Chainable.
  QueryRequest& Explain(bool on = true) {
    explain = on;
    return *this;
  }

  Shape shape = Shape::kTerms;
  /// Conjunctive named terms (Shape::kTerms).
  std::vector<NamedTerm> terms;
  /// Boolean AND/OR/NOT expression (Shape::kExpression).
  std::optional<QueryExpr> expression;
  /// Textual predicate (Shape::kText).
  std::string text;
  MissingSemantics semantics = MissingSemantics::kMatch;
  bool count_only = false;
  /// Worker threads for plan-leaf evaluation: 1 = serial, 0 = hardware
  /// concurrency.
  size_t parallelism = 1;
  /// Fill QueryResult::explain after execution.
  bool explain = false;
};

/// How the router decided to serve a query — recorded in every QueryResult
/// so callers (and tests) can observe the plan, not just the answer.
struct RoutingDecision {
  /// The structure that served the query (kSequentialScan = no index).
  IndexKind index_kind = IndexKind::kSequentialScan;
  /// Its display name, e.g. "BEE-WAH" or "SeqScan".
  std::string index_name = "SeqScan";
  /// True when every interval of the (resolved) predicate is a point.
  bool is_point_query = false;
  /// Predicted fraction of rows answering the query, from the paper's §5.3
  /// selectivity model with the snapshot's actual per-attribute missing
  /// rates (query/selectivity.h).
  double estimated_selectivity = 1.0;
  /// Predicted cost of the chosen plan, in abstract words touched —
  /// comparable across index kinds, not wall-clock.
  double estimated_cost = 0.0;
};

/// Outcome of one QueryRequest: the answer plus everything the engine knows
/// about how it was produced. Replaces the old `std::string* chosen`
/// out-param and surfaces the per-query QueryStats counters (bitvector
/// ops, words touched, VA candidates, ...) that the three legacy overloads
/// dropped on the floor.
struct QueryResult {
  /// Matching row ids, ascending. Empty when the request was count_only.
  std::vector<uint32_t> row_ids;
  /// COUNT(*) of the result — always filled, with or without count_only.
  uint64_t count = 0;
  /// Name of the serving structure (== routing.index_name).
  std::string chosen_index;
  /// The full routing decision.
  RoutingDecision routing;
  /// Per-query cost counters from the serving index.
  QueryStats stats;
  /// Epoch of the snapshot that served the query.
  uint64_t epoch = 0;
  /// Rows visible to that snapshot (the append watermark).
  uint64_t visible_rows = 0;
  /// EXPLAIN rendering of the executed plan — the operator tree with
  /// estimated vs. realized selectivity and per-operator cost counters.
  /// Filled only when the request asked for it (QueryRequest::Explain).
  std::string explain;
};

/// Outcome of Database::RunBatch: per-request results in request order plus
/// batch-level accounting.
struct BatchResult {
  std::vector<Result<QueryResult>> results;
  /// Wall-clock time of the whole fan-out, milliseconds.
  double wall_millis = 0.0;
  /// Worker threads actually used.
  size_t num_threads = 0;
  /// Summed counts over successful requests.
  uint64_t total_matches = 0;
  /// Summed per-query cost counters over successful requests.
  QueryStats stats;
};

}  // namespace incdb

#endif  // INCDB_CORE_QUERY_API_H_
