#ifndef INCDB_CORE_QUERY_API_H_
#define INCDB_CORE_QUERY_API_H_

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "core/incomplete_index.h"
#include "core/index_factory.h"
#include "query/expr.h"
#include "query/query.h"

namespace incdb {

/// A query term addressed by attribute name (the Database-level API).
struct NamedTerm {
  std::string attribute;
  Value lo = 1;
  Value hi = 1;
};

/// One query through the unified Database facade. Carries exactly one
/// predicate form — named conjunctive terms, a boolean expression, or a
/// textual predicate (query/parser.h grammar) — plus the missing-data
/// semantics and execution options. Build via the named factories:
///
///   Database::Run(QueryRequest::Terms({{"rating", 4, 5}}));
///   Database::Run(QueryRequest::Text("rating >= 4 AND NOT region = 3",
///                                    MissingSemantics::kNoMatch)
///                     .CountOnly());
///
/// FROZEN WIRE CONTRACT. This struct (and QueryResult / QueryStats below)
/// is also the serving daemon's request schema: src/server/wire.h encodes
/// it field by field under the explicit field numbers listed here, so the
/// in-process API and the network API are one contract. Compatibility
/// rules, enforced by tests/server/wire_test.cc:
///
///   * every field has a number that is never changed or reused; new
///     fields take the next free number and must be optional (a decoder
///     that does not know them skips them, a decoder that expects them
///     falls back to the default when absent);
///   * decoders skip unknown field numbers (forward compatibility) and
///     default absent known fields (backward compatibility);
///   * semantic changes to an existing field require a new field number
///     plus a protocol-version bump (server/wire.h kProtocolVersion).
///
/// Field numbers: 1 shape (u8), 2 semantics (u8), 3 count_only (u8),
/// 4 parallelism (u64), 5 explain (u8), 6 terms (repeated submessage:
/// 1 attribute name, 2 lo i64, 3 hi i64), 7 text (string), 8 expression
/// (recursive submessage: 1 kind u8, 2 attribute u64, 3 lo i64, 4 hi i64,
/// 5 child submessage repeated), 9 deadline_millis (u64), 10 limit (u64).
struct QueryRequest {
  enum class Shape { kTerms, kExpression, kText };

  static QueryRequest Terms(
      std::vector<NamedTerm> terms,
      MissingSemantics semantics = MissingSemantics::kMatch) {
    QueryRequest request;
    request.shape = Shape::kTerms;
    request.terms = std::move(terms);
    request.semantics = semantics;
    return request;
  }

  static QueryRequest Expression(
      QueryExpr expr, MissingSemantics semantics = MissingSemantics::kMatch) {
    QueryRequest request;
    request.shape = Shape::kExpression;
    request.expression = std::move(expr);
    request.semantics = semantics;
    return request;
  }

  static QueryRequest Text(
      std::string text, MissingSemantics semantics = MissingSemantics::kMatch) {
    QueryRequest request;
    request.shape = Shape::kText;
    request.text = std::move(text);
    request.semantics = semantics;
    return request;
  }

  /// Requests COUNT(*) only: QueryResult::count is filled, row_ids stays
  /// empty, and eligible plans route to the index's compressed ExecuteCount
  /// path without materializing a result bitvector. Chainable.
  QueryRequest& CountOnly(bool on = true) {
    count_only = on;
    return *this;
  }

  /// Evaluates plan leaves (index probes, scan morsels) on `num_threads`
  /// workers (0 = hardware concurrency). The parallel run is bit-identical
  /// to the serial one; the planner additionally keeps conjunctions split
  /// into per-dimension probes so they can proceed concurrently. Chainable.
  QueryRequest& Parallel(size_t num_threads = 0) {
    parallelism = num_threads;
    return *this;
  }

  /// Asks for QueryResult::explain — the EXPLAIN rendering of the executed
  /// operator tree with estimated vs. realized selectivity per node.
  /// Chainable.
  QueryRequest& Explain(bool on = true) {
    explain = on;
    return *this;
  }

  /// Cooperative deadline for the whole request, measured from the moment
  /// execution starts (for the daemon: from admission). 0 = none. The plan
  /// executor checks it at morsel boundaries and fails the query with
  /// StatusCode::kDeadlineExceeded; an expired request queued behind others
  /// is shed by the server without executing at all. Chainable.
  QueryRequest& DeadlineMillis(uint64_t millis) {
    deadline_millis = millis;
    return *this;
  }

  /// Caps QueryResult::row_ids at the first `n` matches (ascending row
  /// order). QueryResult::count still reports the full match count.
  /// 0 = unlimited. Conflicts with CountOnly — a count-only request has no
  /// rows to limit — which Validate() rejects. Chainable.
  QueryRequest& Limit(uint64_t n) {
    limit = n;
    return *this;
  }

  /// Structural validation of the request itself (no table needed): a
  /// predicate form matching `shape` and non-empty (at least one term, a
  /// present expression, non-empty text), attribute names non-empty,
  /// term intervals ordered lo <= hi, and no conflicting count/materialize
  /// flags (count_only with a row limit). Called at both API boundaries —
  /// plan::PlanRequest for in-process callers and wire decode in the
  /// serving daemon — so no malformed request is ever planned. Returns
  /// StatusCode::kInvalidArgument with a precise message on failure.
  /// Schema-dependent checks (attribute exists, interval inside the
  /// domain) happen later, at name resolution against the table.
  Status Validate() const;

  Shape shape = Shape::kTerms;
  /// Conjunctive named terms (Shape::kTerms).
  std::vector<NamedTerm> terms;
  /// Boolean AND/OR/NOT expression (Shape::kExpression).
  std::optional<QueryExpr> expression;
  /// Textual predicate (Shape::kText).
  std::string text;
  MissingSemantics semantics = MissingSemantics::kMatch;
  bool count_only = false;
  /// Worker threads for plan-leaf evaluation: 1 = serial, 0 = hardware
  /// concurrency.
  size_t parallelism = 1;
  /// Fill QueryResult::explain after execution.
  bool explain = false;
  /// Cooperative deadline in milliseconds; 0 = none. See DeadlineMillis().
  uint64_t deadline_millis = 0;
  /// Row-id materialization cap; 0 = unlimited. See Limit().
  uint64_t limit = 0;
};

/// How the router decided to serve a query — recorded in every QueryResult
/// so callers (and tests) can observe the plan, not just the answer.
struct RoutingDecision {
  /// The structure that served the query (kSequentialScan = no index).
  IndexKind index_kind = IndexKind::kSequentialScan;
  /// Its display name, e.g. "BEE-WAH" or "SeqScan".
  std::string index_name = "SeqScan";
  /// True when every interval of the (resolved) predicate is a point.
  bool is_point_query = false;
  /// Predicted fraction of rows answering the query, from the paper's §5.3
  /// selectivity model with the snapshot's actual per-attribute missing
  /// rates (query/selectivity.h).
  double estimated_selectivity = 1.0;
  /// Predicted cost of the chosen plan, in abstract words touched —
  /// comparable across index kinds, not wall-clock.
  double estimated_cost = 0.0;
};

/// Outcome of one QueryRequest: the answer plus everything the engine knows
/// about how it was produced — the one result shape of the unified API
/// (the deprecated Query*/chosen out-param surface is gone).
///
/// FROZEN WIRE CONTRACT (see QueryRequest above for the rules). Field
/// numbers: 1 count (u64), 2 row_ids (packed u32), 3 chosen_index
/// (string), 4 epoch (u64), 5 visible_rows (u64), 6 explain (string),
/// 7 stats (submessage: 1 bitvectors_accessed, 2 bitvector_ops,
/// 3 words_touched, 4 candidates, 5 false_positives, 6 nodes_accessed,
/// 7 subqueries, 8 rows_scanned, 9 simd_path, 10 words_decoded,
/// 11 segments_scanned, 12 segments_pruned — all u64),
/// 8 routing (submessage: 1 index_name string, 2 is_point_query u8,
/// 3 estimated_selectivity f64, 4 estimated_cost f64).
struct QueryResult {
  /// Matching row ids, ascending, truncated to QueryRequest::limit when one
  /// was set. Empty when the request was count_only.
  std::vector<uint32_t> row_ids;
  /// COUNT(*) of the result — always filled, with or without count_only.
  uint64_t count = 0;
  /// Name of the serving structure (== routing.index_name).
  std::string chosen_index;
  /// The full routing decision.
  RoutingDecision routing;
  /// Per-query cost counters from the serving index.
  QueryStats stats;
  /// Epoch of the snapshot that served the query.
  uint64_t epoch = 0;
  /// Rows visible to that snapshot (the append watermark).
  uint64_t visible_rows = 0;
  /// EXPLAIN rendering of the executed plan — the operator tree with
  /// estimated vs. realized selectivity and per-operator cost counters.
  /// Filled only when the request asked for it (QueryRequest::Explain).
  std::string explain;
};

/// Outcome of Database::RunBatch: per-request results in request order plus
/// batch-level accounting.
struct BatchResult {
  std::vector<Result<QueryResult>> results;
  /// Wall-clock time of the whole fan-out, milliseconds.
  double wall_millis = 0.0;
  /// Worker threads actually used.
  size_t num_threads = 0;
  /// Summed counts over successful requests.
  uint64_t total_matches = 0;
  /// Summed per-query cost counters over successful requests.
  QueryStats stats;
};

}  // namespace incdb

#endif  // INCDB_CORE_QUERY_API_H_
