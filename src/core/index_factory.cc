#include "core/index_factory.h"

#include "baselines/bitstring_augmented.h"
#include "baselines/mosaic.h"
#include "bitmap/bitmap_index.h"
#include "core/scan_index.h"
#include "vafile/va_file.h"

namespace incdb {

namespace {

// Moves a Result<T> of a concrete index into a unique_ptr of the interface.
template <typename T>
Result<std::unique_ptr<IncompleteIndex>> Wrap(Result<T> result) {
  if (!result.ok()) return result.status();
  return std::unique_ptr<IncompleteIndex>(
      std::make_unique<T>(std::move(result).value()));
}

}  // namespace

std::string_view IndexKindToString(IndexKind kind) {
  switch (kind) {
    case IndexKind::kSequentialScan:
      return "SeqScan";
    case IndexKind::kBitmapEquality:
      return "BEE-WAH";
    case IndexKind::kBitmapRange:
      return "BRE-WAH";
    case IndexKind::kBitmapInterval:
      return "BIE-WAH";
    case IndexKind::kBitmapBitSliced:
      return "BSL-WAH";
    case IndexKind::kVaFile:
      return "VA-File";
    case IndexKind::kVaPlusFile:
      return "VA+-File";
    case IndexKind::kMosaic:
      return "MOSAIC";
    case IndexKind::kBitstringAugmented:
      return "Bitstring-Augmented";
  }
  return "unknown";
}

Result<std::unique_ptr<IncompleteIndex>> CreateIndex(IndexKind kind,
                                                     const Table& table) {
  switch (kind) {
    case IndexKind::kSequentialScan:
      return std::unique_ptr<IncompleteIndex>(
          std::make_unique<ScanIndex>(table));
    case IndexKind::kBitmapEquality:
      return Wrap(BitmapIndex::Build(
          table, {BitmapEncoding::kEquality, MissingStrategy::kExtraBitmap}));
    case IndexKind::kBitmapRange:
      return Wrap(BitmapIndex::Build(
          table, {BitmapEncoding::kRange, MissingStrategy::kExtraBitmap}));
    case IndexKind::kBitmapInterval:
      return Wrap(BitmapIndex::Build(
          table, {BitmapEncoding::kInterval, MissingStrategy::kExtraBitmap}));
    case IndexKind::kBitmapBitSliced:
      return Wrap(BitmapIndex::Build(
          table,
          {BitmapEncoding::kBitSliced, MissingStrategy::kExtraBitmap}));
    case IndexKind::kVaFile:
      return Wrap(VaFile::Build(table, {VaQuantization::kUniform, 0}));
    case IndexKind::kVaPlusFile:
      return Wrap(VaFile::Build(table, {VaQuantization::kEquiDepth, 0}));
    case IndexKind::kMosaic:
      return Wrap(MosaicIndex::Build(table));
    case IndexKind::kBitstringAugmented:
      return Wrap(BitstringAugmentedIndex::Build(table));
  }
  return Status::InvalidArgument("unknown index kind");
}

}  // namespace incdb
