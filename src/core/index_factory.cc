#include "core/index_factory.h"

#include <algorithm>
#include <cctype>

#include "baselines/bitstring_augmented.h"
#include "baselines/mosaic.h"
#include "bitmap/bitmap_index.h"
#include "bitmap/composite_index.h"
#include "core/scan_index.h"
#include "vafile/va_file.h"

namespace incdb {

namespace {

// Moves a Result<T> of a concrete index into a unique_ptr of the interface.
template <typename T>
Result<std::unique_ptr<IncompleteIndex>> Wrap(Result<T> result) {
  if (!result.ok()) return result.status();
  return std::unique_ptr<IncompleteIndex>(
      std::make_unique<T>(std::move(result).value()));
}

}  // namespace

std::string_view IndexKindToString(IndexKind kind) {
  switch (kind) {
    case IndexKind::kSequentialScan:
      return "SeqScan";
    case IndexKind::kBitmapEquality:
      return "BEE-WAH";
    case IndexKind::kBitmapRange:
      return "BRE-WAH";
    case IndexKind::kBitmapInterval:
      return "BIE-WAH";
    case IndexKind::kBitmapBitSliced:
      return "BSL-WAH";
    case IndexKind::kVaFile:
      return "VA-File";
    case IndexKind::kVaPlusFile:
      return "VA+-File";
    case IndexKind::kMosaic:
      return "MOSAIC";
    case IndexKind::kBitstringAugmented:
      return "Bitstring-Augmented";
    case IndexKind::kBitmapMultiComponent:
      return "MC-WAH";
    case IndexKind::kBitmapHierarchical:
      return "HIER-WAH";
  }
  return "unknown";
}

Result<IndexKind> IndexKindFromString(std::string_view name) {
  std::string lower(name);
  std::transform(lower.begin(), lower.end(), lower.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  static constexpr struct {
    std::string_view alias;
    IndexKind kind;
  } kAliases[] = {
      {"seqscan", IndexKind::kSequentialScan},
      {"scan", IndexKind::kSequentialScan},
      {"bee-wah", IndexKind::kBitmapEquality},
      {"bee", IndexKind::kBitmapEquality},
      {"bre-wah", IndexKind::kBitmapRange},
      {"bre", IndexKind::kBitmapRange},
      {"bie-wah", IndexKind::kBitmapInterval},
      {"bie", IndexKind::kBitmapInterval},
      {"bsl-wah", IndexKind::kBitmapBitSliced},
      {"bsl", IndexKind::kBitmapBitSliced},
      {"va-file", IndexKind::kVaFile},
      {"va", IndexKind::kVaFile},
      {"va+-file", IndexKind::kVaPlusFile},
      {"va+", IndexKind::kVaPlusFile},
      {"mosaic", IndexKind::kMosaic},
      {"bitstring-augmented", IndexKind::kBitstringAugmented},
      {"bitstring", IndexKind::kBitstringAugmented},
      {"mc-wah", IndexKind::kBitmapMultiComponent},
      {"mc", IndexKind::kBitmapMultiComponent},
      {"hier-wah", IndexKind::kBitmapHierarchical},
      {"hier", IndexKind::kBitmapHierarchical},
  };
  for (const auto& entry : kAliases) {
    if (lower == entry.alias) return entry.kind;
  }
  std::string valid;
  IndexKind last_named = IndexKind::kSequentialScan;
  for (const auto& entry : kAliases) {
    if (entry.kind == last_named && !valid.empty()) continue;
    if (!valid.empty()) valid += ", ";
    valid += entry.alias;
    last_named = entry.kind;
  }
  return Status::InvalidArgument("unknown index kind '" + std::string(name) +
                                 "'; valid kinds: " + valid);
}

Result<std::unique_ptr<IncompleteIndex>> CreateIndex(IndexKind kind,
                                                     const Table& table) {
  switch (kind) {
    case IndexKind::kSequentialScan:
      return std::unique_ptr<IncompleteIndex>(
          std::make_unique<ScanIndex>(table));
    case IndexKind::kBitmapEquality:
      return Wrap(BitmapIndex::Build(
          table, {BitmapEncoding::kEquality, MissingStrategy::kExtraBitmap}));
    case IndexKind::kBitmapRange:
      return Wrap(BitmapIndex::Build(
          table, {BitmapEncoding::kRange, MissingStrategy::kExtraBitmap}));
    case IndexKind::kBitmapInterval:
      return Wrap(BitmapIndex::Build(
          table, {BitmapEncoding::kInterval, MissingStrategy::kExtraBitmap}));
    case IndexKind::kBitmapBitSliced:
      return Wrap(BitmapIndex::Build(
          table,
          {BitmapEncoding::kBitSliced, MissingStrategy::kExtraBitmap}));
    case IndexKind::kVaFile:
      return Wrap(VaFile::Build(table, {VaQuantization::kUniform, 0}));
    case IndexKind::kVaPlusFile:
      return Wrap(VaFile::Build(table, {VaQuantization::kEquiDepth, 0}));
    case IndexKind::kMosaic:
      return Wrap(MosaicIndex::Build(table));
    case IndexKind::kBitstringAugmented:
      return Wrap(BitstringAugmentedIndex::Build(table));
    case IndexKind::kBitmapMultiComponent:
      return Wrap(CompositeBitmapIndex::Build(
          table, {SlotScheme::kMultiComponent}));
    case IndexKind::kBitmapHierarchical:
      return Wrap(CompositeBitmapIndex::Build(
          table, {SlotScheme::kHierarchical}));
  }
  return Status::InvalidArgument("unknown index kind");
}

}  // namespace incdb
