#ifndef INCDB_CORE_SCAN_INDEX_H_
#define INCDB_CORE_SCAN_INDEX_H_

#include <string>

#include "core/incomplete_index.h"
#include "query/seq_scan.h"
#include "table/table.h"

namespace incdb {

/// IncompleteIndex adapter over the sequential scan, so "no index" can flow
/// through the same executor/verification plumbing as every real index.
class ScanIndex : public IncompleteIndex {
 public:
  explicit ScanIndex(const Table& table) : scan_(table) {}

  std::string Name() const override { return "SeqScan"; }

  Result<BitVector> Execute(const RangeQuery& query,
                            QueryStats* stats = nullptr) const override {
    (void)stats;  // a scan has no index structures to account
    return scan_.ExecuteToBitVector(query);
  }

  uint64_t SizeInBytes() const override { return 0; }

  /// A scan reads the base table directly, so appends are free.
  Status AppendRow(const std::vector<Value>& row) override {
    (void)row;
    return Status::OK();
  }

 private:
  SequentialScan scan_;
};

}  // namespace incdb

#endif  // INCDB_CORE_SCAN_INDEX_H_
