#include "core/expr_executor.h"

namespace incdb {

namespace {

struct TruthSets {
  BitVector possible;  // rows with truth != false
  BitVector certain;   // rows with truth == true
};

Result<TruthSets> EvaluateNode(const IncompleteIndex& index,
                               const QueryExpr& expr, QueryStats* stats) {
  switch (expr.kind()) {
    case QueryExpr::Kind::kTerm: {
      RangeQuery query;
      query.terms = {{expr.attribute(), expr.interval()}};
      query.semantics = MissingSemantics::kMatch;
      INCDB_ASSIGN_OR_RETURN(BitVector possible, index.Execute(query, stats));
      query.semantics = MissingSemantics::kNoMatch;
      INCDB_ASSIGN_OR_RETURN(BitVector certain, index.Execute(query, stats));
      return TruthSets{std::move(possible), std::move(certain)};
    }
    case QueryExpr::Kind::kAnd:
    case QueryExpr::Kind::kOr: {
      const bool is_and = expr.kind() == QueryExpr::Kind::kAnd;
      TruthSets acc;
      bool first = true;
      for (const QueryExpr& child : expr.children()) {
        INCDB_ASSIGN_OR_RETURN(TruthSets sets,
                               EvaluateNode(index, child, stats));
        if (first) {
          acc = std::move(sets);
          first = false;
          continue;
        }
        if (is_and) {
          acc.possible.AndWith(sets.possible);
          acc.certain.AndWith(sets.certain);
        } else {
          acc.possible.OrWith(sets.possible);
          acc.certain.OrWith(sets.certain);
        }
      }
      if (first) {
        return Status::InvalidArgument("AND/OR must have children");
      }
      return acc;
    }
    case QueryExpr::Kind::kNot: {
      INCDB_ASSIGN_OR_RETURN(
          TruthSets sets, EvaluateNode(index, expr.children().front(), stats));
      // NOT swaps and complements: possibly(!x) = !certainly(x).
      TruthSets out;
      out.possible = std::move(sets.certain);
      out.possible.Flip();
      out.certain = std::move(sets.possible);
      out.certain.Flip();
      return out;
    }
  }
  return Status::Internal("unknown expression kind");
}

}  // namespace

Result<BitVector> ExecuteExpr(const IncompleteIndex& index,
                              const QueryExpr& expr,
                              MissingSemantics semantics, QueryStats* stats) {
  INCDB_ASSIGN_OR_RETURN(TruthSets sets, EvaluateNode(index, expr, stats));
  if (semantics == MissingSemantics::kMatch) {
    return std::move(sets.possible);
  }
  return std::move(sets.certain);
}

Result<BitVector> ExecuteExprScan(const Table& table, const QueryExpr& expr,
                                  MissingSemantics semantics) {
  INCDB_RETURN_IF_ERROR(expr.Validate(table));
  BitVector result(table.num_rows());
  for (uint64_t r = 0; r < table.num_rows(); ++r) {
    if (ExprMatches(table, r, expr, semantics)) result.Set(r);
  }
  return result;
}

}  // namespace incdb
