#include "core/expr_executor.h"

#include "plan/plan_executor.h"
#include "plan/planner.h"

namespace incdb {

Result<BitVector> ExecuteExpr(const IncompleteIndex& index,
                              const QueryExpr& expr,
                              MissingSemantics semantics, QueryStats* stats) {
  INCDB_ASSIGN_OR_RETURN(plan::PhysicalPlan plan,
                         plan::PlanExprOverIndex(index, expr, semantics));
  return plan::ExecutePlanToBitVector(&plan, stats);
}

Result<BitVector> ExecuteExprScan(const Table& table, const QueryExpr& expr,
                                  MissingSemantics semantics) {
  INCDB_RETURN_IF_ERROR(expr.Validate(table));
  BitVector result(table.num_rows());
  for (uint64_t r = 0; r < table.num_rows(); ++r) {
    if (ExprMatches(table, r, expr, semantics)) result.Set(r);
  }
  return result;
}

}  // namespace incdb
