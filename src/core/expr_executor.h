#ifndef INCDB_CORE_EXPR_EXECUTOR_H_
#define INCDB_CORE_EXPR_EXECUTOR_H_

#include "core/incomplete_index.h"
#include "query/expr.h"
#include "table/table.h"

namespace incdb {

/// Executes a boolean query expression against any IncompleteIndex.
///
/// The evaluation computes, for every node, the pair of bitvectors
/// (possible, certain) — rows whose Kleene truth is != false / == true —
/// using the identities
///
///   term:  certain  = index result under missing-not-match
///          possible = index result under missing-is-match
///   AND:   certain  = AND of child certains;  possible = AND of possibles
///   OR :   certain  = OR  of child certains;  possible = OR  of possibles
///   NOT:   certain  = NOT child's possible;   possible = NOT child's certain
///
/// and returns `possible` under MissingSemantics::kMatch, `certain` under
/// kNoMatch. Agrees exactly with the ExprMatches row oracle; for pure
/// conjunctions it degenerates to the index's native RangeQuery execution.
Result<BitVector> ExecuteExpr(const IncompleteIndex& index,
                              const QueryExpr& expr,
                              MissingSemantics semantics,
                              QueryStats* stats = nullptr);

/// Row-by-row oracle evaluation of an expression over a table.
Result<BitVector> ExecuteExprScan(const Table& table, const QueryExpr& expr,
                                  MissingSemantics semantics);

}  // namespace incdb

#endif  // INCDB_CORE_EXPR_EXECUTOR_H_
