#ifndef INCDB_CORE_EXPR_EXECUTOR_H_
#define INCDB_CORE_EXPR_EXECUTOR_H_

#include "core/incomplete_index.h"
#include "query/expr.h"
#include "table/table.h"

namespace incdb {

/// Executes a boolean query expression against any IncompleteIndex — a
/// thin caller of the plan layer (plan/planner.h PlanExprOverIndex).
///
/// The lowered plan computes exactly one Kleene component per leaf — rows
/// whose truth is != false (`possible`, returned under
/// MissingSemantics::kMatch) or == true (`certain`, under kNoMatch) —
/// by pushing the requested component down the tree:
///
///   term:  probe under the effective semantics (kMatch -> possible,
///          kNoMatch -> certain)
///   AND /
///   OR :   children computed under the same component, then AND/OR'd
///   NOT:   child computed under the flipped component, then complemented
///          (possible(NOT e) = NOT certain(e), and vice versa)
///
/// This halves the index probes of the classic evaluate-both-components
/// scheme. Agrees exactly with the ExprMatches row oracle; pure
/// conjunctions of distinct attributes collapse to the index's native
/// RangeQuery execution.
Result<BitVector> ExecuteExpr(const IncompleteIndex& index,
                              const QueryExpr& expr,
                              MissingSemantics semantics,
                              QueryStats* stats = nullptr);

/// Row-by-row oracle evaluation of an expression over a table.
Result<BitVector> ExecuteExprScan(const Table& table, const QueryExpr& expr,
                                  MissingSemantics semantics);

}  // namespace incdb

#endif  // INCDB_CORE_EXPR_EXECUTOR_H_
