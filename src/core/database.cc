#include "core/database.h"

#include <algorithm>

#include "core/scan_index.h"
#include "query/parser.h"
#include "table/csv.h"

namespace incdb {

namespace {

// Kinds whose AppendRow keeps them in sync with table inserts.
bool SupportsAppends(IndexKind kind) {
  switch (kind) {
    case IndexKind::kSequentialScan:
    case IndexKind::kBitmapEquality:
    case IndexKind::kBitmapRange:
    case IndexKind::kBitmapInterval:
    case IndexKind::kBitmapBitSliced:
    case IndexKind::kVaFile:
    case IndexKind::kVaPlusFile:
    case IndexKind::kMosaic:
    case IndexKind::kBitstringAugmented:
      return true;
  }
  return false;
}

// Routing preference per query shape (paper §6: BEE optimal for point
// queries; BRE typically best for range queries; BIE next — two bitmaps
// per dimension at half BEE's storage; VA-file the fallback index).
const IndexKind kPointPreference[] = {
    IndexKind::kBitmapEquality, IndexKind::kBitmapRange,
    IndexKind::kBitmapInterval, IndexKind::kBitmapBitSliced,
    IndexKind::kVaFile, IndexKind::kVaPlusFile, IndexKind::kMosaic,
    IndexKind::kBitstringAugmented};
const IndexKind kRangePreference[] = {
    IndexKind::kBitmapRange, IndexKind::kBitmapInterval,
    IndexKind::kBitmapEquality, IndexKind::kBitmapBitSliced,
    IndexKind::kVaFile, IndexKind::kVaPlusFile, IndexKind::kMosaic,
    IndexKind::kBitstringAugmented};

}  // namespace

Database::Database(Table table)
    : table_(std::make_unique<Table>(std::move(table))),
      scan_(std::make_unique<ScanIndex>(*table_)),
      deleted_(table_->num_rows()) {}

Result<Database> Database::Create(Schema schema) {
  INCDB_ASSIGN_OR_RETURN(Table table, Table::Create(std::move(schema)));
  return Database(std::move(table));
}

Result<Database> Database::FromTable(Table table) {
  return Database(std::move(table));
}

Result<Database> Database::FromCsv(const std::string& path) {
  INCDB_ASSIGN_OR_RETURN(Table table, ReadCsv(path));
  return Database(std::move(table));
}

Status Database::Insert(const std::vector<Value>& row) {
  INCDB_RETURN_IF_ERROR(table_->AppendRow(row));
  for (auto& [kind, index] : indexes_) {
    INCDB_RETURN_IF_ERROR(index->AppendRow(row));
  }
  deleted_.PushBack(false);
  return Status::OK();
}

Status Database::Delete(uint32_t row) {
  if (row >= table_->num_rows()) {
    return Status::OutOfRange("row " + std::to_string(row) + " out of range");
  }
  if (deleted_.size() < table_->num_rows()) {
    deleted_.Resize(table_->num_rows());
  }
  if (deleted_.Get(row)) {
    return Status::InvalidArgument("row " + std::to_string(row) +
                                   " already deleted");
  }
  deleted_.Set(row);
  ++num_deleted_;
  return Status::OK();
}

bool Database::IsDeleted(uint32_t row) const {
  return row < deleted_.size() && deleted_.Get(row);
}

void Database::MaskDeleted(BitVector* result) const {
  if (num_deleted_ == 0) return;
  BitVector mask = deleted_;
  mask.Resize(result->size());
  mask.Flip();
  result->AndWith(mask);
}

Status Database::BuildIndex(IndexKind kind) {
  if (kind == IndexKind::kSequentialScan) {
    return Status::InvalidArgument(
        "the sequential scan is always available; no index to build");
  }
  if (!SupportsAppends(kind)) {
    return Status::NotSupported(
        std::string(IndexKindToString(kind)) +
        " cannot stay in sync under Database::Insert");
  }
  if (table_->num_rows() == 0) {
    return Status::InvalidArgument(
        "cannot build an index on an empty database; Insert rows first");
  }
  INCDB_ASSIGN_OR_RETURN(std::unique_ptr<IncompleteIndex> index,
                         CreateIndex(kind, *table_));
  indexes_[kind] = std::move(index);
  return Status::OK();
}

Status Database::DropIndex(IndexKind kind) {
  if (indexes_.erase(kind) == 0) {
    return Status::NotFound("no " + std::string(IndexKindToString(kind)) +
                            " index registered");
  }
  return Status::OK();
}

bool Database::HasIndex(IndexKind kind) const {
  return indexes_.count(kind) > 0;
}

std::vector<IndexKind> Database::Indexes() const {
  std::vector<IndexKind> kinds;
  for (const auto& [kind, index] : indexes_) kinds.push_back(kind);
  return kinds;
}

const IncompleteIndex& Database::Route(bool is_point_query) const {
  const auto& preference = is_point_query ? kPointPreference : kRangePreference;
  for (IndexKind kind : preference) {
    const auto it = indexes_.find(kind);
    if (it != indexes_.end()) return *it->second;
  }
  return *scan_;
}

Result<QueryTerm> Database::ResolveTerm(const NamedTerm& term) const {
  INCDB_ASSIGN_OR_RETURN(size_t attr, table_->schema().IndexOf(term.attribute));
  const uint32_t cardinality = table_->schema().attribute(attr).cardinality;
  if (term.lo < 1 || term.hi > static_cast<Value>(cardinality) ||
      term.lo > term.hi) {
    return Status::InvalidArgument(
        "interval [" + std::to_string(term.lo) + "," +
        std::to_string(term.hi) + "] invalid for attribute '" +
        term.attribute + "' (cardinality " + std::to_string(cardinality) +
        ")");
  }
  return QueryTerm{attr, {term.lo, term.hi}};
}

Result<std::vector<uint32_t>> Database::Query(
    const std::vector<NamedTerm>& terms, MissingSemantics semantics,
    std::string* chosen) const {
  RangeQuery query;
  query.semantics = semantics;
  for (const NamedTerm& term : terms) {
    INCDB_ASSIGN_OR_RETURN(QueryTerm resolved, ResolveTerm(term));
    query.terms.push_back(resolved);
  }
  const IncompleteIndex& index = Route(query.IsPointQuery());
  if (chosen != nullptr) *chosen = index.Name();
  INCDB_ASSIGN_OR_RETURN(BitVector result, index.Execute(query));
  MaskDeleted(&result);
  return result.ToIndices();
}

Result<std::vector<uint32_t>> Database::QueryExpression(
    const QueryExpr& expr, MissingSemantics semantics,
    std::string* chosen) const {
  INCDB_RETURN_IF_ERROR(expr.Validate(*table_));
  const IncompleteIndex& index = Route(/*is_point_query=*/false);
  if (chosen != nullptr) *chosen = index.Name();
  INCDB_ASSIGN_OR_RETURN(BitVector result,
                         ExecuteExpr(index, expr, semantics));
  MaskDeleted(&result);
  return result.ToIndices();
}

Result<std::vector<uint32_t>> Database::QueryText(
    const std::string& text, MissingSemantics semantics,
    std::string* chosen) const {
  INCDB_ASSIGN_OR_RETURN(QueryExpr expr, ParseQuery(text, *table_));
  return QueryExpression(expr, semantics, chosen);
}

uint64_t Database::IndexSizeInBytes() const {
  uint64_t total = 0;
  for (const auto& [kind, index] : indexes_) total += index->SizeInBytes();
  return total;
}

}  // namespace incdb
