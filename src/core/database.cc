#include "core/database.h"

#include <algorithm>
#include <atomic>
#include <thread>
#include <utility>

#include "common/timer.h"
#include "plan/planner.h"
#include "storage/reader.h"
#include "storage/writer.h"
#include "table/csv.h"

namespace incdb {

Database::Database(Table table)
    : table_(std::make_shared<Table>(std::move(table))),
      shared_(std::make_unique<Shared>()),
      registry_(
          std::make_shared<const std::vector<internal::SnapshotIndexEntry>>()) {
  // Nobody else can see `this` yet, but Publish and the guarded fields
  // require writer_mu, so claim it (uncontended) to keep the thread-safety
  // analysis airtight instead of suppressing it for constructors.
  const MutexLock writer_lock(&shared_->writer_mu);
  missing_counts_.resize(table_->num_attributes());
  for (size_t attr = 0; attr < table_->num_attributes(); ++attr) {
    missing_counts_[attr] = table_->column(attr).MissingCount();
  }
  Publish();
}

Result<Database> Database::Create(Schema schema) {
  INCDB_ASSIGN_OR_RETURN(Table table, Table::Create(std::move(schema)));
  return Database(std::move(table));
}

Result<Database> Database::FromTable(Table table) {
  return Database(std::move(table));
}

Result<Database> Database::FromCsv(const std::string& path) {
  INCDB_ASSIGN_OR_RETURN(Table table, ReadCsv(path));
  return Database(std::move(table));
}

Database::Database(std::shared_ptr<Table> table, OpenTag)
    : table_(std::move(table)),
      shared_(std::make_unique<Shared>()),
      registry_(
          std::make_shared<const std::vector<internal::SnapshotIndexEntry>>()) {
}

Status Database::Save(const std::string& dir) const {
  const Snapshot snapshot = GetSnapshot();
  return storage::WriteSnapshot(snapshot.state(), dir);
}

Result<Database> Database::Open(const std::string& dir,
                                bool verify_checksums) {
  storage::OpenOptions options;
  options.verify_checksums = verify_checksums;
  INCDB_ASSIGN_OR_RETURN(storage::OpenedStore store,
                         storage::OpenStore(dir, options));
  Database db(store.table, OpenTag{});
  const MutexLock writer_lock(&db.shared_->writer_mu);
  db.mapping_pin_ = store.mapping;
  db.deleted_ = store.deleted;
  db.num_deleted_ = store.num_deleted;
  db.missing_counts_ = std::move(store.missing_counts);
  // Index kinds persisted as markers (no stable wire form) are rebuilt
  // over the mapped table; loaded entries are already ascending by kind.
  std::vector<internal::SnapshotIndexEntry> entries = std::move(store.indexes);
  for (IndexKind kind : store.rebuild_kinds) {
    INCDB_ASSIGN_OR_RETURN(std::unique_ptr<IncompleteIndex> index,
                           CreateIndex(kind, *db.table_));
    internal::SnapshotIndexEntry entry;
    entry.kind = kind;
    entry.index = std::shared_ptr<const IncompleteIndex>(std::move(index));
    entry.covered_rows = db.table_->num_rows();
    auto pos = std::find_if(entries.begin(), entries.end(),
                            [kind](const internal::SnapshotIndexEntry& e) {
                              return e.kind >= kind;
                            });
    entries.insert(pos, std::move(entry));
  }
  db.registry_ =
      std::make_shared<const std::vector<internal::SnapshotIndexEntry>>(
          std::move(entries));
  db.epoch_ = 0;
  db.Publish();
  return db;
}

void Database::Publish() {
  auto state = std::make_shared<internal::SnapshotState>();
  state->table = table_.get();
  state->epoch = epoch_;
  state->num_rows = table_->num_rows();
  state->deleted = deleted_;
  state->num_deleted = num_deleted_;
  state->indexes = registry_;
  state->missing_counts = missing_counts_;
  const MutexLock head_lock(&shared_->head_mu);
  shared_->head = std::move(state);
}

Snapshot Database::GetSnapshot() const {
  const MutexLock head_lock(&shared_->head_mu);
  return Snapshot(shared_->head);
}

Result<QueryResult> Database::Run(const QueryRequest& request) const {
  return plan::RunOnSnapshot(GetSnapshot(), request);
}

BatchResult Database::RunBatch(const std::vector<QueryRequest>& requests,
                               size_t num_threads) const {
  BatchResult batch;
  if (requests.empty()) return batch;
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  num_threads = std::min(num_threads, requests.size());
  batch.num_threads = num_threads;
  batch.results.reserve(requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    batch.results.emplace_back(Status::Internal("request not executed"));
  }

  // One snapshot for the whole batch: every request sees the same epoch.
  const Snapshot snapshot = GetSnapshot();

  struct WorkerState {
    uint64_t matches = 0;
    QueryStats stats;
  };
  std::vector<WorkerState> workers(num_threads);
  std::atomic<size_t> next{0};

  Timer timer;
  {
    std::vector<std::thread> threads;
    threads.reserve(num_threads);
    for (size_t t = 0; t < num_threads; ++t) {
      threads.emplace_back([&, t]() {
        WorkerState& state = workers[t];
        for (;;) {
          const size_t i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= requests.size()) break;
          Result<QueryResult> result =
              plan::RunOnSnapshot(snapshot, requests[i]);
          if (result.ok()) {
            state.matches += result.value().count;
            state.stats.MergeFrom(result.value().stats);
          }
          batch.results[i] = std::move(result);
        }
      });
    }
    for (std::thread& thread : threads) thread.join();
  }
  batch.wall_millis = timer.ElapsedMillis();
  for (const WorkerState& state : workers) {
    batch.total_matches += state.matches;
    batch.stats.MergeFrom(state.stats);
  }
  return batch;
}

Status Database::Insert(const std::vector<Value>& row) {
  const MutexLock writer_lock(&shared_->writer_mu);
  INCDB_RETURN_IF_ERROR(table_->AppendRow(row));
  for (size_t attr = 0; attr < row.size(); ++attr) {
    if (row[attr] == kMissingValue) ++missing_counts_[attr];
  }
  ++epoch_;
  Publish();
  return Status::OK();
}

Status Database::Delete(uint32_t row) {
  const MutexLock writer_lock(&shared_->writer_mu);
  const uint64_t watermark = table_->num_rows();
  if (row >= watermark) {
    return Status::OutOfRange("row " + std::to_string(row) + " out of range");
  }
  // Copy-on-write: pinned snapshots keep seeing the old mask.
  BitVector mask = deleted_ != nullptr ? *deleted_ : BitVector();
  if (mask.size() < watermark) mask.Resize(watermark);
  if (mask.Get(row)) {
    return Status::InvalidArgument("row " + std::to_string(row) +
                                   " already deleted");
  }
  mask.Set(row);
  deleted_ = std::make_shared<const BitVector>(std::move(mask));
  ++num_deleted_;
  ++epoch_;
  Publish();
  return Status::OK();
}

bool Database::IsDeleted(uint32_t row) const {
  return GetSnapshot().IsDeleted(row);
}

uint64_t Database::num_live_rows() const {
  return GetSnapshot().num_live_rows();
}

uint64_t Database::num_deleted_rows() const {
  return GetSnapshot().num_deleted_rows();
}

Status Database::BuildIndex(IndexKind kind) {
  const MutexLock writer_lock(&shared_->writer_mu);
  if (kind == IndexKind::kSequentialScan) {
    return Status::InvalidArgument(
        "the sequential scan is always available; no index to build");
  }
  if (table_->num_rows() == 0) {
    return Status::InvalidArgument(
        "cannot build an index on an empty database; Insert rows first");
  }
  INCDB_ASSIGN_OR_RETURN(std::unique_ptr<IncompleteIndex> index,
                         CreateIndex(kind, *table_));
  internal::SnapshotIndexEntry entry;
  entry.kind = kind;
  entry.index = std::shared_ptr<const IncompleteIndex>(std::move(index));
  entry.covered_rows = table_->num_rows();
  // Copy-on-write registry, kept ascending by kind.
  auto registry =
      std::make_shared<std::vector<internal::SnapshotIndexEntry>>(*registry_);
  auto pos = std::find_if(registry->begin(), registry->end(),
                          [kind](const internal::SnapshotIndexEntry& e) {
                            return e.kind >= kind;
                          });
  if (pos != registry->end() && pos->kind == kind) {
    *pos = std::move(entry);
  } else {
    registry->insert(pos, std::move(entry));
  }
  registry_ = std::move(registry);
  ++epoch_;
  Publish();
  return Status::OK();
}

Status Database::DropIndex(IndexKind kind) {
  const MutexLock writer_lock(&shared_->writer_mu);
  auto registry =
      std::make_shared<std::vector<internal::SnapshotIndexEntry>>(*registry_);
  auto pos = std::find_if(registry->begin(), registry->end(),
                          [kind](const internal::SnapshotIndexEntry& e) {
                            return e.kind == kind;
                          });
  if (pos == registry->end()) {
    return Status::NotFound("no " + std::string(IndexKindToString(kind)) +
                            " index registered");
  }
  registry->erase(pos);
  registry_ = std::move(registry);
  ++epoch_;
  Publish();
  return Status::OK();
}

bool Database::HasIndex(IndexKind kind) const {
  return GetSnapshot().HasIndex(kind);
}

std::vector<IndexKind> Database::Indexes() const {
  return GetSnapshot().Indexes();
}

Result<QueryTerm> Database::ResolveTerm(const NamedTerm& term) const {
  return ResolveNamedTerm(*table_, term);
}

uint64_t Database::IndexSizeInBytes() const {
  return GetSnapshot().IndexSizeInBytes();
}

}  // namespace incdb
