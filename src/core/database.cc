#include "core/database.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>
#include <utility>

#include "common/timer.h"
#include "plan/planner.h"
#include "storage/reader.h"
#include "storage/writer.h"
#include "table/csv.h"

namespace incdb {

Database::Database(Table table)
    : table_(std::make_shared<Table>(std::move(table))),
      shared_(std::make_unique<Shared>()),
      registry_(
          std::make_shared<const std::vector<internal::SnapshotIndexEntry>>()),
      persist_cache_(std::make_shared<storage::SegmentPersistCache>()) {
  // Nobody else can see `this` yet, but Publish and the guarded fields
  // require writer_mu, so claim it (uncontended) to keep the thread-safety
  // analysis airtight instead of suppressing it for constructors.
  const MutexLock writer_lock(&shared_->writer_mu);
  missing_counts_.resize(table_->num_attributes());
  for (size_t attr = 0; attr < table_->num_attributes(); ++attr) {
    missing_counts_[attr] = table_->column(attr).MissingCount();
  }
  Publish();
}

Result<Database> Database::Create(Schema schema) {
  INCDB_ASSIGN_OR_RETURN(Table table, Table::Create(std::move(schema)));
  return Database(std::move(table));
}

Result<Database> Database::FromTable(Table table) {
  return Database(std::move(table));
}

Result<Database> Database::FromCsv(const std::string& path) {
  INCDB_ASSIGN_OR_RETURN(Table table, ReadCsv(path));
  return Database(std::move(table));
}

Database::Database(std::shared_ptr<Table> table, OpenTag)
    : table_(std::move(table)),
      shared_(std::make_unique<Shared>()),
      registry_(
          std::make_shared<const std::vector<internal::SnapshotIndexEntry>>()),
      persist_cache_(std::make_shared<storage::SegmentPersistCache>()) {
}

Status Database::Save(const std::string& dir) const {
  const Snapshot snapshot = GetSnapshot();
  return storage::WriteSnapshot(snapshot.state(), dir, persist_cache_.get());
}

Result<Database> Database::Open(const std::string& dir,
                                bool verify_checksums) {
  storage::OpenOptions options;
  options.verify_checksums = verify_checksums;
  INCDB_ASSIGN_OR_RETURN(storage::OpenedStore store,
                         storage::OpenStore(dir, options));
  Database db(store.table, OpenTag{});
  const MutexLock writer_lock(&db.shared_->writer_mu);
  // Pin the main mapping plus every independently mapped segment file for
  // as long as any borrowed view can reach them.
  {
    auto pins = std::make_shared<std::vector<std::shared_ptr<void>>>();
    pins->reserve(1 + store.segment_mappings.size());
    pins->push_back(store.mapping);
    for (auto& segment_mapping : store.segment_mappings) {
      pins->push_back(std::move(segment_mapping));
    }
    db.mapping_pin_ = std::move(pins);
  }
  if (store.segments != nullptr) {
    db.segment_list_ = store.segments;
    for (const auto& segment : store.segments->segments) {
      db.next_content_id_ =
          std::max(db.next_content_id_, segment->content_id + 1);
    }
    // Seed the dirty-segment cache: every segment file just opened is
    // already durable in this directory, so the next Save reuses it.
    const MutexLock cache_lock(&db.persist_cache_->mu);
    db.persist_cache_->dir = dir;
    for (const storage::OpenedSegmentFile& file : store.segment_files) {
      db.persist_cache_->files[file.content_id] =
          storage::CachedSegmentFile{file.file_name, file.file_size,
                                     file.crc32};
    }
  }
  db.deleted_ = store.deleted;
  db.num_deleted_ = store.num_deleted;
  db.missing_counts_ = std::move(store.missing_counts);
  // Index kinds persisted as markers (no stable wire form) are rebuilt
  // over the mapped table; loaded entries are already ascending by kind.
  std::vector<internal::SnapshotIndexEntry> entries = std::move(store.indexes);
  for (IndexKind kind : store.rebuild_kinds) {
    INCDB_ASSIGN_OR_RETURN(std::unique_ptr<IncompleteIndex> index,
                           CreateIndex(kind, *db.table_));
    internal::SnapshotIndexEntry entry;
    entry.kind = kind;
    entry.index = std::shared_ptr<const IncompleteIndex>(std::move(index));
    entry.covered_rows = db.table_->num_rows();
    auto pos = std::find_if(entries.begin(), entries.end(),
                            [kind](const internal::SnapshotIndexEntry& e) {
                              return e.kind >= kind;
                            });
    entries.insert(pos, std::move(entry));
  }
  db.registry_ =
      std::make_shared<const std::vector<internal::SnapshotIndexEntry>>(
          std::move(entries));
  db.epoch_ = 0;
  db.Publish();
  return db;
}

void Database::Publish() {
  auto state = std::make_shared<internal::SnapshotState>();
  state->table = table_;
  state->segments = segment_list_;
  state->epoch = epoch_;
  state->num_rows = table_->num_rows();
  state->deleted = deleted_;
  state->num_deleted = num_deleted_;
  state->indexes = registry_;
  state->missing_counts = missing_counts_;
  const MutexLock head_lock(&shared_->head_mu);
  shared_->head = std::move(state);
}

Snapshot Database::GetSnapshot() const {
  const MutexLock head_lock(&shared_->head_mu);
  return Snapshot(shared_->head);
}

Result<QueryResult> Database::Run(const QueryRequest& request) const {
  return plan::RunOnSnapshot(GetSnapshot(), request);
}

BatchResult Database::RunBatch(const std::vector<QueryRequest>& requests,
                               size_t num_threads) const {
  BatchResult batch;
  if (requests.empty()) return batch;
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  num_threads = std::min(num_threads, requests.size());
  batch.num_threads = num_threads;
  batch.results.reserve(requests.size());
  for (size_t i = 0; i < requests.size(); ++i) {
    batch.results.emplace_back(Status::Internal("request not executed"));
  }

  // One snapshot for the whole batch: every request sees the same epoch.
  const Snapshot snapshot = GetSnapshot();

  struct WorkerState {
    uint64_t matches = 0;
    QueryStats stats;
  };
  std::vector<WorkerState> workers(num_threads);
  std::atomic<size_t> next{0};

  Timer timer;
  {
    std::vector<std::thread> threads;
    threads.reserve(num_threads);
    for (size_t t = 0; t < num_threads; ++t) {
      threads.emplace_back([&, t]() {
        WorkerState& state = workers[t];
        for (;;) {
          const size_t i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= requests.size()) break;
          Result<QueryResult> result =
              plan::RunOnSnapshot(snapshot, requests[i]);
          if (result.ok()) {
            state.matches += result.value().count;
            state.stats.MergeFrom(result.value().stats);
          }
          batch.results[i] = std::move(result);
        }
      });
    }
    for (std::thread& thread : threads) thread.join();
  }
  batch.wall_millis = timer.ElapsedMillis();
  for (const WorkerState& state : workers) {
    batch.total_matches += state.matches;
    batch.stats.MergeFrom(state.stats);
  }
  return batch;
}

Status Database::Insert(const std::vector<Value>& row) {
  const MutexLock writer_lock(&shared_->writer_mu);
  INCDB_RETURN_IF_ERROR(table_->AppendRow(row));
  for (size_t attr = 0; attr < row.size(); ++attr) {
    if (row[attr] == kMissingValue) ++missing_counts_[attr];
  }
  if (segment_list_ != nullptr) {
    INCDB_RETURN_IF_ERROR(SealPending(table_->num_rows()));
  }
  ++epoch_;
  Publish();
  return Status::OK();
}

Status Database::SealPending(uint64_t limit) {
  const SegmentOptions& options = segment_list_->options;
  const uint64_t sealed = segment_list_->sealed_rows;
  if (limit < sealed + options.segment_rows) return Status::OK();
  INCDB_ASSIGN_OR_RETURN(
      std::vector<std::shared_ptr<const internal::Segment>> fresh,
      internal::BuildSegmentsParallel(*table_, sealed, limit, options,
                                      &next_content_id_,
                                      std::thread::hardware_concurrency()));
  auto list = std::make_shared<internal::SegmentList>();
  list->options = options;
  list->segments = segment_list_->segments;
  for (std::shared_ptr<const internal::Segment>& seg : fresh) {
    list->segments.push_back(std::move(seg));
  }
  list->sealed_rows =
      list->segments.empty() ? 0 : list->segments.back()->end_row();
  segment_list_ = std::move(list);
  return Status::OK();
}

Status Database::EnableSegments(const SegmentOptions& options) {
  if (options.segment_rows == 0) {
    return Status::InvalidArgument("segment_rows must be positive");
  }
  if (!IsSegmentIndexKind(options.index_kind)) {
    return Status::NotSupported(
        "segment index kind must be a self-contained bitmap kind");
  }
  const MutexLock writer_lock(&shared_->writer_mu);
  if (segment_list_ != nullptr) {
    return Status::InvalidArgument("segments already enabled");
  }
  auto list = std::make_shared<internal::SegmentList>();
  list->options = options;
  segment_list_ = std::move(list);
  INCDB_RETURN_IF_ERROR(SealPending(table_->num_rows()));
  ++epoch_;
  Publish();
  return Status::OK();
}

bool Database::segments_enabled() const {
  return GetSnapshot().state().segments != nullptr;
}

CompactionStats Database::GetCompactionStats() const {
  CompactionStats stats;
  stats.compactions = shared_->compactions.load(std::memory_order_relaxed);
  stats.reclaimed_rows =
      shared_->reclaimed_rows.load(std::memory_order_relaxed);
  stats.reclaimed_bytes =
      shared_->reclaimed_bytes.load(std::memory_order_relaxed);
  stats.segments_rebuilt =
      shared_->segments_rebuilt.load(std::memory_order_relaxed);
  stats.segments_reused =
      shared_->segments_reused.load(std::memory_order_relaxed);
  return stats;
}

Status Database::CompactNow() {
  const MutexLock writer_lock(&shared_->writer_mu);
  const uint64_t total = table_->num_rows();
  const uint64_t segment_rows =
      segment_list_ != nullptr ? segment_list_->options.segment_rows : 0;

  // Work detection: deleted rows to drop, or small sealed segments that can
  // merge (an adjacent undersized pair, or a last undersized segment whose
  // rows plus the tail reach a full segment).
  bool merge_work = false;
  if (segment_list_ != nullptr && !segment_list_->segments.empty()) {
    const auto& segs = segment_list_->segments;
    for (size_t i = 0; i + 1 < segs.size() && !merge_work; ++i) {
      merge_work = segs[i]->num_rows < segment_rows &&
                   segs[i + 1]->num_rows < segment_rows;
    }
    if (segs.back()->num_rows < segment_rows &&
        segs.back()->num_rows + (total - segment_list_->sealed_rows) >=
            segment_rows) {
      merge_work = true;
    }
  }
  if (num_deleted_ == 0 && !merge_work) return Status::OK();

  auto is_deleted = [this](uint64_t row)
                        INCDB_REQUIRES(shared_->writer_mu) {
                          return deleted_ != nullptr &&
                                 row < deleted_->size() && deleted_->Get(row);
                        };
  INCDB_ASSIGN_OR_RETURN(Table rebuilt, Table::Create(table_->schema()));
  auto new_table = std::make_shared<Table>(std::move(rebuilt));
  const size_t num_attrs = table_->num_attributes();
  std::vector<Value> row(num_attrs);
  auto copy_row = [&](uint64_t src) {
    for (size_t a = 0; a < num_attrs; ++a) row[a] = table_->Get(src, a);
    new_table->AppendRowUnchecked(row);
  };

  uint64_t reused = 0;
  uint64_t built = 0;
  std::shared_ptr<const internal::SegmentList> new_list;
  if (segment_list_ != nullptr) {
    const auto& segs = segment_list_->segments;
    // A segment is rewritten when it overlaps a deleted row. Undersized
    // segments additionally rewrite when a neighbor is also being rewritten
    // or undersized (so adjacent remnants merge), and the last sealed
    // segment always rewrites if undersized — its rows fold back into the
    // unsealed tail, which is how small tail segments get merged away.
    std::vector<bool> rewrite(segs.size(), false);
    for (size_t i = 0; i < segs.size(); ++i) {
      for (uint64_t r = segs[i]->begin_row;
           r < segs[i]->end_row() && !rewrite[i]; ++r) {
        rewrite[i] = is_deleted(r);
      }
    }
    for (size_t i = 0; i < segs.size(); ++i) {
      if (segs[i]->num_rows >= segment_rows || rewrite[i]) continue;
      const bool last = i + 1 == segs.size();
      const bool prev_merges =
          i > 0 && (rewrite[i - 1] || segs[i - 1]->num_rows < segment_rows);
      const bool next_merges =
          !last &&
          (rewrite[i + 1] || segs[i + 1]->num_rows < segment_rows);
      if (last || prev_merges || next_merges) rewrite[i] = true;
    }

    // Descriptor per surviving segment, in row order: either a reused
    // segment (index carried over, begin_row shifted) or a range of the new
    // table still needing an index build.
    struct Desc {
      std::shared_ptr<const internal::Segment> carried;
      uint64_t begin = 0;
      uint64_t rows = 0;
    };
    std::vector<Desc> descs;
    constexpr uint64_t kNoRun = ~uint64_t{0};
    uint64_t run_begin = kNoRun;
    auto flush_run = [&](bool final_run) {
      if (run_begin == kNoRun) return;
      uint64_t begin = run_begin;
      const uint64_t end = new_table->num_rows();
      while (end - begin >= segment_rows) {
        descs.push_back(Desc{nullptr, begin, segment_rows});
        begin += segment_rows;
      }
      // A mid-store remnant stays sealed (undersized, merged further by a
      // later compaction); a trailing remnant becomes the unsealed tail.
      if (begin < end && !final_run) {
        descs.push_back(Desc{nullptr, begin, end - begin});
      }
      run_begin = kNoRun;
    };
    for (size_t i = 0; i < segs.size(); ++i) {
      const internal::Segment& seg = *segs[i];
      if (!rewrite[i]) {
        flush_run(false);
        const uint64_t new_begin = new_table->num_rows();
        for (uint64_t r = seg.begin_row; r < seg.end_row(); ++r) copy_row(r);
        auto carried = std::make_shared<internal::Segment>(seg);
        carried->begin_row = new_begin;
        descs.push_back(Desc{std::move(carried), new_begin, seg.num_rows});
        ++reused;
      } else {
        if (run_begin == kNoRun) run_begin = new_table->num_rows();
        for (uint64_t r = seg.begin_row; r < seg.end_row(); ++r) {
          if (!is_deleted(r)) copy_row(r);
        }
      }
    }
    if (run_begin == kNoRun) run_begin = new_table->num_rows();
    for (uint64_t r = segment_list_->sealed_rows; r < total; ++r) {
      if (!is_deleted(r)) copy_row(r);
    }
    flush_run(true);

    // Build the missing indexes in parallel (same worker pattern as
    // sealing), then assemble the list in row order.
    std::vector<size_t> to_build;
    for (size_t i = 0; i < descs.size(); ++i) {
      if (descs[i].carried == nullptr) to_build.push_back(i);
    }
    std::vector<std::shared_ptr<const internal::Segment>> built_segs(
        descs.size());
    std::vector<uint64_t> ids(to_build.size());
    for (size_t j = 0; j < to_build.size(); ++j) ids[j] = next_content_id_++;
    const IndexKind kind = segment_list_->options.index_kind;
    std::atomic<size_t> next{0};
    std::vector<Status> errors;
    Mutex errors_mu;
    auto worker = [&]() {
      for (;;) {
        const size_t j = next.fetch_add(1, std::memory_order_relaxed);
        if (j >= to_build.size()) return;
        const Desc& d = descs[to_build[j]];
        Result<internal::Segment> seg = internal::BuildSealedSegment(
            *new_table, d.begin, d.rows, kind, ids[j]);
        if (!seg.ok()) {
          const MutexLock lock(&errors_mu);
          errors.push_back(seg.status());
          return;
        }
        built_segs[to_build[j]] =
            std::make_shared<const internal::Segment>(std::move(seg).value());
      }
    };
    unsigned workers =
        std::max(1u, std::min<unsigned>(std::thread::hardware_concurrency(),
                                        static_cast<unsigned>(
                                            to_build.size())));
    if (workers <= 1) {
      worker();
    } else {
      std::vector<std::thread> threads;
      threads.reserve(workers);
      for (unsigned t = 0; t < workers; ++t) threads.emplace_back(worker);
      for (std::thread& t : threads) t.join();
    }
    if (!errors.empty()) return errors.front();
    built = to_build.size();

    auto list = std::make_shared<internal::SegmentList>();
    list->options = segment_list_->options;
    list->segments.reserve(descs.size());
    for (size_t i = 0; i < descs.size(); ++i) {
      list->segments.push_back(descs[i].carried != nullptr
                                   ? std::move(descs[i].carried)
                                   : std::move(built_segs[i]));
    }
    list->sealed_rows =
        list->segments.empty() ? 0 : list->segments.back()->end_row();
    new_list = std::move(list);
  } else {
    for (uint64_t r = 0; r < total; ++r) {
      if (!is_deleted(r)) copy_row(r);
    }
  }

  // Registry indexes cover the old row numbering; rebuild them over the
  // surviving rows. An empty store drops them (nothing to cover) — rebuilt
  // by the next BuildIndex.
  std::vector<internal::SnapshotIndexEntry> entries;
  if (new_table->num_rows() > 0) {
    for (const internal::SnapshotIndexEntry& old : *registry_) {
      INCDB_ASSIGN_OR_RETURN(std::unique_ptr<IncompleteIndex> index,
                             CreateIndex(old.kind, *new_table));
      internal::SnapshotIndexEntry entry;
      entry.kind = old.kind;
      entry.index = std::shared_ptr<const IncompleteIndex>(std::move(index));
      entry.covered_rows = new_table->num_rows();
      entries.push_back(std::move(entry));
    }
  }

  const uint64_t reclaimed = num_deleted_;
  // Commit the rewritten store: swap the base table, reset the deletion
  // mask, refresh the derived stats, publish. Old snapshots keep the old
  // table alive through their shared_ptr.
  table_ = std::move(new_table);
  segment_list_ = std::move(new_list);
  registry_ =
      std::make_shared<const std::vector<internal::SnapshotIndexEntry>>(
          std::move(entries));
  deleted_ = nullptr;
  num_deleted_ = 0;
  missing_counts_.assign(num_attrs, 0);
  for (size_t a = 0; a < num_attrs; ++a) {
    missing_counts_[a] = table_->column(a).MissingCount();
  }
  shared_->compactions.fetch_add(1, std::memory_order_relaxed);
  shared_->reclaimed_rows.fetch_add(reclaimed, std::memory_order_relaxed);
  shared_->reclaimed_bytes.fetch_add(
      reclaimed * num_attrs * sizeof(Value), std::memory_order_relaxed);
  shared_->segments_rebuilt.fetch_add(built, std::memory_order_relaxed);
  shared_->segments_reused.fetch_add(reused, std::memory_order_relaxed);
  ++epoch_;
  Publish();
  return Status::OK();
}

Status Database::Delete(uint32_t row) {
  const MutexLock writer_lock(&shared_->writer_mu);
  const uint64_t watermark = table_->num_rows();
  if (row >= watermark) {
    return Status::OutOfRange("row " + std::to_string(row) + " out of range");
  }
  // Copy-on-write: pinned snapshots keep seeing the old mask.
  BitVector mask = deleted_ != nullptr ? *deleted_ : BitVector();
  if (mask.size() < watermark) mask.Resize(watermark);
  if (mask.Get(row)) {
    return Status::InvalidArgument("row " + std::to_string(row) +
                                   " already deleted");
  }
  mask.Set(row);
  deleted_ = std::make_shared<const BitVector>(std::move(mask));
  ++num_deleted_;
  ++epoch_;
  Publish();
  return Status::OK();
}

bool Database::IsDeleted(uint32_t row) const {
  return GetSnapshot().IsDeleted(row);
}

uint64_t Database::num_live_rows() const {
  return GetSnapshot().num_live_rows();
}

uint64_t Database::num_deleted_rows() const {
  return GetSnapshot().num_deleted_rows();
}

Status Database::BuildIndex(IndexKind kind) {
  const MutexLock writer_lock(&shared_->writer_mu);
  if (kind == IndexKind::kSequentialScan) {
    return Status::InvalidArgument(
        "the sequential scan is always available; no index to build");
  }
  if (table_->num_rows() == 0) {
    return Status::InvalidArgument(
        "cannot build an index on an empty database; Insert rows first");
  }
  INCDB_ASSIGN_OR_RETURN(std::unique_ptr<IncompleteIndex> index,
                         CreateIndex(kind, *table_));
  internal::SnapshotIndexEntry entry;
  entry.kind = kind;
  entry.index = std::shared_ptr<const IncompleteIndex>(std::move(index));
  entry.covered_rows = table_->num_rows();
  // Copy-on-write registry, kept ascending by kind.
  auto registry =
      std::make_shared<std::vector<internal::SnapshotIndexEntry>>(*registry_);
  auto pos = std::find_if(registry->begin(), registry->end(),
                          [kind](const internal::SnapshotIndexEntry& e) {
                            return e.kind >= kind;
                          });
  if (pos != registry->end() && pos->kind == kind) {
    *pos = std::move(entry);
  } else {
    registry->insert(pos, std::move(entry));
  }
  registry_ = std::move(registry);
  ++epoch_;
  Publish();
  return Status::OK();
}

Status Database::DropIndex(IndexKind kind) {
  const MutexLock writer_lock(&shared_->writer_mu);
  auto registry =
      std::make_shared<std::vector<internal::SnapshotIndexEntry>>(*registry_);
  auto pos = std::find_if(registry->begin(), registry->end(),
                          [kind](const internal::SnapshotIndexEntry& e) {
                            return e.kind == kind;
                          });
  if (pos == registry->end()) {
    return Status::NotFound("no " + std::string(IndexKindToString(kind)) +
                            " index registered");
  }
  registry->erase(pos);
  registry_ = std::move(registry);
  ++epoch_;
  Publish();
  return Status::OK();
}

bool Database::HasIndex(IndexKind kind) const {
  return GetSnapshot().HasIndex(kind);
}

std::vector<IndexKind> Database::Indexes() const {
  return GetSnapshot().Indexes();
}

Result<QueryTerm> Database::ResolveTerm(const NamedTerm& term) const {
  // Resolve against the pinned snapshot's table (schemas never change, but
  // compaction may swap the table object concurrently).
  const Snapshot snapshot = GetSnapshot();
  return ResolveNamedTerm(snapshot.table(), term);
}

uint64_t Database::IndexSizeInBytes() const {
  return GetSnapshot().IndexSizeInBytes();
}

BackgroundCompactor::BackgroundCompactor(Database* db, Options options)
    : db_(db), options_(options), thread_([this]() { Loop(); }) {}

BackgroundCompactor::~BackgroundCompactor() { Stop(); }

void BackgroundCompactor::Stop() {
  stop_.store(true, std::memory_order_release);
  if (thread_.joinable()) thread_.join();
}

void BackgroundCompactor::Loop() {
  constexpr uint64_t kSliceMillis = 5;
  for (;;) {
    // Sleep the interval in small slices so Stop() stays responsive.
    uint64_t slept = 0;
    do {
      if (stop_.load(std::memory_order_acquire)) return;
      std::this_thread::sleep_for(std::chrono::milliseconds(kSliceMillis));
      slept += kSliceMillis;
    } while (slept < options_.interval_millis);
    if (db_->num_deleted_rows() < options_.min_deleted_rows) continue;
    const Status status = db_->CompactNow();
    if (status.ok()) runs_.fetch_add(1, std::memory_order_relaxed);
  }
}

}  // namespace incdb
