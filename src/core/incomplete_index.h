#ifndef INCDB_CORE_INCOMPLETE_INDEX_H_
#define INCDB_CORE_INCOMPLETE_INDEX_H_

#include <cstdint>
#include <string>

#include "bitvector/bitvector.h"
#include "common/status.h"
#include "query/query.h"

namespace incdb {

/// Per-query accounting filled in by index implementations. Which fields
/// are meaningful depends on the index family; unused fields stay zero.
struct QueryStats {
  /// Bitmap indexes: number of bitvectors read to answer the query (the
  /// paper's primary cost model for BEE/BRE).
  uint64_t bitvectors_accessed = 0;
  /// Bitmap indexes: number of logical operations (AND/OR/XOR/NOT) executed.
  /// A fused k-way kernel counts as k-1 operations, keeping the counter
  /// comparable with the pairwise fold it replaces.
  uint64_t bitvector_ops = 0;
  /// Bitmap indexes: compressed code words read from operand bitvectors.
  /// Under the fused kernels each operand is scanned exactly once, so this
  /// tracks real memory traffic; the pairwise fold re-scans intermediates,
  /// which this counter deliberately does not credit.
  uint64_t words_touched = 0;
  /// VA-file: approximate candidates surviving the filter step.
  uint64_t candidates = 0;
  /// VA-file: candidates eliminated by the exact refinement step.
  uint64_t false_positives = 0;
  /// Tree indexes (R-tree, B+-tree, baselines): nodes visited.
  uint64_t nodes_accessed = 0;
  /// Bitstring-augmented baseline: number of subqueries executed (up to 2^k).
  uint64_t subqueries = 0;
  /// Row-oracle scans (the plan layer's delta scan over the appended tail
  /// and the sequential-scan fallback): rows evaluated one by one. Scans
  /// also charge words_touched with one unit per cell read, so routing's
  /// predicted-vs-realized cost comparison covers the tail.
  uint64_t rows_scanned = 0;
  /// Bitmap indexes: windows the fused WAH kernels routed through the
  /// dense-block SIMD fast path (decode + vector combine). Zero means every
  /// window stayed on the compressed-form sparse strategies.
  uint64_t simd_path = 0;
  /// Bitmap indexes: group words the dense fast path processed in
  /// uncompressed form (operands x window groups, the word traffic the
  /// dense path pays for its vector combines).
  uint64_t words_decoded = 0;
  /// Segment layer (docs/SEGMENTS.md): sealed segments actually probed vs.
  /// skipped outright by their zone maps. scanned + pruned = segments the
  /// plan covered; zero/zero on non-segmented plans.
  uint64_t segments_scanned = 0;
  uint64_t segments_pruned = 0;
  /// Composite bitmap kinds (docs/ENCODINGS.md): per-component slot probes
  /// a multi-component index performed (one per digit interval lowered onto
  /// an axis), and hierarchy levels a hierarchical index's segment-tree
  /// cover touched. Together with bitvectors_accessed these make the probe
  /// tree's shape observable in EXPLAIN.
  uint64_t probe_components = 0;
  uint64_t probe_levels = 0;

  void Reset() { *this = QueryStats(); }

  /// Accumulates another query's counters into this one (batch / per-thread
  /// aggregation).
  void MergeFrom(const QueryStats& other) {
    bitvectors_accessed += other.bitvectors_accessed;
    bitvector_ops += other.bitvector_ops;
    words_touched += other.words_touched;
    candidates += other.candidates;
    false_positives += other.false_positives;
    nodes_accessed += other.nodes_accessed;
    subqueries += other.subqueries;
    rows_scanned += other.rows_scanned;
    simd_path += other.simd_path;
    words_decoded += other.words_decoded;
    segments_scanned += other.segments_scanned;
    segments_pruned += other.segments_pruned;
    probe_components += other.probe_components;
    probe_levels += other.probe_levels;
  }
};

/// Common interface for every query-answering structure in incdb: the
/// paper's techniques (BEE, BRE, VA-file), the baselines (MOSAIC,
/// bitstring-augmented, R-tree) and the sequential scan.
///
/// All implementations return *exact* results (any approximate filter is
/// followed by a refinement step), matching the paper's 100%-precision
/// setting; the test suite verifies each against the RowMatches oracle.
class IncompleteIndex {
 public:
  virtual ~IncompleteIndex() = default;

  /// Short identifier, e.g. "BEE-WAH", "BRE-WAH", "VA-File".
  virtual std::string Name() const = 0;

  /// Executes a range query; bit x of the result is set iff row x answers
  /// the query under its semantics. `stats`, when non-null, receives
  /// per-query cost counters.
  virtual Result<BitVector> Execute(const RangeQuery& query,
                                    QueryStats* stats = nullptr) const = 0;

  /// Index size in bytes — the paper's index-size metric (for bitmap
  /// indexes this is the WAH-compressed size; for the VA-file the packed
  /// approximation plus lookup tables).
  virtual uint64_t SizeInBytes() const = 0;

  /// Incrementally indexes one appended record (`row[i]` = value of
  /// attribute i, kMissingValue for missing). The base table must be
  /// extended with the same row first. Default: NotSupported — bitmap
  /// indexes, VA-files, MOSAIC, the bitstring-augmented index and the scan
  /// all override this.
  virtual Status AppendRow(const std::vector<Value>& row) {
    (void)row;
    return Status::NotSupported(Name() + " does not support appends");
  }

  /// COUNT(*) of the query's result. Default: executes and counts; the
  /// bitmap index overrides this to count directly on the compressed
  /// result without materializing a verbatim bitvector.
  virtual Result<uint64_t> ExecuteCount(const RangeQuery& query,
                                        QueryStats* stats = nullptr) const {
    INCDB_ASSIGN_OR_RETURN(BitVector result, Execute(query, stats));
    return result.Count();
  }
};

}  // namespace incdb

#endif  // INCDB_CORE_INCOMPLETE_INDEX_H_
