#ifndef INCDB_CORE_DATABASE_H_
#define INCDB_CORE_DATABASE_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/thread_annotations.h"
#include "core/incomplete_index.h"
#include "core/index_factory.h"
#include "core/query_api.h"
#include "core/segments.h"
#include "core/snapshot.h"
#include "query/expr.h"
#include "table/table.h"

namespace incdb {

namespace storage {
struct SegmentPersistCache;
}  // namespace storage

/// Cumulative compaction accounting for one Database (monotone counters;
/// surfaced through the server's kServerStats endpoint).
struct CompactionStats {
  /// CompactNow calls that actually rewrote the store (no-ops excluded).
  uint64_t compactions = 0;
  /// Deleted rows physically dropped.
  uint64_t reclaimed_rows = 0;
  /// Data bytes those rows occupied (row width x rows; excludes index
  /// payload shrinkage, which is reported by IndexSizeInBytes deltas).
  uint64_t reclaimed_bytes = 0;
  /// Segments whose index was rebuilt / carried over unchanged.
  uint64_t segments_rebuilt = 0;
  uint64_t segments_reused = 0;
};

/// The serving facade: an incomplete table, its indexes, and a unified
/// query API — safe for any number of concurrent readers plus one mutating
/// writer at a time.
///
/// Concurrency model (epoch-versioned snapshots):
///
///  * Every read path (Run, RunBatch, GetSnapshot) pins an immutable
///    Snapshot — a row-count watermark, an
///    index-registry version and a deletion-mask version — through one
///    shared_ptr copy. The pinned view stays consistent for the whole
///    query no matter what writers do meanwhile.
///  * Mutators (Insert / Delete / BuildIndex / DropIndex) serialize on a
///    writer mutex, never touch published state in place, and publish a
///    fresh epoch: the table is append-only and watermarked, the index
///    registry and the deletion mask are copy-on-write.
///  * Indexes are immutable once published; they cover exactly the rows
///    that existed when BuildIndex ran. Rows appended later are answered
///    by the executor's delta scan (RowMatches over the uncovered tail)
///    until a rebuild re-covers them — so Insert stays O(1) per index and
///    readers never observe a half-updated structure.
///
/// Mutating concurrently from two threads is NOT safe-by-design (the
/// writer mutex serializes them, but the caller loses ordering guarantees);
/// one logical writer is the intended regime.
class Database {
 public:
  /// An empty database with the given schema.
  static Result<Database> Create(Schema schema);
  /// Takes ownership of an existing table.
  static Result<Database> FromTable(Table table);
  /// Loads a table written by WriteCsv ("?" = missing).
  static Result<Database> FromCsv(const std::string& path);

  /// Persists the current epoch — table rows, deletion mask, statistics,
  /// and every registered index — into the store directory `dir` (format
  /// in docs/STORAGE.md). Runs against a pinned snapshot, so concurrent
  /// readers and later writes are unaffected. Crash-safe and atomic: a
  /// fresh payload generation is written and fsync'd before the manifest
  /// is renamed into place, so an interrupted Save leaves the previous
  /// store intact — and saving back into the directory this database was
  /// opened from is safe (the mmap'd old generation is never touched).
  Status Save(const std::string& dir) const;

  /// Opens a store directory written by Save and publishes it as epoch 0.
  /// The table and the bitmap / VA-file payloads are zero-copy views into
  /// an mmap'd segment (pages fault in lazily on first access), so opening
  /// is fast regardless of data size; indexes without a stable wire form
  /// (the bitstring-augmented R-tree) are rebuilt. Subsequent Insert /
  /// Delete / BuildIndex work exactly as on an in-memory database. With
  /// `verify_checksums` (the default) every section's CRC-32 is checked up
  /// front — one pass over the data — and all corruption surfaces as a
  /// Status error, never a crash. `false` skips that pass, making open
  /// time independent of the store size, but narrows the no-crash
  /// guarantee to metadata: corrupt bulk payload bytes go undetected and
  /// can misbehave at query time (see storage::OpenOptions).
  static Result<Database> Open(const std::string& dir,
                               bool verify_checksums = true);

  Database(Database&&) = default;
  Database& operator=(Database&&) = default;
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  /// The current base table. The reference is stable for the Database's
  /// lifetime UNLESS CompactNow runs (compaction swaps in a rewritten
  /// table); callers that mix table() with compaction must re-fetch after
  /// each compaction and must not hold the reference across one.
  const Table& table() const { return *GetSnapshot().state().table; }
  uint64_t num_rows() const { return GetSnapshot().num_rows(); }

  /// Pins the current epoch. The returned Snapshot is immutable, cheap to
  /// copy, and valid for as long as the Database (and therefore the shared
  /// table) is alive.
  Snapshot GetSnapshot() const INCDB_EXCLUDES(shared_->head_mu);

  /// Executes one request against a freshly pinned snapshot: resolves the
  /// predicate, routes by predicted cost, executes (index + delta scan),
  /// strips deleted rows, and returns the answer with the routing decision
  /// and per-query cost counters. Safe to call from any thread.
  Result<QueryResult> Run(const QueryRequest& request) const;

  /// Fans a batch of requests across `num_threads` workers (0 = hardware
  /// concurrency), all pinned to ONE common snapshot so the batch sees a
  /// single consistent epoch. Per-request results come back in request
  /// order; per-thread QueryStats are accumulated into BatchResult::stats.
  BatchResult RunBatch(const std::vector<QueryRequest>& requests,
                       size_t num_threads = 0) const;

  /// Appends a row and publishes a new epoch. Existing indexes are NOT
  /// extended (they are immutable); queries cover the new row via the
  /// delta scan.
  Status Insert(const std::vector<Value>& row)
      INCDB_EXCLUDES(shared_->writer_mu);

  /// Logically deletes a row: copy-on-write on the deletion mask, then
  /// publishes a new epoch. Already-pinned snapshots still see the row.
  /// Deleting a row twice is an error.
  Status Delete(uint32_t row) INCDB_EXCLUDES(shared_->writer_mu);

  /// True if `row` is logically deleted in the current epoch.
  bool IsDeleted(uint32_t row) const;

  /// Rows inserted minus rows deleted, in the current epoch.
  uint64_t num_live_rows() const;
  uint64_t num_deleted_rows() const;

  /// Builds an index over all rows visible now and publishes a new epoch
  /// (rebuilding if already present — a rebuild is also how appended rows
  /// get re-covered).
  Status BuildIndex(IndexKind kind) INCDB_EXCLUDES(shared_->writer_mu);
  /// Unregisters an index and publishes a new epoch; queries fall back to
  /// other indexes or a scan. In-flight readers that pinned the old epoch
  /// keep the index alive until they finish.
  Status DropIndex(IndexKind kind) INCDB_EXCLUDES(shared_->writer_mu);
  bool HasIndex(IndexKind kind) const;
  /// Registered index kinds, ascending.
  std::vector<IndexKind> Indexes() const;

  /// Switches on the sharded segment layer (docs/SEGMENTS.md): existing
  /// full segments are sealed in parallel and every future Insert seals a
  /// segment each time `options.segment_rows` rows accumulate past the
  /// sealed watermark. Range/expression queries are then served per
  /// segment with zone-map pruning; the unsealed tail keeps using the
  /// delta scan. One-shot: enabling twice is an error. Publishes a new
  /// epoch.
  Status EnableSegments(const SegmentOptions& options)
      INCDB_EXCLUDES(shared_->writer_mu);
  bool segments_enabled() const;
  /// Sealed segment count / sealed row watermark in the current epoch.
  size_t num_segments() const { return GetSnapshot().num_segments(); }
  uint64_t sealed_rows() const { return GetSnapshot().sealed_rows(); }

  /// Physically reclaims deleted rows (the deletion mask otherwise only
  /// grows): rewrites the base table without them, resets the mask,
  /// rebuilds registry indexes over the surviving rows, and — with
  /// segments enabled — re-segments only the segments that contained
  /// deletes or are undersized merge candidates, carrying every untouched
  /// segment (and its index) over by reference. Publishes via the usual
  /// epoch swap, so concurrent readers never block and pinned snapshots
  /// keep the pre-compaction table alive until they finish. A call with
  /// nothing to reclaim is a cheap no-op. Serialized with all other
  /// mutators on writer_mu.
  Status CompactNow() INCDB_EXCLUDES(shared_->writer_mu);
  /// Cumulative compaction counters (thread-safe, monotone).
  CompactionStats GetCompactionStats() const;

  /// Resolves a named term to an attribute index + validated interval.
  Result<QueryTerm> ResolveTerm(const NamedTerm& term) const;

  /// Total bytes across registered indexes in the current epoch.
  uint64_t IndexSizeInBytes() const;

 private:
  explicit Database(Table table);

  /// Open() plumbing: adopts an already-loaded shared table without the
  /// per-column missing-count scan (the counts come from the catalog) and
  /// without publishing — the caller installs the loaded state first.
  struct OpenTag {};
  Database(std::shared_ptr<Table> table, OpenTag);

  /// Builds a SnapshotState from the writer-side fields and swaps the head
  /// pointer. The writer_mu requirement is compiler-enforced on clang.
  void Publish() INCDB_REQUIRES(shared_->writer_mu)
      INCDB_EXCLUDES(shared_->head_mu);

  /// Mutexes and the head pointer live behind a unique_ptr so the Database
  /// itself stays movable.
  struct Shared {
    /// Serializes all mutators; every writer-side field below is
    /// INCDB_GUARDED_BY it.
    Mutex writer_mu;
    /// Guards `head` (pointer swap/copy only — never held during work).
    Mutex head_mu;
    std::shared_ptr<const internal::SnapshotState> head
        INCDB_GUARDED_BY(head_mu);
    /// Compaction accounting; atomics so GetCompactionStats never takes a
    /// lock (a stats read is advisory, not a synchronization point).
    std::atomic<uint64_t> compactions{0};
    std::atomic<uint64_t> reclaimed_rows{0};
    std::atomic<uint64_t> reclaimed_bytes{0};
    std::atomic<uint64_t> segments_rebuilt{0};
    std::atomic<uint64_t> segments_reused{0};
  };

  // Heap-allocated so snapshot/index back-references to the table stay
  // stable on move; shared with the storage reader's loaded indexes on the
  // Open path.
  std::shared_ptr<Table> table_;
  std::unique_ptr<Shared> shared_;
  /// Keeps the mmap'd store segment alive while any borrowed view (table
  /// columns, index payloads) can still reach it. Type-erased so this
  /// header does not depend on the storage layer.
  std::shared_ptr<void> mapping_pin_;

  // Writer-side state, guarded by shared_->writer_mu. Published versions
  // are immutable; these are the working copies the next epoch is built
  // from. The GUARDED_BY annotations make an unlocked access a compile
  // error on the clang cells.
  uint64_t epoch_ INCDB_GUARDED_BY(shared_->writer_mu) = 0;
  std::shared_ptr<const std::vector<internal::SnapshotIndexEntry>> registry_
      INCDB_GUARDED_BY(shared_->writer_mu);
  std::shared_ptr<const BitVector> deleted_
      INCDB_GUARDED_BY(shared_->writer_mu);
  uint64_t num_deleted_ INCDB_GUARDED_BY(shared_->writer_mu) = 0;
  /// Per-attribute missing-cell counts, maintained incrementally on Insert
  /// (feeds the router's selectivity model without O(n) rescans).
  std::vector<uint64_t> missing_counts_ INCDB_GUARDED_BY(shared_->writer_mu);

  /// Segment layer working state. segment_list_ is the copy-on-write
  /// published value: rebuilt only when the segment set changes (seal /
  /// compaction), shared by pointer into every published epoch in between.
  std::shared_ptr<const internal::SegmentList> segment_list_
      INCDB_GUARDED_BY(shared_->writer_mu);
  /// Next segment content id; never reused within this database lineage
  /// (content ids name per-segment store files, see docs/SEGMENTS.md).
  uint64_t next_content_id_ INCDB_GUARDED_BY(shared_->writer_mu) = 1;
  /// Remembers which sealed segments are already durable in which form so
  /// Save can skip rewriting them (the dirty-segment save contract).
  /// Created by every constructor (Open seeds it from the store's segment
  /// files); internally locked, so the const Save path can use it.
  std::shared_ptr<storage::SegmentPersistCache> persist_cache_;

  /// Seals every full pending segment in [sealed_rows, limit); updates
  /// segment_list_. Caller publishes.
  Status SealPending(uint64_t limit) INCDB_REQUIRES(shared_->writer_mu);
};

/// Runs Database::CompactNow on a trigger-and-throttle loop from a
/// dedicated thread: every `interval_millis` it checks whether at least
/// `min_deleted_rows` rows are logically deleted and compacts if so.
/// RAII — the destructor stops and joins the thread. The Database must
/// outlive this object and must not be moved while it is alive (the
/// thread holds a raw pointer). Readers never block: compaction publishes
/// through the usual epoch swap.
class BackgroundCompactor {
 public:
  struct Options {
    uint64_t interval_millis = 250;
    /// Compact once this many rows are logically deleted.
    uint64_t min_deleted_rows = 1;
  };

  BackgroundCompactor(Database* db, Options options);
  ~BackgroundCompactor();

  BackgroundCompactor(const BackgroundCompactor&) = delete;
  BackgroundCompactor& operator=(const BackgroundCompactor&) = delete;

  /// Stops the loop and joins the thread; idempotent.
  void Stop();

  /// Completed compaction sweeps (trigger fired and CompactNow returned).
  uint64_t runs() const { return runs_.load(std::memory_order_relaxed); }

 private:
  void Loop();

  Database* db_;
  Options options_;
  std::atomic<bool> stop_{false};
  std::atomic<uint64_t> runs_{0};
  std::thread thread_;
};

}  // namespace incdb

#endif  // INCDB_CORE_DATABASE_H_
