#ifndef INCDB_CORE_DATABASE_H_
#define INCDB_CORE_DATABASE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "core/expr_executor.h"
#include "core/incomplete_index.h"
#include "core/index_factory.h"
#include "query/expr.h"
#include "table/table.h"

namespace incdb {

/// A query term addressed by attribute name (the Database-level API).
struct NamedTerm {
  std::string attribute;
  Value lo = 1;
  Value hi = 1;
};

/// Convenience facade bundling an incomplete table with its indexes.
///
/// Owns the base table, keeps any number of indexes in sync under appends,
/// and routes each query to the best index available using the paper's
/// guidance (§6): equality encoding is best for point queries, range
/// encoding for range queries, the VA-file when memory is tight, and a
/// sequential scan when nothing else exists. Not thread-safe for writes.
class Database {
 public:
  /// An empty database with the given schema.
  static Result<Database> Create(Schema schema);
  /// Takes ownership of an existing table.
  static Result<Database> FromTable(Table table);
  /// Loads a table written by WriteCsv ("?" = missing).
  static Result<Database> FromCsv(const std::string& path);

  Database(Database&&) = default;
  Database& operator=(Database&&) = default;
  Database(const Database&) = delete;
  Database& operator=(const Database&) = delete;

  const Table& table() const { return *table_; }
  uint64_t num_rows() const { return table_->num_rows(); }

  /// Appends a row to the table and to every registered index.
  Status Insert(const std::vector<Value>& row);

  /// Logically deletes a row: it stays in the table and the indexes but is
  /// masked out of every subsequent query result (the standard
  /// deletion-bitvector technique — bitmap indexes are append-only).
  /// Deleting a row twice is an error.
  Status Delete(uint32_t row);

  /// True if `row` has been logically deleted.
  bool IsDeleted(uint32_t row) const;

  /// Rows inserted minus rows deleted.
  uint64_t num_live_rows() const { return table_->num_rows() - num_deleted_; }
  uint64_t num_deleted_rows() const { return num_deleted_; }

  /// Builds and registers an index (rebuilding if already present).
  /// Fails for kinds that cannot stay in sync under Insert.
  Status BuildIndex(IndexKind kind);
  /// Removes an index; queries fall back to other indexes or a scan.
  Status DropIndex(IndexKind kind);
  bool HasIndex(IndexKind kind) const;
  /// Registered index kinds, in routing-preference order.
  std::vector<IndexKind> Indexes() const;

  /// Runs a conjunctive query given by named terms. Returns matching row
  /// ids ascending. `chosen`, when non-null, receives the name of the
  /// index that served the query.
  Result<std::vector<uint32_t>> Query(const std::vector<NamedTerm>& terms,
                                      MissingSemantics semantics,
                                      std::string* chosen = nullptr) const;

  /// Runs a boolean expression query (AND/OR/NOT, Kleene semantics).
  Result<std::vector<uint32_t>> QueryExpression(
      const QueryExpr& expr, MissingSemantics semantics,
      std::string* chosen = nullptr) const;

  /// Parses and runs a textual predicate, e.g.
  /// "rating >= 4 AND price IN [1,7] AND NOT region = 3" (see
  /// query/parser.h for the grammar).
  Result<std::vector<uint32_t>> QueryText(const std::string& text,
                                          MissingSemantics semantics,
                                          std::string* chosen = nullptr) const;

  /// Resolves a named term to an attribute index + validated interval.
  Result<QueryTerm> ResolveTerm(const NamedTerm& term) const;

  /// Total bytes across registered indexes.
  uint64_t IndexSizeInBytes() const;

 private:
  explicit Database(Table table);

  /// The index that should serve `query` per the paper's guidance.
  const IncompleteIndex& Route(bool is_point_query) const;

  /// Strips logically deleted rows from a result bitvector.
  void MaskDeleted(BitVector* result) const;

  // unique_ptr so index back-references to the table stay stable on move.
  std::unique_ptr<Table> table_;
  std::unique_ptr<IncompleteIndex> scan_;
  std::map<IndexKind, std::unique_ptr<IncompleteIndex>> indexes_;
  /// Deletion mask; bit set = row deleted. Grows lazily with the table.
  BitVector deleted_;
  uint64_t num_deleted_ = 0;
};

}  // namespace incdb

#endif  // INCDB_CORE_DATABASE_H_
