#ifndef INCDB_BITVECTOR_BITVECTOR_H_
#define INCDB_BITVECTOR_BITVECTOR_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"

namespace incdb {

/// Uncompressed (verbatim) bitvector with word-parallel logical operations.
///
/// This is both the in-memory working representation for query results and
/// the reference ("ground truth") implementation the WAH-compressed form is
/// tested against. One bit per record; bit x corresponds to record x.
///
/// Bits beyond size() inside the last word are kept zero at all times; all
/// mutators preserve this invariant so popcount and logical ops can run over
/// whole words.
class BitVector {
 public:
  /// Empty bitvector.
  BitVector() : size_(0) {}

  /// `size` bits, all zero.
  explicit BitVector(uint64_t size);

  /// `size` bits, all set to `value`.
  BitVector(uint64_t size, bool value);

  /// Builds from a bool vector (handy in tests).
  static BitVector FromBools(const std::vector<bool>& bits);

  /// Builds from a string of '0'/'1' characters, e.g. "0001000010".
  /// Characters other than '0'/'1' are rejected.
  static Result<BitVector> FromString(const std::string& bits);

  /// Builds from raw 64-bit words (the storage engine's load path).
  /// `words` must be exactly CeilDiv(size, 64) long with every bit beyond
  /// `size` zero (the class invariant); violations are rejected.
  static Result<BitVector> FromWords(uint64_t size,
                                     std::vector<uint64_t> words);

  uint64_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  /// Value of bit `index`. Requires index < size().
  bool Get(uint64_t index) const;

  /// Sets bit `index` to `value`. Requires index < size().
  void Set(uint64_t index, bool value = true);

  /// Sets every bit in [begin, end) to one. Requires begin <= end <= size().
  /// Word-at-a-time; used by WAH decompression to expand one-fills.
  void SetRange(uint64_t begin, uint64_t end);

  /// Appends one bit at the end.
  void PushBack(bool value);

  /// Resizes; new bits are zero.
  void Resize(uint64_t new_size);

  /// Sets all bits to zero / one without changing size.
  void ClearAll();
  void SetAll();

  /// Number of set bits.
  uint64_t Count() const;

  /// Fraction of set bits (0 for an empty vector). The paper's "bit density".
  double Density() const;

  /// In-place logical operations. The operand must have equal size.
  void AndWith(const BitVector& other);
  void OrWith(const BitVector& other);
  void XorWith(const BitVector& other);
  /// ORs `src` into this vector starting at bit `offset` (the segment
  /// splice: local per-segment results land at their global row offset).
  /// Requires offset + src.size() <= size(). Word-parallel with a single
  /// shift when the offset is not 64-aligned.
  void OrAt(const BitVector& src, uint64_t offset);
  /// In-place complement (respects the trailing-bits-zero invariant).
  void Flip();

  /// Calls `fn(index)` for every set bit, in increasing order.
  template <typename Fn>
  void ForEachSetBit(Fn&& fn) const;

  /// Indices of all set bits, ascending.
  std::vector<uint32_t> ToIndices() const;

  /// '0'/'1' string, bit 0 first (matches the paper's tables).
  std::string ToString() const;

  bool operator==(const BitVector& other) const {
    return size_ == other.size_ && words_ == other.words_;
  }

  /// Underlying 64-bit words, little-endian bit order within a word.
  const std::vector<uint64_t>& words() const { return words_; }

  /// Bytes of payload memory (words only, excludes object header).
  uint64_t SizeInBytes() const { return words_.size() * sizeof(uint64_t); }

 private:
  void ZeroTrailingBits();

  uint64_t size_;
  std::vector<uint64_t> words_;
};

/// Out-of-place logical operations. Operands must have equal size.
BitVector And(const BitVector& a, const BitVector& b);
BitVector Or(const BitVector& a, const BitVector& b);
BitVector Xor(const BitVector& a, const BitVector& b);
BitVector Not(const BitVector& a);

template <typename Fn>
void BitVector::ForEachSetBit(Fn&& fn) const {
  for (uint64_t w = 0; w < words_.size(); ++w) {
    uint64_t word = words_[w];
    while (word != 0) {
      const int bit = __builtin_ctzll(word);
      fn(w * 64 + static_cast<uint64_t>(bit));
      word &= word - 1;
    }
  }
}

}  // namespace incdb

#endif  // INCDB_BITVECTOR_BITVECTOR_H_
