#include "bitvector/bitvector.h"

#include <algorithm>
#include <cstddef>

#include "common/bitutil.h"
#include "common/logging.h"
#include "simd/simd.h"

namespace incdb {

namespace {
constexpr uint64_t kWordBits = 64;
}  // namespace

BitVector::BitVector(uint64_t size)
    : size_(size), words_(bitutil::CeilDiv(size, kWordBits), 0) {}

BitVector::BitVector(uint64_t size, bool value) : BitVector(size) {
  if (value) SetAll();
}

BitVector BitVector::FromBools(const std::vector<bool>& bits) {
  BitVector bv(bits.size());
  for (uint64_t i = 0; i < bits.size(); ++i) {
    if (bits[i]) bv.Set(i);
  }
  return bv;
}

Result<BitVector> BitVector::FromString(const std::string& bits) {
  BitVector bv(bits.size());
  for (uint64_t i = 0; i < bits.size(); ++i) {
    if (bits[i] == '1') {
      bv.Set(i);
    } else if (bits[i] != '0') {
      return Status::InvalidArgument("bit string may contain only '0'/'1'");
    }
  }
  return bv;
}

Result<BitVector> BitVector::FromWords(uint64_t size,
                                       std::vector<uint64_t> words) {
  const uint64_t expected = (size + kWordBits - 1) / kWordBits;
  if (words.size() != expected) {
    return Status::InvalidArgument(
        "bitvector payload has " + std::to_string(words.size()) +
        " words, size " + std::to_string(size) + " needs " +
        std::to_string(expected));
  }
  const int tail_bits = static_cast<int>(size % kWordBits);
  if (tail_bits != 0 && (words.back() >> tail_bits) != 0) {
    return Status::InvalidArgument(
        "bitvector payload has set bits beyond its size");
  }
  BitVector bv;
  bv.size_ = size;
  bv.words_ = std::move(words);
  return bv;
}

bool BitVector::Get(uint64_t index) const {
  INCDB_DCHECK(index < size_);
  return (words_[index / kWordBits] >> (index % kWordBits)) & 1;
}

void BitVector::Set(uint64_t index, bool value) {
  INCDB_DCHECK(index < size_);
  const uint64_t mask = uint64_t{1} << (index % kWordBits);
  if (value) {
    words_[index / kWordBits] |= mask;
  } else {
    words_[index / kWordBits] &= ~mask;
  }
}

void BitVector::SetRange(uint64_t begin, uint64_t end) {
  INCDB_DCHECK(begin <= end && end <= size_);
  if (begin == end) return;
  const uint64_t first_word = begin / kWordBits;
  const uint64_t last_word = (end - 1) / kWordBits;
  const uint64_t head_mask = ~uint64_t{0} << (begin % kWordBits);
  const uint64_t tail_bits = end % kWordBits;
  const uint64_t tail_mask =
      tail_bits == 0 ? ~uint64_t{0} : (uint64_t{1} << tail_bits) - 1;
  if (first_word == last_word) {
    words_[first_word] |= head_mask & tail_mask;
    return;
  }
  words_[first_word] |= head_mask;
  std::fill(words_.begin() + static_cast<ptrdiff_t>(first_word) + 1,
            words_.begin() + static_cast<ptrdiff_t>(last_word), ~uint64_t{0});
  words_[last_word] |= tail_mask;
}

void BitVector::PushBack(bool value) {
  if (size_ % kWordBits == 0) words_.push_back(0);
  ++size_;
  if (value) Set(size_ - 1);
}

void BitVector::Resize(uint64_t new_size) {
  words_.resize(bitutil::CeilDiv(new_size, kWordBits), 0);
  size_ = new_size;
  ZeroTrailingBits();
}

void BitVector::ClearAll() {
  for (auto& w : words_) w = 0;
}

void BitVector::SetAll() {
  for (auto& w : words_) w = ~uint64_t{0};
  ZeroTrailingBits();
}

uint64_t BitVector::Count() const {
  return simd::ActiveKernels().popcount(words_.data(),
                                        words_.size() * sizeof(uint64_t));
}

double BitVector::Density() const {
  if (size_ == 0) return 0.0;
  return static_cast<double>(Count()) / static_cast<double>(size_);
}

void BitVector::AndWith(const BitVector& other) {
  INCDB_CHECK(size_ == other.size_);
  simd::ActiveKernels().and_into(words_.data(), other.words_.data(),
                                 words_.size() * sizeof(uint64_t));
}

void BitVector::OrWith(const BitVector& other) {
  INCDB_CHECK(size_ == other.size_);
  simd::ActiveKernels().or_into(words_.data(), other.words_.data(),
                                words_.size() * sizeof(uint64_t));
}

void BitVector::OrAt(const BitVector& src, uint64_t offset) {
  INCDB_CHECK(offset + src.size_ <= size_);
  if (src.size_ == 0) return;
  const uint64_t word0 = offset / 64;
  const unsigned shift = static_cast<unsigned>(offset % 64);
  const size_t src_words = src.words_.size();
  if (shift == 0) {
    for (size_t w = 0; w < src_words; ++w) {
      words_[word0 + w] |= src.words_[w];
    }
    return;
  }
  // Each source word straddles two destination words. The source's
  // trailing bits beyond src.size_ are zero (class invariant), so the
  // spill of the last word never sets bits past offset + src.size_.
  uint64_t carry = 0;
  for (size_t w = 0; w < src_words; ++w) {
    const uint64_t word = src.words_[w];
    words_[word0 + w] |= (word << shift) | carry;
    carry = word >> (64 - shift);
  }
  if (carry != 0) words_[word0 + src_words] |= carry;
}

void BitVector::XorWith(const BitVector& other) {
  INCDB_CHECK(size_ == other.size_);
  simd::ActiveKernels().xor_into(words_.data(), other.words_.data(),
                                 words_.size() * sizeof(uint64_t));
}

void BitVector::Flip() {
  for (auto& w : words_) w = ~w;
  ZeroTrailingBits();
}

std::vector<uint32_t> BitVector::ToIndices() const {
  std::vector<uint32_t> indices(Count());
  const size_t written = simd::ActiveKernels().extract_set_bits(
      words_.data(), words_.size(), /*base=*/0, indices.data());
  INCDB_DCHECK(written == indices.size());
  (void)written;
  return indices;
}

std::string BitVector::ToString() const {
  std::string out(size_, '0');
  ForEachSetBit([&](uint64_t i) { out[i] = '1'; });
  return out;
}

void BitVector::ZeroTrailingBits() {
  const uint64_t tail = size_ % kWordBits;
  if (tail != 0 && !words_.empty()) {
    words_.back() &= bitutil::LowBitsMask(static_cast<int>(tail));
  }
}

BitVector And(const BitVector& a, const BitVector& b) {
  BitVector out = a;
  out.AndWith(b);
  return out;
}

BitVector Or(const BitVector& a, const BitVector& b) {
  BitVector out = a;
  out.OrWith(b);
  return out;
}

BitVector Xor(const BitVector& a, const BitVector& b) {
  BitVector out = a;
  out.XorWith(b);
  return out;
}

BitVector Not(const BitVector& a) {
  BitVector out = a;
  out.Flip();
  return out;
}

}  // namespace incdb
