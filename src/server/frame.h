#ifndef INCDB_SERVER_FRAME_H_
#define INCDB_SERVER_FRAME_H_

#include <cstdint>
#include <vector>

#include "common/status.h"
#include "server/net.h"
#include "server/wire.h"

namespace incdb {
namespace server {

/// Frame transport: one wire frame in, one wire frame out, over a
/// connected socket. Composes net.h (bytes) with wire.h (layout); both the
/// daemon and the client library speak through these two calls.

/// Writes one complete frame (header + body) to the socket.
Status WriteFrame(const Fd& fd, wire::MsgType type,
                  const std::vector<uint8_t>& body);

/// Reads one complete frame. `timeout_millis` bounds each stall while the
/// frame is in flight (net.h ReadFull semantics), `max_body` rejects
/// hostile length prefixes before any allocation. Outcomes follow ReadFull:
/// clean EOF before the first header byte reports kUnavailable with
/// `*clean_eof = true` (peer hung up between frames — not an error for a
/// server); anything else non-OK means the stream is unusable.
Status ReadFrame(const Fd& fd, int timeout_millis, size_t max_body,
                 wire::MsgType* type, std::vector<uint8_t>* body,
                 bool* clean_eof);

}  // namespace server
}  // namespace incdb

#endif  // INCDB_SERVER_FRAME_H_
