#ifndef INCDB_SERVER_CLIENT_H_
#define INCDB_SERVER_CLIENT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/query_api.h"
#include "server/net.h"
#include "server/wire.h"

namespace incdb {
namespace server {

/// Connection settings for a Client.
struct ClientOptions {
  /// Bound on any one network stall while a frame is in flight, AND the
  /// wait for a response to start arriving. Cover the longest query you
  /// expect to run plus queueing — a slow answer past this bound surfaces
  /// as kDeadlineExceeded client-side.
  int timeout_millis = 30000;
  /// Advisory name sent in the Hello.
  std::string client_name = "incdb_client";
  /// Largest response frame this client will accept.
  size_t max_frame_bytes = wire::kDefaultMaxFrameBytes;
};

/// Blocking client for the incdb serving protocol: one TCP connection, one
/// outstanding request at a time (run several Clients for concurrency —
/// the daemon multiplexes connections server-side). Movable, not copyable,
/// not thread-safe; a Client is meant to live on one thread.
///
/// Server-reported failures come back as the ORIGINAL Status — the wire
/// carries the numeric StatusCode verbatim, so
/// `client.Run(...).status().code()` distinguishes kOverloaded (back off
/// and retry) from kDeadlineExceeded (the query itself was too slow) from
/// kInvalidArgument (fix the request) exactly like an in-process caller.
class Client {
 public:
  /// Connects and performs the Hello handshake (magic + protocol version).
  static Result<Client> Connect(const std::string& host, uint16_t port,
                                ClientOptions options = {});

  Client(Client&&) = default;
  Client& operator=(Client&&) = default;

  /// Executes one query remotely. The request's deadline budget starts at
  /// server admission (see QueryRequest::DeadlineMillis).
  Result<QueryResult> Run(const QueryRequest& request);

  /// Fetches the server's observability counters.
  Result<wire::ServerStats> Stats();

  /// Round-trip liveness probe.
  Status Ping();

  /// The server's HelloAck (name, negotiated version).
  const wire::Hello& server_hello() const { return server_hello_; }

 private:
  Client(Fd fd, ClientOptions options)
      : fd_(std::move(fd)), options_(std::move(options)) {}

  /// Sends one frame and reads the response frame. A kError response is
  /// decoded into its Status and returned as the error.
  Result<std::vector<uint8_t>> Call(wire::MsgType request_type,
                                    const std::vector<uint8_t>& request_body,
                                    wire::MsgType expected_response);

  Fd fd_;
  ClientOptions options_;
  wire::Hello server_hello_;
};

}  // namespace server
}  // namespace incdb

#endif  // INCDB_SERVER_CLIENT_H_
