#ifndef INCDB_SERVER_METRICS_H_
#define INCDB_SERVER_METRICS_H_

#include <algorithm>
#include <array>
#include <atomic>
#include <cstddef>
#include <cstdint>
#include <vector>

#include "common/thread_annotations.h"
#include "server/wire.h"

namespace incdb {
namespace server {

/// Lock-free counters plus a small mutex-guarded latency ring, filled by
/// every server thread and snapshotted on demand (the kServerStats
/// endpoint and the test suite). Counters are monotonically increasing
/// except the two gauges; relaxed ordering is enough because a stats
/// snapshot is advisory, not a synchronization point.
class ServerMetrics {
 public:
  /// Most recent completed-request latencies kept for the quantile
  /// estimate. Power of two so the ring index is a mask.
  static constexpr size_t kLatencyRingSize = 1024;

  std::atomic<uint64_t> accepted_connections{0};
  std::atomic<uint64_t> active_connections{0};  // gauge
  std::atomic<uint64_t> admitted{0};
  std::atomic<uint64_t> rejected_overloaded{0};
  std::atomic<uint64_t> rejected_invalid{0};
  std::atomic<uint64_t> shed_expired{0};
  std::atomic<uint64_t> deadline_exceeded{0};
  std::atomic<uint64_t> completed{0};
  std::atomic<uint64_t> failed{0};

  /// Records one admission-to-completion latency in the ring.
  void RecordLatencyMicros(uint64_t micros) {
    const MutexLock lock(&ring_mu_);
    ring_[ring_next_ & (kLatencyRingSize - 1)] = micros;
    ++ring_next_;
  }

  /// p50/p99 over the latencies currently in the ring; zeros when empty.
  void LatencyQuantiles(uint64_t* p50, uint64_t* p99) const {
    std::vector<uint64_t> sample;
    {
      const MutexLock lock(&ring_mu_);
      const size_t n = std::min<size_t>(ring_next_, kLatencyRingSize);
      sample.assign(ring_.begin(), ring_.begin() + n);
    }
    if (sample.empty()) {
      *p50 = 0;
      *p99 = 0;
      return;
    }
    std::sort(sample.begin(), sample.end());
    *p50 = sample[sample.size() / 2];
    *p99 = sample[(sample.size() * 99) / 100];
  }

  /// Point-in-time copy of every counter (the wire-facing struct, minus
  /// the config echoes the Server fills in itself).
  wire::ServerStats Snapshot() const {
    wire::ServerStats stats;
    stats.accepted_connections =
        accepted_connections.load(std::memory_order_relaxed);
    stats.active_connections =
        active_connections.load(std::memory_order_relaxed);
    stats.admitted = admitted.load(std::memory_order_relaxed);
    stats.rejected_overloaded =
        rejected_overloaded.load(std::memory_order_relaxed);
    stats.rejected_invalid = rejected_invalid.load(std::memory_order_relaxed);
    stats.shed_expired = shed_expired.load(std::memory_order_relaxed);
    stats.deadline_exceeded =
        deadline_exceeded.load(std::memory_order_relaxed);
    stats.completed = completed.load(std::memory_order_relaxed);
    stats.failed = failed.load(std::memory_order_relaxed);
    LatencyQuantiles(&stats.p50_micros, &stats.p99_micros);
    return stats;
  }

 private:
  mutable Mutex ring_mu_;
  std::array<uint64_t, kLatencyRingSize> ring_ INCDB_GUARDED_BY(ring_mu_) = {};
  size_t ring_next_ INCDB_GUARDED_BY(ring_mu_) = 0;
};

}  // namespace server
}  // namespace incdb

#endif  // INCDB_SERVER_METRICS_H_
