#include "server/server.h"

#include <algorithm>
#include <utility>

#include "plan/planner.h"
#include "server/frame.h"

namespace incdb {
namespace server {

namespace {

/// How often blocked loops (accept, idle connections, paused workers)
/// re-check their stop flags. Shutdown latency, not request latency.
constexpr int kPollMillis = 100;

using Clock = std::chrono::steady_clock;

uint64_t MillisSince(Clock::time_point start) {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(Clock::now() -
                                                            start)
          .count());
}

}  // namespace

Result<std::unique_ptr<Server>> Server::Start(const Database* db,
                                              ServerOptions options) {
  if (db == nullptr) {
    return Status::InvalidArgument("server needs a database to serve");
  }
  if (options.queue_capacity == 0) {
    return Status::InvalidArgument("queue_capacity must be positive");
  }
  if (options.workers == 0) {
    options.workers = std::max(1u, std::thread::hardware_concurrency());
  }
  INCDB_ASSIGN_OR_RETURN(Fd listener,
                         ListenTcp(options.host, options.port, /*backlog=*/128));
  INCDB_ASSIGN_OR_RETURN(const uint16_t port, LocalPort(listener));
  // Not make_unique: the constructor is private.
  std::unique_ptr<Server> server(
      new Server(db, std::move(options), std::move(listener),  // lint:allow(raw-new)
                 port));
  return server;
}

Server::Server(const Database* db, ServerOptions options, Fd listener,
               uint16_t port)
    : db_(db),
      options_(std::move(options)),
      listener_(std::move(listener)),
      port_(port),
      started_at_(Clock::now()) {
  worker_threads_.reserve(options_.workers);
  for (size_t i = 0; i < options_.workers; ++i) {
    worker_threads_.emplace_back([this] { WorkerLoop(); });
  }
  accept_thread_ = std::thread([this] { AcceptLoop(); });
}

Server::~Server() { Shutdown(); }

void Server::Shutdown() {
  {
    const std::lock_guard<std::mutex> lock(shutdown_mu_);
    if (shut_down_) return;
    shut_down_ = true;
  }
  // Phase 1: stop taking new work. The listener stops accepting and every
  // admission from here on answers kUnavailable.
  {
    const std::lock_guard<std::mutex> lock(queue_mu_);
    draining_ = true;
  }
  stop_accepting_.store(true, std::memory_order_release);
  if (accept_thread_.joinable()) accept_thread_.join();
  // Close the listening socket so late connects are refused outright
  // instead of parking in the kernel backlog with nobody to accept them.
  listener_.Close();

  // Phase 2: drain. Workers finish everything already queued — their exit
  // condition only fires on an empty queue — so every connection thread
  // blocked on a future gets its answer.
  {
    std::lock_guard<std::mutex> lock(queue_mu_);
    workers_should_exit_ = true;
    workers_paused_ = false;
  }
  queue_cv_.notify_all();
  for (std::thread& worker : worker_threads_) {
    if (worker.joinable()) worker.join();
  }

  // Phase 3: release the connections. Their requests have all been
  // answered; idle ones notice the flag within a poll interval.
  stop_connections_.store(true, std::memory_order_release);
  std::vector<std::unique_ptr<ConnState>> conns;
  {
    const std::lock_guard<std::mutex> lock(conns_mu_);
    conns.swap(conns_);
  }
  for (auto& conn : conns) {
    if (conn->thread.joinable()) conn->thread.join();
  }
}

wire::ServerStats Server::StatsSnapshot() const {
  wire::ServerStats stats = metrics_.Snapshot();
  stats.queue_capacity = options_.queue_capacity;
  stats.workers = options_.workers;
  // A running server always reports nonzero uptime; sub-millisecond ages
  // round up so "0" can never be mistaken for "not started".
  stats.uptime_millis = std::max<uint64_t>(1, MillisSince(started_at_));
  {
    auto* self = const_cast<Server*>(this);
    const std::lock_guard<std::mutex> lock(self->queue_mu_);
    stats.queue_depth = self->queue_.size();
    stats.draining = self->draining_;
  }
  // Segment-store accounting: a gauge from the live snapshot plus the
  // database's monotonic compaction counters.
  {
    const Snapshot snapshot = db_->GetSnapshot();
    if (snapshot.state().segments != nullptr) {
      stats.segments = snapshot.state().segments->segments.size();
    }
  }
  const CompactionStats compaction = db_->GetCompactionStats();
  stats.compactions = compaction.compactions;
  stats.compaction_reclaimed_rows = compaction.reclaimed_rows;
  stats.compaction_reclaimed_bytes = compaction.reclaimed_bytes;
  return stats;
}

void Server::PauseWorkersForTesting() {
  {
    const std::lock_guard<std::mutex> lock(queue_mu_);
    workers_paused_ = true;
  }
  queue_cv_.notify_all();
}

void Server::ResumeWorkersForTesting() {
  {
    const std::lock_guard<std::mutex> lock(queue_mu_);
    workers_paused_ = false;
  }
  queue_cv_.notify_all();
}

void Server::AcceptLoop() {
  while (!stop_accepting_.load(std::memory_order_acquire)) {
    ReapFinishedConnections();
    const auto readable = WaitReadable(listener_, kPollMillis);
    if (!readable.ok() || !*readable) continue;
    auto accepted = AcceptConnection(listener_);
    if (!accepted.ok()) continue;
    metrics_.accepted_connections.fetch_add(1, std::memory_order_relaxed);
    metrics_.active_connections.fetch_add(1, std::memory_order_relaxed);
    auto conn = std::make_unique<ConnState>();
    ConnState* state = conn.get();
    {
      const std::lock_guard<std::mutex> lock(conns_mu_);
      conns_.push_back(std::move(conn));
    }
    // The thread starts after registration so Shutdown always sees it.
    state->thread = std::thread(
        [this, state, fd = std::move(*accepted)]() mutable {
          ServeConnection(std::move(fd));
          metrics_.active_connections.fetch_sub(1, std::memory_order_relaxed);
          state->done.store(true, std::memory_order_release);
        });
  }
}

void Server::ReapFinishedConnections() {
  std::vector<std::unique_ptr<ConnState>> finished;
  {
    const std::lock_guard<std::mutex> lock(conns_mu_);
    auto alive = conns_.begin();
    for (auto& conn : conns_) {
      if (conn->done.load(std::memory_order_acquire)) {
        finished.push_back(std::move(conn));
      } else {
        *alive++ = std::move(conn);
      }
    }
    conns_.erase(alive, conns_.end());
  }
  for (auto& conn : finished) {
    if (conn->thread.joinable()) conn->thread.join();
  }
}

Result<std::future<Result<QueryResult>>> Server::Admit(QueryRequest request) {
  Task task;
  task.admitted_at = Clock::now();
  task.deadline = request.deadline_millis == 0
                      ? Clock::time_point::max()
                      : task.admitted_at + std::chrono::milliseconds(
                                               request.deadline_millis);
  task.request = std::move(request);
  std::future<Result<QueryResult>> future = task.promise.get_future();
  {
    const std::lock_guard<std::mutex> lock(queue_mu_);
    if (draining_) {
      return Status::Unavailable("server is draining for shutdown");
    }
    if (queue_.size() >= options_.queue_capacity) {
      metrics_.rejected_overloaded.fetch_add(1, std::memory_order_relaxed);
      return Status::Overloaded(
          "task queue at its high-water mark (" +
          std::to_string(options_.queue_capacity) +
          " queued); retry after a backoff");
    }
    // Pin the snapshot at admission: the request answers against the
    // database as of arrival, however long it waits behind others.
    task.snapshot = db_->GetSnapshot();
    metrics_.admitted.fetch_add(1, std::memory_order_relaxed);
    queue_.push_back(std::move(task));
  }
  queue_cv_.notify_one();
  return future;
}

void Server::WorkerLoop() {
  for (;;) {
    Task task;
    {
      std::unique_lock<std::mutex> lock(queue_mu_);
      queue_cv_.wait(lock, [this] {
        if (workers_paused_) return workers_should_exit_;
        return !queue_.empty() || workers_should_exit_;
      });
      if (queue_.empty() || (workers_paused_ && !workers_should_exit_)) {
        if (workers_should_exit_ && queue_.empty()) return;
        continue;
      }
      task = std::move(queue_.front());
      queue_.pop_front();
    }

    const Clock::time_point now = Clock::now();
    if (now >= task.deadline) {
      // Shed without executing: the client's budget is already gone, and
      // burning a worker on it would delay everyone behind it.
      metrics_.shed_expired.fetch_add(1, std::memory_order_relaxed);
      task.promise.set_value(Status::DeadlineExceeded(
          "deadline of " + std::to_string(task.request.deadline_millis) +
          " ms expired while the request was queued"));
      continue;
    }
    if (task.deadline != Clock::time_point::max()) {
      // Hand the plan executor what is LEFT of the admission-relative
      // budget, not the original figure.
      const auto remaining = std::chrono::duration_cast<std::chrono::milliseconds>(
          task.deadline - now);
      task.request.deadline_millis =
          std::max<int64_t>(1, remaining.count());
    }

    Result<QueryResult> result =
        plan::RunOnSnapshot(task.snapshot, task.request);
    if (result.ok()) {
      metrics_.completed.fetch_add(1, std::memory_order_relaxed);
      metrics_.RecordLatencyMicros(static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              Clock::now() - task.admitted_at)
              .count()));
    } else if (result.status().code() == StatusCode::kDeadlineExceeded) {
      metrics_.deadline_exceeded.fetch_add(1, std::memory_order_relaxed);
    } else {
      metrics_.failed.fetch_add(1, std::memory_order_relaxed);
    }
    task.promise.set_value(std::move(result));
  }
}

void Server::ServeConnection(Fd fd) {
  // Handshake first: anything that is not a well-formed, version-matched
  // Hello gets one best-effort error frame and the connection closes.
  {
    wire::MsgType type;
    std::vector<uint8_t> body;
    const Status read =
        ReadFrame(fd, options_.io_stall_timeout_millis,
                  options_.max_frame_bytes, &type, &body,
                  /*clean_eof=*/nullptr);
    if (!read.ok()) {
      (void)WriteFrame(fd, wire::MsgType::kError, wire::EncodeStatus(read));
      return;
    }
    if (type != wire::MsgType::kHello) {
      const Status err = Status::InvalidArgument(
          "expected a Hello frame to open the connection");
      (void)WriteFrame(fd, wire::MsgType::kError, wire::EncodeStatus(err));
      return;
    }
    const auto hello = wire::DecodeHello(body);
    if (!hello.ok()) {
      (void)WriteFrame(fd, wire::MsgType::kError,
                       wire::EncodeStatus(hello.status()));
      return;
    }
    if (hello->magic != wire::kMagic) {
      const Status err = Status::InvalidArgument(
          "bad magic in Hello: this is not the incdb serving protocol");
      (void)WriteFrame(fd, wire::MsgType::kError, wire::EncodeStatus(err));
      return;
    }
    if (hello->version != wire::kProtocolVersion) {
      const Status err = Status::InvalidArgument(
          "unsupported protocol version " + std::to_string(hello->version) +
          "; this server speaks version " +
          std::to_string(wire::kProtocolVersion));
      (void)WriteFrame(fd, wire::MsgType::kError, wire::EncodeStatus(err));
      return;
    }
    wire::Hello ack;
    ack.peer_name = options_.server_name;
    if (!WriteFrame(fd, wire::MsgType::kHelloAck, wire::EncodeHello(ack))
             .ok()) {
      return;
    }
  }

  // Request loop: one frame in, one frame out, until the peer hangs up,
  // the stream breaks, or the server shuts down.
  while (!stop_connections_.load(std::memory_order_acquire)) {
    // Idle-wait in poll slices so shutdown is never blocked on a silent
    // peer; the io-stall timeout only starts once a frame is in flight.
    const auto readable = WaitReadable(fd, kPollMillis);
    if (!readable.ok()) return;
    if (!*readable) continue;

    wire::MsgType type;
    std::vector<uint8_t> body;
    bool clean_eof = false;
    const Status read =
        ReadFrame(fd, options_.io_stall_timeout_millis,
                  options_.max_frame_bytes, &type, &body, &clean_eof);
    if (!read.ok()) {
      if (!clean_eof) {
        // Truncated frame, oversized length, stall, reset: report once if
        // the pipe still works, then drop the connection — the stream
        // cannot be resynchronized.
        (void)WriteFrame(fd, wire::MsgType::kError, wire::EncodeStatus(read));
      }
      return;
    }

    switch (type) {
      case wire::MsgType::kPing: {
        if (!WriteFrame(fd, wire::MsgType::kPong, {}).ok()) return;
        break;
      }
      case wire::MsgType::kServerStats: {
        const std::vector<uint8_t> stats =
            wire::EncodeServerStats(StatsSnapshot());
        if (!WriteFrame(fd, wire::MsgType::kServerStatsResult, stats).ok()) {
          return;
        }
        break;
      }
      case wire::MsgType::kQuery: {
        auto request = wire::DecodeQueryRequest(body);
        if (!request.ok()) {
          // Framing survived, the payload did not: answer and keep the
          // connection — the stream is still synchronized.
          metrics_.rejected_invalid.fetch_add(1, std::memory_order_relaxed);
          if (!WriteFrame(fd, wire::MsgType::kError,
                          wire::EncodeStatus(request.status()))
                   .ok()) {
            return;
          }
          break;
        }
        auto admitted = Admit(std::move(*request));
        if (!admitted.ok()) {
          if (!WriteFrame(fd, wire::MsgType::kError,
                          wire::EncodeStatus(admitted.status()))
                   .ok()) {
            return;
          }
          break;
        }
        Result<QueryResult> result = admitted->get();
        const Status written =
            result.ok()
                ? WriteFrame(fd, wire::MsgType::kQueryResult,
                             wire::EncodeQueryResult(*result))
                : WriteFrame(fd, wire::MsgType::kError,
                             wire::EncodeStatus(result.status()));
        if (!written.ok()) return;
        break;
      }
      default: {
        const Status err = Status::InvalidArgument(
            "unexpected message type " +
            std::to_string(static_cast<int>(type)) + " on the wire");
        if (!WriteFrame(fd, wire::MsgType::kError, wire::EncodeStatus(err))
                 .ok()) {
          return;
        }
        break;
      }
    }
  }
}

}  // namespace server
}  // namespace incdb
