#ifndef INCDB_SERVER_NET_H_
#define INCDB_SERVER_NET_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <utility>

#include "common/status.h"

namespace incdb {
namespace server {

/// Thin RAII + Status wrappers over POSIX TCP sockets. This file (and the
/// rest of src/server/) is the ONLY place in the tree allowed to touch the
/// socket API — tools/lint.py's `net-isolation` rule keeps every other
/// module speaking the wire protocol through the Client library instead.
///
/// All reads are poll-gated with a caller-supplied timeout so a stalled or
/// malicious peer (slow-loris) can never park a server thread forever, and
/// so server threads notice shutdown promptly. SIGPIPE is suppressed per
/// send (MSG_NOSIGNAL); a closed peer surfaces as a Status, never a signal.

/// Owned file descriptor. Closes on destruction; movable, not copyable.
class Fd {
 public:
  Fd() = default;
  explicit Fd(int fd) : fd_(fd) {}
  ~Fd() { Close(); }

  Fd(Fd&& other) noexcept : fd_(other.fd_) { other.fd_ = -1; }
  Fd& operator=(Fd&& other) noexcept {
    if (this != &other) {
      Close();
      fd_ = other.fd_;
      other.fd_ = -1;
    }
    return *this;
  }
  Fd(const Fd&) = delete;
  Fd& operator=(const Fd&) = delete;

  bool valid() const { return fd_ >= 0; }
  int get() const { return fd_; }
  void Close();

 private:
  int fd_ = -1;
};

/// Binds and listens on `host:port` (IPv4 dotted quad or "localhost").
/// port 0 picks an ephemeral port; read it back with LocalPort.
Result<Fd> ListenTcp(const std::string& host, uint16_t port, int backlog);

/// The port a listening socket is actually bound to.
Result<uint16_t> LocalPort(const Fd& fd);

/// Blocking connect to `host:port`.
Result<Fd> ConnectTcp(const std::string& host, uint16_t port);

/// Waits up to `timeout_millis` for `fd` to become readable.
/// Returns true = readable, false = timed out; error Status on poll failure.
Result<bool> WaitReadable(const Fd& fd, int timeout_millis);

/// Accepts one pending connection (call after WaitReadable on the listener).
Result<Fd> AcceptConnection(const Fd& listener);

/// Writes exactly `len` bytes, looping over partial writes and EINTR.
/// A peer that went away surfaces as StatusCode::kUnavailable.
Status WriteAll(const Fd& fd, const void* data, size_t len);

/// Reads exactly `len` bytes. Each wait for more bytes is bounded by
/// `timeout_millis` (an overall stall bound per read unit, resetting on
/// progress — a peer trickling one byte per poll interval still completes,
/// one stalling longer than the timeout does not). Outcomes:
///   ok                          — `len` bytes read;
///   kUnavailable, eof=true      — clean EOF before the FIRST byte (peer
///                                 closed between messages);
///   kUnavailable, eof=false     — EOF mid-read (truncated message) or
///                                 connection reset;
///   kDeadlineExceeded           — stalled past timeout_millis.
Status ReadFull(const Fd& fd, void* data, size_t len, int timeout_millis,
                bool* clean_eof);

}  // namespace server
}  // namespace incdb

#endif  // INCDB_SERVER_NET_H_
