#ifndef INCDB_SERVER_SERVER_H_
#define INCDB_SERVER_SERVER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <future>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/status.h"
#include "core/database.h"
#include "server/metrics.h"
#include "server/net.h"
#include "server/wire.h"

namespace incdb {
namespace server {

/// Serving daemon configuration. Defaults suit tests and local benches;
/// incdb_serverd exposes the knobs as flags.
struct ServerOptions {
  std::string host = "127.0.0.1";
  /// 0 = pick an ephemeral port; read it back with Server::port().
  uint16_t port = 0;
  /// Fixed worker pool executing queries. 0 = hardware concurrency.
  size_t workers = 0;
  /// Admission-control high-water mark: a query arriving while this many
  /// requests already wait is rejected with StatusCode::kOverloaded
  /// instead of queued (fail fast; see docs/SERVING.md).
  size_t queue_capacity = 64;
  /// Bound on any one network stall mid-frame (slow-loris defence).
  int io_stall_timeout_millis = 5000;
  /// Largest frame body this server will read.
  size_t max_frame_bytes = wire::kDefaultMaxFrameBytes;
  /// Name echoed in the HelloAck.
  std::string server_name = "incdb_serverd";
};

/// The serving daemon: a TCP listener speaking the versioned wire protocol
/// (server/wire.h) in front of one Database.
///
/// Threading model (docs/SERVING.md has the full prose):
///
///   * one accept thread multiplexing the listener with a stop flag;
///   * one I/O thread per connection — it performs the Hello handshake,
///     then reads request frames, runs admission control, and writes the
///     response frames its requests resolve to;
///   * a fixed pool of `workers` query threads pulling from one bounded
///     queue. Each admitted request pins its snapshot AT ADMISSION, so the
///     answer reflects the database as of arrival no matter how long the
///     request waits behind others, and carries the deadline measured from
///     admission too — a worker sheds a request whose deadline expired
///     while it sat in the queue (StatusCode::kDeadlineExceeded, never
///     executed) and passes the remaining budget to the plan executor for
///     cooperative mid-query cancellation otherwise.
///
/// Backpressure: the queue never exceeds queue_capacity; beyond it clients
/// get StatusCode::kOverloaded immediately. During Shutdown the server
/// drains — it stops accepting connections and admitting work
/// (StatusCode::kUnavailable), finishes everything already queued, answers
/// the waiting clients, then closes.
class Server {
 public:
  /// Binds, spins up the thread pool, and starts serving `db` (borrowed;
  /// must outlive the server). Writers may keep mutating `db` while the
  /// server runs — every request reads a pinned snapshot.
  static Result<std::unique_ptr<Server>> Start(const Database* db,
                                               ServerOptions options);

  ~Server();

  Server(const Server&) = delete;
  Server& operator=(const Server&) = delete;

  /// The bound port (useful with ServerOptions::port == 0).
  uint16_t port() const { return port_; }

  /// Graceful drain, idempotent: stop accepting, reject new work, finish
  /// the queue, answer in-flight clients, join every thread.
  void Shutdown();

  /// Point-in-time observability counters (same data the kServerStats
  /// protocol message serves).
  wire::ServerStats StatsSnapshot() const;

  /// Test hooks: freeze the worker pool so tests can deterministically
  /// fill the queue (OVERLOADED) or let queued deadlines expire (shed).
  void PauseWorkersForTesting();
  void ResumeWorkersForTesting();

 private:
  /// One admitted request: everything a worker needs, plus the promise the
  /// connection thread is waiting on.
  struct Task {
    QueryRequest request;
    Snapshot snapshot;
    std::chrono::steady_clock::time_point admitted_at;
    std::chrono::steady_clock::time_point deadline;
    std::promise<Result<QueryResult>> promise;
  };

  struct ConnState {
    std::thread thread;
    std::atomic<bool> done{false};
  };

  Server(const Database* db, ServerOptions options, Fd listener,
         uint16_t port);

  void AcceptLoop();
  void ServeConnection(Fd fd);
  void WorkerLoop();
  /// Runs admission control and either returns the future to wait on or
  /// the rejection to report.
  Result<std::future<Result<QueryResult>>> Admit(QueryRequest request);
  void ReapFinishedConnections();

  const Database* db_;
  const ServerOptions options_;
  Fd listener_;
  const uint16_t port_;
  const std::chrono::steady_clock::time_point started_at_;

  ServerMetrics metrics_;

  // Task queue. std::mutex (not incdb::Mutex) because the workers park on
  // a std::condition_variable, which requires the std lock type.
  std::mutex queue_mu_;
  std::condition_variable queue_cv_;
  std::deque<Task> queue_;
  bool draining_ = false;
  bool workers_should_exit_ = false;
  bool workers_paused_ = false;

  std::atomic<bool> stop_accepting_{false};
  std::atomic<bool> stop_connections_{false};

  std::thread accept_thread_;
  std::vector<std::thread> worker_threads_;
  std::mutex conns_mu_;
  std::vector<std::unique_ptr<ConnState>> conns_;

  std::mutex shutdown_mu_;
  bool shut_down_ = false;
};

}  // namespace server
}  // namespace incdb

#endif  // INCDB_SERVER_SERVER_H_
