#ifndef INCDB_SERVER_WIRE_H_
#define INCDB_SERVER_WIRE_H_

#include <cstddef>
#include <cstdint>
#include <string>
#include <vector>

#include "common/status.h"
#include "core/query_api.h"

namespace incdb {
namespace server {
namespace wire {

/// The incdb serving protocol, revision 1 ("docs/SERVING.md" has the prose
/// spec). Everything here is a FROZEN CONTRACT shared by the daemon and
/// every client ever built:
///
///   frame   :=  u32 body_len (LE, excludes this 5-byte header)
///            |  u8  msg_type (MsgType below)
///            |  body (body_len bytes)
///
///   body    :=  sequence of fields, each
///                 u16 field_id (LE) | u32 byte_len (LE) | payload
///
/// Scalars are little-endian fixed-width; strings are raw bytes; repeated
/// fields repeat their field id; submessages nest the same field encoding
/// inside a field payload. Decoders MUST skip unknown field ids (forward
/// compatibility) and default absent fields (backward compatibility);
/// field numbers are never renumbered or reused (the rules are spelled out
/// on QueryRequest in core/query_api.h, whose field numbers this module
/// implements). Every decode is bounds-checked: truncated, oversized, or
/// garbage bytes produce a Status, never UB — the protocol robustness
/// suite drives exactly that under ASan.
///
/// A connection opens with Hello / HelloAck carrying magic + version;
/// afterwards the client sends one request frame at a time and reads one
/// response frame (kQueryResult / kServerStatsResult / kPong on success,
/// kError carrying a numeric StatusCode otherwise).

/// First bytes of every Hello: "IDBW" little-endian.
inline constexpr uint32_t kMagic = 0x57424449u;

/// Bumped only for semantic changes an old decoder would misread; adding
/// fields or message types does NOT bump it (unknown ids are skipped).
inline constexpr uint32_t kProtocolVersion = 1;

/// Frame type tags. Append-only, like field numbers.
enum class MsgType : uint8_t {
  kHello = 1,
  kHelloAck = 2,
  kQuery = 3,
  kQueryResult = 4,
  kError = 5,
  kServerStats = 6,
  kServerStatsResult = 7,
  kPing = 8,
  kPong = 9,
};

/// Bytes of the fixed frame header: u32 body_len + u8 msg_type.
inline constexpr size_t kFrameHeaderBytes = 5;

/// Default cap a peer will accept for one frame body. Large enough for a
/// multi-million-row id list, small enough that a hostile length prefix
/// cannot make a peer allocate unbounded memory.
inline constexpr size_t kDefaultMaxFrameBytes = 64u << 20;

/// Hello payload (both directions; the ack echoes the server's view).
struct Hello {
  uint32_t magic = kMagic;
  uint32_t version = kProtocolVersion;
  /// Advisory display name ("incdb_serverd 1", "bench_serving_qps", ...).
  std::string peer_name;
};

/// Daemon-side observability counters, serializable on the stats endpoint.
/// Monotonic counters unless noted; gauges are point-in-time.
struct ServerStats {
  uint64_t accepted_connections = 0;
  uint64_t active_connections = 0;  // gauge
  uint64_t admitted = 0;
  uint64_t rejected_overloaded = 0;
  uint64_t rejected_invalid = 0;
  /// Queued requests shed unexecuted because their deadline had already
  /// expired by the time a worker picked them up.
  uint64_t shed_expired = 0;
  /// Requests that started executing but hit their deadline mid-plan.
  uint64_t deadline_exceeded = 0;
  uint64_t completed = 0;
  uint64_t failed = 0;
  uint64_t queue_depth = 0;     // gauge
  uint64_t queue_capacity = 0;  // config echo
  uint64_t workers = 0;         // config echo
  /// Latency quantiles over a ring of the most recent completed requests
  /// (admission to completion), microseconds. 0 until something completed.
  uint64_t p50_micros = 0;
  uint64_t p99_micros = 0;
  uint64_t uptime_millis = 0;
  bool draining = false;
  /// Segment-store accounting (docs/SEGMENTS.md); all zero when the served
  /// database is unsegmented.
  uint64_t segments = 0;  // gauge: sealed segments in the live snapshot
  uint64_t compactions = 0;
  uint64_t compaction_reclaimed_rows = 0;
  uint64_t compaction_reclaimed_bytes = 0;
};

// ---- frame header ---------------------------------------------------------

/// Renders the 5-byte frame header for a body of `body_len` bytes.
void PutFrameHeader(MsgType type, uint32_t body_len, uint8_t out[5]);

/// Parses a frame header. Rejects bodies above `max_body` with
/// kInvalidArgument (the caller should answer and close: the stream cannot
/// be resynchronized past a length it refuses to read).
Status ParseFrameHeader(const uint8_t header[5], size_t max_body,
                        MsgType* type, uint32_t* body_len);

// ---- message bodies -------------------------------------------------------

std::vector<uint8_t> EncodeHello(const Hello& hello);
Result<Hello> DecodeHello(const std::vector<uint8_t>& body);

std::vector<uint8_t> EncodeQueryRequest(const QueryRequest& request);
/// Decode runs QueryRequest::Validate() before returning, so a daemon
/// never plans a malformed request: structural garbage and contract
/// violations both surface here as kInvalidArgument.
Result<QueryRequest> DecodeQueryRequest(const std::vector<uint8_t>& body);

std::vector<uint8_t> EncodeQueryResult(const QueryResult& result);
Result<QueryResult> DecodeQueryResult(const std::vector<uint8_t>& body);

/// Error body: field 1 = numeric StatusCode (u32, stable — see
/// common/status.h), field 2 = message. Unknown future codes decode as
/// kInternal with the numeric value preserved in the message.
std::vector<uint8_t> EncodeStatus(const Status& status);
Status DecodeStatus(const std::vector<uint8_t>& body);

std::vector<uint8_t> EncodeServerStats(const ServerStats& stats);
Result<ServerStats> DecodeServerStats(const std::vector<uint8_t>& body);

}  // namespace wire
}  // namespace server
}  // namespace incdb

#endif  // INCDB_SERVER_WIRE_H_
