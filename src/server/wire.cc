#include "server/wire.h"

#include <cstring>
#include <limits>

namespace incdb {
namespace server {
namespace wire {

namespace {

// Per-field-header bytes: u16 field id + u32 byte length.
constexpr size_t kFieldHeaderBytes = 6;

// Hostile bytes can nest expression submessages arbitrarily deep; the
// decoder is recursive, so bound it well below any real stack limit.
constexpr int kMaxExprDepth = 64;

// ---- little-endian scalar primitives --------------------------------------

void PutU16(uint16_t v, std::vector<uint8_t>* out) {
  out->push_back(static_cast<uint8_t>(v));
  out->push_back(static_cast<uint8_t>(v >> 8));
}

void PutU32(uint32_t v, std::vector<uint8_t>* out) {
  for (int shift = 0; shift < 32; shift += 8) {
    out->push_back(static_cast<uint8_t>(v >> shift));
  }
}

void PutU64(uint64_t v, std::vector<uint8_t>* out) {
  for (int shift = 0; shift < 64; shift += 8) {
    out->push_back(static_cast<uint8_t>(v >> shift));
  }
}

uint16_t GetU16(const uint8_t* p) {
  return static_cast<uint16_t>(p[0] | (p[1] << 8));
}

uint32_t GetU32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
         (static_cast<uint32_t>(p[2]) << 16) |
         (static_cast<uint32_t>(p[3]) << 24);
}

uint64_t GetU64(const uint8_t* p) {
  uint64_t v = 0;
  for (int i = 7; i >= 0; --i) v = (v << 8) | p[i];
  return v;
}

// ---- field writer ---------------------------------------------------------

/// Appends `field_id | byte_len | payload` records to a growing buffer.
class FieldWriter {
 public:
  void PutU8(uint16_t id, uint8_t v) {
    Header(id, 1);
    buf_.push_back(v);
  }

  void PutU32(uint16_t id, uint32_t v) {
    Header(id, 4);
    wire::PutU32(v, &buf_);
  }

  void PutU64(uint16_t id, uint64_t v) {
    Header(id, 8);
    wire::PutU64(v, &buf_);
  }

  void PutI64(uint16_t id, int64_t v) {
    PutU64(id, static_cast<uint64_t>(v));
  }

  void PutF64(uint16_t id, double v) {
    uint64_t bits;
    static_assert(sizeof(bits) == sizeof(v), "IEEE754 double expected");
    std::memcpy(&bits, &v, sizeof(bits));
    PutU64(id, bits);
  }

  void PutString(uint16_t id, const std::string& s) {
    Header(id, static_cast<uint32_t>(s.size()));
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  void PutBytes(uint16_t id, const std::vector<uint8_t>& payload) {
    Header(id, static_cast<uint32_t>(payload.size()));
    buf_.insert(buf_.end(), payload.begin(), payload.end());
  }

  void PutPackedU32(uint16_t id, const std::vector<uint32_t>& values) {
    Header(id, static_cast<uint32_t>(values.size() * 4));
    buf_.reserve(buf_.size() + values.size() * 4);
    for (const uint32_t v : values) wire::PutU32(v, &buf_);
  }

  std::vector<uint8_t> Take() { return std::move(buf_); }

 private:
  void Header(uint16_t id, uint32_t len) {
    PutU16(id, &buf_);
    wire::PutU32(len, &buf_);
  }

  std::vector<uint8_t> buf_;
};

// ---- field reader ---------------------------------------------------------

/// One decoded field: id + a view into the enclosing buffer.
struct Field {
  uint16_t id = 0;
  const uint8_t* payload = nullptr;
  size_t len = 0;
};

/// Cursor over a field sequence. Every advance is bounds-checked; a
/// truncated field header or a length running past the buffer is a decode
/// error, never a read past the end.
class FieldReader {
 public:
  FieldReader(const uint8_t* data, size_t len) : p_(data), len_(len) {}

  bool Done() const { return pos_ >= len_; }

  Result<Field> Next() {
    if (len_ - pos_ < kFieldHeaderBytes) {
      return Status::InvalidArgument(
          "truncated message: " + std::to_string(len_ - pos_) +
          " trailing bytes, a field header needs " +
          std::to_string(kFieldHeaderBytes));
    }
    Field field;
    field.id = GetU16(p_ + pos_);
    const uint32_t payload_len = GetU32(p_ + pos_ + 2);
    pos_ += kFieldHeaderBytes;
    if (len_ - pos_ < payload_len) {
      return Status::InvalidArgument(
          "truncated message: field " + std::to_string(field.id) +
          " declares " + std::to_string(payload_len) + " bytes, only " +
          std::to_string(len_ - pos_) + " remain");
    }
    field.payload = p_ + pos_;
    field.len = payload_len;
    pos_ += payload_len;
    return field;
  }

 private:
  const uint8_t* p_;
  size_t len_;
  size_t pos_ = 0;
};

// Scalar fields must carry exactly their width — a wrong-size scalar is
// garbage, not a compatibility case (new meanings get new field numbers).
Status ExpectLen(const Field& field, size_t want) {
  if (field.len != want) {
    return Status::InvalidArgument(
        "field " + std::to_string(field.id) + " carries " +
        std::to_string(field.len) + " bytes, expected " +
        std::to_string(want));
  }
  return Status::OK();
}

Result<uint8_t> FieldU8(const Field& field) {
  INCDB_RETURN_IF_ERROR(ExpectLen(field, 1));
  return field.payload[0];
}

Result<uint32_t> FieldU32(const Field& field) {
  INCDB_RETURN_IF_ERROR(ExpectLen(field, 4));
  return GetU32(field.payload);
}

Result<uint64_t> FieldU64(const Field& field) {
  INCDB_RETURN_IF_ERROR(ExpectLen(field, 8));
  return GetU64(field.payload);
}

Result<int64_t> FieldI64(const Field& field) {
  INCDB_ASSIGN_OR_RETURN(const uint64_t bits, FieldU64(field));
  return static_cast<int64_t>(bits);
}

Result<double> FieldF64(const Field& field) {
  INCDB_ASSIGN_OR_RETURN(const uint64_t bits, FieldU64(field));
  double v;
  std::memcpy(&v, &bits, sizeof(v));
  return v;
}

std::string FieldString(const Field& field) {
  return std::string(reinterpret_cast<const char*>(field.payload), field.len);
}

Result<Value> FieldValue(const Field& field) {
  INCDB_ASSIGN_OR_RETURN(const int64_t v, FieldI64(field));
  if (v < std::numeric_limits<Value>::min() ||
      v > std::numeric_limits<Value>::max()) {
    return Status::InvalidArgument("interval bound " + std::to_string(v) +
                                   " outside the value domain");
  }
  return static_cast<Value>(v);
}

// ---- QueryRequest ---------------------------------------------------------

std::vector<uint8_t> EncodeTerm(const NamedTerm& term) {
  FieldWriter w;
  w.PutString(1, term.attribute);
  w.PutI64(2, term.lo);
  w.PutI64(3, term.hi);
  return w.Take();
}

Result<NamedTerm> DecodeTerm(const uint8_t* data, size_t len) {
  NamedTerm term;
  FieldReader reader(data, len);
  while (!reader.Done()) {
    INCDB_ASSIGN_OR_RETURN(const Field field, reader.Next());
    switch (field.id) {
      case 1:
        term.attribute = FieldString(field);
        break;
      case 2: {
        INCDB_ASSIGN_OR_RETURN(term.lo, FieldValue(field));
        break;
      }
      case 3: {
        INCDB_ASSIGN_OR_RETURN(term.hi, FieldValue(field));
        break;
      }
      default:
        break;  // forward compatibility: skip unknown fields
    }
  }
  return term;
}

std::vector<uint8_t> EncodeExpr(const QueryExpr& expr) {
  FieldWriter w;
  w.PutU8(1, static_cast<uint8_t>(expr.kind()));
  if (expr.kind() == QueryExpr::Kind::kTerm) {
    w.PutU64(2, expr.attribute());
    w.PutI64(3, expr.interval().lo);
    w.PutI64(4, expr.interval().hi);
  } else {
    for (const QueryExpr& child : expr.children()) {
      w.PutBytes(5, EncodeExpr(child));
    }
  }
  return w.Take();
}

Result<QueryExpr> DecodeExpr(const uint8_t* data, size_t len, int depth) {
  if (depth > kMaxExprDepth) {
    return Status::InvalidArgument(
        "expression nests deeper than " + std::to_string(kMaxExprDepth) +
        " levels");
  }
  uint8_t kind_raw = 0;
  bool have_kind = false;
  uint64_t attribute = 0;
  Value lo = 1;
  Value hi = 1;
  std::vector<QueryExpr> children;
  FieldReader reader(data, len);
  while (!reader.Done()) {
    INCDB_ASSIGN_OR_RETURN(const Field field, reader.Next());
    switch (field.id) {
      case 1: {
        INCDB_ASSIGN_OR_RETURN(kind_raw, FieldU8(field));
        have_kind = true;
        break;
      }
      case 2: {
        INCDB_ASSIGN_OR_RETURN(attribute, FieldU64(field));
        break;
      }
      case 3: {
        INCDB_ASSIGN_OR_RETURN(lo, FieldValue(field));
        break;
      }
      case 4: {
        INCDB_ASSIGN_OR_RETURN(hi, FieldValue(field));
        break;
      }
      case 5: {
        INCDB_ASSIGN_OR_RETURN(
            QueryExpr child, DecodeExpr(field.payload, field.len, depth + 1));
        children.push_back(std::move(child));
        break;
      }
      default:
        break;
    }
  }
  if (!have_kind) {
    return Status::InvalidArgument("expression node without a kind");
  }
  switch (static_cast<QueryExpr::Kind>(kind_raw)) {
    case QueryExpr::Kind::kTerm:
      return QueryExpr::MakeTerm(static_cast<size_t>(attribute), {lo, hi});
    case QueryExpr::Kind::kAnd:
      if (children.empty()) {
        return Status::InvalidArgument("AND expression without children");
      }
      return QueryExpr::MakeAnd(std::move(children));
    case QueryExpr::Kind::kOr:
      if (children.empty()) {
        return Status::InvalidArgument("OR expression without children");
      }
      return QueryExpr::MakeOr(std::move(children));
    case QueryExpr::Kind::kNot:
      if (children.size() != 1) {
        return Status::InvalidArgument(
            "NOT expression needs exactly one child, got " +
            std::to_string(children.size()));
      }
      return QueryExpr::MakeNot(std::move(children[0]));
  }
  return Status::InvalidArgument("unknown expression kind " +
                                 std::to_string(kind_raw));
}

// ---- QueryStats / RoutingDecision submessages -----------------------------

std::vector<uint8_t> EncodeStats(const QueryStats& stats) {
  FieldWriter w;
  w.PutU64(1, stats.bitvectors_accessed);
  w.PutU64(2, stats.bitvector_ops);
  w.PutU64(3, stats.words_touched);
  w.PutU64(4, stats.candidates);
  w.PutU64(5, stats.false_positives);
  w.PutU64(6, stats.nodes_accessed);
  w.PutU64(7, stats.subqueries);
  w.PutU64(8, stats.rows_scanned);
  w.PutU64(9, stats.simd_path);
  w.PutU64(10, stats.words_decoded);
  w.PutU64(11, stats.segments_scanned);
  w.PutU64(12, stats.segments_pruned);
  return w.Take();
}

Result<QueryStats> DecodeStats(const uint8_t* data, size_t len) {
  QueryStats stats;
  FieldReader reader(data, len);
  while (!reader.Done()) {
    INCDB_ASSIGN_OR_RETURN(const Field field, reader.Next());
    uint64_t* slot = nullptr;
    switch (field.id) {
      case 1: slot = &stats.bitvectors_accessed; break;
      case 2: slot = &stats.bitvector_ops; break;
      case 3: slot = &stats.words_touched; break;
      case 4: slot = &stats.candidates; break;
      case 5: slot = &stats.false_positives; break;
      case 6: slot = &stats.nodes_accessed; break;
      case 7: slot = &stats.subqueries; break;
      case 8: slot = &stats.rows_scanned; break;
      case 9: slot = &stats.simd_path; break;
      case 10: slot = &stats.words_decoded; break;
      case 11: slot = &stats.segments_scanned; break;
      case 12: slot = &stats.segments_pruned; break;
      default: break;
    }
    if (slot != nullptr) {
      INCDB_ASSIGN_OR_RETURN(*slot, FieldU64(field));
    }
  }
  return stats;
}

std::vector<uint8_t> EncodeRouting(const RoutingDecision& routing) {
  FieldWriter w;
  w.PutString(1, routing.index_name);
  w.PutU8(2, routing.is_point_query ? 1 : 0);
  w.PutF64(3, routing.estimated_selectivity);
  w.PutF64(4, routing.estimated_cost);
  return w.Take();
}

Result<RoutingDecision> DecodeRouting(const uint8_t* data, size_t len) {
  RoutingDecision routing;
  FieldReader reader(data, len);
  while (!reader.Done()) {
    INCDB_ASSIGN_OR_RETURN(const Field field, reader.Next());
    switch (field.id) {
      case 1:
        routing.index_name = FieldString(field);
        break;
      case 2: {
        INCDB_ASSIGN_OR_RETURN(const uint8_t v, FieldU8(field));
        routing.is_point_query = v != 0;
        break;
      }
      case 3: {
        INCDB_ASSIGN_OR_RETURN(routing.estimated_selectivity, FieldF64(field));
        break;
      }
      case 4: {
        INCDB_ASSIGN_OR_RETURN(routing.estimated_cost, FieldF64(field));
        break;
      }
      default:
        break;
    }
  }
  return routing;
}

}  // namespace

// ---- frame header ---------------------------------------------------------

void PutFrameHeader(MsgType type, uint32_t body_len, uint8_t out[5]) {
  out[0] = static_cast<uint8_t>(body_len);
  out[1] = static_cast<uint8_t>(body_len >> 8);
  out[2] = static_cast<uint8_t>(body_len >> 16);
  out[3] = static_cast<uint8_t>(body_len >> 24);
  out[4] = static_cast<uint8_t>(type);
}

Status ParseFrameHeader(const uint8_t header[5], size_t max_body,
                        MsgType* type, uint32_t* body_len) {
  *body_len = GetU32(header);
  *type = static_cast<MsgType>(header[4]);
  if (*body_len > max_body) {
    return Status::InvalidArgument(
        "frame body of " + std::to_string(*body_len) +
        " bytes exceeds the " + std::to_string(max_body) + "-byte limit");
  }
  return Status::OK();
}

// ---- Hello ----------------------------------------------------------------

std::vector<uint8_t> EncodeHello(const Hello& hello) {
  FieldWriter w;
  w.PutU32(1, hello.magic);
  w.PutU32(2, hello.version);
  w.PutString(3, hello.peer_name);
  return w.Take();
}

Result<Hello> DecodeHello(const std::vector<uint8_t>& body) {
  Hello hello;
  hello.magic = 0;
  hello.version = 0;
  FieldReader reader(body.data(), body.size());
  while (!reader.Done()) {
    INCDB_ASSIGN_OR_RETURN(const Field field, reader.Next());
    switch (field.id) {
      case 1: {
        INCDB_ASSIGN_OR_RETURN(hello.magic, FieldU32(field));
        break;
      }
      case 2: {
        INCDB_ASSIGN_OR_RETURN(hello.version, FieldU32(field));
        break;
      }
      case 3:
        hello.peer_name = FieldString(field);
        break;
      default:
        break;
    }
  }
  return hello;
}

// ---- QueryRequest ---------------------------------------------------------

std::vector<uint8_t> EncodeQueryRequest(const QueryRequest& request) {
  FieldWriter w;
  w.PutU8(1, static_cast<uint8_t>(request.shape));
  w.PutU8(2, static_cast<uint8_t>(request.semantics));
  w.PutU8(3, request.count_only ? 1 : 0);
  w.PutU64(4, static_cast<uint64_t>(request.parallelism));
  w.PutU8(5, request.explain ? 1 : 0);
  for (const NamedTerm& term : request.terms) {
    w.PutBytes(6, EncodeTerm(term));
  }
  if (!request.text.empty()) w.PutString(7, request.text);
  if (request.expression.has_value()) {
    w.PutBytes(8, EncodeExpr(*request.expression));
  }
  if (request.deadline_millis != 0) w.PutU64(9, request.deadline_millis);
  if (request.limit != 0) w.PutU64(10, request.limit);
  return w.Take();
}

Result<QueryRequest> DecodeQueryRequest(const std::vector<uint8_t>& body) {
  QueryRequest request;
  FieldReader reader(body.data(), body.size());
  while (!reader.Done()) {
    INCDB_ASSIGN_OR_RETURN(const Field field, reader.Next());
    switch (field.id) {
      case 1: {
        INCDB_ASSIGN_OR_RETURN(const uint8_t shape, FieldU8(field));
        if (shape > static_cast<uint8_t>(QueryRequest::Shape::kText)) {
          return Status::InvalidArgument("unknown query shape " +
                                         std::to_string(shape));
        }
        request.shape = static_cast<QueryRequest::Shape>(shape);
        break;
      }
      case 2: {
        INCDB_ASSIGN_OR_RETURN(const uint8_t semantics, FieldU8(field));
        if (semantics > static_cast<uint8_t>(MissingSemantics::kNoMatch)) {
          return Status::InvalidArgument("unknown missing semantics " +
                                         std::to_string(semantics));
        }
        request.semantics = static_cast<MissingSemantics>(semantics);
        break;
      }
      case 3: {
        INCDB_ASSIGN_OR_RETURN(const uint8_t v, FieldU8(field));
        request.count_only = v != 0;
        break;
      }
      case 4: {
        INCDB_ASSIGN_OR_RETURN(const uint64_t v, FieldU64(field));
        request.parallelism = static_cast<size_t>(v);
        break;
      }
      case 5: {
        INCDB_ASSIGN_OR_RETURN(const uint8_t v, FieldU8(field));
        request.explain = v != 0;
        break;
      }
      case 6: {
        INCDB_ASSIGN_OR_RETURN(NamedTerm term,
                               DecodeTerm(field.payload, field.len));
        request.terms.push_back(std::move(term));
        break;
      }
      case 7:
        request.text = FieldString(field);
        break;
      case 8: {
        INCDB_ASSIGN_OR_RETURN(QueryExpr expr,
                               DecodeExpr(field.payload, field.len, 0));
        request.expression = std::move(expr);
        break;
      }
      case 9: {
        INCDB_ASSIGN_OR_RETURN(request.deadline_millis, FieldU64(field));
        break;
      }
      case 10: {
        INCDB_ASSIGN_OR_RETURN(request.limit, FieldU64(field));
        break;
      }
      default:
        break;
    }
  }
  INCDB_RETURN_IF_ERROR(request.Validate());
  return request;
}

// ---- QueryResult ----------------------------------------------------------

std::vector<uint8_t> EncodeQueryResult(const QueryResult& result) {
  FieldWriter w;
  w.PutU64(1, result.count);
  if (!result.row_ids.empty()) w.PutPackedU32(2, result.row_ids);
  w.PutString(3, result.chosen_index);
  w.PutU64(4, result.epoch);
  w.PutU64(5, result.visible_rows);
  if (!result.explain.empty()) w.PutString(6, result.explain);
  w.PutBytes(7, EncodeStats(result.stats));
  w.PutBytes(8, EncodeRouting(result.routing));
  return w.Take();
}

Result<QueryResult> DecodeQueryResult(const std::vector<uint8_t>& body) {
  QueryResult result;
  FieldReader reader(body.data(), body.size());
  while (!reader.Done()) {
    INCDB_ASSIGN_OR_RETURN(const Field field, reader.Next());
    switch (field.id) {
      case 1: {
        INCDB_ASSIGN_OR_RETURN(result.count, FieldU64(field));
        break;
      }
      case 2: {
        if (field.len % 4 != 0) {
          return Status::InvalidArgument(
              "packed row-id field of " + std::to_string(field.len) +
              " bytes is not a whole number of u32s");
        }
        result.row_ids.resize(field.len / 4);
        for (size_t i = 0; i < result.row_ids.size(); ++i) {
          result.row_ids[i] = GetU32(field.payload + i * 4);
        }
        break;
      }
      case 3:
        result.chosen_index = FieldString(field);
        break;
      case 4: {
        INCDB_ASSIGN_OR_RETURN(result.epoch, FieldU64(field));
        break;
      }
      case 5: {
        INCDB_ASSIGN_OR_RETURN(result.visible_rows, FieldU64(field));
        break;
      }
      case 6:
        result.explain = FieldString(field);
        break;
      case 7: {
        INCDB_ASSIGN_OR_RETURN(result.stats,
                               DecodeStats(field.payload, field.len));
        break;
      }
      case 8: {
        INCDB_ASSIGN_OR_RETURN(result.routing,
                               DecodeRouting(field.payload, field.len));
        break;
      }
      default:
        break;
    }
  }
  return result;
}

// ---- Status ---------------------------------------------------------------

std::vector<uint8_t> EncodeStatus(const Status& status) {
  FieldWriter w;
  w.PutU32(1, static_cast<uint32_t>(status.code()));
  w.PutString(2, status.message());
  return w.Take();
}

Status DecodeStatus(const std::vector<uint8_t>& body) {
  uint32_t code = static_cast<uint32_t>(StatusCode::kInternal);
  std::string message;
  FieldReader reader(body.data(), body.size());
  while (!reader.Done()) {
    const auto field = reader.Next();
    if (!field.ok()) return field.status();
    switch (field->id) {
      case 1: {
        const auto v = FieldU32(*field);
        if (!v.ok()) return v.status();
        code = *v;
        break;
      }
      case 2:
        message = FieldString(*field);
        break;
      default:
        break;
    }
  }
  if (code == static_cast<uint32_t>(StatusCode::kOk)) {
    // An error frame claiming OK is a protocol violation by the peer.
    return Status::Internal("error frame carried StatusCode::kOk: " + message);
  }
  if (code > kMaxStatusCode) {
    // A future server may know codes this client does not; keep the number.
    return Status::Internal("remote error with unknown status code " +
                            std::to_string(code) + ": " + message);
  }
  return Status(static_cast<StatusCode>(code), std::move(message));
}

// ---- ServerStats ----------------------------------------------------------

std::vector<uint8_t> EncodeServerStats(const ServerStats& stats) {
  FieldWriter w;
  w.PutU64(1, stats.accepted_connections);
  w.PutU64(2, stats.active_connections);
  w.PutU64(3, stats.admitted);
  w.PutU64(4, stats.rejected_overloaded);
  w.PutU64(5, stats.rejected_invalid);
  w.PutU64(6, stats.shed_expired);
  w.PutU64(7, stats.deadline_exceeded);
  w.PutU64(8, stats.completed);
  w.PutU64(9, stats.failed);
  w.PutU64(10, stats.queue_depth);
  w.PutU64(11, stats.queue_capacity);
  w.PutU64(12, stats.workers);
  w.PutU64(13, stats.p50_micros);
  w.PutU64(14, stats.p99_micros);
  w.PutU64(15, stats.uptime_millis);
  w.PutU8(16, stats.draining ? 1 : 0);
  w.PutU64(17, stats.segments);
  w.PutU64(18, stats.compactions);
  w.PutU64(19, stats.compaction_reclaimed_rows);
  w.PutU64(20, stats.compaction_reclaimed_bytes);
  return w.Take();
}

Result<ServerStats> DecodeServerStats(const std::vector<uint8_t>& body) {
  ServerStats stats;
  FieldReader reader(body.data(), body.size());
  while (!reader.Done()) {
    INCDB_ASSIGN_OR_RETURN(const Field field, reader.Next());
    uint64_t* slot = nullptr;
    switch (field.id) {
      case 1: slot = &stats.accepted_connections; break;
      case 2: slot = &stats.active_connections; break;
      case 3: slot = &stats.admitted; break;
      case 4: slot = &stats.rejected_overloaded; break;
      case 5: slot = &stats.rejected_invalid; break;
      case 6: slot = &stats.shed_expired; break;
      case 7: slot = &stats.deadline_exceeded; break;
      case 8: slot = &stats.completed; break;
      case 9: slot = &stats.failed; break;
      case 10: slot = &stats.queue_depth; break;
      case 11: slot = &stats.queue_capacity; break;
      case 12: slot = &stats.workers; break;
      case 13: slot = &stats.p50_micros; break;
      case 14: slot = &stats.p99_micros; break;
      case 15: slot = &stats.uptime_millis; break;
      case 17: slot = &stats.segments; break;
      case 18: slot = &stats.compactions; break;
      case 19: slot = &stats.compaction_reclaimed_rows; break;
      case 20: slot = &stats.compaction_reclaimed_bytes; break;
      case 16: {
        INCDB_ASSIGN_OR_RETURN(const uint8_t v, FieldU8(field));
        stats.draining = v != 0;
        break;
      }
      default: break;
    }
    if (slot != nullptr) {
      INCDB_ASSIGN_OR_RETURN(*slot, FieldU64(field));
    }
  }
  return stats;
}

}  // namespace wire
}  // namespace server
}  // namespace incdb
