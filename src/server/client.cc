#include "server/client.h"

#include <utility>

#include "server/frame.h"

namespace incdb {
namespace server {

Result<Client> Client::Connect(const std::string& host, uint16_t port,
                               ClientOptions options) {
  INCDB_ASSIGN_OR_RETURN(Fd fd, ConnectTcp(host, port));
  Client client(std::move(fd), std::move(options));

  wire::Hello hello;
  hello.peer_name = client.options_.client_name;
  INCDB_RETURN_IF_ERROR(WriteFrame(client.fd_, wire::MsgType::kHello,
                                   wire::EncodeHello(hello)));
  wire::MsgType type;
  std::vector<uint8_t> body;
  INCDB_RETURN_IF_ERROR(ReadFrame(client.fd_, client.options_.timeout_millis,
                                  client.options_.max_frame_bytes, &type,
                                  &body, /*clean_eof=*/nullptr));
  if (type == wire::MsgType::kError) return wire::DecodeStatus(body);
  if (type != wire::MsgType::kHelloAck) {
    return Status::Internal("handshake answered with message type " +
                            std::to_string(static_cast<int>(type)) +
                            ", expected a HelloAck");
  }
  INCDB_ASSIGN_OR_RETURN(client.server_hello_, wire::DecodeHello(body));
  return client;
}

Result<std::vector<uint8_t>> Client::Call(
    wire::MsgType request_type, const std::vector<uint8_t>& request_body,
    wire::MsgType expected_response) {
  if (!fd_.valid()) {
    return Status::Unavailable("client connection is closed");
  }
  INCDB_RETURN_IF_ERROR(WriteFrame(fd_, request_type, request_body));
  wire::MsgType type;
  std::vector<uint8_t> body;
  const Status read =
      ReadFrame(fd_, options_.timeout_millis, options_.max_frame_bytes, &type,
                &body, /*clean_eof=*/nullptr);
  if (!read.ok()) {
    // The stream is no longer synchronized with the server; further calls
    // would misparse, so the connection is dead from here on.
    fd_.Close();
    return read;
  }
  if (type == wire::MsgType::kError) return wire::DecodeStatus(body);
  if (type != expected_response) {
    fd_.Close();
    return Status::Internal(
        "server answered with message type " +
        std::to_string(static_cast<int>(type)) + ", expected " +
        std::to_string(static_cast<int>(expected_response)));
  }
  return body;
}

Result<QueryResult> Client::Run(const QueryRequest& request) {
  // Fail locally before spending a round trip on a request the server
  // would reject at decode anyway.
  INCDB_RETURN_IF_ERROR(request.Validate());
  INCDB_ASSIGN_OR_RETURN(
      const std::vector<uint8_t> body,
      Call(wire::MsgType::kQuery, wire::EncodeQueryRequest(request),
           wire::MsgType::kQueryResult));
  return wire::DecodeQueryResult(body);
}

Result<wire::ServerStats> Client::Stats() {
  INCDB_ASSIGN_OR_RETURN(const std::vector<uint8_t> body,
                         Call(wire::MsgType::kServerStats, {},
                              wire::MsgType::kServerStatsResult));
  return wire::DecodeServerStats(body);
}

Status Client::Ping() {
  INCDB_ASSIGN_OR_RETURN(const std::vector<uint8_t> body,
                         Call(wire::MsgType::kPing, {}, wire::MsgType::kPong));
  (void)body;
  return Status::OK();
}

}  // namespace server
}  // namespace incdb
