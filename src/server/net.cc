#include "server/net.h"

#include <arpa/inet.h>
#include <cerrno>
#include <cstring>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/types.h>
#include <unistd.h>

namespace incdb {
namespace server {

namespace {

Status Errno(const std::string& what) {
  return Status::IOError(what + ": " + std::strerror(errno));
}

Result<sockaddr_in> ResolveV4(const std::string& host, uint16_t port) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  const std::string node = host == "localhost" ? "127.0.0.1" : host;
  if (inet_pton(AF_INET, node.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("cannot parse IPv4 address '" + host +
                                   "' (use a dotted quad or 'localhost')");
  }
  return addr;
}

}  // namespace

void Fd::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<Fd> ListenTcp(const std::string& host, uint16_t port, int backlog) {
  INCDB_ASSIGN_OR_RETURN(sockaddr_in addr, ResolveV4(host, port));
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return Errno("socket");
  const int one = 1;
  if (::setsockopt(fd.get(), SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one)) !=
      0) {
    return Errno("setsockopt(SO_REUSEADDR)");
  }
  if (::bind(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
             sizeof(addr)) != 0) {
    return Errno("bind " + host + ":" + std::to_string(port));
  }
  if (::listen(fd.get(), backlog) != 0) return Errno("listen");
  return fd;
}

Result<uint16_t> LocalPort(const Fd& fd) {
  sockaddr_in addr{};
  socklen_t len = sizeof(addr);
  if (::getsockname(fd.get(), reinterpret_cast<sockaddr*>(&addr), &len) != 0) {
    return Errno("getsockname");
  }
  return static_cast<uint16_t>(ntohs(addr.sin_port));
}

Result<Fd> ConnectTcp(const std::string& host, uint16_t port) {
  INCDB_ASSIGN_OR_RETURN(sockaddr_in addr, ResolveV4(host, port));
  Fd fd(::socket(AF_INET, SOCK_STREAM, 0));
  if (!fd.valid()) return Errno("socket");
  int rc;
  do {
    rc = ::connect(fd.get(), reinterpret_cast<const sockaddr*>(&addr),
                   sizeof(addr));
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) {
    return Status::Unavailable("connect " + host + ":" +
                               std::to_string(port) + ": " +
                               std::strerror(errno));
  }
  // Request/response RPC: answer frames should leave immediately, not sit
  // in Nagle's buffer waiting for a second segment that never comes.
  const int one = 1;
  (void)::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

Result<Fd> AcceptConnection(const Fd& listener) {
  int rc;
  do {
    rc = ::accept(listener.get(), nullptr, nullptr);
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) return Errno("accept");
  Fd fd(rc);
  const int one = 1;
  (void)::setsockopt(fd.get(), IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return fd;
}

Result<bool> WaitReadable(const Fd& fd, int timeout_millis) {
  pollfd pfd{};
  pfd.fd = fd.get();
  pfd.events = POLLIN;
  int rc;
  do {
    rc = ::poll(&pfd, 1, timeout_millis);
  } while (rc < 0 && errno == EINTR);
  if (rc < 0) return Errno("poll");
  return rc > 0;
}

Status WriteAll(const Fd& fd, const void* data, size_t len) {
  const char* p = static_cast<const char*>(data);
  size_t remaining = len;
  while (remaining > 0) {
    const ssize_t n = ::send(fd.get(), p, remaining, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EPIPE || errno == ECONNRESET) {
        return Status::Unavailable("peer closed the connection mid-write");
      }
      return Errno("send");
    }
    p += n;
    remaining -= static_cast<size_t>(n);
  }
  return Status::OK();
}

Status ReadFull(const Fd& fd, void* data, size_t len, int timeout_millis,
                bool* clean_eof) {
  if (clean_eof != nullptr) *clean_eof = false;
  char* p = static_cast<char*>(data);
  size_t got = 0;
  while (got < len) {
    INCDB_ASSIGN_OR_RETURN(const bool readable,
                           WaitReadable(fd, timeout_millis));
    if (!readable) {
      return Status::DeadlineExceeded(
          "peer stalled for " + std::to_string(timeout_millis) +
          " ms mid-message (" + std::to_string(got) + "/" +
          std::to_string(len) + " bytes)");
    }
    const ssize_t n = ::recv(fd.get(), p + got, len - got, 0);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == ECONNRESET) {
        return Status::Unavailable("connection reset by peer");
      }
      return Errno("recv");
    }
    if (n == 0) {
      if (got == 0 && clean_eof != nullptr) *clean_eof = true;
      return Status::Unavailable(
          got == 0 ? "peer closed the connection"
                   : "peer closed the connection mid-message (" +
                         std::to_string(got) + "/" + std::to_string(len) +
                         " bytes)");
    }
    got += static_cast<size_t>(n);
  }
  return Status::OK();
}

}  // namespace server
}  // namespace incdb
