#include "server/frame.h"

#include <cstring>

namespace incdb {
namespace server {

Status WriteFrame(const Fd& fd, wire::MsgType type,
                  const std::vector<uint8_t>& body) {
  // One buffered send per frame: header and body leave in the same
  // segment, so a reader never stalls between the two.
  std::vector<uint8_t> out(wire::kFrameHeaderBytes + body.size());
  wire::PutFrameHeader(type, static_cast<uint32_t>(body.size()), out.data());
  if (!body.empty()) {
    std::memcpy(out.data() + wire::kFrameHeaderBytes, body.data(),
                body.size());
  }
  return WriteAll(fd, out.data(), out.size());
}

Status ReadFrame(const Fd& fd, int timeout_millis, size_t max_body,
                 wire::MsgType* type, std::vector<uint8_t>* body,
                 bool* clean_eof) {
  uint8_t header[wire::kFrameHeaderBytes];
  INCDB_RETURN_IF_ERROR(
      ReadFull(fd, header, sizeof(header), timeout_millis, clean_eof));
  uint32_t body_len = 0;
  INCDB_RETURN_IF_ERROR(
      wire::ParseFrameHeader(header, max_body, type, &body_len));
  body->resize(body_len);
  if (body_len == 0) return Status::OK();
  // The header already arrived, so EOF from here on is always mid-frame.
  return ReadFull(fd, body->data(), body_len, timeout_millis, nullptr);
}

}  // namespace server
}  // namespace incdb
