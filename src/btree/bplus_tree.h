#ifndef INCDB_BTREE_BPLUS_TREE_H_
#define INCDB_BTREE_BPLUS_TREE_H_

#include <cstdint>
#include <functional>
#include <memory>
#include <vector>

#include "common/status.h"

namespace incdb {

/// In-memory B+-tree mapping int32 keys to uint32 record ids, duplicates
/// allowed. Substrate for the MOSAIC baseline (one tree per attribute,
/// missing mapped to a distinguished key), and a reusable one-dimensional
/// ordered index in its own right.
///
/// Leaves are chained for efficient range scans. Node fanout is fixed at
/// construction. Deletion is not needed by any experiment and is not
/// implemented.
class BPlusTree {
 public:
  /// `fanout` = max children of an internal node (>= 4); leaves hold up to
  /// fanout - 1 entries.
  explicit BPlusTree(int fanout = 64);
  ~BPlusTree();

  // Defined in the .cc (Node is incomplete here).
  BPlusTree(BPlusTree&&) noexcept;
  BPlusTree& operator=(BPlusTree&&) noexcept;
  BPlusTree(const BPlusTree&) = delete;
  BPlusTree& operator=(const BPlusTree&) = delete;

  /// Inserts one (key, record) pair. Duplicate keys are fine.
  void Insert(int32_t key, uint32_t record);

  /// Appends to `out` the records of every entry with lo <= key <= hi, in
  /// key order. Returns the number of nodes visited (root-to-leaf descent
  /// plus leaf-chain hops) — the tree's cost model.
  uint64_t RangeScan(int32_t lo, int32_t hi,
                     std::vector<uint32_t>* out) const;

  /// Records with key exactly `key`.
  uint64_t Lookup(int32_t key, std::vector<uint32_t>* out) const {
    return RangeScan(key, key, out);
  }

  /// Visits every (key, record) entry in key order (stable on duplicate
  /// keys) by walking the leaf chain. Used by the storage engine to
  /// serialize a tree without exposing its node layout.
  void ForEachEntry(
      const std::function<void(int32_t key, uint32_t record)>& fn) const;

  uint64_t size() const { return size_; }
  int fanout() const { return fanout_; }
  int height() const;
  uint64_t num_nodes() const { return num_nodes_; }

  /// Approximate memory footprint in bytes (keys, values, child pointers).
  uint64_t SizeInBytes() const;

  /// Internal consistency check (key ordering, balanced depth, fill bounds);
  /// used by the test suite.
  Status CheckInvariants() const;

 private:
  struct Node;
  struct SplitResult;

  SplitResult InsertInto(Node* node, int32_t key, uint32_t record);
  Status CheckNode(const Node* node, int depth, int leaf_depth, int32_t lo,
                   int32_t hi, bool is_root) const;
  int LeafDepth() const;

  int fanout_;
  std::unique_ptr<Node> root_;
  uint64_t size_ = 0;
  uint64_t num_nodes_ = 0;
};

}  // namespace incdb

#endif  // INCDB_BTREE_BPLUS_TREE_H_
