#include "btree/bplus_tree.h"

#include <algorithm>
#include <limits>

#include "common/logging.h"

namespace incdb {

struct BPlusTree::Node {
  bool is_leaf = true;
  // Leaf: keys_ and records_ are parallel, sorted by key (stable on ties).
  // Internal: children_.size() == keys_.size() + 1; subtree children_[i]
  // holds keys < keys_[i] (<=, ties go left of the separator copy), subtree
  // children_[i+1] holds keys >= keys_[i].
  std::vector<int32_t> keys;
  std::vector<uint32_t> records;               // leaf only
  std::vector<std::unique_ptr<Node>> children;  // internal only
  Node* next_leaf = nullptr;                    // leaf chain
};

struct BPlusTree::SplitResult {
  bool split = false;
  int32_t separator = 0;
  std::unique_ptr<Node> right;
};

BPlusTree::BPlusTree(int fanout) : fanout_(std::max(fanout, 4)) {
  root_ = std::make_unique<Node>();
  num_nodes_ = 1;
}

BPlusTree::~BPlusTree() = default;
BPlusTree::BPlusTree(BPlusTree&&) noexcept = default;
BPlusTree& BPlusTree::operator=(BPlusTree&&) noexcept = default;

void BPlusTree::Insert(int32_t key, uint32_t record) {
  SplitResult result = InsertInto(root_.get(), key, record);
  if (result.split) {
    auto new_root = std::make_unique<Node>();
    new_root->is_leaf = false;
    new_root->keys.push_back(result.separator);
    new_root->children.push_back(std::move(root_));
    new_root->children.push_back(std::move(result.right));
    root_ = std::move(new_root);
    ++num_nodes_;
  }
  ++size_;
}

BPlusTree::SplitResult BPlusTree::InsertInto(Node* node, int32_t key,
                                             uint32_t record) {
  const size_t max_entries = static_cast<size_t>(fanout_) - 1;
  if (node->is_leaf) {
    const auto it =
        std::upper_bound(node->keys.begin(), node->keys.end(), key);
    const size_t pos = static_cast<size_t>(it - node->keys.begin());
    node->keys.insert(it, key);
    node->records.insert(node->records.begin() + static_cast<long>(pos),
                         record);
    if (node->keys.size() <= max_entries) return {};

    // Split the leaf in half; the separator is the first key of the right
    // half (B+-tree leaves keep all keys).
    const size_t mid = node->keys.size() / 2;
    auto right = std::make_unique<Node>();
    right->is_leaf = true;
    right->keys.assign(node->keys.begin() + static_cast<long>(mid),
                       node->keys.end());
    right->records.assign(node->records.begin() + static_cast<long>(mid),
                          node->records.end());
    node->keys.resize(mid);
    node->records.resize(mid);
    right->next_leaf = node->next_leaf;
    node->next_leaf = right.get();
    ++num_nodes_;
    return {true, right->keys.front(), std::move(right)};
  }

  // Internal node: descend into the child covering `key`.
  const auto it = std::upper_bound(node->keys.begin(), node->keys.end(), key);
  const size_t child_idx = static_cast<size_t>(it - node->keys.begin());
  SplitResult child_split =
      InsertInto(node->children[child_idx].get(), key, record);
  if (!child_split.split) return {};

  node->keys.insert(node->keys.begin() + static_cast<long>(child_idx),
                    child_split.separator);
  node->children.insert(
      node->children.begin() + static_cast<long>(child_idx) + 1,
      std::move(child_split.right));
  if (node->keys.size() <= max_entries) return {};

  // Split the internal node; the middle separator moves up.
  const size_t mid = node->keys.size() / 2;
  auto right = std::make_unique<Node>();
  right->is_leaf = false;
  const int32_t up_key = node->keys[mid];
  right->keys.assign(node->keys.begin() + static_cast<long>(mid) + 1,
                     node->keys.end());
  right->children.reserve(node->children.size() - mid - 1);
  for (size_t i = mid + 1; i < node->children.size(); ++i) {
    right->children.push_back(std::move(node->children[i]));
  }
  node->keys.resize(mid);
  node->children.resize(mid + 1);
  ++num_nodes_;
  return {true, up_key, std::move(right)};
}

uint64_t BPlusTree::RangeScan(int32_t lo, int32_t hi,
                              std::vector<uint32_t>* out) const {
  if (lo > hi) return 0;
  uint64_t nodes_visited = 1;
  const Node* node = root_.get();
  while (!node->is_leaf) {
    // Descend to the leftmost leaf that can contain `lo`. Ties go left in
    // the key layout above (separator equals first key of right sibling),
    // so lower_bound with `<` semantics needs upper-bound-style handling:
    // child i covers keys < keys[i]; keys == keys[i] live in child i+1.
    const auto it =
        std::upper_bound(node->keys.begin(), node->keys.end(), lo - 1);
    node = node->children[static_cast<size_t>(it - node->keys.begin())].get();
    ++nodes_visited;
  }
  while (node != nullptr) {
    const auto begin =
        std::lower_bound(node->keys.begin(), node->keys.end(), lo);
    for (auto it = begin; it != node->keys.end(); ++it) {
      if (*it > hi) return nodes_visited;
      out->push_back(
          node->records[static_cast<size_t>(it - node->keys.begin())]);
    }
    node = node->next_leaf;
    if (node != nullptr) ++nodes_visited;
  }
  return nodes_visited;
}

void BPlusTree::ForEachEntry(
    const std::function<void(int32_t key, uint32_t record)>& fn) const {
  const Node* node = root_.get();
  while (!node->is_leaf) {
    node = node->children.front().get();
  }
  for (; node != nullptr; node = node->next_leaf) {
    for (size_t i = 0; i < node->keys.size(); ++i) {
      fn(node->keys[i], node->records[i]);
    }
  }
}

int BPlusTree::height() const {
  int h = 1;
  const Node* node = root_.get();
  while (!node->is_leaf) {
    node = node->children.front().get();
    ++h;
  }
  return h;
}

int BPlusTree::LeafDepth() const { return height(); }

uint64_t BPlusTree::SizeInBytes() const {
  // Count the payload arrays; traverse iteratively to avoid recursion.
  uint64_t bytes = 0;
  std::vector<const Node*> stack = {root_.get()};
  while (!stack.empty()) {
    const Node* node = stack.back();
    stack.pop_back();
    bytes += node->keys.size() * sizeof(int32_t) +
             node->records.size() * sizeof(uint32_t) +
             node->children.size() * sizeof(void*) + sizeof(Node);
    for (const auto& child : node->children) stack.push_back(child.get());
  }
  return bytes;
}

Status BPlusTree::CheckInvariants() const {
  return CheckNode(root_.get(), 1, LeafDepth(),
                   std::numeric_limits<int32_t>::min(),
                   std::numeric_limits<int32_t>::max(), /*is_root=*/true);
}

Status BPlusTree::CheckNode(const Node* node, int depth, int leaf_depth,
                            int32_t lo, int32_t hi, bool is_root) const {
  if (!std::is_sorted(node->keys.begin(), node->keys.end())) {
    return Status::Internal("node keys not sorted");
  }
  for (int32_t key : node->keys) {
    if (key < lo || key > hi) return Status::Internal("key outside bounds");
  }
  const size_t max_entries = static_cast<size_t>(fanout_) - 1;
  if (node->keys.size() > max_entries) {
    return Status::Internal("node overfull");
  }
  if (node->is_leaf) {
    if (depth != leaf_depth) return Status::Internal("leaves at uneven depth");
    if (node->keys.size() != node->records.size()) {
      return Status::Internal("leaf keys/records size mismatch");
    }
    return Status::OK();
  }
  if (node->children.size() != node->keys.size() + 1) {
    return Status::Internal("internal child count mismatch");
  }
  if (!is_root && node->keys.empty()) {
    return Status::Internal("non-root internal node has no keys");
  }
  for (size_t i = 0; i < node->children.size(); ++i) {
    // Duplicate keys may straddle a separator: a left subtree may contain
    // keys equal to the separator (the separator is the first key of the
    // right sibling at leaf level), so both bounds are inclusive.
    const int32_t child_lo = (i == 0) ? lo : node->keys[i - 1];
    const int32_t child_hi = (i == node->keys.size()) ? hi : node->keys[i];
    INCDB_RETURN_IF_ERROR(CheckNode(node->children[i].get(), depth + 1,
                                    leaf_depth, child_lo, child_hi,
                                    /*is_root=*/false));
  }
  return Status::OK();
}

}  // namespace incdb
