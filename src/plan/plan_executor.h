#ifndef INCDB_PLAN_PLAN_EXECUTOR_H_
#define INCDB_PLAN_PLAN_EXECUTOR_H_

#include <chrono>
#include <cstdint>

#include "core/query_api.h"
#include "plan/plan.h"

namespace incdb {
namespace plan {

/// Execution knobs. The default is fully serial; parallel mode partitions
/// leaf work (one task per index probe, scan ranges split into morsels)
/// across a worker pool and merges per-task stats deterministically, so a
/// parallel run is bit-identical to the serial one.
struct ExecOptions {
  /// Worker threads for leaf evaluation: 1 = serial (default), 0 = hardware
  /// concurrency.
  size_t num_threads = 1;
  /// Rows per scan morsel. Rounded up to a multiple of 64 so concurrent
  /// morsels write disjoint 64-bit words of the shared output bitvector
  /// (the morsel grid is word-aligned; a data-race-free merge needs no
  /// locks).
  uint64_t morsel_rows = 65536;
  /// Cooperative deadline. Checked once up front and again before every
  /// leaf task claim (morsel boundaries — a single probe or morsel that is
  /// already running finishes; granularity is one morsel, not one row).
  /// An expired deadline fails the query with
  /// StatusCode::kDeadlineExceeded; no partial result escapes. The default
  /// (time_point::max) never fires.
  std::chrono::steady_clock::time_point deadline =
      std::chrono::steady_clock::time_point::max();
};

/// Runs a snapshot plan (root must be a sink) and shapes the QueryResult:
/// evaluates leaves (in parallel when options ask for it), combines
/// And/Or/Not bottom-up, resizes the main tree's output to the visible
/// watermark, ORs in the delta scan, strips deleted rows, and fills
/// count / row_ids / stats / realized per-operator figures. Routing,
/// epoch/visible_rows and the explain rendering are the caller's
/// (planner's) job.
Result<QueryResult> ExecutePlan(PhysicalPlan* plan, const ExecOptions& options);

/// Runs a bare-index plan (root is the operator tree, no sink) serially and
/// returns the root's output bitvector. Per-operator stats are rolled up
/// into `stats` when non-null.
Result<BitVector> ExecutePlanToBitVector(PhysicalPlan* plan,
                                         QueryStats* stats = nullptr);

}  // namespace plan
}  // namespace incdb

#endif  // INCDB_PLAN_PLAN_EXECUTOR_H_
