#include "plan/plan_executor.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>
#include <utility>
#include <vector>

#include "common/thread_annotations.h"

namespace incdb {
namespace plan {

namespace {

/// One unit of parallel leaf work: a whole index probe, or one morsel of a
/// scan operator's row range. Tasks never share mutable state — each has
/// its own stats/status slot, probe tasks own their node's output, and scan
/// morsels are word-aligned so concurrent Set calls touch disjoint words of
/// the shared output bitvector.
struct LeafTask {
  PlanNode* node = nullptr;
  uint64_t begin = 0;
  uint64_t end = 0;
  bool is_probe = false;
  /// Segment-probe task: `begin` is the segment ordinal and the task owns
  /// that segment's private output slot (segment_outputs[begin]).
  bool is_segment = false;
  QueryStats stats;
  Status status = Status::OK();
};

bool IsScan(OpKind kind) {
  return kind == OpKind::kDeltaScan || kind == OpKind::kSeqScanFallback;
}

bool IsSink(OpKind kind) {
  return kind == OpKind::kCountSink || kind == OpKind::kMaterializeSink;
}

uint64_t CountExprLeaves(const QueryExpr& expr) {
  if (expr.kind() == QueryExpr::Kind::kTerm) return 1;
  uint64_t leaves = 0;
  for (const QueryExpr& child : expr.children()) {
    leaves += CountExprLeaves(child);
  }
  return leaves;
}

/// Walks the tree, allocates scan outputs, and emits the leaf task list.
/// The morsel grid is anchored at row 0 with a word-aligned pitch, so the
/// partitioning (and therefore the merged per-node stats) is identical for
/// serial and parallel runs, and no two morsels share a 64-bit output word.
Status CollectTasks(PlanNode* node, uint64_t morsel_rows,
                    std::vector<LeafTask>* tasks) {
  if (node->kind == OpKind::kIndexProbe) {
    if (node->count_direct) {
      return Status::Internal("count_direct probe reached the task list");
    }
    LeafTask task;
    task.node = node;
    task.is_probe = true;
    tasks->push_back(std::move(task));
    node->realized.morsels = 1;
    return Status::OK();
  }
  if (node->kind == OpKind::kSegmentProbe) {
    if (node->count_direct) {
      return Status::Internal("count_direct segment probe reached the tasks");
    }
    if (node->segments == nullptr ||
        node->segment_pruned.size() != node->segments->segments.size()) {
      return Status::Internal("segment probe carries no segment list");
    }
    // One leaf task per unpruned segment — the segment grid *is* the morsel
    // grid, so the partitioning is identical for serial and parallel runs.
    node->segment_outputs.assign(node->segments->segments.size(), BitVector());
    uint64_t morsels = 0;
    for (size_t s = 0; s < node->segments->segments.size(); ++s) {
      if (node->segment_pruned[s]) continue;
      LeafTask task;
      task.node = node;
      task.begin = s;
      task.is_segment = true;
      tasks->push_back(std::move(task));
      ++morsels;
    }
    node->realized.morsels = morsels;
    return Status::OK();
  }
  if (IsScan(node->kind)) {
    if (node->table == nullptr) {
      return Status::Internal("scan operator carries no table");
    }
    node->output = BitVector(node->end_row);
    const uint64_t pitch = std::max<uint64_t>(64, (morsel_rows + 63) / 64 * 64);
    uint64_t morsels = 0;
    for (uint64_t g = node->begin_row / pitch; g * pitch < node->end_row; ++g) {
      LeafTask task;
      task.node = node;
      task.begin = std::max(node->begin_row, g * pitch);
      task.end = std::min(node->end_row, (g + 1) * pitch);
      if (task.begin >= task.end) continue;
      tasks->push_back(std::move(task));
      ++morsels;
    }
    node->realized.morsels = morsels;
    return Status::OK();
  }
  if (IsSink(node->kind)) {
    return Status::Internal("nested sink in plan tree");
  }
  for (const std::unique_ptr<PlanNode>& child : node->children) {
    INCDB_RETURN_IF_ERROR(CollectTasks(child.get(), morsel_rows, tasks));
  }
  return Status::OK();
}

/// Runs one leaf task. Requires the execution phase *shared*: any number of
/// workers may run tasks concurrently (each owns its claimed task's slots
/// and writes disjoint output words), but none may touch the cross-task
/// realized stats — that needs the phase exclusively (see MergeTaskStats).
/// The phase role is a compile-time protocol marker (ThreadRole, zero
/// runtime cost); cross-thread exclusion itself is delivered by the atomic
/// task claim + join and checked by TSan.
void RunTask(LeafTask* task, ThreadRole& phase) INCDB_REQUIRES_SHARED(phase) {
  (void)phase;
  PlanNode& node = *task->node;
  if (task->is_probe) {
    auto result = node.index->Execute(node.probe, &task->stats);
    if (!result.ok()) {
      task->status = result.status();
      return;
    }
    node.output = std::move(result).value();
    return;
  }
  if (task->is_segment) {
    // Probe one sealed segment's own index; the local result (row space
    // [0, segment rows)) lands in this task's private output slot and is
    // spliced to its global offset in the combine phase.
    const internal::Segment& seg = *node.segments->segments[task->begin];
    auto result = seg.index->Execute(node.probe, &task->stats);
    if (!result.ok()) {
      task->status = result.status();
      return;
    }
    node.segment_outputs[task->begin] = std::move(result).value();
    return;
  }
  // Scan morsel: row oracle over [begin, end). Charges one rows_scanned
  // unit per row and one words_touched unit per cell the predicate can
  // read, so the tail's cost shows up in QueryStats like probe traffic
  // does (delta rows used to go uncounted).
  const uint64_t cells_per_row =
      node.scan_expr.has_value()
          ? CountExprLeaves(*node.scan_expr)
          : static_cast<uint64_t>(node.scan_query.terms.size());
  for (uint64_t row = task->begin; row < task->end; ++row) {
    const bool match =
        node.scan_expr.has_value()
            ? ExprMatches(*node.table, row, *node.scan_expr,
                          node.scan_semantics)
            : RowMatches(*node.table, row, node.scan_query);
    if (match) node.output.Set(row);
  }
  task->stats.rows_scanned += task->end - task->begin;
  task->stats.words_touched += (task->end - task->begin) * cells_per_row;
}

/// Deterministic post-join merge: task order is plan order regardless of
/// which worker ran what, so serial and parallel runs report identical
/// stats. Requires the execution phase *exclusively* — the compiler rejects
/// a merge that could still race the workers.
Status MergeTaskStats(std::vector<LeafTask>* tasks, ThreadRole& phase)
    INCDB_REQUIRES(phase) {
  (void)phase;
  for (LeafTask& task : *tasks) {
    INCDB_RETURN_IF_ERROR(task.status);
    task.node->realized.stats.MergeFrom(task.stats);
  }
  return Status::OK();
}

/// True when `deadline` is armed and already past. One clock read per call;
/// callers invoke it once per leaf task (morsel boundary), so the cost is
/// amortized over tens of thousands of rows.
bool DeadlinePassed(std::chrono::steady_clock::time_point deadline) {
  return deadline != std::chrono::steady_clock::time_point::max() &&
         std::chrono::steady_clock::now() >= deadline;
}

Status RunTasks(std::vector<LeafTask>* tasks, size_t num_threads,
                std::chrono::steady_clock::time_point deadline) {
  // Two-phase worker coordination, made visible to the thread-safety
  // analysis: workers hold `phase` shared while executing leaf tasks; the
  // coordinator takes it exclusively (only after join) for the stats merge.
  ThreadRole phase;
  if (num_threads == 0) {
    num_threads = std::max(1u, std::thread::hardware_concurrency());
  }
  num_threads = std::min(num_threads, tasks->size());
  // Cooperative cancellation: each worker re-checks the deadline before
  // claiming the next leaf task. The first expiry observation stops every
  // worker at its next claim; tasks already running finish (their output is
  // then discarded with the whole query).
  std::atomic<bool> expired{false};
  if (num_threads <= 1) {
    phase.AcquireShared();
    for (LeafTask& task : *tasks) {
      if (DeadlinePassed(deadline)) {
        expired.store(true, std::memory_order_relaxed);
        break;
      }
      RunTask(&task, phase);
    }
    phase.ReleaseShared();
  } else {
    std::atomic<size_t> next{0};
    std::vector<std::thread> threads;
    threads.reserve(num_threads);
    for (size_t t = 0; t < num_threads; ++t) {
      threads.emplace_back([tasks, &next, &phase, &expired, deadline]() {
        phase.AcquireShared();
        for (;;) {
          if (expired.load(std::memory_order_relaxed) ||
              DeadlinePassed(deadline)) {
            expired.store(true, std::memory_order_relaxed);
            break;
          }
          const size_t i = next.fetch_add(1, std::memory_order_relaxed);
          if (i >= tasks->size()) break;
          RunTask(&(*tasks)[i], phase);
        }
        phase.ReleaseShared();
      });
    }
    for (std::thread& thread : threads) thread.join();
  }
  if (expired.load(std::memory_order_relaxed)) {
    return Status::DeadlineExceeded(
        "query deadline expired at a morsel boundary (" +
        std::to_string(tasks->size()) + " leaf tasks planned)");
  }
  phase.Acquire();
  const Status merged = MergeTaskStats(tasks, phase);
  phase.Release();
  return merged;
}

void FinalizeNode(PlanNode* node, const BitVector& out) {
  node->realized.executed = true;
  node->realized.output_rows = out.Count();
  node->realized.rows_scanned = node->realized.stats.rows_scanned;
  const uint64_t range = IsScan(node->kind)
                             ? node->end_row - node->begin_row
                             : out.size();
  node->realized.realized_selectivity =
      range == 0 ? 0.0
                 : static_cast<double>(node->realized.output_rows) /
                       static_cast<double>(range);
}

/// Bottom-up combine of the already-evaluated leaves. Runs on one thread;
/// internal nodes charge their own bitvector_ops / words_touched so EXPLAIN
/// attributes the merge cost to the operator that incurred it.
Result<BitVector> Combine(PlanNode* node) {
  switch (node->kind) {
    case OpKind::kIndexProbe:
    case OpKind::kDeltaScan:
    case OpKind::kSeqScanFallback: {
      FinalizeNode(node, node->output);
      return std::move(node->output);
    }
    case OpKind::kSegmentProbe: {
      // Splice the per-segment local results to their global row offsets,
      // in segment order — bit-identical regardless of which worker probed
      // which segment. Pruned segments contribute their exact all-zero
      // value for free.
      BitVector merged(node->end_row);
      for (size_t s = 0; s < node->segments->segments.size(); ++s) {
        const internal::Segment& seg = *node->segments->segments[s];
        if (node->segment_pruned[s]) {
          node->realized.stats.segments_pruned += 1;
          continue;
        }
        const BitVector& local = node->segment_outputs[s];
        if (local.size() != seg.num_rows) {
          return Status::Internal(
              "segment " + std::to_string(seg.content_id) + " returned " +
              std::to_string(local.size()) + " rows, expected " +
              std::to_string(seg.num_rows));
        }
        merged.OrAt(local, seg.begin_row);
        node->realized.stats.segments_scanned += 1;
        node->realized.stats.bitvector_ops += 1;
        node->realized.stats.words_touched += local.words().size();
      }
      node->segment_outputs.clear();
      FinalizeNode(node, merged);
      return merged;
    }
    case OpKind::kAnd:
    case OpKind::kOr: {
      if (node->children.empty()) {
        return Status::Internal("And/Or node without children");
      }
      INCDB_ASSIGN_OR_RETURN(BitVector acc,
                             Combine(node->children.front().get()));
      for (size_t i = 1; i < node->children.size(); ++i) {
        INCDB_ASSIGN_OR_RETURN(BitVector operand,
                               Combine(node->children[i].get()));
        if (operand.size() != acc.size()) {
          return Status::Internal(
              "plan operand size mismatch: " + std::to_string(acc.size()) +
              " vs " + std::to_string(operand.size()));
        }
        if (node->kind == OpKind::kAnd) {
          acc.AndWith(operand);
        } else {
          acc.OrWith(operand);
        }
        node->realized.stats.bitvector_ops += 1;
        node->realized.stats.words_touched +=
            acc.words().size() + operand.words().size();
      }
      FinalizeNode(node, acc);
      return acc;
    }
    case OpKind::kNot: {
      INCDB_ASSIGN_OR_RETURN(BitVector out,
                             Combine(node->children.front().get()));
      out.Flip();
      node->realized.stats.bitvector_ops += 1;
      node->realized.stats.words_touched += out.words().size();
      FinalizeNode(node, out);
      return out;
    }
    case OpKind::kCountSink:
    case OpKind::kMaterializeSink:
      return Status::Internal("sink reached the combine phase");
  }
  return Status::Internal("unknown plan operator");
}

QueryStats AggregateStats(const PlanNode& node) {
  QueryStats stats = node.realized.stats;
  for (const std::unique_ptr<PlanNode>& child : node.children) {
    stats.MergeFrom(AggregateStats(*child));
  }
  return stats;
}

/// Strips logically deleted rows from a result sized to the watermark.
void StripDeleted(const internal::SnapshotState* state, BitVector* result) {
  if (state == nullptr || state->num_deleted == 0 ||
      state->deleted == nullptr) {
    return;
  }
  BitVector live = *state->deleted;
  live.Resize(result->size());
  live.Flip();
  result->AndWith(live);
}

void FinalizeSink(PlanNode* sink, uint64_t count, uint64_t visible_rows) {
  sink->realized.executed = true;
  sink->realized.output_rows = count;
  sink->realized.realized_selectivity =
      visible_rows == 0 ? 0.0
                        : static_cast<double>(count) /
                              static_cast<double>(visible_rows);
}

}  // namespace

Result<QueryResult> ExecutePlan(PhysicalPlan* plan,
                                const ExecOptions& options) {
  if (plan == nullptr || plan->root == nullptr) {
    return Status::Internal("empty physical plan");
  }
  PlanNode* sink = plan->root.get();
  if (!IsSink(sink->kind) || sink->children.empty()) {
    return Status::Internal("snapshot plan must root at a sink");
  }
  PlanNode* main = sink->children.front().get();

  QueryResult out;

  // A request that arrives with its deadline already spent fails before any
  // work — the same fast-fail the serving daemon's queue shedding gives.
  if (DeadlinePassed(options.deadline)) {
    return Status::DeadlineExceeded("query deadline expired before execution");
  }

  // Count straight off compressed index storage — no result bitvector.
  // Segmented plans sum per-segment compressed counts, skipping pruned
  // segments entirely (their count is provably zero).
  if (main->kind == OpKind::kSegmentProbe && main->count_direct) {
    out.count = 0;
    for (size_t s = 0; s < main->segments->segments.size(); ++s) {
      if (main->segment_pruned[s]) {
        main->realized.stats.segments_pruned += 1;
        continue;
      }
      const internal::Segment& seg = *main->segments->segments[s];
      INCDB_ASSIGN_OR_RETURN(
          const uint64_t local,
          seg.index->ExecuteCount(main->probe, &main->realized.stats));
      out.count += local;
      main->realized.stats.segments_scanned += 1;
    }
    main->realized.executed = true;
    main->realized.output_rows = out.count;
    main->realized.realized_selectivity =
        plan->visible_rows == 0
            ? 0.0
            : static_cast<double>(out.count) /
                  static_cast<double>(plan->visible_rows);
    FinalizeSink(sink, out.count, plan->visible_rows);
    out.stats = AggregateStats(*sink);
    return out;
  }
  if (main->kind == OpKind::kIndexProbe && main->count_direct) {
    INCDB_ASSIGN_OR_RETURN(
        out.count, main->index->ExecuteCount(main->probe,
                                             &main->realized.stats));
    main->realized.executed = true;
    main->realized.output_rows = out.count;
    main->realized.realized_selectivity =
        plan->visible_rows == 0
            ? 0.0
            : static_cast<double>(out.count) /
                  static_cast<double>(plan->visible_rows);
    FinalizeSink(sink, out.count, plan->visible_rows);
    out.stats = AggregateStats(*sink);
    return out;
  }

  std::vector<LeafTask> tasks;
  for (const std::unique_ptr<PlanNode>& child : sink->children) {
    INCDB_RETURN_IF_ERROR(
        CollectTasks(child.get(), options.morsel_rows, &tasks));
  }
  INCDB_RETURN_IF_ERROR(
      RunTasks(&tasks, options.num_threads, options.deadline));

  INCDB_ASSIGN_OR_RETURN(BitVector result, Combine(main));
  if (result.size() != plan->covered_rows) {
    return Status::Internal(plan->routing.index_name + " returned " +
                            std::to_string(result.size()) +
                            " rows, expected its build coverage " +
                            std::to_string(plan->covered_rows));
  }
  result.Resize(plan->visible_rows);
  if (sink->children.size() > 1) {
    // Delta scan over the appended tail the serving index does not cover.
    INCDB_ASSIGN_OR_RETURN(BitVector delta, Combine(sink->children[1].get()));
    if (delta.size() != plan->visible_rows) {
      return Status::Internal("delta scan sized " +
                              std::to_string(delta.size()) + ", expected " +
                              std::to_string(plan->visible_rows));
    }
    result.OrWith(delta);
  }
  StripDeleted(plan->state, &result);
  out.count = result.Count();
  if (!plan->count_only) {
    out.row_ids = result.ToIndices();
    // Row-limit cap: count above stays the full match count; only the
    // materialized ids are truncated (QueryRequest::Limit contract).
    if (plan->limit != 0 && out.row_ids.size() > plan->limit) {
      out.row_ids.resize(plan->limit);
    }
  }
  FinalizeSink(sink, out.count, plan->visible_rows);
  out.stats = AggregateStats(*sink);
  return out;
}

Result<BitVector> ExecutePlanToBitVector(PhysicalPlan* plan,
                                         QueryStats* stats) {
  if (plan == nullptr || plan->root == nullptr) {
    return Status::Internal("empty physical plan");
  }
  if (IsSink(plan->root->kind)) {
    return Status::Internal(
        "ExecutePlanToBitVector expects a bare operator tree, not a sink");
  }
  std::vector<LeafTask> tasks;
  INCDB_RETURN_IF_ERROR(
      CollectTasks(plan->root.get(), ExecOptions().morsel_rows, &tasks));
  INCDB_RETURN_IF_ERROR(RunTasks(&tasks, /*num_threads=*/1,
                                 ExecOptions().deadline));
  INCDB_ASSIGN_OR_RETURN(BitVector result, Combine(plan->root.get()));
  if (stats != nullptr) stats->MergeFrom(AggregateStats(*plan->root));
  return result;
}

}  // namespace plan
}  // namespace incdb
